// Quickstart: build the Diffeq benchmark, classify every controller fault,
// and grade the SFR faults by their effect on datapath power.
//
// This walks the exact flow of the paper: HLS -> FSM synthesis -> integrated
// fault classification (Section 5) -> Monte Carlo power grading (Section 6).
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;

  std::printf("Building the Diffeq controller-datapath pair (4-bit)...\n");
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  std::printf("  netlist: %s\n", d.system.nl.Stats().ToString().c_str());
  std::printf("  schedule: %d control steps, %d states\n", d.hls.num_steps,
              d.system.control_spec.NumStates());
  std::printf("%s\n", d.hls.BindingReport().c_str());

  std::printf("Classifying controller faults (Section 5 pipeline)...\n");
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
  std::printf("  %s\n", report.Summary().c_str());

  std::printf("Grading SFR faults by power (threshold 5%%)...\n");
  core::GradeConfig grade_cfg;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);
  std::printf("  fault-free datapath power: %.2f uW\n",
              graded.fault_free_uw);

  TextTable table({"fault", "effects", "power uW", "change", "detected"});
  for (const core::GradedFault* gf : graded.Figure7Order()) {
    std::string effects;
    for (const auto& ce : gf->record->effects) {
      if (!effects.empty()) effects += "; ";
      effects += ce.description;
    }
    table.AddRow({gf->record->name, effects,
                  TextTable::FormatDouble(gf->power_uw, 2),
                  TextTable::FormatPercent(gf->percent_change),
                  gf->outside_band ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("%zu of %zu SFR faults detectable by power analysis.\n",
              graded.DetectedCount(), graded.faults.size());
  return 0;
}
