// Example: planning a production power-analysis test.
//
// Walks the decisions a test engineer faces when applying the paper's
// method to a core:
//   1. how long a TPGR test set is needed for a stable power baseline;
//   2. what threshold the die-to-die variation allows;
//   3. which SFR faults that threshold catches — and what remains
//      untestable without breaking the core open.
#include <cstdio>

#include "base/stats.hpp"
#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/variation.hpp"
#include "designs/designs.hpp"
#include "power/power_sim.hpp"
#include "tpg/lfsr.hpp"

int main() {
  using namespace pfd;
  const designs::BenchmarkDesign d = designs::BuildFacet(4);
  const synth::System& sys = d.system;

  std::printf("planning a power test for the '%s' core (%s)\n\n",
              d.name.c_str(), sys.nl.Stats().ToString().c_str());

  // Step 1: classify; only SFR faults need the power method at all.
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(sys, d.hls, pipe_cfg);
  std::printf("step 1 — classification: %s\n\n", report.Summary().c_str());

  // Step 2: baseline stability vs test-set length.
  const power::PowerModel model =
      core::MakePowerModel(sys, power::TechModel::Vsc450());
  const fault::TestPlan plan = sys.MakeTestPlan();
  std::printf("step 2 — baseline power vs TPGR test-set length:\n");
  TextTable t({"patterns", "seed1 uW", "seed2 uW", "near-zero seed uW"});
  for (int patterns : {128, 320, 640, 1200}) {
    std::vector<std::string> row = {std::to_string(patterns)};
    for (std::uint32_t seed :
         {tpg::kTestSetSeed1, tpg::kTestSetSeed2, tpg::kTestSetSeed3}) {
      row.push_back(TextTable::FormatDouble(
          power::MeasureTestSetPower(sys.nl, {plan, seed, patterns}, model,
                                     {}, {})
              .breakdown.datapath_uw,
          2));
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s\n", t.ToString().c_str());

  // Step 3: choose the threshold from the variation budget.
  const double sigma = 0.012;  // 1.2% die-to-die power spread
  const double threshold =
      core::MinimalThresholdForFalseAlarm(sigma, 0.001);
  std::printf(
      "step 3 — with sigma=%.1f%% die variation, a <0.1%% false-alarm "
      "budget needs a threshold of %.2f%%\n\n",
      sigma * 100, threshold);

  // Step 4: grade the SFR faults against that threshold.
  core::GradeConfig grade_cfg;
  grade_cfg.threshold_percent = threshold;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(sys, report, grade_cfg);
  std::printf("step 4 — coverage at the chosen threshold:\n%s",
              core::GradingTable(graded).c_str());

  const core::VariationReport vr =
      core::AnalyzeUnderVariation(graded, {sigma, threshold});
  std::printf(
      "\nexpected SFR coverage under variation: %.1f%%; %zu of %zu SFR "
      "faults detectable, the rest remain untestable without DFT in the "
      "core.\n",
      vr.ExpectedCoverage() * 100, graded.DetectedCount(),
      graded.faults.size());
  return 0;
}
