// Example: deep dive into a single controller fault.
//
// Shows the low-level machinery the pipeline automates: inject one stuck-at
// fault, extract and diff the control traces, classify each control-line
// effect against the variable lifespans (Figure 5 of the paper), run the
// symbolic equivalence proof, and finally measure the power signature.
//
// Usage: fault_explorer [fault-index]
#include <cstdio>
#include <cstdlib>

#include "analysis/classify.hpp"
#include "analysis/effects.hpp"
#include "base/stats.hpp"
#include "analysis/trace.hpp"
#include "core/grading.hpp"
#include "designs/designs.hpp"
#include "power/power_sim.hpp"

int main(int argc, char** argv) {
  using namespace pfd;
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const synth::System& sys = d.system;

  // Fault universe, as the pipeline sees it.
  const auto all =
      fault::GenerateFaults(sys.nl, netlist::ModuleTag::kController);
  const auto collapsed = fault::Collapse(sys.nl, all);
  std::printf("diffeq controller: %zu raw faults, %zu after collapsing\n",
              all.size(), collapsed.representatives.size());

  // Pick a fault: by default, stuck-at-1 on the stem of the first load
  // line's driver — it forces extra loads in every state, a fault with a
  // large power signature (whether it is SFR or SFI depends on which
  // register the line drives; the explorer shows the full derivation).
  std::size_t index = 0;
  if (argc > 1) {
    index = static_cast<std::size_t>(std::atoi(argv[1]));
    PFD_CHECK_MSG(index < collapsed.representatives.size(),
                  "fault index out of range");
  } else {
    for (std::size_t i = 0; i < collapsed.representatives.size(); ++i) {
      const fault::StuckFault& f = collapsed.representatives[i];
      if (f.gate == sys.line_nets[0] && f.pin == 0 &&
          f.value == Trit::kOne) {
        index = i;
      }
    }
  }
  const fault::StuckFault fault = collapsed.representatives[index];
  std::printf("exploring fault #%zu: %s\n\n", index,
              fault::FaultName(sys.nl, fault).c_str());

  // 1. Control traces.
  const analysis::ControlTrace golden =
      analysis::ExtractControlTrace(sys, nullptr, 3);
  const analysis::ControlTrace faulty =
      analysis::ExtractControlTrace(sys, &fault, 3);
  const auto effects = analysis::DiffPattern(sys, golden, faulty, 1);
  std::printf("control-line effects (steady-state pattern):\n");
  if (effects.empty()) {
    std::printf("  none — the fault does not change the controller's "
                "behaviour (CFR) or was masked\n");
  }
  const analysis::LifespanTable lifespans(d.hls);
  for (const analysis::ControlLineEffect& e : effects) {
    const auto ce = analysis::ClassifyEffect(sys, lifespans, e);
    std::printf("  cycle %2d: %-40s [%s]\n", e.cycle_in_pattern,
                ce.description.c_str(),
                analysis::EffectCategoryName(ce.category));
  }

  // 2. Lifespans of the registers the fault touches (Figure 5).
  std::printf("\nvariable lifespans (def -> last read, in control steps):\n");
  std::printf("%s", d.hls.BindingReport().c_str());

  // 3. Symbolic equivalence.
  const analysis::SymbolicCheck sym =
      analysis::SymbolicSfrCheck(sys, golden, faulty);
  switch (sym.outcome) {
    case analysis::SymbolicCheck::Outcome::kEquivalent:
      std::printf("\nsymbolic check: EQUIVALENT — provably SFR\n");
      break;
    case analysis::SymbolicCheck::Outcome::kDifferent:
      std::printf("\nsymbolic check: DIFFERENT — %s\n", sym.detail.c_str());
      break;
    case analysis::SymbolicCheck::Outcome::kInconclusive:
      std::printf("\nsymbolic check: inconclusive — %s\n",
                  sym.detail.c_str());
      break;
  }

  // 4. Gate-level ground truth.
  const analysis::GateCheck gate =
      analysis::GateLevelSfrCheck(sys, fault, analysis::GateCheckConfig{});
  std::printf("gate-level sweep (%s, %llu patterns): %s\n",
              gate.exhaustive ? "exhaustive" : "sampled",
              static_cast<unsigned long long>(gate.patterns),
              gate.difference_found ? "difference found — SFI"
                                    : "no difference — SFR");

  // 5. Power signature.
  const power::PowerModel model =
      core::MakePowerModel(sys, power::TechModel::Vsc450());
  const fault::TestPlan plan = sys.MakeTestPlan();
  power::MonteCarloConfig mc;
  const double base =
      power::EstimatePowerMonteCarlo(sys.nl, plan, model, mc)
          .breakdown.datapath_uw;
  const double with_fault =
      power::EstimatePowerMonteCarlo(
          sys.nl, plan, model,
          std::span<const fault::StuckFault>(&fault, 1), mc)
          .breakdown.datapath_uw;
  std::printf(
      "power signature: fault-free %.2f uW, faulty %.2f uW (%+.2f%%)\n",
      base, with_fault, PercentChange(base, with_fault));
  return 0;
}
