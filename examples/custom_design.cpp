// Example: running the methodology on your own design.
//
// The paper's technique is not specific to its three benchmarks — anything
// expressible as a data-flow graph can be pushed through the same flow.
// This example builds a 4-tap FIR-like filter block, synthesizes it with a
// one-hot controller (a different synthesis style than the canned
// benchmarks), and runs classification + power grading end to end.
#include <cstdio>

#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "hls/dfg.hpp"
#include "hls/hls.hpp"
#include "synth/system.hpp"

int main() {
  using namespace pfd;
  using hls::ValueRef;
  using rtl::FuKind;

  // y = c0*x0 + c1*x1 + c2*x2 + c3*x3, plus a saturation-style compare.
  hls::Dfg dfg(4);
  const ValueRef x0 = dfg.AddInput("x0");
  const ValueRef x1 = dfg.AddInput("x1");
  const ValueRef x2 = dfg.AddInput("x2");
  const ValueRef x3 = dfg.AddInput("x3");
  const ValueRef c0 = dfg.AddConstant(3);
  const ValueRef c1 = dfg.AddConstant(5);
  const ValueRef limit = dfg.AddInput("limit");

  const ValueRef p0 = dfg.AddOp("p0", FuKind::kMul, c0, x0);
  const ValueRef p1 = dfg.AddOp("p1", FuKind::kMul, c1, x1);
  const ValueRef p2 = dfg.AddOp("p2", FuKind::kMul, c0, x2);
  const ValueRef p3 = dfg.AddOp("p3", FuKind::kMul, c1, x3);
  const ValueRef s0 = dfg.AddOp("s0", FuKind::kAdd, p0, p1);
  const ValueRef s1 = dfg.AddOp("s1", FuKind::kAdd, p2, p3);
  const ValueRef y = dfg.AddOp("y", FuKind::kAdd, s0, s1);
  const ValueRef over = dfg.AddOp("over", FuKind::kLess, limit, y);

  dfg.AddOutput("y", y);
  dfg.AddOutput("over", over);

  // Schedule on one multiplier and one adder; keep one register per
  // variable so the architecture is easy to read.
  hls::HlsConfig cfg;
  cfg.resources = {{FuKind::kMul, 1},
                   {FuKind::kAdd, 1},
                   {FuKind::kLess, 1}};
  cfg.register_sharing = false;
  cfg.merge_load_lines = true;
  const hls::HlsResult hr = hls::RunHls(dfg, cfg);
  std::printf("FIR block schedule (%d steps):\n%s\n", hr.num_steps,
              hr.BindingReport().c_str());

  synth::SynthOptions opts;
  opts.encoding = synth::StateEncoding::kOneHot;
  const synth::System sys =
      synth::BuildSystem("fir", hr.datapath, hr.control, hr.load_map, opts);
  std::printf("one-hot controller system: %s\n\n",
              sys.nl.Stats().ToString().c_str());

  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(sys, hr, pipe_cfg);
  std::printf("%s\n\n", core::SummaryLine("fir", report).c_str());

  core::GradeConfig grade_cfg;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(sys, report, grade_cfg);
  std::printf("fault-free datapath power: %.2f uW\n",
              graded.fault_free_uw);
  std::printf("%s", core::GradingTable(graded).c_str());
  std::printf("%zu of %zu SFR faults power-detectable at %.0f%%.\n",
              graded.DetectedCount(), graded.faults.size(),
              grade_cfg.threshold_percent);
  return 0;
}
