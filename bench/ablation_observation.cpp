// Ablation: test-response observation policy.
//
// The reproduction's default integrated test strobes the datapath outputs
// only while the controller holds its results (kAtHold) — the natural
// policy for the paper's architecture, where mid-schedule register contents
// are not externally visible. A tester that compares every clock
// (kEveryCycle) additionally catches faults whose only system-level effect
// is a transient on an output register during the computation. This bench
// quantifies how many "undetectable" faults each policy leaves behind.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf("=== Ablation: output observation policy ===\n\n");
  TextTable t({"circuit", "policy", "total", "SFI(sim)", "SFI(analysis)",
               "SFR", "%SFR"});
  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    for (const auto policy : {core::ObservationPolicy::kAtHold,
                              core::ObservationPolicy::kEveryCycle}) {
      core::PipelineConfig cfg;
      cfg.observation = policy;
      const core::ClassificationReport r =
          core::ClassifyControllerFaults(d.system, d.hls, cfg);
      t.AddRow({d.name,
                policy == core::ObservationPolicy::kAtHold ? "at-hold"
                                                           : "every-cycle",
                std::to_string(r.total),
                std::to_string(r.sfi_sim + r.sfi_potential),
                std::to_string(r.sfi_analysis), std::to_string(r.sfr),
                TextTable::FormatDouble(r.PercentSfr(), 1) + "%"});
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nEvery-cycle observation can only shrink the SFR set: faults that "
      "disturb an output register mid-schedule become detectable.\n");
  return 0;
}
