// Ablation: detection coverage vs the power-tolerance threshold (Section 5:
// "the smaller the threshold can be made in practice, the greater is the
// percentage of SFR faults that can be detected with this technique").
//
// For each example circuit, sweeps the band half-width and reports how many
// SFR faults fall outside the band, together with the false-alarm
// probability a fault-free die would see under 1% / 2% die-to-die power
// variation (the practical lower limit on the threshold).
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/variation.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf(
      "=== Ablation: power threshold vs SFR detection coverage ===\n"
      "paper band: 5%% (Figure 7); this sweep quantifies the Section-5 "
      "threshold trade-off\n\n");

  const double thresholds[] = {1, 2, 3, 5, 8, 12, 20};

  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    core::PipelineConfig pipe_cfg;
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(d.system, report, grade_cfg);

    TextTable t({"threshold", "SFR detected", "coverage",
                 "false alarm (sigma=1%)", "false alarm (sigma=2%)"});
    for (double th : thresholds) {
      std::size_t detected = 0;
      for (const core::GradedFault& gf : graded.faults) {
        if (std::abs(gf.percent_change) > th) ++detected;
      }
      const double fa1 =
          core::DetectionProbability(0.0, {0.01, th});
      const double fa2 =
          core::DetectionProbability(0.0, {0.02, th});
      t.AddRow({TextTable::FormatDouble(th, 0) + "%",
                std::to_string(detected) + "/" +
                    std::to_string(graded.faults.size()),
                TextTable::FormatDouble(
                    graded.faults.empty()
                        ? 0.0
                        : 100.0 * static_cast<double>(detected) /
                              static_cast<double>(graded.faults.size()),
                    1) +
                    "%",
                TextTable::FormatDouble(fa1 * 100, 3) + "%",
                TextTable::FormatDouble(fa2 * 100, 3) + "%"});
    }
    std::printf("--- %s (fault-free %.2f uW, %zu SFR faults) ---\n%s\n",
                d.name.c_str(), graded.fault_free_uw, graded.faults.size(),
                t.ToString().c_str());
  }
  std::printf(
      "minimal threshold for <0.1%% false alarms: sigma=1%% -> %.2f%%, "
      "sigma=2%% -> %.2f%%, sigma=3%% -> %.2f%%\n",
      core::MinimalThresholdForFalseAlarm(0.01, 0.001),
      core::MinimalThresholdForFalseAlarm(0.02, 0.001),
      core::MinimalThresholdForFalseAlarm(0.03, 0.001));
  return 0;
}
