// Engine micro-benchmarks (google-benchmark): throughput of the simulation
// and synthesis substrates. These are the pieces whose cost determines how
// far the methodology scales past the paper's 4-bit examples.
//
// Tracking perf across PRs: `bench/run_bench.sh` builds this target and
// writes `BENCH_engines.json` at the repo root, via google-benchmark's
// machine-readable output flags:
//
//   ./bench/run_bench.sh                 # all benchmarks, 1 repetition
//   REPS=5 ./bench/run_bench.sh --benchmark_filter=BM_LogicSimStep
//
// Any extra arguments are passed through to the binary, so the usual
// --benchmark_out/--benchmark_out_format/--benchmark_filter flags work
// directly too. Compare two JSON files with google-benchmark's
// tools/compare.py, or just diff the real_time fields.
//
// BM_LogicSimStep vs BM_LogicSimStepObsEnabled bounds the observability
// overhead: counters update once per Step behind an obs::Enabled() check,
// so the two must stay within noise of each other (and both within noise
// of the pre-obs baseline — the ISSUE acceptance bar is +-3%).
#include <benchmark/benchmark.h>

#include "analysis/classify.hpp"
#include "analysis/trace.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "fault/fault_sim.hpp"
#include "logicsim/compiled.hpp"
#include "logicsim/simulator.hpp"
#include "obs/obs.hpp"
#include "power/power_sim.hpp"
#include "synth/qm.hpp"
#include "xcheck/gen.hpp"
#include "xcheck/ref_sim.hpp"
#include "xcheck/xcheck.hpp"

namespace {

using namespace pfd;

const designs::BenchmarkDesign& Diffeq() {
  static const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  return d;
}

const designs::BenchmarkDesign& Facet() {
  static const designs::BenchmarkDesign d = designs::BuildFacet(4);
  return d;
}

const designs::BenchmarkDesign& Poly() {
  static const designs::BenchmarkDesign d = designs::BuildPoly(4);
  return d;
}

const designs::BenchmarkDesign& DiffeqLoop() {
  static const designs::BenchmarkDesign d = designs::BuildDiffeqLoop(4);
  return d;
}

const designs::BenchmarkDesign& Ewf() {
  static const designs::BenchmarkDesign d = designs::BuildEwf(4);
  return d;
}

void BM_LogicSimStep(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  int c = 0;
  for (auto _ : state) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
    c = (c + 1) % d.system.cycles_per_pattern;
  }
  // 64 machine-cycles per Step; gate-evaluations per second is the headline.
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(d.system.nl.size()));
}
BENCHMARK(BM_LogicSimStep);

// Same workload with the obs counter registry enabled: the delta against
// BM_LogicSimStep is the whole cost of production instrumentation.
void BM_LogicSimStepObsEnabled(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  obs::Registry::Global().set_enabled(true);
  int c = 0;
  for (auto _ : state) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
    c = (c + 1) % d.system.cycles_per_pattern;
  }
  obs::Registry::Global().set_enabled(false);
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(d.system.nl.size()));
}
BENCHMARK(BM_LogicSimStepObsEnabled);

// Cost of one enabled histogram Record: two relaxed fetch_adds plus the
// min/max CAS pair on a thread-sharded slot. The disabled cost is the
// obs::Enabled() branch already bounded by the pair above.
void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& h =
      obs::Registry::Global().GetHistogram("bench.histogram_record");
  std::uint64_t v = 12345;
  for (auto _ : state) {
    h.Record(v & 0xffff);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // vary the bucket
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// X-free steady state on the compiled kernel: the reset protocol is run
// once until the power-up X's flush and the two-valued fast path engages,
// then the measured loop steps the known-plane-free program. This is the
// regime the pipeline engines spend almost all their cycles in.
void BM_CompiledKernelStep(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  // Warm-up: one full pattern flushes every power-up X.
  for (int c = 0; c < d.system.cycles_per_pattern; ++c) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  if (!sim.last_step_two_valued()) {
    state.SkipWithError("fast path did not engage after the warm-up pattern");
    return;
  }
  int c = 0;
  for (auto _ : state) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
    c = (c + 1) % d.system.cycles_per_pattern;
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(d.system.nl.size()));
}
BENCHMARK(BM_CompiledKernelStep);

// The same workload with one operand bit held at X: every step stays on
// the three-valued plane, bounding the cost of the general path (and the
// fast-path eligibility scan that keeps rejecting it).
void BM_CompiledKernelStepThreeValued(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  sim.SetInputAllLanes(d.system.operand_bits[0][0], Trit::kX);
  int c = 0;
  for (auto _ : state) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
    c = (c + 1) % d.system.cycles_per_pattern;
  }
  if (sim.last_step_two_valued()) {
    state.SkipWithError("expected the X input to hold the three-valued path");
    return;
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(d.system.nl.size()));
}
BENCHMARK(BM_CompiledKernelStepThreeValued);

// The deliberately-naive xcheck oracle on the same design: the ratio to
// BM_CompiledKernelStep is the price of obvious correctness (full-netlist
// scalar resweeps, one lane, no levelization). It bounds how many
// differential cases a CI fuzz budget buys.
void BM_RefSimStep(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  xcheck::RefSimulator ref(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) ref.SetInput(g, Trit::kZero);
  }
  int c = 0;
  for (auto _ : state) {
    ref.SetInput(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    ref.Step();
    c = (c + 1) % d.system.cycles_per_pattern;
  }
  // One machine-cycle per Step (scalar, single-lane).
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(d.system.nl.size()));
}
BENCHMARK(BM_RefSimStep);

// One full differential case — generate, build, run compiled and reference
// side by side, compare every node/counter. This is the unit the fuzz-smoke
// CI job repeats, so cases/second here sets its iteration budget.
void BM_XcheckDifferentialCase(benchmark::State& state) {
  const xcheck::GenConfig gen;
  std::uint32_t index = 0;
  for (auto _ : state) {
    Rng rng(xcheck::CaseSeed(0xBE7C4, index++));
    const xcheck::Scenario s = xcheck::GenerateScenario(rng, gen);
    const xcheck::CaseResult r = xcheck::RunScenario(s);
    if (!r.ok) {
      state.SkipWithError("miscompare in the differential benchmark");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XcheckDifferentialCase);

void BM_ParallelFaultSim(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  const auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const int patterns = static_cast<int>(state.range(0));
  fault::FaultSimRequest req{d.system.nl, {plan, 0xACE1, patterns}, faults};
  req.exec.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::RunFaultSim(req));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(faults.size()) *
                          patterns);
}
BENCHMARK(BM_ParallelFaultSim)->Arg(64)->Arg(256);

void BM_SerialFaultSim(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  const auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  fault::FaultSimRequest req{d.system.nl, {plan, 0xACE1, 64}, faults,
                             fault::FaultSimEngine::kSerial};
  req.exec.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::RunFaultSim(req));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(faults.size()) * 64);
}
BENCHMARK(BM_SerialFaultSim);

// Thread-scaling sweep for the shard fan-out. Wall-clock (UseRealTime) is
// the figure of merit; the same work is re-simulated at each thread count,
// so real_time(1) / real_time(N) is the speedup. On a single-CPU host the
// ratio stays ~1 — the shards serialize onto one core.
void BM_FaultSimThreads(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  const auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  fault::FaultSimRequest req{d.system.nl, {plan, 0xACE1, 256}, faults};
  req.exec.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::RunFaultSim(req));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(faults.size()) * 256);
}
BENCHMARK(BM_FaultSimThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// End-to-end engine matrix: one full 1200-pattern campaign per iteration,
// per design per engine, on a pre-compiled program and one worker thread
// (the ratio should measure the algorithm, not the scheduler). The
// headline rate counters feed bench/check_bench_json.py --require-speedup:
// the committed BENCH_engines.json must show kDifferential at >= 2.5x the
// kParallel faults/sec on the largest design (ewf); measured ~3x. The gap
// to an arbitrary-looking ratio has a hard structural reason — ~26% of
// ewf's collapsed faults stay live through every pattern, which caps any
// bit-identical engine at ~3.9x here (DESIGN.md works through the math).
void BM_EngineEndToEnd(benchmark::State& state,
                       const designs::BenchmarkDesign& (*get)(),
                       fault::FaultSimEngine engine) {
  const designs::BenchmarkDesign& d = get();
  // Full fault universe (datapath + controller): the canonical fault-sim
  // workload. The classification pipeline only grades the controller slice,
  // but the engines are general-purpose and their relative cost depends on
  // the whole design's detectability profile.
  auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto dp =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kDatapath);
  all.insert(all.end(), dp.begin(), dp.end());
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const std::shared_ptr<const logicsim::CompiledNetlist> compiled =
      logicsim::CompiledNetlist::Compile(d.system.nl);
  constexpr int kPatterns = 1200;
  for (auto _ : state) {
    fault::FaultSimRequest req{
        d.system.nl, {plan, tpg::kTestSetSeed1, kPatterns}, faults, engine};
    req.exec.threads = 1;
    req.compiled = compiled;
    // Pinned 64-lane width: this matrix compares engine *algorithms*, and
    // auto width would tie the ratios to the host CPU's vector units (the
    // parallel kernel widens near-linearly, the differential cone walk
    // does not). Width scaling is BM_EngineWidth's job.
    req.lanes = 64;
    benchmark::DoNotOptimize(fault::RunFaultSim(req));
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["faults_per_sec"] = benchmark::Counter(
      iters * static_cast<double>(faults.size()), benchmark::Counter::kIsRate);
  state.counters["patterns_per_sec"] =
      benchmark::Counter(iters * kPatterns, benchmark::Counter::kIsRate);
}

#define PFD_ENGINE_BENCH(design, getter)                                  \
  BENCHMARK_CAPTURE(BM_EngineEndToEnd, design##_parallel, getter,         \
                    fault::FaultSimEngine::kParallel);                    \
  BENCHMARK_CAPTURE(BM_EngineEndToEnd, design##_serial, getter,           \
                    fault::FaultSimEngine::kSerial);                      \
  BENCHMARK_CAPTURE(BM_EngineEndToEnd, design##_differential, getter,     \
                    fault::FaultSimEngine::kDifferential)

PFD_ENGINE_BENCH(diffeq, &Diffeq);
PFD_ENGINE_BENCH(facet, &Facet);
PFD_ENGINE_BENCH(poly, &Poly);
PFD_ENGINE_BENCH(diffeq_loop, &DiffeqLoop);
PFD_ENGINE_BENCH(ewf, &Ewf);

#undef PFD_ENGINE_BENCH

// Per-width engine rates on the largest design, pinned lane widths (the
// matrix above runs lanes=0/auto, so its numbers follow the host CPU's
// best backend). The committed BENCH_engines.json must show the widening
// paying for itself: bench-smoke requires 256-lane parallel at >= 2x the
// 64-lane parallel faults/sec. Results are bit-identical across widths —
// only these rates may differ.
void BM_EngineWidth(benchmark::State& state,
                    const designs::BenchmarkDesign& (*get)(),
                    fault::FaultSimEngine engine, int lanes) {
  const designs::BenchmarkDesign& d = get();
  auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto dp =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kDatapath);
  all.insert(all.end(), dp.begin(), dp.end());
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const std::shared_ptr<const logicsim::CompiledNetlist> compiled =
      logicsim::CompiledNetlist::Compile(d.system.nl);
  constexpr int kPatterns = 1200;
  for (auto _ : state) {
    fault::FaultSimRequest req{
        d.system.nl, {plan, tpg::kTestSetSeed1, kPatterns}, faults, engine};
    req.exec.threads = 1;
    req.compiled = compiled;
    req.lanes = lanes;
    benchmark::DoNotOptimize(fault::RunFaultSim(req));
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["faults_per_sec"] = benchmark::Counter(
      iters * static_cast<double>(faults.size()), benchmark::Counter::kIsRate);
}

#define PFD_WIDTH_BENCH(design, getter)                                    \
  BENCHMARK_CAPTURE(BM_EngineWidth, design##_parallel_w64, getter,         \
                    fault::FaultSimEngine::kParallel, 64);                 \
  BENCHMARK_CAPTURE(BM_EngineWidth, design##_parallel_w256, getter,       \
                    fault::FaultSimEngine::kParallel, 256);                \
  BENCHMARK_CAPTURE(BM_EngineWidth, design##_parallel_w512, getter,       \
                    fault::FaultSimEngine::kParallel, 512);                \
  BENCHMARK_CAPTURE(BM_EngineWidth, design##_differential_w64, getter,    \
                    fault::FaultSimEngine::kDifferential, 64);             \
  BENCHMARK_CAPTURE(BM_EngineWidth, design##_differential_w256, getter,   \
                    fault::FaultSimEngine::kDifferential, 256);            \
  BENCHMARK_CAPTURE(BM_EngineWidth, design##_differential_w512, getter,   \
                    fault::FaultSimEngine::kDifferential, 512)

PFD_WIDTH_BENCH(ewf, &Ewf);

#undef PFD_WIDTH_BENCH

void BM_MonteCarloPower(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  const power::PowerModel model =
      core::MakePowerModel(d.system, power::TechModel::Vsc450());
  const fault::TestPlan plan = d.system.MakeTestPlan();
  power::MonteCarloConfig mc;
  mc.min_batches = 16;
  mc.max_batches = 16;
  mc.rel_tol = 0.0;
  mc.exec.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power::EstimatePowerMonteCarlo(d.system.nl, plan, model, mc));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_MonteCarloPower);

// Thread-scaling sweep for the Monte Carlo batch fan-out (fixed 16 batches
// so every thread count simulates identical work).
void BM_MonteCarloPowerThreads(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  const power::PowerModel model =
      core::MakePowerModel(d.system, power::TechModel::Vsc450());
  const fault::TestPlan plan = d.system.MakeTestPlan();
  power::MonteCarloConfig mc;
  mc.min_batches = 16;
  mc.max_batches = 16;
  mc.rel_tol = 0.0;
  mc.exec.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power::EstimatePowerMonteCarlo(d.system.nl, plan, model, mc));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_MonteCarloPowerThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SymbolicSfrCheck(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  const analysis::ControlTrace golden =
      analysis::ExtractControlTrace(d.system, nullptr, 3);
  // An undetected fault with effects: stuck-1 on the first load line.
  const fault::StuckFault f{d.system.line_nets[0], 0, Trit::kOne};
  const analysis::ControlTrace faulty =
      analysis::ExtractControlTrace(d.system, &f, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::SymbolicSfrCheck(d.system, golden, faulty));
  }
}
BENCHMARK(BM_SymbolicSfrCheck);

void BM_QuineMcCluskey(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  synth::TwoLevelSpec spec;
  spec.num_inputs = n;
  spec.table.resize(1u << n);
  for (std::uint32_t m = 0; m < spec.table.size(); ++m) {
    spec.table[m] = (m * 2654435761u >> 28) % 3 == 0   ? Trit::kOne
                    : (m * 2654435761u >> 28) % 3 == 1 ? Trit::kZero
                                                        : Trit::kX;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::MinimizeSop(spec));
  }
}
BENCHMARK(BM_QuineMcCluskey)->Arg(4)->Arg(6)->Arg(8);

void BM_FullSystemBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(designs::BuildDiffeq(4));
  }
}
BENCHMARK(BM_FullSystemBuild);

void BM_FullPipeline(benchmark::State& state) {
  const designs::BenchmarkDesign& d = Diffeq();
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = 200;
  cfg.exec.threads = 1;  // pin: isolates single-core pipeline cost
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ClassifyControllerFaults(d.system, d.hls, cfg));
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamps the *library under test*'s
// build type into the JSON context. google-benchmark's own
// "library_build_type" describes the benchmark library, which can be a
// release apt package while pfd itself was built Debug — exactly the
// debug-numbers incident bench/run_bench.sh now refuses.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifndef PFD_BENCH_BUILD_TYPE
#define PFD_BENCH_BUILD_TYPE "unknown"
#endif
  benchmark::AddCustomContext("pfd_build_type", PFD_BENCH_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("pfd_assertions", "disabled");
#else
  benchmark::AddCustomContext("pfd_assertions", "enabled");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
