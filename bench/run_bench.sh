#!/usr/bin/env bash
# Builds and runs the engine micro-benchmarks, writing BENCH_engines.json at
# the repo root so perf trajectory is tracked across PRs.
#
#   ./bench/run_bench.sh                               # everything
#   REPS=5 ./bench/run_bench.sh --benchmark_filter=BM_LogicSimStep
#   BUILD_DIR=/tmp/b ./bench/run_bench.sh
#
# Extra arguments are passed through to the perf_engines binary.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target perf_engines >/dev/null

"$BUILD/bench/perf_engines" \
  --benchmark_out="$ROOT/BENCH_engines.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${REPS:-1}" \
  --benchmark_report_aggregates_only=true \
  "$@"

echo "wrote $ROOT/BENCH_engines.json"
