#!/usr/bin/env bash
# Builds and runs the engine micro-benchmarks, writing BENCH_engines.json at
# the repo root so perf trajectory is tracked across PRs.
#
#   ./bench/run_bench.sh                               # everything
#   REPS=5 ./bench/run_bench.sh --benchmark_filter=BM_LogicSimStep
#   BUILD_DIR=/tmp/b ./bench/run_bench.sh
#
# Extra arguments are passed through to the perf_engines binary.
#
# Numbers from a non-Release build of the pfd library are refused: the
# emitted JSON's context.pfd_build_type (stamped by perf_engines itself)
# must be "Release", or the script deletes the file and fails. Pass
# --allow-debug to keep going for local experiments — the JSON is then
# loudly tagged with context.pfd_allow_debug so it can never be mistaken
# for (or committed as) a real trajectory record.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

ALLOW_DEBUG=0
PASSTHROUGH=()
for arg in "$@"; do
  if [[ "$arg" == "--allow-debug" ]]; then
    ALLOW_DEBUG=1
  else
    PASSTHROUGH+=("$arg")
  fi
done

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target perf_engines >/dev/null

OUT="$ROOT/BENCH_engines.json"
"$BUILD/bench/perf_engines" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${REPS:-1}" \
  --benchmark_report_aggregates_only=true \
  ${PASSTHROUGH[@]+"${PASSTHROUGH[@]}"}

BUILD_TYPE="$(python3 -c "
import json, sys
doc = json.load(open(sys.argv[1]))
print(doc.get('context', {}).get('pfd_build_type', 'unknown'))
" "$OUT")"

if [[ "$BUILD_TYPE" != "Release" ]]; then
  if [[ "$ALLOW_DEBUG" -eq 1 ]]; then
    python3 - "$OUT" <<'EOF'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
doc.setdefault("context", {})["pfd_allow_debug"] = True
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
EOF
    echo "run_bench.sh: WARNING: pfd was built '$BUILD_TYPE', not Release." >&2
    echo "run_bench.sh: WARNING: numbers are NOT comparable; the JSON is" >&2
    echo "run_bench.sh: WARNING: tagged context.pfd_allow_debug=true." >&2
  else
    rm -f "$OUT"
    echo "run_bench.sh: FAIL: pfd was built '$BUILD_TYPE', not Release —" >&2
    echo "run_bench.sh: refusing to record benchmark numbers (a stale" >&2
    echo "run_bench.sh: CMakeCache in $BUILD can cause this; remove it or" >&2
    echo "run_bench.sh: set BUILD_DIR). Use --allow-debug to override." >&2
    exit 1
  fi
fi

echo "wrote $OUT"
