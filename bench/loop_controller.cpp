// Extension experiment: the power-analysis method on a *branching*
// controller.
//
// The paper's examples run linear schedules; its introduction, however,
// motivates the problem with controller-datapath interaction. This bench
// applies the full methodology to the iterating Diffeq — the same Euler
// body executing "while x1 < a", with x/y/u carried between iterations and
// the controller branching on a status line fed back from the datapath
// comparator. The symbolic trace-replay prover does not apply (control is
// data-dependent), so every undetected fault is decided by gate-level dual
// runs; the power grading itself is unchanged.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf(
      "=== Power-analysis test of the iterating (while-loop) Diffeq ===\n\n");

  const designs::BenchmarkDesign linear = designs::BuildDiffeq(4);
  const designs::BenchmarkDesign loop = designs::BuildDiffeqLoop(4);
  std::printf("linear: %s\n", linear.system.nl.Stats().ToString().c_str());
  std::printf("loop:   %s (pattern budget %d cycles, %d extra for "
              "iterations)\n\n",
              loop.system.nl.Stats().ToString().c_str(),
              loop.system.cycles_per_pattern,
              loop.system.loop_extra_cycles);

  TextTable t({"system", "total faults", "SFR", "%SFR", "fault-free uW",
               "SFR detected @5%"});
  for (const designs::BenchmarkDesign* d : {&linear, &loop}) {
    core::PipelineConfig cfg;
    cfg.gate_check.max_exhaustive_bits = 14;
    cfg.gate_check.sample_patterns = 4096;
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(d->system, d->hls, cfg);
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(d->system, report, grade_cfg);
    t.AddRow({d->name, std::to_string(report.total),
              std::to_string(report.sfr),
              TextTable::FormatDouble(report.PercentSfr(), 1) + "%",
              TextTable::FormatDouble(graded.fault_free_uw, 2),
              std::to_string(graded.DetectedCount()) + "/" +
                  std::to_string(graded.faults.size())});
    if (d == &loop) {
      std::printf("loop-system SFR faults (power-graded):\n%s\n",
                  core::GradingTable(graded).c_str());
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nThe method carries over: the branching controller's SFR faults are "
      "still load/select don't-care artefacts, and load-line faults still "
      "announce themselves through power.\n");
  return 0;
}
