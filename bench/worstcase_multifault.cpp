// Reproduces the Section-4 in-text experiment: "simulating the differential
// equation solver while adding as many control line effects as possible
// while still not disrupting the datapath computation. The power increased
// by over 200% over the fault-free case."
//
// The composer raises every load line in every state where its registers
// are idle and flips every don't-care mux select, then *proves* the
// perturbation functionally invisible by symbolic RTL equivalence before
// measuring power. Run for all three examples.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/worstcase.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf(
      "=== Section 4 worst case: maximal non-disruptive control "
      "perturbation ===\npaper (Diffeq): power increased by over 200%%\n\n");

  TextTable table({"circuit", "extra loads", "select flips", "verified SFR",
                   "base uW", "perturbed uW", "change"});
  core::GradeConfig cfg;
  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    const core::WorstCaseResult w =
        core::ComposeWorstCase(d.system, d.hls, cfg);
    table.AddRow({d.name, std::to_string(w.extra_loads),
                  std::to_string(w.select_flips),
                  w.verified_equivalent ? "yes" : "NO",
                  TextTable::FormatDouble(w.base_uw, 2),
                  TextTable::FormatDouble(w.perturbed_uw, 2),
                  TextTable::FormatPercent(w.percent_change)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
