// Reproduces Table 3 of the paper: are the power effects of SFR faults
// consistent across different short test sets?
//
// For Diffeq and Poly, selected SFR faults are measured under the converged
// Monte Carlo estimate and under three 1200-pattern TPGR test sets with
// different seeds — the third seed "almost all 0s", which in the paper made
// absolute power drop noticeably while percentage changes stayed stable.
// The property to look for: the % change columns agree across test sets
// even where absolute power moves.
#include <algorithm>
#include <cstdio>
#include <set>

#include "base/stats.hpp"
#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "power/power_sim.hpp"
#include "tpg/lfsr.hpp"

namespace {

constexpr int kPatternsPerSet = 1200;

void RunOne(const pfd::designs::BenchmarkDesign& d) {
  using namespace pfd;
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
  core::GradeConfig grade_cfg;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);

  const power::PowerModel model =
      core::MakePowerModel(d.system, grade_cfg.tech);
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const std::uint32_t seeds[3] = {tpg::kTestSetSeed1, tpg::kTestSetSeed2,
                                  tpg::kTestSetSeed3};

  auto testset_power = [&](const fault::StuckFault* f, std::uint32_t seed) {
    std::span<const fault::StuckFault> faults;
    if (f != nullptr) faults = {f, 1};
    return power::MeasureTestSetPower(
               d.system.nl, {plan, seed, kPatternsPerSet}, model, faults, {})
        .breakdown.datapath_uw;
  };

  std::printf(
      "=== Table 3 (%s): power consistency across test sets "
      "(%d patterns each; seed 3 near-zero) ===\n",
      d.name.c_str(), kPatternsPerSet);

  TextTable table({"fault", "Monte Carlo uW", "Test set 1 uW",
                   "Test set 2 uW", "Test set 3 uW"});
  double base[4];
  base[0] = graded.fault_free_uw;
  for (int s = 0; s < 3; ++s) base[s + 1] = testset_power(nullptr, seeds[s]);
  table.AddRow({"fault-free", TextTable::FormatDouble(base[0], 2),
                TextTable::FormatDouble(base[1], 2),
                TextTable::FormatDouble(base[2], 2),
                TextTable::FormatDouble(base[3], 2)});
  table.AddRule();

  // Representative SFR faults across the power range.
  std::vector<const core::GradedFault*> by_power;
  for (const core::GradedFault& gf : graded.faults) by_power.push_back(&gf);
  std::sort(by_power.begin(), by_power.end(),
            [](const core::GradedFault* a, const core::GradedFault* b) {
              return a->power_uw < b->power_uw;
            });
  std::set<std::size_t> picks;
  if (!by_power.empty()) {
    picks.insert(0);
    picks.insert(by_power.size() - 1);
    picks.insert((by_power.size() - 1) / 3);
    picks.insert(2 * (by_power.size() - 1) / 3);
  }
  for (std::size_t i : picks) {
    const core::GradedFault* gf = by_power[i];
    std::vector<std::string> row;
    row.push_back("fault " + std::to_string(i + 1) + " (" + gf->record->name +
                  ")");
    row.push_back(TextTable::FormatDouble(gf->power_uw, 2) + " (" +
                  TextTable::FormatPercent(gf->percent_change) + ")");
    for (int s = 0; s < 3; ++s) {
      const double p = testset_power(&gf->record->fault, seeds[s]);
      row.push_back(TextTable::FormatDouble(p, 2) + " (" +
                    TextTable::FormatPercent(
                        pfd::PercentChange(base[s + 1], p)) +
                    ")");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  using namespace pfd;
  RunOne(designs::BuildDiffeq(4));
  RunOne(designs::BuildPoly(4));
  return 0;
}
