// Ablation of the controller-synthesis design choices DESIGN.md calls out:
// output-logic style (per-line SOP / shared-term SOP / state decoder),
// don't-care fill (hard zeros vs minimiser-chosen), and state encoding
// (binary / Gray / one-hot). Each cell reruns the full Section-5 pipeline
// on Diffeq — the SFR population is a property of how the controller was
// synthesized, which is exactly the point of the paper's Section 2.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf(
      "=== Ablation: controller synthesis choices (Diffeq, 4-bit) ===\n\n");

  const hls::Dfg dfg = designs::MakeDiffeqDfg(4);
  const hls::HlsResult hr = hls::RunHls(dfg, designs::DiffeqConfig());

  struct StyleRow {
    const char* name;
    synth::OutputLogicStyle style;
  };
  struct EncRow {
    const char* name;
    synth::StateEncoding encoding;
  };
  const StyleRow styles[] = {
      {"per-line SOP", synth::OutputLogicStyle::kMinimizedSop},
      {"shared-term SOP", synth::OutputLogicStyle::kSharedSop},
      {"state decoder", synth::OutputLogicStyle::kStateDecoder}};
  const EncRow encodings[] = {{"binary", synth::StateEncoding::kBinary},
                              {"gray", synth::StateEncoding::kGray},
                              {"one-hot", synth::StateEncoding::kOneHot}};

  TextTable t({"output logic", "dc fill", "encoding", "ctrl gates",
               "total faults", "SFR", "%SFR", "CFR"});
  for (const StyleRow& style : styles) {
    for (const char* fill_name : {"zero", "minimizer"}) {
      for (const EncRow& enc : encodings) {
        // One-hot bypasses the SOP machinery entirely; only report it once
        // per fill to avoid duplicate rows.
        if (enc.encoding == synth::StateEncoding::kOneHot &&
            style.style != synth::OutputLogicStyle::kSharedSop) {
          continue;
        }
        synth::SynthOptions opts;
        opts.style = style.style;
        opts.fill = fill_name[0] == 'z' ? synth::DontCareFill::kZero
                                        : synth::DontCareFill::kMinimizer;
        opts.encoding = enc.encoding;
        const synth::System sys = synth::BuildSystem(
            "diffeq", hr.datapath, hr.control, hr.load_map, opts);
        core::PipelineConfig cfg;
        const core::ClassificationReport r =
            core::ClassifyControllerFaults(sys, hr, cfg);
        t.AddRow({style.name, fill_name, enc.name,
                  std::to_string(sys.nl.Stats().controller_gates),
                  std::to_string(r.total), std::to_string(r.sfr),
                  TextTable::FormatDouble(r.PercentSfr(), 1) + "%",
                  std::to_string(r.cfr)});
      }
    }
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nNote: the repository default (shared-term SOP, zero fill, binary) "
      "lands in the paper's 13-21%% SFR band.\n");
  return 0;
}
