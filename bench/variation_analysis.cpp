// The Section-5 practical-difficulty analysis: how die-to-die power
// variation erodes the power-analysis test.
//
// For each example circuit, sweeps the die-variation sigma and reports the
// expected SFR coverage at the paper's 5% threshold, plus the per-fault
// detection probabilities for the representative faults at sigma = 1%.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/variation.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf(
      "=== Detection under process variation (threshold 5%%) ===\n\n");

  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    core::PipelineConfig pipe_cfg;
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(d.system, report, grade_cfg);

    TextTable sweep({"sigma", "expected SFR coverage", "false alarms"});
    for (double sigma : {0.0, 0.005, 0.01, 0.02, 0.03, 0.05}) {
      const core::VariationReport vr = core::AnalyzeUnderVariation(
          graded, {sigma, grade_cfg.threshold_percent});
      sweep.AddRow({TextTable::FormatDouble(sigma * 100, 1) + "%",
                    TextTable::FormatDouble(vr.ExpectedCoverage() * 100, 1) +
                        "%",
                    TextTable::FormatDouble(
                        vr.false_alarm_probability * 100, 3) +
                        "%"});
    }
    std::printf("--- %s ---\n%s", d.name.c_str(), sweep.ToString().c_str());

    const core::VariationReport detail =
        core::AnalyzeUnderVariation(graded, {0.01, 5.0});
    TextTable per_fault({"fault", "true change", "P(detect) sigma=1%"});
    for (const core::VariationOutcome& o : detail.faults) {
      if (std::abs(o.fault->percent_change) < 2.0) continue;  // keep it short
      per_fault.AddRow(
          {o.fault->record->name,
           TextTable::FormatPercent(o.fault->percent_change),
           TextTable::FormatDouble(o.detection_probability * 100, 1) + "%"});
    }
    std::printf("%s\n", per_fault.ToString().c_str());
  }
  return 0;
}
