// Ablation: datapath bit-width. The paper fixes all three examples at 4
// bits; this sweep rebuilds Diffeq at 2..8 bits and reports how the fault
// population and the power-detection picture scale. Wider datapaths raise
// absolute power (more bits toggling per control-line effect) while the
// controller — and hence the SFR fault list — stays the same size.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf("=== Ablation: Diffeq datapath bit-width ===\n\n");
  TextTable t({"width", "gates", "total faults", "SFR", "%SFR",
               "fault-free uW", "SFR detected @5%"});
  for (int width : {2, 3, 4, 6, 8}) {
    const designs::BenchmarkDesign d = designs::BuildDiffeq(width);
    core::PipelineConfig pipe_cfg;
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(d.system, report, grade_cfg);
    t.AddRow({std::to_string(width),
              std::to_string(d.system.nl.Stats().gates),
              std::to_string(report.total), std::to_string(report.sfr),
              TextTable::FormatDouble(report.PercentSfr(), 1) + "%",
              TextTable::FormatDouble(graded.fault_free_uw, 1),
              std::to_string(graded.DetectedCount()) + "/" +
                  std::to_string(graded.faults.size())});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
