// Integrated test vs the DFT alternative (Section 2 of the paper).
//
// The paper's premise: SFR faults are undetectable in any integrated test,
// and the classical fix — multiplexing the controller outputs onto the
// datapath outputs for direct observation [Bhatia & Jha] — is impossible
// for hard cores and costs interface hardware. This bench quantifies both
// sides on the three examples:
//   * integrated test: coverage tops out at (total - SFR) / total;
//   * DFT observation: every controller fault that reaches a control line
//     is directly observable (SFR faults included), at the printed gate
//     overhead and extra pins;
//   * power analysis: recovers most of the gap with zero hardware change.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "synth/dft.hpp"

int main() {
  using namespace pfd;
  std::printf(
      "=== Integrated test vs DFT observation vs power analysis ===\n\n");

  TextTable t({"circuit", "faults", "integrated coverage",
               "+power analysis", "DFT coverage", "DFT gates", "DFT pins",
               "sessions"});
  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    core::PipelineConfig cfg;
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(d.system, d.hls, cfg);
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(d.system, report, grade_cfg);

    // DFT: same fault universe simulated with the observation muxes active,
    // accumulating detections across all observation sessions.
    const synth::DftSystem dft = synth::InsertObservationDft(d.system);
    const auto all = fault::GenerateFaults(dft.system.nl,
                                           netlist::ModuleTag::kController);
    const auto faults =
        fault::Collapse(dft.system.nl, all).representatives;
    std::vector<bool> caught(faults.size(), false);
    for (int session = 0; session < dft.sessions; ++session) {
      const fault::FaultSimResult r = fault::RunFaultSim(
          {dft.system.nl, {dft.MakeDftPlan(session), cfg.tpgr_seed, 64},
           faults});
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (r.status[i] != fault::FaultStatus::kUndetected) {
          caught[i] = true;
        }
      }
    }
    std::size_t dft_caught = 0;
    for (bool c : caught) {
      if (c) ++dft_caught;
    }

    const double integrated =
        100.0 * static_cast<double>(report.total - report.sfr - report.cfr) /
        static_cast<double>(report.total);
    const double with_power =
        100.0 *
        static_cast<double>(report.total - report.cfr - report.sfr +
                            graded.DetectedCount()) /
        static_cast<double>(report.total);
    t.AddRow({d.name, std::to_string(report.total),
              TextTable::FormatDouble(integrated, 1) + "%",
              TextTable::FormatDouble(with_power, 1) + "%",
              TextTable::FormatDouble(
                  100.0 * static_cast<double>(dft_caught) /
                      static_cast<double>(faults.size()),
                  1) +
                  "%",
              std::to_string(dft.mux_gates_added),
              std::to_string(1 + dft.session_select.size()),
              std::to_string(dft.sessions)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nDFT observation needs hardware inside/around the core (impossible "
      "for a hard core); power analysis closes most of the SFR gap with "
      "none.\n");
  return 0;
}
