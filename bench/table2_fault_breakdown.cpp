// Reproduces Table 2 of the paper: "Breakdown of controller faults for the
// three examples" — total (collapsed) controller faults, how many are SFR,
// and the SFR percentage. The paper reports 13.0% / 20.3% / 13.5% for
// Diffeq / Facet / Poly; the reproduction targets the same low-teens-to-20%
// band.
//
// Extra columns beyond the paper show where the remaining faults were
// caught in the Section-5 pipeline (steps 1-4), which the paper reports
// only in prose ("remaining faults were SFI"; "did not contain any CFR
// faults").
#include <cstdio>

#include "base/text_table.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;

  std::printf("=== Table 2: breakdown of controller faults ===\n");
  std::printf(
      "paper: Diffeq 284 total / 37 SFR (13.0%%); Facet 177 / 36 (20.3%%); "
      "Poly 207 / 28 (13.5%%)\n\n");

  TextTable table({"circuit", "Total Faults", "SFR Faults", "%Faults SFR",
                   "SFI(sim)", "SFI(potential)", "SFI(analysis)", "CFR"});
  core::PipelineConfig cfg;
  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    const core::ClassificationReport r =
        core::ClassifyControllerFaults(d.system, d.hls, cfg);
    table.AddRow({d.name, std::to_string(r.total), std::to_string(r.sfr),
                  TextTable::FormatDouble(r.PercentSfr(), 1) + "%",
                  std::to_string(r.sfi_sim), std::to_string(r.sfi_potential),
                  std::to_string(r.sfi_analysis), std::to_string(r.cfr)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
