// Scale study: the methodology one size class above the paper.
//
// The paper's examples are 10-op bodies with ~10-state controllers. The
// EWF-like benchmark (34 ops, the classic "large" HLS workload) shows how
// the pipeline behaves as the controller's state space and the datapath
// grow: fault counts, SFR share, classification cost drivers (the
// exhaustive sweep gives way to sampling once the input space passes 2^20),
// and the power-detection picture.
#include <chrono>
#include <cstdio>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf("=== Scale study: Diffeq (10 ops) vs EWF-like (34 ops) ===\n\n");

  TextTable t({"design", "ops", "states", "gates", "faults", "SFR", "%SFR",
               "fault-free uW", "detected @5%", "classify ms", "grade ms"});
  struct Case {
    const char* name;
    designs::BenchmarkDesign design;
    std::size_t ops;
  };
  Case cases[] = {{"diffeq", designs::BuildDiffeq(4), 10},
                  {"ewf", designs::BuildEwf(4), 34}};
  for (Case& c : cases) {
    core::PipelineConfig cfg;
    // EWF has 5 4-bit inputs = 20 input bits: still exhaustible, but cap
    // the budget so the study reflects a sampling-mode deployment.
    cfg.gate_check.max_exhaustive_bits = 16;
    cfg.gate_check.sample_patterns = 8192;
    const auto t0 = std::chrono::steady_clock::now();
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(c.design.system, c.design.hls, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(c.design.system, report, grade_cfg);
    const auto t2 = std::chrono::steady_clock::now();
    const auto ms = [](auto a, auto b) {
      return std::to_string(
          std::chrono::duration_cast<std::chrono::milliseconds>(b - a)
              .count());
    };
    t.AddRow({c.name, std::to_string(c.ops),
              std::to_string(c.design.system.control_spec.NumStates()),
              std::to_string(c.design.system.nl.Stats().gates),
              std::to_string(report.total), std::to_string(report.sfr),
              TextTable::FormatDouble(report.PercentSfr(), 1) + "%",
              TextTable::FormatDouble(graded.fault_free_uw, 1),
              std::to_string(graded.DetectedCount()) + "/" +
                  std::to_string(graded.faults.size()),
              ms(t0, t1), ms(t1, t2)});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
