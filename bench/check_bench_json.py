#!/usr/bin/env python3
"""Validate the schema of a google-benchmark JSON output file.

Used by the bench-smoke CI job to catch a benchmark binary that runs but
emits a malformed or empty BENCH_engines.json (wrong flags, a crashed
benchmark mid-run, an aggregate-only file with no aggregates). Checks:

  * top-level "context" and "benchmarks" keys exist;
  * "benchmarks" is a non-empty list;
  * every entry has a "name" and finite, positive "real_time"/"cpu_time"
    and a positive "iterations" count (error entries fail the check);
  * every benchmark named via --require is present;
  * with --require-release, the file must come from a Release build of the
    pfd library (context.pfd_build_type == "Release", stamped by
    perf_engines itself) and must not carry the run_bench.sh --allow-debug
    tag (context.pfd_allow_debug) — the guard against the debug-numbers
    incident recurring in a committed BENCH_engines.json.

  * every --require-speedup NEW BASE MIN triple holds: the NEW benchmark's
    faults_per_sec rate counter (falling back to inverse real_time when the
    counter is absent) is at least MIN times the BASE benchmark's.

Usage:
  bench/check_bench_json.py BENCH_engines.json --require-release \
      --require BM_LogicSimStep --require BM_CompiledKernelStep \
      --require-speedup BM_EngineEndToEnd/ewf_differential \
          BM_EngineEndToEnd/ewf_parallel 5.0
"""

import argparse
import json
import math
import sys


def fail(msg: str) -> None:
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="benchmark that must appear (prefix match on the run name, "
        "so BM_Foo also matches BM_Foo/64 and BM_Foo_mean)",
    )
    parser.add_argument(
        "--require-speedup",
        action="append",
        nargs=3,
        default=[],
        metavar=("NEW", "BASE", "MIN"),
        help="require benchmark NEW's faults_per_sec (or inverse real_time) "
        "to be at least MIN times benchmark BASE's (prefix match as with "
        "--require)",
    )
    parser.add_argument(
        "--require-release",
        action="store_true",
        help="fail unless context.pfd_build_type is 'Release' and the file "
        "is not tagged pfd_allow_debug",
    )
    args = parser.parse_args()

    try:
        with open(args.json_file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.json_file}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    for key in ("context", "benchmarks"):
        if key not in doc:
            fail(f"missing top-level key '{key}'")
    benchmarks = doc["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        fail("'benchmarks' is not a non-empty list")

    if args.require_release:
        context = doc.get("context", {})
        build_type = context.get("pfd_build_type")
        if build_type != "Release":
            fail(f"context.pfd_build_type is {build_type!r}, not 'Release' "
                 "(numbers from a non-Release pfd build are not trajectory "
                 "records)")
        if context.get("pfd_allow_debug"):
            fail("file is tagged context.pfd_allow_debug (recorded with "
                 "run_bench.sh --allow-debug); refusing it as a record")

    names = []
    for i, b in enumerate(benchmarks):
        if not isinstance(b, dict) or "name" not in b:
            fail(f"benchmarks[{i}] has no 'name'")
        name = b["name"]
        if "error_occurred" in b and b["error_occurred"]:
            fail(f"{name}: benchmark reported an error: "
                 f"{b.get('error_message', '?')}")
        for field in ("real_time", "cpu_time"):
            v = b.get(field)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
                fail(f"{name}: '{field}' is not a positive finite number: {v!r}")
        iters = b.get("iterations")
        if not isinstance(iters, int) or iters <= 0:
            fail(f"{name}: 'iterations' is not a positive integer: {iters!r}")
        names.append(name)

    for req in args.require:
        if not any(n == req or n.startswith(req + "/") or
                   n.startswith(req + "_") for n in names):
            fail(f"required benchmark '{req}' not found "
                 f"(got: {', '.join(names)})")

    def find_entry(name: str) -> dict:
        for b in benchmarks:
            n = b["name"]
            if n == name or n.startswith(name + "/") or n.startswith(name + "_"):
                return b
        fail(f"speedup benchmark '{name}' not found "
             f"(got: {', '.join(names)})")
        raise AssertionError  # unreachable

    def rate_of(b: dict) -> float:
        v = b.get("faults_per_sec")
        if isinstance(v, (int, float)) and math.isfinite(v) and v > 0:
            return float(v)
        return 1.0 / float(b["real_time"])  # same unit across one file

    for new, base, minimum in args.require_speedup:
        try:
            min_ratio = float(minimum)
        except ValueError:
            fail(f"--require-speedup minimum '{minimum}' is not a number")
        bn, bb = find_entry(new), find_entry(base)
        ratio = rate_of(bn) / rate_of(bb)
        if ratio < min_ratio:
            fail(f"speedup {bn['name']} vs {bb['name']} is {ratio:.2f}x, "
                 f"below the required {min_ratio:.2f}x")
        print(f"check_bench_json: speedup {bn['name']} vs {bb['name']}: "
              f"{ratio:.2f}x (>= {min_ratio:.2f}x)")

    print(f"check_bench_json: OK: {len(names)} benchmark entr"
          f"{'y' if len(names) == 1 else 'ies'} validated")


if __name__ == "__main__":
    main()
