// Ablation: timing model of the power estimator.
//
// The reproduction's default power model is zero-delay (one transition per
// net per cycle). Real CMOS datapaths also burn power in hazards —
// multiplier arrays especially glitch heavily. This bench re-measures the
// fault-free baseline and every Diffeq SFR fault with unit-delay timing
// (glitches counted) and asks the question that matters for the paper's
// method: do the *percentage changes* — and therefore the detection
// verdicts — survive the timing model?
#include <cstdio>

#include "base/stats.hpp"
#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "power/power_sim.hpp"

int main() {
  using namespace pfd;
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
  core::GradeConfig grade_cfg;
  const power::PowerModel model =
      core::MakePowerModel(d.system, grade_cfg.tech);
  const fault::TestPlan plan = d.system.MakeTestPlan();

  auto measure = [&](const fault::StuckFault* f, bool unit_delay) {
    power::MonteCarloConfig mc;
    mc.unit_delay = unit_delay;
    std::span<const fault::StuckFault> faults;
    if (f != nullptr) faults = {f, 1};
    return power::EstimatePowerMonteCarlo(d.system.nl, plan, model, faults,
                                          mc)
        .breakdown.datapath_uw;
  };

  const double base_zero = measure(nullptr, false);
  const double base_unit = measure(nullptr, true);
  std::printf("=== Ablation: zero-delay vs unit-delay (glitch) power ===\n");
  std::printf(
      "Diffeq fault-free: %.2f uW zero-delay, %.2f uW unit-delay "
      "(glitch overhead %+.1f%%)\n\n",
      base_zero, base_unit, PercentChange(base_zero, base_unit));

  TextTable t({"fault", "zero-delay change", "unit-delay change",
               "verdict @5%"});
  int agree = 0, total = 0;
  for (const core::FaultRecord& r : report.records) {
    if (r.cls != core::FaultClass::kSfr) continue;
    const double dz =
        PercentChange(base_zero, measure(&r.fault, false));
    const double du =
        PercentChange(base_unit, measure(&r.fault, true));
    const bool vz = std::abs(dz) > 5.0;
    const bool vu = std::abs(du) > 5.0;
    ++total;
    if (vz == vu) ++agree;
    t.AddRow({r.name, TextTable::FormatPercent(dz),
              TextTable::FormatPercent(du),
              vz == vu ? (vz ? "detect/detect" : "miss/miss")
                       : (vz ? "detect/MISS" : "MISS/detect")});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("\ndetection verdicts agree for %d of %d SFR faults.\n", agree,
              total);
  return 0;
}
