// Ablation: how much simulation does the power method need?
//
// (a) Monte Carlo convergence: the paper simulates "for random data until
//     the power converges"; this sweep shows the estimate and its 95%
//     confidence half-width as the batch budget grows.
// (b) Test-set length: Table 3 uses 1200-pattern sets; this sweep shows how
//     short a TPGR set can get before the measured percentage change of a
//     representative SFR fault drifts from the converged value.
#include <cstdio>

#include "base/stats.hpp"
#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "power/power_sim.hpp"
#include "tpg/lfsr.hpp"

int main() {
  using namespace pfd;
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
  core::GradeConfig grade_cfg;
  const power::PowerModel model =
      core::MakePowerModel(d.system, grade_cfg.tech);
  const fault::TestPlan plan = d.system.MakeTestPlan();

  std::printf("=== Ablation (a): Monte Carlo convergence, Diffeq ===\n");
  TextTable conv({"max batches", "patterns", "datapath uW", "CI95 rel"});
  for (int batches : {2, 4, 8, 16, 64, 256}) {
    power::MonteCarloConfig mc;
    mc.min_batches = batches;
    mc.max_batches = batches;
    mc.rel_tol = 0.0;  // force the full budget
    const power::PowerResult r =
        power::EstimatePowerMonteCarlo(d.system.nl, plan, model, mc);
    conv.AddRow({std::to_string(batches), std::to_string(r.patterns),
                 TextTable::FormatDouble(r.breakdown.datapath_uw, 2),
                 TextTable::FormatDouble(r.ci95_rel * 100, 3) + "%"});
  }
  std::printf("%s\n", conv.ToString().c_str());

  // Pick the largest-effect SFR fault as the probe.
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);
  if (graded.faults.empty()) {
    std::printf("no SFR faults to probe\n");
    return 0;
  }
  const core::GradedFault* probe = &graded.faults[0];
  for (const core::GradedFault& gf : graded.faults) {
    if (gf.percent_change > probe->percent_change) probe = &gf;
  }

  std::printf(
      "=== Ablation (b): test-set length, Diffeq, fault %s (converged "
      "%+.2f%%) ===\n",
      probe->record->name.c_str(), probe->percent_change);
  TextTable len({"patterns", "fault-free uW", "faulty uW", "change"});
  for (int patterns : {64, 128, 320, 640, 1200, 2560}) {
    const fault::StimulusSpec stim{plan, tpg::kTestSetSeed1, patterns};
    const double base =
        power::MeasureTestSetPower(d.system.nl, stim, model, {}, {})
            .breakdown.datapath_uw;
    const fault::StuckFault f = probe->record->fault;
    const double faulty =
        power::MeasureTestSetPower(d.system.nl, stim, model,
                                   std::span<const fault::StuckFault>(&f, 1),
                                   {})
            .breakdown.datapath_uw;
    len.AddRow({std::to_string(patterns), TextTable::FormatDouble(base, 2),
                TextTable::FormatDouble(faulty, 2),
                TextTable::FormatPercent(PercentChange(base, faulty))});
  }
  std::printf("%s", len.ToString().c_str());
  return 0;
}
