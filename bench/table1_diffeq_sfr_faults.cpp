// Reproduces Table 1 of the paper: representative SFR faults of the
// differential-equation solver, their control-line effects, and the change
// in Monte Carlo datapath power.
//
// The paper chose faults "that show the full range of effect on power, from
// fault 1, which causes the largest decrease, to fault 37, which causes the
// largest increase"; this harness does the same: it grades every SFR fault,
// sorts by power, and prints the extremes plus evenly spaced representatives
// in between (the full population is in fig7_power_scatter).
#include <algorithm>
#include <cstdio>
#include <set>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);
  core::GradeConfig grade_cfg;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);

  std::vector<const core::GradedFault*> by_power;
  for (const core::GradedFault& gf : graded.faults) by_power.push_back(&gf);
  std::sort(by_power.begin(), by_power.end(),
            [](const core::GradedFault* a, const core::GradedFault* b) {
              return a->power_uw < b->power_uw;
            });

  std::printf("=== Table 1: SFR fault power effects, Diffeq (4-bit) ===\n");
  std::printf(
      "paper: fault-free 1.679 mW; representatives from -3.02%% to "
      "+20.98%%\n\n");

  TextTable table({"fault", "control line effects", "power uW", "% change"});
  table.AddRow({"fault-free", "-",
                TextTable::FormatDouble(graded.fault_free_uw, 2), "-"});
  table.AddRule();

  // The extremes plus up to four evenly spaced faults in between.
  std::set<std::size_t> picks;
  if (!by_power.empty()) {
    picks.insert(0);
    picks.insert(by_power.size() - 1);
    for (int k = 1; k <= 4; ++k) {
      picks.insert(k * (by_power.size() - 1) / 5);
    }
  }
  for (std::size_t i : picks) {
    const core::GradedFault* gf = by_power[i];
    std::string effects;
    int n = 0;
    for (const auto& ce : gf->record->effects) {
      if (!effects.empty()) effects += "; ";
      effects += std::to_string(++n) + ". " + ce.description;
    }
    table.AddRow({"fault " + std::to_string(i + 1) + " (" + gf->record->name +
                      ")",
                  effects, TextTable::FormatDouble(gf->power_uw, 2),
                  TextTable::FormatPercent(gf->percent_change)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
