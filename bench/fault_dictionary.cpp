// Power-signature fault dictionary: the diagnostic resolution of the
// paper's method.
//
// Detection asks "is this die's power off by more than the threshold?";
// diagnosis asks "which SFR fault would explain this power?". This bench
// builds the Monte Carlo power dictionary for each example, then simulates
// noisy measurements of every SFR fault and reports how often the true
// fault is the top-ranked (and top-3) dictionary entry, as a function of
// the measurement/die noise.
#include <cstdio>

#include "base/text_table.hpp"
#include "core/diagnosis.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

int main() {
  using namespace pfd;
  std::printf("=== Power-signature fault dictionary resolution ===\n\n");
  TextTable t({"circuit", "dictionary size", "sigma", "top-1", "top-3"});
  for (const designs::BenchmarkDesign& d : designs::BuildAll(4)) {
    core::PipelineConfig cfg;
    const core::ClassificationReport report =
        core::ClassifyControllerFaults(d.system, d.hls, cfg);
    core::GradeConfig grade_cfg;
    const core::PowerGradeReport graded =
        core::GradeSfrFaults(d.system, report, grade_cfg);
    for (double sigma : {0.002, 0.005, 0.01, 0.02}) {
      const core::ResolutionReport rr = core::EvaluateDiagnosisResolution(
          graded, {sigma}, /*trials_per_fault=*/200, /*k=*/3, 0xD1A6);
      t.AddRow({d.name, std::to_string(graded.faults.size() + 1),
                TextTable::FormatDouble(sigma * 100, 1) + "%",
                TextTable::FormatDouble(rr.top1_accuracy * 100, 1) + "%",
                TextTable::FormatDouble(rr.topk_accuracy * 100, 1) + "%"});
    }
    t.AddRule();
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nDictionary entries with near-identical signatures (e.g. faults on "
      "one shared load line) are inherently indistinguishable by power "
      "alone, which bounds top-1 accuracy.\n");
  return 0;
}
