// Reproduces Figure 7 of the paper: for each example circuit, the datapath
// power consumed in the presence of every SFR controller fault, against the
// fault-free baseline and the +/-5% detection band.
//
// Like the paper's plot, faults that affect only multiplexer select lines
// come first, then faults that affect register load lines; each group is
// sorted by increasing power. The paper's headline observations to look for
// in this output:
//   * select-only faults stay inside the band (small changes, some negative)
//   * load-line faults always increase power; many exceed the band for
//     Diffeq and Facet, fewer for Poly (long lifespans -> small effects).
//
// Usage: fig7_power_scatter [diffeq|facet|poly]...   (default: all three)
#include <cstdio>
#include <string>
#include <vector>

#include "base/text_table.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"

namespace {

void RunOne(const pfd::designs::BenchmarkDesign& d) {
  using namespace pfd;
  core::PipelineConfig pipe_cfg;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, pipe_cfg);

  core::GradeConfig grade_cfg;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);

  std::printf("=== Figure 7 (%s): SFR fault power scatter ===\n",
              d.name.c_str());
  std::printf("fault-free datapath power: %.2f uW; band: [%.2f, %.2f] uW\n",
              graded.fault_free_uw,
              graded.fault_free_uw * (1.0 - grade_cfg.threshold_percent / 100),
              graded.fault_free_uw * (1.0 + grade_cfg.threshold_percent / 100));

  TextTable table({"#", "group", "fault", "power uW", "change", "detected"});
  int idx = 0;
  std::size_t select_only = 0;
  std::size_t load_total = 0;
  std::size_t load_detected = 0;
  for (const core::GradedFault* gf : graded.Figure7Order()) {
    ++idx;
    const bool load = gf->record->touches_load_line;
    if (!load) ++select_only;
    if (load) {
      ++load_total;
      if (gf->outside_band) ++load_detected;
    }
    table.AddRow({std::to_string(idx), load ? "load" : "select",
                  gf->record->name,
                  TextTable::FormatDouble(gf->power_uw, 2),
                  TextTable::FormatPercent(gf->percent_change),
                  gf->outside_band ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "%zu SFR faults: %zu select-only, %zu load-line; %zu of %zu load-line "
      "faults detected, %zu total detected.\n\n",
      graded.faults.size(), select_only, load_total, load_detected,
      load_total, graded.DetectedCount());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfd;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"diffeq", "facet", "poly"};
  for (const std::string& name : names) {
    if (name == "diffeq") {
      RunOne(designs::BuildDiffeq(4));
    } else if (name == "facet") {
      RunOne(designs::BuildFacet(4));
    } else if (name == "poly") {
      RunOne(designs::BuildPoly(4));
    } else {
      std::fprintf(stderr, "unknown design: %s\n", name.c_str());
      return 1;
    }
  }
  return 0;
}
