#!/usr/bin/env bash
# Soak-benchmarks the pfdd daemon and proves its service contract end to
# end, writing BENCH_pfdd.json at the repo root:
#
#   * starts `pfdtool serve` on an ephemeral loopback port
#   * drives it with `pfdtool loadgen` (concurrent mixed
#     classify/grade/xcheck jobs on one shared pool), recording per-kind
#     p50/p99 latency into BENCH_pfdd.json
#   * validates every dumped per-job RunReport with check_run_report.py
#   * byte-compares every served classify/grade/xcheck result against the
#     solo CLI run of the same request
#   * scrapes the metrics endpoint over the same protocol
#   * SIGTERMs the server and requires a graceful drain with exit code 0
#
#   ./bench/run_pfdd_soak.sh                 # defaults: 25 jobs, 8 clients
#   JOBS=50 CONCURRENCY=16 ./bench/run_pfdd_soak.sh
#
# Like run_bench.sh, numbers from a non-Release build are refused: the
# JSON's context.pfd_build_type (stamped by loadgen itself) must be
# "Release" or the file is deleted and the script fails. --allow-debug
# keeps the file for local experiments, loudly tagged pfd_allow_debug.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="${JOBS:-25}"
CONCURRENCY="${CONCURRENCY:-8}"
PATTERNS="${PATTERNS:-120}"
ITERS="${ITERS:-400}"
SEED="${SEED:-1}"

ALLOW_DEBUG=0
for arg in "$@"; do
  if [[ "$arg" == "--allow-debug" ]]; then
    ALLOW_DEBUG=1
  else
    echo "run_pfdd_soak.sh: unknown argument '$arg'" >&2
    exit 2
  fi
done

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target pfdtool >/dev/null
PFDTOOL="$BUILD/tools/pfdtool"

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# --- start the daemon and discover its ephemeral port --------------------
"$PFDTOOL" serve --port 0 --service-threads "$CONCURRENCY" \
  --queue-capacity 64 >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVE_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^pfdd: listening port=\([0-9]*\).*/\1/p' \
    "$WORK/serve.out" 2>/dev/null || true)"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "run_pfdd_soak.sh: FAIL: server died during startup:" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "run_pfdd_soak.sh: FAIL: no 'pfdd: listening port=' line" >&2
  exit 1
fi
echo "run_pfdd_soak.sh: serving on port $PORT (pid $SERVE_PID)"

# --- soak: concurrent mixed jobs, latency into BENCH_pfdd.json -----------
OUT="$ROOT/BENCH_pfdd.json"
mkdir -p "$WORK/dump"
"$PFDTOOL" loadgen --port "$PORT" --jobs "$JOBS" \
  --concurrency "$CONCURRENCY" --patterns "$PATTERNS" \
  --seed "$SEED" --iters "$ITERS" \
  --bench-json "$OUT" --dump-dir "$WORK/dump"

# --- every served RunReport validates against the schema checker ---------
REPORTS=("$WORK"/dump/*.report.json)
echo "run_pfdd_soak.sh: validating ${#REPORTS[@]} run report(s)"
for report in "${REPORTS[@]}"; do
  python3 "$ROOT/tools/check_run_report.py" "$report" >/dev/null
done

# --- byte-identity: every served result == the solo CLI run --------------
# loadgen's job list is deterministic: kind = mix[i % 5] with the default
# mix, design = {diffeq,facet,poly}[i % 3], xcheck seed = SEED + i.
MIX=(classify classify classify grade xcheck)
DESIGNS=(diffeq facet poly)
for design in "${DESIGNS[@]}"; do
  "$PFDTOOL" classify "$design" --patterns "$PATTERNS" --csv \
    >"$WORK/solo_classify_$design.csv"
  "$PFDTOOL" grade "$design" --patterns "$PATTERNS" --csv \
    >"$WORK/solo_grade_$design.csv"
done
CHECKED=0
for ((i = 0; i < JOBS; ++i)); do
  kind="${MIX[$((i % 5))]}"
  dump="$WORK/dump/job_${i}_${kind}.csv"
  [[ -f "$dump" ]] || {
    echo "run_pfdd_soak.sh: FAIL: missing dump $dump" >&2
    exit 1
  }
  case "$kind" in
  classify | grade)
    design="${DESIGNS[$((i % 3))]}"
    cmp "$dump" "$WORK/solo_${kind}_${design}.csv" || {
      echo "run_pfdd_soak.sh: FAIL: job $i ($kind $design) is not" \
        "byte-identical to the solo CLI run" >&2
      exit 1
    }
    ;;
  xcheck)
    "$PFDTOOL" xcheck --seed "$((SEED + i))" --iters "$ITERS" \
      >"$WORK/solo_xcheck.csv"
    cmp "$dump" "$WORK/solo_xcheck.csv" || {
      echo "run_pfdd_soak.sh: FAIL: job $i (xcheck seed $((SEED + i)))" \
        "is not byte-identical to the solo CLI run" >&2
      exit 1
    }
    ;;
  esac
  CHECKED=$((CHECKED + 1))
done
echo "run_pfdd_soak.sh: $CHECKED served result(s) byte-identical to solo"

# --- metrics endpoint answers over the same socket -----------------------
"$PFDTOOL" call --port "$PORT" metrics >"$WORK/metrics.txt"
for metric in pfdd.accepted pfdd.served pfdd.request_us.p99; do
  grep -q "^$metric " "$WORK/metrics.txt" || {
    echo "run_pfdd_soak.sh: FAIL: metrics output lacks $metric" >&2
    exit 1
  }
done

# --- SIGTERM => graceful drain, exit 0 -----------------------------------
kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
SERVE_PID=""
if [[ "$RC" -ne 0 ]]; then
  echo "run_pfdd_soak.sh: FAIL: server exited $RC after SIGTERM" >&2
  exit 1
fi
echo "run_pfdd_soak.sh: graceful drain OK ($(cat "$WORK/serve.err"))"

# --- refuse non-Release numbers, then schema-check the artifact ----------
BUILD_TYPE="$(python3 -c "
import json, sys
doc = json.load(open(sys.argv[1]))
print(doc.get('context', {}).get('pfd_build_type', 'unknown'))
" "$OUT")"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  if [[ "$ALLOW_DEBUG" -eq 1 ]]; then
    python3 - "$OUT" <<'EOF'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
doc.setdefault("context", {})["pfd_allow_debug"] = True
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
EOF
    echo "run_pfdd_soak.sh: WARNING: pfd was built '$BUILD_TYPE', not" >&2
    echo "run_pfdd_soak.sh: WARNING: Release; JSON tagged allow_debug." >&2
  else
    rm -f "$OUT"
    echo "run_pfdd_soak.sh: FAIL: pfd was built '$BUILD_TYPE', not" >&2
    echo "run_pfdd_soak.sh: Release — refusing to record soak numbers" >&2
    echo "run_pfdd_soak.sh: (stale CMakeCache in $BUILD? remove it or" >&2
    echo "run_pfdd_soak.sh: set BUILD_DIR). --allow-debug overrides." >&2
    exit 1
  fi
  python3 "$ROOT/bench/check_bench_json.py" "$OUT" \
    --require pfdd_soak/all
else
  python3 "$ROOT/bench/check_bench_json.py" "$OUT" \
    --require-release \
    --require pfdd_soak/all \
    --require pfdd_soak/classify \
    --require pfdd_soak/grade \
    --require pfdd_soak/xcheck
fi

echo "wrote $OUT"
