// Tests for the observability substrate: counter aggregation (including
// cross-thread), span nesting, trace-JSON well-formedness (parsed back with
// a minimal JSON reader), and the disabled-registry zero-cost path.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "designs/designs.hpp"
#include "logicsim/simulator.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace pfd::obs {
namespace {

// Restores the global registry to "disabled, no sink" and zeroes all
// counters, so tests compose in any order within this binary.
class RegistryGuard {
 public:
  RegistryGuard() { Cleanup(); }
  ~RegistryGuard() { Cleanup(); }

 private:
  static void Cleanup() {
    Registry::Global().InstallTrace(nullptr);
    Registry::Global().set_enabled(false);
    Registry::Global().ResetAll();
  }
};

// --- minimal JSON reader (enough to validate a trace_event array) ---------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  const JsonObject& obj() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& arr() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  // Returns false (instead of asserting) on malformed input so tests can
  // EXPECT on well-formedness.
  bool Parse(JsonValue& out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string& out) {
    if (!Eat('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return false;
            }
            out += static_cast<char>(code);  // BMP only; enough for tests
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return Eat('"');
  }
  bool ParseValue(JsonValue& out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      auto obj = std::make_shared<JsonObject>();
      SkipWs();
      if (Eat('}')) {
        out.v = obj;
        return true;
      }
      for (;;) {
        std::string key;
        JsonValue val;
        if (!ParseString(key) || !Eat(':') || !ParseValue(val)) return false;
        (*obj)[key] = val;
        if (Eat(',')) continue;
        if (Eat('}')) break;
        return false;
      }
      out.v = obj;
      return true;
    }
    if (c == '[') {
      ++pos_;
      auto arr = std::make_shared<JsonArray>();
      SkipWs();
      if (Eat(']')) {
        out.v = arr;
        return true;
      }
      for (;;) {
        JsonValue val;
        if (!ParseValue(val)) return false;
        arr->push_back(val);
        if (Eat(',')) continue;
        if (Eat(']')) break;
        return false;
      }
      out.v = arr;
      return true;
    }
    if (c == '"') {
      std::string str;
      if (!ParseString(str)) return false;
      out.v = str;
      return true;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.v = true;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.v = false;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.v = nullptr;
      return true;
    }
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out.v = std::stod(std::string(s_.substr(pos_, end - pos_)));
    pos_ = end;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- counters / gauges ----------------------------------------------------

TEST(Counters, SameNameSameSlotAndAggregation) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  Counter& a = reg.GetCounter("test.counter_agg");
  Counter& b = reg.GetCounter("test.counter_agg");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  b.Add(7);
  EXPECT_EQ(reg.CounterValue("test.counter_agg"), 12u);
  EXPECT_EQ(reg.CounterValue("test.never_registered"), 0u);
}

TEST(Counters, ConcurrentAddsSumExactly) {
  RegistryGuard guard;
  Counter& c = Registry::Global().GetCounter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Counters, SnapshotIsNameSortedAndResetAllZeroes) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  reg.GetCounter("test.zzz").Add(3);
  reg.GetCounter("test.aaa").Add(1);
  const auto snap = reg.CounterSnapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  reg.ResetAll();
  EXPECT_EQ(reg.CounterValue("test.zzz"), 0u);
  EXPECT_EQ(reg.CounterValue("test.aaa"), 0u);
}

TEST(Gauges, SetAndSnapshot) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  reg.GetGauge("test.gauge").Set(0.125);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("test.gauge"), 0.125);
  reg.GetGauge("test.gauge").Set(2.5);  // last write wins
  EXPECT_DOUBLE_EQ(reg.GaugeValue("test.gauge"), 2.5);
}

// --- spans and the trace sink ---------------------------------------------

TEST(Spans, NestedParentChildOrdering) {
  RegistryGuard guard;
  Trace trace;
  Registry::Global().InstallTrace(&trace);
  {
    Span parent("parent");
    {
      Span child("child");
      Span grandchild("grandchild");
      (void)grandchild;
    }
  }
  Registry::Global().InstallTrace(nullptr);

  const std::vector<Trace::Event> events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close innermost-first.
  EXPECT_EQ(events[0].name, "grandchild");
  EXPECT_EQ(events[1].name, "child");
  EXPECT_EQ(events[2].name, "parent");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[0].depth, 2);
  // Child intervals nest inside the parent interval.
  const auto& parent_ev = events[2];
  for (const auto& child_ev : {events[0], events[1]}) {
    EXPECT_GE(child_ev.ts_us, parent_ev.ts_us);
    EXPECT_LE(child_ev.ts_us + child_ev.dur_us,
              parent_ev.ts_us + parent_ev.dur_us + 1e-6);
  }
}

TEST(Spans, TraceJsonParsesBackWithRequiredKeys) {
  RegistryGuard guard;
  Trace trace;
  Registry::Global().InstallTrace(&trace);
  {
    // Name needing escaping must not corrupt the JSON.
    Span weird("span \"with\\ newline\n");
    Span args("with_args", Span::Args({{"faults", 42}, {"patterns", 7}}));
    (void)args;
  }
  trace.RecordInstant("marker");
  Registry::Global().InstallTrace(nullptr);

  const std::string json = trace.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(root)) << json;
  ASSERT_TRUE(root.is_array());
  ASSERT_EQ(root.arr().size(), 3u);
  bool saw_weird = false;
  for (const JsonValue& ev : root.arr()) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& o = ev.obj();
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      EXPECT_TRUE(o.count(key)) << "missing " << key;
    }
    EXPECT_GE(o.at("ts").num(), 0.0);
    if (o.at("name").str() == "span \"with\\ newline\n") saw_weird = true;
    if (o.at("name").str() == "with_args") {
      const JsonObject& a = o.at("args").obj();
      EXPECT_DOUBLE_EQ(a.at("faults").num(), 42.0);
      EXPECT_DOUBLE_EQ(a.at("patterns").num(), 7.0);
    }
  }
  EXPECT_TRUE(saw_weird);
}

TEST(Spans, NoSinkRecordsNothingAndIsInactive) {
  RegistryGuard guard;
  Span s("unobserved");
  EXPECT_FALSE(s.active());
}

// --- disabled-registry zero-overhead path ---------------------------------

TEST(Disabled, EngineCountersStayZeroWhenRegistryIsOff) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  ASSERT_FALSE(reg.enabled());

  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  for (int c = 0; c < d.system.cycles_per_pattern; ++c) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  EXPECT_EQ(reg.CounterValue("logicsim.cycles"), 0u);
  EXPECT_EQ(reg.CounterValue("logicsim.gate_evals"), 0u);
  EXPECT_EQ(reg.CounterValue("logicsim.simulators"), 0u);
}

TEST(Disabled, EnabledRegistryCountsTheSameRun) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();

  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  reg.set_enabled(true);  // after the build: count only the run below
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  const int cycles = d.system.cycles_per_pattern;
  for (int c = 0; c < cycles; ++c) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  EXPECT_EQ(reg.CounterValue("logicsim.cycles"),
            static_cast<std::uint64_t>(cycles));
  EXPECT_EQ(reg.CounterValue("logicsim.simulators"), 1u);
  // Zero-delay: one evaluation per combinational gate per cycle.
  EXPECT_GT(reg.CounterValue("logicsim.gate_evals"), 0u);
  EXPECT_EQ(reg.CounterValue("logicsim.gate_evals") % cycles, 0u);
}

}  // namespace
}  // namespace pfd::obs
