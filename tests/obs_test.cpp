// Tests for the observability substrate: counter aggregation (including
// cross-thread), span nesting, trace-JSON well-formedness (parsed back with
// a minimal JSON reader), and the disabled-registry zero-cost path.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "designs/designs.hpp"
#include "logicsim/simulator.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "test_json.hpp"

namespace pfd::obs {
namespace {

// Restores the global registry to "disabled, no sink" and zeroes all
// counters, so tests compose in any order within this binary.
class RegistryGuard {
 public:
  RegistryGuard() { Cleanup(); }
  ~RegistryGuard() { Cleanup(); }

 private:
  static void Cleanup() {
    Registry::Global().InstallTrace(nullptr);
    Registry::Global().set_enabled(false);
    Registry::Global().ResetAll();
  }
};

// The minimal JSON reader lives in test_json.hpp (shared with the
// run-report and flight-recorder tests).
using testutil::JsonObject;
using testutil::JsonParser;
using testutil::JsonValue;

// --- counters / gauges ----------------------------------------------------

TEST(Counters, SameNameSameSlotAndAggregation) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  Counter& a = reg.GetCounter("test.counter_agg");
  Counter& b = reg.GetCounter("test.counter_agg");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  b.Add(7);
  EXPECT_EQ(reg.CounterValue("test.counter_agg"), 12u);
  EXPECT_EQ(reg.CounterValue("test.never_registered"), 0u);
}

TEST(Counters, ConcurrentAddsSumExactly) {
  RegistryGuard guard;
  Counter& c = Registry::Global().GetCounter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Counters, SnapshotIsNameSortedAndResetAllZeroes) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  reg.GetCounter("test.zzz").Add(3);
  reg.GetCounter("test.aaa").Add(1);
  const auto snap = reg.CounterSnapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  reg.ResetAll();
  EXPECT_EQ(reg.CounterValue("test.zzz"), 0u);
  EXPECT_EQ(reg.CounterValue("test.aaa"), 0u);
}

TEST(Gauges, SetAndSnapshot) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  reg.GetGauge("test.gauge").Set(0.125);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("test.gauge"), 0.125);
  reg.GetGauge("test.gauge").Set(2.5);  // last write wins
  EXPECT_DOUBLE_EQ(reg.GaugeValue("test.gauge"), 2.5);
}

// --- spans and the trace sink ---------------------------------------------

TEST(Spans, NestedParentChildOrdering) {
  RegistryGuard guard;
  Trace trace;
  Registry::Global().InstallTrace(&trace);
  {
    Span parent("parent");
    {
      Span child("child");
      Span grandchild("grandchild");
      (void)grandchild;
    }
  }
  Registry::Global().InstallTrace(nullptr);

  const std::vector<Trace::Event> events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close innermost-first.
  EXPECT_EQ(events[0].name, "grandchild");
  EXPECT_EQ(events[1].name, "child");
  EXPECT_EQ(events[2].name, "parent");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[0].depth, 2);
  // Child intervals nest inside the parent interval.
  const auto& parent_ev = events[2];
  for (const auto& child_ev : {events[0], events[1]}) {
    EXPECT_GE(child_ev.ts_us, parent_ev.ts_us);
    EXPECT_LE(child_ev.ts_us + child_ev.dur_us,
              parent_ev.ts_us + parent_ev.dur_us + 1e-6);
  }
}

TEST(Spans, TraceJsonParsesBackWithRequiredKeys) {
  RegistryGuard guard;
  Trace trace;
  Registry::Global().InstallTrace(&trace);
  {
    // Name needing escaping must not corrupt the JSON.
    Span weird("span \"with\\ newline\n");
    Span args("with_args", Span::Args({{"faults", 42}, {"patterns", 7}}));
    (void)args;
  }
  trace.RecordInstant("marker");
  Registry::Global().InstallTrace(nullptr);

  const std::string json = trace.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(root)) << json;
  ASSERT_TRUE(root.is_array());
  ASSERT_EQ(root.arr().size(), 3u);
  bool saw_weird = false;
  for (const JsonValue& ev : root.arr()) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& o = ev.obj();
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      EXPECT_TRUE(o.count(key)) << "missing " << key;
    }
    EXPECT_GE(o.at("ts").num(), 0.0);
    if (o.at("name").str() == "span \"with\\ newline\n") saw_weird = true;
    if (o.at("name").str() == "with_args") {
      const JsonObject& a = o.at("args").obj();
      EXPECT_DOUBLE_EQ(a.at("faults").num(), 42.0);
      EXPECT_DOUBLE_EQ(a.at("patterns").num(), 7.0);
    }
  }
  EXPECT_TRUE(saw_weird);
}

TEST(Spans, NoSinkRecordsNothingAndIsInactive) {
  RegistryGuard guard;
  Span s("unobserved");
  EXPECT_FALSE(s.active());
}

// --- disabled-registry zero-overhead path ---------------------------------

TEST(Disabled, EngineCountersStayZeroWhenRegistryIsOff) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  ASSERT_FALSE(reg.enabled());

  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  for (int c = 0; c < d.system.cycles_per_pattern; ++c) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  EXPECT_EQ(reg.CounterValue("logicsim.cycles"), 0u);
  EXPECT_EQ(reg.CounterValue("logicsim.gate_evals"), 0u);
  EXPECT_EQ(reg.CounterValue("logicsim.simulators"), 0u);
}

TEST(Disabled, EnabledRegistryCountsTheSameRun) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();

  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  reg.set_enabled(true);  // after the build: count only the run below
  logicsim::Simulator sim(d.system.nl);
  for (const synth::Bus& bus : d.system.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  const int cycles = d.system.cycles_per_pattern;
  for (int c = 0; c < cycles; ++c) {
    sim.SetInputAllLanes(d.system.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  EXPECT_EQ(reg.CounterValue("logicsim.cycles"),
            static_cast<std::uint64_t>(cycles));
  EXPECT_EQ(reg.CounterValue("logicsim.simulators"), 1u);
  // Zero-delay: one evaluation per combinational gate per cycle.
  EXPECT_GT(reg.CounterValue("logicsim.gate_evals"), 0u);
  EXPECT_EQ(reg.CounterValue("logicsim.gate_evals") % cycles, 0u);
}

}  // namespace
}  // namespace pfd::obs
