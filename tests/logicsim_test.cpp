// Unit tests for the 64-lane three-valued simulator: gate semantics, DFF
// sequencing, power-up X, stuck-at forcing hooks, and switching-activity
// accounting.
#include <gtest/gtest.h>

#include "logicsim/simulator.hpp"

namespace pfd::logicsim {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

struct AdderFixture {
  Netlist nl;
  GateId a, b, cin, sum, cout;

  AdderFixture() {
    a = nl.AddInput("a");
    b = nl.AddInput("b");
    cin = nl.AddInput("cin");
    const GateId axb =
        nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{a, b}});
    sum = nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{axb, cin}});
    const GateId t1 =
        nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{a, b}});
    const GateId t2 =
        nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{axb, cin}});
    cout = nl.AddGate(GateKind::kOr, ModuleTag::kDatapath, {{t1, t2}});
  }
};

TEST(Simulator, FullAdderTruthTableAllLanes) {
  AdderFixture f;
  Simulator sim(f.nl);
  // Pack all 8 input combinations into lanes 0..7.
  Word3 wa = kAllX, wb = kAllX, wc = kAllX;
  for (int i = 0; i < 8; ++i) {
    wa = SetLane(wa, i, (i & 1) ? Trit::kOne : Trit::kZero);
    wb = SetLane(wb, i, (i & 2) ? Trit::kOne : Trit::kZero);
    wc = SetLane(wc, i, (i & 4) ? Trit::kOne : Trit::kZero);
  }
  sim.SetInput(f.a, wa);
  sim.SetInput(f.b, wb);
  sim.SetInput(f.cin, wc);
  sim.Step();
  for (int i = 0; i < 8; ++i) {
    const int total = (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1);
    EXPECT_EQ(sim.ValueLane(f.sum, i),
              (total & 1) ? Trit::kOne : Trit::kZero);
    EXPECT_EQ(sim.ValueLane(f.cout, i),
              (total >= 2) ? Trit::kOne : Trit::kZero);
  }
}

TEST(Simulator, XPropagatesPessimistically) {
  AdderFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.a, Trit::kX);
  sim.SetInputAllLanes(f.b, Trit::kZero);
  sim.SetInputAllLanes(f.cin, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(f.sum, 0), Trit::kX);   // X ^ 0 = X
  EXPECT_EQ(sim.ValueLane(f.cout, 0), Trit::kZero);  // X & 0 = 0 dominates
}

TEST(Simulator, DffPowersUpXAndCapturesOnEdge) {
  Netlist nl;
  const GateId in = nl.AddInput("in");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, in);
  Simulator sim(nl);

  sim.SetInputAllLanes(in, Trit::kOne);
  sim.Step();  // cycle 0: output is still the power-up X
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kX);
  sim.SetInputAllLanes(in, Trit::kZero);
  sim.Step();  // cycle 1: captures the 1 applied during cycle 0
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);
  sim.Step();  // cycle 2: captures the 0
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kZero);
}

TEST(Simulator, ToggleFlipFlopDividesByTwo) {
  Netlist nl;
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{d}});
  nl.ConnectDff(d, n);
  Simulator sim(nl);
  // Break the X with an output force for one cycle.
  sim.ForceOutput(d, Trit::kZero, 1ULL);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kZero);
  // Remove forces and watch it toggle.
  sim.ClearForces();
  Trit prev = sim.ValueLane(d, 0);
  for (int i = 0; i < 6; ++i) {
    sim.Step();
    const Trit cur = sim.ValueLane(d, 0);
    EXPECT_NE(cur, Trit::kX);
    EXPECT_NE(cur, prev);
    prev = cur;
  }
}

TEST(Simulator, OutputForceAffectsOnlyMaskedLanes) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.ForceOutput(g, Trit::kOne, 1ULL << 5);
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(g, 5), Trit::kOne);
  EXPECT_EQ(sim.ValueLane(g, 4), Trit::kZero);
  EXPECT_EQ(sim.ValueLane(g, 0), Trit::kZero);
}

TEST(Simulator, PinForceAffectsOnlyThatReader) {
  // One net read by two gates; force only one reader's pin.
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId buf1 = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  const GateId buf2 = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.ForcePin(buf1, 0, Trit::kOne, ~0ULL);
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(buf1, 0), Trit::kOne);   // forced branch
  EXPECT_EQ(sim.ValueLane(buf2, 0), Trit::kZero);  // untouched branch
  EXPECT_EQ(sim.ValueLane(a, 0), Trit::kZero);     // stem unaffected
}

TEST(Simulator, DffOutputForceActsAsStuckState) {
  Netlist nl;
  const GateId in = nl.AddInput("in");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, in);
  Simulator sim(nl);
  sim.ForceOutput(d, Trit::kOne, ~0ULL);
  sim.SetInputAllLanes(in, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);  // capture of 0 is overridden
}

TEST(Simulator, ToggleCountingCountsKnownTransitionsPerLane) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.EnableToggleCounting(true);
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();  // X -> 0: not counted (prev unknown)
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();  // 0 -> 1 on all 64 lanes
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();  // no change
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();  // 1 -> 0 on all 64 lanes
  EXPECT_EQ(sim.ToggleCount(g), 128u);
}

TEST(Simulator, DutyCountsKnownOnes) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.EnableToggleCounting(true);
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();
  sim.Step();
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.DutyCount(g), 128u);  // two cycles x 64 lanes at 1
}

TEST(Simulator, ResetRestoresPowerUpState) {
  Netlist nl;
  const GateId in = nl.AddInput("in");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, in);
  Simulator sim(nl);
  sim.SetInputAllLanes(in, Trit::kOne);
  sim.Step();
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);
  sim.Reset();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kX);
  EXPECT_EQ(sim.cycles(), 0u);
}

TEST(Simulator, NandNorXnorMuxSemantics) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId b = nl.AddInput("b");
  const GateId s = nl.AddInput("s");
  const GateId nand_g =
      nl.AddGate(GateKind::kNand, ModuleTag::kDatapath, {{a, b}});
  const GateId nor_g =
      nl.AddGate(GateKind::kNor, ModuleTag::kDatapath, {{a, b}});
  const GateId xnor_g =
      nl.AddGate(GateKind::kXnor, ModuleTag::kDatapath, {{a, b}});
  const GateId mux_g =
      nl.AddGate(GateKind::kMux2, ModuleTag::kDatapath, {{s, a, b}});
  Simulator sim(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      for (int sv = 0; sv < 2; ++sv) {
        sim.SetInputAllLanes(a, av ? Trit::kOne : Trit::kZero);
        sim.SetInputAllLanes(b, bv ? Trit::kOne : Trit::kZero);
        sim.SetInputAllLanes(s, sv ? Trit::kOne : Trit::kZero);
        sim.Step();
        EXPECT_EQ(sim.ValueLane(nand_g, 0),
                  (av && bv) ? Trit::kZero : Trit::kOne);
        EXPECT_EQ(sim.ValueLane(nor_g, 0),
                  (av || bv) ? Trit::kZero : Trit::kOne);
        EXPECT_EQ(sim.ValueLane(xnor_g, 0),
                  (av == bv) ? Trit::kOne : Trit::kZero);
        EXPECT_EQ(sim.ValueLane(mux_g, 0),
                  (sv ? bv : av) ? Trit::kOne : Trit::kZero);
      }
    }
  }
}

}  // namespace
}  // namespace pfd::logicsim
