// Unit tests for the 64-lane three-valued simulator: gate semantics, DFF
// sequencing, power-up X, stuck-at forcing hooks, and switching-activity
// accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <vector>

#include "guard/guard.hpp"
#include "logicsim/simulator.hpp"

namespace pfd::logicsim {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

struct AdderFixture {
  Netlist nl;
  GateId a, b, cin, sum, cout;

  AdderFixture() {
    a = nl.AddInput("a");
    b = nl.AddInput("b");
    cin = nl.AddInput("cin");
    const GateId axb =
        nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{a, b}});
    sum = nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{axb, cin}});
    const GateId t1 =
        nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{a, b}});
    const GateId t2 =
        nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{axb, cin}});
    cout = nl.AddGate(GateKind::kOr, ModuleTag::kDatapath, {{t1, t2}});
  }
};

TEST(Simulator, FullAdderTruthTableAllLanes) {
  AdderFixture f;
  Simulator sim(f.nl);
  // Pack all 8 input combinations into lanes 0..7.
  Word3 wa = kAllX, wb = kAllX, wc = kAllX;
  for (int i = 0; i < 8; ++i) {
    wa = SetLane(wa, i, (i & 1) ? Trit::kOne : Trit::kZero);
    wb = SetLane(wb, i, (i & 2) ? Trit::kOne : Trit::kZero);
    wc = SetLane(wc, i, (i & 4) ? Trit::kOne : Trit::kZero);
  }
  sim.SetInput(f.a, wa);
  sim.SetInput(f.b, wb);
  sim.SetInput(f.cin, wc);
  sim.Step();
  for (int i = 0; i < 8; ++i) {
    const int total = (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1);
    EXPECT_EQ(sim.ValueLane(f.sum, i),
              (total & 1) ? Trit::kOne : Trit::kZero);
    EXPECT_EQ(sim.ValueLane(f.cout, i),
              (total >= 2) ? Trit::kOne : Trit::kZero);
  }
}

TEST(Simulator, XPropagatesPessimistically) {
  AdderFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.a, Trit::kX);
  sim.SetInputAllLanes(f.b, Trit::kZero);
  sim.SetInputAllLanes(f.cin, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(f.sum, 0), Trit::kX);   // X ^ 0 = X
  EXPECT_EQ(sim.ValueLane(f.cout, 0), Trit::kZero);  // X & 0 = 0 dominates
}

TEST(Simulator, DffPowersUpXAndCapturesOnEdge) {
  Netlist nl;
  const GateId in = nl.AddInput("in");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, in);
  Simulator sim(nl);

  sim.SetInputAllLanes(in, Trit::kOne);
  sim.Step();  // cycle 0: output is still the power-up X
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kX);
  sim.SetInputAllLanes(in, Trit::kZero);
  sim.Step();  // cycle 1: captures the 1 applied during cycle 0
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);
  sim.Step();  // cycle 2: captures the 0
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kZero);
}

TEST(Simulator, ToggleFlipFlopDividesByTwo) {
  Netlist nl;
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{d}});
  nl.ConnectDff(d, n);
  Simulator sim(nl);
  // Break the X with an output force for one cycle.
  sim.ForceOutput(d, Trit::kZero, pfd::LaneMask::Lane(0));
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kZero);
  // Remove forces and watch it toggle.
  sim.ClearForces();
  Trit prev = sim.ValueLane(d, 0);
  for (int i = 0; i < 6; ++i) {
    sim.Step();
    const Trit cur = sim.ValueLane(d, 0);
    EXPECT_NE(cur, Trit::kX);
    EXPECT_NE(cur, prev);
    prev = cur;
  }
}

TEST(Simulator, OutputForceAffectsOnlyMaskedLanes) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.ForceOutput(g, Trit::kOne, pfd::LaneMask::Lane(5));
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(g, 5), Trit::kOne);
  EXPECT_EQ(sim.ValueLane(g, 4), Trit::kZero);
  EXPECT_EQ(sim.ValueLane(g, 0), Trit::kZero);
}

TEST(Simulator, PinForceAffectsOnlyThatReader) {
  // One net read by two gates; force only one reader's pin.
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId buf1 = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  const GateId buf2 = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.ForcePin(buf1, 0, Trit::kOne);
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(buf1, 0), Trit::kOne);   // forced branch
  EXPECT_EQ(sim.ValueLane(buf2, 0), Trit::kZero);  // untouched branch
  EXPECT_EQ(sim.ValueLane(a, 0), Trit::kZero);     // stem unaffected
}

TEST(Simulator, DffOutputForceActsAsStuckState) {
  Netlist nl;
  const GateId in = nl.AddInput("in");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, in);
  Simulator sim(nl);
  sim.ForceOutput(d, Trit::kOne);
  sim.SetInputAllLanes(in, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);  // capture of 0 is overridden
}

TEST(Simulator, ToggleCountingCountsKnownTransitionsPerLane) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.EnableToggleCounting(true);
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();  // X -> 0: not counted (prev unknown)
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();  // 0 -> 1 on all 64 lanes
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();  // no change
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();  // 1 -> 0 on all 64 lanes
  EXPECT_EQ(sim.ToggleCount(g), 128u);
}

TEST(Simulator, DutyCountsKnownOnes) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  Simulator sim(nl);
  sim.EnableToggleCounting(true);
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();
  sim.Step();
  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.DutyCount(g), 128u);  // two cycles x 64 lanes at 1
}

TEST(Simulator, ResetRestoresPowerUpState) {
  Netlist nl;
  const GateId in = nl.AddInput("in");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, in);
  Simulator sim(nl);
  sim.SetInputAllLanes(in, Trit::kOne);
  sim.Step();
  sim.Step();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kOne);
  sim.Reset();
  EXPECT_EQ(sim.ValueLane(d, 0), Trit::kX);
  EXPECT_EQ(sim.cycles(), 0u);
}

TEST(Simulator, NandNorXnorMuxSemantics) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId b = nl.AddInput("b");
  const GateId s = nl.AddInput("s");
  const GateId nand_g =
      nl.AddGate(GateKind::kNand, ModuleTag::kDatapath, {{a, b}});
  const GateId nor_g =
      nl.AddGate(GateKind::kNor, ModuleTag::kDatapath, {{a, b}});
  const GateId xnor_g =
      nl.AddGate(GateKind::kXnor, ModuleTag::kDatapath, {{a, b}});
  const GateId mux_g =
      nl.AddGate(GateKind::kMux2, ModuleTag::kDatapath, {{s, a, b}});
  Simulator sim(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      for (int sv = 0; sv < 2; ++sv) {
        sim.SetInputAllLanes(a, av ? Trit::kOne : Trit::kZero);
        sim.SetInputAllLanes(b, bv ? Trit::kOne : Trit::kZero);
        sim.SetInputAllLanes(s, sv ? Trit::kOne : Trit::kZero);
        sim.Step();
        EXPECT_EQ(sim.ValueLane(nand_g, 0),
                  (av && bv) ? Trit::kZero : Trit::kOne);
        EXPECT_EQ(sim.ValueLane(nor_g, 0),
                  (av || bv) ? Trit::kZero : Trit::kOne);
        EXPECT_EQ(sim.ValueLane(xnor_g, 0),
                  (av == bv) ? Trit::kOne : Trit::kZero);
        EXPECT_EQ(sim.ValueLane(mux_g, 0),
                  (sv ? bv : av) ? Trit::kOne : Trit::kZero);
      }
    }
  }
}

// --- compiled program / two-valued fast path ---------------------------------

// Sequential fixture whose power-up X state flushes after one captured
// cycle: r <- in, so the first capture of a known input makes r known.
struct FlushFixture {
  Netlist nl;
  GateId in, r, and_g, or_g;
  FlushFixture() {
    in = nl.AddInput("in");
    r = nl.AddDff(ModuleTag::kDatapath, "r");
    nl.ConnectDff(r, in);
    and_g = nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{in, r}});
    or_g = nl.AddGate(GateKind::kOr, ModuleTag::kDatapath, {{in, r}});
    nl.AddOutput(or_g, "o");
  }
};

TEST(TwoValued, CompiledProgramLevelizesFaninsBeforeReaders) {
  FlushFixture f;
  Simulator sim(f.nl);
  const CompiledNetlist& prog = sim.program();
  EXPECT_EQ(prog.num_gates(), f.nl.size());
  // Instructions cover exactly the combinational gates.
  std::size_t comb = 0;
  for (GateId g = 0; g < f.nl.size(); ++g) {
    if (f.nl.gate(g).kind != GateKind::kInput &&
        f.nl.gate(g).kind != GateKind::kDff) {
      ++comb;
    }
  }
  EXPECT_EQ(prog.num_instructions(), comb);
  // Every instruction's combinational fanins were emitted at lower levels.
  std::vector<int> level_of(f.nl.size(), -1);
  for (std::size_t li = 0; li < prog.levels().size(); ++li) {
    for (std::uint32_t i = prog.levels()[li].begin;
         i < prog.levels()[li].end; ++i) {
      level_of[prog.out()[i]] = static_cast<int>(li);
    }
  }
  for (std::uint32_t i = 0; i < prog.num_instructions(); ++i) {
    const GateId out = prog.out()[i];
    for (std::uint32_t k = 0; k < prog.fanin_count()[i]; ++k) {
      const GateId fi = prog.fanins()[prog.fanin_begin()[i] + k];
      if (prog.is_comb()[fi] == 0) continue;
      EXPECT_LT(level_of[fi], level_of[out]);
    }
  }
}

TEST(TwoValued, EngagesOnceXFlushesAndValuesStayExact) {
  FlushFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();  // r still shows the power-up X
  EXPECT_FALSE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.r, 0), Trit::kX);
  EXPECT_EQ(sim.ValueLane(f.or_g, 0), Trit::kX);  // 0 | X = X

  sim.Step();  // r committed its capture of in=0: every source is now known
  EXPECT_TRUE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.r, 0), Trit::kZero);
  EXPECT_EQ(sim.ValueLane(f.or_g, 0), Trit::kZero);

  // Fast-path evaluation stays exact on known data.
  sim.SetInputAllLanes(f.in, Trit::kOne);
  sim.Step();
  EXPECT_TRUE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.and_g, 0), Trit::kZero);  // 1 & r(0)
  EXPECT_EQ(sim.ValueLane(f.or_g, 0), Trit::kOne);
  sim.Step();  // r captures the 1
  EXPECT_TRUE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.r, 0), Trit::kOne);
}

TEST(TwoValued, ResetReturnsToThreeValued) {
  FlushFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();
  sim.Step();
  ASSERT_TRUE(sim.last_step_two_valued());

  sim.Reset();  // power-up X is back
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();
  EXPECT_FALSE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.r, 0), Trit::kX);
}

TEST(TwoValued, XInputAfterSwitchoverFallsBackAndPropagates) {
  FlushFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();
  sim.Step();
  ASSERT_TRUE(sim.last_step_two_valued());

  // Reintroduce X through a primary input: the step must drop back to the
  // three-valued plane and propagate the X faithfully.
  sim.SetInputAllLanes(f.in, Trit::kX);
  sim.Step();
  EXPECT_FALSE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.and_g, 0), Trit::kZero);  // X & r(0) = 0
  EXPECT_EQ(sim.ValueLane(f.or_g, 0), Trit::kX);      // X | 0 = X
}

TEST(TwoValued, KnownForcesStayOnFastPath) {
  FlushFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();
  sim.Step();
  ASSERT_TRUE(sim.last_step_two_valued());

  // A stuck-at force only adds known-ness, so the fast path remains exact.
  sim.ForceOutput(f.r, Trit::kOne);  // r stuck-at-1, every lane
  sim.Step();
  EXPECT_TRUE(sim.last_step_two_valued());
  EXPECT_EQ(sim.ValueLane(f.r, 0), Trit::kOne);
  EXPECT_EQ(sim.ValueLane(f.or_g, 0), Trit::kOne);
  sim.ClearForces();
}

TEST(TwoValued, LevelXWatermarkClearsAfterFlush) {
  FlushFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();  // three-valued: the OR level carries the DFF's X
  bool any_x = false;
  for (const std::uint64_t w : sim.level_x_watermark()) any_x |= w != 0;
  EXPECT_TRUE(any_x);

  sim.Step();  // two-valued: the watermark is cleared wholesale
  ASSERT_TRUE(sim.last_step_two_valued());
  for (const std::uint64_t w : sim.level_x_watermark()) EXPECT_EQ(w, 0u);
}

TEST(TwoValued, ToggleCountsSpanTheSwitchover) {
  // The 3V->2V handoff must not lose or double-count transitions: with in
  // toggling every cycle, in toggles each step, the DFF follows one cycle
  // behind (so its first measured step is a 0->0 non-toggle), and the OR
  // of the two saturates at 1 after its first rise.
  FlushFixture f;
  Simulator sim(f.nl);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();  // flush cycle 1 (3V)
  sim.Step();  // 2V from here on
  ASSERT_TRUE(sim.last_step_two_valued());
  sim.EnableToggleCounting(true);
  for (int c = 0; c < 6; ++c) {
    sim.SetInputAllLanes(f.in, (c & 1) ? Trit::kZero : Trit::kOne);
    sim.Step();
    EXPECT_TRUE(sim.last_step_two_valued());
  }
  EXPECT_EQ(sim.ToggleCount(f.in), 64u * 6u);
  EXPECT_EQ(sim.ToggleCount(f.r), 64u * 5u);
  EXPECT_EQ(sim.ToggleCount(f.or_g), 64u * 1u);
}

TEST(TwoValued, GuardProbeTripsTheStep) {
  FlushFixture f;
  Simulator sim(f.nl);
  guard::Limits limits;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  guard::Checker check(limits);
  ASSERT_FALSE(check.Check().ok());  // latch the trip: the probe is a
                                     // cheap sticky-flag read, not a clock
  sim.SetGuardProbe(&check);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  EXPECT_THROW(sim.Step(), guard::Tripped);
  sim.SetGuardProbe(nullptr);
  sim.Reset();  // contract: a tripped step leaves the machine mid-settle
  sim.SetInputAllLanes(f.in, Trit::kZero);
  EXPECT_NO_THROW(sim.Step());
}

}  // namespace
}  // namespace pfd::logicsim
