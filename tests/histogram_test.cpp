// Tests for obs::Histogram: bucket-map properties across the full uint64
// range, exact count/sum/min/max accounting, quantile interpolation and
// clamping, multi-threaded recording into the sharded slots (run under
// ASan/TSan in CI), registry integration, and the JSON snapshot shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "test_json.hpp"

namespace pfd::obs {
namespace {

class RegistryGuard {
 public:
  RegistryGuard() { Cleanup(); }
  ~RegistryGuard() { Cleanup(); }

 private:
  static void Cleanup() {
    Registry::Global().set_enabled(false);
    Registry::Global().ResetAll();
  }
};

// --- bucket map -----------------------------------------------------------

TEST(HistogramBuckets, SmallValuesGetExactUnitBuckets) {
  // Below 2^kSubBits the map is the identity: exact buckets, zero error.
  for (std::uint64_t v = 0; v < (1u << Histogram::kSubBits); ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v)) << "v=" << v;
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAndLowerBoundInverts) {
  // Probe around every power of two plus a spread of odd values; the index
  // must be non-decreasing in the value, and every value must land in
  // [BucketLowerBound(i), BucketLowerBound(i + 1)).
  std::vector<std::uint64_t> probes = {0, 1, 2, 3, 5, 7, 100, 12345};
  for (int e = 2; e < 64; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + (p >> 1));  // mid-range of the power-of-two band
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());

  int prev_index = -1;
  std::uint64_t prev_value = 0;
  std::sort(probes.begin(), probes.end());
  for (std::uint64_t v : probes) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0) << "v=" << v;
    ASSERT_LT(idx, Histogram::kNumBuckets) << "v=" << v;
    if (v >= prev_value) {
      EXPECT_GE(idx, prev_index) << "v=" << v << " prev=" << prev_value;
    }
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << "v=" << v;
    if (idx + 1 < Histogram::kNumBuckets) {
      const std::uint64_t next = Histogram::BucketLowerBound(idx + 1);
      // Buckets partition the range: the next bucket starts above v unless
      // the map has saturated at the top.
      if (next > Histogram::BucketLowerBound(idx)) {
        EXPECT_GT(next, v) << "v=" << v << " idx=" << idx;
      }
    }
    prev_index = idx;
    prev_value = v;
  }
}

TEST(HistogramBuckets, RelativeErrorBoundHolds) {
  // The log-linear split promises a bucket width of at most 2^-kSubBits of
  // the value's power-of-two band, i.e. <= 25% relative width for
  // kSubBits=2 (12.5% to the midpoint).
  for (int e = Histogram::kSubBits; e < 63; ++e) {
    const std::uint64_t v = (std::uint64_t{1} << e) + (std::uint64_t{1} << (e - 1));
    const int idx = Histogram::BucketIndex(v);
    const std::uint64_t lo = Histogram::BucketLowerBound(idx);
    ASSERT_LT(idx + 1, Histogram::kNumBuckets);
    const std::uint64_t hi = Histogram::BucketLowerBound(idx + 1);
    ASSERT_GT(hi, lo);
    EXPECT_LE(hi - lo, v >> Histogram::kSubBits << 1)
        << "bucket [" << lo << "," << hi << ") too wide for v=" << v;
  }
}

// --- recording / snapshot -------------------------------------------------

TEST(Histogram, ExactTotalsAndMinMax) {
  Histogram h("test.h");
  const std::vector<std::uint64_t> values = {3, 3, 7, 100, 100000, 0, 42};
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) {
    h.Record(v);
    sum += v;
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.name, "test.h");
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 100000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), static_cast<double>(sum) / values.size());

  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, values.size());
}

TEST(Histogram, RecordDoubleClampsAndRounds) {
  Histogram h("test.double");
  h.RecordDouble(-5.0);  // clamped to 0
  h.RecordDouble(2.6);   // rounds to 3
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 3u);
  EXPECT_EQ(snap.sum, 3u);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h("test.empty");
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h("test.reset");
  h.Record(17);
  h.Record(1 << 20);
  h.Reset();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
}

// --- quantiles ------------------------------------------------------------

TEST(HistogramQuantiles, ClampedToObservedRange) {
  Histogram h("test.q");
  for (int i = 0; i < 100; ++i) h.Record(1000);
  const HistogramSnapshot snap = h.Snapshot();
  // Every sample is 1000; interpolation inside the bucket must still be
  // clamped to the exact observed min/max.
  EXPECT_EQ(snap.Quantile(0.0), 1000u);
  EXPECT_EQ(snap.Quantile(0.5), 1000u);
  EXPECT_EQ(snap.Quantile(0.99), 1000u);
  EXPECT_EQ(snap.Quantile(1.0), 1000u);
}

TEST(HistogramQuantiles, OrderedAndWithinBucketError) {
  Histogram h("test.q2");
  // Uniform 1..1000: p50 should land near 500, p90 near 900, within the
  // 25% bucket-width bound.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  const std::uint64_t p50 = snap.Quantile(0.50);
  const std::uint64_t p90 = snap.Quantile(0.90);
  const std::uint64_t p99 = snap.Quantile(0.99);
  EXPECT_LE(snap.min, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, snap.max);
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 500.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(p90), 900.0, 900.0 * 0.25);
}

// --- concurrency ----------------------------------------------------------

TEST(HistogramThreads, EightThreadHammerKeepsExactTotals) {
  // 8 threads × 64k records into one histogram: totals must be exact after
  // join (relaxed atomics, single-writer-free contract). This is the test
  // the ASan/TSan CI jobs lean on for the sharded hot path.
  Histogram h("test.hammer");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1 << 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Record((i % 1000) + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();

  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += (i % 1000) + static_cast<std::uint64_t>(t);
    }
  }
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 999u + (kThreads - 1));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// --- registry integration -------------------------------------------------

TEST(HistogramRegistry, SameNameSameSlotAndResetAll) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  Histogram& a = reg.GetHistogram("test.reg_hist");
  Histogram& b = reg.GetHistogram("test.reg_hist");
  EXPECT_EQ(&a, &b);
  a.Record(5);
  b.Record(9);

  bool found = false;
  for (const HistogramSnapshot& snap : reg.HistogramSnapshots()) {
    if (snap.name == "test.reg_hist") {
      found = true;
      EXPECT_EQ(snap.count, 2u);
      EXPECT_EQ(snap.sum, 14u);
    }
  }
  EXPECT_TRUE(found);

  reg.ResetAll();
  for (const HistogramSnapshot& snap : reg.HistogramSnapshots()) {
    if (snap.name == "test.reg_hist") {
      EXPECT_EQ(snap.count, 0u);
      EXPECT_EQ(snap.sum, 0u);
    }
  }
}

TEST(HistogramRegistry, SnapshotJsonParsesAndCarriesQuantiles) {
  RegistryGuard guard;
  Registry& reg = Registry::Global();
  Histogram& h = reg.GetHistogram("test.json_hist_us");
  for (std::uint64_t v = 1; v <= 100; ++v) h.Record(v);

  const std::string json = SnapshotJson();
  testutil::JsonValue root;
  ASSERT_TRUE(testutil::JsonParser(json).Parse(root)) << json;
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.obj().count("histograms"));
  const auto& hists = root.obj().at("histograms").obj();
  ASSERT_TRUE(hists.count("test.json_hist_us"));
  const auto& entry = hists.at("test.json_hist_us").obj();
  EXPECT_EQ(entry.at("count").num(), 100.0);
  EXPECT_EQ(entry.at("min").num(), 1.0);
  EXPECT_EQ(entry.at("max").num(), 100.0);
  EXPECT_LE(entry.at("p50").num(), entry.at("p90").num());
  EXPECT_LE(entry.at("p90").num(), entry.at("p99").num());
  EXPECT_LE(entry.at("p99").num(), entry.at("max").num());
}

}  // namespace
}  // namespace pfd::obs
