// Tests for the RTL IR, the concrete/symbolic machines, and the hash-consed
// expression pool.
#include <gtest/gtest.h>

#include "rtl/control.hpp"
#include "rtl/datapath.hpp"
#include "rtl/expr.hpp"
#include "rtl/machine.hpp"

namespace pfd::rtl {
namespace {

// A tiny datapath: two input-fed registers, a mux choosing one of them, an
// adder, and an accumulator register.
struct TinyDatapath {
  Datapath dp;
  std::uint32_t in_a, in_b, reg_a, reg_b, acc, mux, add;

  TinyDatapath() {
    in_a = dp.AddInput("a", 4);
    in_b = dp.AddInput("b", 4);
    reg_a = dp.AddRegister("RA", 4);
    reg_b = dp.AddRegister("RB", 4);
    acc = dp.AddRegister("ACC", 4);
    mux = dp.AddMux("M", 4, {Source::Reg(reg_a), Source::Reg(reg_b)});
    add = dp.AddFu("ADD", FuKind::kAdd, 4, Source::Mux(mux),
                   Source::Reg(acc));
    dp.SetRegisterInput(reg_a, Source::Input(in_a));
    dp.SetRegisterInput(reg_b, Source::Input(in_b));
    dp.SetRegisterInput(acc, Source::Fu(add));
    dp.AddOutput("acc", Source::Reg(acc));
    dp.Finalize();
  }

  ControlWord Word(bool load_a, bool load_b, bool load_acc,
                   std::uint32_t sel) const {
    ControlWord cw;
    cw.load = {static_cast<std::uint8_t>(load_a),
               static_cast<std::uint8_t>(load_b),
               static_cast<std::uint8_t>(load_acc)};
    cw.select = {sel};
    return cw;
  }
};

TEST(Datapath, FinalizeChecksWidths) {
  Datapath dp;
  const auto in = dp.AddInput("a", 4);
  const auto r = dp.AddRegister("R", 8);  // mismatched width
  dp.SetRegisterInput(r, Source::Input(in));
  EXPECT_THROW(dp.Finalize(), Error);
}

TEST(Datapath, FinalizeRejectsCombinationalCycles) {
  Datapath dp;
  const auto in = dp.AddInput("a", 4);
  const auto f1 = dp.AddFu("F1", FuKind::kAdd, 4, Source::Input(in),
                           Source::Fu(1));  // forward ref to f2
  const auto f2 = dp.AddFu("F2", FuKind::kAdd, 4, Source::Fu(f1),
                           Source::Input(in));
  (void)f2;
  EXPECT_THROW(dp.Finalize(), Error);
}

TEST(Datapath, EvalOrderCoversAllNodes) {
  TinyDatapath t;
  EXPECT_EQ(t.dp.EvalOrder().size(), 2u);  // 1 mux + 1 fu
  EXPECT_FALSE(t.dp.Summary().empty());
}

TEST(Datapath, SelectBitsForVariousMuxSizes) {
  Datapath dp;
  const auto in = dp.AddInput("a", 4);
  const auto m2 = dp.AddMux("m2", 4, {Source::Input(in), Source::Input(in)});
  const auto m3 = dp.AddMux(
      "m3", 4, {Source::Input(in), Source::Input(in), Source::Input(in)});
  const auto m5 = dp.AddMux("m5", 4,
                            {Source::Input(in), Source::Input(in),
                             Source::Input(in), Source::Input(in),
                             Source::Input(in)});
  EXPECT_EQ(dp.muxes()[m2].SelectBits(), 1);
  EXPECT_EQ(dp.muxes()[m3].SelectBits(), 2);
  EXPECT_EQ(dp.muxes()[m5].SelectBits(), 3);
}

TEST(ConcreteMachine, ExecutesAccumulatorSchedule) {
  TinyDatapath t;
  ConcreteMachine m(t.dp, ConcreteDomain{});
  m.SetInput(t.in_a, BitVec(4, 5));
  m.SetInput(t.in_b, BitVec(4, 9));
  m.Step(t.Word(true, true, false, 0));    // load RA=5, RB=9
  m.Step(t.Word(false, false, true, 0));   // ACC = RA + ACC(0) = 5
  m.Step(t.Word(false, false, true, 1));   // ACC = RB + ACC = 14
  EXPECT_EQ(m.Output(0).value(), 14u);
  m.Step(t.Word(false, false, true, 1));   // ACC = 9 + 14 = 23 mod 16 = 7
  EXPECT_EQ(m.Output(0).value(), 7u);
}

TEST(ConcreteMachine, OutOfRangeSelectClampsToLastInput) {
  TinyDatapath t;
  ConcreteMachine m(t.dp, ConcreteDomain{});
  m.SetInput(t.in_a, BitVec(4, 3));
  m.SetInput(t.in_b, BitVec(4, 11));
  m.Step(t.Word(true, true, false, 0));
  // Select 1 on a 2-input mux with 1 select bit is RB; any faulty wider
  // value is masked first, so behaviour matches the gate-level tree.
  m.Step(t.Word(false, false, true, 1));
  EXPECT_EQ(m.Output(0).value(), 11u);
}

TEST(ConcreteMachine, LoadsAreSimultaneous) {
  // ACC loads the OLD value of RA in the same cycle RA reloads.
  TinyDatapath t;
  ConcreteMachine m(t.dp, ConcreteDomain{});
  m.SetInput(t.in_a, BitVec(4, 5));
  m.SetInput(t.in_b, BitVec(4, 0));
  m.Step(t.Word(true, false, false, 0));  // RA = 5
  m.SetInput(t.in_a, BitVec(4, 12));
  m.Step(t.Word(true, false, true, 0));   // RA = 12, ACC = old RA + 0 = 5
  EXPECT_EQ(m.RegValue(t.reg_a).value(), 12u);
  EXPECT_EQ(m.Output(0).value(), 5u);
}

TEST(ControlWord, ArityIsChecked) {
  TinyDatapath t;
  ConcreteMachine m(t.dp, ConcreteDomain{});
  ControlWord bad;
  bad.load = {1};  // wrong arity
  bad.select = {0};
  EXPECT_THROW(m.Step(bad), Error);
}

TEST(LoadLineMap, ExpandsSharedLines) {
  LoadLineMap map;
  map.regs_of_line = {{0, 2}, {1}};
  const auto loads = map.ExpandLoads({1, 0}, 3);
  EXPECT_EQ(loads, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_THROW(map.ExpandLoads({1}, 3), Error);
}

TEST(ControlSpec, ValidateCatchesBadSelectValues) {
  ControlSpec spec;
  spec.num_load_lines = 1;
  spec.num_muxes = 1;
  spec.mux_select_bits = {1};
  spec.states.resize(2);
  spec.state_names = {"RESET", "HOLD"};
  for (auto& st : spec.states) {
    st.load = {0};
    st.select = {std::nullopt};
  }
  EXPECT_NO_THROW(spec.Validate());
  spec.states[0].select[0] = 2;  // needs 2 bits
  EXPECT_THROW(spec.Validate(), Error);
}

// --- expression pool ---------------------------------------------------------

TEST(ExprPool, HashConsingSharesStructure) {
  ExprPool pool;
  const ExprRef a = pool.Var(0, 4);
  const ExprRef b = pool.Var(1, 4);
  const ExprRef e1 = pool.Apply(FuKind::kAdd, a, b);
  const ExprRef e2 = pool.Apply(FuKind::kAdd, a, b);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(pool.Var(0, 4), a);
}

TEST(ExprPool, CommutativeOpsNormalise) {
  ExprPool pool;
  const ExprRef a = pool.Var(0, 4);
  const ExprRef b = pool.Var(1, 4);
  EXPECT_EQ(pool.Apply(FuKind::kAdd, a, b), pool.Apply(FuKind::kAdd, b, a));
  EXPECT_EQ(pool.Apply(FuKind::kMul, a, b), pool.Apply(FuKind::kMul, b, a));
  EXPECT_EQ(pool.Apply(FuKind::kAnd, a, b), pool.Apply(FuKind::kAnd, b, a));
  // SUB and LT are not commutative.
  EXPECT_NE(pool.Apply(FuKind::kSub, a, b), pool.Apply(FuKind::kSub, b, a));
  EXPECT_NE(pool.Apply(FuKind::kLess, a, b), pool.Apply(FuKind::kLess, b, a));
}

TEST(ExprPool, ConstantFolding) {
  ExprPool pool;
  const ExprRef c3 = pool.Const(BitVec(4, 3));
  const ExprRef c5 = pool.Const(BitVec(4, 5));
  const ExprRef sum = pool.Apply(FuKind::kAdd, c3, c5);
  EXPECT_EQ(sum, pool.Const(BitVec(4, 8)));
  const ExprRef prod = pool.Apply(FuKind::kMul, c3, c5);
  EXPECT_EQ(prod, pool.Const(BitVec(4, 15)));
  const ExprRef lt = pool.Apply(FuKind::kLess, c3, c5);
  EXPECT_EQ(lt, pool.Const(BitVec(1, 1)));
}

TEST(ExprPool, InitLeavesAreDistinctPerRegister) {
  ExprPool pool;
  EXPECT_NE(pool.Init(0, 4), pool.Init(1, 4));
  EXPECT_EQ(pool.Init(0, 4), pool.Init(0, 4));
  EXPECT_NE(pool.Init(0, 4), pool.Var(0, 4));
}

TEST(ExprPool, ToStringReadable) {
  ExprPool pool;
  const ExprRef a = pool.Var(0, 4);
  const ExprRef c = pool.Const(BitVec(4, 3));
  // Commutative normalisation orders operands by pool id (a was interned
  // first), so both operand orders print identically.
  EXPECT_EQ(pool.ToString(pool.Apply(FuKind::kMul, c, a)), "(v0 * 3)");
  EXPECT_EQ(pool.ToString(pool.Apply(FuKind::kMul, a, c)), "(v0 * 3)");
  EXPECT_EQ(pool.ToString(pool.Apply(FuKind::kSub, c, a)), "(3 - v0)");
}

TEST(SymbolicMachine, ReloadSameVariableIsInvisible) {
  // The paper's "extra load serves simply to rewrite a variable unchanged":
  // symbolically the accumulator expression is identical.
  TinyDatapath t;
  ExprPool pool;
  SymbolicMachine m1(t.dp, SymbolicDomain{&pool});
  SymbolicMachine m2(t.dp, SymbolicDomain{&pool});
  for (auto* m : {&m1, &m2}) {
    m->SetInput(t.in_a, pool.Var(0, 4));
    m->SetInput(t.in_b, pool.Var(1, 4));
    m->Step(t.Word(true, true, false, 0));
  }
  m1.Step(t.Word(false, false, true, 0));
  // m2 re-loads RA from the input port (same value) before accumulating.
  m2.Step(t.Word(true, false, false, 0));
  m2.Step(t.Word(false, false, true, 0));
  EXPECT_EQ(m1.Output(0), m2.Output(0));
}

TEST(SymbolicMachine, GarbageOverwriteIsVisible) {
  TinyDatapath t;
  ExprPool pool;
  SymbolicMachine m1(t.dp, SymbolicDomain{&pool});
  SymbolicMachine m2(t.dp, SymbolicDomain{&pool});
  for (auto* m : {&m1, &m2}) {
    m->SetInput(t.in_a, pool.Var(0, 4));
    m->SetInput(t.in_b, pool.Var(1, 4));
    m->Step(t.Word(true, true, false, 0));
  }
  // m2 clobbers RA with b before the accumulate.
  m2.SetInput(t.in_a, pool.Var(1, 4));
  m2.Step(t.Word(true, false, false, 0));
  m1.Step(t.Word(false, false, true, 0));
  m2.Step(t.Word(false, false, true, 0));
  EXPECT_NE(m1.Output(0), m2.Output(0));
}

TEST(SymbolicAndConcreteAgree, OnRandomSchedules) {
  // Evaluating the symbolic output expression on concrete inputs must match
  // the concrete machine exactly.
  TinyDatapath t;
  for (std::uint32_t a = 0; a < 16; a += 5) {
    for (std::uint32_t b = 0; b < 16; b += 3) {
      ConcreteMachine cm(t.dp, ConcreteDomain{});
      ExprPool pool;
      SymbolicMachine sm(t.dp, SymbolicDomain{&pool});
      cm.SetInput(t.in_a, BitVec(4, a));
      cm.SetInput(t.in_b, BitVec(4, b));
      sm.SetInput(t.in_a, pool.Const(BitVec(4, a)));
      sm.SetInput(t.in_b, pool.Const(BitVec(4, b)));
      // With constant leaves, constant folding reduces symbolic outputs to
      // constants; ACC boot value 0 is modelled as a const for comparison.
      cm.SetRegValue(t.acc, BitVec(4, 0));
      sm.SetRegValue(t.acc, pool.Const(BitVec(4, 0)));
      const std::vector<ControlWord> schedule = {
          t.Word(true, true, false, 0), t.Word(false, false, true, 0),
          t.Word(false, false, true, 1), t.Word(false, false, true, 1)};
      for (const ControlWord& cw : schedule) {
        cm.Step(cw);
        sm.Step(cw);
      }
      const auto& node = pool.node(sm.Output(0));
      ASSERT_EQ(node.op, ExprPool::Op::kConst);
      EXPECT_EQ(node.aux, cm.Output(0).value());
    }
  }
}

}  // namespace
}  // namespace pfd::rtl
