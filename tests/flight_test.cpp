// Tests for the obs::FlightRecorder: ring wraparound and seq ordering,
// enable gating, JSONL dump shape (parsed line by line), file writing, and
// the guard-layer integration points — a tripped Checker and a fired
// failpoint must each leave a structured event in the ring.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "guard/guard.hpp"
#include "obs/flight.hpp"
#include "test_json.hpp"

namespace pfd::obs {
namespace {

// Restores the global recorder to "disabled, default capacity, empty" so
// tests compose in any order within this binary.
class FlightGuard {
 public:
  FlightGuard() { Cleanup(); }
  ~FlightGuard() { Cleanup(); }

 private:
  static void Cleanup() {
    guard::ClearFailpoints();
    FlightRecorder::Global().set_enabled(false);
    FlightRecorder::Global().SetCapacity(FlightRecorder::kDefaultCapacity);
  }
};

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightGuard guard;
  FlightRecorder& rec = FlightRecorder::Global();
  EXPECT_FALSE(FlightEnabled());
  RecordFlight(FlightKind::kNote, "test.disabled", "dropped");
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Events().empty());
}

TEST(FlightRecorder, EventsComeBackOldestFirstWithMonotonicSeq) {
  FlightGuard guard;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    rec.Record(FlightKind::kNote, "test.seq", "event " + std::to_string(i));
  }
  const std::vector<FlightEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].detail, "event " + std::to_string(i));
    if (i > 0) EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
  EXPECT_EQ(rec.total_recorded(), 5u);
}

TEST(FlightRecorder, RingWrapsKeepingTheLatestEvents) {
  FlightGuard guard;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.SetCapacity(4);
  rec.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    rec.Record(FlightKind::kNote, "test.wrap", std::to_string(i));
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  const std::vector<FlightEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);  // capacity bounds what is held
  // The survivors are the last 4, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].detail, std::to_string(6 + i));
  }
}

TEST(FlightRecorder, ClearResetsSeqAndCounts) {
  FlightGuard guard;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.set_enabled(true);
  rec.Record(FlightKind::kNote, "test.clear");
  rec.Clear();
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Events().empty());
  rec.Record(FlightKind::kNote, "test.clear");
  EXPECT_EQ(rec.Events().at(0).seq, 0u);
}

TEST(FlightRecorder, KindNamesAreStableWireNames) {
  EXPECT_STREQ(FlightKindName(FlightKind::kGuardTrip), "guard_trip");
  EXPECT_STREQ(FlightKindName(FlightKind::kFailpointFire), "failpoint_fire");
  EXPECT_STREQ(FlightKindName(FlightKind::kQuarantine), "quarantine");
  EXPECT_STREQ(FlightKindName(FlightKind::kRetryOutcome), "retry_outcome");
  EXPECT_STREQ(FlightKindName(FlightKind::kFallback3V), "3v_fallback");
  EXPECT_STREQ(FlightKindName(FlightKind::kCacheInsert), "cache_insert");
  EXPECT_STREQ(FlightKindName(FlightKind::kCacheDrop), "cache_drop");
  EXPECT_STREQ(FlightKindName(FlightKind::kCacheEvict), "cache_evict");
  EXPECT_STREQ(FlightKindName(FlightKind::kCancel), "cancel");
  EXPECT_STREQ(FlightKindName(FlightKind::kNote), "note");
}

TEST(FlightRecorder, JsonlEveryLineParsesAndMetaCountsDropped) {
  FlightGuard guard;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.SetCapacity(3);
  rec.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    rec.Record(FlightKind::kCacheInsert, "test.jsonl",
               "entry \"quoted\" #" + std::to_string(i));
  }
  const std::string jsonl = rec.ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    testutil::JsonValue v;
    ASSERT_TRUE(testutil::JsonParser(line).Parse(v)) << line;
    ASSERT_TRUE(v.is_object());
    if (line_no == 0) {
      // Leading meta line: totals so a reader knows what was overwritten.
      const auto& meta = v.obj().at("flight_recorder").obj();
      EXPECT_EQ(meta.at("total_recorded").num(), 5.0);
      EXPECT_EQ(meta.at("held").num(), 3.0);
      EXPECT_EQ(meta.at("dropped").num(), 2.0);
    } else {
      const auto& o = v.obj();
      EXPECT_EQ(o.at("kind").str(), "cache_insert");
      EXPECT_EQ(o.at("name").str(), "test.jsonl");
      EXPECT_TRUE(o.count("seq"));
      EXPECT_TRUE(o.count("ts_us"));
      EXPECT_NE(o.at("detail").str().find("\"quoted\""), std::string::npos);
    }
    ++line_no;
  }
  EXPECT_EQ(line_no, 1 + 3);  // meta + the held events
}

TEST(FlightRecorder, WriteFlightFileRoundTrips) {
  FlightGuard guard;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.set_enabled(true);
  rec.Record(FlightKind::kNote, "test.file", "persisted");
  const std::string path = ::testing::TempDir() + "pfd_flight_test.jsonl";
  ASSERT_TRUE(WriteFlightFile(rec, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"test.file\""), std::string::npos);
  EXPECT_NE(buf.str().find("persisted"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(WriteFlightFile(rec, "/nonexistent-dir/flight.jsonl"));
}

// --- guard-layer integration ---------------------------------------------

TEST(FlightIntegration, GuardTripLandsInTheRing) {
  FlightGuard fg;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.set_enabled(true);

  guard::Limits limits;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);  // already expired
  guard::Checker checker(limits);
  EXPECT_FALSE(checker.Check().ok());

  bool saw_trip = false;
  for (const FlightEvent& ev : rec.Events()) {
    if (ev.kind == FlightKind::kGuardTrip) {
      saw_trip = true;
      EXPECT_EQ(ev.name, "guard.checker");
      EXPECT_NE(ev.detail.find("deadline"), std::string::npos) << ev.detail;
    }
  }
  EXPECT_TRUE(saw_trip);
}

TEST(FlightIntegration, GuardTripIsRecordedOnceDespiteRepeatedChecks) {
  FlightGuard fg;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.set_enabled(true);

  guard::Limits limits;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  guard::Checker checker(limits);
  for (int i = 0; i < 5; ++i) checker.Check();

  int trips = 0;
  for (const FlightEvent& ev : rec.Events()) {
    if (ev.kind == FlightKind::kGuardTrip) ++trips;
  }
  EXPECT_EQ(trips, 1);  // the sticky first trip, not one per Check()
}

TEST(FlightIntegration, FailpointFireLandsInTheRing) {
  FlightGuard fg;
  FlightRecorder& rec = FlightRecorder::Global();
  rec.set_enabled(true);

  guard::ArmFailpoint("flight.test_fp", "throw@0");
  EXPECT_THROW(guard::MaybeFail("flight.test_fp"), pfd::Error);
  guard::ClearFailpoints();

  bool saw_fire = false;
  for (const FlightEvent& ev : rec.Events()) {
    if (ev.kind == FlightKind::kFailpointFire) {
      saw_fire = true;
      EXPECT_EQ(ev.name, "flight.test_fp");
    }
  }
  EXPECT_TRUE(saw_fire);
}

TEST(FlightIntegration, NothingRecordedWhenDisabled) {
  FlightGuard fg;
  FlightRecorder& rec = FlightRecorder::Global();
  ASSERT_FALSE(rec.enabled());

  guard::Limits limits;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  guard::Checker checker(limits);
  checker.Check();
  guard::ArmFailpoint("flight.test_fp_off", "throw@0");
  EXPECT_THROW(guard::MaybeFail("flight.test_fp_off"), pfd::Error);
  guard::ClearFailpoints();

  EXPECT_EQ(rec.total_recorded(), 0u);
}

}  // namespace
}  // namespace pfd::obs
