// Unit tests for the base module: ternary logic words, bit vectors,
// statistics, RNG determinism, and table formatting.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "base/bitvec.hpp"
#include "base/error.hpp"
#include "base/logic.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "base/text_table.hpp"

namespace pfd {
namespace {

constexpr std::array<Trit, 3> kAllTrits = {Trit::kZero, Trit::kOne, Trit::kX};

// Reference ternary semantics (Kleene strong logic restricted to {0,1,X}).
Trit RefAnd(Trit a, Trit b) {
  if (a == Trit::kZero || b == Trit::kZero) return Trit::kZero;
  if (a == Trit::kOne && b == Trit::kOne) return Trit::kOne;
  return Trit::kX;
}
Trit RefOr(Trit a, Trit b) {
  if (a == Trit::kOne || b == Trit::kOne) return Trit::kOne;
  if (a == Trit::kZero && b == Trit::kZero) return Trit::kZero;
  return Trit::kX;
}
Trit RefNot(Trit a) {
  if (a == Trit::kX) return Trit::kX;
  return a == Trit::kZero ? Trit::kOne : Trit::kZero;
}
Trit RefXor(Trit a, Trit b) {
  if (a == Trit::kX || b == Trit::kX) return Trit::kX;
  return a == b ? Trit::kZero : Trit::kOne;
}
Trit RefMux(Trit s, Trit a, Trit b) {
  if (s == Trit::kZero) return a;
  if (s == Trit::kOne) return b;
  // X select: known only when both data agree.
  if (a == b && a != Trit::kX) return a;
  return Trit::kX;
}

TEST(Logic, ExhaustiveBinaryOpsMatchReference) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      EXPECT_EQ(And3(a, b), RefAnd(a, b)) << TritChar(a) << TritChar(b);
      EXPECT_EQ(Or3(a, b), RefOr(a, b)) << TritChar(a) << TritChar(b);
      EXPECT_EQ(Xor3(a, b), RefXor(a, b)) << TritChar(a) << TritChar(b);
    }
    EXPECT_EQ(Not3(a), RefNot(a));
  }
}

TEST(Logic, ExhaustiveMuxMatchesReference) {
  for (Trit s : kAllTrits) {
    for (Trit a : kAllTrits) {
      for (Trit b : kAllTrits) {
        EXPECT_EQ(Mux3(s, a, b), RefMux(s, a, b))
            << TritChar(s) << TritChar(a) << TritChar(b);
      }
    }
  }
}

TEST(Logic, WordOpsPreserveCanonicalForm) {
  // Every pairwise combination of canonical words must stay canonical.
  const Word3 samples[] = {kAllZero, kAllOne, kAllX,
                           Word3{0x00FF00FF00FF00FFULL, 0x0FFF0FFF0FFF0FFFULL},
                           Word3{0, 0xF0F0F0F0F0F0F0F0ULL}};
  for (const Word3& a : samples) {
    ASSERT_TRUE(IsCanonical(a));
    EXPECT_TRUE(IsCanonical(Not3(a)));
    for (const Word3& b : samples) {
      EXPECT_TRUE(IsCanonical(And3(a, b)));
      EXPECT_TRUE(IsCanonical(Or3(a, b)));
      EXPECT_TRUE(IsCanonical(Xor3(a, b)));
      for (const Word3& s : samples) {
        EXPECT_TRUE(IsCanonical(Mux3(s, a, b)));
      }
    }
  }
}

TEST(Logic, LaneAccessorsRoundTrip) {
  Word3 w = kAllX;
  w = SetLane(w, 3, Trit::kOne);
  w = SetLane(w, 17, Trit::kZero);
  EXPECT_EQ(GetLane(w, 3), Trit::kOne);
  EXPECT_EQ(GetLane(w, 17), Trit::kZero);
  EXPECT_EQ(GetLane(w, 4), Trit::kX);
  w = SetLane(w, 3, Trit::kX);
  EXPECT_EQ(GetLane(w, 3), Trit::kX);
  EXPECT_TRUE(IsCanonical(w));
}

TEST(Logic, WordOpsAgreeWithScalarOpsLanewise) {
  // Build words with all 9 trit combinations spread across lanes and check
  // the packed ops equal the scalar ops per lane.
  Word3 wa = kAllX;
  Word3 wb = kAllX;
  int lane = 0;
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      wa = SetLane(wa, lane, a);
      wb = SetLane(wb, lane, b);
      ++lane;
    }
  }
  const Word3 and_w = And3(wa, wb);
  const Word3 or_w = Or3(wa, wb);
  const Word3 xor_w = Xor3(wa, wb);
  lane = 0;
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      EXPECT_EQ(GetLane(and_w, lane), And3(a, b));
      EXPECT_EQ(GetLane(or_w, lane), Or3(a, b));
      EXPECT_EQ(GetLane(xor_w, lane), Xor3(a, b));
      ++lane;
    }
  }
}

TEST(BitVec, ArithmeticWrapsToWidth) {
  const BitVec a(4, 13);
  const BitVec b(4, 7);
  EXPECT_EQ(Add(a, b).value(), (13u + 7u) & 0xF);
  EXPECT_EQ(Sub(a, b).value(), (13u - 7u) & 0xF);
  EXPECT_EQ(Mul(a, b).value(), (13u * 7u) & 0xF);
  EXPECT_EQ(LessThan(a, b).value(), 0u);
  EXPECT_EQ(LessThan(b, a).value(), 1u);
  EXPECT_EQ(LessThan(a, b).width(), 1);
}

TEST(BitVec, ExhaustiveFourBitAgainstReference) {
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      const BitVec va(4, a), vb(4, b);
      EXPECT_EQ(Add(va, vb).value(), (a + b) & 0xF);
      EXPECT_EQ(Sub(va, vb).value(), (a - b) & 0xF);
      EXPECT_EQ(Mul(va, vb).value(), (a * b) & 0xF);
      EXPECT_EQ(And(va, vb).value(), a & b);
      EXPECT_EQ(Or(va, vb).value(), a | b);
      EXPECT_EQ(Xor(va, vb).value(), a ^ b);
      EXPECT_EQ(Not(va).value(), ~a & 0xF);
      EXPECT_EQ(LessThan(va, vb).value(), a < b ? 1u : 0u);
    }
  }
}

TEST(BitVec, ConstructionMasksValue) {
  EXPECT_EQ(BitVec(4, 0x1F).value(), 0xFu);
  EXPECT_EQ(BitVec(1, 3).value(), 1u);
  EXPECT_EQ(BitVec(4, 5).ToString(), "4'b0101");
}

TEST(BitVec, WidthMismatchThrows) {
  EXPECT_THROW(Add(BitVec(4, 1), BitVec(3, 1)), Error);
  EXPECT_THROW(BitVec(0, 0), Error);
  EXPECT_THROW(BitVec(17, 0), Error);
}

TEST(Stats, RunningStatMatchesClosedForm) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_GT(s.ConfidenceHalfWidth95(), 0.0);
}

TEST(Stats, MergeMatchesSinglePass) {
  // Sharded accumulation must land on exactly the single-pass state.
  std::vector<double> xs;
  for (int i = 0; i < 97; ++i) {
    xs.push_back(3.5 + 2.0 * std::sin(0.37 * i) + (i % 7));
  }
  RunningStat whole;
  for (double x : xs) whole.Add(x);

  RunningStat a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 20 ? a : i < 60 ? b : c).Add(xs[i]);
  }
  RunningStat merged;
  merged.Merge(a);  // merge into empty
  merged.Merge(b);
  merged.Merge(c);
  RunningStat empty;
  merged.Merge(empty);  // merging an empty stat is a no-op

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-10);
  EXPECT_NEAR(merged.ConfidenceHalfWidth95(), whole.ConfidenceHalfWidth95(),
              1e-10);
}

TEST(Stats, PercentChange) {
  EXPECT_DOUBLE_EQ(PercentChange(100.0, 121.0), 21.0);
  EXPECT_DOUBLE_EQ(PercentChange(200.0, 150.0), -25.0);
  EXPECT_THROW(PercentChange(0.0, 1.0), Error);
}

TEST(Rng, DeterministicAndWellSpread) {
  Rng a(42), b(42), c(43);
  std::set<std::uint64_t> seen;
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs = true;
    seen.insert(va);
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(seen.size(), 1000u);  // no collisions expected in 1000 draws
}

TEST(Rng, BitsStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Bits(4), 16u);
    EXPECT_LT(r.Below(10), 10u);
  }
}

TEST(TextTable, AlignsAndEscapes) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "2,3"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"2,3\""), std::string::npos);
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::FormatPercent(2.5), "+2.50%");
  EXPECT_EQ(TextTable::FormatPercent(-3.017), "-3.02%");
}

}  // namespace
}  // namespace pfd
