// Tests for the power model and the Monte Carlo / test-set power engines.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>

#include "base/error.hpp"
#include "obs/obs.hpp"
#include "power/power_model.hpp"
#include "power/power_sim.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::power {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

TEST(PowerModel, ToggleEnergyScalesWithFanout) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId one_reader = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath,
                                       {{a}});
  nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{one_reader}});
  const GateId three_reader =
      nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath,
             {{three_reader, three_reader, three_reader}});
  const PowerModel model(nl, TechModel::Vsc450());
  EXPECT_GT(model.ToggleEnergy(three_reader), model.ToggleEnergy(one_reader));
}

TEST(PowerModel, HandComputedToggleEnergy) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  (void)g;
  TechModel tech;
  tech.vdd_v = 2.0;
  tech.drain_cap_f = 1e-15;
  tech.wire_cap_f = 2e-15;
  tech.input_cap_f = 3e-15;
  const PowerModel model(nl, tech);
  // a drives one pin: C = 1 + 2 + 3 fF; E = 0.5 * 6fF * 4V^2 = 12 fJ.
  EXPECT_NEAR(model.ToggleEnergy(a), 12e-15, 1e-18);
}

struct ToggleFixture {
  Netlist nl;
  GateId in, buf;
  ToggleFixture() {
    in = nl.AddInput("in");
    buf = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{in}});
    nl.AddOutput(buf, "o");
  }
};

TEST(PowerModel, ComputeConvertsTogglesToMicrowatts) {
  ToggleFixture f;
  TechModel tech;
  tech.clock_hz = 1e6;
  const PowerModel model(f.nl, tech);
  logicsim::Simulator sim(f.nl);
  sim.EnableToggleCounting(true);
  sim.SetInputAllLanes(f.in, Trit::kZero);
  sim.Step();
  sim.SetInputAllLanes(f.in, Trit::kOne);
  sim.Step();  // 64 lanes toggle on both nets
  const PowerBreakdown b = model.Compute(sim, 2 * 64).breakdown;
  const double expected_uw =
      64.0 * (model.ToggleEnergy(f.in) + model.ToggleEnergy(f.buf)) /
      (128.0 / tech.clock_hz) * 1e6;
  EXPECT_NEAR(b.datapath_uw, expected_uw, expected_uw * 1e-9);
  EXPECT_DOUBLE_EQ(b.total_uw,
                   b.datapath_uw + b.controller_uw + b.interface_uw);
}

TEST(PowerModel, UngatedDffChargedEveryCycleGatedOnlyWhenEnabled) {
  Netlist nl;
  const GateId en = nl.AddInput("en");
  const GateId din = nl.AddInput("din");
  const GateId gated = nl.AddDff(ModuleTag::kDatapath, "gated");
  const GateId free_dff = nl.AddDff(ModuleTag::kDatapath, "free");
  const GateId mux =
      nl.AddGate(GateKind::kMux2, ModuleTag::kDatapath, {{en, gated, din}});
  nl.ConnectDff(gated, mux);
  nl.ConnectDff(free_dff, din);

  TechModel tech;
  PowerModel model(nl, tech);
  model.AddClockGate(en, {gated});

  logicsim::Simulator sim(nl);
  sim.EnableToggleCounting(true);
  sim.SetInputAllLanes(din, Trit::kZero);
  sim.SetInputAllLanes(en, Trit::kZero);  // gate closed: no clock energy
  sim.Step();                             // settle, then measure
  sim.ResetToggleCounts();
  for (int i = 0; i < 4; ++i) sim.Step();
  const PowerBreakdown closed = model.Compute(sim, 4 * 64).breakdown;

  sim.SetInputAllLanes(en, Trit::kOne);  // gate open
  sim.Step();                            // absorb the en transition itself
  sim.ResetToggleCounts();
  for (int i = 0; i < 4; ++i) sim.Step();
  const PowerBreakdown open = model.Compute(sim, 4 * 64).breakdown;
  EXPECT_GT(open.datapath_uw, closed.datapath_uw);

  // The difference is exactly one DFF's clock energy per cycle: the data
  // never changes, so no switching energy is added, and the en transition
  // happened outside the measured windows.
  const double clock_uw = tech.dff_clock_energy_j * tech.clock_hz * 1e6;
  EXPECT_NEAR(open.datapath_uw - closed.datapath_uw, clock_uw,
              clock_uw * 0.02);
}

TEST(PowerModel, DoubleGatingADffThrows) {
  Netlist nl;
  const GateId en = nl.AddInput("en");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, en);
  PowerModel model(nl, TechModel::Vsc450());
  model.AddClockGate(en, {d});
  EXPECT_THROW(model.AddClockGate(en, {d}), Error);
}

// --- Monte Carlo ------------------------------------------------------------

struct MiniSystem {
  Netlist nl;
  fault::TestPlan plan;
  MiniSystem() {
    const GateId a0 = nl.AddInput("a0");
    const GateId a1 = nl.AddInput("a1");
    const GateId x = nl.AddGate(GateKind::kXor, ModuleTag::kDatapath,
                                {{a0, a1}});
    const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{x}});
    nl.AddOutput(n, "o");
    plan.operand_bits = {{a0, a1}};
    plan.cycles_per_pattern = 2;
    plan.strobe_cycles = {1};
    plan.observe = {n};
  }
};

TEST(MonteCarlo, ConvergesAndIsDeterministic) {
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  MonteCarloConfig cfg;
  cfg.rel_tol = 0.01;
  const PowerResult r1 =
      EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  const PowerResult r2 =
      EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  EXPECT_GT(r1.breakdown.datapath_uw, 0.0);
  EXPECT_DOUBLE_EQ(r1.breakdown.datapath_uw, r2.breakdown.datapath_uw);
  EXPECT_GE(r1.batches, cfg.min_batches);
  EXPECT_LE(r1.ci95_rel, cfg.rel_tol);
}

TEST(MonteCarlo, TighterToleranceUsesMoreBatches) {
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  MonteCarloConfig loose;
  loose.rel_tol = 0.05;
  MonteCarloConfig tight;
  tight.rel_tol = 0.0005;
  tight.max_batches = 4096;
  const PowerResult a = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, loose);
  const PowerResult b = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, tight);
  EXPECT_LE(a.batches, b.batches);
}

TEST(MonteCarlo, ResultIsThreadCountInvariant) {
  // Batch b draws from ShardSeed(seed, b) and the fold is ordered, so the
  // estimate, CI, and stopping batch must not depend on the thread count.
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  MonteCarloConfig cfg;
  cfg.rel_tol = 0.01;
  cfg.exec.threads = 1;
  const PowerResult t1 = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  for (int threads : {2, 8}) {
    cfg.exec.threads = threads;
    const PowerResult tn = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
    EXPECT_DOUBLE_EQ(tn.breakdown.datapath_uw, t1.breakdown.datapath_uw);
    EXPECT_DOUBLE_EQ(tn.breakdown.total_uw, t1.breakdown.total_uw);
    EXPECT_DOUBLE_EQ(tn.ci95_rel, t1.ci95_rel);
    EXPECT_EQ(tn.batches, t1.batches);
  }
}

TEST(MonteCarlo, FastPathStepsStayBitIdenticalAcrossThreadCounts) {
  // The two-valued kernel fast path reorders nothing observable: with the
  // fast path provably engaged (logicsim.two_valued_steps ticking), the
  // floating-point accumulation must still be bit-exact across thread
  // counts — batches fold in batch order regardless of which worker ran
  // them, so 1, 2, and 8 threads add the same doubles in the same order.
  obs::Registry& reg = obs::Registry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t fast_before =
      reg.CounterValue("logicsim.two_valued_steps");

  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  MonteCarloConfig cfg;
  cfg.rel_tol = 0.01;
  cfg.exec.threads = 1;
  const PowerResult t1 = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  ASSERT_TRUE(t1.run_status.ok());
  // The mini system is combinational with fully-known stimulus, so its
  // steps run two-valued; a zero delta here means the fast path was not
  // exercised and the test would prove nothing.
  EXPECT_GT(reg.CounterValue("logicsim.two_valued_steps"), fast_before);

  for (const int threads : {2, 8}) {
    cfg.exec.threads = threads;
    const std::uint64_t before = reg.CounterValue("logicsim.two_valued_steps");
    const PowerResult tn = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
    EXPECT_GT(reg.CounterValue("logicsim.two_valued_steps"), before)
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(tn.breakdown.datapath_uw, t1.breakdown.datapath_uw);
    EXPECT_DOUBLE_EQ(tn.breakdown.controller_uw, t1.breakdown.controller_uw);
    EXPECT_DOUBLE_EQ(tn.breakdown.interface_uw, t1.breakdown.interface_uw);
    EXPECT_DOUBLE_EQ(tn.breakdown.total_uw, t1.breakdown.total_uw);
    EXPECT_DOUBLE_EQ(tn.ci95_rel, t1.ci95_rel);
    EXPECT_EQ(tn.batches, t1.batches);
  }
  reg.set_enabled(was_enabled);
}

TEST(TestSetPower, DeterministicPerSeedAndSensitiveToSeed) {
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  const PowerResult a = MeasureTestSetPower(
      ms.nl, {ms.plan, tpg::kTestSetSeed1, 256}, model, {}, {});
  const PowerResult b = MeasureTestSetPower(
      ms.nl, {ms.plan, tpg::kTestSetSeed1, 256}, model, {}, {});
  const PowerResult c = MeasureTestSetPower(
      ms.nl, {ms.plan, tpg::kTestSetSeed2, 256}, model, {}, {});
  EXPECT_DOUBLE_EQ(a.breakdown.datapath_uw, b.breakdown.datapath_uw);
  EXPECT_NE(a.breakdown.datapath_uw, c.breakdown.datapath_uw);
  EXPECT_EQ(a.patterns, 256u);
}

TEST(TestSetPower, RoundsUpToLaneMultiples) {
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  const PowerResult r = MeasureTestSetPower(
      ms.nl, {ms.plan, tpg::kTestSetSeed1, 100}, model, {}, {});
  EXPECT_EQ(r.patterns, 128u);  // 100 -> 2 batches of 64
}

TEST(TestSetPower, RejectsOverflowAdjacentPatternCounts) {
  // Regression: `(num_patterns + 63) / 64` used to be computed in int, so a
  // pattern count near INT_MAX wrapped the batch count negative. The batch
  // arithmetic now runs in int64 and anything past the kMaxTestSetBatches
  // ceiling is a hard error up front, not a wrapped loop bound.
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  EXPECT_THROW(
      MeasureTestSetPower(
          ms.nl, {ms.plan, tpg::kTestSetSeed1, std::numeric_limits<int>::max()},
          model, {}, {}),
      pfd::Error);
  EXPECT_THROW(
      MeasureTestSetPower(
          ms.nl,
          {ms.plan, tpg::kTestSetSeed1,
           static_cast<int>(power::kMaxTestSetBatches * 64 + 1)},
          model, {}, {}),
      pfd::Error);
}

TEST(FaultyPower, StuckGateChangesPower) {
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  MonteCarloConfig cfg;
  const double base =
      EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg)
          .breakdown.datapath_uw;
  // Stuck the XOR output: the XOR and downstream NOT stop toggling.
  const fault::StuckFault f{2 /*xor gate id*/, 0, Trit::kZero};
  const double faulty =
      EstimatePowerMonteCarlo(ms.nl, ms.plan, model,
                              std::span<const fault::StuckFault>(&f, 1), cfg)
          .breakdown.datapath_uw;
  EXPECT_LT(faulty, base);
}

// --- zero-cycle / guard-trip seams ------------------------------------------

TEST(PowerModel, ZeroCyclesIsPartialFailureNotAbort) {
  // A guard can trip a run before its first machine-cycle completes; the
  // model must report that as a partial result, never abort the process.
  ToggleFixture f;
  const PowerModel model(f.nl, TechModel::Vsc450());
  logicsim::Simulator sim(f.nl);
  sim.EnableToggleCounting(true);
  const PowerComputeResult r = model.Compute(sim, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code, guard::StatusCode::kPartialFailure);
  EXPECT_FALSE(r.status.message.empty());
  EXPECT_DOUBLE_EQ(r.breakdown.datapath_uw, 0.0);
  EXPECT_DOUBLE_EQ(r.breakdown.total_uw, 0.0);
}

TEST(MonteCarlo, ExpiredDeadlineReturnsEmptyResultGracefully) {
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  MonteCarloConfig cfg;
  cfg.limits.deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(1);
  const PowerResult r = EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  EXPECT_EQ(r.run_status.code, guard::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.batches, 0);
  EXPECT_DOUBLE_EQ(r.breakdown.total_uw, 0.0);
}

TEST(TestSetPower, ExpiredDeadlineReturnsEmptyResultGracefully) {
  // The trip lands before the first batch, so zero machine-cycles reach
  // PowerModel::Compute; the engine must still return (with the trip code
  // winning over the zero-cycle partial failure), not abort.
  MiniSystem ms;
  const PowerModel model(ms.nl, TechModel::Vsc450());
  TestSetPowerConfig cfg;
  cfg.limits.deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(1);
  const PowerResult r = MeasureTestSetPower(
      ms.nl, {ms.plan, tpg::kTestSetSeed1, 256}, model, {}, cfg);
  EXPECT_EQ(r.run_status.code, guard::StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(r.breakdown.total_uw, 0.0);
  EXPECT_EQ(r.patterns, 0u);
}

// --- lane normalization ------------------------------------------------------

TEST(PowerModel, WidePatternsAverageSameAsNarrowPatterns) {
  // N patterns packed 64-wide must report the same average power as the
  // same N patterns run one lane at a time: Compute normalizes by machine
  // cycles = simulated cycles x active lanes, so lane packing is purely a
  // throughput optimization. Here the "pattern" is a square wave; the wide
  // run drives it in every lane, the narrow run in lane 0 only.
  ToggleFixture f;
  TechModel tech;
  const PowerModel model(f.nl, tech);
  constexpr int kCycles = 8;

  logicsim::Simulator wide(f.nl);
  wide.SetInputAllLanes(f.in, Trit::kZero);
  wide.Step();  // settle before measuring
  wide.EnableToggleCounting(true);
  for (int c = 0; c < kCycles; ++c) {
    wide.SetInputAllLanes(f.in, (c & 1) ? Trit::kZero : Trit::kOne);
    wide.Step();
  }
  const PowerBreakdown wide_b =
      model.Compute(wide, 64ULL * kCycles).breakdown;

  logicsim::Simulator narrow(f.nl);
  narrow.SetInputAllLanes(f.in, Trit::kZero);
  narrow.Step();
  narrow.EnableToggleCounting(true);
  for (int c = 0; c < kCycles; ++c) {
    const Trit t = (c & 1) ? Trit::kZero : Trit::kOne;
    narrow.SetInput(f.in, SetLane(kAllZero, 0, t));  // lanes 1..63 idle
    narrow.Step();
  }
  const PowerBreakdown narrow_b =
      model.Compute(narrow, 1ULL * kCycles).breakdown;

  EXPECT_GT(narrow_b.datapath_uw, 0.0);
  EXPECT_DOUBLE_EQ(wide_b.datapath_uw, narrow_b.datapath_uw);
  EXPECT_DOUBLE_EQ(wide_b.total_uw, narrow_b.total_uw);
}

}  // namespace
}  // namespace pfd::power
