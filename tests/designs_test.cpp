// Tests for the canned benchmark designs beyond the three paper examples,
// and cross-checks of every design's gate-level behaviour against direct
// DFG evaluation.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "logicsim/simulator.hpp"
#include "rtl/datapath.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::designs {
namespace {

// Evaluates a DFG directly on BitVec inputs.
std::vector<std::uint32_t> EvalDfg(const hls::Dfg& dfg,
                                   const std::vector<BitVec>& inputs) {
  std::vector<BitVec> op_vals;
  auto value_of = [&](const hls::ValueRef& v) {
    switch (v.kind) {
      case hls::ValueRef::Kind::kInput: return inputs[v.index];
      case hls::ValueRef::Kind::kConst: return dfg.constants()[v.index];
      default: return op_vals[v.index];
    }
  };
  for (const hls::DfgOp& op : dfg.ops()) {
    op_vals.push_back(
        rtl::EvalFuConcrete(op.kind, value_of(op.lhs), value_of(op.rhs)));
  }
  std::vector<std::uint32_t> out;
  for (const hls::DfgOutput& o : dfg.outputs()) {
    out.push_back(value_of(o.value).value());
  }
  return out;
}

// Runs one pattern on the gate level and reads the outputs at the end.
std::vector<std::uint32_t> RunGate(const synth::System& sys,
                                   logicsim::Simulator& sim,
                                   const std::vector<BitVec>& inputs) {
  for (std::size_t op = 0; op < inputs.size(); ++op) {
    for (std::size_t b = 0; b < sys.operand_bits[op].size(); ++b) {
      sim.SetInputAllLanes(sys.operand_bits[op][b],
                           inputs[op].bit(static_cast<int>(b)) ? Trit::kOne
                                                               : Trit::kZero);
    }
  }
  for (int c = 0; c < sys.cycles_per_pattern; ++c) {
    sim.SetInputAllLanes(sys.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  std::vector<std::uint32_t> out;
  for (const synth::Bus& bus : sys.output_nets) {
    std::uint32_t v = 0;
    for (std::size_t b = 0; b < bus.size(); ++b) {
      EXPECT_NE(sim.ValueLane(bus[b], 0), Trit::kX);
      if (sim.ValueLane(bus[b], 0) == Trit::kOne) v |= 1u << b;
    }
    out.push_back(v);
  }
  return out;
}

TEST(Ewf, StructureIsTheLargeBenchmark) {
  const hls::Dfg dfg = MakeEwfDfg(4);
  EXPECT_EQ(dfg.ops().size(), 34u);
  int muls = 0;
  for (const hls::DfgOp& op : dfg.ops()) {
    if (op.kind == rtl::FuKind::kMul) ++muls;
  }
  EXPECT_EQ(muls, 8);  // classic EWF op mix: 26 add / 8 mul
  const BenchmarkDesign d = BuildEwf(4);
  EXPECT_GT(d.system.control_spec.NumStates(), 20);
  EXPECT_GT(d.system.nl.Stats().gates, 500u);
}

TEST(Ewf, GateLevelMatchesDirectEvaluation) {
  const hls::Dfg dfg = MakeEwfDfg(4);
  const BenchmarkDesign d = BuildEwf(4);
  logicsim::Simulator sim(d.system.nl);
  tpg::Tpgr tpgr(0xE1F);
  const std::vector<int> widths(dfg.input_names().size(), 4);
  for (int p = 0; p < 20; ++p) {
    const std::vector<BitVec> inputs = tpgr.NextPattern(widths);
    const auto expect = EvalDfg(dfg, inputs);
    const auto got = RunGate(d.system, sim, inputs);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t o = 0; o < got.size(); ++o) {
      EXPECT_EQ(got[o], expect[o]) << "pattern " << p << " output " << o;
    }
  }
}

TEST(AllDesigns, BuildAndValidate) {
  for (const BenchmarkDesign& d :
       {BuildDiffeq(4), BuildFacet(4), BuildPoly(4), BuildDiffeqLoop(4),
        BuildEwf(4)}) {
    EXPECT_NO_THROW(d.system.nl.Validate()) << d.name;
    EXPECT_GT(d.system.lines.size(), 0u) << d.name;
    EXPECT_EQ(d.system.operand_bits.size(),
              d.system.datapath.inputs().size())
        << d.name;
    // Every control line net is controller-driven.
    for (netlist::GateId g : d.system.line_nets) {
      EXPECT_EQ(d.system.nl.gate(g).module, netlist::ModuleTag::kController)
          << d.name;
    }
  }
}

TEST(AllDesigns, DeterministicConstruction) {
  const BenchmarkDesign a = BuildFacet(4);
  const BenchmarkDesign b = BuildFacet(4);
  EXPECT_EQ(a.system.nl.size(), b.system.nl.size());
  EXPECT_EQ(a.system.line_nets, b.system.line_nets);
  EXPECT_EQ(a.system.cycles_per_pattern, b.system.cycles_per_pattern);
}

TEST(AllDesigns, WidthParameterPropagates) {
  for (int width : {2, 6}) {
    const BenchmarkDesign d = BuildPoly(width);
    for (const synth::Bus& bus : d.system.operand_bits) {
      EXPECT_EQ(static_cast<int>(bus.size()), width);
    }
  }
}

}  // namespace
}  // namespace pfd::designs
