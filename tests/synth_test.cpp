// Tests for FSM synthesis and gate-level datapath elaboration: the
// synthesized hardware must agree with its behavioural specification, and
// every arithmetic block must match BitVec reference arithmetic exhaustively
// (parameterised over operand width).
#include <gtest/gtest.h>

#include "logicsim/simulator.hpp"
#include "synth/elaborate.hpp"
#include "synth/fsm.hpp"
#include "synth/system.hpp"

namespace pfd::synth {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

// --- word-level building blocks ---------------------------------------------

class BusBuilderWidths : public ::testing::TestWithParam<int> {};

// Drives a two-operand gate block exhaustively and compares against BitVec.
template <typename MakeBlock, typename Reference>
void CheckBlockExhaustive(int width, MakeBlock make, Reference ref) {
  Netlist nl;
  BusBuilder bb(nl, ModuleTag::kDatapath);
  Bus a(width), b(width);
  for (int i = 0; i < width; ++i) {
    a[i] = nl.AddInput("a" + std::to_string(i));
    b[i] = nl.AddInput("b" + std::to_string(i));
  }
  const Bus out = make(bb, a, b);
  logicsim::Simulator sim(nl);
  const std::uint32_t n = 1u << width;
  for (std::uint32_t av = 0; av < n; ++av) {
    for (std::uint32_t bv = 0; bv < n; ++bv) {
      for (int i = 0; i < width; ++i) {
        sim.SetInputAllLanes(a[i],
                             ((av >> i) & 1) ? Trit::kOne : Trit::kZero);
        sim.SetInputAllLanes(b[i],
                             ((bv >> i) & 1) ? Trit::kOne : Trit::kZero);
      }
      sim.Step();
      const BitVec expect = ref(BitVec(width, av), BitVec(width, bv));
      for (int i = 0; i < expect.width(); ++i) {
        ASSERT_EQ(sim.ValueLane(out[i], 0),
                  expect.bit(i) ? Trit::kOne : Trit::kZero)
            << "a=" << av << " b=" << bv << " bit " << i;
      }
    }
  }
}

TEST_P(BusBuilderWidths, AdderMatchesReference) {
  CheckBlockExhaustive(
      GetParam(),
      [](BusBuilder& bb, const Bus& a, const Bus& b) {
        return bb.Add(a, b, bb.Const0(), nullptr, "add");
      },
      [](const BitVec& a, const BitVec& b) { return Add(a, b); });
}

TEST_P(BusBuilderWidths, SubtractorMatchesReference) {
  CheckBlockExhaustive(
      GetParam(),
      [](BusBuilder& bb, const Bus& a, const Bus& b) {
        return bb.Sub(a, b, "sub");
      },
      [](const BitVec& a, const BitVec& b) { return Sub(a, b); });
}

TEST_P(BusBuilderWidths, MultiplierMatchesReference) {
  CheckBlockExhaustive(
      GetParam(),
      [](BusBuilder& bb, const Bus& a, const Bus& b) {
        return bb.Mul(a, b, "mul");
      },
      [](const BitVec& a, const BitVec& b) { return Mul(a, b); });
}

TEST_P(BusBuilderWidths, ComparatorMatchesReference) {
  CheckBlockExhaustive(
      GetParam(),
      [](BusBuilder& bb, const Bus& a, const Bus& b) {
        return Bus{bb.Less(a, b, "lt")};
      },
      [](const BitVec& a, const BitVec& b) { return LessThan(a, b); });
}

TEST_P(BusBuilderWidths, BitwiseBlocksMatchReference) {
  CheckBlockExhaustive(
      GetParam(),
      [](BusBuilder& bb, const Bus& a, const Bus& b) {
        return bb.Bitwise(GateKind::kXor, a, b, "x");
      },
      [](const BitVec& a, const BitVec& b) { return Xor(a, b); });
}

INSTANTIATE_TEST_SUITE_P(Widths, BusBuilderWidths, ::testing::Values(1, 2, 3,
                                                                     4, 5),
                         ::testing::PrintToStringParamName());

TEST(BusBuilder, MuxTreeSelectsAndClamps) {
  // 3-input mux with 2 select bits; select 3 must resolve to the last input
  // (padding), matching rtl::Machine.
  Netlist nl;
  BusBuilder bb(nl, ModuleTag::kDatapath);
  std::vector<Bus> inputs(3, Bus(2));
  for (int i = 0; i < 3; ++i) {
    for (int b = 0; b < 2; ++b) {
      inputs[i][b] = nl.AddInput("i" + std::to_string(i) + std::to_string(b));
    }
  }
  Bus sel = {nl.AddInput("s0"), nl.AddInput("s1")};
  const Bus out = bb.MuxTree(inputs, sel, "m");
  logicsim::Simulator sim(nl);
  const std::uint32_t values[3] = {1, 2, 3};
  for (int i = 0; i < 3; ++i) {
    for (int b = 0; b < 2; ++b) {
      sim.SetInputAllLanes(inputs[i][b], ((values[i] >> b) & 1)
                                             ? Trit::kOne
                                             : Trit::kZero);
    }
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    sim.SetInputAllLanes(sel[0], (s & 1) ? Trit::kOne : Trit::kZero);
    sim.SetInputAllLanes(sel[1], (s & 2) ? Trit::kOne : Trit::kZero);
    sim.Step();
    const std::uint32_t expect = values[std::min<std::uint32_t>(s, 2)];
    for (int b = 0; b < 2; ++b) {
      EXPECT_EQ(sim.ValueLane(out[b], 0),
                ((expect >> b) & 1) ? Trit::kOne : Trit::kZero)
          << "sel=" << s;
    }
  }
}

// --- FSM synthesis ------------------------------------------------------------

FsmSpec LinearFsm(int states, std::vector<std::vector<Trit>> outputs,
                  std::vector<std::string> names) {
  FsmSpec spec;
  spec.num_states = states;
  spec.reset_state = 0;
  for (int s = 0; s < states; ++s) {
    spec.next_state.push_back(s == states - 1 ? s : s + 1);
  }
  spec.outputs = std::move(outputs);
  spec.line_names = std::move(names);
  return spec;
}

class FsmStyles : public ::testing::TestWithParam<OutputLogicStyle> {};

TEST_P(FsmStyles, WalksScheduleAndMatchesResolvedOutputs) {
  // 5 states, 2 output lines with specified values and one DC.
  FsmSpec spec = LinearFsm(
      5,
      {{Trit::kOne, Trit::kZero},
       {Trit::kZero, Trit::kOne},
       {Trit::kZero, Trit::kX},
       {Trit::kOne, Trit::kOne},
       {Trit::kZero, Trit::kZero}},
      {"o0", "o1"});
  Netlist nl;
  const GateId reset = nl.AddInput("reset", ModuleTag::kInterface);
  const SynthesizedFsm fsm = SynthesizeFsm(nl, spec, reset, GetParam());
  nl.Validate();

  // Resolved outputs must match the spec wherever the spec cares.
  for (int s = 0; s < spec.num_states; ++s) {
    for (std::size_t l = 0; l < spec.line_names.size(); ++l) {
      if (spec.outputs[s][l] == Trit::kX) continue;
      EXPECT_EQ(fsm.resolved_outputs[s][l],
                spec.outputs[s][l] == Trit::kOne ? 1 : 0)
          << "state " << s << " line " << l;
    }
  }

  // Walk the machine from power-up X through reset and the whole schedule;
  // the lines must follow resolved_outputs.
  logicsim::Simulator sim(nl);
  sim.SetInputAllLanes(reset, Trit::kOne);
  sim.Step();  // boot cycle: outputs may be X
  sim.SetInputAllLanes(reset, Trit::kZero);
  for (int s = 0; s < spec.num_states; ++s) {
    sim.Step();
    for (std::size_t l = 0; l < spec.line_names.size(); ++l) {
      EXPECT_EQ(sim.ValueLane(fsm.line_nets[l], 0),
                fsm.resolved_outputs[s][l] ? Trit::kOne : Trit::kZero)
          << "state " << s << " line " << l;
    }
  }
  // Terminal state holds.
  sim.Step();
  for (std::size_t l = 0; l < spec.line_names.size(); ++l) {
    EXPECT_EQ(sim.ValueLane(fsm.line_nets[l], 0),
              fsm.resolved_outputs[4][l] ? Trit::kOne : Trit::kZero);
  }
}

TEST_P(FsmStyles, RecoversFromUnknownBootState) {
  FsmSpec spec = LinearFsm(3,
                           {{Trit::kOne}, {Trit::kZero}, {Trit::kZero}},
                           {"o"});
  Netlist nl;
  const GateId reset = nl.AddInput("reset", ModuleTag::kInterface);
  const SynthesizedFsm fsm = SynthesizeFsm(nl, spec, reset, GetParam());
  logicsim::Simulator sim(nl);
  // Assert reset while the state register is all-X: after one cycle the
  // state must be fully known (the RESET state).
  sim.SetInputAllLanes(reset, Trit::kOne);
  sim.Step();
  sim.Step();
  for (GateId st : fsm.state_bits) {
    EXPECT_NE(sim.ValueLane(st, 0), Trit::kX);
    EXPECT_EQ(sim.ValueLane(st, 0), Trit::kZero);  // reset state code 0
  }
  EXPECT_EQ(sim.ValueLane(fsm.line_nets[0], 0), Trit::kOne);
}

TEST_P(FsmStyles, ResetOverridesAnyState) {
  FsmSpec spec = LinearFsm(
      4, {{Trit::kOne}, {Trit::kZero}, {Trit::kZero}, {Trit::kZero}}, {"o"});
  Netlist nl;
  const GateId reset = nl.AddInput("reset", ModuleTag::kInterface);
  const SynthesizedFsm fsm = SynthesizeFsm(nl, spec, reset, GetParam());
  logicsim::Simulator sim(nl);
  sim.SetInputAllLanes(reset, Trit::kOne);
  sim.Step();
  sim.SetInputAllLanes(reset, Trit::kZero);
  sim.Step();
  sim.Step();  // now somewhere mid-schedule
  sim.SetInputAllLanes(reset, Trit::kOne);
  sim.Step();
  sim.Step();
  // Back at RESET: output line = state 0 value.
  EXPECT_EQ(sim.ValueLane(fsm.line_nets[0], 0), Trit::kOne);
}

INSTANTIATE_TEST_SUITE_P(Styles, FsmStyles,
                         ::testing::Values(OutputLogicStyle::kMinimizedSop,
                                           OutputLogicStyle::kSharedSop,
                                           OutputLogicStyle::kStateDecoder),
                         [](const auto& info) {
                           switch (info.param) {
                             case OutputLogicStyle::kMinimizedSop:
                               return std::string("MinimizedSop");
                             case OutputLogicStyle::kSharedSop:
                               return std::string("SharedSop");
                             default:
                               return std::string("StateDecoder");
                           }
                         });

TEST(Fsm, ControlLinesGetDedicatedNets) {
  // Two lines with identical functions must still have distinct nets.
  FsmSpec spec = LinearFsm(3,
                           {{Trit::kOne, Trit::kOne},
                            {Trit::kZero, Trit::kZero},
                            {Trit::kZero, Trit::kZero}},
                           {"a", "b"});
  Netlist nl;
  const netlist::GateId reset = nl.AddInput("reset", ModuleTag::kInterface);
  const SynthesizedFsm fsm =
      SynthesizeFsm(nl, spec, reset, OutputLogicStyle::kSharedSop);
  EXPECT_NE(fsm.line_nets[0], fsm.line_nets[1]);
}

TEST(Fsm, AllGatesTaggedController) {
  FsmSpec spec =
      LinearFsm(3, {{Trit::kOne}, {Trit::kZero}, {Trit::kX}}, {"o"});
  Netlist nl;
  const GateId reset = nl.AddInput("reset", ModuleTag::kInterface);
  const std::size_t before = nl.size();
  SynthesizeFsm(nl, spec, reset);
  for (GateId g = static_cast<GateId>(before); g < nl.size(); ++g) {
    EXPECT_EQ(nl.gate(g).module, ModuleTag::kController);
  }
}

// --- control-line bookkeeping -------------------------------------------------

rtl::ControlSpec TwoLineSpec() {
  rtl::ControlSpec spec;
  spec.num_load_lines = 2;
  spec.num_muxes = 1;
  spec.mux_select_bits = {2};
  spec.states.resize(3);
  spec.state_names = {"RESET", "CS1", "HOLD"};
  for (auto& st : spec.states) {
    st.load = {0, 0};
    st.select = {std::nullopt};
  }
  spec.states[0].load = {1, 0};
  spec.states[1].load = {0, 1};
  spec.states[1].select[0] = 2;
  return spec;
}

TEST(ControlLines, OrderAndNaming) {
  const auto lines = MakeControlLines(TwoLineSpec());
  ASSERT_EQ(lines.size(), 4u);  // 2 loads + 2 select bits
  EXPECT_EQ(lines[0].name, "LD0");
  EXPECT_EQ(lines[1].name, "LD1");
  EXPECT_EQ(lines[2].name, "MS0.0");
  EXPECT_EQ(lines[3].name, "MS0.1");
  EXPECT_EQ(lines[2].kind, ControlLineInfo::Kind::kSelectBit);
  EXPECT_EQ(lines[3].bit, 1);
}

TEST(ControlLines, ZeroFillVsMinimizerFill) {
  const rtl::ControlSpec spec = TwoLineSpec();
  const FsmSpec zero = BuildFsmSpec(spec, DontCareFill::kZero);
  const FsmSpec qm = BuildFsmSpec(spec, DontCareFill::kMinimizer);
  // Select bits in the non-care states: hard 0 vs X.
  EXPECT_EQ(zero.outputs[0][2], Trit::kZero);
  EXPECT_EQ(qm.outputs[0][2], Trit::kX);
  // Care states identical in both.
  EXPECT_EQ(zero.outputs[1][2], qm.outputs[1][2]);
  EXPECT_EQ(zero.outputs[1][3], Trit::kOne);  // select 2, bit 1
  // Loads are never don't-care.
  EXPECT_EQ(qm.outputs[0][0], Trit::kOne);
  EXPECT_EQ(qm.outputs[2][0], Trit::kZero);
}

TEST(ControlLines, ResolveControlRoundTrips) {
  const rtl::ControlSpec spec = TwoLineSpec();
  Netlist nl;
  const GateId reset = nl.AddInput("reset", ModuleTag::kInterface);
  const auto lines = MakeControlLines(spec);
  const SynthesizedFsm fsm = SynthesizeFsm(nl, BuildFsmSpec(spec), reset);
  const ResolvedControl rc = ResolveControl(spec, lines, fsm);
  EXPECT_EQ(rc.line_loads[0], (std::vector<std::uint8_t>{1, 0}));
  EXPECT_EQ(rc.line_loads[1], (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(rc.selects[1][0], 2u);
  EXPECT_EQ(rc.selects[0][0], 0u);  // zero-filled don't care
}

}  // namespace
}  // namespace pfd::synth
