// Cross-representation integration tests.
//
// The central invariant of the whole reproduction: the gate-level system
// (FSM controller + elaborated datapath) must be cycle-accurate equivalent
// to the concrete RTL machine driven by the resolved control schedule — for
// the three paper benchmarks AND for randomly generated DFGs pushed through
// the full HLS + synthesis flow.
#include <gtest/gtest.h>

#include <bit>

#include "base/rng.hpp"
#include "designs/designs.hpp"
#include "hls/hls.hpp"
#include "logicsim/simulator.hpp"
#include "rtl/machine.hpp"
#include "synth/system.hpp"
#include "tpg/lfsr.hpp"

namespace pfd {
namespace {

using designs::BenchmarkDesign;

// Runs one test pattern through the gate-level system and returns the
// datapath outputs observed at the final HOLD strobe (scalar lane 0).
std::vector<std::uint32_t> GateLevelOutputs(
    const synth::System& sys, logicsim::Simulator& sim,
    const std::vector<BitVec>& operands) {
  for (std::size_t op = 0; op < operands.size(); ++op) {
    for (std::size_t b = 0; b < sys.operand_bits[op].size(); ++b) {
      sim.SetInputAllLanes(sys.operand_bits[op][b],
                           operands[op].bit(static_cast<int>(b))
                               ? Trit::kOne
                               : Trit::kZero);
    }
  }
  for (int c = 0; c < sys.cycles_per_pattern; ++c) {
    sim.SetInputAllLanes(sys.reset, c == 0 ? Trit::kOne : Trit::kZero);
    sim.Step();
  }
  std::vector<std::uint32_t> out;
  for (const synth::Bus& bus : sys.output_nets) {
    std::uint32_t v = 0;
    for (std::size_t b = 0; b < bus.size(); ++b) {
      const Trit t = sim.ValueLane(bus[b], 0);
      EXPECT_NE(t, Trit::kX) << "output X at HOLD";
      if (t == Trit::kOne) v |= 1u << b;
    }
    out.push_back(v);
  }
  return out;
}

// Runs the same pattern on the concrete RTL machine under the resolved
// control schedule.
std::vector<std::uint32_t> RtlOutputs(const synth::System& sys,
                                      const std::vector<BitVec>& operands) {
  rtl::ConcreteMachine m(sys.datapath, rtl::ConcreteDomain{});
  for (std::uint32_t i = 0; i < operands.size(); ++i) {
    m.SetInput(i, operands[i]);
  }
  // Cycle c >= 1 of the pattern corresponds to state StateAtCycle(c).
  for (int c = 1; c < sys.cycles_per_pattern; ++c) {
    m.Step(sys.ControlWordForState(sys.StateAtCycle(c)));
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t o = 0; o < sys.datapath.outputs().size(); ++o) {
    out.push_back(m.Output(o).value());
  }
  return out;
}

void CheckGateRtlEquivalence(const synth::System& sys, int patterns,
                             std::uint32_t seed) {
  logicsim::Simulator sim(sys.nl);
  tpg::Tpgr tpgr(seed);
  std::vector<int> widths;
  for (const synth::Bus& bus : sys.operand_bits) {
    widths.push_back(static_cast<int>(bus.size()));
  }
  for (int p = 0; p < patterns; ++p) {
    const std::vector<BitVec> operands = tpgr.NextPattern(widths);
    const auto gate = GateLevelOutputs(sys, sim, operands);
    const auto rtl = RtlOutputs(sys, operands);
    ASSERT_EQ(gate.size(), rtl.size());
    for (std::size_t o = 0; o < gate.size(); ++o) {
      ASSERT_EQ(gate[o], rtl[o])
          << sys.name << " pattern " << p << " output "
          << sys.datapath.outputs()[o].name;
    }
  }
}

// --- the three paper benchmarks ----------------------------------------------

struct BenchmarkCase {
  const char* name;
  BenchmarkDesign (*build)(int);
  int width;
};

class BenchmarkEquivalence : public ::testing::TestWithParam<BenchmarkCase> {};

TEST_P(BenchmarkEquivalence, GateLevelMatchesRtl) {
  const BenchmarkCase& bc = GetParam();
  const BenchmarkDesign d = bc.build(bc.width);
  CheckGateRtlEquivalence(d.system, 80, 0xACE1u);
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, BenchmarkEquivalence,
    ::testing::Values(BenchmarkCase{"diffeq4", designs::BuildDiffeq, 4},
                      BenchmarkCase{"facet4", designs::BuildFacet, 4},
                      BenchmarkCase{"poly4", designs::BuildPoly, 4},
                      BenchmarkCase{"diffeq6", designs::BuildDiffeq, 6},
                      BenchmarkCase{"facet8", designs::BuildFacet, 8},
                      BenchmarkCase{"poly3", designs::BuildPoly, 3}),
    [](const ::testing::TestParamInfo<BenchmarkCase>& info) {
      return std::string(info.param.name);
    });

// --- functional correctness of the benchmarks ---------------------------------

TEST(DiffeqFunction, ComputesTheEulerStep) {
  const BenchmarkDesign d = designs::BuildDiffeq(4);
  logicsim::Simulator sim(d.system.nl);
  for (std::uint32_t x = 0; x < 16; x += 3) {
    for (std::uint32_t y = 1; y < 16; y += 5) {
      const std::uint32_t u = (x + 2 * y) & 0xF;
      const std::uint32_t dx = (y + 1) & 0xF;
      const std::uint32_t a = 9;
      const auto out = GateLevelOutputs(
          d.system, sim,
          {BitVec(4, x), BitVec(4, y), BitVec(4, u), BitVec(4, dx),
           BitVec(4, a)});
      // Outputs in DFG order: x1, y1, u1, c.
      const std::uint32_t x1 = (x + dx) & 0xF;
      const std::uint32_t y1 = (y + u * dx) & 0xF;
      const std::uint32_t u1 = (u - 3 * x * u * dx - 3 * y * dx) & 0xF;
      EXPECT_EQ(out[0], x1);
      EXPECT_EQ(out[1], y1);
      EXPECT_EQ(out[2], u1);
      EXPECT_EQ(out[3], x1 < a ? 1u : 0u);
    }
  }
}

TEST(PolyFunction, EvaluatesTheCubic) {
  const BenchmarkDesign d = designs::BuildPoly(4);
  logicsim::Simulator sim(d.system.nl);
  for (std::uint32_t x = 0; x < 16; x += 2) {
    const std::uint32_t a = 3, b = 7, c = 1, dd = 12;
    const auto out = GateLevelOutputs(
        d.system, sim,
        {BitVec(4, a), BitVec(4, b), BitVec(4, c), BitVec(4, dd),
         BitVec(4, x)});
    const std::uint32_t expect =
        (a * x * x * x + b * x * x + c * x + dd) & 0xF;
    EXPECT_EQ(out[0], expect) << "x=" << x;
  }
}

TEST(FacetFunction, ComputesItsBlock) {
  const BenchmarkDesign d = designs::BuildFacet(4);
  logicsim::Simulator sim(d.system.nl);
  Rng rng(77);
  for (int trial = 0; trial < 24; ++trial) {
    std::uint32_t v[6];
    std::vector<BitVec> ops;
    for (auto& val : v) {
      val = rng.Bits(4);
      ops.emplace_back(4, val);
    }
    const auto out = GateLevelOutputs(d.system, sim, ops);
    const std::uint32_t t1 = (v[0] + v[1]) & 0xF;
    const std::uint32_t t2 = (v[2] * v[3]) & 0xF;
    const std::uint32_t t3 = (v[4] - v[5]) & 0xF;
    const std::uint32_t t4 = (t1 * t2) & 0xF;
    const std::uint32_t t5 = (t2 + t3) & 0xF;
    const std::uint32_t t7 = t1 | t3;
    const std::uint32_t t6 = t4 & t5;
    const std::uint32_t t8 = (t7 + t5) & 0xF;
    const std::uint32_t t9 = (t4 * t3) & 0xF;
    const std::uint32_t t10 = (t9 - t8) & 0xF;
    EXPECT_EQ(out[0], t6);
    EXPECT_EQ(out[1], t10);
  }
}

// --- random-DFG property sweep -------------------------------------------------

hls::Dfg RandomDfg(std::uint64_t seed, int width, int num_ops) {
  Rng rng(seed);
  hls::Dfg dfg(width);
  std::vector<hls::ValueRef> values;
  const int num_inputs = 2 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < num_inputs; ++i) {
    values.push_back(dfg.AddInput("in" + std::to_string(i)));
  }
  if (rng.Chance(0.5)) {
    values.push_back(dfg.AddConstant(rng.Bits(width)));
  }
  const rtl::FuKind kinds[] = {rtl::FuKind::kAdd, rtl::FuKind::kSub,
                               rtl::FuKind::kMul, rtl::FuKind::kAnd,
                               rtl::FuKind::kOr,  rtl::FuKind::kXor};
  std::vector<hls::ValueRef> op_values;
  for (int o = 0; o < num_ops; ++o) {
    const auto lhs = values[rng.Below(values.size())];
    const auto rhs = values[rng.Below(values.size())];
    const auto v = dfg.AddOp("op" + std::to_string(o),
                             kinds[rng.Below(std::size(kinds))], lhs, rhs);
    values.push_back(v);
    op_values.push_back(v);
  }
  // Export enough values that nothing is dead: every sink op becomes an
  // output, and inputs/ops that remained unused are exported as well.
  std::vector<bool> used(op_values.size(), false);
  for (const hls::DfgOp& op : dfg.ops()) {
    for (const hls::ValueRef& v : {op.lhs, op.rhs}) {
      if (v.kind == hls::ValueRef::Kind::kOp) used[v.index] = true;
    }
  }
  int outs = 0;
  for (std::size_t o = 0; o < op_values.size(); ++o) {
    if (!used[o]) {
      dfg.AddOutput("out" + std::to_string(outs++), op_values[o]);
    }
  }
  for (std::uint32_t i = 0; i < dfg.input_names().size(); ++i) {
    bool input_used = false;
    for (const hls::DfgOp& op : dfg.ops()) {
      if (op.lhs == hls::ValueRef::Input(i) ||
          op.rhs == hls::ValueRef::Input(i)) {
        input_used = true;
      }
    }
    if (!input_used) {
      dfg.AddOutput("pass" + std::to_string(i), hls::ValueRef::Input(i));
    }
  }
  return dfg;
}

struct RandomFlowParam {
  std::uint64_t seed;
  int width;
  int ops;
  bool sharing;
  bool merge;
  int max_per_step;
};

class RandomFlow : public ::testing::TestWithParam<RandomFlowParam> {};

TEST_P(RandomFlow, FullFlowPreservesSemantics) {
  const auto p = GetParam();
  const hls::Dfg dfg = RandomDfg(p.seed, p.width, p.ops);
  hls::HlsConfig cfg;
  cfg.resources = {{rtl::FuKind::kAdd, 2}, {rtl::FuKind::kSub, 1},
                   {rtl::FuKind::kMul, 1}, {rtl::FuKind::kAnd, 1},
                   {rtl::FuKind::kOr, 1},  {rtl::FuKind::kXor, 1}};
  cfg.register_sharing = p.sharing;
  cfg.merge_load_lines = p.merge;
  cfg.max_ops_per_step = p.max_per_step;
  const hls::HlsResult hr = hls::RunHls(dfg, cfg);
  const synth::System sys =
      synth::BuildSystem("random", hr.datapath, hr.control, hr.load_map);

  // 1. Gate level == RTL on TPGR patterns.
  CheckGateRtlEquivalence(sys, 24, static_cast<std::uint32_t>(p.seed) | 1u);

  // 2. RTL outputs == direct DFG evaluation.
  tpg::Tpgr tpgr(static_cast<std::uint32_t>(p.seed * 7 + 1));
  std::vector<int> widths(dfg.input_names().size(), p.width);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<BitVec> ins = tpgr.NextPattern(widths);
    // Evaluate the DFG directly.
    std::vector<BitVec> op_vals;
    auto value_of = [&](const hls::ValueRef& v) {
      switch (v.kind) {
        case hls::ValueRef::Kind::kInput: return ins[v.index];
        case hls::ValueRef::Kind::kConst: return dfg.constants()[v.index];
        default: return op_vals[v.index];
      }
    };
    for (const hls::DfgOp& op : dfg.ops()) {
      op_vals.push_back(
          rtl::EvalFuConcrete(op.kind, value_of(op.lhs), value_of(op.rhs)));
    }
    const auto rtl_out = RtlOutputs(sys, ins);
    for (std::size_t o = 0; o < dfg.outputs().size(); ++o) {
      EXPECT_EQ(rtl_out[o], value_of(dfg.outputs()[o].value).value())
          << "output " << dfg.outputs()[o].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomFlow,
    ::testing::Values(RandomFlowParam{101, 4, 6, true, true, 0},
                      RandomFlowParam{102, 4, 10, true, false, 2},
                      RandomFlowParam{103, 3, 8, false, true, 1},
                      RandomFlowParam{104, 5, 7, false, false, 0},
                      RandomFlowParam{105, 2, 12, true, true, 3},
                      RandomFlowParam{106, 4, 9, true, false, 1},
                      RandomFlowParam{107, 6, 5, false, true, 2},
                      RandomFlowParam{108, 4, 14, true, true, 2}),
    [](const ::testing::TestParamInfo<RandomFlowParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// --- synthesis option sweep: every controller implementation must agree -------

struct OptionCase {
  const char* name;
  synth::OutputLogicStyle style;
  synth::DontCareFill fill;
  synth::StateEncoding encoding;
};

class SynthesisOptionEquivalence
    : public ::testing::TestWithParam<OptionCase> {};

TEST_P(SynthesisOptionEquivalence, GateLevelMatchesRtl) {
  const OptionCase& oc = GetParam();
  const hls::Dfg dfg = designs::MakeDiffeqDfg(4);
  const hls::HlsResult hr = hls::RunHls(dfg, designs::DiffeqConfig());
  synth::SynthOptions opts;
  opts.style = oc.style;
  opts.fill = oc.fill;
  opts.encoding = oc.encoding;
  const synth::System sys =
      synth::BuildSystem("diffeq", hr.datapath, hr.control, hr.load_map,
                         opts);
  CheckGateRtlEquivalence(sys, 40, 0xBEEF);
}

INSTANTIATE_TEST_SUITE_P(
    Options, SynthesisOptionEquivalence,
    ::testing::Values(
        OptionCase{"sop_zero_binary", synth::OutputLogicStyle::kMinimizedSop,
                   synth::DontCareFill::kZero, synth::StateEncoding::kBinary},
        OptionCase{"sop_min_gray", synth::OutputLogicStyle::kMinimizedSop,
                   synth::DontCareFill::kMinimizer,
                   synth::StateEncoding::kGray},
        OptionCase{"shared_zero_gray", synth::OutputLogicStyle::kSharedSop,
                   synth::DontCareFill::kZero, synth::StateEncoding::kGray},
        OptionCase{"decoder_zero_binary",
                   synth::OutputLogicStyle::kStateDecoder,
                   synth::DontCareFill::kZero, synth::StateEncoding::kBinary},
        OptionCase{"decoder_min_gray", synth::OutputLogicStyle::kStateDecoder,
                   synth::DontCareFill::kMinimizer,
                   synth::StateEncoding::kGray},
        OptionCase{"onehot_zero", synth::OutputLogicStyle::kSharedSop,
                   synth::DontCareFill::kZero, synth::StateEncoding::kOneHot}),
    [](const ::testing::TestParamInfo<OptionCase>& info) {
      return std::string(info.param.name);
    });

TEST(StateEncodings, GrayCodesChangeOneBitPerLinearStep) {
  const hls::Dfg dfg = designs::MakePolyDfg(4);
  const hls::HlsResult hr = hls::RunHls(dfg, designs::PolyConfig());
  synth::SynthOptions opts;
  opts.encoding = synth::StateEncoding::kGray;
  const synth::System sys =
      synth::BuildSystem("poly", hr.datapath, hr.control, hr.load_map, opts);
  // Walk the controller and count state-bit toggles per transition.
  logicsim::Simulator sim(sys.nl);
  for (const synth::Bus& bus : sys.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  sim.SetInputAllLanes(sys.reset, Trit::kOne);
  sim.Step();  // boot cycle: captures the reset-state code
  sim.SetInputAllLanes(sys.reset, Trit::kZero);
  sim.Step();  // now in RESET state, next-state logic running free
  std::uint32_t prev = 0;
  for (netlist::GateId st : sys.state_bits) {
    ASSERT_EQ(sim.ValueLane(st, 0), Trit::kZero);  // gray(0) == 0
  }
  for (int s = 1; s < sys.control_spec.NumStates(); ++s) {
    sim.Step();
    std::uint32_t code = 0;
    for (std::size_t b = 0; b < sys.state_bits.size(); ++b) {
      if (sim.ValueLane(sys.state_bits[b], 0) == Trit::kOne) code |= 1u << b;
    }
    EXPECT_EQ(std::popcount(code ^ prev), 1) << "transition into state " << s;
    prev = code;
  }
}

TEST(StateEncodings, OneHotKeepsExactlyOneBitHot) {
  const hls::Dfg dfg = designs::MakePolyDfg(4);
  const hls::HlsResult hr = hls::RunHls(dfg, designs::PolyConfig());
  synth::SynthOptions opts;
  opts.encoding = synth::StateEncoding::kOneHot;
  const synth::System sys =
      synth::BuildSystem("poly", hr.datapath, hr.control, hr.load_map, opts);
  EXPECT_EQ(sys.state_bits.size(),
            static_cast<std::size_t>(sys.control_spec.NumStates()));
  logicsim::Simulator sim(sys.nl);
  for (const synth::Bus& bus : sys.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  for (int p = 0; p < 2; ++p) {
    for (int c = 0; c < sys.cycles_per_pattern; ++c) {
      sim.SetInputAllLanes(sys.reset, c == 0 ? Trit::kOne : Trit::kZero);
      sim.Step();
      if (p == 0 && c == 0) continue;  // boot cycle
      int hot = 0;
      for (netlist::GateId st : sys.state_bits) {
        EXPECT_NE(sim.ValueLane(st, 0), Trit::kX);
        if (sim.ValueLane(st, 0) == Trit::kOne) ++hot;
      }
      EXPECT_EQ(hot, 1) << "pattern " << p << " cycle " << c;
    }
  }
}

// --- structural expectations ----------------------------------------------------

TEST(SystemStructure, ModulesArePartitioned) {
  const BenchmarkDesign d = designs::BuildDiffeq(4);
  const netlist::NetlistStats s = d.system.nl.Stats();
  EXPECT_GT(s.controller_gates, 20u);
  EXPECT_GT(s.datapath_gates, 200u);
  EXPECT_EQ(d.system.nl.gate(d.system.reset).module,
            netlist::ModuleTag::kInterface);
  for (netlist::GateId g : d.system.line_nets) {
    EXPECT_EQ(d.system.nl.gate(g).module, netlist::ModuleTag::kController);
  }
}

TEST(SystemStructure, TestPlansAreWellFormed) {
  const BenchmarkDesign d = designs::BuildPoly(4);
  const fault::TestPlan plan = d.system.MakeTestPlan();
  EXPECT_EQ(plan.cycles_per_pattern, d.system.cycles_per_pattern);
  EXPECT_EQ(plan.strobe_cycles.size(), 2u);  // two HOLD strobes
  EXPECT_EQ(plan.operand_bits.size(), 5u);   // a, b, c, d, x
  EXPECT_EQ(plan.observe.size(), 4u);        // one 4-bit output

  const fault::TestPlan every = d.system.MakeEveryCyclePlan();
  EXPECT_EQ(every.strobe_cycles.size(),
            static_cast<std::size_t>(d.system.cycles_per_pattern - 1));

  const fault::TestPlan ctrl = d.system.MakeControllerPlan();
  EXPECT_EQ(ctrl.observe.size(), d.system.line_nets.size());
}

TEST(SystemStructure, ClockGatesCoverEveryDatapathRegisterBit) {
  const BenchmarkDesign d = designs::BuildFacet(4);
  std::size_t gated_bits = 0;
  for (const auto& [enable, dffs] : d.system.clock_gates) {
    gated_bits += dffs.size();
  }
  std::size_t reg_bits = 0;
  for (const rtl::Register& r : d.system.datapath.regs()) {
    reg_bits += static_cast<std::size_t>(r.width);
  }
  EXPECT_EQ(gated_bits, reg_bits);
}

}  // namespace
}  // namespace pfd
