// Tests for the DFT observation-mux insertion (the Section-2 alternative).
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "fault/fault_sim.hpp"
#include "logicsim/simulator.hpp"
#include "synth/dft.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::synth {
namespace {

class DftOnPoly : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new designs::BenchmarkDesign(designs::BuildPoly(4));
    dft_ = new DftSystem(InsertObservationDft(design_->system));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete dft_;
    design_ = nullptr;
    dft_ = nullptr;
  }
  static designs::BenchmarkDesign* design_;
  static DftSystem* dft_;
};

designs::BenchmarkDesign* DftOnPoly::design_ = nullptr;
DftSystem* DftOnPoly::dft_ = nullptr;

TEST_F(DftOnPoly, StructureIsAccounted) {
  EXPECT_GT(dft_->mux_gates_added, 0u);
  EXPECT_GE(dft_->sessions, 1);
  EXPECT_NE(dft_->test_mode, netlist::kNoGate);
  // Sessions must be able to show every control line.
  std::size_t out_bits = 0;
  for (const Bus& bus : dft_->system.output_nets) out_bits += bus.size();
  EXPECT_GE(static_cast<std::size_t>(dft_->sessions) * out_bits,
            dft_->system.line_nets.size());
}

TEST_F(DftOnPoly, FunctionalModePreservesBehaviour) {
  // With test_mode low, the DFT system's outputs equal the original's for
  // random patterns.
  logicsim::Simulator orig(design_->system.nl);
  logicsim::Simulator modified(dft_->system.nl);
  modified.SetInputAllLanes(dft_->test_mode, Trit::kZero);
  for (netlist::GateId g : dft_->session_select) {
    modified.SetInputAllLanes(g, Trit::kZero);
  }
  tpg::Tpgr tpgr(0xD0F7);
  std::vector<int> widths;
  for (const Bus& bus : design_->system.operand_bits) {
    widths.push_back(static_cast<int>(bus.size()));
  }
  for (int p = 0; p < 30; ++p) {
    const auto pattern = tpgr.NextPattern(widths);
    for (std::size_t op = 0; op < pattern.size(); ++op) {
      for (std::size_t b = 0; b < widths[op]; ++b) {
        const Trit t = pattern[op].bit(static_cast<int>(b)) ? Trit::kOne
                                                            : Trit::kZero;
        orig.SetInputAllLanes(design_->system.operand_bits[op][b], t);
        modified.SetInputAllLanes(dft_->system.operand_bits[op][b], t);
      }
    }
    for (int c = 0; c < design_->system.cycles_per_pattern; ++c) {
      const Trit r = c == 0 ? Trit::kOne : Trit::kZero;
      orig.SetInputAllLanes(design_->system.reset, r);
      modified.SetInputAllLanes(dft_->system.reset, r);
      orig.Step();
      modified.Step();
    }
    for (std::size_t o = 0; o < design_->system.output_nets.size(); ++o) {
      for (std::size_t b = 0; b < design_->system.output_nets[o].size();
           ++b) {
        EXPECT_EQ(orig.ValueLane(design_->system.output_nets[o][b], 0),
                  modified.ValueLane(dft_->system.output_nets[o][b], 0))
            << "pattern " << p;
      }
    }
  }
}

TEST_F(DftOnPoly, TestModeExposesControlLines) {
  // In test mode, output bit j of session g shows control line g*W+j:
  // simulate and compare against the controller's resolved outputs.
  const synth::System& sys = dft_->system;
  std::size_t out_bits = 0;
  for (const Bus& bus : sys.output_nets) out_bits += bus.size();

  for (int session = 0; session < dft_->sessions; ++session) {
    const fault::TestPlan plan = dft_->MakeDftPlan(session);
    logicsim::Simulator sim(sys.nl);
    for (const auto& [gate, value] : plan.pinned) {
      sim.SetInputAllLanes(gate, value);
    }
    for (const auto& op : plan.operand_bits) {
      for (netlist::GateId g : op) sim.SetInputAllLanes(g, Trit::kZero);
    }
    // Walk one pattern; from cycle 1 compare the muxed outputs with the
    // expected control-line values.
    for (int c = 0; c < plan.cycles_per_pattern; ++c) {
      sim.SetInputAllLanes(plan.reset, c == 0 ? Trit::kOne : Trit::kZero);
      sim.Step();
      if (c == 0) continue;
      std::size_t j = 0;
      for (const Bus& bus : sys.output_nets) {
        for (netlist::GateId out : bus) {
          const std::size_t line =
              static_cast<std::size_t>(session) * out_bits + j;
          if (line < sys.line_nets.size()) {
            EXPECT_EQ(sim.ValueLane(out, 0),
                      sim.ValueLane(sys.line_nets[line], 0))
                << "session " << session << " cycle " << c << " bit " << j;
          }
          ++j;
        }
      }
    }
  }
}

TEST_F(DftOnPoly, DftCatchesFaultsTheIntegratedTestCannot) {
  // Union of detections over all sessions must cover every fault that the
  // integrated test leaves behind as SFR (they all reach control lines).
  const auto all = fault::GenerateFaults(dft_->system.nl,
                                         netlist::ModuleTag::kController);
  const auto faults =
      fault::Collapse(dft_->system.nl, all).representatives;
  std::vector<bool> caught(faults.size(), false);
  for (int session = 0; session < dft_->sessions; ++session) {
    const fault::FaultSimResult r = fault::RunFaultSim(
        {dft_->system.nl, {dft_->MakeDftPlan(session), 0xACE1, 48}, faults});
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (r.status[i] != fault::FaultStatus::kUndetected) caught[i] = true;
    }
  }
  std::size_t caught_count = 0;
  for (bool c : caught) {
    if (c) ++caught_count;
  }
  // Everything is observable now; at most a handful of faults could need
  // more patterns, and in practice full coverage is reached.
  EXPECT_EQ(caught_count, faults.size());
}

TEST(Dft, PlanValidation) {
  const designs::BenchmarkDesign d = designs::BuildFacet(4);
  const DftSystem dft = InsertObservationDft(d.system);
  EXPECT_THROW(dft.MakeDftPlan(-1), Error);
  EXPECT_THROW(dft.MakeDftPlan(dft.sessions), Error);
  const fault::TestPlan functional = dft.MakeFunctionalPlan();
  EXPECT_FALSE(functional.pinned.empty());
}

}  // namespace
}  // namespace pfd::synth
