# End-to-end RunReport round trip, run as a ctest: every design goes through
# `pfdtool classify --report`, plus one grade and one xcheck run, and every
# emitted report must pass tools/check_run_report.py (the executable schema
# definition). Invoked from tests/CMakeLists.txt as
#   cmake -DPFDTOOL=... -DPYTHON3=... -DCHECKER=... -DOUT_DIR=... -P this.cmake
foreach(var PFDTOOL PYTHON3 CHECKER OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_report_roundtrip: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

function(check_report path command)
  execute_process(
    COMMAND "${PYTHON3}" "${CHECKER}" "${path}"
            --expect-command "${command}" --expect-exit-code 0
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_run_report.py rejected ${path}")
  endif()
endfunction()

# classify on every design; --patterns 100 keeps the sweep test-sized while
# still driving the fault-sim, power, and cache layers for real.
foreach(design diffeq diffeq-loop ewf facet poly)
  set(report "${OUT_DIR}/classify_${design}.json")
  execute_process(
    COMMAND "${PFDTOOL}" classify "${design}" --patterns 100
            --report "${report}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "pfdtool classify ${design} failed (rc=${rc})")
  endif()
  check_report("${report}" classify)
endforeach()

set(report "${OUT_DIR}/grade_diffeq.json")
execute_process(
  COMMAND "${PFDTOOL}" grade diffeq --patterns 100 --report "${report}"
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pfdtool grade diffeq failed (rc=${rc})")
endif()
check_report("${report}" grade)

set(report "${OUT_DIR}/xcheck.json")
execute_process(
  COMMAND "${PFDTOOL}" xcheck --seed 20260807 --iters 50 --report "${report}"
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pfdtool xcheck failed (rc=${rc})")
endif()
check_report("${report}" xcheck)

message(STATUS "run_report_roundtrip: all reports validated")
