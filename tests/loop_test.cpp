// Tests for while-loop (feedback) systems: the iterating Diffeq whose
// controller branches on a datapath status line.
#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "analysis/trace.hpp"
#include "core/grading.hpp"
#include "core/worstcase.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "logicsim/simulator.hpp"

namespace pfd {
namespace {

using designs::BenchmarkDesign;

// Software model of the iterating Euler solver, bounded by the same cycle
// budget the hardware test plan grants.
struct LoopModel {
  std::uint32_t x, y, u, c;
};

LoopModel RunLoopModel(std::uint32_t x, std::uint32_t y, std::uint32_t u,
                       std::uint32_t dx, std::uint32_t a, int width,
                       int max_iterations) {
  const std::uint32_t mask = (1u << width) - 1u;
  std::uint32_t c = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    const std::uint32_t x1 = (x + dx) & mask;
    const std::uint32_t y1 = (y + u * dx) & mask;
    const std::uint32_t u1 = (u - 3 * x * u * dx - 3 * y * dx) & mask;
    c = x1 < a ? 1 : 0;
    x = x1;
    y = y1;
    u = u1;
    if (c == 0) break;
  }
  return {x, y, u, c};
}

class LoopDiffeq : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new BenchmarkDesign(designs::BuildDiffeqLoop(4));
  }
  static void TearDownTestSuite() {
    delete design_;
    design_ = nullptr;
  }
  static BenchmarkDesign* design_;
};

BenchmarkDesign* LoopDiffeq::design_ = nullptr;

TEST_F(LoopDiffeq, StructureHasFeedback) {
  const synth::System& sys = design_->system;
  EXPECT_TRUE(sys.has_feedback);
  EXPECT_NE(sys.cond_sync, netlist::kNoGate);
  EXPECT_TRUE(design_->hls.loop.enabled);
  EXPECT_EQ(design_->hls.loop.cond_step, design_->hls.num_steps);
  EXPECT_GT(sys.loop_extra_cycles, 0);
  // Carries share registers: x and x1 live in the same register.
  const hls::Variable& x = design_->hls.VarOf(hls::ValueRef::Input(0));
  const hls::Variable& x1 = design_->hls.VarOf(hls::ValueRef::Op(8));
  EXPECT_EQ(x.reg, x1.reg);
}

TEST_F(LoopDiffeq, GateLevelMatchesTheIterativeModel) {
  const synth::System& sys = design_->system;
  logicsim::Simulator sim(sys.nl);
  // Enough budget for 1 + test_iterations iterations.
  const int max_iterations = 3;
  int loop_cases = 0;
  for (std::uint32_t x = 0; x < 16; x += 5) {
    for (std::uint32_t a = 2; a < 16; a += 4) {
      const std::uint32_t y = (x + 3) & 0xF;
      const std::uint32_t u = (a + 1) & 0xF;
      const std::uint32_t dx = 7;
      // Count iterations the model needs; skip data that would iterate past
      // the hardware budget (the test plan grants 3 passes).
      std::uint32_t mx = x;
      int need = 0;
      for (; need < 10; ++need) {
        mx = (mx + dx) & 0xF;
        if (mx >= a) break;
      }
      if (need + 1 > max_iterations) continue;
      if (need > 0) ++loop_cases;

      const LoopModel expect =
          RunLoopModel(x, y, u, dx, a, 4, max_iterations);
      const std::vector<BitVec> operands = {BitVec(4, x), BitVec(4, y),
                                            BitVec(4, u), BitVec(4, dx),
                                            BitVec(4, a)};
      for (std::size_t op = 0; op < operands.size(); ++op) {
        for (std::size_t b = 0; b < 4; ++b) {
          sim.SetInputAllLanes(sys.operand_bits[op][b],
                               operands[op].bit(static_cast<int>(b))
                                   ? Trit::kOne
                                   : Trit::kZero);
        }
      }
      for (int c = 0; c < sys.cycles_per_pattern; ++c) {
        sim.SetInputAllLanes(sys.reset, c == 0 ? Trit::kOne : Trit::kZero);
        sim.Step();
      }
      auto read_bus = [&](const synth::Bus& bus) {
        std::uint32_t v = 0;
        for (std::size_t b = 0; b < bus.size(); ++b) {
          const Trit t = sim.ValueLane(bus[b], 0);
          EXPECT_NE(t, Trit::kX);
          if (t == Trit::kOne) v |= 1u << b;
        }
        return v;
      };
      // Outputs: x1, y1, u1, c — the final iteration's values.
      EXPECT_EQ(read_bus(sys.output_nets[0]), expect.x)
          << "x=" << x << " a=" << a;
      EXPECT_EQ(read_bus(sys.output_nets[1]), expect.y);
      EXPECT_EQ(read_bus(sys.output_nets[2]), expect.u);
      EXPECT_EQ(read_bus(sys.output_nets[3]), expect.c);
    }
  }
  // The sweep must actually exercise multi-iteration executions.
  EXPECT_GT(loop_cases, 3);
}

TEST_F(LoopDiffeq, PipelineClassifiesWithoutSymbolicReplay) {
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = 300;
  // Keep the exhaustive sweeps tractable for the longer loop schedule.
  cfg.gate_check.max_exhaustive_bits = 12;
  cfg.gate_check.sample_patterns = 2048;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(design_->system, design_->hls, cfg);
  EXPECT_EQ(report.total, report.records.size());
  EXPECT_GT(report.sfr, 0u);
  for (const core::FaultRecord& r : report.records) {
    // No symbolic proofs for feedback systems.
    EXPECT_FALSE(r.symbolically_proven) << r.name;
  }
  // Power grading still applies.
  core::GradeConfig grade_cfg;
  grade_cfg.mc.max_batches = 32;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(design_->system, report, grade_cfg);
  EXPECT_GT(graded.fault_free_uw, 0.0);
  EXPECT_EQ(graded.faults.size(), report.sfr);
}

TEST_F(LoopDiffeq, WorstCaseComposerRefusesFeedbackSystems) {
  core::GradeConfig cfg;
  EXPECT_THROW(core::ComposeWorstCase(design_->system, design_->hls, cfg),
               Error);
}

TEST_F(LoopDiffeq, SymbolicCheckerRefusesFeedbackSystems) {
  const analysis::ControlTrace golden =
      analysis::ExtractControlTrace(design_->system, nullptr, 3);
  EXPECT_THROW(
      analysis::SymbolicSfrCheck(design_->system, golden, golden),
      Error);
}

}  // namespace
}  // namespace pfd
