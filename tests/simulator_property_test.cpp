// Property tests for the gate-level simulator on randomly generated
// combinational netlists:
//
//   1. Reference agreement — the simulator's settled values equal a direct
//      recursive evaluation of the gate functions, for random known inputs.
//   2. X-monotonicity (soundness of the pessimistic ternary semantics) —
//      refining any X input to a concrete value never changes an output
//      that was already known, and never makes a known output unknown.
//   3. Lane independence — evaluating 64 different input vectors packed in
//      one word gives exactly the same results as 64 scalar runs.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "logicsim/simulator.hpp"

namespace pfd::logicsim {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

struct RandomComb {
  Netlist nl;
  std::vector<GateId> inputs;
  std::vector<GateId> probes;  // all gates, checked everywhere
};

RandomComb MakeRandomComb(std::uint64_t seed, int num_inputs, int num_gates) {
  Rng rng(seed);
  RandomComb rc;
  std::vector<GateId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    const GateId g = rc.nl.AddInput("in" + std::to_string(i));
    rc.inputs.push_back(g);
    pool.push_back(g);
  }
  const GateKind kinds[] = {GateKind::kAnd,  GateKind::kOr,  GateKind::kNand,
                            GateKind::kNor,  GateKind::kXor, GateKind::kXnor,
                            GateKind::kNot,  GateKind::kBuf, GateKind::kMux2,
                            GateKind::kConst0, GateKind::kConst1};
  for (int i = 0; i < num_gates; ++i) {
    const GateKind kind = kinds[rng.Below(std::size(kinds))];
    int arity = netlist::ExpectedArity(kind);
    if (arity < 0) arity = 2 + static_cast<int>(rng.Below(3));
    std::vector<GateId> fanins;
    for (int a = 0; a < arity; ++a) {
      fanins.push_back(pool[rng.Below(pool.size())]);
    }
    pool.push_back(rc.nl.AddGate(kind, ModuleTag::kDatapath, fanins));
  }
  rc.probes = pool;
  rc.nl.AddOutput(pool.back(), "o");
  rc.nl.Validate();
  return rc;
}

// Direct recursive reference evaluation over scalar trits.
Trit RefEval(const Netlist& nl, GateId g, const std::vector<Trit>& in_values,
             std::vector<int>& memo) {
  if (memo[g] >= 0) return static_cast<Trit>(memo[g]);
  const auto fanins = nl.Fanins(g);
  auto arg = [&](std::size_t i) {
    return RefEval(nl, fanins[i], in_values, memo);
  };
  Trit v = Trit::kX;
  switch (nl.gate(g).kind) {
    case GateKind::kInput: {
      // Inputs are created first, so their id doubles as their index.
      v = in_values[g];
      break;
    }
    case GateKind::kConst0: v = Trit::kZero; break;
    case GateKind::kConst1: v = Trit::kOne; break;
    case GateKind::kBuf: v = arg(0); break;
    case GateKind::kNot: v = Not3(arg(0)); break;
    case GateKind::kAnd:
    case GateKind::kNand: {
      v = arg(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = And3(v, arg(i));
      if (nl.gate(g).kind == GateKind::kNand) v = Not3(v);
      break;
    }
    case GateKind::kOr:
    case GateKind::kNor: {
      v = arg(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = Or3(v, arg(i));
      if (nl.gate(g).kind == GateKind::kNor) v = Not3(v);
      break;
    }
    case GateKind::kXor: v = Xor3(arg(0), arg(1)); break;
    case GateKind::kXnor: v = Not3(Xor3(arg(0), arg(1))); break;
    case GateKind::kMux2: v = Mux3(arg(0), arg(1), arg(2)); break;
    case GateKind::kDff: break;  // not generated here
  }
  memo[g] = static_cast<int>(v);
  return v;
}

class SimulatorProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorProperties, MatchesReferenceEvaluation) {
  const RandomComb rc = MakeRandomComb(GetParam(), 5, 60);
  Simulator sim(rc.nl);
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Trit> in_values(rc.inputs.size());
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      in_values[i] = rng.Chance(0.5) ? Trit::kOne : Trit::kZero;
      sim.SetInputAllLanes(rc.inputs[i], in_values[i]);
    }
    sim.Step();
    std::vector<int> memo(rc.nl.size(), -1);
    for (GateId g : rc.probes) {
      ASSERT_EQ(sim.ValueLane(g, 0), RefEval(rc.nl, g, in_values, memo))
          << "gate " << g << " trial " << trial;
    }
  }
}

TEST_P(SimulatorProperties, TernaryEvaluationIsMonotone) {
  const RandomComb rc = MakeRandomComb(GetParam(), 6, 50);
  Simulator sim(rc.nl);
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    // Coarse assignment: some inputs X.
    std::vector<Trit> coarse(rc.inputs.size());
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      coarse[i] = rng.Chance(0.4)
                      ? Trit::kX
                      : (rng.Chance(0.5) ? Trit::kOne : Trit::kZero);
      sim.SetInputAllLanes(rc.inputs[i], coarse[i]);
    }
    sim.Step();
    std::vector<Trit> coarse_out;
    for (GateId g : rc.probes) coarse_out.push_back(sim.ValueLane(g, 0));

    // Refinement: every X pinned to a random concrete value.
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      const Trit refined = coarse[i] == Trit::kX
                               ? (rng.Chance(0.5) ? Trit::kOne : Trit::kZero)
                               : coarse[i];
      sim.SetInputAllLanes(rc.inputs[i], refined);
    }
    sim.Step();
    for (std::size_t p = 0; p < rc.probes.size(); ++p) {
      const Trit refined_out = sim.ValueLane(rc.probes[p], 0);
      if (coarse_out[p] != Trit::kX) {
        ASSERT_EQ(refined_out, coarse_out[p])
            << "known output changed under refinement, gate " << rc.probes[p];
      } else {
        ASSERT_NE(refined_out, Trit::kX)
            << "fully-known inputs left an X output, gate " << rc.probes[p];
      }
    }
  }
}

TEST_P(SimulatorProperties, LanesAreIndependent) {
  const RandomComb rc = MakeRandomComb(GetParam(), 4, 40);
  Rng rng(GetParam() * 101 + 13);
  // 64 random input vectors, packed.
  std::vector<std::uint32_t> vectors(64);
  for (auto& v : vectors) v = rng.Bits(4);
  Simulator packed(rc.nl);
  for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
    Word3 w = kAllX;
    for (int lane = 0; lane < 64; ++lane) {
      w = SetLane(w, lane,
                  ((vectors[lane] >> i) & 1) ? Trit::kOne : Trit::kZero);
    }
    packed.SetInput(rc.inputs[i], w);
  }
  packed.Step();
  for (int lane = 0; lane < 64; lane += 7) {
    Simulator scalar(rc.nl);
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      scalar.SetInputAllLanes(rc.inputs[i], ((vectors[lane] >> i) & 1)
                                                ? Trit::kOne
                                                : Trit::kZero);
    }
    scalar.Step();
    for (GateId g : rc.probes) {
      ASSERT_EQ(packed.ValueLane(g, lane), scalar.ValueLane(g, 0))
          << "lane " << lane << " gate " << g;
    }
  }
}

TEST_P(SimulatorProperties, UnitDelaySettlesToTheSameValues) {
  const RandomComb rc = MakeRandomComb(GetParam(), 5, 70);
  Simulator zero(rc.nl);
  Simulator unit(rc.nl);
  unit.EnableUnitDelay(true);
  Rng rng(GetParam() * 91 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    for (GateId in : rc.inputs) {
      const Trit t = rng.Chance(0.5) ? Trit::kOne : Trit::kZero;
      zero.SetInputAllLanes(in, t);
      unit.SetInputAllLanes(in, t);
    }
    zero.Step();
    unit.Step();
    for (GateId g : rc.probes) {
      ASSERT_EQ(zero.ValueLane(g, 0), unit.ValueLane(g, 0))
          << "gate " << g << " trial " << trial;
    }
  }
}

TEST_P(SimulatorProperties, UnitDelayCountsAtLeastAsManyToggles) {
  const RandomComb rc = MakeRandomComb(GetParam() + 100, 5, 70);
  Simulator zero(rc.nl);
  Simulator unit(rc.nl);
  zero.EnableToggleCounting(true);
  unit.EnableToggleCounting(true);
  unit.EnableUnitDelay(true);
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    for (GateId in : rc.inputs) {
      const Trit t = rng.Chance(0.5) ? Trit::kOne : Trit::kZero;
      zero.SetInputAllLanes(in, t);
      unit.SetInputAllLanes(in, t);
    }
    zero.Step();
    unit.Step();
  }
  // Per net: glitching can only add transitions (both models agree on the
  // settled endpoints each cycle).
  for (GateId g : rc.probes) {
    EXPECT_GE(unit.ToggleCount(g), zero.ToggleCount(g)) << "gate " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         ::testing::PrintToStringParamName());

TEST(UnitDelay, CountsTheClassicStaticHazard) {
  // y = AND(a, NOT a): settled value is always 0, but a rising edge on `a`
  // races the inverter and produces a one-sub-step pulse in unit delay.
  netlist::Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{a}});
  const GateId y = nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{a, n}});
  for (bool unit : {false, true}) {
    Simulator sim(nl);
    sim.EnableToggleCounting(true);
    sim.EnableUnitDelay(unit);
    sim.SetInputAllLanes(a, Trit::kZero);
    sim.Step();
    sim.ResetToggleCounts();
    sim.SetInputAllLanes(a, Trit::kOne);
    sim.Step();  // rising edge: the hazard cycle
    sim.Step();  // stable
    EXPECT_EQ(sim.ValueLane(y, 0), Trit::kZero);
    if (unit) {
      EXPECT_EQ(sim.ToggleCount(y), 2u * 64);  // 0 -> 1 -> 0 pulse
    } else {
      EXPECT_EQ(sim.ToggleCount(y), 0u);  // zero-delay hides the hazard
    }
  }
}

}  // namespace
}  // namespace pfd::logicsim
