// Tests for the analysis module: control-trace extraction, Section-3 effect
// classification (Figure 5 / Figure 6 scenarios), and the symbolic and
// gate-level SFR deciders.
#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "analysis/effects.hpp"
#include "analysis/trace.hpp"
#include "designs/designs.hpp"

namespace pfd::analysis {
namespace {

using designs::BenchmarkDesign;

class AnalysisOnDiffeq : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new BenchmarkDesign(designs::BuildDiffeq(4));
    golden_ = new ControlTrace(
        ExtractControlTrace(design_->system, nullptr, 3));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete golden_;
    design_ = nullptr;
    golden_ = nullptr;
  }
  static BenchmarkDesign* design_;
  static ControlTrace* golden_;
};

BenchmarkDesign* AnalysisOnDiffeq::design_ = nullptr;
ControlTrace* AnalysisOnDiffeq::golden_ = nullptr;

TEST_F(AnalysisOnDiffeq, GoldenTraceMatchesResolvedControl) {
  const synth::System& sys = design_->system;
  // From cycle 1 on, the control lines must equal the synthesized
  // controller's resolved Moore outputs for the state occupied that cycle.
  for (int p = 0; p < golden_->num_patterns; ++p) {
    for (int c = 0; c < sys.cycles_per_pattern; ++c) {
      if (p == 0 && c == 0) continue;  // boot cycle: X state
      const int state =
          c == 0 ? sys.control_spec.HoldState() : sys.StateAtCycle(c);
      for (std::size_t li = 0; li < sys.lines.size(); ++li) {
        const synth::ControlLineInfo& info = sys.lines[li];
        std::uint8_t expect;
        if (info.kind == synth::ControlLineInfo::Kind::kLoad) {
          expect = sys.resolved.line_loads[state][info.index];
        } else {
          expect = (sys.resolved.selects[state][info.index] >> info.bit) & 1;
        }
        EXPECT_EQ(golden_->At(p, c, li), expect ? Trit::kOne : Trit::kZero)
            << "pattern " << p << " cycle " << c << " line " << info.name;
      }
    }
  }
}

TEST_F(AnalysisOnDiffeq, GoldenTraceIsPeriodicAndKnown) {
  EXPECT_TRUE(PatternsEqual(*golden_, 1, 2));
  EXPECT_FALSE(PatternHasUnknown(*golden_, 1));
  EXPECT_FALSE(PatternHasUnknown(*golden_, 0));  // boot cycle is exempted
}

TEST_F(AnalysisOnDiffeq, StuckLineFaultYieldsExpectedEffects) {
  const synth::System& sys = design_->system;
  // Stuck-at-1 on control line 0 (a load line): every cycle where the
  // golden line is 0 shows an extra-load effect.
  const fault::StuckFault f{sys.line_nets[0], 0, Trit::kOne};
  const ControlTrace faulty = ExtractControlTrace(sys, &f, 3);
  const auto effects = DiffPattern(sys, *golden_, faulty, 1);
  ASSERT_FALSE(effects.empty());
  for (const ControlLineEffect& e : effects) {
    EXPECT_EQ(e.line, 0u);
    EXPECT_EQ(e.golden, Trit::kZero);
    EXPECT_EQ(e.faulty, Trit::kOne);
  }
  std::size_t golden_zero_cycles = 0;
  for (int c = 0; c < sys.cycles_per_pattern; ++c) {
    if (golden_->At(1, c, 0) == Trit::kZero) ++golden_zero_cycles;
  }
  EXPECT_EQ(effects.size(), golden_zero_cycles);
}

TEST_F(AnalysisOnDiffeq, DescribeEffectUsesPaperVocabulary) {
  const synth::System& sys = design_->system;
  ControlLineEffect extra{2, 1, 0, Trit::kZero, Trit::kOne};
  const std::string d1 = DescribeEffect(sys, extra);
  EXPECT_NE(d1.find("extra load in CS1"), std::string::npos);
  ControlLineEffect skipped{2, 1, 0, Trit::kOne, Trit::kZero};
  EXPECT_NE(DescribeEffect(sys, skipped).find("skipped load"),
            std::string::npos);
  std::uint32_t sel_line = 0;
  while (sys.lines[sel_line].kind !=
         synth::ControlLineInfo::Kind::kSelectBit) {
    ++sel_line;
  }
  ControlLineEffect sel{3, 2, sel_line, Trit::kZero, Trit::kOne};
  const std::string d3 = DescribeEffect(sys, sel);
  EXPECT_NE(d3.find("changes in CS2"), std::string::npos);
  EXPECT_NE(d3.find(sys.lines[sel_line].name), std::string::npos);
}

// --- Figure 5: lifespans and load-line effects -------------------------------

TEST_F(AnalysisOnDiffeq, LifespanTableFollowsBinding) {
  const LifespanTable table(design_->hls);
  for (const hls::Variable& v : design_->hls.variables) {
    if (v.last_use == hls::Variable::kPersist || v.last_use > v.def_step) {
      EXPECT_TRUE(table.LiveAcross(v.reg, v.def_step))
          << v.name << " should be live right after def";
    }
    if (v.last_use != hls::Variable::kPersist) {
      const hls::Variable* occ = table.OccupantAcross(v.reg, v.last_use);
      if (occ != nullptr) {
        EXPECT_NE(occ->name, v.name)
            << v.name << " still occupies its register after last use";
      }
    }
  }
}

TEST_F(AnalysisOnDiffeq, EffectCategoriesFollowFigure5) {
  const synth::System& sys = design_->system;
  const LifespanTable lifespans(design_->hls);

  int live_state = -1, idle_state = -1;
  std::uint32_t live_line = 0, idle_line = 0;
  for (std::uint32_t li = 0; li < sys.lines.size(); ++li) {
    if (sys.lines[li].kind != synth::ControlLineInfo::Kind::kLoad) continue;
    for (int s = 1; s <= design_->hls.num_steps; ++s) {
      if (sys.resolved.line_loads[s][sys.lines[li].index] != 0) continue;
      bool live = false;
      for (std::uint32_t r : sys.load_map.regs_of_line[sys.lines[li].index]) {
        if (lifespans.LiveAcross(r, s)) live = true;
      }
      if (live && live_state < 0) {
        live_state = s;
        live_line = li;
      }
      if (!live && idle_state < 0) {
        idle_state = s;
        idle_line = li;
      }
    }
  }
  ASSERT_GE(live_state, 0);
  ASSERT_GE(idle_state, 0);

  const auto live_effect = ClassifyEffect(
      sys, lifespans,
      {live_state + 1, live_state, live_line, Trit::kZero, Trit::kOne});
  EXPECT_EQ(live_effect.category, EffectCategory::kExtraLoadInLifespan);
  EXPECT_EQ(VerdictOf(live_effect.category),
            LocalVerdict::kNeedsValueAnalysis);

  const auto idle_effect = ClassifyEffect(
      sys, lifespans,
      {idle_state + 1, idle_state, idle_line, Trit::kZero, Trit::kOne});
  EXPECT_EQ(idle_effect.category, EffectCategory::kExtraLoadIdle);
  EXPECT_EQ(VerdictOf(idle_effect.category), LocalVerdict::kSfr);

  const auto skipped = ClassifyEffect(sys, lifespans,
                                      {2, 1, live_line, Trit::kOne,
                                       Trit::kZero});
  EXPECT_EQ(skipped.category, EffectCategory::kSkippedLoad);
  EXPECT_EQ(VerdictOf(skipped.category), LocalVerdict::kSfi);
}

TEST_F(AnalysisOnDiffeq, SelectEffectsSplitByCareness) {
  const synth::System& sys = design_->system;
  const LifespanTable lifespans(design_->hls);
  for (std::uint32_t li = 0; li < sys.lines.size(); ++li) {
    const synth::ControlLineInfo& info = sys.lines[li];
    if (info.kind != synth::ControlLineInfo::Kind::kSelectBit) continue;
    int care = -1, dc = -1;
    for (int s = 0; s < sys.control_spec.NumStates(); ++s) {
      if (sys.control_spec.states[s].select[info.index].has_value()) {
        if (care < 0) care = s;
      } else if (dc < 0) {
        dc = s;
      }
    }
    ASSERT_GE(care, 0);
    ASSERT_GE(dc, 0);
    const auto care_eff = ClassifyEffect(
        sys, lifespans, {care + 1, care, li, Trit::kZero, Trit::kOne});
    EXPECT_EQ(care_eff.category, EffectCategory::kSelectCare);
    const auto dc_eff = ClassifyEffect(
        sys, lifespans, {dc + 1, dc, li, Trit::kZero, Trit::kOne});
    EXPECT_EQ(dc_eff.category, EffectCategory::kSelectDontCare);
    break;
  }
}

TEST(CombineVerdicts, FollowsSection33) {
  auto make = [](EffectCategory c) {
    ClassifiedEffect ce;
    ce.category = c;
    return ce;
  };
  EXPECT_EQ(CombineVerdicts({make(EffectCategory::kSelectDontCare),
                             make(EffectCategory::kExtraLoadIdle)}),
            LocalVerdict::kSfr);
  EXPECT_EQ(CombineVerdicts({make(EffectCategory::kSelectDontCare),
                             make(EffectCategory::kSkippedLoad)}),
            LocalVerdict::kSfi);
  EXPECT_EQ(CombineVerdicts({make(EffectCategory::kExtraLoadInLifespan)}),
            LocalVerdict::kNeedsValueAnalysis);
  EXPECT_EQ(CombineVerdicts({}), LocalVerdict::kSfr);
}

// --- Figure 6 / symbolic decider ---------------------------------------------

// Builds a faulty trace by setting one line in one state of the golden trace
// (applied in every pattern, including the pattern-boundary HOLD cycle when
// the state is HOLD).
ControlTrace PerturbTrace(const synth::System& sys, const ControlTrace& g,
                          std::uint32_t line, int state, Trit value) {
  ControlTrace t = g;
  for (int p = 0; p < t.num_patterns; ++p) {
    for (int c = 0; c < t.cycles_per_pattern; ++c) {
      int s = sys.StateAtCycle(c);
      if (c == 0 && p > 0) s = sys.control_spec.HoldState();
      if (s == state) {
        t.lines[p * t.cycles_per_pattern + c][line] = value;
      }
    }
  }
  return t;
}

TEST_F(AnalysisOnDiffeq, SymbolicCheckAcceptsDontCareSelectFlip) {
  // Figure 6 fault f1: a select change in a step where the mux's result is
  // not written anywhere must be functionally invisible.
  const synth::System& sys = design_->system;
  std::uint32_t li = 0;
  while (sys.lines[li].kind != synth::ControlLineInfo::Kind::kSelectBit) ++li;
  const int hold = sys.control_spec.HoldState();
  const synth::ControlLineInfo& info = sys.lines[li];
  const bool golden_bit =
      ((sys.resolved.selects[hold][info.index] >> info.bit) & 1) != 0;
  const ControlTrace faulty = PerturbTrace(
      sys, *golden_, li, hold, golden_bit ? Trit::kZero : Trit::kOne);
  const SymbolicCheck check = SymbolicSfrCheck(sys, *golden_, faulty);
  EXPECT_EQ(check.outcome, SymbolicCheck::Outcome::kEquivalent)
      << check.detail;
}

TEST_F(AnalysisOnDiffeq, SymbolicCheckRejectsSkippedLoad) {
  const synth::System& sys = design_->system;
  std::uint32_t li = 0;
  int state = -1;
  for (int s = 1; s <= design_->hls.num_steps && state < 0; ++s) {
    for (std::uint32_t l = 0; l < sys.lines.size(); ++l) {
      if (sys.lines[l].kind == synth::ControlLineInfo::Kind::kLoad &&
          sys.resolved.line_loads[s][sys.lines[l].index] != 0) {
        li = l;
        state = s;
        break;
      }
    }
  }
  ASSERT_GE(state, 0);
  const ControlTrace faulty =
      PerturbTrace(sys, *golden_, li, state, Trit::kZero);
  const SymbolicCheck check = SymbolicSfrCheck(sys, *golden_, faulty);
  EXPECT_EQ(check.outcome, SymbolicCheck::Outcome::kDifferent);
  EXPECT_FALSE(check.detail.empty());
}

TEST_F(AnalysisOnDiffeq, SymbolicCheckEscalatesOnUnknownLines) {
  const synth::System& sys = design_->system;
  ControlTrace faulty = *golden_;
  faulty.lines[sys.cycles_per_pattern + 2][0] = Trit::kX;
  // Keep periodicity intact by applying the same X to patterns 1 and 2.
  faulty.lines[2 * sys.cycles_per_pattern + 2][0] = Trit::kX;
  const SymbolicCheck check = SymbolicSfrCheck(sys, *golden_, faulty);
  EXPECT_EQ(check.outcome, SymbolicCheck::Outcome::kInconclusive);
}

TEST_F(AnalysisOnDiffeq, SymbolicCheckEscalatesOnAperiodicTrace) {
  const synth::System& sys = design_->system;
  ControlTrace faulty = *golden_;
  const std::size_t row = 2 * sys.cycles_per_pattern + 1;  // pattern 2 only
  faulty.lines[row][0] =
      faulty.lines[row][0] == Trit::kOne ? Trit::kZero : Trit::kOne;
  const SymbolicCheck check = SymbolicSfrCheck(sys, *golden_, faulty);
  EXPECT_EQ(check.outcome, SymbolicCheck::Outcome::kInconclusive);
}

// --- gate-level decider -------------------------------------------------------

TEST_F(AnalysisOnDiffeq, GateCheckFindsDifferenceForStuckLoadLine) {
  const synth::System& sys = design_->system;
  std::uint32_t li = 0;
  while (sys.lines[li].kind != synth::ControlLineInfo::Kind::kLoad) ++li;
  const fault::StuckFault f{sys.line_nets[li], 0, Trit::kZero};
  GateCheckConfig cfg;
  cfg.max_exhaustive_bits = 8;  // force sampling mode for speed
  cfg.sample_patterns = 512;
  const GateCheck check = GateLevelSfrCheck(sys, f, cfg);
  EXPECT_TRUE(check.difference_found);
  EXPECT_FALSE(check.exhaustive);
}

TEST(GateCheck, ExhaustiveModeEnumeratesSmallInputSpaces) {
  const designs::BenchmarkDesign d = designs::BuildPoly(2);
  const synth::System& sys = d.system;
  std::uint32_t li = 0;
  while (sys.lines[li].kind != synth::ControlLineInfo::Kind::kLoad) ++li;
  const fault::StuckFault f{sys.line_nets[li], 0, Trit::kZero};
  const analysis::GateCheck check =
      GateLevelSfrCheck(sys, f, GateCheckConfig{});
  EXPECT_TRUE(check.exhaustive);
  EXPECT_TRUE(check.difference_found);
}

}  // namespace
}  // namespace pfd::analysis
