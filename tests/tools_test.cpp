// Tests for the supporting tools: dead-logic sweeping, VCD export,
// power-signature diagnosis, and the strict CLI flag parsers.
#include <gtest/gtest.h>

#include "base/parse.hpp"
#include "base/stats.hpp"
#include "core/diagnosis.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "designs/designs.hpp"
#include "logicsim/simulator.hpp"
#include "logicsim/vcd.hpp"
#include "netlist/opt.hpp"

namespace pfd {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

// --- strict flag parsing --------------------------------------------------------

// Regression for the atoi-era CLI: "--max-cycles -1" used to wrap into an
// 18-quintillion-cycle budget and "--deadline-ms banana" into 0 (unlimited).
// The strict parsers reject anything but a plain non-negative decimal.
TEST(ParseFlags, Uint64AcceptsPlainDecimals) {
  EXPECT_EQ(ParseUint64Flag("--seed", "0"), 0u);
  EXPECT_EQ(ParseUint64Flag("--seed", "42"), 42u);
  EXPECT_EQ(ParseUint64Flag("--seed", "007"), 7u);
  EXPECT_EQ(ParseUint64Flag("--seed", "18446744073709551615"), ~0ULL);
}

TEST(ParseFlags, Uint64RejectsSignsGarbageAndOverflow) {
  for (const char* bad : {"-1", "+1", "", " 1", "1 ", "1e3", "0x12", "12a",
                          "3.5", "18446744073709551616",  // 2^64
                          "99999999999999999999"}) {
    EXPECT_THROW(ParseUint64Flag("--max-cycles", bad), Error) << bad;
  }
  // The error message names the flag and echoes the offending text.
  try {
    ParseUint64Flag("--max-cycles", "-1");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--max-cycles"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-1"), std::string::npos);
  }
}

TEST(ParseFlags, Uint64InRangeEnforcesTheCeiling) {
  EXPECT_EQ(ParseUint64FlagInRange("--iters", "1000", 1000), 1000u);
  EXPECT_THROW(ParseUint64FlagInRange("--iters", "1001", 1000), Error);
}

TEST(ParseFlags, NonNegativeDoubleAcceptsPlainDecimals) {
  EXPECT_DOUBLE_EQ(ParseNonNegativeDoubleFlag("--deadline-ms", "0"), 0.0);
  EXPECT_DOUBLE_EQ(ParseNonNegativeDoubleFlag("--deadline-ms", "2.5"), 2.5);
  EXPECT_DOUBLE_EQ(ParseNonNegativeDoubleFlag("--deadline-ms", "10."), 10.0);
  EXPECT_DOUBLE_EQ(ParseNonNegativeDoubleFlag("--deadline-ms", ".5"), 0.5);
}

TEST(ParseFlags, NonNegativeDoubleRejectsSignsExponentsAndGarbage) {
  for (const char* bad : {"-1", "-0.5", "+1", "", ".", "1e3", "1.2.3", "inf",
                          "nan", "1,5", "1 "}) {
    EXPECT_THROW(ParseNonNegativeDoubleFlag("--deadline-ms", bad), Error)
        << bad;
  }
}

// --- dead-logic sweep ---------------------------------------------------------

TEST(Sweep, RemovesOnlyUnobservableLogic) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId b = nl.AddInput("b");
  const GateId live = nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath,
                                 {{a, b}}, "live");
  const GateId dead = nl.AddGate(GateKind::kOr, ModuleTag::kDatapath,
                                 {{a, b}}, "dead");
  const GateId dead2 = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath,
                                  {{dead}}, "dead2");
  (void)dead2;
  nl.AddOutput(live, "o");
  const netlist::SweepResult swept = netlist::SweepDeadLogic(nl);
  EXPECT_EQ(swept.removed, 2u);
  EXPECT_EQ(swept.netlist.size(), 3u);
  EXPECT_EQ(swept.remap[dead], netlist::kNoGate);
  EXPECT_NE(swept.remap[live], netlist::kNoGate);
  EXPECT_EQ(swept.netlist.outputs().size(), 1u);
}

TEST(Sweep, KeepsLiveDffLoops) {
  Netlist nl;
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{d}});
  nl.ConnectDff(d, n);
  nl.AddOutput(d, "o");
  const GateId dead = nl.AddDff(ModuleTag::kDatapath, "dead");
  nl.ConnectDff(dead, n);
  const netlist::SweepResult swept = netlist::SweepDeadLogic(nl);
  EXPECT_EQ(swept.removed, 1u);
  EXPECT_EQ(swept.remap[dead], netlist::kNoGate);
}

TEST(Sweep, PreservesSimulatedBehaviour) {
  // Sweep the diffeq system netlist; it should be a no-op structurally (no
  // dead logic) and, more importantly, behave identically.
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const netlist::SweepResult swept = netlist::SweepDeadLogic(d.system.nl);
  logicsim::Simulator before(d.system.nl);
  logicsim::Simulator after(swept.netlist);

  // Drive both with the same protocol for a few patterns; inputs keep their
  // identity under sweeping.
  const auto inputs = d.system.nl.InputIds();
  for (int p = 0; p < 4; ++p) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const Trit t = ((p * 37 + static_cast<int>(i) * 13) % 3) == 0
                         ? Trit::kOne
                         : Trit::kZero;
      before.SetInputAllLanes(inputs[i], t);
      after.SetInputAllLanes(swept.remap[inputs[i]], t);
    }
    for (int c = 0; c < d.system.cycles_per_pattern; ++c) {
      const Trit r = c == 0 ? Trit::kOne : Trit::kZero;
      before.SetInputAllLanes(d.system.reset, r);
      after.SetInputAllLanes(swept.remap[d.system.reset], r);
      before.Step();
      after.Step();
    }
    for (const netlist::OutputPort& po : d.system.nl.outputs()) {
      EXPECT_EQ(before.ValueLane(po.gate, 0),
                after.ValueLane(swept.remap[po.gate], 0));
    }
  }
}

TEST(Sweep, RemovesTheHomeOfCfrFaults) {
  // One-hot controllers carry dead preset logic whose faults are CFR; after
  // sweeping, those fault sites are gone and the CFR count drops to zero.
  const hls::Dfg dfg = designs::MakePolyDfg(4);
  const hls::HlsResult hr = hls::RunHls(dfg, designs::PolyConfig());
  synth::SynthOptions opts;
  opts.encoding = synth::StateEncoding::kOneHot;
  const synth::System sys =
      synth::BuildSystem("poly", hr.datapath, hr.control, hr.load_map, opts);
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = 200;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(sys, hr, cfg);
  const netlist::SweepResult swept = netlist::SweepDeadLogic(sys.nl);
  if (report.cfr > 0) {
    EXPECT_GT(swept.removed, 0u);
  }
  // A swept netlist has no unobservable gates left.
  const netlist::SweepResult again = netlist::SweepDeadLogic(swept.netlist);
  EXPECT_EQ(again.removed, 0u);
}

// --- VCD export -----------------------------------------------------------------

TEST(Vcd, RendersHeaderAndTransitions) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{a}});
  logicsim::Simulator sim(nl);
  logicsim::VcdWriter vcd(sim);
  vcd.AddSignal(a, "a");
  vcd.AddSignal(n, "n");

  sim.SetInputAllLanes(a, Trit::kZero);
  sim.Step();
  vcd.Sample();
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.Step();
  vcd.Sample();
  sim.Step();
  vcd.Sample();  // no change

  const std::string out = vcd.Render();
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! a"), std::string::npos);
  EXPECT_NE(out.find("#0\n"), std::string::npos);
  EXPECT_NE(out.find("#1\n"), std::string::npos);
  // Time 2 has no changes, so no #2 stamp before the closing stamp #3.
  EXPECT_EQ(out.find("#2\n"), std::string::npos);
  EXPECT_NE(out.find("0!"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);
}

TEST(Vcd, BusesPrintMsbFirstWithXes) {
  Netlist nl;
  const GateId b0 = nl.AddInput("b0");
  const GateId b1 = nl.AddInput("b1");
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  nl.ConnectDff(d, b0);
  logicsim::Simulator sim(nl);
  logicsim::VcdWriter vcd(sim);
  vcd.AddBus({b0, b1, d}, "bus");
  sim.SetInputAllLanes(b0, Trit::kOne);
  sim.SetInputAllLanes(b1, Trit::kZero);
  sim.Step();
  vcd.Sample();
  const std::string out = vcd.Render();
  // MSB (the X DFF) first: "x01".
  EXPECT_NE(out.find("bx01 !"), std::string::npos);
}

TEST(Vcd, RejectsLateSignalRegistration) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  logicsim::Simulator sim(nl);
  logicsim::VcdWriter vcd(sim);
  vcd.AddSignal(a, "a");
  sim.Step();
  vcd.Sample();
  EXPECT_THROW(vcd.AddSignal(a, "b"), Error);
}

// --- diagnosis ------------------------------------------------------------------

TEST(Diagnosis, ExactMeasurementPicksTheRightFault) {
  // A synthetic dictionary with well-separated signatures.
  core::PowerGradeReport dict;
  dict.fault_free_uw = 1000.0;
  std::vector<core::FaultRecord> records(3);
  dict.faults.resize(3);
  const double powers[3] = {1050.0, 1150.0, 1400.0};
  for (int i = 0; i < 3; ++i) {
    records[i].name = "f" + std::to_string(i);
    dict.faults[i].record = &records[i];
    dict.faults[i].power_uw = powers[i];
    dict.faults[i].percent_change =
        PercentChange(dict.fault_free_uw, powers[i]);
  }
  const core::DiagnosisResult dx =
      core::DiagnoseFromPower(dict, 1149.0, {0.01});
  ASSERT_FALSE(dx.ranked.empty());
  EXPECT_EQ(dx.best().fault, &dict.faults[1]);
  EXPECT_GT(dx.best().probability, 0.5);

  const core::DiagnosisResult clean =
      core::DiagnoseFromPower(dict, 1001.0, {0.01});
  EXPECT_EQ(clean.best().fault, nullptr);  // fault-free hypothesis
}

TEST(Diagnosis, ProbabilitiesFormADistribution) {
  core::PowerGradeReport dict;
  dict.fault_free_uw = 500.0;
  core::FaultRecord rec;
  dict.faults.push_back({&rec, 600.0, 20.0, true});
  const core::DiagnosisResult dx =
      core::DiagnoseFromPower(dict, 550.0, {0.05});
  double total = 0.0;
  for (const auto& c : dx.ranked) {
    EXPECT_GE(c.probability, 0.0);
    total += c.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Diagnosis, ResolutionImprovesWithLowerNoise) {
  const designs::BenchmarkDesign d = designs::BuildPoly(4);
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = 400;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);
  core::GradeConfig grade_cfg;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);
  ASSERT_FALSE(graded.faults.empty());
  const core::ResolutionReport quiet = core::EvaluateDiagnosisResolution(
      graded, {0.001}, 50, 3, 0xD1A6);
  const core::ResolutionReport noisy = core::EvaluateDiagnosisResolution(
      graded, {0.05}, 50, 3, 0xD1A6);
  EXPECT_GE(quiet.top1_accuracy, noisy.top1_accuracy);
  EXPECT_GE(quiet.topk_accuracy, quiet.top1_accuracy);
  EXPECT_GT(quiet.topk_accuracy, 0.3);
}

}  // namespace
}  // namespace pfd
