// Tests for the pfd::exec parallel execution core: thread resolution, the
// shard seeding scheme, ParallelFor semantics (coverage, exceptions, reuse,
// teardown under load), worker trace-buffer flushing, and the headline
// guarantee — pipeline results are bit-identical for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "designs/designs.hpp"
#include "exec/exec.hpp"
#include "obs/trace.hpp"

namespace pfd::exec {
namespace {

// Scoped override of the PFD_THREADS environment variable.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ResolveThreads, ExplicitCountWins) {
  ScopedEnv env("PFD_THREADS", "7");
  Options opt;
  opt.threads = 3;
  EXPECT_EQ(ResolveThreads(opt), 3);
}

TEST(ResolveThreads, EnvVariableUsedWhenAuto) {
  ScopedEnv env("PFD_THREADS", "5");
  EXPECT_EQ(ResolveThreads(Options{}), 5);
}

TEST(ResolveThreads, GarbageEnvFallsBackToHardware) {
  ScopedEnv env("PFD_THREADS", "zero");
  EXPECT_GE(ResolveThreads(Options{}), 1);
}

TEST(ResolveThreads, DefaultIsAtLeastOne) {
  ScopedEnv env("PFD_THREADS", nullptr);
  EXPECT_GE(ResolveThreads(Options{}), 1);
}

TEST(ShardSeed, StreamsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 1000; ++shard) {
    seeds.insert(ShardSeed(0xACE1, 0, shard));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across shard indices
  // Pure function of its inputs (this is what thread-invariance rests on).
  EXPECT_EQ(ShardSeed(1, 2, 3), ShardSeed(1, 2, 3));
  EXPECT_NE(ShardSeed(1, 2, 3), ShardSeed(1, 2, 4));
  EXPECT_NE(ShardSeed(1, 2, 3), ShardSeed(2, 2, 3));
  EXPECT_NE(ShardSeed(1, 2, 3), ShardSeed(1, 3, 3));
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  Options opt;
  opt.threads = 8;
  Pool pool(opt);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroAndSingleIndexEdges) {
  Options opt;
  opt.threads = 4;
  Pool pool(opt);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "body ran for n=0"; });
  int runs = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ParallelFor, SingleThreadPoolSpawnsNothingAndStillWorks) {
  Options opt;
  opt.threads = 1;
  Pool pool(opt);
  EXPECT_EQ(pool.threads(), 1);
  std::size_t sum = 0;
  pool.ParallelFor(100, [&](std::size_t i) { sum += i; });  // plain loop
  EXPECT_EQ(sum, 4950u);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolStaysUsable) {
  Options opt;
  opt.threads = 4;
  Pool pool(opt);
  EXPECT_THROW(
      pool.ParallelFor(256,
                       [&](std::size_t i) {
                         if (i == 97) throw std::runtime_error("body failed");
                       }),
      std::runtime_error);
  // The same pool must accept (and fully run) new work afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(256, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 256);
}

TEST(ParallelFor, ScopedHelperMatchesPool) {
  std::atomic<std::size_t> sum{0};
  Options opt;
  opt.threads = 4;
  ParallelFor(opt, 1000, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 499500u);
}

TEST(Pool, TeardownUnderRepeatedLoad) {
  // Construct/use/destroy in a tight loop: shakes out worker-join races.
  for (int round = 0; round < 50; ++round) {
    Options opt;
    opt.threads = 8;
    Pool pool(opt);
    std::atomic<int> count{0};
    pool.ParallelFor(200, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 200) << "round " << round;
  }
}

TEST(Pool, WorkerSpansFlushBeforeDestructorReturns) {
  obs::Registry& reg = obs::Registry::Global();
  auto trace = std::make_unique<obs::Trace>();
  reg.InstallTrace(trace.get());
  reg.set_enabled(true);
  constexpr std::size_t kN = 300;
  {
    Options opt;
    opt.threads = 4;
    Pool pool(opt);
    pool.ParallelFor(kN, [&](std::size_t) { obs::Span span("exec.body"); });
  }  // pool shutdown joins workers, flushing their thread-local buffers
  reg.InstallTrace(nullptr);
  reg.set_enabled(false);
  std::size_t bodies = 0;
  for (const obs::Trace::Event& e : trace->Events()) {
    if (e.name == "exec.body") ++bodies;
  }
  EXPECT_EQ(bodies, kN);
}

// The tentpole guarantee: the full classification pipeline produces a
// byte-identical report for every thread count.
TEST(Determinism, ClassificationIsThreadCountInvariant) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  auto classify_csv = [&](int threads) {
    core::PipelineConfig cfg;
    cfg.tpgr_patterns = 200;
    cfg.exec.threads = threads;
    return core::ClassificationCsv(
        core::ClassifyControllerFaults(d.system, d.hls, cfg));
  };
  const std::string t1 = classify_csv(1);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(classify_csv(2), t1);
  EXPECT_EQ(classify_csv(8), t1);
}

}  // namespace
}  // namespace pfd::exec
