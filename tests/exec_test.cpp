// Tests for the pfd::exec parallel execution core: thread resolution, the
// shard seeding scheme, ParallelFor semantics (coverage, exceptions, reuse,
// teardown under load), worker trace-buffer flushing, and the headline
// guarantee — pipeline results are bit-identical for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "designs/designs.hpp"
#include "exec/exec.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace pfd::exec {
namespace {

// Scoped override of the PFD_THREADS environment variable.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ResolveThreads, ExplicitCountWins) {
  ScopedEnv env("PFD_THREADS", "7");
  Options opt;
  opt.threads = 3;
  EXPECT_EQ(ResolveThreads(opt), 3);
}

TEST(ResolveThreads, EnvVariableUsedWhenAuto) {
  ScopedEnv env("PFD_THREADS", "5");
  EXPECT_EQ(ResolveThreads(Options{}), 5);
}

// A malformed PFD_THREADS is a configuration error, not a silent fallback:
// the wrong thread count would make a benchmark lie about its own setup.
TEST(ResolveThreads, GarbageEnvIsRejected) {
  for (const char* bad : {"zero", "", "4x", "-2", "0", "1e3",
                          "99999999999999999999", "5000"}) {
    ScopedEnv env("PFD_THREADS", bad);
    EXPECT_THROW(ResolveThreads(Options{}), pfd::Error) << "'" << bad << "'";
  }
}

TEST(ResolveThreads, ValidEnvBoundsAccepted) {
  {
    ScopedEnv env("PFD_THREADS", "1");
    EXPECT_EQ(ResolveThreads(Options{}), 1);
  }
  {
    ScopedEnv env("PFD_THREADS", "4096");  // kMaxThreads
    EXPECT_EQ(ResolveThreads(Options{}), kMaxThreads);
  }
}

// An explicit Options::threads wins without even parsing the variable, so a
// broken environment cannot poison a caller who chose their count.
TEST(ResolveThreads, ExplicitCountSkipsBrokenEnv) {
  ScopedEnv env("PFD_THREADS", "garbage");
  Options opt;
  opt.threads = 2;
  EXPECT_EQ(ResolveThreads(opt), 2);
}

TEST(ResolveThreads, DefaultIsAtLeastOne) {
  ScopedEnv env("PFD_THREADS", nullptr);
  EXPECT_GE(ResolveThreads(Options{}), 1);
}

TEST(ShardSeed, StreamsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 1000; ++shard) {
    seeds.insert(ShardSeed(0xACE1, 0, shard));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across shard indices
  // Pure function of its inputs (this is what thread-invariance rests on).
  EXPECT_EQ(ShardSeed(1, 2, 3), ShardSeed(1, 2, 3));
  EXPECT_NE(ShardSeed(1, 2, 3), ShardSeed(1, 2, 4));
  EXPECT_NE(ShardSeed(1, 2, 3), ShardSeed(2, 2, 3));
  EXPECT_NE(ShardSeed(1, 2, 3), ShardSeed(1, 3, 3));
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  Options opt;
  opt.threads = 8;
  Pool pool(opt);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroAndSingleIndexEdges) {
  Options opt;
  opt.threads = 4;
  Pool pool(opt);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "body ran for n=0"; });
  int runs = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ParallelFor, SingleThreadPoolSpawnsNothingAndStillWorks) {
  Options opt;
  opt.threads = 1;
  Pool pool(opt);
  EXPECT_EQ(pool.threads(), 1);
  std::size_t sum = 0;
  pool.ParallelFor(100, [&](std::size_t i) { sum += i; });  // plain loop
  EXPECT_EQ(sum, 4950u);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolStaysUsable) {
  Options opt;
  opt.threads = 4;
  Pool pool(opt);
  EXPECT_THROW(
      pool.ParallelFor(256,
                       [&](std::size_t i) {
                         if (i == 97) throw std::runtime_error("body failed");
                       }),
      std::runtime_error);
  // The same pool must accept (and fully run) new work afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(256, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 256);
}

// Satellite (c) of the guard issue: when several units throw simultaneously,
// exactly one exception propagates, and which one is deterministic — the
// lowest throwing unit index — for every thread count and steal order.
TEST(ParallelFor, SimultaneousFailuresPropagateLowestIndexDeterministically) {
  for (const int threads : {1, 2, 8}) {
    Options opt;
    opt.threads = threads;
    Pool pool(opt);
    for (int round = 0; round < 3; ++round) {
      std::string caught;
      try {
        pool.ParallelFor(512, [&](std::size_t i) {
          if (i % 37 == 5) {  // 14 throwing units: 5, 42, 79, ...
            throw std::runtime_error("unit " + std::to_string(i));
          }
        });
        FAIL() << "no exception propagated (threads=" << threads << ")";
      } catch (const std::runtime_error& e) {
        caught = e.what();
      }
      EXPECT_EQ(caught, "unit 5")
          << "threads=" << threads << " round=" << round;
    }
  }
}

// Same-pool re-entry from a loop body would deadlock the join; it must be
// rejected loudly instead. (A nested loop on a *different* pool is fine.)
TEST(ParallelFor, ReentryFromBodyIsRejected) {
  Options opt;
  opt.threads = 2;
  Pool pool(opt);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](std::size_t) {
                                  pool.ParallelFor(1, [](std::size_t) {});
                                }),
               pfd::Error);
  // The pool survives the rejected call.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 8);

  // Nesting onto a *different* pool is allowed. One top-level call per pool
  // at a time (Pool is not a concurrent entry point), hence the mutex.
  Pool other(opt);
  std::mutex nest_mu;
  std::atomic<int> nested{0};
  pool.ParallelFor(2, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(nest_mu);
    other.ParallelFor(2, [&](std::size_t) {
      nested.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(nested.load(), 4);
}

TEST(ParallelFor, ScopedHelperMatchesPool) {
  std::atomic<std::size_t> sum{0};
  Options opt;
  opt.threads = 4;
  ParallelFor(opt, 1000, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 499500u);
}

TEST(Pool, TeardownUnderRepeatedLoad) {
  // Construct/use/destroy in a tight loop: shakes out worker-join races.
  for (int round = 0; round < 50; ++round) {
    Options opt;
    opt.threads = 8;
    Pool pool(opt);
    std::atomic<int> count{0};
    pool.ParallelFor(200, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 200) << "round " << round;
  }
}

TEST(Pool, WorkerSpansFlushBeforeDestructorReturns) {
  obs::Registry& reg = obs::Registry::Global();
  auto trace = std::make_unique<obs::Trace>();
  reg.InstallTrace(trace.get());
  reg.set_enabled(true);
  constexpr std::size_t kN = 300;
  {
    Options opt;
    opt.threads = 4;
    Pool pool(opt);
    pool.ParallelFor(kN, [&](std::size_t) { obs::Span span("exec.body"); });
  }  // pool shutdown joins workers, flushing their thread-local buffers
  reg.InstallTrace(nullptr);
  reg.set_enabled(false);
  std::size_t bodies = 0;
  for (const obs::Trace::Event& e : trace->Events()) {
    if (e.name == "exec.body") ++bodies;
  }
  EXPECT_EQ(bodies, kN);
}

// The tentpole guarantee: the full classification pipeline produces a
// byte-identical report for every thread count.
TEST(Determinism, ClassificationIsThreadCountInvariant) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  auto classify_csv = [&](int threads) {
    core::PipelineConfig cfg;
    cfg.tpgr_patterns = 200;
    cfg.exec.threads = threads;
    return core::ClassificationCsv(
        core::ClassifyControllerFaults(d.system, d.hls, cfg));
  };
  const std::string t1 = classify_csv(1);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(classify_csv(2), t1);
  EXPECT_EQ(classify_csv(8), t1);
}

// RAII enable/restore of the global registry (the gauge accounting below is
// gated on obs::Enabled()).
class ScopedRegistryEnable {
 public:
  ScopedRegistryEnable() : was_(obs::Registry::Global().enabled()) {
    obs::Registry::Global().set_enabled(true);
  }
  ~ScopedRegistryEnable() { obs::Registry::Global().set_enabled(was_); }

 private:
  bool was_;
};

// Regression for the queue-depth accounting bug: two pools publishing jobs
// concurrently used last-writer-wins Set(), so one job's contribution
// clobbered the other's. With Add accounting the mid-run depth is the SUM
// of both jobs' unclaimed chunks — strictly more than either job alone
// could report — and the gauge returns to baseline once both jobs drain.
TEST(PoolObsGauge, QueueDepthComposesAcrossConcurrentJobs) {
  ScopedRegistryEnable enable;
  obs::Gauge& depth = obs::Registry::Global().GetGauge("exec.queue_depth");
  const double baseline = depth.value();

  Options o;
  o.threads = 2;  // 2 executors per pool: 1 worker + the submitting thread
  o.max_chunk_units = 1;  // 1 unit per chunk: 8 chunks per job
  Pool pool_a(o), pool_b(o);

  // All 4 executors block in their first body until released, pinning
  // 16 - 4 = 12 chunks unclaimed across the two jobs. A Set()-based gauge
  // can never exceed one job's 8.
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  const auto body = [&](std::size_t) {
    arrived.fetch_add(1, std::memory_order_relaxed);
    while (!release.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
  };
  std::thread ta([&]() { pool_a.ParallelFor(8, body); });
  std::thread tb([&]() { pool_b.ParallelFor(8, body); });
  while (arrived.load(std::memory_order_relaxed) < 4) {
    std::this_thread::yield();
  }
  const double mid_run = depth.value();
  release.store(true, std::memory_order_relaxed);
  ta.join();
  tb.join();

  EXPECT_GE(mid_run, baseline + 9.0)
      << "concurrent jobs' unclaimed chunks must sum, not clobber";
  EXPECT_DOUBLE_EQ(depth.value(), baseline)
      << "every published chunk must be claimed back down";
}

// The concurrency contract pinned by this PR: ParallelFor/ParallelForGuarded
// from two external threads on ONE shared pool serialize through the job
// gate — both complete, with every index run exactly once. The tsan CI job
// runs this test; a gate regression shows up as a data race on the pool's
// single-job state.
TEST(PoolConcurrency, ConcurrentExternalCallersBothComplete) {
  Options o;
  o.threads = 4;
  o.max_chunk_units = 1;
  Pool pool(o);

  constexpr int kRounds = 50;
  constexpr std::size_t kN = 24;
  std::vector<int> a(kN, 0), b(kN, 0);  // disjoint per caller
  std::thread t1([&]() {
    for (int r = 0; r < kRounds; ++r) {
      pool.ParallelFor(kN, [&](std::size_t i) { a[i] += 1; });
    }
  });
  std::thread t2([&]() {
    for (int r = 0; r < kRounds; ++r) {
      const guard::RunStatus status =
          pool.ParallelForGuarded(kN, [&](std::size_t i) { b[i] += 1; });
      ASSERT_TRUE(status.ok());
    }
  });
  t1.join();
  t2.join();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(a[i], kRounds);
    EXPECT_EQ(b[i], kRounds);
  }
}

// Worker-side counter updates are attributed to the scope installed on the
// thread that SUBMITTED the job, and two submitters' scopes never bleed
// into each other — the isolation a served RunReport depends on.
TEST(PoolConcurrency, MetricScopePropagatesToWorkersPerJob) {
  Options o;
  o.threads = 2;
  o.max_chunk_units = 1;
  Pool pool_a(o), pool_b(o);
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("exec_test.scope_probe");
  const std::uint64_t global_before = counter.value();

  obs::MetricScope scope_a, scope_b;
  std::thread t1([&]() {
    obs::ScopedMetricScope install(&scope_a);
    pool_a.ParallelFor(64, [&](std::size_t) { counter.Add(1); });
  });
  std::thread t2([&]() {
    obs::ScopedMetricScope install(&scope_b);
    pool_b.ParallelFor(32, [&](std::size_t) { counter.Add(2); });
  });
  t1.join();
  t2.join();

  EXPECT_EQ(scope_a.CounterValue("exec_test.scope_probe"), 64u);
  EXPECT_EQ(scope_b.CounterValue("exec_test.scope_probe"), 64u);
  EXPECT_EQ(counter.value() - global_before, 128u);
}

}  // namespace
}  // namespace pfd::exec
