// Tests for pfd::xcheck: the naive reference oracle, the scenario
// generator, the differential driver, greedy shrinking, and the
// mutation-testing proof that the harness catches planted kernel bugs.
#include <gtest/gtest.h>

#include <string>

#include "guard/guard.hpp"
#include "logicsim/simulator.hpp"
#include "obs/obs.hpp"
#include "xcheck/gen.hpp"
#include "xcheck/ref_sim.hpp"
#include "xcheck/xcheck.hpp"

namespace pfd::xcheck {
namespace {

using netlist::GateKind;

// Restores failpoint state even when an assertion bails out of a test.
struct FailpointGuard {
  ~FailpointGuard() {
    guard::ClearFailpoints();
    guard::ArmFailpointsFromEnv();
  }
};

XcheckConfig SmokeConfig() {
  XcheckConfig cfg;
  cfg.seed = 0xC0FFEE;
  cfg.iters = 150;
  return cfg;
}

// --- reference simulator sanity ------------------------------------------

TEST(RefSimulator, DffPowersUpXThenTracksD) {
  netlist::Netlist nl;
  const auto in = nl.AddInput("in");
  const auto d = nl.AddDff(netlist::ModuleTag::kController);
  nl.ConnectDff(d, in);
  const auto q = nl.AddGate(GateKind::kNot, netlist::ModuleTag::kDatapath,
                            std::vector<netlist::GateId>{d});
  nl.AddOutput(q, "q");
  nl.Validate();

  RefSimulator ref(nl);
  ref.SetInput(in, Trit::kOne);
  ref.Step();
  EXPECT_EQ(ref.Value(d), Trit::kX);  // power-up X survives the first cycle
  EXPECT_EQ(ref.Value(q), Trit::kX);
  EXPECT_FALSE(ref.last_step_two_valued());
  ref.Step();
  EXPECT_EQ(ref.Value(d), Trit::kOne);  // captured D committed at the edge
  EXPECT_EQ(ref.Value(q), Trit::kZero);
  EXPECT_TRUE(ref.last_step_two_valued());
}

TEST(RefSimulator, ForceSemanticsMatchProductionRules) {
  netlist::Netlist nl;
  const auto in = nl.AddInput("in");
  const auto buf = nl.AddGate(GateKind::kBuf, netlist::ModuleTag::kDatapath,
                              std::vector<netlist::GateId>{in});
  nl.AddOutput(buf, "o");
  RefSimulator ref(nl);
  ref.SetInput(in, Trit::kX);
  // sa0 wins where both polarities are registered, and forcing adds
  // known-ness — both mirrored from Simulator::ApplyForce.
  ref.ForceOutput(buf, Trit::kOne);
  ref.ForceOutput(buf, Trit::kZero);
  ref.Step();
  EXPECT_EQ(ref.Value(buf), Trit::kZero);
  // Releasing an *output* force on an input leaves the stored value behind;
  // on a combinational gate the next settle recomputes it.
  ref.ClearForces();
  ref.Step();
  EXPECT_EQ(ref.Value(buf), Trit::kX);
}

// --- generator -----------------------------------------------------------

TEST(Generator, ProducesValidNetlistsAcrossSeeds) {
  const GenConfig gen;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(CaseSeed(0xABCD, static_cast<std::uint32_t>(seed)));
    const Scenario s = GenerateScenario(rng, gen);
    ASSERT_GE(s.nodes.size(), gen.min_gates);
    ASSERT_LE(s.nodes.size(), gen.max_gates);
    ASSERT_EQ(s.nodes[0].kind, GateKind::kInput);
    ASSERT_GE(s.cycles.size(), gen.min_cycles);
    netlist::Netlist nl = BuildNetlist(s);
    ASSERT_NO_THROW(nl.Validate()) << "seed " << seed;
  }
}

TEST(Generator, DeterministicInSeed) {
  const GenConfig gen;
  Rng a(42), b(42);
  EXPECT_EQ(ScenarioToCpp(GenerateScenario(a, gen)),
            ScenarioToCpp(GenerateScenario(b, gen)));
}

TEST(Generator, NeverForcesConstantGates) {
  const GenConfig gen;
  for (std::uint32_t i = 0; i < 200; ++i) {
    Rng rng(CaseSeed(7, i));
    const Scenario s = GenerateScenario(rng, gen);
    for (const CycleSpec& cy : s.cycles) {
      for (const ForceOp& f : cy.forces) {
        if (f.kind == ForceOp::kClear) continue;
        const GateKind k = s.nodes[f.node].kind;
        EXPECT_NE(k, GateKind::kConst0);
        EXPECT_NE(k, GateKind::kConst1);
      }
    }
  }
}

// --- differential sweep --------------------------------------------------

TEST(Xcheck, CleanSweepHasZeroMiscompares) {
  obs::Registry& reg = obs::Registry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t runs_before = reg.CounterValue("xcheck.runs");

  const XcheckConfig cfg = SmokeConfig();
  const XcheckResult r = RunXcheck(cfg);
  EXPECT_EQ(r.cases_run, cfg.iters);
  EXPECT_EQ(r.miscompares, 0u)
      << "case index " << r.failing_case_index << " (seed "
      << r.failing_case_seed << "): " << r.failure_detail << "\n"
      << r.repro_cpp;
  EXPECT_EQ(reg.CounterValue("xcheck.runs") - runs_before, cfg.iters);
  reg.set_enabled(was_enabled);
}

TEST(Xcheck, HandwrittenScenarioPasses) {
  Scenario s;
  s.nodes = {
      {GateKind::kInput, {}},
      {GateKind::kDff, {3}},  // feedback through the XOR below
      {GateKind::kNot, {1}},
      {GateKind::kXor, {0, 2}},
  };
  for (int c = 0; c < 6; ++c) {
    CycleSpec cy;
    cy.unit_delay = c >= 3;
    cy.inputs = {{0, c % 2 == 0 ? Trit::kOne : Trit::kZero}};
    s.cycles.push_back(cy);
  }
  const CaseResult r = RunScenario(s);
  EXPECT_TRUE(r.ok) << r.detail;
}

// --- mutation testing ----------------------------------------------------

TEST(Xcheck, MutationModeCatchesEveryPlantedKernelBug) {
  FailpointGuard restore;
  const MutationResult mr = RunMutationCheck(SmokeConfig());
  ASSERT_EQ(mr.mutations.size(),
            std::size(logicsim::kKernelMutationFailpoints));
  for (const auto& pm : mr.mutations) {
    EXPECT_TRUE(pm.detected)
        << pm.name << " survived " << pm.cases_to_detect << " cases";
  }
  EXPECT_TRUE(mr.all_detected);
}

TEST(Xcheck, ShrinkerReducesPlantedMiscompareToTinyRepro) {
  FailpointGuard restore;
  guard::ClearFailpoints();
  guard::ArmFailpoint("xcheck.mutate.toggle_undercount", "flag");

  XcheckConfig cfg = SmokeConfig();
  cfg.shrink = true;
  const XcheckResult r = RunXcheck(cfg);
  ASSERT_EQ(r.miscompares, 1u) << "planted bug not detected";
  EXPECT_LE(r.repro.nodes.size(), 8u) << r.repro_cpp;
  EXPECT_LE(r.repro.cycles.size(), 4u) << r.repro_cpp;
  EXPECT_GT(r.shrink_steps, 0u);
  // The shrunk scenario still reproduces the planted miscompare...
  EXPECT_FALSE(RunScenario(r.repro).ok);
  // ...and the emitted repro is a pasteable test body.
  EXPECT_NE(r.repro_cpp.find("pfd::xcheck::RunScenario"), std::string::npos);
  EXPECT_NE(r.repro_cpp.find("s.nodes"), std::string::npos);

  // With the mutation disarmed the repro passes: the divergence was the
  // planted bug, not a harness artefact.
  guard::ClearFailpoints();
  const CaseResult clean = RunScenario(r.repro);
  EXPECT_TRUE(clean.ok) << clean.detail;
}

TEST(Xcheck, CaseSeedIsStableAndSpreads) {
  EXPECT_EQ(CaseSeed(1, 0), CaseSeed(1, 0));
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(1, 1));
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(2, 0));
}

}  // namespace
}  // namespace pfd::xcheck
