// Minimal JSON reader shared by tests that validate emitted JSON (trace
// files, metrics snapshots, run reports, flight-recorder JSONL). Kept
// deliberately small: objects, arrays, strings with the common escapes,
// numbers via std::stod, true/false/null. Parse() returns false instead of
// asserting so tests can EXPECT on well-formedness.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pfd::testutil {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  const JsonObject& obj() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& arr() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  // Returns false (instead of asserting) on malformed input so tests can
  // EXPECT on well-formedness.
  bool Parse(JsonValue& out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string& out) {
    if (!Eat('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return false;
            }
            out += static_cast<char>(code);  // BMP only; enough for tests
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return Eat('"');
  }
  bool ParseValue(JsonValue& out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      auto obj = std::make_shared<JsonObject>();
      SkipWs();
      if (Eat('}')) {
        out.v = obj;
        return true;
      }
      for (;;) {
        std::string key;
        JsonValue val;
        if (!ParseString(key) || !Eat(':') || !ParseValue(val)) return false;
        (*obj)[key] = val;
        if (Eat(',')) continue;
        if (Eat('}')) break;
        return false;
      }
      out.v = obj;
      return true;
    }
    if (c == '[') {
      ++pos_;
      auto arr = std::make_shared<JsonArray>();
      SkipWs();
      if (Eat(']')) {
        out.v = arr;
        return true;
      }
      for (;;) {
        JsonValue val;
        if (!ParseValue(val)) return false;
        arr->push_back(val);
        if (Eat(',')) continue;
        if (Eat(']')) break;
        return false;
      }
      out.v = arr;
      return true;
    }
    if (c == '"') {
      std::string str;
      if (!ParseString(str)) return false;
      out.v = str;
      return true;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.v = true;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.v = false;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.v = nullptr;
      return true;
    }
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out.v = std::stod(std::string(s_.substr(pos_, end - pos_)));
    pos_ = end;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace pfd::testutil
