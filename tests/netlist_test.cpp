// Unit tests for the netlist graph: construction, validation, topological
// ordering, fanout accounting and exports.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/error.hpp"
#include "netlist/netlist.hpp"

namespace pfd::netlist {
namespace {

TEST(Netlist, ArityIsEnforced) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId b = nl.AddInput("b");
  EXPECT_THROW(nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {}), Error);
  EXPECT_THROW(nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{a}}), Error);
  EXPECT_THROW(nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{a, b, a}}),
               Error);
  EXPECT_THROW(nl.AddGate(GateKind::kMux2, ModuleTag::kDatapath, {{a, b}}),
               Error);
  // Variadic AND accepts any arity >= 2.
  EXPECT_NO_THROW(nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath,
                             {{a, b, a, b}}));
}

TEST(Netlist, FaninMustExist) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  EXPECT_THROW(
      nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{a + 100}}), Error);
}

TEST(Netlist, UnconnectedDffFailsValidation) {
  Netlist nl;
  nl.AddDff(ModuleTag::kDatapath, "r");
  EXPECT_THROW(nl.Validate(), Error);
}

TEST(Netlist, DffFeedbackLoopIsLegal) {
  Netlist nl;
  const GateId d = nl.AddDff(ModuleTag::kDatapath, "r");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{d}});
  nl.ConnectDff(d, n);  // toggle flip-flop
  EXPECT_NO_THROW(nl.Validate());
}

TEST(Netlist, CombinationalCycleIsRejected) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  // Build a cycle through two gates by abusing AddDff-then-Connect on a
  // combinational gate is impossible via the API; instead check that the
  // honest construction (DFF in the loop) is the only way to close a loop.
  const GateId g1 = nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  (void)g1;
  SUCCEED();  // the API makes combinational cycles unrepresentable
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId b = nl.AddInput("b");
  const GateId x = nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{a, b}});
  const GateId y = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{x}});
  const GateId z = nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{x, y}});
  const auto& order = nl.CombinationalOrder();
  auto pos = [&](GateId g) {
    return std::find(order.begin(), order.end(), g) - order.begin();
  };
  EXPECT_LT(pos(x), pos(y));
  EXPECT_LT(pos(y), pos(z));
  EXPECT_EQ(order.size(), 3u);  // inputs are not in the combinational order
}

TEST(Netlist, FanoutCountsCountPinReads) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  nl.AddGate(GateKind::kAnd, ModuleTag::kDatapath, {{a, a}});
  nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{a}});
  const auto counts = nl.FanoutCounts();
  EXPECT_EQ(counts[a], 3u);  // both AND pins + the NOT pin
}

TEST(Netlist, StatsAndModuleQueries) {
  Netlist nl;
  const GateId a = nl.AddInput("a", ModuleTag::kInterface);
  const GateId d = nl.AddDff(ModuleTag::kController, "st0");
  const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kController, {{d}});
  nl.ConnectDff(d, n);
  nl.AddGate(GateKind::kBuf, ModuleTag::kDatapath, {{a}});
  const NetlistStats s = nl.Stats();
  EXPECT_EQ(s.gates, 4u);
  EXPECT_EQ(s.inputs, 1u);
  EXPECT_EQ(s.dffs, 1u);
  EXPECT_EQ(s.controller_gates, 2u);
  EXPECT_EQ(s.datapath_gates, 1u);
  EXPECT_EQ(nl.GatesInModule(ModuleTag::kController).size(), 2u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(Netlist, OutputsAndDotExport) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{a}});
  nl.AddOutput(g, "out");
  ASSERT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.outputs()[0].gate, g);
  const std::string dot = nl.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("po_out"), std::string::npos);
}

TEST(Netlist, ConstGatesHaveNoFanin) {
  Netlist nl;
  const GateId c0 = nl.AddGate(GateKind::kConst0, ModuleTag::kDatapath, {});
  const GateId c1 = nl.AddGate(GateKind::kConst1, ModuleTag::kDatapath, {});
  EXPECT_TRUE(nl.Fanins(c0).empty());
  EXPECT_TRUE(nl.Fanins(c1).empty());
  EXPECT_NO_THROW(nl.Validate());
}

TEST(Netlist, ExpectedArityTable) {
  EXPECT_EQ(ExpectedArity(GateKind::kInput), 0);
  EXPECT_EQ(ExpectedArity(GateKind::kNot), 1);
  EXPECT_EQ(ExpectedArity(GateKind::kXor), 2);
  EXPECT_EQ(ExpectedArity(GateKind::kMux2), 3);
  EXPECT_EQ(ExpectedArity(GateKind::kAnd), -1);
  EXPECT_EQ(ExpectedArity(GateKind::kDff), 1);
}

TEST(Netlist, GateKindNamesAreStable) {
  EXPECT_STREQ(GateKindName(GateKind::kNand), "NAND");
  EXPECT_STREQ(GateKindName(GateKind::kDff), "DFF");
  EXPECT_STREQ(ModuleTagName(ModuleTag::kController), "controller");
}

}  // namespace
}  // namespace pfd::netlist
