// Tests for the stuck-at fault model, equivalence collapsing, and the three
// fault-simulation engines — including the central cross-engine property:
// the 64-lane parallel-fault simulator and the golden-diffed differential
// engine must report exactly the same detections as the straightforward
// serial engine, on random sequential circuits.
#include <gtest/gtest.h>

#include <span>

#include "base/rng.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "logicsim/compiled.hpp"
#include "logicsim/golden_cache.hpp"
#include "logicsim/simulator.hpp"

namespace pfd::fault {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

// --- random sequential circuit generator -----------------------------------

struct RandomCircuit {
  Netlist nl;
  std::vector<GateId> inputs;
  std::vector<GateId> outputs;
};

RandomCircuit MakeRandomCircuit(std::uint64_t seed, int num_inputs,
                                int num_gates, int num_dffs) {
  Rng rng(seed);
  RandomCircuit rc;
  std::vector<GateId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    const GateId g = rc.nl.AddInput("in" + std::to_string(i),
                                    ModuleTag::kController);
    rc.inputs.push_back(g);
    pool.push_back(g);
  }
  // DFFs first so combinational gates can read them (feedback closes later).
  std::vector<GateId> dffs;
  for (int i = 0; i < num_dffs; ++i) {
    const GateId d = rc.nl.AddDff(ModuleTag::kController,
                                  "r" + std::to_string(i));
    dffs.push_back(d);
    pool.push_back(d);
  }
  const GateKind kinds[] = {GateKind::kAnd,  GateKind::kOr,  GateKind::kNand,
                            GateKind::kNor,  GateKind::kXor, GateKind::kXnor,
                            GateKind::kNot,  GateKind::kBuf, GateKind::kMux2};
  for (int i = 0; i < num_gates; ++i) {
    const GateKind kind = kinds[rng.Below(std::size(kinds))];
    const int arity = netlist::ExpectedArity(kind) < 0
                          ? 2 + static_cast<int>(rng.Below(2))
                          : netlist::ExpectedArity(kind);
    std::vector<GateId> fanins;
    for (int a = 0; a < arity; ++a) {
      fanins.push_back(pool[rng.Below(pool.size())]);
    }
    pool.push_back(rc.nl.AddGate(kind, ModuleTag::kController, fanins,
                                 "g" + std::to_string(i)));
  }
  for (GateId d : dffs) {
    rc.nl.ConnectDff(d, pool[rng.Below(pool.size())]);
  }
  // Observe a handful of random nets.
  for (int i = 0; i < 4; ++i) {
    const GateId g = pool[pool.size() - 1 - rng.Below(pool.size() / 2)];
    rc.outputs.push_back(g);
    rc.nl.AddOutput(g, "out" + std::to_string(i));
  }
  rc.nl.Validate();
  return rc;
}

TestPlan PlanFor(const RandomCircuit& rc, int cycles = 4) {
  TestPlan plan;
  for (GateId in : rc.inputs) {
    plan.operand_bits.push_back({in});
  }
  plan.cycles_per_pattern = cycles;
  for (int c = 0; c < cycles; ++c) plan.strobe_cycles.push_back(c);
  plan.observe = rc.outputs;
  return plan;
}

// Convenience wrappers over the request API for the tests below.
FaultSimResult ParSim(const Netlist& nl, const TestPlan& plan,
                      std::span<const StuckFault> faults, std::uint32_t seed,
                      int patterns, int threads = 0) {
  FaultSimRequest req{nl, {plan, seed, patterns}, faults,
                      FaultSimEngine::kParallel};
  req.exec.threads = threads;
  return RunFaultSim(req);
}

FaultSimResult SerSim(const Netlist& nl, const TestPlan& plan,
                      std::span<const StuckFault> faults, std::uint32_t seed,
                      int patterns) {
  return RunFaultSim(
      {nl, {plan, seed, patterns}, faults, FaultSimEngine::kSerial});
}

FaultSimResult DiffSim(const Netlist& nl, const TestPlan& plan,
                       std::span<const StuckFault> faults, std::uint32_t seed,
                       int patterns, int threads = 0) {
  FaultSimRequest req{nl, {plan, seed, patterns}, faults,
                      FaultSimEngine::kDifferential};
  req.exec.threads = threads;
  return RunFaultSim(req);
}

void ExpectSameVerdicts(const Netlist& nl, std::span<const StuckFault> faults,
                        const FaultSimResult& got, const FaultSimResult& want,
                        const char* label) {
  ASSERT_EQ(got.status.size(), want.status.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(got.status[i], want.status[i])
        << label << ": " << FaultName(nl, faults[i]);
    EXPECT_EQ(got.first_detect_pattern[i], want.first_detect_pattern[i])
        << label << ": " << FaultName(nl, faults[i]);
  }
}

// --- fault list generation ---------------------------------------------------

TEST(FaultList, CountsMatchStructure) {
  Netlist nl;
  const GateId a = nl.AddInput("a", ModuleTag::kController);
  const GateId b = nl.AddInput("b", ModuleTag::kController);
  nl.AddGate(GateKind::kAnd, ModuleTag::kController, {{a, b}});
  // AND gate: out + 2 pins, x2 polarities = 6; inputs skipped by default.
  EXPECT_EQ(GenerateFaults(nl, ModuleTag::kController).size(), 6u);
  EXPECT_EQ(GenerateFaults(nl, ModuleTag::kController, false).size(), 10u);
}

TEST(FaultList, ModuleFilterIsRespected) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  nl.AddGate(GateKind::kNot, ModuleTag::kController, {{a}});
  nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{a}});
  const auto ctrl = GenerateFaults(nl, ModuleTag::kController);
  for (const StuckFault& f : ctrl) {
    EXPECT_EQ(nl.gate(f.gate).module, ModuleTag::kController);
  }
  EXPECT_EQ(ctrl.size(), 4u);
}

TEST(FaultList, ConstCellsGetOppositeFaultOnly) {
  Netlist nl;
  nl.AddGate(GateKind::kConst0, ModuleTag::kController, {});
  nl.AddGate(GateKind::kConst1, ModuleTag::kController, {});
  const auto faults = GenerateFaults(nl, ModuleTag::kController);
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].value, Trit::kOne);
  EXPECT_EQ(faults[1].value, Trit::kZero);
}

TEST(FaultName, DescribesSiteAndPolarity) {
  Netlist nl;
  const GateId a = nl.AddInput("a", ModuleTag::kController);
  const GateId g =
      nl.AddGate(GateKind::kAnd, ModuleTag::kController, {{a, a}}, "myand");
  EXPECT_EQ(FaultName(nl, {g, 0, Trit::kZero}), "myand/AND.out/SA0");
  EXPECT_EQ(FaultName(nl, {g, 2, Trit::kOne}), "myand/AND.in1/SA1");
}

// --- collapsing ---------------------------------------------------------------

TEST(Collapse, AndGateRules) {
  Netlist nl;
  const GateId a = nl.AddInput("a", ModuleTag::kController);
  const GateId b = nl.AddInput("b", ModuleTag::kController);
  nl.AddGate(GateKind::kAnd, ModuleTag::kController, {{a, b}});
  const auto all = GenerateFaults(nl, ModuleTag::kController);
  const CollapsedFaults c = Collapse(nl, all);
  // 6 faults; in0.SA0 == in1.SA0 == out.SA0 collapse into one class.
  EXPECT_EQ(c.representatives.size(), 4u);
}

TEST(Collapse, InverterChainCollapsesThroughStems) {
  // a -> NOT -> NOT -> observed: single-fanout stems merge with branches and
  // inverters fold input faults onto outputs, leaving 2 classes.
  Netlist nl;
  const GateId a = nl.AddInput("a", ModuleTag::kController);
  const GateId n1 = nl.AddGate(GateKind::kNot, ModuleTag::kController, {{a}});
  nl.AddGate(GateKind::kNot, ModuleTag::kController, {{n1}});
  const auto all = GenerateFaults(nl, ModuleTag::kController);
  const CollapsedFaults c = Collapse(nl, all);
  EXPECT_EQ(c.representatives.size(), 2u);
}

TEST(Collapse, ClassBookkeepingIsConsistent) {
  const RandomCircuit rc = MakeRandomCircuit(7, 4, 30, 3);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  const CollapsedFaults c = Collapse(rc.nl, all);
  ASSERT_EQ(c.class_of.size(), all.size());
  std::size_t total = 0;
  for (std::uint32_t s : c.class_size) total += s;
  EXPECT_EQ(total, all.size());
  for (std::uint32_t cls : c.class_of) {
    EXPECT_LT(cls, c.representatives.size());
  }
}

// Collapsed-equivalent faults must behave identically in simulation.
TEST(Collapse, EquivalentFaultsAreBehaviourallyEquivalent) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const RandomCircuit rc = MakeRandomCircuit(seed, 4, 25, 3);
    const TestPlan plan = PlanFor(rc);
    const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
    const CollapsedFaults c = Collapse(rc.nl, all);
    const FaultSimResult res = ParSim(rc.nl, plan, all, 0xACE1, 40);
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        if (c.class_of[i] != c.class_of[j]) continue;
        EXPECT_EQ(res.status[i], res.status[j])
            << FaultName(rc.nl, all[i]) << " vs " << FaultName(rc.nl, all[j]);
      }
    }
  }
}

// --- engines -------------------------------------------------------------------

TEST(FaultSim, DetectsObviousFault) {
  // A buffer from input to output: any stuck fault on it is detected within
  // a couple of random patterns.
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g = nl.AddGate(GateKind::kBuf, ModuleTag::kController, {{a}});
  nl.AddOutput(g, "o");
  TestPlan plan;
  plan.operand_bits = {{a}};
  plan.cycles_per_pattern = 1;
  plan.strobe_cycles = {0};
  plan.observe = {g};
  const std::vector<StuckFault> faults = {{g, 0, Trit::kZero},
                                          {g, 0, Trit::kOne}};
  const FaultSimResult res = ParSim(nl, plan, faults, 1, 16);
  EXPECT_EQ(res.status[0], FaultStatus::kDetected);
  EXPECT_EQ(res.status[1], FaultStatus::kDetected);
  EXPECT_GE(res.first_detect_pattern[0], 0);
}

TEST(FaultSim, PotentiallyDetectedWhenFaultyStaysX) {
  // Register with a load-enable mux; stuck-at-0 on the load line means the
  // DFF never leaves X: the paper's "potentially detected" case.
  Netlist nl;
  const GateId load = nl.AddInput("load");
  const GateId din = nl.AddInput("din");
  const GateId q = nl.AddDff(ModuleTag::kController, "q");
  const GateId mux =
      nl.AddGate(GateKind::kMux2, ModuleTag::kController, {{load, q, din}});
  nl.ConnectDff(q, mux);
  nl.AddOutput(q, "o");
  TestPlan plan;
  plan.operand_bits = {{load}, {din}};
  plan.cycles_per_pattern = 2;
  plan.strobe_cycles = {1};
  plan.observe = {q};
  const std::vector<StuckFault> faults = {{mux, 1, Trit::kZero}};  // load SA0
  const FaultSimResult res = ParSim(nl, plan, faults, 3, 64);
  EXPECT_EQ(res.status[0], FaultStatus::kPotentiallyDetected);
}

TEST(FaultSim, UndetectedWhenNotObserved) {
  // Fault on a gate that drives nothing observed.
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId g1 = nl.AddGate(GateKind::kBuf, ModuleTag::kController, {{a}});
  const GateId g2 = nl.AddGate(GateKind::kNot, ModuleTag::kController, {{a}});
  (void)g2;
  nl.AddOutput(g1, "o");
  TestPlan plan;
  plan.operand_bits = {{a}};
  plan.cycles_per_pattern = 1;
  plan.strobe_cycles = {0};
  plan.observe = {g1};
  const std::vector<StuckFault> faults = {{g2, 0, Trit::kOne}};
  const FaultSimResult res = ParSim(nl, plan, faults, 9, 32);
  EXPECT_EQ(res.status[0], FaultStatus::kUndetected);
}

struct EngineSweepParam {
  std::uint64_t seed;
  int inputs;
  int gates;
  int dffs;
};

class EngineEquivalence : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(EngineEquivalence, AllThreeEnginesAgree) {
  const auto p = GetParam();
  const RandomCircuit rc = MakeRandomCircuit(p.seed, p.inputs, p.gates, p.dffs);
  const TestPlan plan = PlanFor(rc);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  const auto faults = Collapse(rc.nl, all).representatives;
  const FaultSimResult ser = SerSim(rc.nl, plan, faults, 0xACE1, 24);
  ExpectSameVerdicts(rc.nl, faults, ParSim(rc.nl, plan, faults, 0xACE1, 24),
                     ser, "parallel");
  ExpectSameVerdicts(rc.nl, faults, DiffSim(rc.nl, plan, faults, 0xACE1, 24),
                     ser, "differential");
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, EngineEquivalence,
    ::testing::Values(EngineSweepParam{1, 3, 15, 2},
                      EngineSweepParam{2, 4, 30, 3},
                      EngineSweepParam{3, 5, 50, 4},
                      EngineSweepParam{4, 2, 10, 1},
                      EngineSweepParam{5, 6, 80, 5},
                      EngineSweepParam{6, 4, 40, 0},
                      EngineSweepParam{7, 3, 64, 6}),
    [](const ::testing::TestParamInfo<EngineSweepParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(FaultSim, MoreThan63FaultsSpanBatches) {
  const RandomCircuit rc = MakeRandomCircuit(12345, 5, 80, 4);
  const TestPlan plan = PlanFor(rc);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  ASSERT_GT(all.size(), 63u);  // forces multiple parallel batches
  const FaultSimResult par = ParSim(rc.nl, plan, all, 5, 16);
  const FaultSimResult ser = SerSim(rc.nl, plan, all, 5, 16);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(par.status[i], ser.status[i]) << FaultName(rc.nl, all[i]);
  }
}

// The shard->seed mapping is fixed, shards write disjoint result slots, and
// the reduction is ordered — so every thread count must produce exactly the
// same FaultSimResult, bit for bit.
TEST(FaultSim, ResultIsThreadCountInvariant) {
  const RandomCircuit rc = MakeRandomCircuit(777, 5, 90, 5);
  const TestPlan plan = PlanFor(rc);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  ASSERT_GT(all.size(), 126u);  // at least three 63-fault shards
  const FaultSimResult t1 = ParSim(rc.nl, plan, all, 0xBEEF, 20, 1);
  for (int threads : {2, 8}) {
    const FaultSimResult tn = ParSim(rc.nl, plan, all, 0xBEEF, 20, threads);
    ASSERT_EQ(tn.status.size(), t1.status.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(tn.status[i], t1.status[i]) << FaultName(rc.nl, all[i]);
      EXPECT_EQ(tn.first_detect_pattern[i], t1.first_detect_pattern[i]);
    }
  }
}

// The differential engine repacks live lanes into fewer shards between
// rounds; with several times 64 faults the campaign exercises multi-shard
// seeding, retirement, and at least one compaction, and must still match
// the reference exactly.
TEST(FaultSim, DifferentialSpansAndCompactsShards) {
  const RandomCircuit rc = MakeRandomCircuit(424242, 5, 90, 5);
  const TestPlan plan = PlanFor(rc);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  ASSERT_GT(all.size(), 128u);  // at least three 64-lane shards
  const FaultSimResult ser = SerSim(rc.nl, plan, all, 5, 48);
  ExpectSameVerdicts(rc.nl, all, DiffSim(rc.nl, plan, all, 5, 48), ser,
                     "differential");
}

// Compaction order and shard re-partitioning are deterministic functions of
// the retirement history, never of the scheduler — so the differential
// result must be bit-identical for every thread count too.
TEST(FaultSim, DifferentialResultIsThreadCountInvariant) {
  const RandomCircuit rc = MakeRandomCircuit(777, 5, 90, 5);
  const TestPlan plan = PlanFor(rc);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  ASSERT_GT(all.size(), 126u);
  const FaultSimResult t1 = DiffSim(rc.nl, plan, all, 0xBEEF, 20, 1);
  for (int threads : {2, 8}) {
    const FaultSimResult tn = DiffSim(rc.nl, plan, all, 0xBEEF, 20, threads);
    ASSERT_EQ(tn.status.size(), t1.status.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(tn.status[i], t1.status[i]) << FaultName(rc.nl, all[i]);
      EXPECT_EQ(tn.first_detect_pattern[i], t1.first_detect_pattern[i]);
    }
  }
}

// The shared-artefact request shape: one pre-compiled program and one
// private golden cache serve several campaigns. The second run hits the
// cached golden trace (no new insertions) and the verdicts never change.
TEST(FaultSim, DifferentialReusesCompiledProgramAndGoldenCache) {
  const RandomCircuit rc = MakeRandomCircuit(31337, 4, 60, 4);
  const TestPlan plan = PlanFor(rc);
  const auto all = GenerateFaults(rc.nl, ModuleTag::kController);
  const auto faults = Collapse(rc.nl, all).representatives;
  const auto compiled = logicsim::CompiledNetlist::Compile(rc.nl);
  logicsim::GoldenTraceCache cache;
  auto run = [&] {
    FaultSimRequest req{rc.nl, {plan, 99, 24}, faults,
                        FaultSimEngine::kDifferential};
    req.compiled = compiled;
    req.golden_cache = &cache;
    return RunFaultSim(req);
  };
  const FaultSimResult first = run();
  EXPECT_EQ(cache.size(), 1u);  // the campaign's golden trace, privately held
  const FaultSimResult second = run();
  EXPECT_EQ(cache.size(), 1u);  // second run reused it
  ExpectSameVerdicts(rc.nl, faults, second, first, "cached rerun");
  ExpectSameVerdicts(rc.nl, faults, first,
                     SerSim(rc.nl, plan, faults, 99, 24), "vs serial");
}

TEST(FaultSim, InjectFaultMapsPins) {
  Netlist nl;
  const GateId a = nl.AddInput("a");
  const GateId b = nl.AddInput("b");
  const GateId g = nl.AddGate(GateKind::kAnd, ModuleTag::kController, {{a, b}});
  logicsim::Simulator sim(nl);
  InjectFault(sim, {g, 2, Trit::kOne});  // pin 1 (input b) SA1
  sim.SetInputAllLanes(a, Trit::kOne);
  sim.SetInputAllLanes(b, Trit::kZero);
  sim.Step();
  EXPECT_EQ(sim.ValueLane(g, 0), Trit::kOne);
}

}  // namespace
}  // namespace pfd::fault
