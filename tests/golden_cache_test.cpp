// Tests for the golden-trace cache: key/entry discipline, the byte-sized
// per-design LRU eviction policy, and the fault-free consumers
// (control-trace extraction and the serial fault-sim golden pass) —
// including that a netlist or stimulus change misses the cache instead of
// replaying a stale golden run.
#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace.hpp"
#include "designs/designs.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "logicsim/golden_cache.hpp"
#include "obs/obs.hpp"

namespace pfd::logicsim {
namespace {

GoldenKey MakeKey(std::uint64_t netlist_hash, std::uint64_t stimulus_hash,
                  std::uint64_t cycles) {
  GoldenKey k;
  k.netlist_hash = netlist_hash;
  k.stimulus_hash = stimulus_hash;
  k.cycles = cycles;
  return k;
}

std::shared_ptr<GoldenEntry> MakeEntry(double scalar) {
  auto e = std::make_shared<GoldenEntry>();
  e->scalars = {scalar};
  return e;
}

TEST(GoldenTraceCache, InsertFindRoundtripAndFirstWins) {
  GoldenTraceCache& cache = GoldenTraceCache::Global();
  cache.Clear();
  const GoldenKey k = MakeKey(1, 2, 3);
  EXPECT_EQ(cache.Find(k), nullptr);

  cache.Insert(k, MakeEntry(42.0));
  const auto hit = cache.Find(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->scalars[0], 42.0);

  // A second insert under the same key must not replace the first entry:
  // consumers race to publish identical golden runs, so first-wins is safe
  // and keeps outstanding shared_ptrs consistent.
  cache.Insert(k, MakeEntry(99.0));
  EXPECT_DOUBLE_EQ(cache.Find(k)->scalars[0], 42.0);

  // Any key component change is a miss.
  EXPECT_EQ(cache.Find(MakeKey(9, 2, 3)), nullptr);
  EXPECT_EQ(cache.Find(MakeKey(1, 9, 3)), nullptr);
  EXPECT_EQ(cache.Find(MakeKey(1, 2, 9)), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find(k), nullptr);
}

std::shared_ptr<GoldenEntry> MakeSized(std::size_t counts) {
  auto e = std::make_shared<GoldenEntry>();
  e->counts.assign(counts, 0);
  return e;
}

TEST(GoldenTraceCache, ByteLruEvictsColdestEntryOfLargestPartition) {
  obs::Registry& reg = obs::Registry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t evict_before =
      reg.CounterValue("logicsim.golden_cache.evictions");

  GoldenTraceCache cache;
  // Learn the accounted size of one entry rather than hardcoding the
  // overhead constant; all entries in this test are the same size.
  cache.Insert(MakeKey(1, 1, 0), MakeSized(100));
  const std::size_t one = cache.bytes();
  ASSERT_GT(one, 0u);
  cache.SetCapacityBytes(3 * one + one / 2);  // room for three entries

  cache.Insert(MakeKey(1, 2, 0), MakeSized(100));  // design 1, second entry
  cache.Insert(MakeKey(2, 1, 0), MakeSized(100));  // design 2
  EXPECT_EQ(cache.size(), 3u);
  // Refresh (1,1): design 1's coldest entry is now (1,2).
  EXPECT_NE(cache.Find(MakeKey(1, 1, 0)), nullptr);

  // The fourth insert exceeds capacity. Both partitions hold two entries
  // (tie), so the smaller netlist hash — design 1 — gives up its LRU entry.
  cache.Insert(MakeKey(2, 2, 0), MakeSized(100));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
  EXPECT_EQ(cache.Find(MakeKey(1, 2, 0)), nullptr);  // evicted
  EXPECT_NE(cache.Find(MakeKey(1, 1, 0)), nullptr);  // survived: refreshed
  EXPECT_NE(cache.Find(MakeKey(2, 1, 0)), nullptr);
  EXPECT_NE(cache.Find(MakeKey(2, 2, 0)), nullptr);
  EXPECT_EQ(reg.CounterValue("logicsim.golden_cache.evictions") -
                evict_before,
            1u);
  reg.set_enabled(was_enabled);
}

TEST(GoldenTraceCache, OversizeNewestEntrySurvives) {
  GoldenTraceCache cache;
  cache.Insert(MakeKey(1, 1, 0), MakeSized(8));
  cache.SetCapacityBytes(cache.bytes());  // exactly one small entry fits
  // An entry larger than the whole cache still gets resident — evicting
  // the artefact that was just computed would livelock its producer.
  cache.Insert(MakeKey(2, 1, 0), MakeSized(1 << 16));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find(MakeKey(1, 1, 0)), nullptr);
  EXPECT_NE(cache.Find(MakeKey(2, 1, 0)), nullptr);
  EXPECT_GT(cache.bytes(), cache.capacity_bytes());
}

TEST(GoldenTraceCache, SetCapacityBytesEvictsImmediatelyInLruOrder) {
  GoldenTraceCache cache;
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.Insert(MakeKey(1, i, 0), MakeSized(100));
  }
  EXPECT_EQ(cache.size(), 4u);
  cache.SetCapacityBytes(cache.bytes() / 2);
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
  EXPECT_EQ(cache.size(), 2u);
  // Insertion order is the recency order here, so the two oldest left.
  EXPECT_EQ(cache.Find(MakeKey(1, 0, 0)), nullptr);
  EXPECT_EQ(cache.Find(MakeKey(1, 1, 0)), nullptr);
  EXPECT_NE(cache.Find(MakeKey(1, 2, 0)), nullptr);
  EXPECT_NE(cache.Find(MakeKey(1, 3, 0)), nullptr);
}

// Regression for a digest ambiguity: without length prefixes, AddBytes
// streams concatenate, so ("ab","c") and ("a","bc") hash identically and
// two different stimulus programs can share a golden entry.
TEST(Fnv1a, AddBytesIsSelfDelimiting) {
  const auto digest = [](std::initializer_list<const char*> parts) {
    Fnv1a h;
    for (const char* p : parts) h.AddBytes(p, std::char_traits<char>::length(p));
    return h.hash();
  };
  EXPECT_NE(digest({"ab", "c"}), digest({"a", "bc"}));
  EXPECT_NE(digest({"abc"}), digest({"a", "bc"}));
  EXPECT_NE(digest({"abc"}), digest({"ab", "c"}));
  EXPECT_NE(digest({"", "abc"}), digest({"abc", ""}));
  // Splitting never collides with shifting content between fields either.
  EXPECT_NE(digest({"x", ""}), digest({"", "x"}));
  // Identical sequences still agree, and AddBytes stays distinct from an
  // Add of the same payload bytes.
  EXPECT_EQ(digest({"ab", "c"}), digest({"ab", "c"}));
  EXPECT_NE(Fnv1a().AddBytes("\x2a\0\0\0\0\0\0\0", 8).hash(),
            Fnv1a().Add(0x2a).hash());
}

TEST(GoldenTraceCache, ConcurrentFirstInsertConvergesOnOneEntry) {
  GoldenTraceCache& cache = GoldenTraceCache::Global();
  cache.Clear();
  obs::Registry& reg = obs::Registry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t ins_before =
      reg.CounterValue("logicsim.golden_cache.insertions");
  const std::uint64_t drop_before =
      reg.CounterValue("logicsim.golden_cache.dropped_inserts");

  const GoldenKey k = MakeKey(11, 22, 33);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const GoldenEntry>> resident(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Racing producers of a key hold identical artefacts; distinct
        // payloads here only make it observable which insert won.
        resident[t] = cache.Insert(k, MakeEntry(static_cast<double>(t)));
      });
    }
    for (std::thread& th : threads) th.join();
  }

  // Exactly one producer published; everyone else got the incumbent back.
  EXPECT_EQ(cache.size(), 1u);
  const auto winner = cache.Find(k);
  ASSERT_NE(winner, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(resident[t], winner) << "thread " << t;
  }
  EXPECT_EQ(reg.CounterValue("logicsim.golden_cache.insertions") - ins_before,
            1u);
  EXPECT_EQ(reg.CounterValue("logicsim.golden_cache.dropped_inserts") -
                drop_before,
            static_cast<std::uint64_t>(kThreads - 1));

  reg.set_enabled(was_enabled);
  cache.Clear();
}

// --- consumer: fault-free control-trace extraction ---------------------------

TEST(GoldenTraceCache, GoldenControlTraceIsCachedAndBitIdentical) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  GoldenTraceCache& cache = GoldenTraceCache::Global();
  cache.Clear();

  const analysis::ControlTrace first =
      analysis::ExtractControlTrace(d.system, nullptr, 3);
  const std::size_t populated = cache.size();
  EXPECT_EQ(populated, 1u);

  const analysis::ControlTrace second =
      analysis::ExtractControlTrace(d.system, nullptr, 3);
  EXPECT_EQ(cache.size(), populated);  // replayed, not recomputed
  EXPECT_EQ(first.lines, second.lines);
  EXPECT_EQ(first.cycles_per_pattern, second.cycles_per_pattern);
  EXPECT_EQ(first.num_patterns, second.num_patterns);
  cache.Clear();
}

TEST(GoldenTraceCache, FaultyTracesBypassTheCache) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  GoldenTraceCache& cache = GoldenTraceCache::Global();
  cache.Clear();

  const fault::StuckFault f{0, 0, Trit::kZero};
  const analysis::ControlTrace faulty =
      analysis::ExtractControlTrace(d.system, &f, 3);
  EXPECT_EQ(cache.size(), 0u);  // faulty runs are never published

  // And a cached golden run must not leak into a faulty extraction.
  const analysis::ControlTrace golden =
      analysis::ExtractControlTrace(d.system, nullptr, 3);
  EXPECT_EQ(cache.size(), 1u);
  const analysis::ControlTrace faulty2 =
      analysis::ExtractControlTrace(d.system, &f, 3);
  EXPECT_NE(golden.lines, faulty2.lines);
  cache.Clear();
}

TEST(GoldenTraceCache, StimulusOrNetlistChangeMissesTheCache) {
  const designs::BenchmarkDesign narrow = designs::BuildDiffeq(4);
  const designs::BenchmarkDesign wide = designs::BuildDiffeq(8);
  GoldenTraceCache& cache = GoldenTraceCache::Global();
  cache.Clear();

  (void)analysis::ExtractControlTrace(narrow.system, nullptr, 2);
  EXPECT_EQ(cache.size(), 1u);
  // More patterns: same netlist, different stimulus => new entry.
  (void)analysis::ExtractControlTrace(narrow.system, nullptr, 3);
  EXPECT_EQ(cache.size(), 2u);
  // Different datapath width: different netlist hash => new entry.
  (void)analysis::ExtractControlTrace(wide.system, nullptr, 2);
  EXPECT_EQ(cache.size(), 3u);
  cache.Clear();
}

// --- consumer: serial fault-sim golden pass ----------------------------------

TEST(GoldenTraceCache, SerialGoldenPassIsCachedAndResultsStable) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const std::vector<fault::StuckFault> faults = fault::GenerateFaults(
      d.system.nl, netlist::ModuleTag::kController);
  ASSERT_FALSE(faults.empty());
  const std::span<const fault::StuckFault> some(faults.data(),
                                                std::min<std::size_t>(
                                                    faults.size(), 8));

  GoldenTraceCache& cache = GoldenTraceCache::Global();
  cache.Clear();
  fault::FaultSimRequest req{d.system.nl, {plan, 7, 16}, some,
                             fault::FaultSimEngine::kSerial};
  const fault::FaultSimResult first = fault::RunFaultSim(req);
  EXPECT_TRUE(first.run_status.ok());
  const std::size_t populated = cache.size();
  EXPECT_GE(populated, 1u);

  const fault::FaultSimResult second = fault::RunFaultSim(req);
  EXPECT_EQ(cache.size(), populated);  // golden pass replayed from cache
  EXPECT_EQ(first.status, second.status);
  EXPECT_EQ(first.first_detect_pattern, second.first_detect_pattern);
  cache.Clear();
}

// --- consumer: differential golden pass --------------------------------------

// The differential engine records its packed per-cycle golden planes from a
// cache-resident trace; a second campaign over the same stimulus replays it
// (no new insertion) and a *different* stimulus misses, each with verdicts
// identical to the uncached run.
TEST(GoldenTraceCache, DifferentialGoldenPassIsCachedPerStimulus) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const std::vector<fault::StuckFault> faults = fault::GenerateFaults(
      d.system.nl, netlist::ModuleTag::kController);
  const std::span<const fault::StuckFault> some(faults.data(),
                                                std::min<std::size_t>(
                                                    faults.size(), 8));

  GoldenTraceCache cache;  // private: the request's golden_cache handle
  auto run = [&](std::uint32_t seed) {
    fault::FaultSimRequest req{d.system.nl, {plan, seed, 16}, some,
                               fault::FaultSimEngine::kDifferential};
    req.golden_cache = &cache;
    return fault::RunFaultSim(req);
  };
  const fault::FaultSimResult first = run(7);
  EXPECT_TRUE(first.run_status.ok());
  const std::size_t populated = cache.size();
  EXPECT_GE(populated, 1u);

  const fault::FaultSimResult replay = run(7);
  EXPECT_EQ(cache.size(), populated);  // same stimulus: replayed, not re-run
  EXPECT_EQ(first.status, replay.status);
  EXPECT_EQ(first.first_detect_pattern, replay.first_detect_pattern);

  (void)run(8);
  EXPECT_GT(cache.size(), populated);  // new TPGR seed: a distinct trace
}

}  // namespace
}  // namespace pfd::logicsim
