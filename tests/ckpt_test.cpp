// Tests for the crash-tolerant checkpoint journal (src/ckpt) and its resume
// engine: round trips, header binding refusals, torn-tail truncation, a
// corruption fuzz over every byte offset (truncate + bit-flip), byte-identity
// of resumed campaigns across all three fault engines and thread counts, and
// the strict CLI parsers/failpoint specs the checkpoint flags ride on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/parse.hpp"
#include "base/rng.hpp"
#include "ckpt/journal.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "guard/guard.hpp"
#include "netlist/netlist.hpp"

namespace pfd::ckpt {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

// --- file helpers -----------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pfd_ckpt_" + name;
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  if (f != nullptr) {
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  return bytes;
}

void WriteFile(const std::string& path, const std::uint8_t* data,
               std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(data, 1, size, f), size);
  std::fclose(f);
}

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t GetU32At(const std::vector<std::uint8_t>& b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[off + i]) << (8 * i);
  return v;
}

// Builds a journal with three fault spans and two power records; returns its
// bytes. The content is deterministic, so every test derived from it is too.
std::vector<std::uint8_t> MakeSampleJournal(const std::string& path) {
  auto j = Journal::Open(path, /*resume=*/false);
  j->Bind(Binding{0x1111, 0x2222, 1});
  const std::uint8_t status[3] = {0, 1, 2};
  const std::int32_t detect[3] = {-1, 4, 7};
  j->AppendFaultSpan(0, status, detect, 3);
  j->AppendFaultSpan(3, status, detect, 2);
  j->AppendFaultSpan(5, status + 1, detect + 1, 1);
  PowerRecord base;
  base.ordinal = -1;
  base.config_digest = 0xABCD;
  base.total_uw = 12.5;
  base.batches = 4;
  base.patterns = 256;
  j->AppendPower(base);
  PowerRecord f0 = base;
  f0.ordinal = 0;
  f0.total_uw = 13.25;
  j->AppendPower(f0);
  EXPECT_EQ(j->records_written(), 5u);
  j->Close();
  return ReadFile(path);
}

// --- journal round trips ----------------------------------------------------

TEST(CkptJournal, FreshWriteThenResumeReplaysEveryRecord) {
  const std::string path = TempPath("roundtrip.ckpt");
  MakeSampleJournal(path);

  auto j = Journal::Open(path, /*resume=*/true);
  j->Bind(Binding{0x1111, 0x2222, 1});
  EXPECT_EQ(j->records_replayed(), 5u);
  EXPECT_EQ(j->torn_tail_truncations(), 0u);
  ASSERT_EQ(j->fault_spans().size(), 3u);
  const FaultSpan& s0 = j->fault_spans()[0];
  EXPECT_EQ(s0.begin, 0u);
  EXPECT_EQ(s0.status, (std::vector<std::uint8_t>{0, 1, 2}));
  EXPECT_EQ(s0.first_detect, (std::vector<std::int32_t>{-1, 4, 7}));
  EXPECT_EQ(j->fault_spans()[1].begin, 3u);
  EXPECT_EQ(j->fault_spans()[2].begin, 5u);

  const PowerRecord* base = j->FindPower(-1, 0xABCD);
  ASSERT_NE(base, nullptr);
  EXPECT_DOUBLE_EQ(base->total_uw, 12.5);
  EXPECT_EQ(base->batches, 4u);
  EXPECT_EQ(base->patterns, 256u);
  ASSERT_NE(j->FindPower(0, 0xABCD), nullptr);
  EXPECT_EQ(j->FindPower(1, 0xABCD), nullptr);  // absent ordinal: miss
  // Present ordinal measured under a different MC config: refuse, never
  // serve numbers from another configuration.
  EXPECT_THROW((void)j->FindPower(-1, 0xDEAD), Error);
}

TEST(CkptJournal, AppendsAreIdempotentPerKey) {
  const std::string path = TempPath("idempotent.ckpt");
  const std::vector<std::uint8_t> full = MakeSampleJournal(path);

  // Re-appending every record of a resumed journal must write nothing: the
  // engines call Append uniformly for replayed and fresh units.
  auto j = Journal::Open(path, /*resume=*/true);
  j->Bind(Binding{0x1111, 0x2222, 1});
  const std::uint8_t status[3] = {0, 1, 2};
  const std::int32_t detect[3] = {-1, 4, 7};
  j->AppendFaultSpan(0, status, detect, 3);
  j->AppendFaultSpan(3, status, detect, 2);
  PowerRecord base;
  base.ordinal = -1;
  base.config_digest = 0xABCD;
  j->AppendPower(base);
  EXPECT_EQ(j->records_written(), 0u);
  j->Close();
  EXPECT_EQ(ReadFile(path), full);
}

// --- header binding refusals ------------------------------------------------

TEST(CkptJournal, ResumeRefusesMissingOrForeignFile) {
  EXPECT_THROW((void)Journal::Open(TempPath("nonexistent.ckpt"), true), Error);

  const std::string path = TempPath("foreign.ckpt");
  const char text[] = "this is not a checkpoint journal, not even close....";
  WriteFile(path, reinterpret_cast<const std::uint8_t*>(text), sizeof text);
  EXPECT_THROW((void)Journal::Open(path, true), Error);
}

TEST(CkptJournal, ResumeRefusesMismatchedBinding) {
  const std::string path = TempPath("binding.ckpt");
  MakeSampleJournal(path);
  const auto expect_refusal = [&](const Binding& b, const char* needle) {
    auto j = Journal::Open(path, true);
    try {
      j->Bind(b);
      FAIL() << "Bind accepted a mismatched " << needle;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_refusal(Binding{0x9999, 0x2222, 1}, "design");
  expect_refusal(Binding{0x1111, 0x9999, 1}, "stimulus");
  expect_refusal(Binding{0x1111, 0x2222, 2}, "engine");
}

TEST(CkptJournal, ResumeRefusesFutureFormatVersion) {
  const std::string path = TempPath("version.ckpt");
  std::vector<std::uint8_t> bytes = MakeSampleJournal(path);
  // Stamp version 2 and recompute the header checksum so only the version
  // check can refuse (a stale checksum would mask it).
  bytes[8] = 2;
  const std::uint64_t sum = Fnv1a(bytes.data(), 32);
  for (int i = 0; i < 8; ++i) {
    bytes[32 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
  WriteFile(path, bytes.data(), bytes.size());
  try {
    (void)Journal::Open(path, true);
    FAIL() << "resume accepted format version 2";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("format version"), std::string::npos)
        << e.what();
  }
}

TEST(CkptJournal, HeaderChecksumRegressionPinned) {
  // Pins the FNV-1a header checksum for a fixed binding. If this test
  // breaks, the on-disk format changed: bump kFormatVersion instead of
  // updating the constant.
  const std::string path = TempPath("pinned.ckpt");
  {
    auto j = Journal::Open(path, false);
    j->Bind(Binding{0x1122334455667788ULL, 0x99aabbccddeeff00ULL, 7});
    j->Close();
  }
  const std::vector<std::uint8_t> bytes = ReadFile(path);
  ASSERT_EQ(bytes.size(), kHeaderBytes);
  std::uint64_t sum = 0;
  for (int i = 0; i < 8; ++i) {
    sum |= static_cast<std::uint64_t>(bytes[32 + i]) << (8 * i);
  }
  EXPECT_EQ(sum, 0x4d8caf5328632e34ULL);
}

// --- torn tails and corruption ----------------------------------------------

TEST(CkptJournal, TornTailIsTruncatedToLastValidRecord) {
  const std::string path = TempPath("torn.ckpt");
  std::vector<std::uint8_t> bytes = MakeSampleJournal(path);
  // A SIGKILL mid-append leaves part of a frame: simulate with half a
  // record's worth of garbage.
  const std::uint8_t garbage[9] = {1, 0, 0, 0, 42, 42, 42, 42, 42};
  std::vector<std::uint8_t> torn = bytes;
  torn.insert(torn.end(), garbage, garbage + sizeof garbage);
  WriteFile(path, torn.data(), torn.size());

  auto j = Journal::Open(path, true);
  EXPECT_EQ(j->torn_tail_truncations(), 1u);
  EXPECT_EQ(j->records_replayed(), 5u);
  j->Close();
  // The truncation is durable: the file is back to the valid prefix.
  EXPECT_EQ(ReadFile(path), bytes);
}

// Shared oracle for the fuzz tests: opening a mangled journal must either
// throw pfd::Error or replay records that are a *prefix-consistent subset*
// of the original — identical content for every surviving key. Crashes and
// silently altered records are the two forbidden outcomes.
void ExpectSaneReplay(const std::string& path, const Journal& original) {
  std::unique_ptr<Journal> j;
  try {
    j = Journal::Open(path, true);
  } catch (const Error&) {
    return;  // refusal is always acceptable for corrupt input
  }
  ASSERT_LE(j->fault_spans().size(), original.fault_spans().size());
  for (std::size_t i = 0; i < j->fault_spans().size(); ++i) {
    const FaultSpan& got = j->fault_spans()[i];
    const FaultSpan& want = original.fault_spans()[i];
    // Spans replay in journal order, so position i must match exactly; a
    // record surviving with different content means a checksum collision.
    EXPECT_EQ(got.begin, want.begin);
    EXPECT_EQ(got.status, want.status);
    EXPECT_EQ(got.first_detect, want.first_detect);
  }
  for (std::int64_t ord : {std::int64_t{-1}, std::int64_t{0}}) {
    const PowerRecord* got = nullptr;
    try {
      got = j->FindPower(ord, 0xABCD);
    } catch (const Error&) {
      ADD_FAILURE() << "replayed power record for ordinal " << ord
                    << " has a mangled config digest";
      continue;
    }
    if (got == nullptr) continue;  // dropped by truncation: fine
    const PowerRecord* want = original.FindPower(ord, 0xABCD);
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(got->total_uw, want->total_uw);
    EXPECT_EQ(got->batches, want->batches);
    EXPECT_EQ(got->patterns, want->patterns);
  }
}

TEST(CkptJournalFuzz, TruncationAtEveryByteOffset) {
  const std::string ref_path = TempPath("fuzz_ref.ckpt");
  const std::vector<std::uint8_t> bytes = MakeSampleJournal(ref_path);
  auto original = Journal::Open(ref_path, true);

  const std::string path = TempPath("fuzz_trunc.ckpt");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    WriteFile(path, bytes.data(), len);
    ExpectSaneReplay(path, *original);
  }
}

TEST(CkptJournalFuzz, BitFlipAtEveryByteOffset) {
  const std::string ref_path = TempPath("fuzz_ref2.ckpt");
  const std::vector<std::uint8_t> bytes = MakeSampleJournal(ref_path);
  auto original = Journal::Open(ref_path, true);

  const std::string path = TempPath("fuzz_flip.ckpt");
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      SCOPED_TRACE("bit flip 0x" + std::to_string(mask) + " at byte " +
                   std::to_string(off));
      std::vector<std::uint8_t> mangled = bytes;
      mangled[off] ^= mask;
      WriteFile(path, mangled.data(), mangled.size());
      ExpectSaneReplay(path, *original);
    }
  }
}

// --- end-to-end resume through the fault engines ----------------------------

struct TestCircuit {
  Netlist nl;
  std::vector<GateId> inputs;
  std::vector<GateId> outputs;
};

TestCircuit MakeCircuit(std::uint64_t seed, int num_inputs, int num_gates,
                        int num_dffs) {
  Rng rng(seed);
  TestCircuit tc;
  std::vector<GateId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    const GateId g =
        tc.nl.AddInput("in" + std::to_string(i), ModuleTag::kController);
    tc.inputs.push_back(g);
    pool.push_back(g);
  }
  std::vector<GateId> dffs;
  for (int i = 0; i < num_dffs; ++i) {
    const GateId d =
        tc.nl.AddDff(ModuleTag::kController, "r" + std::to_string(i));
    dffs.push_back(d);
    pool.push_back(d);
  }
  const GateKind kinds[] = {GateKind::kAnd, GateKind::kOr, GateKind::kNand,
                            GateKind::kNor, GateKind::kXor, GateKind::kNot};
  for (int i = 0; i < num_gates; ++i) {
    const GateKind kind = kinds[rng.Below(std::size(kinds))];
    const int arity = netlist::ExpectedArity(kind) < 0
                          ? 2 + static_cast<int>(rng.Below(2))
                          : netlist::ExpectedArity(kind);
    std::vector<GateId> fanins;
    for (int a = 0; a < arity; ++a) {
      fanins.push_back(pool[rng.Below(pool.size())]);
    }
    pool.push_back(tc.nl.AddGate(kind, ModuleTag::kController, fanins,
                                 "g" + std::to_string(i)));
  }
  for (GateId d : dffs) tc.nl.ConnectDff(d, pool[rng.Below(pool.size())]);
  for (int i = 0; i < 4; ++i) {
    const GateId g = pool[pool.size() - 1 - rng.Below(pool.size() / 2)];
    tc.outputs.push_back(g);
    tc.nl.AddOutput(g, "out" + std::to_string(i));
  }
  tc.nl.Validate();
  return tc;
}

fault::TestPlan PlanFor(const TestCircuit& tc) {
  fault::TestPlan plan;
  for (GateId in : tc.inputs) plan.operand_bits.push_back({in});
  plan.cycles_per_pattern = 4;
  for (int c = 0; c < 4; ++c) plan.strobe_cycles.push_back(c);
  plan.observe = tc.outputs;
  return plan;
}

TEST(CkptResume, InterruptedCampaignResumesByteIdenticalAcrossEnginesAndThreads) {
  const TestCircuit tc = MakeCircuit(7, 6, 160, 5);
  const fault::TestPlan plan = PlanFor(tc);
  const std::vector<fault::StuckFault> faults =
      fault::GenerateFaults(tc.nl, ModuleTag::kController);
  ASSERT_GT(faults.size(), 130u);  // several shards for every engine

  const auto run = [&](fault::FaultSimEngine engine, int threads,
                       Journal* journal) {
    fault::FaultSimRequest req{tc.nl, {plan, 11, 24}, faults, engine};
    req.exec.threads = threads;
    req.journal = journal;
    return fault::RunFaultSim(req);
  };

  for (const fault::FaultSimEngine engine :
       {fault::FaultSimEngine::kParallel, fault::FaultSimEngine::kSerial,
        fault::FaultSimEngine::kDifferential}) {
    SCOPED_TRACE("engine " + std::to_string(static_cast<int>(engine)));
    const Binding binding{tc.nl.StructuralHash(),
                          fault::StimulusDigest({plan, 11, 24}),
                          static_cast<std::uint8_t>(engine)};
    const fault::FaultSimResult want = run(engine, 1, nullptr);

    std::vector<std::uint8_t> uninterrupted;
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const std::string path = TempPath("resume.ckpt");
      {
        auto j = Journal::Open(path, false);
        j->Bind(binding);
        const fault::FaultSimResult got = run(engine, threads, j.get());
        EXPECT_EQ(got.status, want.status);
        EXPECT_EQ(got.first_detect_pattern, want.first_detect_pattern);
      }
      const std::vector<std::uint8_t> full = ReadFile(path);
      if (uninterrupted.empty()) {
        uninterrupted = full;
      } else {
        // The journal is a pure function of the campaign, not the thread
        // count: ordered completion makes the bytes identical.
        EXPECT_EQ(full, uninterrupted);
      }

      // Simulate a kill after the first record (header + one frame), then
      // resume: the finished journal and the verdicts must be identical to
      // the uninterrupted run's.
      ASSERT_GT(full.size(), kHeaderBytes + 16);
      const std::size_t first_frame_end =
          kHeaderBytes + 16 + GetU32At(full, kHeaderBytes + 4);
      WriteFile(path, full.data(), first_frame_end);
      {
        auto j = Journal::Open(path, true);
        j->Bind(binding);
        EXPECT_EQ(j->records_replayed(), 1u);
        const fault::FaultSimResult got = run(engine, threads, j.get());
        EXPECT_EQ(got.status, want.status);
        EXPECT_EQ(got.first_detect_pattern, want.first_detect_pattern);
      }
      EXPECT_EQ(ReadFile(path), full);
    }
  }
}

TEST(CkptResume, RunFaultSimRequiresBoundJournal) {
  const TestCircuit tc = MakeCircuit(3, 4, 40, 2);
  const fault::TestPlan plan = PlanFor(tc);
  const std::vector<fault::StuckFault> faults =
      fault::GenerateFaults(tc.nl, ModuleTag::kController);
  auto j = Journal::Open(TempPath("unbound.ckpt"), false);
  fault::FaultSimRequest req{tc.nl, {plan, 1, 8}, faults,
                             fault::FaultSimEngine::kParallel};
  req.journal = j.get();  // never Bind()ed
  EXPECT_THROW((void)fault::RunFaultSim(req), Error);
}

TEST(CkptResume, OutOfRangeSpanIsRejectedNotReplayed) {
  const TestCircuit tc = MakeCircuit(3, 4, 40, 2);
  const fault::TestPlan plan = PlanFor(tc);
  const std::vector<fault::StuckFault> faults =
      fault::GenerateFaults(tc.nl, ModuleTag::kController);
  const Binding binding{tc.nl.StructuralHash(),
                        fault::StimulusDigest({plan, 1, 8}),
                        static_cast<std::uint8_t>(fault::FaultSimEngine::kSerial)};
  const std::string path = TempPath("range.ckpt");
  {
    // A journal holding a span past this campaign's fault list (same header
    // binding, e.g. hand-edited) must refuse, not write out of bounds.
    auto j = Journal::Open(path, false);
    j->Bind(binding);
    const std::uint8_t status = 1;
    const std::int32_t detect = 0;
    j->AppendFaultSpan(faults.size() + 100, &status, &detect, 1);
  }
  auto j = Journal::Open(path, true);
  j->Bind(binding);
  fault::FaultSimRequest req{tc.nl, {plan, 1, 8}, faults,
                             fault::FaultSimEngine::kSerial};
  req.journal = j.get();
  EXPECT_THROW((void)fault::RunFaultSim(req), Error);
}

// --- CLI parsers and failpoint specs ----------------------------------------

TEST(CkptParsers, ParsePathFlagRejectsGarbage) {
  EXPECT_EQ(ParsePathFlag("--checkpoint", "run.ckpt"), "run.ckpt");
  EXPECT_EQ(ParsePathFlag("--checkpoint", "./--odd-name"), "./--odd-name");
  EXPECT_EQ(ParsePathFlag("--checkpoint", "-"), "-");
  EXPECT_THROW((void)ParsePathFlag("--checkpoint", ""), Error);
  EXPECT_THROW((void)ParsePathFlag("--checkpoint", "--resume"), Error);
}

TEST(CkptParsers, AbortFailpointSpecParsesStrictly) {
  guard::ClearFailpoints();
  guard::ArmFailpoint("ckpt_test.a", "abort");
  guard::ArmFailpoint("ckpt_test.b", "abort@3");
  EXPECT_THROW(guard::ArmFailpoint("ckpt_test.c", "abort@"), Error);
  EXPECT_THROW(guard::ArmFailpoint("ckpt_test.c", "abort@x"), Error);
  EXPECT_THROW(guard::ArmFailpoint("ckpt_test.c", "abort@1x"), Error);
  try {
    guard::ArmFailpoint("ckpt_test.c", "explode");
    FAIL() << "bogus spec accepted";
  } catch (const Error& e) {
    // The error enumerates the legal vocabulary, including the abort forms.
    EXPECT_NE(std::string(e.what()).find("abort@K"), std::string::npos)
        << e.what();
  }
  guard::ClearFailpoints();
}

TEST(CkptDeathTest, AbortFailpointAbortsTheProcess) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        guard::ArmFailpoint("ckpt_test.die", "abort");
        guard::MaybeFail("ckpt_test.die");
      },
      "aborting process");
}

}  // namespace
}  // namespace pfd::ckpt
