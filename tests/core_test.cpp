// Tests for the core support modules added on top of the pipeline: report
// rendering, the process-variation analysis, and the observation-policy
// knob.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/variation.hpp"
#include "designs/designs.hpp"

namespace pfd::core {
namespace {

// --- variation math (closed-form sanity) --------------------------------------

TEST(Variation, ZeroSigmaIsAStepFunction) {
  const VariationConfig cfg{0.0, 5.0};
  EXPECT_DOUBLE_EQ(DetectionProbability(0.10, cfg), 1.0);   // +10% > 5%
  EXPECT_DOUBLE_EQ(DetectionProbability(0.02, cfg), 0.0);   // +2% < 5%
  EXPECT_DOUBLE_EQ(DetectionProbability(-0.10, cfg), 1.0);  // -10%
  EXPECT_DOUBLE_EQ(DetectionProbability(0.0, cfg), 0.0);    // fault-free
}

TEST(Variation, FaultOnTheBandEdgeIsAFairCoin) {
  // delta exactly at the threshold: half the dies fall outside.
  const VariationConfig cfg{0.01, 5.0};
  EXPECT_NEAR(DetectionProbability(0.05 / 1.0, cfg), 0.5, 0.02);
}

TEST(Variation, MonotoneInDelta) {
  const VariationConfig cfg{0.02, 5.0};
  double prev = DetectionProbability(0.0, cfg);
  for (double delta = 0.01; delta < 0.30; delta += 0.01) {
    const double p = DetectionProbability(delta, cfg);
    EXPECT_GE(p + 1e-12, prev);
    prev = p;
  }
}

TEST(Variation, FalseAlarmGrowsWithSigma) {
  double prev = 0.0;
  for (double sigma : {0.005, 0.01, 0.02, 0.04}) {
    const double p = DetectionProbability(0.0, {sigma, 5.0});
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_LT(prev, 0.25);  // even sigma=4% rarely trips a 5% band
}

TEST(Variation, MinimalThresholdInvertsTheFalseAlarmCurve) {
  for (double sigma : {0.01, 0.02}) {
    const double t = MinimalThresholdForFalseAlarm(sigma, 0.001);
    EXPECT_LE(DetectionProbability(0.0, {sigma, t}), 0.001 + 1e-6);
    EXPECT_GT(DetectionProbability(0.0, {sigma, t * 0.9}), 0.001);
  }
}

TEST(Variation, RejectsBadInputs) {
  EXPECT_THROW(DetectionProbability(-1.5, {0.01, 5.0}), Error);
  EXPECT_THROW(MinimalThresholdForFalseAlarm(0.01, 0.0), Error);
}

// --- report/grading/variation on a real design --------------------------------

class CoreOnFacet : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new designs::BenchmarkDesign(designs::BuildFacet(4));
    PipelineConfig cfg;
    cfg.tpgr_patterns = 400;
    report_ = new ClassificationReport(
        ClassifyControllerFaults(design_->system, design_->hls, cfg));
    GradeConfig gc;
    graded_ = new PowerGradeReport(
        GradeSfrFaults(design_->system, *report_, gc));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete report_;
    delete graded_;
    design_ = nullptr;
    report_ = nullptr;
    graded_ = nullptr;
  }
  static designs::BenchmarkDesign* design_;
  static ClassificationReport* report_;
  static PowerGradeReport* graded_;
};

designs::BenchmarkDesign* CoreOnFacet::design_ = nullptr;
ClassificationReport* CoreOnFacet::report_ = nullptr;
PowerGradeReport* CoreOnFacet::graded_ = nullptr;

TEST_F(CoreOnFacet, CsvHasOneRowPerFault) {
  const std::string csv = ClassificationCsv(*report_);
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, report_->records.size() + 1);  // + header
}

TEST_F(CoreOnFacet, TablesMentionEverySfrFault) {
  const std::string table = ClassificationTable(*report_, /*sfr_only=*/true);
  for (const FaultRecord& r : report_->records) {
    if (r.cls == FaultClass::kSfr) {
      EXPECT_NE(table.find(r.name), std::string::npos) << r.name;
    }
  }
  const std::string grading = GradingTable(*graded_);
  for (const GradedFault& gf : graded_->faults) {
    EXPECT_NE(grading.find(gf.record->name), std::string::npos);
  }
}

TEST_F(CoreOnFacet, GradingCsvParsesBackConsistently) {
  const std::string csv = GradingCsv(*graded_);
  EXPECT_NE(csv.find("power uW"), std::string::npos);
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, graded_->faults.size() + 1);
}

TEST_F(CoreOnFacet, EffectsSummaryNumbersTheEffects) {
  for (const FaultRecord& r : report_->records) {
    if (r.effects.size() >= 2) {
      const std::string s = EffectsSummary(r);
      EXPECT_NE(s.find("1. "), std::string::npos);
      EXPECT_NE(s.find("2. "), std::string::npos);
      return;
    }
  }
  GTEST_SKIP() << "no multi-effect fault in this build";
}

TEST_F(CoreOnFacet, VariationReportCoversAllSfrFaults) {
  const VariationReport vr = AnalyzeUnderVariation(*graded_, {0.01, 5.0});
  EXPECT_EQ(vr.faults.size(), graded_->faults.size());
  // With tiny sigma, expected coverage approaches the sharp-count fraction.
  const VariationReport sharp =
      AnalyzeUnderVariation(*graded_, {1e-6, 5.0});
  const double sharp_fraction =
      graded_->faults.empty()
          ? 0.0
          : static_cast<double>(graded_->DetectedCount()) /
                static_cast<double>(graded_->faults.size());
  EXPECT_NEAR(sharp.ExpectedCoverage(), sharp_fraction, 1e-6);
}

TEST_F(CoreOnFacet, EveryCyclePolicyOnlyShrinksTheSfrSet) {
  PipelineConfig cfg;
  cfg.tpgr_patterns = 400;
  cfg.observation = ObservationPolicy::kEveryCycle;
  const ClassificationReport every =
      ClassifyControllerFaults(design_->system, design_->hls, cfg);
  ASSERT_EQ(every.records.size(), report_->records.size());
  EXPECT_LE(every.sfr, report_->sfr);
  // Set containment: every-cycle SFR faults are also at-hold SFR.
  for (std::size_t i = 0; i < every.records.size(); ++i) {
    if (every.records[i].cls == FaultClass::kSfr) {
      EXPECT_EQ(report_->records[i].cls, FaultClass::kSfr)
          << report_->records[i].name;
    }
  }
}

}  // namespace
}  // namespace pfd::core
