// Tests for pfd::guard — the status taxonomy, cooperative limits
// (deadline / cancellation / cycle budget), per-unit failure isolation in
// exec::Pool::ParallelForGuarded, the failpoint injection harness, and the
// end-to-end degradation contract of the engines and the classification
// pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "designs/designs.hpp"
#include "exec/exec.hpp"
#include "fault/fault_sim.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"
#include "power/power_model.hpp"
#include "power/power_sim.hpp"

namespace pfd::guard {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

// Failpoints are process-global; every test that arms one cleans up even on
// assertion failure.
struct FailpointScope {
  ~FailpointScope() { ClearFailpoints(); }
};

Limits ExpiredDeadline() {
  Limits limits;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  return limits;
}

// --- Status / CancelToken / Checker ----------------------------------------

TEST(Status, CodeNamesAndOk) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kBudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kPartialFailure), "partial-failure");
  EXPECT_TRUE(Status{}.ok());
  EXPECT_FALSE((Status{StatusCode::kCancelled, ""}).ok());
}

TEST(CancelToken, CopiesShareState) {
  CancelToken a;
  CancelToken b = a;  // same underlying flag
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_GE(a.MsSinceRequest(), 0.0);
}

TEST(Checker, DefaultLimitsNeverTrip) {
  Checker check((Limits()));
  check.AddSimCycles(1u << 20);
  EXPECT_TRUE(check.Check().ok());
  EXPECT_FALSE(check.tripped());
  EXPECT_NO_THROW(check.CheckOrThrow());
}

TEST(Checker, DeadlineTripIsSticky) {
  Checker check(ExpiredDeadline());
  EXPECT_EQ(check.Check().code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(check.tripped());
  // Sticky: the first trip keeps deciding the status.
  EXPECT_EQ(check.Check().code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(check.status().code, StatusCode::kDeadlineExceeded);
}

TEST(Checker, CycleBudgetTrips) {
  Limits limits;
  limits.max_sim_cycles = 100;
  Checker check(limits);
  check.AddSimCycles(99);
  EXPECT_TRUE(check.Check().ok());
  check.AddSimCycles(1);
  EXPECT_EQ(check.Check().code, StatusCode::kBudgetExhausted);
}

TEST(Checker, CancelTripsAndCheckOrThrowThrowsTripped) {
  Limits limits;
  Checker check(limits);
  EXPECT_TRUE(check.Check().ok());
  limits.cancel.RequestCancel();
  try {
    check.CheckOrThrow();
    FAIL() << "expected Tripped";
  } catch (const Tripped& t) {
    EXPECT_EQ(t.status.code, StatusCode::kCancelled);
  }
}

TEST(RunStatus, MergeKeepsMostSevereAndPrefixesFailures) {
  RunStatus campaign;
  RunStatus stage1;
  stage1.code = StatusCode::kPartialFailure;
  stage1.failed_units.push_back({7, "boom"});
  campaign.MergeFrom(stage1, "step1");
  EXPECT_EQ(campaign.code, StatusCode::kPartialFailure);
  ASSERT_EQ(campaign.failed_units.size(), 1u);
  EXPECT_EQ(campaign.failed_units[0].what, "step1: boom");

  RunStatus stage2;
  stage2.code = StatusCode::kDeadlineExceeded;
  stage2.message = "deadline exceeded";
  campaign.MergeFrom(stage2, "step4");
  EXPECT_EQ(campaign.code, StatusCode::kDeadlineExceeded);  // trip outranks
  EXPECT_TRUE(campaign.tripped());

  RunStatus stage3;
  stage3.code = StatusCode::kCancelled;
  campaign.MergeFrom(stage3, "later");
  EXPECT_EQ(campaign.code, StatusCode::kDeadlineExceeded);  // first trip wins
  EXPECT_FALSE(campaign.Describe().empty());
}

// --- failpoint registry ------------------------------------------------------

TEST(Failpoints, BadSpecThrowsGoodSpecsFire) {
  FailpointScope scope;
  EXPECT_THROW(ArmFailpoint("x", "explode"), pfd::Error);
  EXPECT_THROW(ArmFailpoint("x", "throw@"), pfd::Error);
  EXPECT_THROW(ArmFailpoint("x", "throw@12a"), pfd::Error);
  EXPECT_THROW(ArmFailpoint("", "throw"), pfd::Error);

  ArmFailpoint("x", "throw@1");
  EXPECT_NO_THROW(MaybeFail("x"));          // hit 0
  EXPECT_THROW(MaybeFail("x"), pfd::Error);  // hit 1 fires
  EXPECT_NO_THROW(MaybeFail("x"));          // hit 2
  EXPECT_EQ(FailpointHits("x"), 3u);
  EXPECT_EQ(FailpointHits("unarmed"), 0u);

  ArmFailpoint("y", "throw");  // every hit
  EXPECT_THROW(MaybeFail("y"), pfd::Error);
  EXPECT_THROW(MaybeFail("y"), pfd::Error);

  ClearFailpoints();
  EXPECT_NO_THROW(MaybeFail("y"));
  EXPECT_EQ(FailpointHits("x"), 0u);
}

TEST(Failpoints, FlagSpecFlagsWithoutThrowing) {
  FailpointScope scope;
  ArmFailpoint("mut", "flag");
  ArmFailpoint("boom", "throw");

  // A "flag" arming never throws; each poll that sees it counts as a hit.
  EXPECT_NO_THROW(MaybeFail("mut"));
  EXPECT_TRUE(FailpointFlagged("mut"));
  EXPECT_TRUE(FailpointFlagged("mut"));
  EXPECT_GE(FailpointHits("mut"), 3u);

  // The specs do not cross over: a throw arming doesn't flag, a flag
  // arming doesn't throw, and unarmed names do neither.
  EXPECT_FALSE(FailpointFlagged("boom"));
  EXPECT_THROW(MaybeFail("boom"), pfd::Error);
  EXPECT_FALSE(FailpointFlagged("unarmed"));

  ClearFailpoints();
  EXPECT_FALSE(FailpointFlagged("mut"));
  EXPECT_EQ(FailpointHits("mut"), 0u);
}

TEST(Failpoints, FlagSpecParsesInListsAndRejectsVariants) {
  FailpointScope scope;
  ArmFailpoints("a=flag,b=throw@1");
  EXPECT_TRUE(FailpointFlagged("a"));
  EXPECT_NO_THROW(MaybeFail("b"));
  EXPECT_THROW(MaybeFail("b"), pfd::Error);
  ClearFailpoints();
  // "flag" takes no @K count and no trailing garbage.
  EXPECT_THROW(ArmFailpoint("x", "flag@1"), pfd::Error);
  EXPECT_THROW(ArmFailpoint("x", "flagged"), pfd::Error);
  EXPECT_THROW(ArmFailpoints("x=flag@2"), pfd::Error);
  EXPECT_FALSE(FailpointFlagged("x"));
}

TEST(Failpoints, ArmFailpointsAcceptsWellFormedLists) {
  FailpointScope scope;
  ArmFailpoints("a=throw@2,b=throw,c=throw@1");
  EXPECT_NO_THROW(MaybeFail("a"));
  EXPECT_NO_THROW(MaybeFail("a"));
  EXPECT_THROW(MaybeFail("a"), pfd::Error);  // hit 2 fires
  EXPECT_THROW(MaybeFail("b"), pfd::Error);  // every hit
  EXPECT_NO_THROW(MaybeFail("c"));
  EXPECT_THROW(MaybeFail("c"), pfd::Error);
}

TEST(Failpoints, ArmFailpointsRejectsMalformedLists) {
  FailpointScope scope;
  EXPECT_THROW(ArmFailpoints("a=@0"), pfd::Error);         // no 'throw'
  EXPECT_THROW(ArmFailpoints("a=throw@0x"), pfd::Error);   // trailing garbage
  EXPECT_THROW(ArmFailpoints("a=throw@"), pfd::Error);     // no count digits
  EXPECT_THROW(ArmFailpoints("a=throwing"), pfd::Error);   // unknown verb
  EXPECT_THROW(ArmFailpoints("=throw"), pfd::Error);       // empty name
  EXPECT_THROW(ArmFailpoints("a"), pfd::Error);            // no '='
  EXPECT_THROW(ArmFailpoints("a=throw,,b=throw"), pfd::Error);  // empty entry
  EXPECT_THROW(ArmFailpoints("a=throw@99999999999999999999"),
               pfd::Error);                                // count overflow
}

TEST(Failpoints, ArmFailpointsRejectsDuplicateNames) {
  FailpointScope scope;
  EXPECT_THROW(ArmFailpoints("a=throw,b=throw,a=throw@3"), pfd::Error);
}

TEST(Failpoints, ArmFailpointsIsAllOrNothing) {
  FailpointScope scope;
  // The malformed tail entry must keep the valid head entries from arming.
  EXPECT_THROW(ArmFailpoints("good=throw,bad=throw@2x"), pfd::Error);
  EXPECT_NO_THROW(MaybeFail("good"));
}

TEST(Failpoints, EnvParsingSkipsMalformedEntries) {
  FailpointScope scope;
  ::setenv("PFD_FAILPOINTS",
           "a=throw@2,garbage,=throw,b=explode,c=throw", 1);
  ArmFailpointsFromEnv();  // must not throw on the malformed entries
  ::unsetenv("PFD_FAILPOINTS");
  EXPECT_NO_THROW(MaybeFail("a"));
  EXPECT_NO_THROW(MaybeFail("a"));
  EXPECT_THROW(MaybeFail("a"), pfd::Error);
  EXPECT_THROW(MaybeFail("c"), pfd::Error);
  EXPECT_NO_THROW(MaybeFail("b"));        // bad spec was skipped
  EXPECT_NO_THROW(MaybeFail("garbage"));  // no '=': skipped
}

// --- ParallelForGuarded ------------------------------------------------------

TEST(ParallelForGuarded, TransientFailureIsRetriedAndRecovered) {
  exec::Options opt;
  opt.threads = 4;
  exec::Pool pool(opt);
  std::atomic<bool> failed_once{false};
  const RunStatus status = pool.ParallelForGuarded(64, [&](std::size_t i) {
    if (i == 17 && !failed_once.exchange(true)) {
      throw std::runtime_error("transient");
    }
  });
  EXPECT_TRUE(status.ok()) << status.Describe();
  EXPECT_TRUE(status.failed_units.empty());
  EXPECT_EQ(status.completed.size(), 64u);  // the retry completed unit 17
}

TEST(ParallelForGuarded, PermanentFailuresAreDeterministicAcrossThreads) {
  for (const int threads : {1, 2, 8}) {
    exec::Options opt;
    opt.threads = threads;
    exec::Pool pool(opt);
    const RunStatus status = pool.ParallelForGuarded(100, [&](std::size_t i) {
      if (i == 13 || i == 77) throw std::runtime_error("permanent");
    });
    EXPECT_EQ(status.code, StatusCode::kPartialFailure);
    ASSERT_EQ(status.failed_units.size(), 2u) << "threads=" << threads;
    EXPECT_EQ(status.failed_units[0].index, 13u);  // sorted by index
    EXPECT_EQ(status.failed_units[1].index, 77u);
    EXPECT_EQ(status.completed.size(), 98u);
    EXPECT_EQ(status.total_units, 100u);
  }
}

TEST(ParallelForGuarded, PreTrippedCheckerSkipsAllUnits) {
  exec::Options opt;
  opt.threads = 4;
  exec::Pool pool(opt);
  Checker check(ExpiredDeadline());
  std::atomic<int> ran{0};
  const RunStatus status = pool.ParallelForGuarded(
      32,
      [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
      &check);
  EXPECT_EQ(status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(status.completed.empty());
  EXPECT_TRUE(status.failed_units.empty());  // skipped, not failed
}

TEST(ParallelForGuarded, CancellationStopsAtUnitBoundary) {
  exec::Options opt;
  opt.threads = 1;  // serial path: units run in index order
  exec::Pool pool(opt);
  Limits limits;
  Checker check(limits);
  const RunStatus status = pool.ParallelForGuarded(
      16,
      [&](std::size_t i) {
        if (i == 2) limits.cancel.RequestCancel();
      },
      &check);
  EXPECT_EQ(status.code, StatusCode::kCancelled);
  // Units 0..2 ran (the cancel lands before unit 3's pre-check).
  EXPECT_EQ(status.completed, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParallelForGuarded, TrippedExceptionMeansAbandonedNotFailed) {
  exec::Options opt;
  opt.threads = 2;
  exec::Pool pool(opt);
  Limits limits;
  Checker check(limits);
  const RunStatus status = pool.ParallelForGuarded(
      8,
      [&](std::size_t i) {
        if (i == 3) {
          limits.cancel.RequestCancel();
          check.CheckOrThrow();  // abandon this unit mid-body
        }
      },
      &check);
  EXPECT_EQ(status.code, StatusCode::kCancelled);
  EXPECT_TRUE(status.failed_units.empty());
  // Unit 3 was abandoned by the trip, so it must not be listed completed.
  for (const std::size_t i : status.completed) EXPECT_NE(i, 3u);
}

// --- engine-level degradation -----------------------------------------------

// A tiny system with controller-tagged gates, so GenerateFaults yields a
// handful of controller faults for the fault-sim engines.
struct MiniFaultSystem {
  Netlist nl;
  fault::TestPlan plan;
  std::vector<fault::StuckFault> faults;
  MiniFaultSystem() {
    const GateId a0 = nl.AddInput("a0");
    const GateId a1 = nl.AddInput("a1");
    const GateId x =
        nl.AddGate(GateKind::kXor, ModuleTag::kController, {{a0, a1}});
    const GateId n =
        nl.AddGate(GateKind::kAnd, ModuleTag::kController, {{x, a0}});
    const GateId o =
        nl.AddGate(GateKind::kOr, ModuleTag::kDatapath, {{n, a1}});
    nl.AddOutput(o, "o");
    plan.operand_bits = {{a0, a1}};
    plan.cycles_per_pattern = 2;
    plan.strobe_cycles = {1};
    plan.observe = {o};
    faults = fault::GenerateFaults(nl, ModuleTag::kController);
  }
};

fault::FaultSimResult RunMini(const MiniFaultSystem& ms,
                              fault::FaultSimEngine engine) {
  fault::FaultSimRequest request{ms.nl, {ms.plan, 0xACE1, 16}, ms.faults,
                                 engine};
  request.exec.threads = 2;
  return fault::RunFaultSim(request);
}

TEST(FaultSimGuard, ShardFailpointIsRetriedWithIdenticalResults) {
  MiniFaultSystem ms;
  const fault::FaultSimResult baseline =
      RunMini(ms, fault::FaultSimEngine::kParallel);
  ASSERT_TRUE(baseline.run_status.ok());

  FailpointScope scope;
  ArmFailpoint("fault_sim.shard", "throw@0");
  const fault::FaultSimResult injected =
      RunMini(ms, fault::FaultSimEngine::kParallel);
  EXPECT_GT(FailpointHits("fault_sim.shard"), 0u);
  // The single-shot failure is absorbed by the retry: same result, clean
  // status (the failpoint fires before the shard mutates anything).
  EXPECT_TRUE(injected.run_status.ok()) << injected.run_status.Describe();
  EXPECT_EQ(injected.status, baseline.status);
  EXPECT_EQ(injected.first_detect_pattern, baseline.first_detect_pattern);
}

TEST(FaultSimGuard, SerialFaultFailpointIsRetriedWithIdenticalResults) {
  MiniFaultSystem ms;
  const fault::FaultSimResult baseline =
      RunMini(ms, fault::FaultSimEngine::kSerial);
  FailpointScope scope;
  ArmFailpoint("fault_sim.serial_fault", "throw@0");
  const fault::FaultSimResult injected =
      RunMini(ms, fault::FaultSimEngine::kSerial);
  EXPECT_TRUE(injected.run_status.ok()) << injected.run_status.Describe();
  EXPECT_EQ(injected.status, baseline.status);
}

TEST(FaultSimGuard, PermanentShardFailureYieldsNotRunFaults) {
  MiniFaultSystem ms;
  FailpointScope scope;
  ArmFailpoint("fault_sim.shard", "throw");  // first attempt AND retry fail
  const fault::FaultSimResult result =
      RunMini(ms, fault::FaultSimEngine::kParallel);
  EXPECT_EQ(result.run_status.code, StatusCode::kPartialFailure);
  EXPECT_FALSE(result.run_status.failed_units.empty());
  for (std::size_t i = 0; i < ms.faults.size(); ++i) {
    EXPECT_EQ(result.status[i], fault::FaultStatus::kNotRun);
  }
}

TEST(FaultSimGuard, ExpiredDeadlineReturnsPartialResultWithoutThrowing) {
  MiniFaultSystem ms;
  fault::FaultSimRequest request{ms.nl, {ms.plan, 0xACE1, 16}, ms.faults,
                                 fault::FaultSimEngine::kParallel};
  request.limits = ExpiredDeadline();
  const fault::FaultSimResult result = fault::RunFaultSim(request);
  EXPECT_EQ(result.run_status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.CountWithStatus(fault::FaultStatus::kNotRun),
            ms.faults.size());
}

// The differential engine's recovery path: a shard that throws once (before
// it has simulated anything) is retried and the campaign ends clean and
// bit-identical to the fault-free run.
TEST(FaultSimGuard, DifferentialShardFailpointIsRetriedWithIdenticalResults) {
  MiniFaultSystem ms;
  const fault::FaultSimResult baseline =
      RunMini(ms, fault::FaultSimEngine::kDifferential);
  ASSERT_TRUE(baseline.run_status.ok());
  FailpointScope scope;
  ArmFailpoint("fault_sim.diff.shard", "throw@0");
  const fault::FaultSimResult injected =
      RunMini(ms, fault::FaultSimEngine::kDifferential);
  EXPECT_GT(FailpointHits("fault_sim.diff.shard"), 0u);
  EXPECT_TRUE(injected.run_status.ok()) << injected.run_status.Describe();
  EXPECT_EQ(injected.status, baseline.status);
  EXPECT_EQ(injected.first_detect_pattern, baseline.first_detect_pattern);
}

// A shard that keeps failing is quarantined: its faults stay kNotRun (never
// kUndetected — the campaign must not claim coverage it didn't earn) and
// the run reports partial failure instead of aborting.
TEST(FaultSimGuard, DifferentialPermanentShardFailureYieldsNotRunFaults) {
  MiniFaultSystem ms;
  FailpointScope scope;
  ArmFailpoint("fault_sim.diff.shard", "throw");
  const fault::FaultSimResult result =
      RunMini(ms, fault::FaultSimEngine::kDifferential);
  EXPECT_EQ(result.run_status.code, StatusCode::kPartialFailure);
  EXPECT_FALSE(result.run_status.failed_units.empty());
  for (std::size_t i = 0; i < ms.faults.size(); ++i) {
    EXPECT_EQ(result.status[i], fault::FaultStatus::kNotRun);
  }
}

// Guard-trip semantics match the other engines: undecided faults map to
// kNotRun, not to a fabricated verdict, and the trip code is surfaced.
TEST(FaultSimGuard, DifferentialExpiredDeadlineMapsUndecidedToNotRun) {
  MiniFaultSystem ms;
  fault::FaultSimRequest request{ms.nl, {ms.plan, 0xACE1, 16}, ms.faults,
                                 fault::FaultSimEngine::kDifferential};
  request.limits = ExpiredDeadline();
  const fault::FaultSimResult result = fault::RunFaultSim(request);
  EXPECT_EQ(result.run_status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.CountWithStatus(fault::FaultStatus::kNotRun),
            ms.faults.size());
}

struct MiniPowerSystem {
  Netlist nl;
  fault::TestPlan plan;
  MiniPowerSystem() {
    const GateId a0 = nl.AddInput("a0");
    const GateId a1 = nl.AddInput("a1");
    const GateId x =
        nl.AddGate(GateKind::kXor, ModuleTag::kDatapath, {{a0, a1}});
    const GateId n = nl.AddGate(GateKind::kNot, ModuleTag::kDatapath, {{x}});
    nl.AddOutput(n, "o");
    plan.operand_bits = {{a0, a1}};
    plan.cycles_per_pattern = 2;
    plan.strobe_cycles = {1};
    plan.observe = {n};
  }
};

TEST(PowerGuard, McBatchFailpointIsRetriedWithIdenticalEstimate) {
  MiniPowerSystem ms;
  const power::PowerModel model(ms.nl, power::TechModel::Vsc450());
  power::MonteCarloConfig cfg;
  cfg.rel_tol = 0.01;
  const power::PowerResult baseline =
      power::EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  FailpointScope scope;
  ArmFailpoint("power.mc_batch", "throw@0");
  const power::PowerResult injected =
      power::EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  EXPECT_TRUE(injected.run_status.ok()) << injected.run_status.Describe();
  EXPECT_DOUBLE_EQ(injected.breakdown.datapath_uw,
                   baseline.breakdown.datapath_uw);
  EXPECT_EQ(injected.batches, baseline.batches);
}

TEST(PowerGuard, AllMcBatchesFailingDegradesToZeroEstimate) {
  MiniPowerSystem ms;
  const power::PowerModel model(ms.nl, power::TechModel::Vsc450());
  power::MonteCarloConfig cfg;
  cfg.min_batches = 2;
  cfg.max_batches = 8;
  FailpointScope scope;
  ArmFailpoint("power.mc_batch", "throw");
  const power::PowerResult result =
      power::EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  EXPECT_EQ(result.run_status.code, StatusCode::kPartialFailure);
  EXPECT_EQ(result.batches, 0);
  EXPECT_EQ(result.breakdown.datapath_uw, 0.0);
  EXPECT_EQ(result.run_status.failed_units.size(), 8u);
}

TEST(PowerGuard, TestSetBatchFailpointIsRetriedWithIdenticalResult) {
  MiniPowerSystem ms;
  const power::PowerModel model(ms.nl, power::TechModel::Vsc450());
  const fault::StimulusSpec stim{ms.plan, tpg::kTestSetSeed1, 256};
  const power::PowerResult baseline =
      power::MeasureTestSetPower(ms.nl, stim, model, {}, {});
  FailpointScope scope;
  ArmFailpoint("power.test_set_batch", "throw@0");
  const power::PowerResult injected =
      power::MeasureTestSetPower(ms.nl, stim, model, {}, {});
  EXPECT_TRUE(injected.run_status.ok()) << injected.run_status.Describe();
  EXPECT_DOUBLE_EQ(injected.breakdown.datapath_uw,
                   baseline.breakdown.datapath_uw);
}

TEST(PowerGuard, McDeadlineReturnsPartialConvergence) {
  MiniPowerSystem ms;
  const power::PowerModel model(ms.nl, power::TechModel::Vsc450());
  power::MonteCarloConfig cfg;
  cfg.limits = ExpiredDeadline();
  const power::PowerResult result =
      power::EstimatePowerMonteCarlo(ms.nl, ms.plan, model, cfg);
  EXPECT_EQ(result.run_status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.batches, 0);
}

// --- pipeline degradation ----------------------------------------------------

core::PipelineConfig FastConfig() {
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = 100;
  cfg.exec.threads = 2;
  return cfg;
}

// Acceptance: a pipeline run under a ~1 ms deadline returns a partial
// ClassificationReport with RunStatus kDeadlineExceeded — no throw, no
// crash, every unfinished fault explicitly kUndecided.
TEST(PipelineGuard, MillisecondDeadlineYieldsPartialReport) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  core::PipelineConfig cfg = FastConfig();
  cfg.limits.max_wall_ms = 1.0;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);
  EXPECT_EQ(report.run_status.code, StatusCode::kDeadlineExceeded);
  EXPECT_GT(report.undecided, 0u);
  EXPECT_EQ(report.metrics.undecided, report.undecided);
  EXPECT_EQ(report.sfi_sim + report.sfi_potential + report.sfi_analysis +
                report.cfr + report.sfr + report.undecided,
            report.total);
  // The summary names the degradation; the CSV still renders every fault.
  EXPECT_NE(report.Summary().find("UNDECIDED"), std::string::npos);
  EXPECT_FALSE(core::ClassificationCsv(report).empty());
}

TEST(PipelineGuard, CycleBudgetTripsAsBudgetExhausted) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  core::PipelineConfig cfg = FastConfig();
  cfg.limits.max_sim_cycles = 50;
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);
  EXPECT_EQ(report.run_status.code, StatusCode::kBudgetExhausted);
  EXPECT_GT(report.undecided, 0u);
}

// Acceptance: a single-shot failpoint in each pipeline-reachable stage is
// absorbed by quarantine + retry, leaving the report byte-identical to the
// uninjected run.
TEST(PipelineGuard, SingleShotFailpointInEachStageLeavesReportIdentical) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const core::ClassificationReport baseline =
      core::ClassifyControllerFaults(d.system, d.hls, FastConfig());
  ASSERT_TRUE(baseline.run_status.ok());
  const std::string baseline_csv = core::ClassificationCsv(baseline);

  for (const char* stage : {"fault_sim.diff.shard", "pipeline.step3.trace",
                            "pipeline.step4.decider"}) {
    FailpointScope scope;
    ArmFailpoint(stage, "throw@0");
    const core::ClassificationReport injected =
        core::ClassifyControllerFaults(d.system, d.hls, FastConfig());
    EXPECT_GT(FailpointHits(stage), 0u) << stage;
    EXPECT_TRUE(injected.run_status.ok())
        << stage << ": " << injected.run_status.Describe();
    EXPECT_EQ(core::ClassificationCsv(injected), baseline_csv) << stage;
    ClearFailpoints();
  }
}

TEST(PipelineGuard, PermanentDeciderFailureMarksFaultsUndecided) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const core::ClassificationReport baseline =
      core::ClassifyControllerFaults(d.system, d.hls, FastConfig());
  const std::size_t step4_faults = baseline.sfr + baseline.sfi_analysis;
  ASSERT_GT(step4_faults, 0u);

  FailpointScope scope;
  ArmFailpoint("pipeline.step4.decider", "throw");  // retry fails too
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, FastConfig());
  EXPECT_EQ(report.run_status.code, StatusCode::kPartialFailure);
  EXPECT_EQ(report.undecided, step4_faults);
  EXPECT_EQ(report.run_status.failed_units.size(), step4_faults);
  EXPECT_EQ(report.sfr, 0u);
  EXPECT_EQ(report.sfi_analysis, 0u);
  // Every other class is untouched by the step-4 failure.
  EXPECT_EQ(report.sfi_sim, baseline.sfi_sim);
  EXPECT_EQ(report.sfi_potential, baseline.sfi_potential);
  EXPECT_EQ(report.cfr, baseline.cfr);
}

TEST(PipelineGuard, QuarantineCountersTickWhenObsEnabled) {
  obs::Registry& reg = obs::Registry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t quarantined0 =
      reg.CounterValue("guard.quarantined_units");
  const std::uint64_t retries0 = reg.CounterValue("guard.retries");
  const std::uint64_t successes0 = reg.CounterValue("guard.retry_successes");
  const std::uint64_t fires0 = reg.CounterValue("guard.failpoint_fires");

  {
    MiniFaultSystem ms;
    FailpointScope scope;
    ArmFailpoint("fault_sim.shard", "throw@0");
    const fault::FaultSimResult result =
        RunMini(ms, fault::FaultSimEngine::kParallel);
    EXPECT_TRUE(result.run_status.ok());
  }

  EXPECT_GT(reg.CounterValue("guard.quarantined_units"), quarantined0);
  EXPECT_GT(reg.CounterValue("guard.retries"), retries0);
  EXPECT_GT(reg.CounterValue("guard.retry_successes"), successes0);
  EXPECT_GT(reg.CounterValue("guard.failpoint_fires"), fires0);
  reg.set_enabled(was_enabled);
}

}  // namespace
}  // namespace pfd::guard
