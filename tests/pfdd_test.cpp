// Tests for the pfdd daemon stack (src/pfdd): the framing protocol, the
// request/response codec, the service seam (ExecuteJob), and a real Server
// on a loopback socket — concurrent mixed jobs byte-identical to solo CLI
// runs, per-request guard isolation, admission control, per-request
// RunReport isolation, and the graceful drain.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "designs/designs.hpp"
#include "exec/exec.hpp"
#include "obs/obs.hpp"
#include "pfdd/client.hpp"
#include "pfdd/protocol.hpp"
#include "pfdd/server.hpp"
#include "pfdd/service.hpp"
#include "xcheck/xcheck.hpp"

namespace pfd::pfdd {
namespace {

// ---------------------------------------------------------------- protocol

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloadsIncludingEmpty) {
  for (const std::string payload :
       {std::string("classify design=diffeq"), std::string(""),
        std::string(4096, 'x')}) {
    ASSERT_TRUE(WriteFrame(fds_[0], payload));
    std::string got;
    ASSERT_EQ(ReadFrame(fds_[1], &got), ReadResult::kOk);
    EXPECT_EQ(got, payload);
  }
}

TEST_F(FramePair, CleanCloseIsEofNotError) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string got;
  EXPECT_EQ(ReadFrame(fds_[1], &got), ReadResult::kEof);
}

TEST_F(FramePair, StrayHttpClientFailsLoudlyOnMagic) {
  const char http[] = "GET / HTTP/1.1\r\n";
  ASSERT_EQ(::send(fds_[0], http, sizeof http - 1, 0),
            static_cast<ssize_t>(sizeof http - 1));
  std::string got;
  EXPECT_EQ(ReadFrame(fds_[1], &got), ReadResult::kBadMagic);
}

TEST_F(FramePair, OversizedLengthRejectedBeforeAllocation) {
  const unsigned char header[8] = {'P', 'F', 'D', '1', 0xff, 0xff, 0xff,
                                   0xff};
  ASSERT_EQ(::send(fds_[0], header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  std::string got;
  EXPECT_EQ(ReadFrame(fds_[1], &got), ReadResult::kTooLarge);
}

TEST_F(FramePair, MidFrameEofIsError) {
  const unsigned char header[8] = {'P', 'F', 'D', '1', 100, 0, 0, 0};
  ASSERT_EQ(::send(fds_[0], header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  ::close(fds_[0]);  // promised 100 bytes, delivered none
  fds_[0] = -1;
  std::string got;
  EXPECT_EQ(ReadFrame(fds_[1], &got), ReadResult::kError);
}

TEST(RequestCodec, RoundTripPreservesOrder) {
  Request req;
  req.command = "classify";
  req.params = {{"design", "diffeq"}, {"width", "4"}, {"patterns", "120"}};
  Request back;
  std::string err;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(req), &back, &err)) << err;
  EXPECT_EQ(back.command, "classify");
  ASSERT_EQ(back.params.size(), 3u);
  EXPECT_EQ(*back.Find("design"), "diffeq");
  EXPECT_EQ(*back.Find("patterns"), "120");
  EXPECT_EQ(back.Find("missing"), nullptr);
}

TEST(RequestCodec, MalformedLinesAreRejectedWithReason) {
  Request req;
  std::string err;
  EXPECT_FALSE(DecodeRequest("", &req, &err));
  EXPECT_FALSE(DecodeRequest("   ", &req, &err));
  EXPECT_FALSE(DecodeRequest("classify design", &req, &err));
  EXPECT_NE(err.find("key=value"), std::string::npos);
  EXPECT_FALSE(DecodeRequest("classify a=1 a=2", &req, &err));
  EXPECT_NE(err.find("repeated"), std::string::npos);
  EXPECT_FALSE(DecodeRequest("classify =x", &req, &err));
}

TEST(ResponseCodec, RoundTripsSectionsWithNewlines) {
  Response resp;
  resp.status = Status::kPartial;
  resp.exit_code = 3;
  resp.csv = "a,b\n1,2\n";
  resp.report = "{\n\"schema\":\"pfd.run_report\"\n}\n";
  resp.message = "partial result: deadline\n";
  Response back;
  std::string err;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &back, &err)) << err;
  EXPECT_EQ(back.status, Status::kPartial);
  EXPECT_EQ(back.exit_code, 3);
  EXPECT_EQ(back.csv, resp.csv);
  EXPECT_EQ(back.report, resp.report);
  EXPECT_EQ(back.message, resp.message);
}

TEST(ResponseCodec, BodySizeMismatchRejected) {
  Response resp;
  resp.csv = "abc";
  std::string wire = EncodeResponse(resp);
  wire.pop_back();  // truncate the body
  Response back;
  std::string err;
  EXPECT_FALSE(DecodeResponse(wire, &back, &err));
  EXPECT_NE(err.find("size mismatch"), std::string::npos);
}

// ----------------------------------------------------------------- service

// The library-path equivalent of `pfdtool classify NAME --csv` — private
// pools, no service anywhere near it. This is the byte-identity oracle.
std::string SoloClassifyCsv(const std::string& design, int patterns,
                            int threads) {
  const designs::BenchmarkDesign d = designs::BuildDesignByName(design, 4);
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = patterns;
  cfg.exec.threads = threads;
  core::ApplyFeedbackGateCheckDefaults(d.system, &cfg);
  return core::ClassificationCsv(
      core::ClassifyControllerFaults(d.system, d.hls, cfg));
}

std::string SoloGradeCsv(const std::string& design, int patterns) {
  const designs::BenchmarkDesign d = designs::BuildDesignByName(design, 4);
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = patterns;
  cfg.exec.threads = 1;
  core::ApplyFeedbackGateCheckDefaults(d.system, &cfg);
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);
  core::GradeConfig gcfg;
  gcfg.mc.exec.threads = 1;
  return core::GradingCsv(core::GradeSfrFaults(d.system, report, gcfg));
}

Request ClassifyRequest(const std::string& design, int patterns) {
  Request req;
  req.command = "classify";
  req.params = {{"design", design}, {"patterns", std::to_string(patterns)}};
  return req;
}

TEST(Service, ClassifyIsByteIdenticalToSoloAcrossPoolThreads) {
  const std::string expected = SoloClassifyCsv("facet", 150, 1);
  ASSERT_FALSE(expected.empty());
  for (const int threads : {1, 2, 8}) {
    exec::Pool pool(MakeServicePoolOptions(threads));
    ServiceConfig config;
    config.pool = &pool;
    const Response resp = ExecuteJob(ClassifyRequest("facet", 150), config);
    EXPECT_EQ(resp.status, Status::kOk) << resp.message;
    EXPECT_EQ(resp.exit_code, 0);
    EXPECT_EQ(resp.csv, expected) << "threads=" << threads;
    EXPECT_NE(resp.report.find("\"schema\":\"pfd.run_report\""),
              std::string::npos);
  }
}

TEST(Service, GradeIsByteIdenticalToSolo) {
  const std::string expected = SoloGradeCsv("facet", 150);
  exec::Pool pool(MakeServicePoolOptions(4));
  ServiceConfig config;
  config.pool = &pool;
  Request req;
  req.command = "grade";
  req.params = {{"design", "facet"}, {"patterns", "150"}};
  const Response resp = ExecuteJob(req, config);
  EXPECT_EQ(resp.status, Status::kOk) << resp.message;
  EXPECT_EQ(resp.csv, expected);
}

TEST(Service, BadRequestsComeBackAsErrorNotCrash) {
  exec::Pool pool(MakeServicePoolOptions(2));
  ServiceConfig config;
  config.pool = &pool;
  const auto expect_error = [&](Request req, const char* needle) {
    const Response resp = ExecuteJob(req, config);
    EXPECT_EQ(resp.status, Status::kError);
    EXPECT_EQ(resp.exit_code, 1);
    EXPECT_NE(resp.message.find(needle), std::string::npos) << resp.message;
  };
  Request unknown_cmd;
  unknown_cmd.command = "explode";
  expect_error(unknown_cmd, "unknown command");
  expect_error(ClassifyRequest("nonesuch", 10), "unknown design");
  Request no_design;
  no_design.command = "classify";
  expect_error(no_design, "requires design=NAME");
  Request bad_param = ClassifyRequest("facet", 10);
  bad_param.params.emplace_back("threshold", "5");  // grade-only key
  expect_error(bad_param, "unknown parameter");
  Request bad_value = ClassifyRequest("facet", 10);
  bad_value.params[1].second = "12x";
  expect_error(bad_value, "not a non-negative integer");
}

// ------------------------------------------------------------------ server

struct LiveServer {
  explicit LiveServer(ServerOptions options) : server(options) {
    std::string err;
    ok = server.Start(&err);
    if (!ok) ADD_FAILURE() << "server start failed: " << err;
  }
  Connection Connect() {
    std::string err;
    Connection conn = Connection::ConnectTcp(server.port(), &err);
    if (!conn.ok()) ADD_FAILURE() << err;
    return conn;
  }
  Server server;
  bool ok = false;
};

// The ISSUE acceptance bar: >= 8 concurrent mixed jobs, every response
// byte-identical to the solo CLI-equivalent run, all sharing one pool.
TEST(ServerTest, EightConcurrentMixedJobsAreByteIdenticalToSolo) {
  const std::string classify_expected = SoloClassifyCsv("facet", 120, 1);
  const std::string grade_expected = SoloGradeCsv("facet", 120);
  xcheck::XcheckConfig xcfg;
  xcfg.seed = 7;
  xcfg.iters = 12;
  const xcheck::XcheckResult xr = xcheck::RunXcheck(xcfg);
  ASSERT_EQ(xr.miscompares, 0u);
  const std::string xcheck_expected =
      "xcheck: " + std::to_string(xr.cases_run) +
      "/12 cases clean (seed 7)\n";

  ServerOptions options;
  options.service_threads = 8;
  options.pool_threads = 4;
  LiveServer live(options);
  ASSERT_TRUE(live.ok);

  struct JobSpec {
    Request request;
    const std::string* expected;
  };
  Request grade_req;
  grade_req.command = "grade";
  grade_req.params = {{"design", "facet"}, {"patterns", "120"}};
  Request xcheck_req;
  xcheck_req.command = "xcheck";
  xcheck_req.params = {{"seed", "7"}, {"iters", "12"}};
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({ClassifyRequest("facet", 120), &classify_expected});
  }
  jobs.push_back({grade_req, &grade_expected});
  jobs.push_back({grade_req, &grade_expected});
  jobs.push_back({xcheck_req, &xcheck_expected});
  jobs.push_back({xcheck_req, &xcheck_expected});

  std::vector<std::thread> threads;
  std::vector<Response> responses(jobs.size());
  std::vector<std::string> errors(jobs.size());
  threads.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    threads.emplace_back([&, i]() {
      Connection conn = live.Connect();
      if (!conn.ok()) return;
      if (!conn.Call(jobs[i].request, &responses[i], &errors[i])) {
        responses[i].status = Status::kError;
        responses[i].message = errors[i];
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(responses[i].status, Status::kOk)
        << "job " << i << ": " << responses[i].message;
    EXPECT_EQ(responses[i].csv, *jobs[i].expected) << "job " << i;
    EXPECT_NE(responses[i].report.find("\"schema\":\"pfd.run_report\""),
              std::string::npos)
        << "job " << i;
  }
  live.server.Stop();
}

// Pulls "name":value out of a report's top-level counters section (the
// last occurrence — the metrics section embeds a counters object too).
std::uint64_t ReportCounter(const std::string& report,
                            const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = report.rfind(needle);
  if (at == std::string::npos) return 0;
  return static_cast<std::uint64_t>(
      std::strtoull(report.c_str() + at + needle.size(), nullptr, 10));
}

// Satellite 3: each served RunReport must reflect only its own request's
// work. Two identical classifies run concurrently; a report rendered from
// the process-global registry would show roughly DOUBLE the solo cycle
// count, a scoped one shows exactly the solo count in both.
TEST(ServerTest, RunReportsReflectOnlyTheirOwnRequest) {
  ServerOptions options;
  options.service_threads = 2;
  options.pool_threads = 2;
  LiveServer live(options);
  ASSERT_TRUE(live.ok);

  // Solo baseline through the same server, with no concurrency.
  Connection warm = live.Connect();
  Response solo;
  std::string err;
  ASSERT_TRUE(warm.Call(ClassifyRequest("facet", 120), &solo, &err)) << err;
  const std::uint64_t solo_cycles =
      ReportCounter(solo.report, "logicsim.cycles");
  ASSERT_GT(solo_cycles, 0u);

  Response a, b;
  std::thread ta([&]() {
    Connection conn = live.Connect();
    std::string e;
    conn.Call(ClassifyRequest("facet", 120), &a, &e);
  });
  std::thread tb([&]() {
    Connection conn = live.Connect();
    std::string e;
    conn.Call(ClassifyRequest("facet", 120), &b, &e);
  });
  ta.join();
  tb.join();

  // Identical requests, identical (warm) golden-cache state: with scoped
  // reports each sees exactly its own work. A report rendered from the
  // process-global registry would show cumulative totals instead — the
  // later finisher at roughly solo + the other request's work.
  const std::uint64_t a_cycles = ReportCounter(a.report, "logicsim.cycles");
  const std::uint64_t b_cycles = ReportCounter(b.report, "logicsim.cycles");
  EXPECT_GT(a_cycles, 0u);
  EXPECT_EQ(a_cycles, b_cycles);
  // Cache hits can only shave cycles relative to the cold solo run; any
  // cross-request accumulation would push past the solo count.
  EXPECT_LE(a_cycles, solo_cycles);
  EXPECT_LE(b_cycles, solo_cycles);
  // Server-side telemetry (acceptor/worker threads, outside any request
  // scope) must not leak into a request's report — anywhere in it,
  // including the embedded metrics section.
  EXPECT_EQ(solo.report.find("pfdd.accepted"), std::string::npos);
  EXPECT_EQ(a.report.find("pfdd.accepted"), std::string::npos);
  EXPECT_EQ(b.report.find("pfdd.accepted"), std::string::npos);
  live.server.Stop();
}

// Satellite coverage: a guard-tripped request degrades to `partial` (exit
// 3, report present) while a concurrent untripped request still returns
// its full byte-identical result.
TEST(ServerTest, TrippedRequestIsPartialWithoutPoisoningNeighbors) {
  const std::string expected = SoloClassifyCsv("facet", 120, 1);
  ServerOptions options;
  options.service_threads = 2;
  options.pool_threads = 2;
  LiveServer live(options);
  ASSERT_TRUE(live.ok);

  Request doomed = ClassifyRequest("facet", 120);
  doomed.params.emplace_back("deadline_ms", "0.001");
  Response tripped, healthy;
  std::thread ta([&]() {
    Connection conn = live.Connect();
    std::string e;
    conn.Call(doomed, &tripped, &e);
  });
  std::thread tb([&]() {
    Connection conn = live.Connect();
    std::string e;
    conn.Call(ClassifyRequest("facet", 120), &healthy, &e);
  });
  ta.join();
  tb.join();

  EXPECT_EQ(tripped.status, Status::kPartial) << tripped.message;
  EXPECT_EQ(tripped.exit_code, 3);
  EXPECT_NE(tripped.report.find("\"schema\":\"pfd.run_report\""),
            std::string::npos);
  EXPECT_EQ(healthy.status, Status::kOk) << healthy.message;
  EXPECT_EQ(healthy.csv, expected);
  live.server.Stop();
}

TEST(ServerTest, AdmissionControlRejectsWhenQueueIsFull) {
  ServerOptions options;
  options.service_threads = 1;
  options.queue_capacity = 1;
  options.pool_threads = 1;
  LiveServer live(options);
  ASSERT_TRUE(live.ok);

  // Occupy the one worker with a sleeping ping...
  Request slow;
  slow.command = "ping";
  slow.params = {{"sleep_ms", "1500"}};
  Response slow_resp;
  std::thread occupant([&]() {
    Connection conn = live.Connect();
    std::string e;
    conn.Call(slow, &slow_resp, &e);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // ...fill the one queue slot with a second connection (its request is a
  // plain ping — what matters is that the fd sits in the queue)...
  Request ping;
  ping.command = "ping";
  Connection queued = live.Connect();
  const bool queued_sent = WriteFrame(queued.fd(), EncodeRequest(ping));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so the third is turned away at admission, not enqueued forever. The
  // acceptor answers `rejected` unprompted and closes — read, don't Call.
  Connection conn = live.Connect();
  std::string payload;
  const ReadResult rr = ReadFrame(conn.fd(), &payload);
  Response resp;
  std::string err;
  const bool decoded =
      rr == ReadResult::kOk && DecodeResponse(payload, &resp, &err);

  occupant.join();
  ASSERT_TRUE(queued_sent);
  ASSERT_EQ(rr, ReadResult::kOk);
  ASSERT_TRUE(decoded) << err;
  EXPECT_EQ(resp.status, Status::kRejected);
  EXPECT_NE(resp.message.find("queue full"), std::string::npos);
  EXPECT_EQ(slow_resp.message, "pong\n");
  live.server.Stop();
}

TEST(ServerTest, DrainFinishesInFlightWorkThenStops) {
  ServerOptions options;
  options.service_threads = 1;
  options.pool_threads = 1;
  LiveServer live(options);
  ASSERT_TRUE(live.ok);

  Request slow;
  slow.command = "ping";
  slow.params = {{"sleep_ms", "600"}};
  Response in_flight;
  std::string in_flight_err;
  bool in_flight_ok = false;
  std::thread occupant([&]() {
    Connection conn = live.Connect();
    in_flight_ok = conn.Call(slow, &in_flight, &in_flight_err);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  live.server.RequestDrain();
  const std::uint64_t served = live.server.Wait();
  occupant.join();

  // The in-flight request completed and its response flushed.
  ASSERT_TRUE(in_flight_ok) << in_flight_err;
  EXPECT_EQ(in_flight.message, "pong\n");
  EXPECT_GE(served, 1u);

  // The listener is gone: new connections are refused outright.
  std::string err;
  Connection post = Connection::ConnectTcp(live.server.port(), &err);
  EXPECT_FALSE(post.ok());
}

TEST(ServerTest, MetricsCommandExposesServerCounters) {
  ServerOptions options;
  options.service_threads = 1;
  options.pool_threads = 1;
  LiveServer live(options);
  ASSERT_TRUE(live.ok);

  Connection conn = live.Connect();
  Request ping;
  ping.command = "ping";
  Response resp;
  std::string err;
  ASSERT_TRUE(conn.Call(ping, &resp, &err)) << err;

  Request metrics;
  metrics.command = "metrics";
  ASSERT_TRUE(conn.Call(metrics, &resp, &err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_NE(resp.message.find("pfdd.accepted"), std::string::npos);
  EXPECT_NE(resp.message.find("pfdd.served"), std::string::npos);
  EXPECT_NE(resp.message.find("pfdd.request_us.count"), std::string::npos);
  live.server.Stop();
}

}  // namespace
}  // namespace pfd::pfdd
