// Tests for the Quine-McCluskey two-level minimiser, including a
// parameterised random-function property sweep: every cover must match the
// specified function exactly on the care set.
#include <gtest/gtest.h>

#include <bit>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "synth/qm.hpp"

namespace pfd::synth {
namespace {

// Checks cover == spec on all care minterms; DC minterms may go either way.
void ExpectCoverMatches(const TwoLevelSpec& spec,
                        const std::vector<Cube>& cover) {
  for (std::uint32_t m = 0; m < (1u << spec.num_inputs); ++m) {
    if (spec.table[m] == Trit::kX) continue;
    EXPECT_EQ(EvalSop(cover, m), spec.table[m] == Trit::kOne)
        << "minterm " << m;
  }
}

TEST(Qm, ConstantFunctions) {
  TwoLevelSpec spec;
  spec.num_inputs = 3;
  spec.table.assign(8, Trit::kZero);
  EXPECT_TRUE(MinimizeSop(spec).empty());

  spec.table.assign(8, Trit::kOne);
  const auto cover = MinimizeSop(spec);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0u);  // tautology cube
}

TEST(Qm, DontCaresAllowTautology) {
  TwoLevelSpec spec;
  spec.num_inputs = 2;
  spec.table = {Trit::kOne, Trit::kX, Trit::kX, Trit::kOne};
  const auto cover = MinimizeSop(spec);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0u);
}

TEST(Qm, ClassicTextbookExample) {
  // f = sum m(0,1,2,5,6,7) over 3 vars: minimal SOP has 3 two-literal terms
  // or equivalent; cover must be correct and smaller than the minterm list.
  TwoLevelSpec spec;
  spec.num_inputs = 3;
  spec.table.assign(8, Trit::kZero);
  for (int m : {0, 1, 2, 5, 6, 7}) spec.table[m] = Trit::kOne;
  const auto cover = MinimizeSop(spec);
  ExpectCoverMatches(spec, cover);
  EXPECT_LE(cover.size(), 4u);
  EXPECT_LE(LiteralCount(cover), 8u);
}

TEST(Qm, XorNeedsAllMinterms) {
  TwoLevelSpec spec;
  spec.num_inputs = 2;
  spec.table = {Trit::kZero, Trit::kOne, Trit::kOne, Trit::kZero};
  const auto cover = MinimizeSop(spec);
  ExpectCoverMatches(spec, cover);
  EXPECT_EQ(cover.size(), 2u);  // XOR has no 2-level reduction
  EXPECT_EQ(LiteralCount(cover), 4u);
}

TEST(Qm, SingleMintermWithDcNeighborsShrinks) {
  TwoLevelSpec spec;
  spec.num_inputs = 4;
  spec.table.assign(16, Trit::kZero);
  spec.table[5] = Trit::kOne;
  spec.table[7] = Trit::kX;
  spec.table[13] = Trit::kX;
  const auto cover = MinimizeSop(spec);
  ExpectCoverMatches(spec, cover);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_LT(std::popcount(cover[0].mask), 4);  // merged with a DC neighbour
}

TEST(Qm, DeterministicOutput) {
  TwoLevelSpec spec;
  spec.num_inputs = 4;
  spec.table.assign(16, Trit::kZero);
  for (int m : {1, 3, 7, 9, 11, 15}) spec.table[m] = Trit::kOne;
  spec.table[5] = Trit::kX;
  EXPECT_EQ(MinimizeSop(spec), MinimizeSop(spec));
}

TEST(Qm, RejectsMalformedSpecs) {
  TwoLevelSpec spec;
  spec.num_inputs = 3;
  spec.table.assign(4, Trit::kZero);  // wrong size
  EXPECT_THROW(MinimizeSop(spec), pfd::Error);
}

// ---- property sweep: random functions with don't-cares -------------------

struct QmSweepParam {
  int num_inputs;
  double dc_fraction;
};

class QmRandomSweep : public ::testing::TestWithParam<QmSweepParam> {};

TEST_P(QmRandomSweep, CoverAlwaysMatchesCareSet) {
  const auto [n, dc_fraction] = GetParam();
  Rng rng(0xFACADE + n * 1000 +
          static_cast<std::uint64_t>(dc_fraction * 100));
  for (int trial = 0; trial < 60; ++trial) {
    TwoLevelSpec spec;
    spec.num_inputs = n;
    spec.table.resize(1u << n);
    std::size_t minterms = 0;
    for (auto& t : spec.table) {
      if (rng.Chance(dc_fraction)) {
        t = Trit::kX;
      } else if (rng.Chance(0.5)) {
        t = Trit::kOne;
        ++minterms;
      } else {
        t = Trit::kZero;
      }
    }
    const auto cover = MinimizeSop(spec);
    ExpectCoverMatches(spec, cover);
    // A valid minimisation never needs more cubes than ON minterms.
    EXPECT_LE(cover.size(), std::max<std::size_t>(minterms, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QmRandomSweep,
    ::testing::Values(QmSweepParam{2, 0.0}, QmSweepParam{3, 0.2},
                      QmSweepParam{4, 0.0}, QmSweepParam{4, 0.3},
                      QmSweepParam{5, 0.25}, QmSweepParam{6, 0.4},
                      QmSweepParam{7, 0.5}),
    [](const ::testing::TestParamInfo<QmSweepParam>& info) {
      return "n" + std::to_string(info.param.num_inputs) + "_dc" +
             std::to_string(static_cast<int>(info.param.dc_fraction * 100));
    });

}  // namespace
}  // namespace pfd::synth
