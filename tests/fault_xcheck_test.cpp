// Tests for the fault-engine differential harness: the campaign generator,
// the three-engine sweep, greedy campaign shrinking, and the mutation-
// testing proof that the harness catches every planted differential-engine
// bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/fault_sim.hpp"
#include "guard/guard.hpp"
#include "netlist/netlist.hpp"
#include "obs/obs.hpp"
#include "xcheck/fault_xcheck.hpp"
#include "xcheck/gen.hpp"
#include "xcheck/xcheck.hpp"

namespace pfd::xcheck {
namespace {

using netlist::GateKind;

// Restores failpoint state even when an assertion bails out of a test.
struct FailpointGuard {
  ~FailpointGuard() {
    guard::ClearFailpoints();
    guard::ArmFailpointsFromEnv();
  }
};

XcheckConfig SmokeConfig() {
  XcheckConfig cfg;
  cfg.seed = 0xFA17;
  cfg.iters = 150;
  return cfg;
}

// --- campaign generator --------------------------------------------------

TEST(FaultCaseGenerator, ProducesWellFormedCampaignsAcrossSeeds) {
  const GenConfig gen;
  for (std::uint32_t i = 0; i < 200; ++i) {
    Rng rng(CaseSeed(0xFA17, i));
    const FaultCase fc = GenerateFaultCase(rng, gen);

    // The circuit itself obeys the Scenario invariants.
    Scenario shell;
    shell.nodes = fc.nodes;
    netlist::Netlist nl = BuildNetlist(shell);
    ASSERT_NO_THROW(nl.Validate()) << "case " << i;

    // The plan fields reference the circuit coherently.
    ASSERT_GE(fc.num_patterns, 1) << "case " << i;
    ASSERT_FALSE(fc.observe.empty()) << "case " << i;
    ASSERT_FALSE(fc.strobe_cycles.empty()) << "case " << i;
    for (const int s : fc.strobe_cycles) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, fc.cycles_per_pattern) << "case " << i;
    }
    if (fc.reset_node != FaultCase::kNoNode) {
      ASSERT_EQ(fc.nodes[fc.reset_node].kind, GateKind::kInput);
    }
    for (const auto& op : fc.operand_bits) {
      for (const std::uint32_t b : op) {
        ASSERT_EQ(fc.nodes[b].kind, GateKind::kInput) << "case " << i;
      }
    }
    for (const fault::StuckFault& f : fc.faults) {
      ASSERT_LT(f.gate, fc.nodes.size()) << "case " << i;
    }
    // And it materializes into a plan the engines accept.
    ASSERT_NO_THROW((void)BuildTestPlan(fc)) << "case " << i;
  }
}

TEST(FaultCaseGenerator, DeterministicInSeed) {
  const GenConfig gen;
  Rng a(42), b(42);
  EXPECT_EQ(FaultCaseToCpp(GenerateFaultCase(a, gen)),
            FaultCaseToCpp(GenerateFaultCase(b, gen)));
}

// --- three-engine sweep --------------------------------------------------

TEST(FaultXcheck, CleanSweepHasZeroMiscompares) {
  obs::Registry& reg = obs::Registry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t runs_before = reg.CounterValue("fault_xcheck.runs");

  const XcheckConfig cfg = SmokeConfig();
  const FaultXcheckResult r = RunFaultXcheck(cfg);
  EXPECT_EQ(r.cases_run, cfg.iters);
  EXPECT_EQ(r.miscompares, 0u)
      << "case index " << r.failing_case_index << " (seed "
      << r.failing_case_seed << "): " << r.failure_detail << "\n"
      << r.repro_cpp;
  EXPECT_EQ(reg.CounterValue("fault_xcheck.runs") - runs_before, cfg.iters);
  reg.set_enabled(was_enabled);
}

// --- mutation testing ----------------------------------------------------

TEST(FaultXcheck, MutationModeCatchesEveryPlantedEngineBug) {
  FailpointGuard restore;
  const MutationResult mr = RunFaultMutationCheck(SmokeConfig());
  ASSERT_EQ(mr.mutations.size(),
            std::size(fault::kFaultSimMutationFailpoints));
  for (const auto& pm : mr.mutations) {
    EXPECT_TRUE(pm.detected)
        << pm.name << " survived " << pm.cases_to_detect << " cases";
  }
  EXPECT_TRUE(mr.all_detected);
}

TEST(FaultXcheck, ShrinkerReducesPlantedMiscompareToTinyRepro) {
  FailpointGuard restore;
  guard::ClearFailpoints();
  guard::ArmFailpoint("fault_sim.diff.premature_drop", "flag");

  XcheckConfig cfg = SmokeConfig();
  cfg.shrink = true;
  const FaultXcheckResult r = RunFaultXcheck(cfg);
  ASSERT_EQ(r.miscompares, 1u) << "planted bug not detected";
  EXPECT_LE(r.repro.faults.size(), 2u) << r.repro_cpp;
  EXPECT_LE(r.repro.nodes.size(), 12u) << r.repro_cpp;
  EXPECT_GT(r.shrink_steps, 0u);
  // The shrunk campaign still reproduces the planted miscompare...
  EXPECT_FALSE(RunFaultCase(r.repro).ok);
  // ...and the emitted repro is a pasteable test body.
  EXPECT_NE(r.repro_cpp.find("pfd::xcheck::RunFaultCase"), std::string::npos);
  EXPECT_NE(r.repro_cpp.find("fc.nodes"), std::string::npos);

  // With the mutation disarmed the repro passes: the divergence was the
  // planted bug, not a harness artefact.
  guard::ClearFailpoints();
  const CaseResult clean = RunFaultCase(r.repro);
  EXPECT_TRUE(clean.ok) << clean.detail;
}

}  // namespace
}  // namespace pfd::xcheck
