// End-to-end tests of the Section-5 classification pipeline, the power
// grader, and the worst-case composer — including ground-truth
// cross-validation: every fault the pipeline calls SFR must be
// indistinguishable from fault-free over the exhaustive input sweep, and
// the paper's analytic (Section 3) rules must agree with the sound deciders
// in their sound direction.
#include <gtest/gtest.h>

#include <set>

#include "analysis/classify.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/worstcase.hpp"
#include "designs/designs.hpp"

namespace pfd::core {
namespace {

using designs::BenchmarkDesign;

class PipelineOnPoly : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new BenchmarkDesign(designs::BuildPoly(4));
    PipelineConfig cfg;
    cfg.tpgr_patterns = 600;  // faster than the default, still thorough
    report_ = new ClassificationReport(
        ClassifyControllerFaults(design_->system, design_->hls, cfg));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete report_;
    design_ = nullptr;
    report_ = nullptr;
  }
  static BenchmarkDesign* design_;
  static ClassificationReport* report_;
};

BenchmarkDesign* PipelineOnPoly::design_ = nullptr;
ClassificationReport* PipelineOnPoly::report_ = nullptr;

TEST_F(PipelineOnPoly, EveryFaultGetsExactlyOneClass) {
  EXPECT_EQ(report_->total, report_->records.size());
  EXPECT_EQ(report_->total, report_->sfi_sim + report_->sfi_potential +
                                report_->sfi_analysis + report_->cfr +
                                report_->sfr);
  std::size_t sfr = 0;
  for (const FaultRecord& r : report_->records) {
    if (r.cls == FaultClass::kSfr) ++sfr;
    EXPECT_FALSE(r.name.empty());
  }
  EXPECT_EQ(sfr, report_->sfr);
  EXPECT_EQ(report_->SfrFaults().size(), report_->sfr);
  EXPECT_FALSE(report_->Summary().empty());
}

TEST_F(PipelineOnPoly, MetricsMirrorTheClassificationBreakdown) {
  const PipelineMetrics& m = report_->metrics;
  EXPECT_EQ(m.faults_total, report_->total);
  EXPECT_EQ(m.sfi_sim, report_->sfi_sim);
  EXPECT_EQ(m.sfi_potential, report_->sfi_potential);
  EXPECT_EQ(m.sfi_analysis, report_->sfi_analysis);
  EXPECT_EQ(m.cfr, report_->cfr);
  EXPECT_EQ(m.sfr, report_->sfr);
  EXPECT_EQ(m.sfi_sim + m.sfi_potential + m.sfi_analysis + m.cfr + m.sfr,
            m.faults_total);

  // Wall times are always collected; the stage buckets are contained in the
  // total (allow scheduling slack).
  EXPECT_GT(m.wall_ms_total, 0.0);
  EXPECT_LE(m.step1_ms + m.step2_ms + m.step3_ms + m.step4_ms,
            m.wall_ms_total * 1.5 + 1.0);

  // The pipeline issued at least the step-1 fault sim plus the golden
  // trace, and one trace extraction per undetected fault.
  EXPECT_EQ(m.tpgr_patterns, 600);
  const std::size_t undetected =
      report_->total - report_->sfi_sim - report_->sfi_potential;
  EXPECT_EQ(m.trace_extractions, undetected + 1);
  EXPECT_GE(m.sim_invocations, m.trace_extractions + 1);
  EXPECT_GE(m.symbolic_checks + m.gate_checks, undetected - report_->cfr);
}

TEST_F(PipelineOnPoly, SfrShareIsInThePaperBand) {
  // Paper Table 2: 13.0% - 20.3% across the three examples. Allow a wide
  // but meaningful band: SFR faults exist and remain a clear minority.
  EXPECT_GT(report_->sfr, 0u);
  EXPECT_GT(report_->PercentSfr(), 5.0);
  EXPECT_LT(report_->PercentSfr(), 33.0);
}

TEST_F(PipelineOnPoly, CfiFaultsCarryEffects) {
  for (const FaultRecord& r : report_->records) {
    if (r.cls == FaultClass::kSfr || r.cls == FaultClass::kSfiAnalysis) {
      EXPECT_FALSE(r.effects.empty()) << r.name;
      for (const auto& ce : r.effects) {
        EXPECT_FALSE(ce.description.empty());
      }
    }
    if (r.cls == FaultClass::kCfr) {
      EXPECT_TRUE(r.effects.empty()) << r.name;
    }
  }
}

// Ground truth: an SFR verdict must survive the exhaustive gate-level sweep
// (this is the definition of system-functional redundancy).
TEST_F(PipelineOnPoly, SfrVerdictsSurviveExhaustiveSweep) {
  analysis::GateCheckConfig cfg;  // poly 4-bit: 20 input bits => exhaustive
  for (const FaultRecord& r : report_->records) {
    if (r.cls != FaultClass::kSfr) continue;
    const analysis::GateCheck check =
        analysis::GateLevelSfrCheck(design_->system, r.fault, cfg);
    EXPECT_TRUE(check.exhaustive);
    EXPECT_FALSE(check.difference_found) << r.name;
  }
}

// Conversely, simulation-detected faults must show a difference.
TEST_F(PipelineOnPoly, DetectedFaultsShowDifferences) {
  analysis::GateCheckConfig cfg;
  int checked = 0;
  for (const FaultRecord& r : report_->records) {
    if (r.cls != FaultClass::kSfiSim) continue;
    if (++checked > 10) break;  // a sample is enough; the sweep is heavy
    const analysis::GateCheck check =
        analysis::GateLevelSfrCheck(design_->system, r.fault, cfg);
    EXPECT_TRUE(check.difference_found) << r.name;
  }
  EXPECT_GT(checked, 0);
}

// The paper's analytic Section-3 rules, in their sound direction: if every
// control-line effect of a fault is locally redundant, the fault is SFR.
TEST_F(PipelineOnPoly, AnalyticSfrVerdictsAreSound) {
  for (const FaultRecord& r : report_->records) {
    if (r.cls == FaultClass::kSfiSim || r.cls == FaultClass::kSfiPotential ||
        r.cls == FaultClass::kCfr) {
      continue;  // no effect analysis recorded for these
    }
    if (r.analytic_verdict == analysis::LocalVerdict::kSfr) {
      EXPECT_EQ(r.cls, FaultClass::kSfr) << r.name;
    }
  }
}

TEST_F(PipelineOnPoly, SymbolicProofsDominateSfrDecisions) {
  // The symbolic decider should prove the overwhelming majority of SFR
  // faults without falling back to the exhaustive sweep.
  std::size_t proven = 0;
  for (const FaultRecord& r : report_->records) {
    if (r.cls == FaultClass::kSfr && r.symbolically_proven) ++proven;
  }
  EXPECT_GT(proven, report_->sfr / 2);
}

TEST_F(PipelineOnPoly, DeterministicAcrossRuns) {
  PipelineConfig cfg;
  cfg.tpgr_patterns = 600;
  const ClassificationReport again =
      ClassifyControllerFaults(design_->system, design_->hls, cfg);
  ASSERT_EQ(again.records.size(), report_->records.size());
  for (std::size_t i = 0; i < again.records.size(); ++i) {
    EXPECT_EQ(again.records[i].cls, report_->records[i].cls)
        << report_->records[i].name;
  }
}

TEST(PipelineCfr, DanglingControllerLogicIsCfr) {
  // Append functionally dead controller logic: its faults never reach any
  // control line, so the pipeline must classify them CFR (step 3).
  BenchmarkDesign d = designs::BuildPoly(4);
  const std::size_t before = d.system.nl.size();
  const netlist::GateId dead = d.system.nl.AddGate(
      netlist::GateKind::kAnd, netlist::ModuleTag::kController,
      {{d.system.line_nets[0], d.system.line_nets[1]}}, "dead");
  (void)dead;
  PipelineConfig cfg;
  cfg.tpgr_patterns = 200;
  const ClassificationReport report =
      ClassifyControllerFaults(d.system, d.hls, cfg);
  EXPECT_GT(report.cfr, 0u);
  for (const FaultRecord& r : report.records) {
    if (r.fault.gate >= before) {
      EXPECT_EQ(r.cls, FaultClass::kCfr) << r.name;
    }
  }
}

// --- grading -------------------------------------------------------------------

TEST_F(PipelineOnPoly, GradingProducesBaselineAndOrderedGroups) {
  GradeConfig cfg;
  const PowerGradeReport graded =
      GradeSfrFaults(design_->system, *report_, cfg);
  EXPECT_GT(graded.fault_free_uw, 0.0);
  EXPECT_EQ(graded.faults.size(), report_->sfr);
  for (const GradedFault& gf : graded.faults) {
    EXPECT_GT(gf.power_uw, 0.0);
    EXPECT_EQ(gf.outside_band,
              std::abs(gf.percent_change) > cfg.threshold_percent);
  }
  // Figure-7 order: select-only first, then load-line; sorted within groups.
  const auto order = graded.Figure7Order();
  ASSERT_EQ(order.size(), graded.faults.size());
  bool seen_load = false;
  double prev_power = -1.0;
  for (const GradedFault* gf : order) {
    if (gf->record->touches_load_line) {
      if (!seen_load) {
        seen_load = true;
        prev_power = -1.0;  // group boundary resets the sort check
      }
    } else {
      EXPECT_FALSE(seen_load) << "select-only fault after load group";
    }
    EXPECT_GE(gf->power_uw, prev_power);
    prev_power = gf->power_uw;
  }
}

TEST_F(PipelineOnPoly, ExtraLoadFaultsIncreasePower) {
  // Section 4: "in the case of SFR faults affecting register load lines, we
  // are guaranteed that power consumption will increase."
  GradeConfig cfg;
  const PowerGradeReport graded =
      GradeSfrFaults(design_->system, *report_, cfg);
  int load_only = 0;
  for (const GradedFault& gf : graded.faults) {
    bool pure_extra_load = !gf.record->effects.empty();
    for (const auto& ce : gf.record->effects) {
      if (ce.category != analysis::EffectCategory::kExtraLoadIdle &&
          ce.category != analysis::EffectCategory::kExtraLoadInLifespan) {
        pure_extra_load = false;
      }
    }
    if (pure_extra_load) {
      ++load_only;
      EXPECT_GT(gf.percent_change, 0.0) << gf.record->name;
    }
  }
  EXPECT_GT(load_only, 0);
}

TEST_F(PipelineOnPoly, ThresholdMonotonicity) {
  GradeConfig strict;
  strict.threshold_percent = 2.0;
  GradeConfig loose;
  loose.threshold_percent = 10.0;
  const auto strict_report =
      GradeSfrFaults(design_->system, *report_, strict);
  const auto loose_report = GradeSfrFaults(design_->system, *report_, loose);
  EXPECT_GE(strict_report.DetectedCount(), loose_report.DetectedCount());
}

// --- worst case -----------------------------------------------------------------

TEST(WorstCase, PerturbationIsVerifiedAndIncreasesPower) {
  const BenchmarkDesign d = designs::BuildPoly(4);
  GradeConfig cfg;
  const WorstCaseResult w = ComposeWorstCase(d.system, d.hls, cfg);
  EXPECT_TRUE(w.verified_equivalent);
  EXPECT_GT(w.extra_loads, 0);
  EXPECT_GT(w.select_flips, 0);
  EXPECT_GT(w.percent_change, 10.0);
  EXPECT_GT(w.perturbed_uw, w.base_uw);
}

TEST(WorstCase, PerturbedSystemStaysFunctionallyCorrect) {
  // Belt and braces beyond the symbolic proof: the perturbed gate-level
  // system must produce the same outputs as the original on random data.
  const BenchmarkDesign d = designs::BuildDiffeq(4);
  GradeConfig cfg;
  rtl::ControlSpec spec = d.system.control_spec;
  const WorstCaseResult w = ComposeWorstCase(d.system, d.hls, cfg);
  ASSERT_TRUE(w.verified_equivalent);
}

}  // namespace
}  // namespace pfd::core
