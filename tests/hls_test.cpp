// Tests for the high-level synthesis pass: DFG validation, scheduling under
// resource constraints, lifespan computation, left-edge register binding,
// FU binding, control-spec extraction, and load-line merging.
#include <gtest/gtest.h>

#include <set>

#include "designs/designs.hpp"
#include "hls/dfg.hpp"
#include "hls/hls.hpp"

namespace pfd::hls {
namespace {

using rtl::FuKind;

Dfg SimpleDfg(int width = 4) {
  Dfg dfg(width);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  const ValueRef c = dfg.AddInput("c");
  const ValueRef t1 = dfg.AddOp("t1", FuKind::kAdd, a, b);
  const ValueRef t2 = dfg.AddOp("t2", FuKind::kMul, t1, c);
  const ValueRef t3 = dfg.AddOp("t3", FuKind::kAdd, t2, a);
  dfg.AddOutput("o", t3);
  return dfg;
}

TEST(Dfg, RejectsDeadOpsAndInputs) {
  Dfg dfg(4);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  dfg.AddOp("dead", FuKind::kAdd, a, b);
  const ValueRef used = dfg.AddOp("used", FuKind::kMul, a, b);
  dfg.AddOutput("o", used);
  EXPECT_THROW(dfg.Validate(), Error);
}

TEST(Dfg, RejectsCompareFeedingAnOp) {
  Dfg dfg(4);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  const ValueRef lt = dfg.AddOp("lt", FuKind::kLess, a, b);
  EXPECT_THROW(dfg.AddOp("bad", FuKind::kAdd, lt, a), Error);
  dfg.AddOutput("c", lt);
  EXPECT_NO_THROW(dfg.Validate());
}

TEST(Dfg, CompareResultsAreOneBit) {
  Dfg dfg(4);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef lt = dfg.AddOp("lt", FuKind::kLess, a, a);
  EXPECT_EQ(dfg.ValueWidth(lt), 1);
  EXPECT_EQ(dfg.ValueWidth(a), 4);
}

TEST(Schedule, RespectsDataDependencies) {
  const Dfg dfg = SimpleDfg();
  const HlsResult r = RunHls(dfg, HlsConfig{});
  // t2 consumes t1; t3 consumes t2.
  EXPECT_LT(r.op_step[0], r.op_step[1]);
  EXPECT_LT(r.op_step[1], r.op_step[2]);
  for (int s : r.op_step) {
    EXPECT_GE(s, 1);
    EXPECT_LE(s, r.num_steps);
  }
}

TEST(Schedule, RespectsResourceBounds) {
  // Four independent adds with a 2-adder budget need two steps.
  Dfg dfg(4);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  std::vector<ValueRef> sums;
  for (int i = 0; i < 4; ++i) {
    sums.push_back(dfg.AddOp("s" + std::to_string(i), FuKind::kAdd, a, b));
    dfg.AddOutput("o" + std::to_string(i), sums.back());
  }
  HlsConfig cfg;
  cfg.resources = {{FuKind::kAdd, 2}};
  const HlsResult r = RunHls(dfg, cfg);
  EXPECT_EQ(r.num_steps, 2);
  for (int s = 1; s <= r.num_steps; ++s) {
    int per_step = 0;
    for (int st : r.op_step) {
      if (st == s) ++per_step;
    }
    EXPECT_LE(per_step, 2);
  }
}

TEST(Schedule, MaxOpsPerStepStretchesSchedule) {
  const Dfg dfg = designs::MakeDiffeqDfg(4);
  HlsConfig parallel = designs::DiffeqConfig();
  parallel.max_ops_per_step = 0;
  HlsConfig serial = designs::DiffeqConfig();
  serial.max_ops_per_step = 1;
  const HlsResult rp = RunHls(dfg, parallel);
  const HlsResult rs = RunHls(dfg, serial);
  EXPECT_GT(rs.num_steps, rp.num_steps);
  EXPECT_EQ(rs.num_steps, static_cast<int>(dfg.ops().size()));
}

TEST(Binding, LifespansFollowTheScheduleAndOutputsPersist) {
  const Dfg dfg = SimpleDfg();
  const HlsResult r = RunHls(dfg, HlsConfig{});
  for (const Variable& v : r.variables) {
    if (v.value.kind == ValueRef::Kind::kInput) {
      EXPECT_EQ(v.def_step, 0);
    }
    if (v.last_use != Variable::kPersist) {
      EXPECT_GE(v.last_use, v.def_step);
    }
  }
  // The output variable persists through HOLD.
  EXPECT_EQ(r.VarOf(ValueRef::Op(2)).last_use, Variable::kPersist);
}

TEST(Binding, NoTwoLiveVariablesShareARegister) {
  for (bool sharing : {true, false}) {
    HlsConfig cfg = designs::DiffeqConfig();
    cfg.register_sharing = sharing;
    const HlsResult r = RunHls(designs::MakeDiffeqDfg(4), cfg);
    for (std::size_t reg = 0; reg < r.reg_variables.size(); ++reg) {
      const auto& vars = r.reg_variables[reg];
      for (std::size_t i = 0; i < vars.size(); ++i) {
        for (std::size_t j = i + 1; j < vars.size(); ++j) {
          const Variable& u = r.variables[vars[i]];
          const Variable& v = r.variables[vars[j]];
          const int u_end =
              u.last_use == Variable::kPersist ? 1 << 22 : u.last_use;
          const int v_end =
              v.last_use == Variable::kPersist ? 1 << 22 : v.last_use;
          // Lifespans must not overlap: one ends before the other begins.
          EXPECT_TRUE(u_end <= v.def_step || v_end <= u.def_step)
              << u.name << " and " << v.name << " overlap in REG" << reg;
        }
      }
    }
  }
}

TEST(Binding, NoSharingGivesOneRegisterPerVariable) {
  HlsConfig cfg;
  cfg.register_sharing = false;
  const HlsResult r = RunHls(SimpleDfg(), cfg);
  EXPECT_EQ(r.datapath.regs().size(), r.variables.size());
  for (const auto& vars : r.reg_variables) {
    EXPECT_EQ(vars.size(), 1u);
  }
}

TEST(Binding, FuBindingNeverDoubleBooksAnInstance) {
  for (bool spread : {false, true}) {
    HlsConfig cfg = designs::DiffeqConfig();
    cfg.spread_fu_binding = spread;
    const HlsResult r = RunHls(designs::MakeDiffeqDfg(4), cfg);
    for (int s = 1; s <= r.num_steps; ++s) {
      std::set<std::uint32_t> used;
      for (std::size_t o = 0; o < r.op_step.size(); ++o) {
        if (r.op_step[o] != s) continue;
        EXPECT_TRUE(used.insert(r.op_fu[o]).second)
            << "FU double-booked in step " << s;
      }
    }
  }
}

TEST(Binding, SpreadingUsesMoreInstances) {
  HlsConfig cfg = designs::DiffeqConfig();
  cfg.spread_fu_binding = false;
  const HlsResult packed = RunHls(designs::MakeDiffeqDfg(4), cfg);
  cfg.spread_fu_binding = true;
  const HlsResult spread = RunHls(designs::MakeDiffeqDfg(4), cfg);
  std::set<std::uint32_t> packed_fus(packed.op_fu.begin(),
                                     packed.op_fu.end());
  std::set<std::uint32_t> spread_fus(spread.op_fu.begin(),
                                     spread.op_fu.end());
  EXPECT_GT(spread_fus.size(), packed_fus.size());
}

TEST(ControlSpec, StructureMatchesSchedule) {
  const HlsResult r = RunHls(SimpleDfg(), HlsConfig{});
  r.control.Validate();
  EXPECT_EQ(r.control.NumStates(), r.num_steps + 2);
  EXPECT_EQ(r.control.state_names.front(), "RESET");
  EXPECT_EQ(r.control.state_names.back(), "HOLD");
  // HOLD loads nothing.
  for (std::uint8_t l : r.control.states.back().load) {
    EXPECT_EQ(l, 0);
  }
  // Every op's result register loads exactly in the op's step.
  for (std::size_t o = 0; o < r.op_step.size(); ++o) {
    const Variable& v = r.VarOf(ValueRef::Op(static_cast<std::uint32_t>(o)));
    int line = -1;
    for (std::size_t li = 0; li < r.load_map.regs_of_line.size(); ++li) {
      for (std::uint32_t reg : r.load_map.regs_of_line[li]) {
        if (reg == v.reg) line = static_cast<int>(li);
      }
    }
    ASSERT_GE(line, 0);
    EXPECT_EQ(r.control.states[r.op_step[o]].load[line], 1);
  }
}

TEST(ControlSpec, SelectsAreCareExactlyWhenUsed) {
  const HlsResult r = RunHls(designs::MakeDiffeqDfg(4),
                             designs::DiffeqConfig());
  // In HOLD, every select is a don't-care.
  for (const auto& sel : r.control.states.back().select) {
    EXPECT_FALSE(sel.has_value());
  }
  // Each mux has at least one care state (otherwise it would not exist).
  for (int m = 0; m < r.control.num_muxes; ++m) {
    bool any = false;
    for (const auto& st : r.control.states) {
      if (st.select[m].has_value()) any = true;
    }
    EXPECT_TRUE(any) << "mux " << m << " never used";
  }
}

TEST(LoadLines, MergingGroupsIdenticalColumns) {
  Dfg dfg(4);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  // Two ops forced into the same step share a load column.
  const ValueRef t1 = dfg.AddOp("t1", FuKind::kAdd, a, b);
  const ValueRef t2 = dfg.AddOp("t2", FuKind::kMul, a, b);
  dfg.AddOutput("o1", t1);
  dfg.AddOutput("o2", t2);
  HlsConfig cfg;
  cfg.resources = {{FuKind::kAdd, 1}, {FuKind::kMul, 1}};
  cfg.merge_load_lines = true;
  const HlsResult merged = RunHls(dfg, cfg);
  cfg.merge_load_lines = false;
  const HlsResult split = RunHls(dfg, cfg);
  EXPECT_LT(merged.load_map.NumLines(), split.load_map.NumLines());
  EXPECT_EQ(split.load_map.NumLines(),
            static_cast<int>(split.datapath.regs().size()));
  // Every register appears on exactly one line in both.
  for (const HlsResult* r : {&merged, &split}) {
    std::set<std::uint32_t> seen;
    for (const auto& regs : r->load_map.regs_of_line) {
      for (std::uint32_t reg : regs) {
        EXPECT_TRUE(seen.insert(reg).second);
      }
    }
    EXPECT_EQ(seen.size(), r->datapath.regs().size());
  }
}

TEST(LoadLines, FacetHasSharedLoadLines) {
  // The paper: "the facet example has several sets of registers that load in
  // parallel, and are driven by the same load line."
  const HlsResult r =
      RunHls(designs::MakeFacetDfg(4), designs::FacetConfig());
  bool any_shared = false;
  for (const auto& regs : r.load_map.regs_of_line) {
    if (regs.size() > 1) any_shared = true;
  }
  EXPECT_TRUE(any_shared);
}

TEST(BindingReport, MentionsEveryRegister) {
  const HlsResult r = RunHls(SimpleDfg(), HlsConfig{});
  const std::string report = r.BindingReport();
  for (const auto& reg : r.datapath.regs()) {
    EXPECT_NE(report.find(reg.name), std::string::npos);
  }
}

TEST(Benchmarks, PaperLikeShapes) {
  const HlsResult diffeq =
      RunHls(designs::MakeDiffeqDfg(4), designs::DiffeqConfig());
  EXPECT_GE(diffeq.datapath.regs().size(), 8u);
  EXPECT_EQ(diffeq.datapath.outputs().size(), 4u);  // x1, y1, u1, c

  const HlsResult poly =
      RunHls(designs::MakePolyDfg(4), designs::PolyConfig());
  // Poly's long lifespans: d is consumed only by the final add, so it stays
  // live across the entire schedule.
  const Variable& d = poly.VarOf(ValueRef::Input(3));
  EXPECT_EQ(d.last_use, poly.num_steps);
  EXPECT_EQ(d.def_step, 0);
}

}  // namespace
}  // namespace pfd::hls
