// Unit tests for the TPGR (LFSR) module.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tpg/lfsr.hpp"

namespace pfd::tpg {
namespace {

TEST(Lfsr, NeverReachesZeroState) {
  Lfsr l(0x12345678u);
  for (int i = 0; i < 100000; ++i) {
    l.NextBit();
    ASSERT_NE(l.state(), 0u);
  }
}

TEST(Lfsr, ZeroSeedIsCoerced) {
  Lfsr l(0);
  EXPECT_NE(l.state(), 0u);
}

TEST(Lfsr, LongPeriodNoEarlyRepeat) {
  Lfsr l(1);
  const std::uint32_t start = l.state();
  for (int i = 0; i < 200000; ++i) {
    l.NextBit();
    ASSERT_NE(l.state(), start) << "period shorter than " << i + 1;
  }
}

TEST(Lfsr, BitsAreBalanced) {
  Lfsr l(0xACE1u);
  int ones = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ones += static_cast<int>(l.NextBit());
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.5, 0.01);
}

TEST(Lfsr, DeterministicPerSeed) {
  Lfsr a(99), b(99), c(100);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t va = a.NextBits(8);
    EXPECT_EQ(va, b.NextBits(8));
    if (va != c.NextBits(8)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Tpgr, DealsOperandsOfRequestedWidths) {
  Tpgr t(0x5EED);
  const std::vector<int> widths = {4, 4, 1, 8};
  const auto pattern = t.NextPattern(widths);
  ASSERT_EQ(pattern.size(), widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    EXPECT_EQ(pattern[i].width(), widths[i]);
  }
}

TEST(Tpgr, StreamsAreReproducible) {
  Tpgr a(kTestSetSeed1), b(kTestSetSeed1);
  const std::vector<int> widths = {4, 4};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextPattern(widths), b.NextPattern(widths));
  }
}

TEST(Tpgr, CoversOperandSpace) {
  // A pseudo-random 4-bit stream should hit every value within a reasonable
  // number of draws.
  Tpgr t(kTestSetSeed2);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 400 && seen.size() < 16; ++i) {
    seen.insert(t.NextOperand(4).value());
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(PackBit, PacksLanewise) {
  std::vector<std::uint32_t> values(64);
  for (int i = 0; i < 64; ++i) values[i] = static_cast<std::uint32_t>(i);
  const Word3 bit0 = PackBit(values, 0);
  const Word3 bit5 = PackBit(values, 5);
  EXPECT_EQ(bit0.known, ~0ULL);
  for (int lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(GetLane(bit0, lane),
              (lane & 1) ? Trit::kOne : Trit::kZero);
    EXPECT_EQ(GetLane(bit5, lane),
              ((lane >> 5) & 1) ? Trit::kOne : Trit::kZero);
  }
}

TEST(PackBit, ShortVectorsReplicateLastValue) {
  std::vector<std::uint32_t> values = {0x1};
  const Word3 w = PackBit(values, 0);
  EXPECT_EQ(GetLane(w, 0), Trit::kOne);
  EXPECT_EQ(GetLane(w, 63), Trit::kOne);
}

TEST(Seeds, ThirdSeedIsNearZero) {
  // Table 3's third test set deliberately uses an almost-all-0s seed.
  EXPECT_EQ(kTestSetSeed3, 1u);
  EXPECT_NE(kTestSetSeed1, kTestSetSeed2);
}

}  // namespace
}  // namespace pfd::tpg
