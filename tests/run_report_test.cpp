// Tests for core::RunReportJson: the emitted artifact must parse as JSON,
// carry every schema-v1 top-level section, render the request fields with
// correct quoting, fold the guard RunStatus (including the failed-unit cap)
// in faithfully, and round-trip histograms/counters from the registry.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/run_report.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"
#include "test_json.hpp"

namespace pfd::core {
namespace {

using testutil::JsonObject;
using testutil::JsonParser;
using testutil::JsonValue;

class RegistryGuard {
 public:
  RegistryGuard() { Cleanup(); }
  ~RegistryGuard() { Cleanup(); }

 private:
  static void Cleanup() {
    obs::Registry::Global().set_enabled(false);
    obs::Registry::Global().ResetAll();
  }
};

JsonValue ParseReport(const RunReportInputs& inputs) {
  const std::string json = RunReportJson(inputs);
  JsonValue root;
  EXPECT_TRUE(JsonParser(json).Parse(root)) << json;
  EXPECT_TRUE(root.is_object());
  return root;
}

TEST(RunReport, CarriesEverySchemaV1Section) {
  RegistryGuard guard;
  RunReportInputs inputs;
  inputs.command = "classify";
  inputs.request.push_back(RequestStr("design", "diffeq"));
  inputs.request.push_back(RequestInt("threads", 4));
  inputs.exit_code = 0;

  const JsonValue root = ParseReport(inputs);
  const JsonObject& o = root.obj();
  for (const char* key :
       {"schema", "schema_version", "generated_unix_time", "provenance",
        "host", "request", "run_status", "metrics", "cache", "counters",
        "gauges", "histograms", "flight_recorder"}) {
    EXPECT_TRUE(o.count(key)) << "missing top-level key: " << key;
  }
  EXPECT_EQ(o.at("schema").str(), "pfd.run_report");
  EXPECT_EQ(o.at("schema_version").num(), kRunReportSchemaVersion);

  const JsonObject& prov = o.at("provenance").obj();
  for (const char* key : {"compiler", "compiler_version", "build_type",
                          "cxx_flags", "git_describe", "assertions_disabled"}) {
    EXPECT_TRUE(prov.count(key)) << "missing provenance key: " << key;
  }

  const JsonObject& req = o.at("request").obj();
  EXPECT_EQ(req.at("command").str(), "classify");
  EXPECT_EQ(req.at("design").str(), "diffeq");
  EXPECT_EQ(req.at("threads").num(), 4.0);

  // No metrics supplied: the section must be an explicit null, never
  // absent (additive-schema contract).
  EXPECT_TRUE(o.at("metrics").is_null());
}

TEST(RunReport, NullStatusReadsAsCleanOkRun) {
  RegistryGuard guard;
  RunReportInputs inputs;
  inputs.command = "xcheck";
  inputs.exit_code = 0;

  const JsonValue root = ParseReport(inputs);
  const JsonObject& rs = root.obj().at("run_status").obj();
  EXPECT_EQ(rs.at("code").str(), "ok");
  EXPECT_EQ(rs.at("exit_code").num(), 0.0);
  EXPECT_EQ(rs.at("failed_units").arr().size(), 0u);
  EXPECT_EQ(rs.at("failed_units_truncated").v, JsonValue{false}.v);
}

TEST(RunReport, RunStatusFoldsInFailuresAndCapsTheList) {
  RegistryGuard guard;
  guard::RunStatus status;
  status.code = guard::StatusCode::kPartialFailure;
  status.message = "2 units failed";
  status.total_units = 500;
  // 150 failures: the report lists at most 100 and flags the truncation.
  for (std::size_t i = 0; i < 150; ++i) {
    status.failed_units.push_back({i, "unit exploded: \"boom\""});
  }
  for (std::size_t i = 150; i < 500; ++i) status.completed.push_back(i);

  RunReportInputs inputs;
  inputs.command = "classify";
  inputs.exit_code = 3;
  inputs.run_status = &status;

  const JsonValue root = ParseReport(inputs);
  const JsonObject& rs = root.obj().at("run_status").obj();
  EXPECT_EQ(rs.at("code").str(), "partial-failure");
  EXPECT_EQ(rs.at("exit_code").num(), 3.0);
  EXPECT_EQ(rs.at("total_units").num(), 500.0);
  EXPECT_EQ(rs.at("completed_units").num(), 350.0);
  const auto& failed = rs.at("failed_units").arr();
  ASSERT_EQ(failed.size(), 100u);
  EXPECT_EQ(failed.at(0).obj().at("index").num(), 0.0);
  // The quoted message must survive JSON escaping.
  EXPECT_NE(failed.at(0).obj().at("what").str().find("\"boom\""),
            std::string::npos);
  EXPECT_EQ(rs.at("failed_units_truncated").v, JsonValue{true}.v);
}

TEST(RunReport, RequestHelpersQuoteCorrectly) {
  RegistryGuard guard;
  RunReportInputs inputs;
  inputs.command = "grade";
  inputs.request.push_back(RequestStr("path", "a\\b \"c\"\n"));
  inputs.request.push_back(RequestDouble("threshold", 0.25));
  inputs.request.push_back(RequestBool("shrink", true));

  const JsonValue root = ParseReport(inputs);
  const JsonObject& req = root.obj().at("request").obj();
  EXPECT_EQ(req.at("path").str(), "a\\b \"c\"\n");
  EXPECT_DOUBLE_EQ(req.at("threshold").num(), 0.25);
  EXPECT_EQ(req.at("shrink").v, JsonValue{true}.v);
}

TEST(RunReport, RegistrySnapshotLandsInTheReport) {
  RegistryGuard guard;
  obs::Registry& reg = obs::Registry::Global();
  reg.set_enabled(true);
  reg.GetCounter("report.test_counter").Add(7);
  obs::Histogram& h = reg.GetHistogram("report.test_hist_us");
  for (std::uint64_t v = 1; v <= 10; ++v) h.Record(v * 100);

  RunReportInputs inputs;
  inputs.command = "diagnose";
  const JsonValue root = ParseReport(inputs);
  const JsonObject& o = root.obj();

  EXPECT_EQ(o.at("counters").obj().at("report.test_counter").num(), 7.0);
  const JsonObject& hist = o.at("histograms").obj()
                               .at("report.test_hist_us").obj();
  EXPECT_EQ(hist.at("count").num(), 10.0);
  EXPECT_EQ(hist.at("min").num(), 100.0);
  EXPECT_EQ(hist.at("max").num(), 1000.0);
  EXPECT_LE(hist.at("p50").num(), hist.at("p99").num());
}

TEST(RunReport, WriteRunReportFileRoundTrips) {
  RegistryGuard guard;
  RunReportInputs inputs;
  inputs.command = "classify";
  inputs.request.push_back(RequestStr("design", "ewf"));

  const std::string path = ::testing::TempDir() + "pfd_run_report_test.json";
  ASSERT_TRUE(WriteRunReportFile(inputs, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  EXPECT_TRUE(JsonParser(buf.str()).Parse(root));
  EXPECT_EQ(root.obj().at("request").obj().at("design").str(), "ewf");
  std::remove(path.c_str());

  EXPECT_FALSE(WriteRunReportFile(inputs, "/nonexistent-dir/report.json"));
}

}  // namespace
}  // namespace pfd::core
