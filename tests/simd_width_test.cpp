// Width/backend equivalence matrix for the lane-widened engines.
//
// The widening contract (src/base/simd.hpp, DESIGN.md "SIMD lane
// widening"): lane width and SIMD backend are throughput knobs only. The
// classify and grade CSVs — and therefore every report built from them —
// must be byte-identical across widths {64, 256, 512}, across the scalar
// and best-available vector backends, and across thread counts. These
// tests pin that contract in-process, where the backend can be flipped
// between runs (simd::Active() re-reads the forced backend on every
// simulator construction).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/simd.hpp"
#include "ckpt/journal.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "designs/designs.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "logicsim/golden_cache.hpp"

namespace pfd {
namespace {

// Restores auto/env backend resolution no matter how the test exits.
struct BackendGuard {
  ~BackendGuard() { simd::ForceBackendName("auto"); }
};

std::string ClassifyCsv(const std::string& design, int patterns, int threads,
                        int lanes) {
  const designs::BenchmarkDesign d = designs::BuildDesignByName(design, 4);
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = patterns;
  cfg.exec.threads = threads;
  cfg.lanes = lanes;
  core::ApplyFeedbackGateCheckDefaults(d.system, &cfg);
  return core::ClassificationCsv(
      core::ClassifyControllerFaults(d.system, d.hls, cfg));
}

std::string GradeCsv(const std::string& design, int patterns, int lanes) {
  const designs::BenchmarkDesign d = designs::BuildDesignByName(design, 4);
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = patterns;
  cfg.exec.threads = 1;
  cfg.lanes = lanes;
  core::ApplyFeedbackGateCheckDefaults(d.system, &cfg);
  const core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);
  core::GradeConfig gcfg;
  gcfg.mc.exec.threads = 1;
  return core::GradingCsv(core::GradeSfrFaults(d.system, report, gcfg));
}

TEST(SimdWidth, ResolveLaneWordsMapsSupportedWidthsAndRejectsTheRest) {
  EXPECT_EQ(simd::ResolveLaneWords(64), 1);
  EXPECT_EQ(simd::ResolveLaneWords(256), 4);
  EXPECT_EQ(simd::ResolveLaneWords(512), 8);
  EXPECT_THROW(simd::ResolveLaneWords(128), pfd::Error);
  EXPECT_THROW(simd::ResolveLaneWords(65), pfd::Error);
  EXPECT_THROW(simd::ResolveLaneWords(-64), pfd::Error);
  EXPECT_THROW(simd::ResolveLaneWords(1024), pfd::Error);
}

TEST(SimdWidth, NaturalWidthFollowsTheBackend) {
  EXPECT_EQ(simd::NaturalLaneWords(simd::Backend::kScalar), 1);
  EXPECT_EQ(simd::NaturalLaneWords(simd::Backend::kAvx2), 4);
  EXPECT_EQ(simd::NaturalLaneWords(simd::Backend::kAvx512), 8);
  EXPECT_THROW(simd::ParseBackend("sse9"), pfd::Error);
}

TEST(SimdWidth, ForcedBackendIsHonouredAndRevertsToAuto) {
  BackendGuard guard;
  simd::ForceBackendName("scalar");
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  EXPECT_THROW(simd::ForceBackendName("neon"), pfd::Error);
  // A rejected force must not clobber the previous one.
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
}

// The full satellite matrix: widths x backends x thread counts, every cell
// byte-identical to the scalar 64-lane single-thread reference. "auto" is
// the best backend this binary+CPU supports (scalar again on a machine
// with no vector units — the cell then re-checks scalar, which is fine).
TEST(SimdWidth, ClassifyCsvIsByteIdenticalAcrossWidthsBackendsAndThreads) {
  BackendGuard guard;
  simd::ForceBackendName("scalar");
  const std::string expected = ClassifyCsv("facet", 100, 1, 64);
  ASSERT_FALSE(expected.empty());
  for (const char* backend : {"scalar", "auto"}) {
    simd::ForceBackendName(backend);
    for (const int lanes : {64, 256, 512}) {
      for (const int threads : {1, 2, 8}) {
        EXPECT_EQ(ClassifyCsv("facet", 100, threads, lanes), expected)
            << "backend=" << backend << " lanes=" << lanes
            << " threads=" << threads;
      }
    }
  }
}

TEST(SimdWidth, GradeCsvIsByteIdenticalAcrossWidths) {
  BackendGuard guard;
  simd::ForceBackendName("scalar");
  const std::string expected = GradeCsv("facet", 100, 64);
  ASSERT_FALSE(expected.empty());
  simd::ForceBackendName("auto");
  EXPECT_EQ(GradeCsv("facet", 100, 512), expected);
}

// Mixed-width golden-trace lookups must miss cleanly — the golden key
// folds the lane-word count, so a 256-lane campaign can never be served a
// 64-lane plane layout (which would alias: same netlist, same stimulus,
// different plane stride).
TEST(SimdWidth, MixedWidthGoldenCacheLookupsMissCleanlyNeverAlias) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  logicsim::GoldenTraceCache cache;

  const auto run = [&](int lanes) {
    fault::FaultSimRequest req{d.system.nl, {plan, 0xACE1, 200}, faults,
                               fault::FaultSimEngine::kDifferential};
    req.exec.threads = 1;
    req.golden_cache = &cache;
    req.lanes = lanes;
    return fault::RunFaultSim(req);
  };

  const fault::FaultSimResult narrow = run(64);
  const std::size_t after_narrow = cache.size();
  EXPECT_GT(after_narrow, 0u);

  const fault::FaultSimResult wide = run(256);
  // A distinct key per width: the wide run missed and inserted its own
  // entry instead of reusing (or clobbering) the 64-lane plane.
  EXPECT_GT(cache.size(), after_narrow);
  EXPECT_EQ(wide.status, narrow.status);
  EXPECT_EQ(wide.first_detect_pattern, narrow.first_detect_pattern);

  // Same width again: pure hit, no growth, same verdicts.
  const std::size_t after_wide = cache.size();
  const fault::FaultSimResult wide2 = run(256);
  EXPECT_EQ(cache.size(), after_wide);
  EXPECT_EQ(wide2.status, narrow.status);
}

// Checkpointed campaigns run the frozen 64-lane journal span framing; an
// explicit wider request alongside a journal is a contradiction and must
// be a hard error, not a silent downgrade.
TEST(SimdWidth, JournalRejectsAnExplicitWideLaneRequest) {
  const designs::BenchmarkDesign d = designs::BuildDiffeq(4);
  const auto all =
      fault::GenerateFaults(d.system.nl, netlist::ModuleTag::kController);
  const auto faults = fault::Collapse(d.system.nl, all).representatives;
  const fault::TestPlan plan = d.system.MakeTestPlan();
  const std::string path =
      ::testing::TempDir() + "/simd_width_journal.ckpt";
  const auto run = [&](int lanes) {
    std::unique_ptr<ckpt::Journal> journal = ckpt::Journal::Open(path, false);
    fault::FaultSimRequest req{d.system.nl, {plan, 0xACE1, 100}, faults};
    journal->Bind(ckpt::Binding{
        d.system.nl.StructuralHash(), fault::StimulusDigest(req.stimulus),
        static_cast<std::uint8_t>(req.engine)});
    req.exec.threads = 1;
    req.journal = journal.get();
    req.lanes = lanes;
    return fault::RunFaultSim(req);
  };
  EXPECT_THROW(run(256), pfd::Error);
  EXPECT_THROW(run(512), pfd::Error);
  // 64 (and auto) stay checkpointable.
  const fault::FaultSimResult ok = run(64);
  EXPECT_EQ(ok.run_status.code, guard::StatusCode::kOk);
}

}  // namespace
}  // namespace pfd
