# Empty compiler generated dependencies file for ablation_patterns.
# This may be replaced when dependencies are built.
