file(REMOVE_RECURSE
  "CMakeFiles/fault_dictionary.dir/fault_dictionary.cpp.o"
  "CMakeFiles/fault_dictionary.dir/fault_dictionary.cpp.o.d"
  "fault_dictionary"
  "fault_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
