# Empty compiler generated dependencies file for fault_dictionary.
# This may be replaced when dependencies are built.
