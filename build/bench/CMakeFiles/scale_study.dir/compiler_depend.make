# Empty compiler generated dependencies file for scale_study.
# This may be replaced when dependencies are built.
