# Empty compiler generated dependencies file for ablation_glitch.
# This may be replaced when dependencies are built.
