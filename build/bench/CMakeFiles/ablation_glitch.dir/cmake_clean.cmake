file(REMOVE_RECURSE
  "CMakeFiles/ablation_glitch.dir/ablation_glitch.cpp.o"
  "CMakeFiles/ablation_glitch.dir/ablation_glitch.cpp.o.d"
  "ablation_glitch"
  "ablation_glitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_glitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
