# Empty compiler generated dependencies file for worstcase_multifault.
# This may be replaced when dependencies are built.
