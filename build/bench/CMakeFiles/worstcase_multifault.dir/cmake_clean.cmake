file(REMOVE_RECURSE
  "CMakeFiles/worstcase_multifault.dir/worstcase_multifault.cpp.o"
  "CMakeFiles/worstcase_multifault.dir/worstcase_multifault.cpp.o.d"
  "worstcase_multifault"
  "worstcase_multifault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worstcase_multifault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
