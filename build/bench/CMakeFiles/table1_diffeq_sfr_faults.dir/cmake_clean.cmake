file(REMOVE_RECURSE
  "CMakeFiles/table1_diffeq_sfr_faults.dir/table1_diffeq_sfr_faults.cpp.o"
  "CMakeFiles/table1_diffeq_sfr_faults.dir/table1_diffeq_sfr_faults.cpp.o.d"
  "table1_diffeq_sfr_faults"
  "table1_diffeq_sfr_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_diffeq_sfr_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
