# Empty dependencies file for table1_diffeq_sfr_faults.
# This may be replaced when dependencies are built.
