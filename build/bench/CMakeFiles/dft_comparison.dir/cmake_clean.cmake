file(REMOVE_RECURSE
  "CMakeFiles/dft_comparison.dir/dft_comparison.cpp.o"
  "CMakeFiles/dft_comparison.dir/dft_comparison.cpp.o.d"
  "dft_comparison"
  "dft_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dft_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
