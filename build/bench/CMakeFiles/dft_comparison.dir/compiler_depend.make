# Empty compiler generated dependencies file for dft_comparison.
# This may be replaced when dependencies are built.
