# Empty dependencies file for fig7_power_scatter.
# This may be replaced when dependencies are built.
