file(REMOVE_RECURSE
  "CMakeFiles/fig7_power_scatter.dir/fig7_power_scatter.cpp.o"
  "CMakeFiles/fig7_power_scatter.dir/fig7_power_scatter.cpp.o.d"
  "fig7_power_scatter"
  "fig7_power_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_power_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
