file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitwidth.dir/ablation_bitwidth.cpp.o"
  "CMakeFiles/ablation_bitwidth.dir/ablation_bitwidth.cpp.o.d"
  "ablation_bitwidth"
  "ablation_bitwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
