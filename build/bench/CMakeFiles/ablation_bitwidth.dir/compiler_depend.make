# Empty compiler generated dependencies file for ablation_bitwidth.
# This may be replaced when dependencies are built.
