file(REMOVE_RECURSE
  "CMakeFiles/table3_testset_consistency.dir/table3_testset_consistency.cpp.o"
  "CMakeFiles/table3_testset_consistency.dir/table3_testset_consistency.cpp.o.d"
  "table3_testset_consistency"
  "table3_testset_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_testset_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
