# Empty compiler generated dependencies file for table3_testset_consistency.
# This may be replaced when dependencies are built.
