# Empty dependencies file for variation_analysis.
# This may be replaced when dependencies are built.
