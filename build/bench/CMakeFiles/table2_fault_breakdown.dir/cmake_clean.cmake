file(REMOVE_RECURSE
  "CMakeFiles/table2_fault_breakdown.dir/table2_fault_breakdown.cpp.o"
  "CMakeFiles/table2_fault_breakdown.dir/table2_fault_breakdown.cpp.o.d"
  "table2_fault_breakdown"
  "table2_fault_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fault_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
