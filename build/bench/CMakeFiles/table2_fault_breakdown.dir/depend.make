# Empty dependencies file for table2_fault_breakdown.
# This may be replaced when dependencies are built.
