file(REMOVE_RECURSE
  "CMakeFiles/loop_controller.dir/loop_controller.cpp.o"
  "CMakeFiles/loop_controller.dir/loop_controller.cpp.o.d"
  "loop_controller"
  "loop_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
