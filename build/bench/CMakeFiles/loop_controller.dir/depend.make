# Empty dependencies file for loop_controller.
# This may be replaced when dependencies are built.
