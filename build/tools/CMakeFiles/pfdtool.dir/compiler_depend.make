# Empty compiler generated dependencies file for pfdtool.
# This may be replaced when dependencies are built.
