file(REMOVE_RECURSE
  "CMakeFiles/pfdtool.dir/pfdtool.cpp.o"
  "CMakeFiles/pfdtool.dir/pfdtool.cpp.o.d"
  "pfdtool"
  "pfdtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
