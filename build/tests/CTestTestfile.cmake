# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/logicsim_test[1]_include.cmake")
include("/root/repo/build/tests/tpg_test[1]_include.cmake")
include("/root/repo/build/tests/qm_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dft_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/loop_test[1]_include.cmake")
include("/root/repo/build/tests/designs_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_property_test[1]_include.cmake")
