
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pfd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/pfd_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pfd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pfd_power.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/pfd_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pfd_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/pfd_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/pfd_logicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/tpg/CMakeFiles/pfd_tpg.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/pfd_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/pfd_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pfd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/pfd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
