# Empty dependencies file for tpg_test.
# This may be replaced when dependencies are built.
