# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("obs")
subdirs("netlist")
subdirs("logicsim")
subdirs("tpg")
subdirs("fault")
subdirs("power")
subdirs("rtl")
subdirs("synth")
subdirs("hls")
subdirs("designs")
subdirs("analysis")
subdirs("core")
