# Empty compiler generated dependencies file for pfd_core.
# This may be replaced when dependencies are built.
