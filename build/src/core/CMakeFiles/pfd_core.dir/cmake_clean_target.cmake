file(REMOVE_RECURSE
  "libpfd_core.a"
)
