file(REMOVE_RECURSE
  "CMakeFiles/pfd_core.dir/diagnosis.cpp.o"
  "CMakeFiles/pfd_core.dir/diagnosis.cpp.o.d"
  "CMakeFiles/pfd_core.dir/grading.cpp.o"
  "CMakeFiles/pfd_core.dir/grading.cpp.o.d"
  "CMakeFiles/pfd_core.dir/pipeline.cpp.o"
  "CMakeFiles/pfd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pfd_core.dir/report.cpp.o"
  "CMakeFiles/pfd_core.dir/report.cpp.o.d"
  "CMakeFiles/pfd_core.dir/variation.cpp.o"
  "CMakeFiles/pfd_core.dir/variation.cpp.o.d"
  "CMakeFiles/pfd_core.dir/worstcase.cpp.o"
  "CMakeFiles/pfd_core.dir/worstcase.cpp.o.d"
  "libpfd_core.a"
  "libpfd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
