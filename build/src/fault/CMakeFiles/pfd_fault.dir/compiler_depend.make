# Empty compiler generated dependencies file for pfd_fault.
# This may be replaced when dependencies are built.
