file(REMOVE_RECURSE
  "CMakeFiles/pfd_fault.dir/fault.cpp.o"
  "CMakeFiles/pfd_fault.dir/fault.cpp.o.d"
  "CMakeFiles/pfd_fault.dir/fault_sim.cpp.o"
  "CMakeFiles/pfd_fault.dir/fault_sim.cpp.o.d"
  "libpfd_fault.a"
  "libpfd_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
