file(REMOVE_RECURSE
  "libpfd_fault.a"
)
