# Empty dependencies file for pfd_netlist.
# This may be replaced when dependencies are built.
