file(REMOVE_RECURSE
  "libpfd_netlist.a"
)
