file(REMOVE_RECURSE
  "CMakeFiles/pfd_netlist.dir/netlist.cpp.o"
  "CMakeFiles/pfd_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/pfd_netlist.dir/opt.cpp.o"
  "CMakeFiles/pfd_netlist.dir/opt.cpp.o.d"
  "libpfd_netlist.a"
  "libpfd_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
