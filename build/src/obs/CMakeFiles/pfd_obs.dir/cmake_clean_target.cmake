file(REMOVE_RECURSE
  "libpfd_obs.a"
)
