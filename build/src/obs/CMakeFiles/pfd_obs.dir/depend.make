# Empty dependencies file for pfd_obs.
# This may be replaced when dependencies are built.
