file(REMOVE_RECURSE
  "CMakeFiles/pfd_obs.dir/obs.cpp.o"
  "CMakeFiles/pfd_obs.dir/obs.cpp.o.d"
  "CMakeFiles/pfd_obs.dir/trace.cpp.o"
  "CMakeFiles/pfd_obs.dir/trace.cpp.o.d"
  "libpfd_obs.a"
  "libpfd_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
