file(REMOVE_RECURSE
  "libpfd_base.a"
)
