
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/bitvec.cpp" "src/base/CMakeFiles/pfd_base.dir/bitvec.cpp.o" "gcc" "src/base/CMakeFiles/pfd_base.dir/bitvec.cpp.o.d"
  "/root/repo/src/base/error.cpp" "src/base/CMakeFiles/pfd_base.dir/error.cpp.o" "gcc" "src/base/CMakeFiles/pfd_base.dir/error.cpp.o.d"
  "/root/repo/src/base/text_table.cpp" "src/base/CMakeFiles/pfd_base.dir/text_table.cpp.o" "gcc" "src/base/CMakeFiles/pfd_base.dir/text_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
