# Empty dependencies file for pfd_base.
# This may be replaced when dependencies are built.
