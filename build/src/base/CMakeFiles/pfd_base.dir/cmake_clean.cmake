file(REMOVE_RECURSE
  "CMakeFiles/pfd_base.dir/bitvec.cpp.o"
  "CMakeFiles/pfd_base.dir/bitvec.cpp.o.d"
  "CMakeFiles/pfd_base.dir/error.cpp.o"
  "CMakeFiles/pfd_base.dir/error.cpp.o.d"
  "CMakeFiles/pfd_base.dir/text_table.cpp.o"
  "CMakeFiles/pfd_base.dir/text_table.cpp.o.d"
  "libpfd_base.a"
  "libpfd_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
