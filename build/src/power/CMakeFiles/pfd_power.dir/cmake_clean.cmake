file(REMOVE_RECURSE
  "CMakeFiles/pfd_power.dir/power_model.cpp.o"
  "CMakeFiles/pfd_power.dir/power_model.cpp.o.d"
  "CMakeFiles/pfd_power.dir/power_sim.cpp.o"
  "CMakeFiles/pfd_power.dir/power_sim.cpp.o.d"
  "libpfd_power.a"
  "libpfd_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
