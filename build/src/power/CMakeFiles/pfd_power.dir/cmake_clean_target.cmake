file(REMOVE_RECURSE
  "libpfd_power.a"
)
