# Empty compiler generated dependencies file for pfd_power.
# This may be replaced when dependencies are built.
