file(REMOVE_RECURSE
  "libpfd_tpg.a"
)
