# Empty compiler generated dependencies file for pfd_tpg.
# This may be replaced when dependencies are built.
