file(REMOVE_RECURSE
  "CMakeFiles/pfd_tpg.dir/lfsr.cpp.o"
  "CMakeFiles/pfd_tpg.dir/lfsr.cpp.o.d"
  "libpfd_tpg.a"
  "libpfd_tpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
