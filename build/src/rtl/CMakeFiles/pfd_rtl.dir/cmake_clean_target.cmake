file(REMOVE_RECURSE
  "libpfd_rtl.a"
)
