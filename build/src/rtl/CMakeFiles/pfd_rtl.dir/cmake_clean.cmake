file(REMOVE_RECURSE
  "CMakeFiles/pfd_rtl.dir/datapath.cpp.o"
  "CMakeFiles/pfd_rtl.dir/datapath.cpp.o.d"
  "CMakeFiles/pfd_rtl.dir/expr.cpp.o"
  "CMakeFiles/pfd_rtl.dir/expr.cpp.o.d"
  "CMakeFiles/pfd_rtl.dir/machine.cpp.o"
  "CMakeFiles/pfd_rtl.dir/machine.cpp.o.d"
  "libpfd_rtl.a"
  "libpfd_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
