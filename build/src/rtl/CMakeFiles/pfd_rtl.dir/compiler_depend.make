# Empty compiler generated dependencies file for pfd_rtl.
# This may be replaced when dependencies are built.
