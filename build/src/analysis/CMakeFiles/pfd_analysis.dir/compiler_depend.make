# Empty compiler generated dependencies file for pfd_analysis.
# This may be replaced when dependencies are built.
