file(REMOVE_RECURSE
  "libpfd_analysis.a"
)
