file(REMOVE_RECURSE
  "CMakeFiles/pfd_analysis.dir/classify.cpp.o"
  "CMakeFiles/pfd_analysis.dir/classify.cpp.o.d"
  "CMakeFiles/pfd_analysis.dir/effects.cpp.o"
  "CMakeFiles/pfd_analysis.dir/effects.cpp.o.d"
  "CMakeFiles/pfd_analysis.dir/trace.cpp.o"
  "CMakeFiles/pfd_analysis.dir/trace.cpp.o.d"
  "libpfd_analysis.a"
  "libpfd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
