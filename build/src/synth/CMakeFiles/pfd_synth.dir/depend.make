# Empty dependencies file for pfd_synth.
# This may be replaced when dependencies are built.
