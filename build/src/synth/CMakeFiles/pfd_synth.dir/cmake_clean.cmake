file(REMOVE_RECURSE
  "CMakeFiles/pfd_synth.dir/dft.cpp.o"
  "CMakeFiles/pfd_synth.dir/dft.cpp.o.d"
  "CMakeFiles/pfd_synth.dir/elaborate.cpp.o"
  "CMakeFiles/pfd_synth.dir/elaborate.cpp.o.d"
  "CMakeFiles/pfd_synth.dir/fsm.cpp.o"
  "CMakeFiles/pfd_synth.dir/fsm.cpp.o.d"
  "CMakeFiles/pfd_synth.dir/qm.cpp.o"
  "CMakeFiles/pfd_synth.dir/qm.cpp.o.d"
  "CMakeFiles/pfd_synth.dir/system.cpp.o"
  "CMakeFiles/pfd_synth.dir/system.cpp.o.d"
  "libpfd_synth.a"
  "libpfd_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
