file(REMOVE_RECURSE
  "libpfd_synth.a"
)
