file(REMOVE_RECURSE
  "libpfd_logicsim.a"
)
