file(REMOVE_RECURSE
  "CMakeFiles/pfd_logicsim.dir/simulator.cpp.o"
  "CMakeFiles/pfd_logicsim.dir/simulator.cpp.o.d"
  "CMakeFiles/pfd_logicsim.dir/vcd.cpp.o"
  "CMakeFiles/pfd_logicsim.dir/vcd.cpp.o.d"
  "libpfd_logicsim.a"
  "libpfd_logicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_logicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
