# Empty dependencies file for pfd_logicsim.
# This may be replaced when dependencies are built.
