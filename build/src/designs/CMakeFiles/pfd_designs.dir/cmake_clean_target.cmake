file(REMOVE_RECURSE
  "libpfd_designs.a"
)
