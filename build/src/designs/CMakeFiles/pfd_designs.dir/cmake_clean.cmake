file(REMOVE_RECURSE
  "CMakeFiles/pfd_designs.dir/designs.cpp.o"
  "CMakeFiles/pfd_designs.dir/designs.cpp.o.d"
  "libpfd_designs.a"
  "libpfd_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
