# Empty dependencies file for pfd_designs.
# This may be replaced when dependencies are built.
