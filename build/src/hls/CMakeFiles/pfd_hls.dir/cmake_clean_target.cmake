file(REMOVE_RECURSE
  "libpfd_hls.a"
)
