file(REMOVE_RECURSE
  "CMakeFiles/pfd_hls.dir/hls.cpp.o"
  "CMakeFiles/pfd_hls.dir/hls.cpp.o.d"
  "libpfd_hls.a"
  "libpfd_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfd_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
