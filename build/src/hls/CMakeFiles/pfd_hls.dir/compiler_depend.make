# Empty compiler generated dependencies file for pfd_hls.
# This may be replaced when dependencies are built.
