# Empty compiler generated dependencies file for custom_design.
# This may be replaced when dependencies are built.
