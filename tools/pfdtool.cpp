// pfdtool — command-line driver for the pfd library.
//
//   pfdtool list
//   pfdtool info     <design> [--width N]
//   pfdtool classify <design> [--width N] [--patterns N] [--csv]
//                    [--fault-engine parallel|serial|differential]
//                    [--checkpoint FILE [--resume]]
//   pfdtool grade    <design> [--width N] [--threshold PCT] [--csv]
//                    [--checkpoint FILE [--resume]]
//   pfdtool diagnose <design> <measured_uW> [--sigma PCT]
//   pfdtool dot      <design> [--width N]
//   pfdtool vcd      <design> [--fault INDEX] [--patterns N]
//   pfdtool xcheck   [--seed N] [--iters N] [--no-shrink] [--mutations]
//                    [--max-gates N] [--engines]
//   pfdtool serve    [--socket PATH | --port N] [--service-threads N]
//                    [--queue-capacity N] [--threads N] [--deadline-ms N]
//                    [--max-cycles N]
//   pfdtool call     "<command key=value ...>" (--socket PATH | --port N)
//                    [--report FILE]
//   pfdtool loadgen  (--socket PATH | --port N) [--jobs N] [--concurrency N]
//                    [--mix K1,K2,...] [--patterns N] [--width N] [--seed N]
//                    [--iters N] [--deadline-ms N] [--bench-json FILE]
//                    [--dump-dir DIR]
//
// serve runs the pfdd daemon (src/pfdd): classify/grade/xcheck jobs from
// many connections multiplexed onto ONE shared worker pool, each request
// getting its own guard budget and its own RunReport while the golden-trace
// cache is shared across all of them. SIGTERM/SIGINT drain gracefully:
// in-flight requests finish, late arrivals get `draining`, exit 0. call
// sends one request line and prints the response (`call metrics` scrapes
// the counter/gauge/histogram exposition). loadgen drives a deterministic
// mixed-job soak (one connection per job, seeded rotation) and records
// per-kind p50/p99 latency, optionally as google-benchmark-schema JSON
// (--bench-json, validated by bench/check_bench_json.py) with per-job
// CSV/report dumps for byte-identity and schema checks (--dump-dir).
//
// --fault-engine selects the step-1 fault-simulation engine (classify/
// grade/diagnose); the report is bit-identical across engines —
// differential is the fast production engine, serial the reference.
//
// xcheck fuzzes the compiled simulation kernel against a naive reference
// simulator (differential oracle; see DESIGN.md). A miscompare prints a
// shrunk, ready-to-paste repro and exits 1. --mutations instead arms each
// planted kernel bug (guard flag failpoints) and requires the harness to
// catch every one — exit 1 if any survives. --engines switches both modes
// to the fault-engine harness: generated fault campaigns are run through
// kDifferential / kParallel and compared against kSerial fault by fault
// (--engines --mutations arms the planted differential-engine bugs).
//
// Observability options (any command):
//   --trace FILE         write a Chrome trace_event JSON of the run; open
//                        it in chrome://tracing or ui.perfetto.dev
//   --metrics-json FILE  write metrics as JSON: pipeline commands (classify/
//                        grade/diagnose) get per-stage wall times and fault
//                        counts plus the full counter/gauge/histogram
//                        snapshot; every other command gets the snapshot
//   --report FILE        write a versioned RunReport JSON artifact: build
//                        provenance, host context, request, RunStatus,
//                        metrics, cache stats (tools/check_run_report.py
//                        validates the schema)
//   --flight-recorder FILE  write the flight-recorder event ring as JSONL;
//                        without this flag the ring is still dumped to
//                        stderr whenever a run degrades (exit code 3)
//   -v / --verbose       stage progress lines + metrics table on stderr
//
// Execution options (classify/grade/diagnose):
//   --threads N          worker threads for the parallel engine stages
//                        (default: hardware concurrency, or $PFD_THREADS);
//                        results are bit-identical for every N
//   --deadline-ms N      wall-clock budget per pipeline run; on expiry the
//                        run stops at the next shard/batch boundary and the
//                        partial report is printed (exit code 3)
//   --max-cycles N       simulated-cycle budget, same degradation contract
//   --golden-cache-bytes N  capacity of the process-wide golden-trace cache
//   --simd NAME          force the simulation kernel backend (auto|scalar|
//                        avx2|avx512; also $PFD_SIMD). Requesting an
//                        unavailable backend is a hard error. Results are
//                        byte-identical across backends
//   --lanes N            simulation lane width for the step-1 fault engines
//                        (64|256|512; also $PFD_LANES; default auto = the
//                        active backend's natural width). Throughput only —
//                        reports are byte-identical at every width
//
// Checkpointing (classify/grade; see DESIGN.md, src/ckpt/journal.hpp):
//   --checkpoint FILE    journal every completed fault-sim shard span and
//                        power estimate to FILE (crash-tolerant append-only
//                        format); a killed or tripped run leaves a journal
//                        that a later --resume replays
//   --resume             with --checkpoint: open FILE as an existing
//                        journal, validate its design/stimulus/engine
//                        binding (mismatch = exit 1), truncate any torn
//                        tail, and skip every unit whose record replays.
//                        The resumed output is byte-identical to an
//                        uninterrupted run
//
// Ctrl-C (SIGINT) or SIGTERM during classify/grade/diagnose requests
// cooperative cancellation: the run stops at the next check point, prints
// what it has (checkpointing completed work when --checkpoint is active),
// and exits 3. A second signal of either kind kills the process the usual
// way.
//
// Failpoint injection for robustness testing (see DESIGN.md):
//   PFD_FAILPOINTS=name=throw[@K][,name=...]   e.g. fault_sim.shard=throw@0
//
// Designs: diffeq, facet, poly, diffeq-loop, ewf.
// Exit codes: 0 success, 1 runtime error (incl. unknown design), 2 usage,
// 3 partial result (deadline / cancellation / budget / quarantined units).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace.hpp"
#include "base/parse.hpp"
#include "base/simd.hpp"
#include "ckpt/journal.hpp"
#include "core/diagnosis.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/run_report.hpp"
#include "designs/designs.hpp"
#include "guard/guard.hpp"
#include "logicsim/golden_cache.hpp"
#include "logicsim/vcd.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "pfdd/client.hpp"
#include "pfdd/server.hpp"
#include "xcheck/fault_xcheck.hpp"
#include "xcheck/xcheck.hpp"

namespace {

using namespace pfd;

// Exit code for a run that completed with a partial result.
constexpr int kExitPartial = 3;

struct Options {
  std::string command;
  std::string design;
  int width = 4;
  int patterns = 1200;
  double threshold = 5.0;
  double sigma = 1.0;       // percent
  double measured_uw = 0.0;
  int fault_index = -1;
  int threads = 0;  // 0 = auto (PFD_THREADS, then hardware concurrency)
  double deadline_ms = 0.0;      // 0 = unlimited
  std::uint64_t max_cycles = 0;  // 0 = unlimited
  std::uint64_t seed = 1;        // xcheck sweep seed
  std::uint64_t iters = 1000;    // xcheck cases per sweep
  std::uint64_t max_gates = 0;   // xcheck generator cap; 0 = default
  bool shrink = true;            // xcheck: shrink the first miscompare
  bool mutations = false;        // xcheck: mutation-testing mode
  bool engines = false;          // xcheck: fault-engine harness mode
  std::string fault_engine = "differential";  // step-1 engine (classify et al)
  int lanes = 0;  // --lanes: 64/256/512 simulation lanes; 0 = auto
  bool csv = false;
  bool verbose = false;
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;
  std::string flight_path;
  std::string checkpoint_path;  // empty = no journal
  bool resume = false;
  std::uint64_t golden_cache_bytes = ~0ULL;  // ~0 = keep the default

  // serve / call / loadgen (the pfdd daemon and its clients).
  std::string socket_path;   // Unix socket; empty = loopback TCP
  int port = 0;              // serve: 0 = ephemeral; call/loadgen: target
  bool have_port = false;    // --port was given (call/loadgen target check)
  int service_threads = 2;   // serve: concurrent request executors
  int queue_capacity = 16;   // serve: admission-control bound
  std::uint64_t jobs = 32;        // loadgen: total requests
  int concurrency = 8;            // loadgen: concurrent client threads
  std::string mix = "classify,classify,classify,grade,xcheck";
  std::string bench_json_path;    // loadgen: BENCH JSON out
  std::string dump_dir;           // loadgen: per-job CSV/report dumps
};

// Captured for the end-of-run artifacts (--metrics-json on any command,
// --report): the last pipeline metrics produced and the final merged
// RunStatus. The artifacts are written at the end of main, after grading
// and every other stage has counted, so no command "loses" its tail
// metrics (the old in-Classify write snapshotted counters before grading).
core::PipelineMetrics g_last_metrics;
bool g_have_metrics = false;
guard::RunStatus g_run_status;

// The open checkpoint journal (--checkpoint), shared by the pipeline and
// grading; lives to the end of main so the RunReport can quote its stats.
std::unique_ptr<ckpt::Journal> g_journal;

// Flipped by the SIGINT/SIGTERM handler; built before either handler is
// installed. RequestCancel is async-signal-safe (lock-free atomic stores).
guard::CancelToken& SigintToken() {
  static guard::CancelToken token;
  return token;
}

void HandleCancelSignal(int) {
  SigintToken().RequestCancel();
  // Restore the default dispositions: a second Ctrl-C *or* SIGTERM kills
  // the process even if the run never reaches a cooperative check point.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

guard::Limits MakeLimits(const Options& opt) {
  guard::Limits limits;
  limits.max_wall_ms = opt.deadline_ms;
  limits.max_sim_cycles = opt.max_cycles;
  limits.cancel = SigintToken();
  return limits;
}

// Prints the degradation note for a tripped/partial run and maps it to the
// process exit code; keeps the merged status for the RunReport artifact.
int FinishRun(const guard::RunStatus& status) {
  g_run_status = status;
  if (status.ok()) return 0;
  std::fprintf(stderr, "partial result: %s\n", status.Describe().c_str());
  return kExitPartial;
}

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: pfdtool "
      "<list|info|classify|grade|diagnose|dot|vcd|xcheck|serve|call|loadgen> "
      "[design|request] [options]\n"
      "designs: diffeq facet poly diffeq-loop ewf\n"
      "options: --width N --patterns N --threshold PCT --sigma PCT "
      "--fault INDEX --threads N --csv\n"
      "         --fault-engine parallel|serial|differential\n"
      "         --simd auto|scalar|avx2|avx512 --lanes 64|256|512\n"
      "         --deadline-ms N --max-cycles N --golden-cache-bytes N\n"
      "         --checkpoint FILE [--resume]\n"
      "         --trace FILE --metrics-json FILE --report FILE\n"
      "         --flight-recorder FILE -v|--verbose\n"
      "xcheck:  --seed N --iters N --no-shrink --mutations --max-gates N "
      "--engines\n"
      "serve:   --socket PATH | --port N (0=ephemeral); --service-threads N "
      "--queue-capacity N\n"
      "call:    pfdtool call \"classify design=diffeq\" --socket PATH\n"
      "loadgen: --jobs N --concurrency N --mix K1,K2,... --bench-json FILE "
      "--dump-dir DIR\n");
  std::exit(2);
}

designs::BenchmarkDesign BuildDesign(const Options& opt) {
  try {
    // Shared with the pfdd service, so a served request and a CLI run
    // resolve (and reject) design names identically.
    return designs::BuildDesignByName(opt.design, opt.width);
  } catch (const pfd::Error& e) {
    // A bad design name is a runtime failure (exit 1), not a usage error:
    // the invocation shape was fine, the name just failed to resolve.
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
}

core::ClassificationReport Classify(const designs::BenchmarkDesign& d,
                                    const Options& opt) {
  core::PipelineConfig cfg;
  cfg.tpgr_patterns = opt.patterns;
  cfg.fault_engine = fault::ParseFaultSimEngine(opt.fault_engine);
  cfg.lanes = opt.lanes;
  cfg.exec.threads = opt.threads;
  cfg.limits = MakeLimits(opt);
  core::ApplyFeedbackGateCheckDefaults(d.system, &cfg);
  if (opt.verbose) {
    cfg.progress = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  cfg.journal = g_journal.get();
  core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);
  if (opt.verbose) {
    std::fprintf(stderr, "%s", core::MetricsTable(report.metrics).c_str());
    const std::string hists = core::HistogramTable();
    if (!hists.empty()) std::fprintf(stderr, "%s", hists.c_str());
  }
  g_last_metrics = report.metrics;
  g_have_metrics = true;
  return report;
}

int CmdInfo(const Options& opt) {
  const designs::BenchmarkDesign d = BuildDesign(opt);
  std::printf("%s (%d-bit)\n", d.name.c_str(), opt.width);
  std::printf("netlist:   %s\n", d.system.nl.Stats().ToString().c_str());
  std::printf("schedule:  %d steps, %d states, %d cycles/pattern%s\n",
              d.hls.num_steps, d.system.control_spec.NumStates(),
              d.system.cycles_per_pattern,
              d.system.has_feedback ? " (while-loop)" : "");
  std::printf("interface: %zu control lines (%d load lines, %zu muxes)\n",
              d.system.lines.size(), d.system.load_map.NumLines(),
              d.system.datapath.muxes().size());
  std::printf("binding:\n%s", d.hls.BindingReport().c_str());
  return 0;
}

int CmdClassify(const Options& opt) {
  const designs::BenchmarkDesign d = BuildDesign(opt);
  const core::ClassificationReport report = Classify(d, opt);
  if (opt.csv) {
    std::printf("%s", core::ClassificationCsv(report).c_str());
  } else {
    std::printf("%s\n%s", report.Summary().c_str(),
                core::ClassificationTable(report, /*sfr_only=*/true).c_str());
  }
  return FinishRun(report.run_status);
}

int CmdGrade(const Options& opt) {
  const designs::BenchmarkDesign d = BuildDesign(opt);
  const core::ClassificationReport report = Classify(d, opt);
  core::GradeConfig cfg;
  cfg.threshold_percent = opt.threshold;
  cfg.mc.exec.threads = opt.threads;
  cfg.mc.limits = MakeLimits(opt);
  cfg.journal = g_journal.get();
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, cfg);
  if (opt.csv) {
    std::printf("%s", core::GradingCsv(graded).c_str());
  } else {
    std::printf("fault-free datapath power: %.2f uW (threshold %.1f%%)\n%s",
                graded.fault_free_uw, opt.threshold,
                core::GradingTable(graded).c_str());
    std::printf("%zu of %zu SFR faults detected\n", graded.DetectedCount(),
                graded.faults.size());
  }
  guard::RunStatus merged = report.run_status;
  merged.MergeFrom(graded.run_status, "grade");
  return FinishRun(merged);
}

int CmdDiagnose(const Options& opt) {
  const designs::BenchmarkDesign d = BuildDesign(opt);
  const core::ClassificationReport report = Classify(d, opt);
  core::GradeConfig grade_cfg;
  grade_cfg.mc.exec.threads = opt.threads;
  grade_cfg.mc.limits = MakeLimits(opt);
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, grade_cfg);
  const core::DiagnosisResult dx = core::DiagnoseFromPower(
      graded, opt.measured_uw, {opt.sigma / 100.0});
  std::printf("measured %.2f uW against %zu signatures:\n", dx.measured_uw,
              dx.ranked.size());
  int shown = 0;
  for (const core::DiagnosisCandidate& c : dx.ranked) {
    if (++shown > 5) break;
    std::printf("  %5.1f%%  %-30s (%.2f uW)\n", c.probability * 100,
                c.fault == nullptr ? "fault-free" : c.fault->record->name.c_str(),
                c.signature_uw);
  }
  guard::RunStatus merged = report.run_status;
  merged.MergeFrom(graded.run_status, "grade");
  return FinishRun(merged);
}

int CmdDot(const Options& opt) {
  const designs::BenchmarkDesign d = BuildDesign(opt);
  std::printf("%s", d.system.nl.ToDot().c_str());
  return 0;
}

int CmdVcd(const Options& opt) {
  const designs::BenchmarkDesign d = BuildDesign(opt);
  const synth::System& sys = d.system;
  logicsim::Simulator sim(sys.nl);
  if (opt.fault_index >= 0) {
    const auto all =
        fault::GenerateFaults(sys.nl, netlist::ModuleTag::kController);
    const auto faults = fault::Collapse(sys.nl, all).representatives;
    if (static_cast<std::size_t>(opt.fault_index) >= faults.size()) {
      std::fprintf(stderr, "fault index out of range (have %zu)\n",
                   faults.size());
      return 2;
    }
    fault::InjectFault(sim, faults[opt.fault_index]);
    std::fprintf(stderr, "injected %s\n",
                 fault::FaultName(sys.nl, faults[opt.fault_index]).c_str());
  }
  logicsim::VcdWriter vcd(sim);
  vcd.AddSignal(sys.reset, "reset");
  for (std::size_t b = 0; b < sys.state_bits.size(); ++b) {
    vcd.AddSignal(sys.state_bits[b], "st" + std::to_string(b));
  }
  for (std::size_t li = 0; li < sys.lines.size(); ++li) {
    vcd.AddSignal(sys.line_nets[li], sys.lines[li].name);
  }
  for (std::size_t o = 0; o < sys.output_nets.size(); ++o) {
    vcd.AddBus(sys.output_nets[o], d.system.datapath.outputs()[o].name);
  }
  for (const synth::Bus& bus : sys.operand_bits) {
    for (netlist::GateId g : bus) sim.SetInputAllLanes(g, Trit::kZero);
  }
  const int patterns = opt.patterns > 8 ? 2 : opt.patterns;
  for (int p = 0; p < patterns; ++p) {
    for (int c = 0; c < sys.cycles_per_pattern; ++c) {
      sim.SetInputAllLanes(sys.reset, c == 0 ? Trit::kOne : Trit::kZero);
      sim.Step();
      vcd.Sample();
    }
  }
  std::printf("%s", vcd.Render().c_str());
  return 0;
}

int CmdXcheck(const Options& opt) {
  xcheck::XcheckConfig cfg;
  cfg.seed = opt.seed;
  cfg.iters = static_cast<std::uint32_t>(opt.iters);
  cfg.shrink = opt.shrink;
  if (opt.max_gates > 0) {
    cfg.gen.max_gates = static_cast<std::uint32_t>(opt.max_gates);
    if (cfg.gen.min_gates > cfg.gen.max_gates) {
      cfg.gen.min_gates = cfg.gen.max_gates;
    }
  }

  if (opt.mutations) {
    const xcheck::MutationResult mr = opt.engines
                                          ? xcheck::RunFaultMutationCheck(cfg)
                                          : xcheck::RunMutationCheck(cfg);
    for (const auto& pm : mr.mutations) {
      if (pm.detected) {
        std::printf("mutation %-36s caught after %llu case(s)\n",
                    pm.name.c_str(),
                    static_cast<unsigned long long>(pm.cases_to_detect));
      } else {
        std::printf("mutation %-36s NOT DETECTED in %llu case(s)\n",
                    pm.name.c_str(),
                    static_cast<unsigned long long>(pm.cases_to_detect));
      }
    }
    const char* what = opt.engines ? "fault-engine" : "kernel";
    if (!mr.all_detected) {
      std::fprintf(stderr,
                   "xcheck: planted %s bug(s) survived the sweep — the "
                   "harness is not sensitive enough\n",
                   what);
      return 1;
    }
    std::printf("xcheck: all %zu planted %s mutations detected\n",
                mr.mutations.size(), what);
    return 0;
  }

  if (opt.engines) {
    const xcheck::FaultXcheckResult r = xcheck::RunFaultXcheck(cfg);
    if (r.miscompares == 0) {
      std::printf("xcheck (engines): %llu/%llu campaigns agree (seed %llu)\n",
                  static_cast<unsigned long long>(r.cases_run),
                  static_cast<unsigned long long>(opt.iters),
                  static_cast<unsigned long long>(opt.seed));
      return 0;
    }
    std::fprintf(
        stderr,
        "xcheck (engines): MISCOMPARE at case %u (case seed %llu):\n  %s\n",
        r.failing_case_index,
        static_cast<unsigned long long>(r.failing_case_seed),
        r.failure_detail.c_str());
    std::fprintf(stderr, "shrunk repro (%llu shrink steps):\n%s",
                 static_cast<unsigned long long>(r.shrink_steps),
                 r.repro_cpp.c_str());
    return 1;
  }

  const xcheck::XcheckResult r = xcheck::RunXcheck(cfg);
  if (r.miscompares == 0) {
    std::printf("xcheck: %llu/%llu cases clean (seed %llu)\n",
                static_cast<unsigned long long>(r.cases_run),
                static_cast<unsigned long long>(opt.iters),
                static_cast<unsigned long long>(opt.seed));
    return 0;
  }
  std::fprintf(stderr,
               "xcheck: MISCOMPARE at case %u (case seed %llu):\n  %s\n",
               r.failing_case_index,
               static_cast<unsigned long long>(r.failing_case_seed),
               r.failure_detail.c_str());
  std::fprintf(stderr, "shrunk repro (%llu shrink steps):\n%s",
               static_cast<unsigned long long>(r.shrink_steps),
               r.repro_cpp.c_str());
  return 1;
}

// The serving daemon, reachable by the SIGTERM/SIGINT handler. A plain
// atomic pointer: the handler only calls RequestDrain (an atomic store).
std::atomic<pfdd::Server*> g_server{nullptr};

void HandleServeSignal(int) {
  pfdd::Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();
  // Second signal of either kind kills the process the usual way.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

int CmdServe(const Options& opt) {
  pfdd::ServerOptions so;
  so.unix_path = opt.socket_path;
  so.tcp_port = opt.port;
  so.service_threads = opt.service_threads;
  so.queue_capacity = opt.queue_capacity;
  so.pool_threads = opt.threads;
  so.default_deadline_ms = opt.deadline_ms;
  so.default_max_cycles = opt.max_cycles;
  pfdd::Server server(so);
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  g_server.store(&server, std::memory_order_release);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  // The listen line goes to stdout (and is flushed) so wrapper scripts can
  // discover an ephemeral port by parsing it.
  if (!so.unix_path.empty()) {
    std::printf("pfdd: listening unix=%s service_threads=%d pool_threads=%d\n",
                so.unix_path.c_str(), so.service_threads,
                server.pool()->threads());
  } else {
    std::printf("pfdd: listening port=%d service_threads=%d pool_threads=%d\n",
                server.port(), so.service_threads, server.pool()->threads());
  }
  std::fflush(stdout);
  const std::uint64_t served = server.Wait();
  g_server.store(nullptr, std::memory_order_release);
  std::fprintf(stderr, "pfdd: drained after %llu request(s)\n",
               static_cast<unsigned long long>(served));
  return 0;
}

// Target for call/loadgen: --socket wins, else --port.
pfdd::Connection ConnectTarget(const Options& opt, std::string* error) {
  if (!opt.socket_path.empty()) {
    return pfdd::Connection::ConnectUnix(opt.socket_path, error);
  }
  if (opt.have_port) return pfdd::Connection::ConnectTcp(opt.port, error);
  *error = "no server target: pass --socket PATH or --port N";
  return pfdd::Connection();
}

int CmdCall(const Options& opt) {
  // The positional argument (parsed into opt.design) is the request line.
  if (opt.design.empty()) {
    std::fprintf(stderr,
                 "error: call requires a request line, e.g. "
                 "pfdtool call --port N 'classify design=diffeq'\n");
    return 1;
  }
  pfdd::Request request;
  std::string err;
  if (!pfdd::DecodeRequest(opt.design, &request, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  pfdd::Connection conn = ConnectTarget(opt, &err);
  if (!conn.ok()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  pfdd::Response resp;
  if (!conn.Call(request, &resp, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s", resp.csv.c_str());
  if (resp.status == pfdd::Status::kOk ||
      resp.status == pfdd::Status::kPartial) {
    std::printf("%s", resp.message.c_str());
  } else {
    std::fprintf(stderr, "%s", resp.message.c_str());
  }
  if (!opt.report_path.empty()) {
    std::FILE* f = std::fopen(opt.report_path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(resp.report.data(), 1, resp.report.size(), f) !=
            resp.report.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "cannot write report file: %s\n",
                   opt.report_path.c_str());
      return 1;
    }
    std::fclose(f);
  }
  return resp.exit_code;
}

// One loadgen job: the request to send plus where its artifacts dump.
struct LoadJob {
  std::size_t index = 0;
  std::string kind;
  pfdd::Request request;
};

std::uint64_t QuantileUs(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const double idx = q * static_cast<double>(sorted_us.size() - 1);
  return static_cast<std::uint64_t>(sorted_us[static_cast<std::size_t>(idx)]);
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

int CmdLoadgen(const Options& opt) {
  // Deterministic job list: kinds rotate through --mix, engine jobs rotate
  // through the three fast designs. Same flags => same request sequence,
  // which is what lets the soak script diff served CSVs against solo CLI
  // runs.
  std::vector<std::string> mix;
  {
    std::string tok;
    for (const char c : opt.mix + ",") {
      if (c == ',') {
        if (!tok.empty()) mix.push_back(tok);
        tok.clear();
      } else {
        tok += c;
      }
    }
  }
  if (mix.empty()) {
    std::fprintf(stderr, "error: --mix is empty\n");
    return 1;
  }
  static const char* kDesignRotation[3] = {"diffeq", "facet", "poly"};
  std::vector<LoadJob> jobs(static_cast<std::size_t>(opt.jobs));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    LoadJob& job = jobs[i];
    job.index = i;
    job.kind = mix[i % mix.size()];
    if (job.kind == "classify" || job.kind == "grade") {
      job.request.command = job.kind;
      job.request.params.emplace_back("design", kDesignRotation[i % 3]);
      job.request.params.emplace_back("width", std::to_string(opt.width));
      job.request.params.emplace_back("patterns",
                                      std::to_string(opt.patterns));
      if (opt.deadline_ms > 0) {
        job.request.params.emplace_back("deadline_ms",
                                        std::to_string(opt.deadline_ms));
      }
    } else if (job.kind == "xcheck") {
      job.request.command = "xcheck";
      job.request.params.emplace_back("seed",
                                      std::to_string(opt.seed + i));
      job.request.params.emplace_back("iters", std::to_string(opt.iters));
    } else if (job.kind == "ping") {
      job.request.command = "ping";
    } else {
      std::fprintf(stderr, "error: --mix kind '%s' unknown\n",
                   job.kind.c_str());
      return 1;
    }
  }

  std::mutex mu;
  std::vector<std::pair<std::string, double>> latencies;  // kind, us
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> failures{0}, rejections{0}, partials{0};
  const int concurrency =
      std::max(1, std::min(opt.concurrency,
                           static_cast<int>(jobs.size() ? jobs.size() : 1)));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(concurrency));
  for (int t = 0; t < concurrency; ++t) {
    threads.emplace_back([&]() {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) break;
        const LoadJob& job = jobs[i];
        pfdd::Response resp;
        bool got = false;
        bool retries_exhausted = true;
        const auto t0 = std::chrono::steady_clock::now();
        // One connection per job (so admission control sees every job);
        // `rejected` answers are retried with capped exponential backoff
        // (5, 10, 20, ... ms, capped at kBackoffCapMs) up to kMaxAttempts,
        // after which the job fails with a clear error instead of hammering
        // an overloaded daemon forever.
        constexpr int kMaxAttempts = 12;
        constexpr long kBackoffCapMs = 250;
        long backoff_ms = 5;
        for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
          std::string err;
          pfdd::Connection conn = ConnectTarget(opt, &err);
          if (!conn.ok() || !conn.Call(job.request, &resp, &err)) {
            retries_exhausted = false;
            std::lock_guard<std::mutex> lock(mu);
            std::fprintf(stderr, "loadgen: job %zu: %s\n", i, err.c_str());
            break;
          }
          if (resp.status != pfdd::Status::kRejected) {
            got = true;
            break;
          }
          rejections.fetch_add(1);
          obs::Registry::Global()
              .GetCounter("loadgen.rejected_retries")
              .Add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
        }
        if (!got) {
          failures.fetch_add(1);
          if (retries_exhausted) {
            std::lock_guard<std::mutex> lock(mu);
            std::fprintf(stderr,
                         "loadgen: job %zu (%s): still rejected after %d "
                         "attempts with backoff; daemon saturated — giving "
                         "up on this job\n",
                         i, job.kind.c_str(), kMaxAttempts);
          }
          continue;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (resp.status == pfdd::Status::kPartial) partials.fetch_add(1);
        if (resp.status == pfdd::Status::kError ||
            resp.status == pfdd::Status::kDraining) {
          failures.fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          std::fprintf(stderr, "loadgen: job %zu (%s) failed: %s",
                       i, job.kind.c_str(), resp.message.c_str());
          continue;
        }
        if (!opt.dump_dir.empty()) {
          const std::string base =
              opt.dump_dir + "/job_" + std::to_string(i) + "_" + job.kind;
          const bool wrote =
              WriteFileBytes(base + ".csv", resp.csv) &&
              WriteFileBytes(base + ".report.json", resp.report);
          if (!wrote) {
            failures.fetch_add(1);
            std::lock_guard<std::mutex> lock(mu);
            std::fprintf(stderr, "loadgen: job %zu: cannot dump to %s\n", i,
                         opt.dump_dir.c_str());
            continue;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies.emplace_back(job.kind, us);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Per-kind latency summary (plus the "all" aggregate).
  std::vector<std::string> kinds{"all"};
  for (const std::string& k : mix) {
    if (std::find(kinds.begin(), kinds.end(), k) == kinds.end()) {
      kinds.push_back(k);
    }
  }
  std::string bench = "{\n  \"context\": {\n";
  bench += "    \"unix_time\": " +
           std::to_string(static_cast<long long>(std::time(nullptr))) + ",\n";
  bench += "    \"pfd_build_type\": \"" + std::string(core::BuildType()) +
           "\",\n";
  bench += "    \"jobs\": " + std::to_string(opt.jobs) + ",\n";
  bench += "    \"concurrency\": " + std::to_string(concurrency) + ",\n";
  bench += "    \"mix\": \"" + opt.mix + "\",\n";
  bench += "    \"patterns\": " + std::to_string(opt.patterns) + ",\n";
  bench += "    \"rejections\": " + std::to_string(rejections.load()) + ",\n";
  bench += "    \"partials\": " + std::to_string(partials.load()) + "\n";
  bench += "  },\n  \"benchmarks\": [\n";
  bool first = true;
  for (const std::string& kind : kinds) {
    std::vector<double> us;
    for (const auto& [k, v] : latencies) {
      if (kind == "all" || k == kind) us.push_back(v);
    }
    if (us.empty()) continue;
    std::sort(us.begin(), us.end());
    double sum = 0;
    for (const double v : us) sum += v;
    const double mean = sum / static_cast<double>(us.size());
    const std::uint64_t p50 = QuantileUs(us, 0.50);
    const std::uint64_t p99 = QuantileUs(us, 0.99);
    std::printf(
        "loadgen %-10s n=%-4zu mean=%.0fus p50=%lluus p99=%lluus\n",
        kind.c_str(), us.size(), mean, static_cast<unsigned long long>(p50),
        static_cast<unsigned long long>(p99));
    if (!first) bench += ",\n";
    first = false;
    char entry[512];
    std::snprintf(
        entry, sizeof entry,
        "    {\"name\": \"pfdd_soak/%s\", \"run_type\": \"iteration\", "
        "\"iterations\": %zu, \"real_time\": %.1f, \"cpu_time\": %.1f, "
        "\"time_unit\": \"us\", \"p50_us\": %llu, \"p99_us\": %llu, "
        "\"min_us\": %.1f, \"max_us\": %.1f}",
        kind.c_str(), us.size(), mean, mean,
        static_cast<unsigned long long>(p50),
        static_cast<unsigned long long>(p99), us.front(), us.back());
    bench += entry;
  }
  bench += "\n  ]\n}\n";
  if (!opt.bench_json_path.empty()) {
    if (!WriteFileBytes(opt.bench_json_path, bench)) {
      std::fprintf(stderr, "cannot write bench json: %s\n",
                   opt.bench_json_path.c_str());
      return 1;
    }
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "loadgen: %llu job(s) failed\n",
                 static_cast<unsigned long long>(failures.load()));
    return 1;
  }
  return 0;
}

int Dispatch(const Options& opt) {
  if (opt.command == "info") return CmdInfo(opt);
  if (opt.command == "classify") return CmdClassify(opt);
  if (opt.command == "grade") return CmdGrade(opt);
  if (opt.command == "diagnose") return CmdDiagnose(opt);
  if (opt.command == "dot") return CmdDot(opt);
  if (opt.command == "vcd") return CmdVcd(opt);
  if (opt.command == "xcheck") return CmdXcheck(opt);
  if (opt.command == "serve") return CmdServe(opt);
  if (opt.command == "call") return CmdCall(opt);
  if (opt.command == "loadgen") return CmdLoadgen(opt);
  return -1;  // unknown command -> Usage
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc < 2) Usage();
  opt.command = argv[1];
  int pos = 2;
  // serve and loadgen take no positional argument. call's positional is
  // the request line, which rides in the design slot but may appear after
  // flags ("call --port N metrics"), so the flag loop collects it.
  if (opt.command != "list" && opt.command != "xcheck" &&
      opt.command != "serve" && opt.command != "loadgen" &&
      opt.command != "call") {
    if (argc < 3) Usage();
    opt.design = argv[2];
    pos = 3;
  }
  if (opt.command == "diagnose") {
    if (argc < 4) Usage();
    opt.measured_uw = std::atof(argv[3]);
    pos = 4;
  }
  // Numeric flags parse strictly (base/parse.hpp): "--max-cycles -1" or
  // "--iters 10x" is a runtime error (exit 1), never a silent 0 or a
  // wrapped-around unlimited budget.
  try {
    for (int i = pos; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) Usage();
        return argv[++i];
      };
      if (arg == "--width") {
        opt.width = std::atoi(next());
      } else if (arg == "--patterns") {
        // Strict range check: a pattern count near INT_MAX would overflow
        // the 64-lane batch arithmetic downstream (power_sim caps the same
        // quantity at kMaxTestSetBatches batches).
        opt.patterns = static_cast<int>(
            ParseUint64FlagInRange("--patterns", next(), 64'000'000));
      } else if (arg == "--threshold") {
        opt.threshold = std::atof(next());
      } else if (arg == "--sigma") {
        opt.sigma = std::atof(next());
      } else if (arg == "--fault") {
        opt.fault_index = std::atoi(next());
      } else if (arg == "--threads") {
        opt.threads = std::atoi(next());
      } else if (arg == "--deadline-ms") {
        opt.deadline_ms = ParseNonNegativeDoubleFlag("--deadline-ms", next());
      } else if (arg == "--max-cycles") {
        opt.max_cycles = ParseUint64Flag("--max-cycles", next());
      } else if (arg == "--golden-cache-bytes") {
        opt.golden_cache_bytes =
            ParseUint64Flag("--golden-cache-bytes", next());
      } else if (arg == "--checkpoint") {
        opt.checkpoint_path = ParsePathFlag("--checkpoint", next());
      } else if (arg == "--resume") {
        opt.resume = true;
      } else if (arg == "--seed") {
        opt.seed = ParseUint64Flag("--seed", next());
      } else if (arg == "--iters") {
        opt.iters = ParseUint64FlagInRange("--iters", next(), 100000000);
      } else if (arg == "--max-gates") {
        opt.max_gates = ParseUint64FlagInRange("--max-gates", next(), 100000);
      } else if (arg == "--no-shrink") {
        opt.shrink = false;
      } else if (arg == "--mutations") {
        opt.mutations = true;
      } else if (arg == "--engines") {
        opt.engines = true;
      } else if (arg == "--fault-engine") {
        opt.fault_engine = std::string(ParseChoiceFlag(
            "--fault-engine", next(),
            {"parallel", "serial", "differential"}));
      } else if (arg == "--simd") {
        // Applied immediately: every simulator constructed later (any
        // command) picks up the forced backend. Unavailable = hard error.
        simd::ForceBackendName(
            ParseChoiceFlag("--simd", next(),
                            {"auto", "scalar", "avx2", "avx512"}));
      } else if (arg == "--lanes") {
        opt.lanes = static_cast<int>(
            ParseUint64FlagInRange("--lanes", next(), 512));
        if (opt.lanes != 0) {
          simd::ResolveLaneWords(opt.lanes);  // validate {64,256,512} now
        }
      } else if (arg == "--socket") {
        opt.socket_path = ParsePathFlag("--socket", next());
      } else if (arg == "--port") {
        opt.port = static_cast<int>(
            ParseUint64FlagInRange("--port", next(), 65535));
        opt.have_port = true;
      } else if (arg == "--service-threads") {
        opt.service_threads = static_cast<int>(
            ParseUint64FlagInRange("--service-threads", next(), 256));
      } else if (arg == "--queue-capacity") {
        opt.queue_capacity = static_cast<int>(
            ParseUint64FlagInRange("--queue-capacity", next(), 65536));
      } else if (arg == "--jobs") {
        opt.jobs = ParseUint64FlagInRange("--jobs", next(), 1000000);
      } else if (arg == "--concurrency") {
        opt.concurrency = static_cast<int>(
            ParseUint64FlagInRange("--concurrency", next(), 256));
      } else if (arg == "--mix") {
        opt.mix = next();
      } else if (arg == "--bench-json") {
        opt.bench_json_path = ParsePathFlag("--bench-json", next());
      } else if (arg == "--dump-dir") {
        opt.dump_dir = ParsePathFlag("--dump-dir", next());
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--trace") {
        opt.trace_path = next();
      } else if (arg == "--metrics-json") {
        opt.metrics_path = next();
      } else if (arg == "--report") {
        opt.report_path = next();
      } else if (arg == "--flight-recorder") {
        opt.flight_path = next();
      } else if (arg == "-v" || arg == "--verbose") {
        opt.verbose = true;
      } else if (opt.command == "call" && !arg.empty() && arg[0] != '-' &&
                 opt.design.empty()) {
        opt.design = arg;  // call's request line, wherever it appears
      } else {
        // Unknown flags are rejected loudly: a silently ignored flag makes a
        // misspelled experiment look like a finished one.
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        Usage();
      }
    }
  } catch (const pfd::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // Flag-combination validation (runtime errors, not usage: the shape was
  // fine, the combination is not).
  if (opt.resume && opt.checkpoint_path.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint FILE\n");
    return 1;
  }
  if (!opt.checkpoint_path.empty() && opt.command != "classify" &&
      opt.command != "grade") {
    std::fprintf(stderr,
                 "error: --checkpoint is only supported for classify and "
                 "grade\n");
    return 1;
  }
  if (opt.golden_cache_bytes != ~0ULL) {
    logicsim::GoldenTraceCache::Global().SetCapacityBytes(
        static_cast<std::size_t>(opt.golden_cache_bytes));
  }
  // Observability: counters (and per-stage metrics deltas) switch on for
  // any sink that will render them; the trace additionally records spans.
  std::unique_ptr<obs::Trace> trace;
  obs::Registry& reg = obs::Registry::Global();
  if (!opt.trace_path.empty()) {
    trace = std::make_unique<obs::Trace>();
    reg.InstallTrace(trace.get());
  }
  if (trace != nullptr || !opt.metrics_path.empty() ||
      !opt.report_path.empty() || opt.verbose) {
    reg.set_enabled(true);
  }
  // The flight recorder stays on for every engine-running command (it only
  // costs on cold paths — trips, failpoints, evictions) so a degraded run
  // can always dump its timeline; short pure-print commands skip it unless
  // a dump file was requested explicitly.
  const bool runs_engines = opt.command == "classify" ||
                            opt.command == "grade" ||
                            opt.command == "diagnose" ||
                            opt.command == "xcheck" ||
                            opt.command == "serve";
  if (runs_engines || !opt.flight_path.empty()) {
    obs::FlightRecorder::Global().set_enabled(true);
  }

  // Cooperative cancellation (Ctrl-C and `kill`) for the long-running
  // commands only; the short ones keep the default kill-on-signal (they
  // never reach a check point). SIGTERM takes the same path as SIGINT: the
  // first signal requests a clean drain, the second of either kind kills.
  if (opt.command == "classify" || opt.command == "grade" ||
      opt.command == "diagnose") {
    SigintToken();  // construct the token before a handler can fire
    std::signal(SIGINT, HandleCancelSignal);
    std::signal(SIGTERM, HandleCancelSignal);
  }

  int rc = -1;
  try {
    // The journal opens inside the try block: a mismatched resume header
    // (different design, stimulus, engine, or format version) is a
    // pfd::Error and exits 1 before any engine runs.
    if (!opt.checkpoint_path.empty()) {
      g_journal = ckpt::Journal::Open(opt.checkpoint_path, opt.resume);
    }
    if (opt.command == "list") {
      std::printf("diffeq facet poly diffeq-loop ewf\n");
      rc = 0;
    } else {
      obs::Span root("pfdtool." + opt.command);
      rc = Dispatch(opt);
    }
  } catch (const pfd::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (rc < 0) Usage();

  // Snapshot journal statistics before closing; the RunReport below and the
  // partial-exit hint both reference them after the file is flushed shut.
  core::RunReportCheckpoint ckpt_info;
  const bool have_ckpt = g_journal != nullptr;
  if (have_ckpt) {
    ckpt_info.path = g_journal->path();
    ckpt_info.records_written = g_journal->records_written();
    ckpt_info.records_replayed = g_journal->records_replayed();
    ckpt_info.torn_tail_truncations = g_journal->torn_tail_truncations();
    g_journal->Close();
    if (rc == kExitPartial) {
      std::fprintf(stderr,
                   "checkpoint: %llu record(s) journaled to %s; rerun with "
                   "--checkpoint %s --resume to finish\n",
                   static_cast<unsigned long long>(ckpt_info.records_written),
                   ckpt_info.path.c_str(), ckpt_info.path.c_str());
    }
  }

  if (trace != nullptr) {
    reg.InstallTrace(nullptr);
    if (!obs::WriteTraceFile(*trace, opt.trace_path)) {
      std::fprintf(stderr, "cannot write trace file: %s\n",
                   opt.trace_path.c_str());
      return 1;
    }
    if (opt.verbose) {
      std::fprintf(stderr, "trace: %zu events -> %s\n", trace->size(),
                   opt.trace_path.c_str());
    }
  }

  // Metrics are written here, after every stage (including grading) has
  // counted. Pipeline commands render the full per-stage document; other
  // commands get the generic counter/gauge/histogram snapshot.
  if (!opt.metrics_path.empty()) {
    const std::string json =
        g_have_metrics ? core::MetricsJson(g_last_metrics) : obs::SnapshotJson();
    std::FILE* f = std::fopen(opt.metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics file: %s\n",
                   opt.metrics_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

  // Flight recorder: always dumped to the requested file; a degraded run
  // without one dumps the timeline to stderr so exit code 3 is never a
  // dead end.
  const obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  if (!opt.flight_path.empty()) {
    if (!obs::WriteFlightFile(flight, opt.flight_path)) {
      std::fprintf(stderr, "cannot write flight-recorder file: %s\n",
                   opt.flight_path.c_str());
      return 1;
    }
    if (rc == kExitPartial) {
      std::fprintf(stderr, "flight recorder: %llu event(s) -> %s\n",
                   static_cast<unsigned long long>(flight.total_recorded()),
                   opt.flight_path.c_str());
    }
  } else if (rc == kExitPartial && flight.enabled() &&
             flight.total_recorded() > 0) {
    std::fprintf(stderr, "flight recorder (%llu event(s)):\n%s",
                 static_cast<unsigned long long>(flight.total_recorded()),
                 flight.ToJsonl().c_str());
  }

  // call writes the *served* report itself; serve/loadgen produce no local
  // RunReport (each served request carries its own).
  if (!opt.report_path.empty() && opt.command != "call" &&
      opt.command != "serve" && opt.command != "loadgen") {
    core::RunReportInputs in;
    in.command = opt.command;
    in.exit_code = rc;
    in.run_status = &g_run_status;
    if (g_have_metrics) in.metrics = &g_last_metrics;
    if (have_ckpt) in.checkpoint = &ckpt_info;
    if (!opt.design.empty()) {
      in.request.push_back(core::RequestStr("design", opt.design));
      in.request.push_back(core::RequestInt("width", opt.width));
      in.request.push_back(core::RequestInt("patterns", opt.patterns));
      in.request.push_back(core::RequestStr("fault_engine", opt.fault_engine));
    }
    in.request.push_back(core::RequestInt("threads", opt.threads));
    in.request.push_back(core::RequestDouble("deadline_ms", opt.deadline_ms));
    in.request.push_back(core::RequestInt(
        "max_cycles", static_cast<std::int64_t>(opt.max_cycles)));
    if (opt.command == "grade") {
      in.request.push_back(core::RequestDouble("threshold", opt.threshold));
    }
    if (opt.command == "diagnose") {
      in.request.push_back(core::RequestDouble("measured_uw", opt.measured_uw));
      in.request.push_back(core::RequestDouble("sigma", opt.sigma));
    }
    if (opt.command == "xcheck") {
      in.request.push_back(core::RequestInt(
          "seed", static_cast<std::int64_t>(opt.seed)));
      in.request.push_back(core::RequestInt(
          "iters", static_cast<std::int64_t>(opt.iters)));
      in.request.push_back(core::RequestBool("shrink", opt.shrink));
      in.request.push_back(core::RequestBool("mutations", opt.mutations));
      in.request.push_back(core::RequestBool("engines", opt.engines));
    }
    if (!core::WriteRunReportFile(in, opt.report_path)) {
      std::fprintf(stderr, "cannot write report file: %s\n",
                   opt.report_path.c_str());
      return 1;
    }
  }
  return rc;
}
