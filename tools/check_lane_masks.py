#!/usr/bin/env python3
"""Lint: no raw lane-mask literals outside src/base/.

The simulation lane word is width-generic (64/256/512 lanes; see
src/base/logic.hpp and src/base/simd.hpp). A raw 64-bit literal used as a
lane mask — `~0ULL` for "all lanes", `1ULL << n` for "lane n" — silently
re-hardcodes the historical 64-lane assumption: it compiles fine, works at
width 64, and corrupts lanes 64..511 at the wider widths. Every force /
injection site must therefore go through pfd::LaneMask (kAllLanes /
LaneMask::Lane / the mask-less all-lanes overloads), whose width follows
the machine it is applied to.

This check greps for the bug shape instead of trusting review to catch it:

  * an InjectFault / ForceOutput / ForcePin / ForceInput call whose
    argument list carries a 64-bit mask literal (~0ULL, 1ULL << n, or a
    wide hex constant);
  * a variable whose name says it is a lane mask (lane_mask, lanes_mask,
    live_mask...) initialised from such a literal.

Scope: src/, tools/, tests/, bench/ — excluding src/base/, where the
width-generic primitives themselves are defined in terms of 64-bit words.
Deliberately out of scope (all 64-bit-by-design, not lane masks):

  * src/tpg/lfsr.cpp — the TPGR deals operand batches in a frozen 64-wide
    protocol; published power figures depend on that dealing order;
  * src/xcheck/xcheck.cpp — the reference comparison folds per-word, so a
    per-word ~0ULL compare is the contract, not an assumption;
  * arithmetic uses of ~0ULL / hex constants anywhere (hashes, seeds,
    popcount scratch): only *force-site* lines and *mask-named* variables
    are matched.

A genuinely intentional exception gets an inline waiver:

    InjectFault(sim, f, mask);  // lane-mask-ok: <why this is width-safe>

Exit 0 when clean, 1 with file:line diagnostics otherwise.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tools", "tests", "bench")
EXCLUDE_PREFIX = ("src/base/",)
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}

WAIVER = "lane-mask-ok:"

# A 64-bit literal that reads as a lane mask: all-ones, a shifted single
# bit, or a hex constant of at least 8 digits (anything shorter is almost
# always ordinary arithmetic, anything this wide in a force call is a mask).
MASK_LITERAL = r"(~0ULL|~0ull|1ULL\s*<<|1ull\s*<<|0[xX][0-9a-fA-F]{8,})"

FORCE_CALL = re.compile(
    r"\b(InjectFault|ForceOutput|ForcePin|ForceInput)\s*\([^;]*"
    + MASK_LITERAL
)
MASK_VARIABLE = re.compile(
    r"\b\w*(lane_?masks?|live_?mask|detect_?mask)\w*\s*[={(]\s*[^;]*"
    + MASK_LITERAL,
    re.IGNORECASE,
)


def scan_file(path: Path, rel: str) -> list:
    findings = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"check_lane_masks: cannot read {rel}: {e}", file=sys.stderr)
        sys.exit(2)
    for lineno, line in enumerate(text.splitlines(), start=1):
        if WAIVER in line:
            continue
        stripped = line.lstrip()
        if stripped.startswith("//") or stripped.startswith("*"):
            continue  # comments discuss masks freely
        if FORCE_CALL.search(line):
            findings.append(
                (rel, lineno, line.strip(),
                 "raw lane-mask literal in a force/injection call — use "
                 "pfd::LaneMask (kAllLanes / LaneMask::Lane) or the "
                 "mask-less all-lanes overload")
            )
        elif MASK_VARIABLE.search(line):
            findings.append(
                (rel, lineno, line.strip(),
                 "lane-mask variable built from a raw 64-bit literal — "
                 "use pfd::LaneMask so the width follows the machine")
            )
    return findings


def main() -> None:
    findings = []
    scanned = 0
    for d in SCAN_DIRS:
        base = ROOT / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS:
                continue
            rel = path.relative_to(ROOT).as_posix()
            if any(rel.startswith(p) for p in EXCLUDE_PREFIX):
                continue
            scanned += 1
            findings.extend(scan_file(path, rel))

    if findings:
        for rel, lineno, line, why in findings:
            print(f"{rel}:{lineno}: {why}", file=sys.stderr)
            print(f"    {line}", file=sys.stderr)
        print(
            f"check_lane_masks: FAIL: {len(findings)} raw lane-mask "
            f"literal(s) outside src/base/ (waive a deliberate exception "
            f"with '// {WAIVER} <reason>')",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"check_lane_masks: OK: {scanned} files clean")


if __name__ == "__main__":
    main()
