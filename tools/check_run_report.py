#!/usr/bin/env python3
"""Schema validator for pfd RunReport artifacts (pfdtool --report).

This file is the executable definition of the "pfd.run_report" schema
(src/core/run_report.hpp): additive keys are allowed without a version
bump, removing or renaming a key bumps schema_version and must update the
checks here in the same change.

Usage:
  tools/check_run_report.py run.json [run2.json ...]
      [--expect-command CMD] [--expect-exit-code N]

Exit code 0 when every report validates, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "pfd.run_report"
SCHEMA_VERSION = 1

STATUS_CODES = {
    "ok",
    "cancelled",
    "deadline-exceeded",
    "budget-exhausted",
    "partial-failure",
}

COMMANDS = {"list", "info", "classify", "grade", "diagnose", "dot", "vcd",
            "xcheck"}


class Err(Exception):
    pass


def expect(cond, msg):
    if not cond:
        raise Err(msg)


def check_type(obj, key, typ, where):
    expect(key in obj, f"{where}: missing key '{key}'")
    val = obj[key]
    # bool is an int subclass in python; keep the check strict.
    if typ is int:
        expect(isinstance(val, int) and not isinstance(val, bool),
               f"{where}.{key}: expected int, got {type(val).__name__}")
    elif typ is float:
        expect(isinstance(val, (int, float)) and not isinstance(val, bool),
               f"{where}.{key}: expected number, got {type(val).__name__}")
    else:
        expect(isinstance(val, typ),
               f"{where}.{key}: expected {typ.__name__}, "
               f"got {type(val).__name__}")
    return val


def check_histogram(name, h):
    where = f"histograms['{name}']"
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
        v = check_type(h, key, int, where)
        expect(v >= 0, f"{where}.{key}: negative")
    check_type(h, "mean", float, where)
    if h["count"] == 0:
        expect(h["sum"] == 0 and h["max"] == 0,
               f"{where}: empty histogram with nonzero sum/max")
        return
    expect(h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"],
           f"{where}: quantiles not monotone: "
           f"min={h['min']} p50={h['p50']} p90={h['p90']} "
           f"p99={h['p99']} max={h['max']}")
    expect(h["min"] <= h["sum"] and h["max"] <= h["sum"],
           f"{where}: sum smaller than an observed value")


def check_report(path, doc, args):
    expect(isinstance(doc, dict), "top level: expected JSON object")
    expect(doc.get("schema") == SCHEMA,
           f"schema: expected '{SCHEMA}', got {doc.get('schema')!r}")
    version = check_type(doc, "schema_version", int, "top level")
    expect(version == SCHEMA_VERSION,
           f"schema_version: expected {SCHEMA_VERSION}, got {version}")
    check_type(doc, "generated_unix_time", int, "top level")

    prov = check_type(doc, "provenance", dict, "top level")
    for key in ("compiler", "compiler_version", "build_type", "cxx_flags",
                "git_describe"):
        check_type(prov, key, str, "provenance")
    for key in ("compiler", "build_type", "git_describe"):
        expect(prov[key] != "", f"provenance.{key}: empty")
    check_type(prov, "assertions_disabled", bool, "provenance")

    host = check_type(doc, "host", dict, "top level")
    for key in ("os", "os_release", "arch", "hostname"):
        check_type(host, key, str, "host")
    hc = check_type(host, "hardware_concurrency", int, "host")
    expect(hc >= 0, "host.hardware_concurrency: negative")

    request = check_type(doc, "request", dict, "top level")
    command = check_type(request, "command", str, "request")
    expect(command in COMMANDS, f"request.command: unknown '{command}'")
    if args.expect_command is not None:
        expect(command == args.expect_command,
               f"request.command: expected '{args.expect_command}', "
               f"got '{command}'")

    status = check_type(doc, "run_status", dict, "top level")
    code = check_type(status, "code", str, "run_status")
    expect(code in STATUS_CODES, f"run_status.code: unknown '{code}'")
    check_type(status, "message", str, "run_status")
    total = check_type(status, "total_units", int, "run_status")
    done = check_type(status, "completed_units", int, "run_status")
    expect(0 <= done <= total,
           f"run_status: completed_units {done} not in [0, {total}]")
    failed = check_type(status, "failed_units", list, "run_status")
    for i, f in enumerate(failed):
        check_type(f, "index", int, f"run_status.failed_units[{i}]")
        check_type(f, "what", str, f"run_status.failed_units[{i}]")
    check_type(status, "failed_units_truncated", bool, "run_status")
    exit_code = check_type(status, "exit_code", int, "run_status")
    if args.expect_exit_code is not None:
        expect(exit_code == args.expect_exit_code,
               f"run_status.exit_code: expected {args.expect_exit_code}, "
               f"got {exit_code}")
    if code == "ok":
        expect(not failed, "run_status: code 'ok' but failed_units nonempty")

    expect("metrics" in doc, "top level: missing key 'metrics'")
    metrics = doc["metrics"]
    if metrics is not None:
        expect(isinstance(metrics, dict), "metrics: expected object or null")
        check_type(metrics, "total_faults", int, "metrics")
        classes = check_type(metrics, "classes", dict, "metrics")
        for key in ("SFI(sim)", "SFI(potential)", "SFI(analysis)", "CFR",
                    "SFR"):
            check_type(classes, key, int, "metrics.classes")
        wall = check_type(metrics, "wall_ms", dict, "metrics")
        for key in ("step1", "step2", "step3", "step4", "total"):
            check_type(wall, key, float, "metrics.wall_ms")
        check_type(metrics, "engine", dict, "metrics")

    expect("checkpoint" in doc, "top level: missing key 'checkpoint'")
    ckpt = doc["checkpoint"]
    if args.expect_checkpoint:
        expect(ckpt is not None,
               "checkpoint: expected an object (--expect-checkpoint), "
               "got null")
    if ckpt is not None:
        expect(isinstance(ckpt, dict), "checkpoint: expected object or null")
        path_val = check_type(ckpt, "path", str, "checkpoint")
        expect(path_val != "", "checkpoint.path: empty")
        for key in ("records_written", "records_replayed",
                    "torn_tail_truncations"):
            v = check_type(ckpt, key, int, "checkpoint")
            expect(v >= 0, f"checkpoint.{key}: negative")

    cache = check_type(doc, "cache", dict, "top level")
    golden = check_type(cache, "golden_trace", dict, "cache")
    for key in ("entries", "hits", "misses", "insertions", "dropped_inserts"):
        v = check_type(golden, key, int, "cache.golden_trace")
        expect(v >= 0, f"cache.golden_trace.{key}: negative")

    counters = check_type(doc, "counters", dict, "top level")
    for name, v in counters.items():
        expect(isinstance(v, int) and not isinstance(v, bool) and v >= 0,
               f"counters['{name}']: expected non-negative int")
    gauges = check_type(doc, "gauges", dict, "top level")
    for name, v in gauges.items():
        expect(isinstance(v, (int, float)) and not isinstance(v, bool),
               f"gauges['{name}']: expected number")
    hists = check_type(doc, "histograms", dict, "top level")
    for name, h in hists.items():
        expect(isinstance(h, dict), f"histograms['{name}']: expected object")
        check_histogram(name, h)

    flight = check_type(doc, "flight_recorder", dict, "top level")
    check_type(flight, "enabled", bool, "flight_recorder")
    tr = check_type(flight, "total_recorded", int, "flight_recorder")
    expect(tr >= 0, "flight_recorder.total_recorded: negative")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+", help="RunReport JSON file(s)")
    parser.add_argument("--expect-command", default=None,
                        help="require request.command to match")
    parser.add_argument("--expect-exit-code", type=int, default=None,
                        help="require run_status.exit_code to match")
    parser.add_argument("--expect-checkpoint", action="store_true",
                        help="require a non-null checkpoint object "
                             "(--checkpoint runs)")
    args = parser.parse_args()

    failed = False
    for path in args.reports:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            check_report(path, doc, args)
        except (OSError, json.JSONDecodeError, Err) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failed = True
            continue
        print(f"OK {path}: schema v{doc['schema_version']}, "
              f"command={doc['request']['command']}, "
              f"status={doc['run_status']['code']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
