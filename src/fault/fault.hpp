// Single stuck-at fault model and fault-list construction.
//
// Fault sites follow the classic gate-level model: every gate contributes a
// stem fault on its output and a branch fault on each input pin, each
// stuck-at-0 and stuck-at-1. The paper enumerates faults *within the
// controller* (Table 2's "Total Faults" column); GenerateFaults therefore
// takes a module filter.
//
// Equivalence collapsing implements the standard structural rules
// (controlling-value input faults fold onto the output fault; inverter/
// buffer/DFF transparency; single-fanout stem/branch merging), producing the
// representative set that the simulators and the classification pipeline
// operate on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/logic.hpp"
#include "netlist/netlist.hpp"

namespace pfd::fault {

struct StuckFault {
  netlist::GateId gate = netlist::kNoGate;
  // 0 = output stem; i >= 1 = branch fault on input pin (i-1).
  std::uint32_t pin = 0;
  Trit value = Trit::kZero;  // kZero => stuck-at-0, kOne => stuck-at-1

  friend bool operator==(const StuckFault&, const StuckFault&) = default;
};

std::string FaultName(const netlist::Netlist& nl, const StuckFault& f);

// All (uncollapsed) faults on gates with the given module tag. Input gates
// are skipped when `skip_primary_inputs` is set (faults on a primary input
// pad are not controller-internal faults).
std::vector<StuckFault> GenerateFaults(const netlist::Netlist& nl,
                                       netlist::ModuleTag module,
                                       bool skip_primary_inputs = true);

struct CollapsedFaults {
  // One representative per equivalence class.
  std::vector<StuckFault> representatives;
  // class_of[i] indexes representatives for input fault i (same order as the
  // `all` list passed to Collapse).
  std::vector<std::uint32_t> class_of;
  // Sizes of each class (diagnostic / reporting).
  std::vector<std::uint32_t> class_size;
};

CollapsedFaults Collapse(const netlist::Netlist& nl,
                         const std::vector<StuckFault>& all);

}  // namespace pfd::fault
