#include "fault/fault.hpp"

#include <algorithm>
#include <unordered_map>

namespace pfd::fault {

using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

std::string FaultName(const Netlist& nl, const StuckFault& f) {
  std::string site;
  if (nl.Name(f.gate).empty()) {
    site.append("g").append(std::to_string(f.gate));
  } else {
    site = nl.Name(f.gate);
  }
  site.append("/").append(netlist::GateKindName(nl.gate(f.gate).kind));
  if (f.pin == 0) {
    site += ".out";
  } else {
    site += ".in";
    site += std::to_string(f.pin - 1);
  }
  site += f.value == Trit::kZero ? "/SA0" : "/SA1";
  return site;
}

std::vector<StuckFault> GenerateFaults(const Netlist& nl,
                                       netlist::ModuleTag module,
                                       bool skip_primary_inputs) {
  std::vector<StuckFault> faults;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.gate(g).module != module) continue;
    if (skip_primary_inputs && nl.gate(g).kind == GateKind::kInput) continue;
    if (nl.gate(g).kind == GateKind::kConst0 ||
        nl.gate(g).kind == GateKind::kConst1) {
      // A constant cell only has a meaningful stuck-at of the opposite value.
      faults.push_back({g, 0, nl.gate(g).kind == GateKind::kConst0
                                  ? Trit::kOne
                                  : Trit::kZero});
      continue;
    }
    for (Trit v : {Trit::kZero, Trit::kOne}) {
      faults.push_back({g, 0, v});
      for (std::uint32_t i = 0; i < nl.Fanins(g).size(); ++i) {
        faults.push_back({g, i + 1, v});
      }
    }
  }
  return faults;
}

namespace {

// Union-find over fault keys.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

std::uint64_t Key(const StuckFault& f) {
  return (static_cast<std::uint64_t>(f.gate) << 8) |
         (static_cast<std::uint64_t>(f.pin) << 1) |
         (f.value == Trit::kOne ? 1 : 0);
}

}  // namespace

CollapsedFaults Collapse(const Netlist& nl,
                         const std::vector<StuckFault>& all) {
  std::unordered_map<std::uint64_t, int> index;
  index.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    index.emplace(Key(all[i]), static_cast<int>(i));
  }
  auto lookup = [&](GateId g, std::uint32_t pin, Trit v) -> std::optional<int> {
    auto it = index.find(Key({g, pin, v}));
    if (it == index.end()) return std::nullopt;
    return it->second;
  };

  UnionFind uf(all.size());
  auto unite = [&](std::optional<int> a, std::optional<int> b) {
    if (a && b) uf.Union(*a, *b);
  };

  // Intra-gate rules: a controlling value on any input is equivalent to the
  // corresponding output fault; inverters/buffers (and DFFs, which are
  // sequentially transparent) fold their input faults onto the output.
  const std::vector<std::uint32_t> fanout_counts = nl.FanoutCounts();
  for (GateId g = 0; g < nl.size(); ++g) {
    const GateKind kind = nl.gate(g).kind;
    const std::size_t n_in = nl.Fanins(g).size();
    for (std::uint32_t i = 1; i <= n_in; ++i) {
      switch (kind) {
        case GateKind::kAnd:
          unite(lookup(g, i, Trit::kZero), lookup(g, 0, Trit::kZero));
          break;
        case GateKind::kNand:
          unite(lookup(g, i, Trit::kZero), lookup(g, 0, Trit::kOne));
          break;
        case GateKind::kOr:
          unite(lookup(g, i, Trit::kOne), lookup(g, 0, Trit::kOne));
          break;
        case GateKind::kNor:
          unite(lookup(g, i, Trit::kOne), lookup(g, 0, Trit::kZero));
          break;
        case GateKind::kNot:
          unite(lookup(g, i, Trit::kZero), lookup(g, 0, Trit::kOne));
          unite(lookup(g, i, Trit::kOne), lookup(g, 0, Trit::kZero));
          break;
        case GateKind::kBuf:
        case GateKind::kDff:
          unite(lookup(g, i, Trit::kZero), lookup(g, 0, Trit::kZero));
          unite(lookup(g, i, Trit::kOne), lookup(g, 0, Trit::kOne));
          break;
        default:
          break;  // XOR/XNOR/MUX2 have no intra-gate equivalences
      }
    }
  }

  // Stem/branch: a net with exactly one reader makes the stem fault
  // equivalent to that reader's branch fault — unless the net is itself an
  // observation point (a primary output is an additional, invisible reader:
  // the stem fault changes what the tester sees, the branch fault does not).
  std::vector<std::uint8_t> is_observed(nl.size(), 0);
  for (const netlist::OutputPort& po : nl.outputs()) {
    is_observed[po.gate] = 1;
  }
  std::vector<std::pair<GateId, std::uint32_t>> sole_reader(
      nl.size(), {netlist::kNoGate, 0});
  for (GateId g = 0; g < nl.size(); ++g) {
    const auto fanins = nl.Fanins(g);
    for (std::uint32_t i = 0; i < fanins.size(); ++i) {
      if (fanins[i] != netlist::kNoGate) sole_reader[fanins[i]] = {g, i + 1};
    }
  }
  for (GateId g = 0; g < nl.size(); ++g) {
    if (fanout_counts[g] != 1 || is_observed[g]) continue;
    const auto [reader, pin] = sole_reader[g];
    if (reader == netlist::kNoGate) continue;
    for (Trit v : {Trit::kZero, Trit::kOne}) {
      unite(lookup(g, 0, v), lookup(reader, pin, v));
    }
  }

  // Build representative list: the lowest-index member of each class.
  CollapsedFaults out;
  out.class_of.resize(all.size());
  std::unordered_map<int, std::uint32_t> root_to_rep;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const int root = uf.Find(static_cast<int>(i));
    auto it = root_to_rep.find(root);
    if (it == root_to_rep.end()) {
      const auto rep = static_cast<std::uint32_t>(out.representatives.size());
      root_to_rep.emplace(root, rep);
      out.representatives.push_back(all[i]);
      out.class_size.push_back(0);
      out.class_of[i] = rep;
    } else {
      out.class_of[i] = it->second;
    }
    ++out.class_size[out.class_of[i]];
  }
  return out;
}

}  // namespace pfd::fault
