// Stuck-at fault simulation engines behind one request-based entry point.
//
// RunFaultSim(request) owns all fault-simulation work. Three engines with
// identical semantics select via FaultSimRequest::engine:
//   * kParallel — 64-lane parallel-fault simulation: lane 0 is the
//     fault-free machine and up to 63 faults ride along in the other lanes,
//     giving a ~60x speedup.
//   * kSerial — one faulty machine at a time; the straightforward reference
//     implementation used for validation.
//   * kDifferential — 64 faults per shard diffed against the cached golden
//     trace: each cycle only the dirty cone (fault sites plus fan-out of
//     state that diverged from the fault-free machine) is evaluated, and a
//     fault lane retires the pattern it is hard-detected, so late patterns
//     simulate only still-live faults. The production engine; results are
//     bit-identical to the other two (see DESIGN.md for the argument).
//
// All engines shard across worker threads (exec::Options): every shard owns
// its simulator state, derives stimulus deterministically, and writes
// disjoint result slots, so results are bit-identical for any thread count.
//
// The request is built around shared artefacts:
//   * StimulusSpec bundles the {TestPlan, TPGR seed, pattern count} triple
//     that every stimulus-driven engine (fault sim, test-set power) needs —
//     one spec, dealt to each engine, instead of three copies drifting.
//   * FaultSimRequest::compiled optionally carries a pre-compiled
//     logicsim::CompiledNetlist so callers running several campaigns over
//     one design (the pipeline, grading, benches) compile once; absent, the
//     program is resolved once per call (memoized process-wide).
//   * FaultSimRequest::golden_cache selects the golden-trace cache the
//     serial and differential engines memoize their fault-free passes in;
//     nullptr means the process-wide cache.
//
// Robustness (pfd::guard): shards run under exec::ParallelForGuarded — a
// throwing shard is quarantined and retried once instead of aborting the
// campaign, and FaultSimRequest::limits (or an external shared checker) is
// checked at shard boundaries and once per pattern inside each shard.
// Faults whose shard never completed keep FaultStatus::kNotRun and the
// returned FaultSimResult::run_status says why (deadline, cancellation,
// cycle budget, or per-unit failures) plus which shards completed.
// Failpoints: "fault_sim.shard" (parallel), "fault_sim.serial_fault",
// "fault_sim.diff.shard" (differential), plus the planted-bug flag
// failpoints in kFaultSimMutationFailpoints.
//
// All engines reproduce the "potentially detected" semantics of the GENTEST
// simulator the paper used: if the fault-free response is known but the
// faulty response is X at a strobe point, the fault is only *potentially*
// detected (the real hardware would show whatever the register held at
// boot-up). The paper's step 2 deliberately upgrades such faults to
// detected; that policy decision lives in the pipeline, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "ckpt/journal.hpp"
#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "guard/guard.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/netlist.hpp"

namespace pfd::logicsim {
class GoldenTraceCache;
}  // namespace pfd::logicsim

namespace pfd::fault {

// How a batch of test patterns exercises the system under test. One pattern
// = `cycles_per_pattern` clock cycles: reset is asserted during cycle 0,
// data operands are applied (and held) for the whole pattern, and the
// observation nets are compared against the fault-free machine at each
// strobe cycle.
struct TestPlan {
  netlist::GateId reset = netlist::kNoGate;
  // Data operands; each operand is a list of primary-input bit gates,
  // LSB first. The TPGR deals operands in this order.
  std::vector<std::vector<netlist::GateId>> operand_bits;
  int cycles_per_pattern = 0;
  // Within-pattern cycle indices at which the observation nets are strobed.
  std::vector<int> strobe_cycles;
  // Nets compared against the fault-free machine (typically the datapath
  // primary outputs; the CFR check observes the controller output lines
  // instead).
  std::vector<netlist::GateId> observe;
  // Primary inputs held at a constant value for the whole run (e.g. a DFT
  // test_mode pin or observation-session selects).
  std::vector<std::pair<netlist::GateId, Trit>> pinned;
};

// The complete stimulus contract of one campaign: which plan drives the
// machine, which TPGR stream deals the operands, and for how many patterns.
// Shared verbatim between the fault engines and the test-set power engine
// so one campaign's stimulus can never drift apart across engines.
struct StimulusSpec {
  const TestPlan& plan;
  std::uint32_t tpgr_seed = 0;
  int num_patterns = 0;
};

// Order-independent digest of the complete stimulus contract — seed,
// pattern count, and every field of the plan. This is the value a
// checkpoint journal header binds (ckpt::Binding::stimulus_hash): a resume
// against a journal recorded under any other stimulus must refuse.
std::uint64_t StimulusDigest(const StimulusSpec& stimulus);

enum class FaultStatus : std::uint8_t {
  kUndetected = 0,
  kDetected = 1,
  kPotentiallyDetected = 2,
  // The fault's shard never ran to completion (guard tripped or the shard
  // failed even after retry); the fault is undecided, not undetected.
  kNotRun = 3,
};

const char* FaultStatusName(FaultStatus s);

struct FaultSimResult {
  std::vector<FaultStatus> status;          // per fault, input order
  std::vector<int> first_detect_pattern;    // -1 when never hard-detected
  int patterns = 0;
  // Why anything is missing: completed shard indices, quarantined shards,
  // and the trip code when a limit fired. kOk when the run was clean.
  guard::RunStatus run_status;

  std::size_t CountWithStatus(FaultStatus s) const;
};

// Registers the stuck-at fault as lane forces on a live simulator. The
// mask-less overload injects on every lane (the serial engines' shape).
void InjectFault(logicsim::Simulator& sim, const StuckFault& f,
                 const LaneMask& lane_mask);
inline void InjectFault(logicsim::Simulator& sim, const StuckFault& f) {
  InjectFault(sim, f, kAllLanes);
}

enum class FaultSimEngine : std::uint8_t {
  kParallel,      // W-1 faults + golden lane per W-lane shard
  kSerial,        // one faulty machine per shard (reference)
  kDifferential,  // W faults per shard, golden-diffed dirty cone
};

// Engine <-> CLI name mapping ("parallel" / "serial" / "differential").
// ParseFaultSimEngine throws pfd::Error on anything else.
const char* FaultSimEngineName(FaultSimEngine e);
FaultSimEngine ParseFaultSimEngine(std::string_view name);

// Planted differential-engine bugs behind guard "flag" failpoints, polled
// once per shard; the xcheck fault harness must catch every one of them
// (same discipline as logicsim::kKernelMutationFailpoints).
inline constexpr const char* kFaultSimMutationFailpoints[] = {
    "fault_sim.diff.stale_cone",      // readers of the first divergent
                                      // instruction each cycle not seeded
                                      // (sparse cone walk; forces it)
    "fault_sim.diff.premature_drop",  // lanes retired on a potential
                                      // (X) mismatch, not only a hard one
    "fault_sim.diff.dense_skip_observe",  // dense sweeps skip the first
                                          // observe net's strobe (forces
                                          // the dense path)
};

// A complete fault-simulation request. Aggregate-initialize in call order:
//   RunFaultSim({nl, {plan, seed, patterns}, faults});
//   RunFaultSim({nl, {plan, seed, patterns}, faults,
//                FaultSimEngine::kDifferential});
// `exec` controls only how the shards are scheduled; the result is
// bit-identical for every thread count and engine (given no guard trips).
struct FaultSimRequest {
  const netlist::Netlist& nl;
  StimulusSpec stimulus;
  std::span<const StuckFault> faults;
  FaultSimEngine engine = FaultSimEngine::kParallel;
  exec::Options exec = {};
  // Optional injected shared pool (a long-lived service multiplexing many
  // requests onto one worker set); nullptr builds a private pool from
  // `exec`. Scheduling only — results are bit-identical either way. The
  // differential engine prefers max_chunk_units = 1; an injected pool
  // should be built that way (harmless for the other engines). Not owned.
  exec::Pool* pool = nullptr;
  // Cooperative limits for this run; ignored when `checker` is set.
  guard::Limits limits = {};
  // Optional external checker, for callers (the pipeline) that pool one
  // deadline/cycle budget across several engine runs. Not owned.
  guard::Checker* checker = nullptr;
  // Optional pre-compiled program for `nl` (see header comment); when
  // nullptr the program is resolved once per call.
  std::shared_ptr<const logicsim::CompiledNetlist> compiled = {};
  // Golden-trace cache for the serial/differential golden passes; nullptr
  // selects logicsim::GoldenTraceCache::Global(). Not owned.
  logicsim::GoldenTraceCache* golden_cache = nullptr;
  // Optional bound checkpoint journal (see ckpt/journal.hpp). When set, the
  // engines prefill results from its replayed fault spans, skip the covered
  // units, and append every newly completed unit's span in unit-index order
  // (via the exec ordered-completion hook), so a resumed campaign is
  // byte-identical to an uninterrupted one and journal contents are
  // thread-count-independent. The differential engine runs its
  // checkpointable static-shard mode when a journal is present (results
  // are bit-identical either way; see DESIGN.md). Not owned.
  ckpt::Journal* journal = nullptr;
  // Simulation lane width: 64, 256, 512, or 0 for auto. Auto resolves via
  // simd::ResolveLaneWords (PFD_LANES, else the active backend's natural
  // width) for the parallel engine; the serial engine reads only lane 0
  // and the differential engine settles the union dirty cone of a shard's
  // faults (which grows superlinearly with faults per shard and loses
  // throughput wide), so auto pins both at 64 (an explicit width is still
  // honoured, for the equivalence matrix). Per-fault results are
  // bit-identical at every width — lanes are bitwise-independent, so a wide
  // machine is exactly lane_words 64-lane machines in lockstep; the width
  // only changes how many faults one shard retires. Checkpointed campaigns
  // (journal != nullptr) always run the 64-lane framing so journal spans
  // stay width-independent; requesting a wider explicit width with a
  // journal bound is an error.
  int lanes = 0;
};

FaultSimResult RunFaultSim(const FaultSimRequest& request);

// PR-2-style transition shim for the pre-StimulusSpec positional shape.
// New code aggregate-initializes FaultSimRequest directly.
[[deprecated(
    "aggregate-initialize FaultSimRequest with a StimulusSpec: "
    "RunFaultSim({nl, {plan, seed, patterns}, faults, engine})")]]
inline FaultSimResult RunFaultSim(const netlist::Netlist& nl,
                                  const TestPlan& plan,
                                  std::span<const StuckFault> faults,
                                  std::uint32_t tpgr_seed, int num_patterns,
                                  FaultSimEngine engine =
                                      FaultSimEngine::kParallel) {
  return RunFaultSim(
      {nl, {plan, tpgr_seed, num_patterns}, faults, engine});
}

}  // namespace pfd::fault
