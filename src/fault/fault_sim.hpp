// Stuck-at fault simulation engines behind one request-based entry point.
//
// RunFaultSim(request) owns all fault-simulation work. Two engines with
// identical semantics select via FaultSimRequest::engine:
//   * kParallel — 64-lane parallel-fault simulation: lane 0 is the
//     fault-free machine and up to 63 faults ride along in the other lanes,
//     giving a ~60x speedup. This is the production engine the Section-5
//     pipeline uses for its TPGR pre-pass.
//   * kSerial — one faulty machine at a time; the straightforward reference
//     implementation used for validation.
//
// Both shard across worker threads (exec::Options): the parallel engine
// splits the fault list into 63-fault lane groups and the serial engine
// fans out single faults; every shard owns its logicsim::Simulator and its
// own TPGR stream seeded identically, and writes disjoint result slots, so
// results are bit-identical for any thread count.
//
// Robustness (pfd::guard): shards run under exec::ParallelForGuarded — a
// throwing shard is quarantined and retried once instead of aborting the
// campaign, and FaultSimRequest::limits (or an external shared checker) is
// checked at shard boundaries and once per pattern inside each shard.
// Faults whose shard never completed keep FaultStatus::kNotRun and the
// returned FaultSimResult::run_status says why (deadline, cancellation,
// cycle budget, or per-unit failures) plus which shards completed.
// Failpoints: "fault_sim.shard" (parallel), "fault_sim.serial_fault".
//
// Both reproduce the "potentially detected" semantics of the GENTEST
// simulator the paper used: if the fault-free response is known but the
// faulty response is X at a strobe point, the fault is only *potentially*
// detected (the real hardware would show whatever the register held at
// boot-up). The paper's step 2 deliberately upgrades such faults to
// detected; that policy decision lives in the pipeline, not here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "guard/guard.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/netlist.hpp"

namespace pfd::fault {

// How a batch of test patterns exercises the system under test. One pattern
// = `cycles_per_pattern` clock cycles: reset is asserted during cycle 0,
// data operands are applied (and held) for the whole pattern, and the
// observation nets are compared against the fault-free machine at each
// strobe cycle.
struct TestPlan {
  netlist::GateId reset = netlist::kNoGate;
  // Data operands; each operand is a list of primary-input bit gates,
  // LSB first. The TPGR deals operands in this order.
  std::vector<std::vector<netlist::GateId>> operand_bits;
  int cycles_per_pattern = 0;
  // Within-pattern cycle indices at which the observation nets are strobed.
  std::vector<int> strobe_cycles;
  // Nets compared against the fault-free machine (typically the datapath
  // primary outputs; the CFR check observes the controller output lines
  // instead).
  std::vector<netlist::GateId> observe;
  // Primary inputs held at a constant value for the whole run (e.g. a DFT
  // test_mode pin or observation-session selects).
  std::vector<std::pair<netlist::GateId, Trit>> pinned;
};

enum class FaultStatus : std::uint8_t {
  kUndetected = 0,
  kDetected = 1,
  kPotentiallyDetected = 2,
  // The fault's shard never ran to completion (guard tripped or the shard
  // failed even after retry); the fault is undecided, not undetected.
  kNotRun = 3,
};

const char* FaultStatusName(FaultStatus s);

struct FaultSimResult {
  std::vector<FaultStatus> status;          // per fault, input order
  std::vector<int> first_detect_pattern;    // -1 when never hard-detected
  int patterns = 0;
  // Why anything is missing: completed shard indices, quarantined shards,
  // and the trip code when a limit fired. kOk when the run was clean.
  guard::RunStatus run_status;

  std::size_t CountWithStatus(FaultStatus s) const;
};

// Registers the stuck-at fault as lane forces on a live simulator.
void InjectFault(logicsim::Simulator& sim, const StuckFault& f,
                 std::uint64_t lane_mask);

enum class FaultSimEngine : std::uint8_t {
  kParallel,  // 63 faults per 64-lane shard (production)
  kSerial,    // one faulty machine per shard (reference)
};

// A complete fault-simulation request. Aggregate-initialize in call order:
//   RunFaultSim({nl, plan, faults, seed, patterns});
// `exec` controls only how the shards are scheduled; the result is
// bit-identical for every thread count (given no guard trips).
struct FaultSimRequest {
  const netlist::Netlist& nl;
  const TestPlan& plan;
  std::span<const StuckFault> faults;
  std::uint32_t tpgr_seed = 0;
  int num_patterns = 0;
  FaultSimEngine engine = FaultSimEngine::kParallel;
  exec::Options exec;
  // Cooperative limits for this run; ignored when `checker` is set.
  guard::Limits limits;
  // Optional external checker, for callers (the pipeline) that pool one
  // deadline/cycle budget across several engine runs. Not owned.
  guard::Checker* checker = nullptr;
};

FaultSimResult RunFaultSim(const FaultSimRequest& request);

}  // namespace pfd::fault
