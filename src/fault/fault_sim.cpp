#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "logicsim/golden_cache.hpp"
#include "obs/trace.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::fault {

using netlist::GateId;

const char* FaultStatusName(FaultStatus s) {
  switch (s) {
    case FaultStatus::kUndetected: return "undetected";
    case FaultStatus::kDetected: return "detected";
    case FaultStatus::kPotentiallyDetected: return "potentially-detected";
    case FaultStatus::kNotRun: return "not-run";
  }
  return "?";
}

std::size_t FaultSimResult::CountWithStatus(FaultStatus s) const {
  return static_cast<std::size_t>(
      std::count(status.begin(), status.end(), s));
}

void InjectFault(logicsim::Simulator& sim, const StuckFault& f,
                 std::uint64_t lane_mask) {
  if (f.pin == 0) {
    sim.ForceOutput(f.gate, f.value, lane_mask);
  } else {
    sim.ForcePin(f.gate, f.pin - 1, f.value, lane_mask);
  }
}

namespace {

// Faults per 64-lane shard; lane 0 carries the fault-free machine.
constexpr std::size_t kFaultLanes = 63;

void CheckPlan(const netlist::Netlist& nl, const TestPlan& plan) {
  PFD_CHECK_MSG(plan.cycles_per_pattern > 0, "empty test plan");
  PFD_CHECK_MSG(!plan.observe.empty(), "test plan observes nothing");
  for (int c : plan.strobe_cycles) {
    PFD_CHECK_MSG(c >= 0 && c < plan.cycles_per_pattern,
                  "strobe cycle out of range");
  }
  for (const auto& op : plan.operand_bits) {
    PFD_CHECK_MSG(!op.empty() && op.size() <= BitVec::kMaxWidth,
                  "bad operand width");
    for (GateId g : op) {
      PFD_CHECK_MSG(nl.gate(g).kind == netlist::GateKind::kInput,
                    "operand bit is not a primary input");
    }
  }
  for (const auto& [gate, value] : plan.pinned) {
    PFD_CHECK_MSG(nl.gate(gate).kind == netlist::GateKind::kInput,
                  "pinned net is not a primary input");
    PFD_CHECK_MSG(value != Trit::kX, "pinned value must be known");
  }
}

// Cache key for the serial engine's golden response pass: netlist hash plus
// a digest of the full stimulus/observation contract — TPGR seed, pattern
// count, reset protocol, strobe schedule, observed nets, operand wiring,
// and pinned inputs. Identical runs (the benches, repeated campaigns over
// one design) replay the recorded strobe responses instead of
// re-simulating the fault-free machine.
logicsim::GoldenKey SerialGoldenKey(const netlist::Netlist& nl,
                                    const TestPlan& plan,
                                    std::uint32_t tpgr_seed,
                                    int num_patterns) {
  logicsim::Fnv1a h;
  h.AddBytes("serial_golden", 13);  // consumer domain tag
  h.Add(tpgr_seed);
  h.Add(static_cast<std::uint64_t>(num_patterns));
  h.Add(static_cast<std::uint64_t>(plan.cycles_per_pattern));
  h.Add(static_cast<std::uint64_t>(plan.reset));
  h.Add(plan.strobe_cycles.size());
  for (int c : plan.strobe_cycles) h.Add(static_cast<std::uint64_t>(c));
  h.Add(plan.observe.size());
  for (GateId g : plan.observe) h.Add(g);
  h.Add(plan.operand_bits.size());
  for (const auto& op : plan.operand_bits) {
    h.Add(op.size());
    for (GateId g : op) h.Add(g);
  }
  h.Add(plan.pinned.size());
  for (const auto& [gate, value] : plan.pinned) {
    h.Add(gate);
    h.Add(static_cast<std::uint64_t>(value));
  }
  logicsim::GoldenKey key;
  key.netlist_hash = nl.StructuralHash();
  key.stimulus_hash = h.hash();
  key.cycles = static_cast<std::uint64_t>(num_patterns) *
               static_cast<std::uint64_t>(plan.cycles_per_pattern);
  return key;
}

std::vector<int> OperandWidths(const TestPlan& plan) {
  std::vector<int> widths;
  widths.reserve(plan.operand_bits.size());
  for (const auto& op : plan.operand_bits) {
    widths.push_back(static_cast<int>(op.size()));
  }
  return widths;
}

// Applies one pattern's operand values (same on all 64 lanes).
void DriveOperands(logicsim::Simulator& sim, const TestPlan& plan,
                   const std::vector<BitVec>& pattern) {
  for (const auto& [gate, value] : plan.pinned) {
    sim.SetInputAllLanes(gate, value);
  }
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const BitVec& v = pattern[op];
    for (std::size_t b = 0; b < plan.operand_bits[op].size(); ++b) {
      sim.SetInputAllLanes(plan.operand_bits[op][b],
                           v.bit(static_cast<int>(b)) ? Trit::kOne
                                                      : Trit::kZero);
    }
  }
}

// One 64-lane shard of the parallel engine: faults [shard_start,
// shard_start + shard_size) ride lanes 1..shard_size on a private simulator
// fed by a private TPGR stream (every shard replays the same `tpgr_seed`
// pattern sequence, exactly as one machine would see it), and results land
// in this shard's disjoint slice of `result`. Shards therefore compute the
// same bits no matter which thread runs them, or in what order. The guard
// check runs once per pattern; an abandoned shard leaves its faults at
// kNotRun (statuses are only written after the full pattern sweep).
void SimulateParallelShard(const FaultSimRequest& req,
                           const std::vector<int>& widths,
                           std::size_t shard_start, std::size_t shard_size,
                           guard::Checker& check, FaultSimResult& result) {
  const TestPlan& plan = req.plan;
  logicsim::Simulator sim(req.nl);
  for (std::size_t i = 0; i < shard_size; ++i) {
    InjectFault(sim, req.faults[shard_start + i], 1ULL << (i + 1));
  }

  tpg::Tpgr tpgr(req.tpgr_seed);
  std::uint64_t detected = 0;    // lanes with a hard mismatch
  std::uint64_t potential = 0;   // lanes with known-vs-X mismatch only

  for (int p = 0; p < req.num_patterns; ++p) {
    check.CheckOrThrow();
    const std::vector<BitVec> pattern = tpgr.NextPattern(widths);
    DriveOperands(sim, plan, pattern);
    std::uint64_t pattern_detects = 0;
    for (int c = 0; c < plan.cycles_per_pattern; ++c) {
      if (plan.reset != netlist::kNoGate) {
        sim.SetInputAllLanes(plan.reset, c == 0 ? Trit::kOne : Trit::kZero);
      }
      sim.Step();
      if (std::find(plan.strobe_cycles.begin(), plan.strobe_cycles.end(),
                    c) == plan.strobe_cycles.end()) {
        continue;
      }
      for (GateId g : plan.observe) {
        const Word3 w = sim.Value(g);
        if ((w.known & 1ULL) == 0) continue;  // fault-free response X
        const std::uint64_t golden = (w.val & 1ULL) != 0 ? ~0ULL : 0ULL;
        pattern_detects |= w.known & (w.val ^ golden);
        potential |= ~w.known;
      }
    }
    check.AddSimCycles(static_cast<std::uint64_t>(plan.cycles_per_pattern));
    const std::uint64_t newly = pattern_detects & ~detected;
    if (newly != 0) {
      detected |= newly;
      for (std::size_t i = 0; i < shard_size; ++i) {
        if ((newly >> (i + 1)) & 1ULL) {
          result.first_detect_pattern[shard_start + i] = p;
        }
      }
    }
  }

  for (std::size_t i = 0; i < shard_size; ++i) {
    const std::uint64_t bit = 1ULL << (i + 1);
    FaultStatus s = FaultStatus::kUndetected;
    if (detected & bit) {
      s = FaultStatus::kDetected;
    } else if (potential & bit) {
      s = FaultStatus::kPotentiallyDetected;
    }
    result.status[shard_start + i] = s;
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("fault_sim.batches").Add(1);
    reg.GetCounter("fault_sim.lanes").Add(shard_size);
    reg.GetCounter("fault_sim.patterns")
        .Add(static_cast<std::uint64_t>(req.num_patterns));
    reg.GetCounter("fault_sim.detected")
        .Add(static_cast<std::uint64_t>(std::popcount(detected)));
    reg.GetCounter("fault_sim.potential")
        .Add(static_cast<std::uint64_t>(
            std::popcount(potential & ~detected)));
  }
}

FaultSimResult RunParallel(const FaultSimRequest& req,
                           guard::Checker& check) {
  obs::Span span("fault_sim.parallel",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(req.faults.size())},
                      {"patterns", req.num_patterns}}));
  FaultSimResult result;
  result.status.assign(req.faults.size(), FaultStatus::kNotRun);
  result.first_detect_pattern.assign(req.faults.size(), -1);
  result.patterns = req.num_patterns;

  const std::vector<int> widths = OperandWidths(req.plan);
  // An empty fault list still runs one (golden-only) shard, preserving the
  // engine's warm-up/counter behaviour for coverage probes.
  const std::size_t num_shards =
      req.faults.empty() ? 1
                         : (req.faults.size() + kFaultLanes - 1) / kFaultLanes;
  // The netlist's topo-order cache is built lazily on first use; force it
  // here so the shard workers' Simulator constructions only ever read it.
  req.nl.CombinationalOrder();
  exec::Pool pool(req.exec);
  result.run_status = pool.ParallelForGuarded(
      num_shards,
      [&](std::size_t shard) {
        guard::MaybeFail("fault_sim.shard");
        const std::size_t shard_start = shard * kFaultLanes;
        const std::size_t shard_size =
            std::min(kFaultLanes, req.faults.size() - shard_start);
        obs::Span shard_span("fault_sim.shard");
        const bool obs_on = obs::Enabled();
        const double t0 = obs_on ? obs::NowMicros() : 0.0;
        SimulateParallelShard(req, widths, shard_start, shard_size, check,
                              result);
        if (obs_on) {
          static obs::Histogram& hist =
              obs::Registry::Global().GetHistogram("fault_sim.shard_us");
          hist.RecordDouble(obs::NowMicros() - t0);
        }
      },
      &check);
  return result;
}

FaultSimResult RunSerial(const FaultSimRequest& req, guard::Checker& check) {
  obs::Span span("fault_sim.serial",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(req.faults.size())},
                      {"patterns", req.num_patterns}}));
  const TestPlan& plan = req.plan;
  const std::vector<int> widths = OperandWidths(plan);

  FaultSimResult result;
  result.status.assign(req.faults.size(), FaultStatus::kNotRun);
  result.first_detect_pattern.assign(req.faults.size(), -1);
  result.patterns = req.num_patterns;

  // Golden pass: record the fault-free response at every strobe, memoized
  // in the golden-trace cache (a hit replays the recorded responses and
  // spends no simulation budget). A guard trip here means no fault can be
  // decided at all: report the trip with every fault at kNotRun.
  const logicsim::GoldenKey golden_key =
      SerialGoldenKey(req.nl, plan, req.tpgr_seed, req.num_patterns);
  std::vector<Trit> golden;
  if (const auto entry = logicsim::GoldenTraceCache::Global().Find(golden_key)) {
    golden = entry->trits;
  } else {
    try {
      logicsim::Simulator sim(req.nl);
      tpg::Tpgr tpgr(req.tpgr_seed);
      for (int p = 0; p < req.num_patterns; ++p) {
        check.CheckOrThrow();
        DriveOperands(sim, plan, tpgr.NextPattern(widths));
        for (int c = 0; c < plan.cycles_per_pattern; ++c) {
          if (plan.reset != netlist::kNoGate) {
            sim.SetInputAllLanes(plan.reset,
                                 c == 0 ? Trit::kOne : Trit::kZero);
          }
          sim.Step();
          if (std::find(plan.strobe_cycles.begin(), plan.strobe_cycles.end(),
                        c) == plan.strobe_cycles.end()) {
            continue;
          }
          for (GateId g : plan.observe) golden.push_back(sim.ValueLane(g, 0));
        }
        check.AddSimCycles(
            static_cast<std::uint64_t>(plan.cycles_per_pattern));
      }
    } catch (const guard::Tripped& t) {
      result.run_status.code = t.status.code;
      result.run_status.message = t.status.message;
      result.run_status.total_units = req.faults.size();
      return result;
    }
    // Only a clean, complete pass is publishable under the complete key.
    auto fresh = std::make_shared<logicsim::GoldenEntry>();
    fresh->trits = golden;
    logicsim::GoldenTraceCache::Global().Insert(golden_key, std::move(fresh));
  }

  // Each fault is an independent shard: private simulator, private TPGR
  // stream, disjoint result slot.
  exec::Pool pool(req.exec);
  result.run_status = pool.ParallelForGuarded(
      req.faults.size(),
      [&](std::size_t fi) {
        guard::MaybeFail("fault_sim.serial_fault");
        logicsim::Simulator sim(req.nl);
        InjectFault(sim, req.faults[fi], ~0ULL);
        tpg::Tpgr tpgr(req.tpgr_seed);
        bool detected = false;
        bool potential = false;
        std::size_t cursor = 0;
        int first_detect = -1;
        for (int p = 0; p < req.num_patterns && !detected; ++p) {
          check.CheckOrThrow();
          DriveOperands(sim, plan, tpgr.NextPattern(widths));
          for (int c = 0; c < plan.cycles_per_pattern; ++c) {
            if (plan.reset != netlist::kNoGate) {
              sim.SetInputAllLanes(plan.reset,
                                   c == 0 ? Trit::kOne : Trit::kZero);
            }
            sim.Step();
            if (std::find(plan.strobe_cycles.begin(),
                          plan.strobe_cycles.end(),
                          c) == plan.strobe_cycles.end()) {
              continue;
            }
            for (GateId g : plan.observe) {
              const Trit expect = golden[cursor++];
              if (expect == Trit::kX) continue;
              const Trit got = sim.ValueLane(g, 0);
              if (got == Trit::kX) {
                potential = true;
              } else if (got != expect) {
                if (!detected) first_detect = p;
                detected = true;
              }
            }
          }
          check.AddSimCycles(
              static_cast<std::uint64_t>(plan.cycles_per_pattern));
        }
        // Commit the fault's slots only on completion, so an abandoned or
        // retried unit never leaves a half-written result behind.
        result.first_detect_pattern[fi] = first_detect;
        result.status[fi] = detected    ? FaultStatus::kDetected
                            : potential ? FaultStatus::kPotentiallyDetected
                                        : FaultStatus::kUndetected;
        if (obs::Enabled()) {
          obs::Registry& reg = obs::Registry::Global();
          reg.GetCounter("fault_sim.serial_faults").Add(1);
          // A hard detect stops the pattern loop early — the drop that
          // makes serial fault dropping worthwhile at all.
          if (detected) reg.GetCounter("fault_sim.serial_early_drops").Add(1);
        }
      },
      &check);
  return result;
}

}  // namespace

FaultSimResult RunFaultSim(const FaultSimRequest& request) {
  CheckPlan(request.nl, request.plan);
  guard::Checker local(request.limits);
  guard::Checker& check =
      request.checker != nullptr ? *request.checker : local;
  return request.engine == FaultSimEngine::kParallel
             ? RunParallel(request, check)
             : RunSerial(request, check);
}

}  // namespace pfd::fault
