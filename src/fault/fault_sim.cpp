#include "fault/fault_sim.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <memory>
#include <string>

#include "base/error.hpp"
#include "base/simd.hpp"
#include "logicsim/golden_cache.hpp"
#include "obs/trace.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::fault {

using netlist::GateId;

const char* FaultStatusName(FaultStatus s) {
  switch (s) {
    case FaultStatus::kUndetected: return "undetected";
    case FaultStatus::kDetected: return "detected";
    case FaultStatus::kPotentiallyDetected: return "potentially-detected";
    case FaultStatus::kNotRun: return "not-run";
  }
  return "?";
}

const char* FaultSimEngineName(FaultSimEngine e) {
  switch (e) {
    case FaultSimEngine::kParallel: return "parallel";
    case FaultSimEngine::kSerial: return "serial";
    case FaultSimEngine::kDifferential: return "differential";
  }
  return "?";
}

FaultSimEngine ParseFaultSimEngine(std::string_view name) {
  if (name == "parallel") return FaultSimEngine::kParallel;
  if (name == "serial") return FaultSimEngine::kSerial;
  if (name == "differential") return FaultSimEngine::kDifferential;
  throw Error("unknown fault engine '" + std::string(name) +
              "' (expected parallel, serial, or differential)");
}

std::size_t FaultSimResult::CountWithStatus(FaultStatus s) const {
  return static_cast<std::size_t>(
      std::count(status.begin(), status.end(), s));
}

void InjectFault(logicsim::Simulator& sim, const StuckFault& f,
                 const LaneMask& lane_mask) {
  if (f.pin == 0) {
    sim.ForceOutput(f.gate, f.value, lane_mask);
  } else {
    sim.ForcePin(f.gate, f.pin - 1, f.value, lane_mask);
  }
}

namespace {

// Faults per parallel-engine shard at `words` lane words: lane 0 carries
// the fault-free machine, every other lane one fault.
constexpr std::size_t FaultLanes(int words) {
  return static_cast<std::size_t>(words) * kLaneWordBits - 1;
}
// The differential engine diffs against a recorded golden trace instead of
// carrying the fault-free machine in lane 0, so every lane carries a fault.
constexpr std::size_t DiffLanes(int words) {
  return static_cast<std::size_t>(words) * kLaneWordBits;
}

void CheckPlan(const netlist::Netlist& nl, const TestPlan& plan) {
  PFD_CHECK_MSG(plan.cycles_per_pattern > 0, "empty test plan");
  PFD_CHECK_MSG(!plan.observe.empty(), "test plan observes nothing");
  for (int c : plan.strobe_cycles) {
    PFD_CHECK_MSG(c >= 0 && c < plan.cycles_per_pattern,
                  "strobe cycle out of range");
  }
  for (const auto& op : plan.operand_bits) {
    PFD_CHECK_MSG(!op.empty() && op.size() <= BitVec::kMaxWidth,
                  "bad operand width");
    for (GateId g : op) {
      PFD_CHECK_MSG(nl.gate(g).kind == netlist::GateKind::kInput,
                    "operand bit is not a primary input");
    }
  }
  for (const auto& [gate, value] : plan.pinned) {
    PFD_CHECK_MSG(nl.gate(gate).kind == netlist::GateKind::kInput,
                  "pinned net is not a primary input");
    PFD_CHECK_MSG(value != Trit::kX, "pinned value must be known");
  }
}

// Digest of the fields of the stimulus that drive the machine: TPGR stream,
// pattern count and length, reset protocol, operand wiring, pinned inputs.
// Shared by the per-engine golden-trace keys below; each adds its own domain
// tag first plus any observation fields its artefact depends on.
void AddDriveDigest(logicsim::Fnv1a& h, const StimulusSpec& stimulus) {
  const TestPlan& plan = stimulus.plan;
  h.Add(stimulus.tpgr_seed);
  h.Add(static_cast<std::uint64_t>(stimulus.num_patterns));
  h.Add(static_cast<std::uint64_t>(plan.cycles_per_pattern));
  h.Add(static_cast<std::uint64_t>(plan.reset));
  h.Add(plan.operand_bits.size());
  for (const auto& op : plan.operand_bits) {
    h.Add(op.size());
    for (GateId g : op) h.Add(g);
  }
  h.Add(plan.pinned.size());
  for (const auto& [gate, value] : plan.pinned) {
    h.Add(gate);
    h.Add(static_cast<std::uint64_t>(value));
  }
}

// Cache key for the serial engine's golden response pass. The artefact is
// the strobed response stream, so the digest adds the strobe schedule and
// observed nets on top of the drive digest. Identical runs (the benches,
// repeated campaigns over one design) replay the recorded responses instead
// of re-simulating the fault-free machine.
logicsim::GoldenKey SerialGoldenKey(const netlist::Netlist& nl,
                                    const StimulusSpec& stimulus,
                                    int lane_words) {
  const TestPlan& plan = stimulus.plan;
  logicsim::Fnv1a h;
  h.AddBytes("serial_golden", 13);  // consumer domain tag
  // The recorded artefact is width-independent (the golden pass reads lane
  // 0 only), but the key still folds the campaign's lane width in so a
  // mixed-width cache can never alias — a lookup from a different width
  // misses cleanly instead of trusting the invariant.
  h.Add(static_cast<std::uint64_t>(lane_words));
  AddDriveDigest(h, stimulus);
  h.Add(plan.strobe_cycles.size());
  for (int c : plan.strobe_cycles) h.Add(static_cast<std::uint64_t>(c));
  h.Add(plan.observe.size());
  for (GateId g : plan.observe) h.Add(g);
  logicsim::GoldenKey key;
  key.netlist_hash = nl.StructuralHash();
  key.stimulus_hash = h.hash();
  key.cycles = static_cast<std::uint64_t>(stimulus.num_patterns) *
               static_cast<std::uint64_t>(plan.cycles_per_pattern);
  return key;
}

// Cache key for the differential engine's golden plane trace. The artefact
// is the full per-cycle machine state, which depends only on what *drives*
// the machine — deliberately not on strobe_cycles/observe, so campaigns
// differing only in what they watch (the CFR check observes control lines,
// classification observes datapath outputs) share one recorded trace.
logicsim::GoldenKey DiffGoldenKey(const netlist::Netlist& nl,
                                  const StimulusSpec& stimulus,
                                  int lane_words) {
  logicsim::Fnv1a h;
  h.AddBytes("diff_golden", 11);  // consumer domain tag
  h.Add(static_cast<std::uint64_t>(lane_words));  // no mixed-width aliasing
  AddDriveDigest(h, stimulus);
  logicsim::GoldenKey key;
  key.netlist_hash = nl.StructuralHash();
  key.stimulus_hash = h.hash();
  key.cycles = static_cast<std::uint64_t>(stimulus.num_patterns) *
               static_cast<std::uint64_t>(stimulus.plan.cycles_per_pattern);
  return key;
}

// Prefills `result` from a bound journal's replayed fault spans and returns
// per-fault coverage flags. Bind already proved the journal belongs to this
// design/stimulus/engine; the bounds check guards against a hand-edited but
// checksum-valid file, refusing (pfd::Error) instead of mis-replaying.
std::vector<char> ReplayJournal(const ckpt::Journal& journal,
                                std::size_t num_faults,
                                FaultSimResult& result) {
  std::vector<char> covered(num_faults, 0);
  std::uint64_t replayed = 0;
  for (const ckpt::FaultSpan& span : journal.fault_spans()) {
    PFD_CHECK_MSG(span.begin <= num_faults &&
                      span.status.size() <= num_faults - span.begin,
                  "checkpoint journal '" + journal.path() +
                      "' holds a fault span outside this campaign's fault "
                      "list");
    for (std::size_t i = 0; i < span.status.size(); ++i) {
      result.status[span.begin + i] =
          static_cast<FaultStatus>(span.status[i]);
      result.first_detect_pattern[span.begin + i] = span.first_detect[i];
      covered[span.begin + i] = 1;
    }
    replayed += span.status.size();
  }
  if (replayed != 0 && obs::Enabled()) {
    obs::Registry::Global().GetCounter("fault_sim.replayed_faults")
        .Add(replayed);
  }
  return covered;
}

std::vector<int> OperandWidths(const TestPlan& plan) {
  std::vector<int> widths;
  widths.reserve(plan.operand_bits.size());
  for (const auto& op : plan.operand_bits) {
    widths.push_back(static_cast<int>(op.size()));
  }
  return widths;
}

// Applies one pattern's operand values (same on all 64 lanes).
void DriveOperands(logicsim::Simulator& sim, const TestPlan& plan,
                   const std::vector<BitVec>& pattern) {
  for (const auto& [gate, value] : plan.pinned) {
    sim.SetInputAllLanes(gate, value);
  }
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const BitVec& v = pattern[op];
    for (std::size_t b = 0; b < plan.operand_bits[op].size(); ++b) {
      sim.SetInputAllLanes(plan.operand_bits[op][b],
                           v.bit(static_cast<int>(b)) ? Trit::kOne
                                                      : Trit::kZero);
    }
  }
}

// One 64-lane shard of the parallel engine: faults [shard_start,
// shard_start + shard_size) ride lanes 1..shard_size on a private simulator
// fed by a private TPGR stream (every shard replays the same `tpgr_seed`
// pattern sequence, exactly as one machine would see it), and results land
// in this shard's disjoint slice of `result`. Shards therefore compute the
// same bits no matter which thread runs them, or in what order. The guard
// check runs once per pattern; an abandoned shard leaves its faults at
// kNotRun (statuses are only written after the full pattern sweep).
void SimulateParallelShard(
    const FaultSimRequest& req,
    const std::shared_ptr<const logicsim::CompiledNetlist>& prog,
    const std::vector<int>& widths, int words, std::size_t shard_start,
    std::size_t shard_size, guard::Checker& check, FaultSimResult& result) {
  const TestPlan& plan = req.stimulus.plan;
  logicsim::Simulator sim(req.nl, prog, words);
  for (std::size_t i = 0; i < shard_size; ++i) {
    InjectFault(sim, req.faults[shard_start + i],
                LaneMask::Lane(static_cast<int>(i) + 1));
  }

  tpg::Tpgr tpgr(req.stimulus.tpgr_seed);
  // Per-lane-word detect state; lane l sits in word l/64, bit l%64. The
  // golden machine rides lane 0 (word 0, bit 0) and its self-compare bits
  // are zero by construction, exactly as at the historical 64-lane width.
  std::array<std::uint64_t, kMaxLaneWords> detected{};   // hard mismatch
  std::array<std::uint64_t, kMaxLaneWords> potential{};  // known-vs-X only

  for (int p = 0; p < req.stimulus.num_patterns; ++p) {
    check.CheckOrThrow();
    const std::vector<BitVec> pattern = tpgr.NextPattern(widths);
    DriveOperands(sim, plan, pattern);
    std::array<std::uint64_t, kMaxLaneWords> pattern_detects{};
    for (int c = 0; c < plan.cycles_per_pattern; ++c) {
      if (plan.reset != netlist::kNoGate) {
        sim.SetInputAllLanes(plan.reset, c == 0 ? Trit::kOne : Trit::kZero);
      }
      sim.Step();
      if (std::find(plan.strobe_cycles.begin(), plan.strobe_cycles.end(),
                    c) == plan.strobe_cycles.end()) {
        continue;
      }
      for (GateId g : plan.observe) {
        const Word3 w0 = sim.Value(g);
        if ((w0.known & 1ULL) == 0) continue;  // fault-free response X
        const std::uint64_t golden = (w0.val & 1ULL) != 0 ? ~0ULL : 0ULL;
        for (int j = 0; j < words; ++j) {
          const Word3 w = sim.ValueWord(g, j);
          pattern_detects[j] |= w.known & (w.val ^ golden);
          potential[j] |= ~w.known;
        }
      }
    }
    check.AddSimCycles(static_cast<std::uint64_t>(plan.cycles_per_pattern));
    for (int j = 0; j < words; ++j) {
      const std::uint64_t newly = pattern_detects[j] & ~detected[j];
      if (newly == 0) continue;
      detected[j] |= newly;
      for (int b = 0; b < kLaneWordBits; ++b) {
        if (((newly >> b) & 1ULL) == 0) continue;
        const std::size_t lane =
            static_cast<std::size_t>(j) * kLaneWordBits + b;
        // lane 0 is golden; lane i+1 carries fault i.
        if (lane == 0 || lane > shard_size) continue;
        result.first_detect_pattern[shard_start + lane - 1] = p;
      }
    }
  }

  std::uint64_t detected_faults = 0;
  std::uint64_t potential_faults = 0;
  for (std::size_t i = 0; i < shard_size; ++i) {
    const std::size_t lane = i + 1;
    const std::size_t j = lane / kLaneWordBits;
    const std::uint64_t bit = 1ULL << (lane % kLaneWordBits);
    FaultStatus s = FaultStatus::kUndetected;
    if (detected[j] & bit) {
      s = FaultStatus::kDetected;
      ++detected_faults;
    } else if (potential[j] & bit) {
      s = FaultStatus::kPotentiallyDetected;
      ++potential_faults;
    }
    result.status[shard_start + i] = s;
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("fault_sim.batches").Add(1);
    reg.GetCounter("fault_sim.lanes").Add(shard_size);
    reg.GetCounter("fault_sim.patterns")
        .Add(static_cast<std::uint64_t>(req.stimulus.num_patterns));
    reg.GetCounter("fault_sim.detected").Add(detected_faults);
    reg.GetCounter("fault_sim.potential").Add(potential_faults);
  }
}

FaultSimResult RunParallel(
    const FaultSimRequest& req,
    const std::shared_ptr<const logicsim::CompiledNetlist>& prog,
    int words, guard::Checker& check) {
  obs::Span span("fault_sim.parallel",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(req.faults.size())},
                      {"patterns", req.stimulus.num_patterns}}));
  FaultSimResult result;
  result.status.assign(req.faults.size(), FaultStatus::kNotRun);
  result.first_detect_pattern.assign(req.faults.size(), -1);
  result.patterns = req.stimulus.num_patterns;

  const std::vector<int> widths = OperandWidths(req.stimulus.plan);
  const std::size_t fault_lanes = FaultLanes(words);
  // An empty fault list still runs one (golden-only) shard, preserving the
  // engine's warm-up/counter behaviour for coverage probes.
  const std::size_t num_shards =
      req.faults.empty()
          ? 1
          : (req.faults.size() + fault_lanes - 1) / fault_lanes;

  // Checkpointing: replay journal spans into the result, mark fully covered
  // shards (their bodies early-return), and commit each newly completed
  // shard's span through the ordered hook so records land in shard order
  // for every thread count. AppendFaultSpan skips replayed begins.
  std::vector<char> shard_covered(num_shards, 0);
  std::function<void(std::size_t)> journal_commit;
  if (req.journal != nullptr) {
    const std::vector<char> covered =
        ReplayJournal(*req.journal, req.faults.size(), result);
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t begin = s * fault_lanes;
      const std::size_t size =
          std::min(fault_lanes, req.faults.size() - begin);
      bool all = size > 0;
      for (std::size_t i = 0; i < size && all; ++i) {
        all = covered[begin + i] != 0;
      }
      shard_covered[s] = all ? 1 : 0;
    }
    journal_commit = [&result, &req, fault_lanes](std::size_t shard) {
      const std::size_t begin = shard * fault_lanes;
      if (begin >= req.faults.size()) return;  // golden-only shard
      const std::size_t size =
          std::min(fault_lanes, req.faults.size() - begin);
      req.journal->AppendFaultSpan(
          begin,
          reinterpret_cast<const std::uint8_t*>(result.status.data() + begin),
          result.first_detect_pattern.data() + begin, size);
    };
  }

  exec::PoolLease pool(req.pool, req.exec);
  result.run_status = pool->ParallelForGuarded(
      num_shards,
      [&](std::size_t shard) {
        if (shard_covered[shard] != 0) return;  // replayed from the journal
        guard::MaybeFail("fault_sim.shard");
        const std::size_t shard_start = shard * fault_lanes;
        const std::size_t shard_size =
            std::min(fault_lanes, req.faults.size() - shard_start);
        obs::Span shard_span("fault_sim.shard");
        const bool obs_on = obs::Enabled();
        const double t0 = obs_on ? obs::NowMicros() : 0.0;
        SimulateParallelShard(req, prog, widths, words, shard_start,
                              shard_size, check, result);
        if (obs_on) {
          static obs::Histogram& hist =
              obs::Registry::Global().GetHistogram("fault_sim.shard_us");
          hist.RecordDouble(obs::NowMicros() - t0);
        }
      },
      &check, req.journal != nullptr ? &journal_commit : nullptr);
  return result;
}

FaultSimResult RunSerial(
    const FaultSimRequest& req,
    const std::shared_ptr<const logicsim::CompiledNetlist>& prog,
    int words, logicsim::GoldenTraceCache& cache, guard::Checker& check) {
  obs::Span span("fault_sim.serial",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(req.faults.size())},
                      {"patterns", req.stimulus.num_patterns}}));
  const TestPlan& plan = req.stimulus.plan;
  const int num_patterns = req.stimulus.num_patterns;
  const std::vector<int> widths = OperandWidths(plan);

  FaultSimResult result;
  result.status.assign(req.faults.size(), FaultStatus::kNotRun);
  result.first_detect_pattern.assign(req.faults.size(), -1);
  result.patterns = num_patterns;

  // Golden pass: record the fault-free response at every strobe, memoized
  // in the golden-trace cache (a hit replays the recorded responses and
  // spends no simulation budget). A guard trip here means no fault can be
  // decided at all: report the trip with every fault at kNotRun.
  const logicsim::GoldenKey golden_key =
      SerialGoldenKey(req.nl, req.stimulus, words);
  std::vector<Trit> golden;
  if (const auto entry = cache.Find(golden_key)) {
    golden = entry->trits;
  } else {
    try {
      logicsim::Simulator sim(req.nl, prog);
      tpg::Tpgr tpgr(req.stimulus.tpgr_seed);
      for (int p = 0; p < num_patterns; ++p) {
        check.CheckOrThrow();
        DriveOperands(sim, plan, tpgr.NextPattern(widths));
        for (int c = 0; c < plan.cycles_per_pattern; ++c) {
          if (plan.reset != netlist::kNoGate) {
            sim.SetInputAllLanes(plan.reset,
                                 c == 0 ? Trit::kOne : Trit::kZero);
          }
          sim.Step();
          if (std::find(plan.strobe_cycles.begin(), plan.strobe_cycles.end(),
                        c) == plan.strobe_cycles.end()) {
            continue;
          }
          for (GateId g : plan.observe) golden.push_back(sim.ValueLane(g, 0));
        }
        check.AddSimCycles(
            static_cast<std::uint64_t>(plan.cycles_per_pattern));
      }
    } catch (const guard::Tripped& t) {
      result.run_status.code = t.status.code;
      result.run_status.message = t.status.message;
      result.run_status.total_units = req.faults.size();
      return result;
    }
    // Only a clean, complete pass is publishable under the complete key.
    auto fresh = std::make_shared<logicsim::GoldenEntry>();
    fresh->trits = golden;
    cache.Insert(golden_key, std::move(fresh));
  }

  // Checkpointing: each serial unit is one fault, so journal spans are
  // single-fault spans committed in fault order by the ordered hook.
  std::vector<char> fault_covered;
  std::function<void(std::size_t)> journal_commit;
  if (req.journal != nullptr) {
    fault_covered = ReplayJournal(*req.journal, req.faults.size(), result);
    journal_commit = [&result, &req](std::size_t fi) {
      const std::uint8_t status =
          static_cast<std::uint8_t>(result.status[fi]);
      const std::int32_t first_detect = result.first_detect_pattern[fi];
      req.journal->AppendFaultSpan(fi, &status, &first_detect, 1);
    };
  }

  // Each fault is an independent shard: private simulator, private TPGR
  // stream, disjoint result slot.
  exec::PoolLease pool(req.pool, req.exec);
  result.run_status = pool->ParallelForGuarded(
      req.faults.size(),
      [&](std::size_t fi) {
        if (!fault_covered.empty() && fault_covered[fi] != 0) {
          return;  // replayed from the journal
        }
        guard::MaybeFail("fault_sim.serial_fault");
        // The engine reads only lane 0; wider widths are honoured (every
        // lane computes the same faulty machine) purely so the equivalence
        // matrix can pin serial results at each width.
        logicsim::Simulator sim(req.nl, prog, words);
        InjectFault(sim, req.faults[fi]);
        tpg::Tpgr tpgr(req.stimulus.tpgr_seed);
        bool detected = false;
        bool potential = false;
        std::size_t cursor = 0;
        int first_detect = -1;
        for (int p = 0; p < num_patterns && !detected; ++p) {
          check.CheckOrThrow();
          DriveOperands(sim, plan, tpgr.NextPattern(widths));
          for (int c = 0; c < plan.cycles_per_pattern; ++c) {
            if (plan.reset != netlist::kNoGate) {
              sim.SetInputAllLanes(plan.reset,
                                   c == 0 ? Trit::kOne : Trit::kZero);
            }
            sim.Step();
            if (std::find(plan.strobe_cycles.begin(),
                          plan.strobe_cycles.end(),
                          c) == plan.strobe_cycles.end()) {
              continue;
            }
            for (GateId g : plan.observe) {
              const Trit expect = golden[cursor++];
              if (expect == Trit::kX) continue;
              const Trit got = sim.ValueLane(g, 0);
              if (got == Trit::kX) {
                potential = true;
              } else if (got != expect) {
                if (!detected) first_detect = p;
                detected = true;
              }
            }
          }
          check.AddSimCycles(
              static_cast<std::uint64_t>(plan.cycles_per_pattern));
        }
        // Commit the fault's slots only on completion, so an abandoned or
        // retried unit never leaves a half-written result behind.
        result.first_detect_pattern[fi] = first_detect;
        result.status[fi] = detected    ? FaultStatus::kDetected
                            : potential ? FaultStatus::kPotentiallyDetected
                                        : FaultStatus::kUndetected;
        if (obs::Enabled()) {
          obs::Registry& reg = obs::Registry::Global();
          reg.GetCounter("fault_sim.serial_faults").Add(1);
          // A hard detect stops the pattern loop early — the drop that
          // makes serial fault dropping worthwhile at all.
          if (detected) reg.GetCounter("fault_sim.serial_early_drops").Add(1);
        }
      },
      &check, req.journal != nullptr ? &journal_commit : nullptr);
  return result;
}

// ---------------------------------------------------------------------------
// Differential engine.
//
// The golden machine is simulated once (memoized in the golden-trace cache)
// and its full lane-0 state — one val bit and one known bit per gate per
// cycle — is recorded as packed planes. Each shard then carries 64 faults
// and never simulates the whole machine: per cycle it seeds a ConeWalker at
// the fault sites and at sequential state that diverged from the recorded
// golden planes, evaluates only the drained (dirty-cone) instructions, and
// represents every gate outside the cone implicitly by its golden value.
// A lane retires the pattern it is hard-detected, and the per-lane force
// tables are rebuilt without it, so late patterns propagate only the cones
// of still-live faults. DESIGN.md argues bit-identity with kParallel.

// The recorded golden planes: counts[(2t)W .. (2t+1)W) is the val plane of
// cycle t, counts[(2t+1)W .. (2t+2)W) the known plane, bit g of word g/64.
struct DiffGolden {
  const std::uint64_t* planes = nullptr;
  std::size_t words = 0;  // words per plane = (num_gates + 63) / 64

  std::uint64_t ValBit(std::uint64_t t, GateId g) const {
    return (planes[2 * t * words + (g >> 6)] >> (g & 63)) & 1ULL;
  }
  std::uint64_t KnownBit(std::uint64_t t, GateId g) const {
    return (planes[(2 * t + 1) * words + (g >> 6)] >> (g & 63)) & 1ULL;
  }
  // 64-lane splat of the golden machine's state of gate g at cycle t.
  Word3 Splat(std::uint64_t t, GateId g) const {
    return {0ULL - ValBit(t, g), 0ULL - KnownBit(t, g)};
  }
};

// Per-lane state carried across a compaction boundary. A fault lane at a
// pattern boundary is fully characterized by its fault, its accumulated
// potential-detection flag, and the sparse set of captured-DFF bits that
// diverge from the golden commit; everything else (force tables, per-cycle
// divergence) is rebuilt from those. Lanes are bitwise-independent, so
// re-packing live lanes into fewer shards between rounds is invisible to
// the per-fault results.
struct CarriedCap {
  GateId dff;
  std::uint8_t val = 0;
  std::uint8_t known = 0;  // 0: the lane captured X
};
struct CarriedLane {
  std::uint32_t fault = 0;  // index into req.faults
  bool potential = false;
  bool has_x = false;  // any carried cap bit is X (compaction sort key)
  std::vector<CarriedCap> caps;
};

// One shard (up to 64*NW fault lanes) of the differential engine. The
// fault-free machine is the recorded golden trace, not a lane. All
// per-cycle state is sparse: a gate is materialized (is_diff_) only while
// any of its NW lane words differs from the golden splat, and retired lanes
// are canonicalized back to the golden value in every stored word so they
// can never re-enter a cone. Every per-gate plane is lane-word-strided
// ([g*NW+j], like Simulator's); lane l sits in word l/64, bit l%64, and the
// lane masks (live_/detected_/potential_) are NW-word arrays. NW == 1 is
// bit-for-bit the historical 64-lane shard. Shards are built either from a
// static slice of the fault list (t_first == 0, no carried caps) or, after
// a compaction, from the live lanes extracted out of earlier shards.
template <int NW>
class DifferentialShard {
 public:
  static constexpr std::size_t kShardLanes =
      static_cast<std::size_t>(NW) * kLaneWordBits;

  DifferentialShard(const FaultSimRequest& req,
                    const logicsim::CompiledNetlist& prog,
                    const DiffGolden& golden,
                    const std::vector<std::uint8_t>& known_full,
                    const std::vector<std::uint8_t>& strobe_mask,
                    std::vector<CarriedLane> lanes, std::uint64_t t_first,
                    guard::Checker& check, FaultSimResult& result)
      : req_(req),
        prog_(prog),
        golden_(golden),
        known_full_(known_full),
        strobe_mask_(strobe_mask),
        shard_size_(lanes.size()),
        check_(check),
        result_(result),
        walker_(prog) {
    const std::size_t n = prog.num_gates();
    out_sa0_.assign(n * NW, 0);
    out_sa1_.assign(n * NW, 0);
    has_pin_force_.assign(n, 0);
    fval_.assign(n * NW, 0);
    fknown_.assign(n * NW, 0);
    is_diff_.assign(n, 0);
    cap_val_.assign(n * NW, 0);
    cap_known_.assign(n * NW, 0);
    cap_diff_.assign(n, 0);
    live_.fill(0);
    detected_.fill(0);
    potential_.fill(0);
    for (int j = 0; j < NW; ++j) {
      const std::size_t lo = static_cast<std::size_t>(j) * kLaneWordBits;
      if (shard_size_ <= lo) break;
      const std::size_t bits =
          std::min<std::size_t>(kLaneWordBits, shard_size_ - lo);
      live_[j] = bits == kLaneWordBits ? ~0ULL : (1ULL << bits) - 1;
    }
    lane_fault_.reserve(shard_size_);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const CarriedLane& ln = lanes[i];
      const int wj = static_cast<int>(i / kLaneWordBits);
      const std::uint64_t bit = 1ULL << (i % kLaneWordBits);
      lane_fault_.push_back(ln.fault);
      if (ln.potential) potential_[wj] |= bit;
      for (const CarriedCap& c : ln.caps) {
        if (!cap_diff_[c.dff]) {
          cap_diff_[c.dff] = 1;
          cap_list_.push_back(c.dff);
          // Lanes not carrying this DFF sit at the golden commit value, so
          // the assembled words diverge exactly where the lanes do.
          for (int j = 0; j < NW; ++j) {
            cap_val_[Idx(c.dff, j)] = 0ULL - golden.ValBit(t_first, c.dff);
            cap_known_[Idx(c.dff, j)] =
                0ULL - golden.KnownBit(t_first, c.dff);
          }
        }
        cap_val_[Idx(c.dff, wj)] =
            (cap_val_[Idx(c.dff, wj)] & ~bit) | (c.val ? bit : 0ULL);
        cap_known_[Idx(c.dff, wj)] =
            (cap_known_[Idx(c.dff, wj)] & ~bit) | (c.known ? bit : 0ULL);
      }
    }
    for (GateId d : cap_list_) {
      for (int j = 0; j < NW; ++j) {
        if (cap_known_[Idx(d, j)] != ~0ULL) caps_known_full_ = false;
      }
    }
    BuildForceTables();
    const auto& kind = prog.kind();
    for (GateId g = 0; g < static_cast<GateId>(n); ++g) {
      if (kind[g] == netlist::GateKind::kInput) {
        input_gates_.push_back(g);
      } else if (kind[g] == netlist::GateKind::kConst0 ||
                 kind[g] == netlist::GateKind::kConst1) {
        const_gates_.push_back(g);
      }
    }
    // Planted-bug snapshot: one relaxed load per name when armed, nothing
    // hot-path otherwise (FailpointFlagged is gated on any-armed).
    mut_stale_cone_ = guard::FailpointFlagged("fault_sim.diff.stale_cone");
    mut_premature_drop_ =
        guard::FailpointFlagged("fault_sim.diff.premature_drop");
    mut_dense_skip_ =
        guard::FailpointFlagged("fault_sim.diff.dense_skip_observe");
  }

  // Simulates patterns [p_begin, p_end); resumable round by round.
  void Run(int p_begin, int p_end);

  std::size_t live_count() const {
    std::size_t n = 0;
    for (int j = 0; j < NW; ++j) {
      n += static_cast<std::size_t>(std::popcount(live_[j]));
    }
    return n;
  }
  // Set while a Run round is in flight; a shard whose round threw has
  // advanced some unknown prefix of its state and must not be retried.
  bool poisoned() const { return poisoned_; }
  void set_poisoned(bool v) { poisoned_ = v; }

  // Appends every still-live lane (in lane order) with its sparse
  // divergent captured-DFF state relative to the golden commit at t_next.
  void ExtractLanes(std::uint64_t t_next, std::vector<CarriedLane>* out) const;

  // Final statuses for lanes that survived every pattern.
  void FinalizeUndecided();

 private:
  struct PinForce {
    GateId gate;
    std::uint32_t pin;
    std::array<std::uint64_t, NW> sa0{};
    std::array<std::uint64_t, NW> sa1{};
  };

  // Word j of gate g's strided planes.
  static std::size_t Idx(GateId g, int j) {
    return static_cast<std::size_t>(g) * NW + static_cast<std::size_t>(j);
  }

  static Word3 ApplyForce(Word3 w, std::uint64_t sa0, std::uint64_t sa1) {
    w.known |= sa0 | sa1;
    w.val = (w.val | sa1) & ~sa0;
    return w;
  }

  // Pins retired lanes of word j to the golden splat, so a dead lane's bits
  // can never differ from golden anywhere downstream.
  Word3 Canon(Word3 w, Word3 g, int j) const {
    return {(w.val & live_[j]) | (g.val & ~live_[j]),
            (w.known & live_[j]) | (g.known & ~live_[j])};
  }

  // Faulty-machine read of word j of gate g at cycle t: the stored word
  // while the gate is materialized as divergent, the golden splat
  // otherwise. The branch beats a branch-free XOR-vs-golden encoding here
  // (measured): inside a walked cone most fanins are divergent, so the
  // predictor resolves it almost for free and the hot branch skips the
  // golden plane extraction entirely.
  Word3 LoadF(std::uint64_t t, GateId g, int j) const {
    if (is_diff_[g]) return {fval_[Idx(g, j)], fknown_[Idx(g, j)]};
    return golden_.Splat(t, g);
  }

  // Materializes gate g with the NW words in `w` (all words stored; a
  // non-divergent word holds exactly its golden splat, so LoadF stays
  // correct for every word once the gate is marked).
  void Mark(GateId g, const Word3* w) {
    if (!is_diff_[g]) {
      is_diff_[g] = 1;
      diff_list_.push_back(g);
    }
    for (int j = 0; j < NW; ++j) {
      fval_[Idx(g, j)] = w[j].val;
      fknown_[Idx(g, j)] = w[j].known;
    }
  }

  void BuildForceTables();
  Word3 ReadFaninF(std::uint64_t t, GateId g, std::uint32_t pin, GateId src,
                   int j) const {
    Word3 w = LoadF(t, src, j);
    for (const PinForce& pf : pin_forces_) {
      if (pf.gate == g && pf.pin == pin) {
        w = ApplyForce(w, pf.sa0[j], pf.sa1[j]);
      }
    }
    return w;
  }
  // One op table per value domain, parameterized over the fanin reader so
  // the sparse walk (golden-splat-or-stored reads) and the dense sweep
  // (flat plane reads) share it. `load(g)` returns gate g's word;
  // `read(pin, g)` additionally applies the instruction's input-pin forces.
  template <typename Load>
  Word3 Eval3With(Load&& load, std::uint32_t i) const;
  template <typename Read>
  Word3 EvalPinForced3With(Read&& read, std::uint32_t i) const;
  template <typename Load>
  std::uint64_t Eval2With(Load&& load, std::uint32_t i) const;
  template <typename Read>
  std::uint64_t EvalPinForced2With(Read&& read, std::uint32_t i) const;
  // Single-lane-word evaluation of instruction i at cycle t (the ops are
  // pure bitwise per word, so NW words evaluate as NW independent calls).
  Word3 Eval(std::uint64_t t, std::uint32_t i, int j) const;
  Word3 EvalPinForced(std::uint64_t t, std::uint32_t i, int j) const;
  std::uint64_t Eval2(std::uint64_t t, std::uint32_t i, int j) const;
  std::uint64_t EvalPinForced2(std::uint64_t t, std::uint32_t i, int j) const;
  void StepCycle(std::uint64_t t, bool strobed, std::uint64_t* pattern_detects);
  void StepCycleFast(std::uint64_t t, bool strobed,
                     std::uint64_t* pattern_detects);
  void DenseCycle2(std::uint64_t t, bool strobed,
                   std::uint64_t* pattern_detects);
  void DenseCycle3(std::uint64_t t, bool strobed,
                   std::uint64_t* pattern_detects);

  const FaultSimRequest& req_;
  const logicsim::CompiledNetlist& prog_;
  const DiffGolden& golden_;
  // Per-cycle "the golden known plane is all-ones" bitmap and per-cycle
  // strobe membership, both precomputed by the driver.
  const std::vector<std::uint8_t>& known_full_;
  const std::vector<std::uint8_t>& strobe_mask_;
  const std::size_t shard_size_;
  guard::Checker& check_;
  FaultSimResult& result_;
  logicsim::ConeWalker walker_;

  std::vector<std::uint32_t> lane_fault_;  // lane -> index into req_.faults
  // Lane masks, one word per lane word (lane l = word l/64, bit l%64).
  std::array<std::uint64_t, NW> live_{};
  std::array<std::uint64_t, NW> detected_{};
  std::array<std::uint64_t, NW> potential_{};
  // True while no captured word carries an X: together with the golden
  // known plane being full, the whole next cycle is two-valued and takes
  // the val-plane-only fast path (StepCycleFast).
  bool caps_known_full_ = true;
  bool poisoned_ = false;
  // Dense-mode machinery: once the sampled dirty cone stops being sparse
  // (>= ~20% of the program, typical after compaction packs a shard with
  // persistent faults), the walker no longer pays for itself and the shard
  // switches to a kernel-style full sweep over flat value planes. The first
  // pattern of every round runs sparse to re-sample the cone size. The
  // threshold is measured, not derived: the sparse walk costs ~3-4x per
  // instruction what the dense sweep does, so break-even sits near a
  // quarter of the program.
  bool dense_mode_ = false;
  std::uint64_t cone_sample_ = 0;
  std::vector<std::uint64_t> dval_;   // dense planes, allocated on first use
  std::vector<std::uint64_t> dknown_;
  std::vector<GateId> input_gates_;
  std::vector<GateId> const_gates_;

  // Per-lane force tables over the live lanes only (rebuilt on retirement);
  // layout mirrors Simulator's so force application is bit-identical.
  std::vector<std::uint64_t> out_sa0_;
  std::vector<std::uint64_t> out_sa1_;
  std::vector<PinForce> pin_forces_;
  std::vector<std::uint8_t> has_pin_force_;
  // Force sites by category (deduplicated, sorted): output-forced primary
  // inputs and DFFs re-diverge at every commit; forced combinational
  // instructions re-enter the cone at every settle. Output forces on
  // constant gates are dropped entirely — Step() never applies them (a
  // const is not an instruction, DFF, or input), so the lane's machine is
  // the golden machine.
  std::vector<GateId> forced_inputs_;
  std::vector<GateId> forced_dffs_;
  std::vector<std::uint32_t> comb_seed_instrs_;

  // Per-cycle divergence state (diff_list_ is the cycle's materialized set).
  std::vector<std::uint64_t> fval_;
  std::vector<std::uint64_t> fknown_;
  std::vector<std::uint8_t> is_diff_;
  std::vector<GateId> diff_list_;
  // Divergent captured DFF state, carried to the next cycle's commit.
  std::vector<std::uint64_t> cap_val_;
  std::vector<std::uint64_t> cap_known_;
  std::vector<std::uint8_t> cap_diff_;
  std::vector<GateId> cap_list_;

  bool mut_stale_cone_ = false;
  bool mut_premature_drop_ = false;
  bool mut_dense_skip_ = false;
  bool stale_used_ = false;  // per cycle: the planted bug fires once

  std::uint64_t cone_instrs_ = 0;  // stats: instructions drained
};

template <int NW>
void DifferentialShard<NW>::BuildForceTables() {
  std::fill(out_sa0_.begin(), out_sa0_.end(), 0);
  std::fill(out_sa1_.begin(), out_sa1_.end(), 0);
  std::fill(has_pin_force_.begin(), has_pin_force_.end(), 0);
  pin_forces_.clear();
  forced_inputs_.clear();
  forced_dffs_.clear();
  comb_seed_instrs_.clear();
  const auto& kind = prog_.kind();
  for (std::size_t i = 0; i < shard_size_; ++i) {
    const int wj = static_cast<int>(i / kLaneWordBits);
    const std::uint64_t bit = 1ULL << (i % kLaneWordBits);
    if ((live_[wj] & bit) == 0) continue;
    const StuckFault& f = req_.faults[lane_fault_[i]];
    PFD_CHECK_MSG(f.value != Trit::kX, "cannot force X");
    const netlist::GateKind k = kind[f.gate];
    if (f.pin == 0) {
      if (k == netlist::GateKind::kConst0 || k == netlist::GateKind::kConst1) {
        continue;  // inert, matching Simulator::Step
      }
      (f.value == Trit::kZero ? out_sa0_ : out_sa1_)[Idx(f.gate, wj)] |= bit;
      if (k == netlist::GateKind::kInput) {
        forced_inputs_.push_back(f.gate);
      } else if (k == netlist::GateKind::kDff) {
        forced_dffs_.push_back(f.gate);
      } else {
        comb_seed_instrs_.push_back(prog_.instr_of_gate()[f.gate]);
      }
    } else {
      const std::uint32_t pin = f.pin - 1;
      PFD_CHECK_MSG(pin < req_.nl.Fanins(f.gate).size(), "pin out of range");
      bool merged = false;
      for (PinForce& pf : pin_forces_) {
        if (pf.gate == f.gate && pf.pin == pin) {
          (f.value == Trit::kZero ? pf.sa0 : pf.sa1)[wj] |= bit;
          merged = true;
          break;
        }
      }
      if (!merged) {
        PinForce pf;
        pf.gate = f.gate;
        pf.pin = pin;
        (f.value == Trit::kZero ? pf.sa0 : pf.sa1)[wj] = bit;
        pin_forces_.push_back(pf);
      }
      has_pin_force_[f.gate] = 1;
      if (k != netlist::GateKind::kDff) {
        // A DFF pin-0 force applies at D capture, handled in StepCycle's
        // capture phase; everything else is a combinational read force.
        comb_seed_instrs_.push_back(prog_.instr_of_gate()[f.gate]);
      }
    }
  }
  auto dedup = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(forced_inputs_);
  dedup(forced_dffs_);
  dedup(comb_seed_instrs_);
}

// Mirrors Simulator::EvalInstr3 over the caller's fanin reader.
template <int NW>
template <typename Load>
Word3 DifferentialShard<NW>::Eval3With(Load&& load, std::uint32_t i) const {
  using logicsim::Op;
  const logicsim::CompiledNetlist& p = prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return load(f[0]);
    case Op::kNot: return Not3(load(f[0]));
    case Op::kAnd2: return And3(load(f[0]), load(f[1]));
    case Op::kOr2: return Or3(load(f[0]), load(f[1]));
    case Op::kNand2: return Not3(And3(load(f[0]), load(f[1])));
    case Op::kNor2: return Not3(Or3(load(f[0]), load(f[1])));
    case Op::kXor2: return Xor3(load(f[0]), load(f[1]));
    case Op::kXnor2: return Xnor3(load(f[0]), load(f[1]));
    case Op::kMux2: return Mux3(load(f[0]), load(f[1]), load(f[2]));
    case Op::kAndN:
    case Op::kNandN: {
      Word3 w = load(f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = And3(w, load(f[k]));
      return p.op()[i] == Op::kNandN ? Not3(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      Word3 w = load(f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = Or3(w, load(f[k]));
      return p.op()[i] == Op::kNorN ? Not3(w) : w;
    }
  }
  return kAllX;
}

// Mirrors Simulator::EvalInstrPinForced3 over the caller's pin reader.
template <int NW>
template <typename Read>
Word3 DifferentialShard<NW>::EvalPinForced3With(Read&& read,
                                                std::uint32_t i) const {
  using logicsim::Op;
  const logicsim::CompiledNetlist& p = prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return read(0, f[0]);
    case Op::kNot: return Not3(read(0, f[0]));
    case Op::kAnd2: return And3(read(0, f[0]), read(1, f[1]));
    case Op::kOr2: return Or3(read(0, f[0]), read(1, f[1]));
    case Op::kNand2: return Not3(And3(read(0, f[0]), read(1, f[1])));
    case Op::kNor2: return Not3(Or3(read(0, f[0]), read(1, f[1])));
    case Op::kXor2: return Xor3(read(0, f[0]), read(1, f[1]));
    case Op::kXnor2: return Xnor3(read(0, f[0]), read(1, f[1]));
    case Op::kMux2:
      return Mux3(read(0, f[0]), read(1, f[1]), read(2, f[2]));
    case Op::kAndN:
    case Op::kNandN: {
      Word3 w = read(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = And3(w, read(k, f[k]));
      return p.op()[i] == Op::kNandN ? Not3(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      Word3 w = read(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = Or3(w, read(k, f[k]));
      return p.op()[i] == Op::kNorN ? Not3(w) : w;
    }
  }
  return kAllX;
}

template <int NW>
Word3 DifferentialShard<NW>::Eval(std::uint64_t t, std::uint32_t i,
                                  int j) const {
  return Eval3With([&](GateId g) { return LoadF(t, g, j); }, i);
}

template <int NW>
Word3 DifferentialShard<NW>::EvalPinForced(std::uint64_t t, std::uint32_t i,
                                           int j) const {
  const GateId g = prog_.out()[i];
  return EvalPinForced3With(
      [&](std::uint32_t pin, GateId src) {
        return ReadFaninF(t, g, pin, src, j);
      },
      i);
}

// Two-valued (val-plane-only) twins, used on cycles where every word is
// provably known: the Word3 operators restricted to known == ~0 collapse to
// plain bitwise logic, and the golden splat needs only the val plane.
// Bit-identical to the three-valued path by the known-inputs-give-known-
// outputs property of the Word3 algebra.
template <int NW>
template <typename Load>
std::uint64_t DifferentialShard<NW>::Eval2With(Load&& load,
                                               std::uint32_t i) const {
  using logicsim::Op;
  const logicsim::CompiledNetlist& p = prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return load(f[0]);
    case Op::kNot: return ~load(f[0]);
    case Op::kAnd2: return load(f[0]) & load(f[1]);
    case Op::kOr2: return load(f[0]) | load(f[1]);
    case Op::kNand2: return ~(load(f[0]) & load(f[1]));
    case Op::kNor2: return ~(load(f[0]) | load(f[1]));
    case Op::kXor2: return load(f[0]) ^ load(f[1]);
    case Op::kXnor2: return ~(load(f[0]) ^ load(f[1]));
    case Op::kMux2: {
      const std::uint64_t s = load(f[0]);
      return (~s & load(f[1])) | (s & load(f[2]));
    }
    case Op::kAndN:
    case Op::kNandN: {
      std::uint64_t v = load(f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) v &= load(f[k]);
      return p.op()[i] == Op::kNandN ? ~v : v;
    }
    case Op::kOrN:
    case Op::kNorN: {
      std::uint64_t v = load(f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) v |= load(f[k]);
      return p.op()[i] == Op::kNorN ? ~v : v;
    }
  }
  return 0;
}

template <int NW>
template <typename Read>
std::uint64_t DifferentialShard<NW>::EvalPinForced2With(
    Read&& read, std::uint32_t i) const {
  using logicsim::Op;
  const logicsim::CompiledNetlist& p = prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return read(0, f[0]);
    case Op::kNot: return ~read(0, f[0]);
    case Op::kAnd2: return read(0, f[0]) & read(1, f[1]);
    case Op::kOr2: return read(0, f[0]) | read(1, f[1]);
    case Op::kNand2: return ~(read(0, f[0]) & read(1, f[1]));
    case Op::kNor2: return ~(read(0, f[0]) | read(1, f[1]));
    case Op::kXor2: return read(0, f[0]) ^ read(1, f[1]);
    case Op::kXnor2: return ~(read(0, f[0]) ^ read(1, f[1]));
    case Op::kMux2: {
      const std::uint64_t s = read(0, f[0]);
      return (~s & read(1, f[1])) | (s & read(2, f[2]));
    }
    case Op::kAndN:
    case Op::kNandN: {
      std::uint64_t v = read(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) v &= read(k, f[k]);
      return p.op()[i] == Op::kNandN ? ~v : v;
    }
    case Op::kOrN:
    case Op::kNorN: {
      std::uint64_t v = read(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) v |= read(k, f[k]);
      return p.op()[i] == Op::kNorN ? ~v : v;
    }
  }
  return 0;
}

template <int NW>
std::uint64_t DifferentialShard<NW>::Eval2(std::uint64_t t, std::uint32_t i,
                                           int j) const {
  return Eval2With(
      [&](GateId g) -> std::uint64_t {
        return is_diff_[g] ? fval_[Idx(g, j)] : (0ULL - golden_.ValBit(t, g));
      },
      i);
}

template <int NW>
std::uint64_t DifferentialShard<NW>::EvalPinForced2(std::uint64_t t,
                                                    std::uint32_t i,
                                                    int j) const {
  const GateId g = prog_.out()[i];
  return EvalPinForced2With(
      [&](std::uint32_t pin, GateId src) -> std::uint64_t {
        std::uint64_t v = is_diff_[src] ? fval_[Idx(src, j)]
                                        : (0ULL - golden_.ValBit(t, src));
        for (const PinForce& pf : pin_forces_) {
          if (pf.gate == g && pf.pin == pin) {
            v = (v | pf.sa1[j]) & ~pf.sa0[j];
          }
        }
        return v;
      },
      i);
}

template <int NW>
void DifferentialShard<NW>::StepCycle(std::uint64_t t, bool strobed,
                                      std::uint64_t* pattern_detects) {
  const TestPlan& plan = req_.stimulus.plan;

  for (GateId g : diff_list_) is_diff_[g] = 0;
  diff_list_.clear();
  stale_used_ = false;

  // Commit/seed phase, mirroring Step()'s edge: a DFF's committed word is
  // the captured divergent word when one exists, the golden commit
  // otherwise (at t == 0 the golden plane is the power-up X, so the forced
  // power-up case falls out of the same expression); output forces land on
  // the committed word exactly as in Step()'s phase 1, and on inputs as in
  // its phase 2 (golden inputs are re-driven identically every pattern, and
  // ApplyForce is idempotent, so force-on-golden-splat is the input's
  // stored word on every cycle, not just the first).
  auto any_out_force = [&](GateId g) {
    std::uint64_t any = 0;
    for (int j = 0; j < NW; ++j) {
      any |= out_sa0_[Idx(g, j)] | out_sa1_[Idx(g, j)];
    }
    return any != 0;
  };
  auto commit_dff = [&](GateId d) {
    const Word3 g = golden_.Splat(t, d);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      Word3 x = cap_diff_[d]
                    ? Word3{cap_val_[Idx(d, j)], cap_known_[Idx(d, j)]}
                    : g;
      const std::uint64_t sa0 = out_sa0_[Idx(d, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(d, j)];
      if ((sa0 | sa1) != 0) x = ApplyForce(x, sa0, sa1);
      x = Canon(x, g, j);
      w[j] = x;
      diff = diff || x.val != g.val || x.known != g.known;
    }
    if (diff) {
      Mark(d, w);
      walker_.SeedReadersOf(d);
    }
  };
  for (GateId d : forced_dffs_) commit_dff(d);
  for (GateId d : cap_list_) {
    // Output-forced DFFs were just committed above (they consult cap too).
    if (!any_out_force(d)) commit_dff(d);
  }
  for (GateId in : forced_inputs_) {
    const Word3 g = golden_.Splat(t, in);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      const Word3 x = Canon(
          ApplyForce(g, out_sa0_[Idx(in, j)], out_sa1_[Idx(in, j)]), g, j);
      w[j] = x;
      diff = diff || x.val != g.val || x.known != g.known;
    }
    if (diff) {
      Mark(in, w);
      walker_.SeedReadersOf(in);
    }
  }

  // Settle phase: forced combinational instructions re-enter the cone every
  // cycle (their output differs from golden even with clean fanins); the
  // walker then drains the dirty cone in level order, divergence seeding
  // readers at strictly higher levels.
  for (std::uint32_t i : comb_seed_instrs_) walker_.SeedInstr(i);
  walker_.Drain([&](std::uint32_t i) {
    const GateId g = prog_.out()[i];
    const Word3 gw = golden_.Splat(t, g);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      Word3 x = has_pin_force_[g] ? EvalPinForced(t, i, j) : Eval(t, i, j);
      const std::uint64_t sa0 = out_sa0_[Idx(g, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(g, j)];
      if ((sa0 | sa1) != 0) x = ApplyForce(x, sa0, sa1);
      x = Canon(x, gw, j);
      w[j] = x;
      diff = diff || x.val != gw.val || x.known != gw.known;
    }
    if (!diff) return false;
    Mark(g, w);
    if (mut_stale_cone_ && !stale_used_) {
      stale_used_ = true;  // planted bug: first divergence doesn't propagate
      return false;
    }
    return true;
  });
  cone_instrs_ += walker_.drained();

  // Strobe phase: a gate outside the cone equals the golden machine on
  // every lane, so only materialized gates can contribute mismatches.
  if (strobed) {
    for (GateId g : plan.observe) {
      if (golden_.KnownBit(t, g) == 0) continue;  // fault-free response X
      if (!is_diff_[g]) continue;
      const std::uint64_t gval = 0ULL - golden_.ValBit(t, g);
      for (int j = 0; j < NW; ++j) {
        pattern_detects[j] |=
            fknown_[Idx(g, j)] & (fval_[Idx(g, j)] ^ gval) & live_[j];
        potential_[j] |= ~fknown_[Idx(g, j)] & live_[j];
      }
    }
  }

  // Capture phase, mirroring Step()'s phase 6: rebuild the divergent
  // captured-D set for the next cycle's commit. Only DFFs whose D net is in
  // the cone, or whose D pin carries a force, can capture a non-golden word.
  for (GateId d : cap_list_) cap_diff_[d] = 0;
  cap_list_.clear();
  const auto& dff_ids = prog_.dff_ids();
  const auto& dff_d = prog_.dff_d();
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    const GateId dn = dff_d[k];
    if (!is_diff_[dn] && !has_pin_force_[d]) continue;
    const Word3 g = golden_.Splat(t, dn);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      Word3 x = LoadF(t, dn, j);
      if (has_pin_force_[d]) {
        for (const PinForce& pf : pin_forces_) {
          if (pf.gate == d && pf.pin == 0) {
            x = ApplyForce(x, pf.sa0[j], pf.sa1[j]);
          }
        }
      }
      x = Canon(x, g, j);
      w[j] = x;
      diff = diff || x.val != g.val || x.known != g.known;
    }
    if (diff) {
      cap_diff_[d] = 1;
      for (int j = 0; j < NW; ++j) {
        cap_val_[Idx(d, j)] = w[j].val;
        cap_known_[Idx(d, j)] = w[j].known;
      }
      cap_list_.push_back(d);
    }
  }
  caps_known_full_ = true;
  for (GateId d : cap_list_) {
    for (int j = 0; j < NW && caps_known_full_; ++j) {
      if (cap_known_[Idx(d, j)] != ~0ULL) caps_known_full_ = false;
    }
    if (!caps_known_full_) break;
  }
}

// The val-plane-only twin of StepCycle, valid when the cycle's golden known
// plane is full and no captured word carries an X (no force can introduce
// one, so the whole cycle stays two-valued). Mark still stores a full-known
// word so the shared strobe/capture invariants hold.
template <int NW>
void DifferentialShard<NW>::StepCycleFast(std::uint64_t t, bool strobed,
                                          std::uint64_t* pattern_detects) {
  const TestPlan& plan = req_.stimulus.plan;

  for (GateId g : diff_list_) is_diff_[g] = 0;
  diff_list_.clear();
  stale_used_ = false;

  const auto gval = [&](GateId g) -> std::uint64_t {
    return 0ULL - golden_.ValBit(t, g);
  };

  auto commit_dff = [&](GateId d) {
    const std::uint64_t gv = gval(d);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      std::uint64_t v = cap_diff_[d] ? cap_val_[Idx(d, j)] : gv;
      const std::uint64_t sa0 = out_sa0_[Idx(d, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(d, j)];
      if ((sa0 | sa1) != 0) v = (v | sa1) & ~sa0;
      v = (v & live_[j]) | (gv & ~live_[j]);
      w[j] = {v, ~0ULL};
      diff = diff || v != gv;
    }
    if (diff) {
      Mark(d, w);
      walker_.SeedReadersOf(d);
    }
  };
  auto any_out_force = [&](GateId g) {
    std::uint64_t any = 0;
    for (int j = 0; j < NW; ++j) {
      any |= out_sa0_[Idx(g, j)] | out_sa1_[Idx(g, j)];
    }
    return any != 0;
  };
  for (GateId d : forced_dffs_) commit_dff(d);
  for (GateId d : cap_list_) {
    if (!any_out_force(d)) commit_dff(d);
  }
  for (GateId in : forced_inputs_) {
    const std::uint64_t gv = gval(in);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      std::uint64_t v = (gv | out_sa1_[Idx(in, j)]) & ~out_sa0_[Idx(in, j)];
      v = (v & live_[j]) | (gv & ~live_[j]);
      w[j] = {v, ~0ULL};
      diff = diff || v != gv;
    }
    if (diff) {
      Mark(in, w);
      walker_.SeedReadersOf(in);
    }
  }

  for (std::uint32_t i : comb_seed_instrs_) walker_.SeedInstr(i);
  walker_.Drain([&](std::uint32_t i) {
    const GateId g = prog_.out()[i];
    const std::uint64_t gv = gval(g);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      std::uint64_t v =
          has_pin_force_[g] ? EvalPinForced2(t, i, j) : Eval2(t, i, j);
      const std::uint64_t sa0 = out_sa0_[Idx(g, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(g, j)];
      if ((sa0 | sa1) != 0) v = (v | sa1) & ~sa0;
      v = (v & live_[j]) | (gv & ~live_[j]);
      w[j] = {v, ~0ULL};
      diff = diff || v != gv;
    }
    if (!diff) return false;
    Mark(g, w);
    if (mut_stale_cone_ && !stale_used_) {
      stale_used_ = true;  // planted bug: first divergence doesn't propagate
      return false;
    }
    return true;
  });
  cone_instrs_ += walker_.drained();

  if (strobed) {
    for (GateId g : plan.observe) {
      if (!is_diff_[g]) continue;
      const std::uint64_t gv = gval(g);
      for (int j = 0; j < NW; ++j) {
        pattern_detects[j] |= (fval_[Idx(g, j)] ^ gv) & live_[j];
      }
    }
  }

  for (GateId d : cap_list_) cap_diff_[d] = 0;
  cap_list_.clear();
  const auto& dff_ids = prog_.dff_ids();
  const auto& dff_d = prog_.dff_d();
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    const GateId dn = dff_d[k];
    if (!is_diff_[dn] && !has_pin_force_[d]) continue;
    const std::uint64_t gv = gval(dn);
    std::uint64_t v[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      std::uint64_t x = is_diff_[dn] ? fval_[Idx(dn, j)] : gv;
      if (has_pin_force_[d]) {
        for (const PinForce& pf : pin_forces_) {
          if (pf.gate == d && pf.pin == 0) x = (x | pf.sa1[j]) & ~pf.sa0[j];
        }
      }
      x = (x & live_[j]) | (gv & ~live_[j]);
      v[j] = x;
      diff = diff || x != gv;
    }
    if (diff) {
      cap_diff_[d] = 1;
      for (int j = 0; j < NW; ++j) {
        cap_val_[Idx(d, j)] = v[j];
        cap_known_[Idx(d, j)] = ~0ULL;
      }
      cap_list_.push_back(d);
    }
  }
  caps_known_full_ = true;
}

// Dense two-valued cycle: evaluate the whole level-major program over a
// flat val plane — no walker, no divergence bitmaps, no per-read golden
// splats. Once compaction packs a shard with persistent faults the union
// cone approaches the full program and the sparse walk's per-instruction
// overhead stops paying for itself; this is the kernel-style sweep for that
// regime. Values equal the sparse path's by construction: every gate off a
// lane's cone computes exactly its golden value (same function, same
// inputs), so strobes and captures diff against golden identically.
template <int NW>
void DifferentialShard<NW>::DenseCycle2(std::uint64_t t, bool strobed,
                                        std::uint64_t* pattern_detects) {
  const TestPlan& plan = req_.stimulus.plan;
  const std::size_t n = prog_.num_gates();
  if (dval_.empty()) {
    dval_.assign(n * NW, 0);
    dknown_.assign(n * NW, 0);
  }
  // Sparse residue must not leak into a later sparse cycle.
  for (GateId g : diff_list_) is_diff_[g] = 0;
  diff_list_.clear();

  const auto gval = [&](GateId g) -> std::uint64_t {
    return 0ULL - golden_.ValBit(t, g);
  };
  for (GateId g : const_gates_) {
    const std::uint64_t gv = gval(g);
    for (int j = 0; j < NW; ++j) dval_[Idx(g, j)] = gv;
  }
  for (GateId g : input_gates_) {
    const std::uint64_t gv = gval(g);
    for (int j = 0; j < NW; ++j) {
      std::uint64_t v = gv;
      const std::uint64_t sa0 = out_sa0_[Idx(g, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(g, j)];
      if ((sa0 | sa1) != 0) {
        v = ((((v | sa1) & ~sa0) & live_[j])) | (v & ~live_[j]);
      }
      dval_[Idx(g, j)] = v;
    }
  }
  const auto& dff_ids = prog_.dff_ids();
  for (const GateId d : dff_ids) {
    const std::uint64_t gv = gval(d);
    for (int j = 0; j < NW; ++j) {
      std::uint64_t v = cap_diff_[d] ? cap_val_[Idx(d, j)] : gv;
      const std::uint64_t sa0 = out_sa0_[Idx(d, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(d, j)];
      if ((sa0 | sa1) != 0) v = (v | sa1) & ~sa0;
      dval_[Idx(d, j)] = (v & live_[j]) | (gv & ~live_[j]);
    }
  }

  const std::uint32_t ni =
      static_cast<std::uint32_t>(prog_.num_instructions());
  const auto& outs = prog_.out();
  for (std::uint32_t i = 0; i < ni; ++i) {
    const GateId g = outs[i];
    for (int j = 0; j < NW; ++j) {
      std::uint64_t v;
      if (has_pin_force_[g]) {
        v = EvalPinForced2With(
            [&](std::uint32_t pin, GateId src) -> std::uint64_t {
              std::uint64_t w = dval_[Idx(src, j)];
              for (const PinForce& pf : pin_forces_) {
                if (pf.gate == g && pf.pin == pin) {
                  w = (w | pf.sa1[j]) & ~pf.sa0[j];
                }
              }
              return w;
            },
            i);
      } else {
        v = Eval2With([&](GateId src) { return dval_[Idx(src, j)]; }, i);
      }
      const std::uint64_t sa0 = out_sa0_[Idx(g, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(g, j)];
      if ((sa0 | sa1) != 0) v = (v | sa1) & ~sa0;
      // No per-gate canon needed: a retired lane carries no forces and
      // golden state, so its dense bits are golden everywhere already.
      dval_[Idx(g, j)] = v;
    }
  }
  cone_instrs_ += ni;

  if (strobed) {
    bool first = true;
    for (GateId g : plan.observe) {
      if (mut_dense_skip_ && first) {
        first = false;  // planted bug: the first observe net never strobes
        continue;
      }
      first = false;
      const std::uint64_t gv = gval(g);
      for (int j = 0; j < NW; ++j) {
        pattern_detects[j] |= (dval_[Idx(g, j)] ^ gv) & live_[j];
      }
    }
  }

  for (GateId d : cap_list_) cap_diff_[d] = 0;
  cap_list_.clear();
  const auto& dff_d = prog_.dff_d();
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    const GateId dn = dff_d[k];
    const std::uint64_t gv = gval(dn);
    std::uint64_t v[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      std::uint64_t x = dval_[Idx(dn, j)];
      if (has_pin_force_[d]) {
        for (const PinForce& pf : pin_forces_) {
          if (pf.gate == d && pf.pin == 0) x = (x | pf.sa1[j]) & ~pf.sa0[j];
        }
      }
      x = (x & live_[j]) | (gv & ~live_[j]);
      v[j] = x;
      diff = diff || x != gv;
    }
    if (diff) {
      cap_diff_[d] = 1;
      for (int j = 0; j < NW; ++j) {
        cap_val_[Idx(d, j)] = v[j];
        cap_known_[Idx(d, j)] = ~0ULL;
      }
      cap_list_.push_back(d);
    }
  }
  caps_known_full_ = true;
}

// The three-valued dense sweep, for X-carrying shards (potential-detect
// lanes trap power-up X in state loops and stay three-valued forever).
// Full Word3 planes, same phase structure as DenseCycle2.
template <int NW>
void DifferentialShard<NW>::DenseCycle3(std::uint64_t t, bool strobed,
                                        std::uint64_t* pattern_detects) {
  const TestPlan& plan = req_.stimulus.plan;
  const std::size_t n = prog_.num_gates();
  if (dval_.empty()) {
    dval_.assign(n * NW, 0);
    dknown_.assign(n * NW, 0);
  }
  for (GateId g : diff_list_) is_diff_[g] = 0;
  diff_list_.clear();

  const auto gsplat = [&](GateId g) { return golden_.Splat(t, g); };
  for (GateId g : const_gates_) {
    const Word3 w = gsplat(g);
    for (int j = 0; j < NW; ++j) {
      dval_[Idx(g, j)] = w.val;
      dknown_[Idx(g, j)] = w.known;
    }
  }
  for (GateId g : input_gates_) {
    const Word3 gw = gsplat(g);
    for (int j = 0; j < NW; ++j) {
      Word3 w = gw;
      const std::uint64_t sa0 = out_sa0_[Idx(g, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(g, j)];
      if ((sa0 | sa1) != 0) w = Canon(ApplyForce(w, sa0, sa1), gw, j);
      dval_[Idx(g, j)] = w.val;
      dknown_[Idx(g, j)] = w.known;
    }
  }
  const auto& dff_ids = prog_.dff_ids();
  for (const GateId d : dff_ids) {
    const Word3 gw = gsplat(d);
    for (int j = 0; j < NW; ++j) {
      Word3 w = cap_diff_[d]
                    ? Word3{cap_val_[Idx(d, j)], cap_known_[Idx(d, j)]}
                    : gw;
      const std::uint64_t sa0 = out_sa0_[Idx(d, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(d, j)];
      if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
      w = Canon(w, gw, j);
      dval_[Idx(d, j)] = w.val;
      dknown_[Idx(d, j)] = w.known;
    }
  }

  const std::uint32_t ni =
      static_cast<std::uint32_t>(prog_.num_instructions());
  const auto& outs = prog_.out();
  for (std::uint32_t i = 0; i < ni; ++i) {
    const GateId g = outs[i];
    for (int j = 0; j < NW; ++j) {
      Word3 w;
      if (has_pin_force_[g]) {
        w = EvalPinForced3With(
            [&](std::uint32_t pin, GateId src) {
              Word3 x{dval_[Idx(src, j)], dknown_[Idx(src, j)]};
              for (const PinForce& pf : pin_forces_) {
                if (pf.gate == g && pf.pin == pin) {
                  x = ApplyForce(x, pf.sa0[j], pf.sa1[j]);
                }
              }
              return x;
            },
            i);
      } else {
        w = Eval3With(
            [&](GateId src) {
              return Word3{dval_[Idx(src, j)], dknown_[Idx(src, j)]};
            },
            i);
      }
      const std::uint64_t sa0 = out_sa0_[Idx(g, j)];
      const std::uint64_t sa1 = out_sa1_[Idx(g, j)];
      if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
      dval_[Idx(g, j)] = w.val;
      dknown_[Idx(g, j)] = w.known;
    }
  }
  cone_instrs_ += ni;

  if (strobed) {
    bool first = true;
    for (GateId g : plan.observe) {
      if (mut_dense_skip_ && first) {
        first = false;  // planted bug: the first observe net never strobes
        continue;
      }
      first = false;
      if (golden_.KnownBit(t, g) == 0) continue;  // fault-free response X
      const std::uint64_t gv = 0ULL - golden_.ValBit(t, g);
      for (int j = 0; j < NW; ++j) {
        pattern_detects[j] |=
            dknown_[Idx(g, j)] & (dval_[Idx(g, j)] ^ gv) & live_[j];
        potential_[j] |= ~dknown_[Idx(g, j)] & live_[j];
      }
    }
  }

  for (GateId d : cap_list_) cap_diff_[d] = 0;
  cap_list_.clear();
  const auto& dff_d = prog_.dff_d();
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    const GateId dn = dff_d[k];
    const Word3 gw = gsplat(dn);
    Word3 w[NW];
    bool diff = false;
    for (int j = 0; j < NW; ++j) {
      Word3 x{dval_[Idx(dn, j)], dknown_[Idx(dn, j)]};
      if (has_pin_force_[d]) {
        for (const PinForce& pf : pin_forces_) {
          if (pf.gate == d && pf.pin == 0) x = ApplyForce(x, pf.sa0[j], pf.sa1[j]);
        }
      }
      x = Canon(x, gw, j);
      w[j] = x;
      diff = diff || x.val != gw.val || x.known != gw.known;
    }
    if (diff) {
      cap_diff_[d] = 1;
      for (int j = 0; j < NW; ++j) {
        cap_val_[Idx(d, j)] = w[j].val;
        cap_known_[Idx(d, j)] = w[j].known;
      }
      cap_list_.push_back(d);
    }
  }
  caps_known_full_ = true;
  for (GateId d : cap_list_) {
    for (int j = 0; j < NW; ++j) {
      if (cap_known_[Idx(d, j)] != ~0ULL) {
        caps_known_full_ = false;
        break;
      }
    }
    if (!caps_known_full_) break;
  }
}

template <int NW>
void DifferentialShard<NW>::Run(int p_begin, int p_end) {
  const int cpp = req_.stimulus.plan.cycles_per_pattern;

  const bool obs_on = obs::Enabled();
  obs::Histogram* hist_cone = nullptr;
  obs::Histogram* hist_live = nullptr;
  obs::Histogram* hist_dropped = nullptr;
  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    hist_cone = &reg.GetHistogram("fault_sim.diff.cone_instrs_per_cycle");
    hist_live = &reg.GetHistogram("fault_sim.diff.live_lanes_per_pattern");
    hist_dropped =
        &reg.GetHistogram("fault_sim.diff.dropped_lanes_per_pattern");
  }

  int patterns_run = 0;
  std::uint64_t retired = 0;
  std::uint64_t two_valued_cycles = 0;
  std::uint64_t dense_cycles = 0;
  for (int p = p_begin; p < p_end; ++p) {
    std::uint64_t any_live = 0;
    for (int j = 0; j < NW; ++j) any_live |= live_[j];
    if (any_live == 0) break;  // every fault decided: hard-detected only
    check_.CheckOrThrow();
    ++patterns_run;
    if (obs_on) {
      hist_live->RecordDouble(static_cast<double>(live_count()));
    }
    // The first pattern of each Run call samples the sparse walk's union
    // cone; when it exceeds ~20% of the program the walker's per-instruction
    // overhead costs more than a dense kernel-style sweep, so the rest of
    // the round goes dense. Each mutation failpoint pins the mode its
    // planted bug lives in so the xcheck harness always exercises it.
    const bool sampling = (p == p_begin);
    if (sampling) cone_sample_ = 0;
    std::array<std::uint64_t, NW> pattern_detects{};
    for (int c = 0; c < cpp; ++c) {
      const std::uint64_t t =
          static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(cpp) +
          static_cast<std::uint64_t>(c);
      const bool strobed = strobe_mask_[static_cast<std::size_t>(c)] != 0;
      const bool two_valued = known_full_[t] != 0 && caps_known_full_;
      bool dense = dense_mode_ && !sampling;
      if (mut_stale_cone_) {
        dense = false;
      } else if (mut_dense_skip_) {
        dense = true;
      }
      cone_instrs_ = 0;
      if (dense) {
        ++dense_cycles;
        if (two_valued) {
          ++two_valued_cycles;
          DenseCycle2(t, strobed, pattern_detects.data());
        } else {
          DenseCycle3(t, strobed, pattern_detects.data());
        }
      } else if (two_valued) {
        ++two_valued_cycles;
        StepCycleFast(t, strobed, pattern_detects.data());
      } else {
        StepCycle(t, strobed, pattern_detects.data());
      }
      if (sampling) cone_sample_ += cone_instrs_;
      if (obs_on) {
        hist_cone->RecordDouble(static_cast<double>(cone_instrs_));
      }
    }
    if (sampling) {
      const std::uint64_t full = static_cast<std::uint64_t>(cpp) *
                                 static_cast<std::uint64_t>(
                                     prog_.num_instructions());
      dense_mode_ = 5 * cone_sample_ >= full;
    }
    check_.AddSimCycles(static_cast<std::uint64_t>(cpp));
    std::array<std::uint64_t, NW> to_retire{};
    std::uint64_t any_retire = 0;
    for (int j = 0; j < NW; ++j) {
      const std::uint64_t newly = pattern_detects[j] & ~detected_[j];
      if (newly != 0) {
        detected_[j] |= newly;
        for (int b = 0; b < kLaneWordBits; ++b) {
          if (((newly >> b) & 1ULL) == 0) continue;
          const std::size_t i =
              static_cast<std::size_t>(j) * kLaneWordBits +
              static_cast<std::size_t>(b);
          if (i >= shard_size_) break;
          result_.first_detect_pattern[lane_fault_[i]] = p;
          result_.status[lane_fault_[i]] = FaultStatus::kDetected;
        }
      }
      to_retire[j] = newly;
      if (mut_premature_drop_) {
        // Planted bug: lanes with only an X mismatch are dropped as if
        // their fate were sealed, freezing faults a later pattern would
        // detect.
        const std::uint64_t dropped = potential_[j] & ~detected_[j] & live_[j];
        to_retire[j] |= dropped;
        for (int b = 0; b < kLaneWordBits; ++b) {
          if (((dropped >> b) & 1ULL) == 0) continue;
          const std::size_t i =
              static_cast<std::size_t>(j) * kLaneWordBits +
              static_cast<std::size_t>(b);
          if (i >= shard_size_) break;
          result_.status[lane_fault_[i]] =
              FaultStatus::kPotentiallyDetected;
        }
      }
      any_retire |= to_retire[j];
    }
    std::uint64_t dropped_count = 0;
    if (any_retire != 0) {
      for (int j = 0; j < NW; ++j) {
        live_[j] &= ~to_retire[j];
        dropped_count +=
            static_cast<std::uint64_t>(std::popcount(to_retire[j]));
      }
      retired += dropped_count;
      BuildForceTables();
    }
    if (obs_on) {
      hist_dropped->RecordDouble(static_cast<double>(dropped_count));
    }
  }

  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("fault_sim.diff.patterns")
        .Add(static_cast<std::uint64_t>(patterns_run));
    reg.GetCounter("fault_sim.diff.retired_lanes").Add(retired);
    reg.GetCounter("fault_sim.diff.two_valued_cycles").Add(two_valued_cycles);
    reg.GetCounter("fault_sim.diff.dense_cycles").Add(dense_cycles);
    if (patterns_run < p_end - p_begin) {
      reg.GetCounter("fault_sim.diff.early_exit_patterns")
          .Add(static_cast<std::uint64_t>(p_end - p_begin - patterns_run));
    }
  }
}

template <int NW>
void DifferentialShard<NW>::ExtractLanes(std::uint64_t t_next,
                                         std::vector<CarriedLane>* out) const {
  for (std::size_t i = 0; i < shard_size_; ++i) {
    const int wj = static_cast<int>(i / kLaneWordBits);
    const std::uint64_t bit = 1ULL << (i % kLaneWordBits);
    if ((live_[wj] & bit) == 0) continue;
    CarriedLane ln;
    ln.fault = lane_fault_[i];
    ln.potential = (potential_[wj] & bit) != 0;
    for (GateId d : cap_list_) {
      const std::uint8_t v = (cap_val_[Idx(d, wj)] & bit) != 0 ? 1 : 0;
      const std::uint8_t k = (cap_known_[Idx(d, wj)] & bit) != 0 ? 1 : 0;
      // Only genuinely divergent bits travel; everything else is golden.
      // (A captured D bit equals the golden commit of the next cycle.)
      if (v == golden_.ValBit(t_next, d) && k == golden_.KnownBit(t_next, d)) {
        continue;
      }
      ln.caps.push_back({d, v, k});
      if (k == 0) ln.has_x = true;
    }
    out->push_back(std::move(ln));
  }
}

template <int NW>
void DifferentialShard<NW>::FinalizeUndecided() {
  for (std::size_t i = 0; i < shard_size_; ++i) {
    const int wj = static_cast<int>(i / kLaneWordBits);
    const std::uint64_t bit = 1ULL << (i % kLaneWordBits);
    if ((live_[wj] & bit) == 0) continue;
    result_.status[lane_fault_[i]] = (potential_[wj] & bit) != 0
                                         ? FaultStatus::kPotentiallyDetected
                                         : FaultStatus::kUndetected;
  }
}

template <int NW>
FaultSimResult RunDifferentialT(
    const FaultSimRequest& req,
    const std::shared_ptr<const logicsim::CompiledNetlist>& prog,
    logicsim::GoldenTraceCache& cache, guard::Checker& check) {
  // Faults per shard at this lane width (one lane per fault, no golden
  // lane: the golden machine is the cached trace).
  constexpr std::size_t kLanes = DifferentialShard<NW>::kShardLanes;
  obs::Span span("fault_sim.differential",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(req.faults.size())},
                      {"patterns", req.stimulus.num_patterns}}));
  const TestPlan& plan = req.stimulus.plan;
  const int num_patterns = req.stimulus.num_patterns;
  const std::vector<int> widths = OperandWidths(plan);

  FaultSimResult result;
  result.status.assign(req.faults.size(), FaultStatus::kNotRun);
  result.first_detect_pattern.assign(req.faults.size(), -1);
  result.patterns = num_patterns;

  // Golden pass: simulate the fault-free machine once and record its full
  // per-cycle planes, memoized in the golden-trace cache. A guard trip here
  // means no fault can be decided at all (mirrors the serial engine).
  const std::size_t words = (prog->num_gates() + 63) / 64;
  const std::uint64_t total_cycles =
      static_cast<std::uint64_t>(num_patterns) *
      static_cast<std::uint64_t>(plan.cycles_per_pattern);
  const logicsim::GoldenKey golden_key = DiffGoldenKey(req.nl, req.stimulus, NW);
  std::shared_ptr<const logicsim::GoldenEntry> entry = cache.Find(golden_key);
  if (entry == nullptr) {
    auto fresh = std::make_shared<logicsim::GoldenEntry>();
    fresh->counts.assign(2 * words * total_cycles, 0);
    try {
      logicsim::Simulator sim(req.nl, prog);
      tpg::Tpgr tpgr(req.stimulus.tpgr_seed);
      std::uint64_t t = 0;
      for (int p = 0; p < num_patterns; ++p) {
        check.CheckOrThrow();
        DriveOperands(sim, plan, tpgr.NextPattern(widths));
        for (int c = 0; c < plan.cycles_per_pattern; ++c) {
          if (plan.reset != netlist::kNoGate) {
            sim.SetInputAllLanes(plan.reset,
                                 c == 0 ? Trit::kOne : Trit::kZero);
          }
          sim.Step();
          sim.PackLane0(fresh->counts.data() + 2 * t * words,
                        fresh->counts.data() + (2 * t + 1) * words);
          ++t;
        }
        check.AddSimCycles(
            static_cast<std::uint64_t>(plan.cycles_per_pattern));
      }
    } catch (const guard::Tripped& trip) {
      result.run_status.code = trip.status.code;
      result.run_status.message = trip.status.message;
      result.run_status.total_units = req.faults.size();
      return result;
    }
    // Only a clean, complete pass is publishable under the complete key.
    entry = cache.Insert(golden_key, std::move(fresh));
  }
  PFD_CHECK_MSG(entry->counts.size() == 2 * words * total_cycles,
                "differential golden entry has the wrong shape");
  const DiffGolden golden{entry->counts.data(), words};

  // Per-cycle "golden known plane is full" bitmap (tail bits beyond
  // num_gates are zero in the packed planes and masked off here): the gate
  // for the shards' two-valued fast path.
  const std::size_t tail_gates = prog->num_gates() % 64;
  const std::uint64_t tail_mask =
      tail_gates != 0 ? (1ULL << tail_gates) - 1 : ~0ULL;
  std::vector<std::uint8_t> known_full(total_cycles, 0);
  for (std::uint64_t t = 0; t < total_cycles; ++t) {
    const std::uint64_t* kp = entry->counts.data() + (2 * t + 1) * words;
    bool full = words > 0;
    for (std::size_t w = 0; full && w + 1 < words; ++w) full = kp[w] == ~0ULL;
    if (full) full = (kp[words - 1] | ~tail_mask) == ~0ULL;
    known_full[t] = full ? 1 : 0;
  }
  std::vector<std::uint8_t> strobe_mask(
      static_cast<std::size_t>(plan.cycles_per_pattern), 0);
  for (int c : plan.strobe_cycles) strobe_mask[static_cast<std::size_t>(c)] = 1;

  // Checkpointable static-shard mode: with a journal bound, the round/
  // compaction driver below is replaced by fixed groups of kLanes
  // consecutive faults, each swept to completion as one guarded unit. A
  // group's results depend only on (stimulus, faults, group index) — lane
  // independence makes them bit-identical to the compacting driver (see
  // DESIGN.md) — so a completed group's span can be journaled and replayed
  // on resume. The shard object is built fresh inside the unit body, so a
  // retried unit restarts from pattern 0 instead of double-stepping
  // carried state (no poisoning needed).
  if (req.journal != nullptr) {
    const std::size_t num_groups =
        req.faults.empty() ? 0
                           : (req.faults.size() + kLanes - 1) / kLanes;
    std::vector<char> group_covered(num_groups, 0);
    {
      const std::vector<char> covered =
          ReplayJournal(*req.journal, req.faults.size(), result);
      for (std::size_t g = 0; g < num_groups; ++g) {
        const std::size_t begin = g * kLanes;
        const std::size_t size =
            std::min(kLanes, req.faults.size() - begin);
        bool all = size > 0;
        for (std::size_t i = 0; i < size && all; ++i) {
          all = covered[begin + i] != 0;
        }
        group_covered[g] = all ? 1 : 0;
      }
    }
    const std::function<void(std::size_t)> journal_commit =
        [&result, &req](std::size_t g) {
          constexpr std::size_t kLanes = DifferentialShard<NW>::kShardLanes;
          const std::size_t begin = g * kLanes;
          const std::size_t size =
              std::min(kLanes, req.faults.size() - begin);
          req.journal->AppendFaultSpan(
              begin,
              reinterpret_cast<const std::uint8_t*>(result.status.data() +
                                                    begin),
              result.first_detect_pattern.data() + begin, size);
        };
    exec::Options exec_opts = req.exec;
    exec_opts.max_chunk_units = 1;
    exec::PoolLease pool(req.pool, exec_opts);
    const bool obs_on = obs::Enabled();
    if (obs_on) {
      obs::Registry& reg = obs::Registry::Global();
      reg.GetCounter("fault_sim.diff.shards").Add(num_groups);
      reg.GetCounter("fault_sim.diff.lanes").Add(req.faults.size());
    }
    const guard::RunStatus st = pool->ParallelForGuarded(
        num_groups,
        [&](std::size_t g) {
          if (group_covered[g] != 0) return;  // replayed from the journal
          guard::MaybeFail("fault_sim.diff.shard");
          const std::size_t begin = g * kLanes;
          const std::size_t size =
              std::min(kLanes, req.faults.size() - begin);
          std::vector<CarriedLane> lanes;
          lanes.reserve(size);
          for (std::size_t i = 0; i < size; ++i) {
            CarriedLane ln;
            ln.fault = static_cast<std::uint32_t>(begin + i);
            lanes.push_back(std::move(ln));
          }
          obs::Span shard_span("fault_sim.diff.shard");
          const double t0 = obs_on ? obs::NowMicros() : 0.0;
          DifferentialShard<NW> shard(req, *prog, golden, known_full,
                                  strobe_mask, std::move(lanes), 0, check,
                                  result);
          shard.Run(0, num_patterns);
          shard.FinalizeUndecided();
          if (obs_on) {
            static obs::Histogram& hist =
                obs::Registry::Global().GetHistogram(
                    "fault_sim.diff.shard_us");
            hist.RecordDouble(obs::NowMicros() - t0);
          }
        },
        &check, &journal_commit);
    guard::RunStatus campaign_static;
    campaign_static.total_units = req.faults.size();
    campaign_static.MergeFrom(st, "static shard");
    for (std::size_t k = 0; k < req.faults.size(); ++k) {
      if (result.status[k] != FaultStatus::kNotRun) {
        campaign_static.completed.push_back(k);
      }
    }
    if (obs_on) {
      obs::Registry& reg = obs::Registry::Global();
      std::uint64_t detected = 0;
      std::uint64_t potential = 0;
      for (const FaultStatus s : result.status) {
        detected += s == FaultStatus::kDetected ? 1 : 0;
        potential += s == FaultStatus::kPotentiallyDetected ? 1 : 0;
      }
      reg.GetCounter("fault_sim.diff.detected").Add(detected);
      reg.GetCounter("fault_sim.diff.potential").Add(potential);
    }
    result.run_status = std::move(campaign_static);
    return result;
  }

  // Initial static partition: kLanes consecutive faults per shard.
  std::vector<std::unique_ptr<DifferentialShard<NW>>> shards;
  {
    std::vector<CarriedLane> lanes;
    for (std::size_t k = 0; k < req.faults.size(); ++k) {
      CarriedLane ln;
      ln.fault = static_cast<std::uint32_t>(k);
      lanes.push_back(std::move(ln));
      if (lanes.size() == kLanes || k + 1 == req.faults.size()) {
        shards.push_back(std::make_unique<DifferentialShard<NW>>(
            req, *prog, golden, known_full, strobe_mask, std::move(lanes), 0,
            check, result));
        lanes.clear();
      }
    }
  }

  // Round/compaction loop. Rounds double in length (1, 2, 4, ... patterns);
  // after each round the still-live lanes are counted and, once they fit in
  // fewer shards, re-packed — deterministically, in fault-index order with
  // X-carrying lanes segregated last so fully two-valued shards stay on the
  // fast path. Lane independence makes the repack invisible to results:
  // each lane's carried state is exactly its divergent captured-DFF bits.
  // Shards shrink at wildly different rates, so every round schedules one
  // shard per steal-able chunk (scheduling only; results are identical).
  exec::Options exec_opts = req.exec;
  exec_opts.max_chunk_units = 1;
  exec::PoolLease pool(req.pool, exec_opts);
  const bool obs_on = obs::Enabled();
  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("fault_sim.diff.shards").Add(shards.size());
    reg.GetCounter("fault_sim.diff.lanes").Add(req.faults.size());
  }
  guard::RunStatus campaign;
  campaign.total_units = req.faults.size();
  int p = 0;
  int round_len = 1;
  int round = 0;
  bool aborted = false;
  while (p < num_patterns && !shards.empty()) {
    const int p_end =
        num_patterns - p > round_len ? p + round_len : num_patterns;
    if (round_len < (1 << 20)) round_len *= 2;
    ++round;
    const guard::RunStatus st = pool->ParallelForGuarded(
        shards.size(),
        [&](std::size_t s) {
          guard::MaybeFail("fault_sim.diff.shard");
          DifferentialShard<NW>& shard = *shards[s];
          // A round that threw mid-flight has advanced an unknown prefix of
          // the shard's state; a retry would double-step it, so it stays
          // quarantined instead (its undecided lanes keep kNotRun).
          PFD_CHECK_MSG(!shard.poisoned(),
                        "differential shard poisoned by an earlier failure");
          shard.set_poisoned(true);
          obs::Span shard_span("fault_sim.diff.shard");
          const double t0 = obs_on ? obs::NowMicros() : 0.0;
          shard.Run(p, p_end);
          shard.set_poisoned(false);
          if (obs_on) {
            static obs::Histogram& hist =
                obs::Registry::Global().GetHistogram(
                    "fault_sim.diff.shard_us");
            hist.RecordDouble(obs::NowMicros() - t0);
          }
        },
        &check);
    if (st.tripped()) {
      campaign.MergeFrom(st, "round " + std::to_string(round));
      aborted = true;  // undecided lanes stay kNotRun
      break;
    }
    if (!st.ok()) {
      campaign.MergeFrom(st, "round " + std::to_string(round));
      // Quarantine every unit that failed this round: shards that threw
      // mid-Run marked themselves poisoned, but a unit that failed before
      // entering Run (both attempts) did not — without this its lanes would
      // be finalized as undetected despite never having been simulated.
      for (const guard::FailedUnit& fu : st.failed_units) {
        shards[fu.index]->set_poisoned(true);
      }
      std::erase_if(shards, [](const std::unique_ptr<DifferentialShard<NW>>& sh) {
        return sh->poisoned();
      });
    }
    p = p_end;
    if (p >= num_patterns) break;
    std::size_t live = 0;
    for (const auto& sh : shards) live += sh->live_count();
    const std::size_t want = (live + kLanes - 1) / kLanes;
    if (want < shards.size()) {
      const std::uint64_t t_next = static_cast<std::uint64_t>(p) *
                                   static_cast<std::uint64_t>(
                                       plan.cycles_per_pattern);
      std::vector<CarriedLane> lanes;
      lanes.reserve(live);
      for (const auto& sh : shards) sh->ExtractLanes(t_next, &lanes);
      std::sort(lanes.begin(), lanes.end(),
                [](const CarriedLane& a, const CarriedLane& b) {
                  if (a.has_x != b.has_x) return !a.has_x;
                  return a.fault < b.fault;
                });
      shards.clear();
      std::vector<CarriedLane> chunk;
      for (std::size_t k = 0; k < lanes.size(); ++k) {
        chunk.push_back(std::move(lanes[k]));
        if (chunk.size() == kLanes || k + 1 == lanes.size()) {
          shards.push_back(std::make_unique<DifferentialShard<NW>>(
              req, *prog, golden, known_full, strobe_mask, std::move(chunk),
              t_next, check, result));
          chunk.clear();
        }
      }
      if (obs_on) {
        obs::Registry& reg = obs::Registry::Global();
        reg.GetCounter("fault_sim.diff.compactions").Add(1);
        reg.GetCounter("fault_sim.diff.shards").Add(shards.size());
      }
    }
  }
  if (!aborted) {
    for (const auto& sh : shards) sh->FinalizeUndecided();
  }
  for (std::size_t k = 0; k < req.faults.size(); ++k) {
    if (result.status[k] != FaultStatus::kNotRun) {
      campaign.completed.push_back(k);
    }
  }
  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    std::uint64_t detected = 0;
    std::uint64_t potential = 0;
    for (const FaultStatus s : result.status) {
      detected += s == FaultStatus::kDetected ? 1 : 0;
      potential += s == FaultStatus::kPotentiallyDetected ? 1 : 0;
    }
    reg.GetCounter("fault_sim.diff.detected").Add(detected);
    reg.GetCounter("fault_sim.diff.potential").Add(potential);
  }
  result.run_status = std::move(campaign);
  return result;
}

// Runtime lane-width dispatch onto the compiled shard widths. Results are
// bit-identical across widths (lanes are bitwise-independent); only the
// sharding changes.
FaultSimResult RunDifferential(
    const FaultSimRequest& req,
    const std::shared_ptr<const logicsim::CompiledNetlist>& prog, int words,
    logicsim::GoldenTraceCache& cache, guard::Checker& check) {
  switch (words) {
    case 4:
      return RunDifferentialT<4>(req, prog, cache, check);
    case 8:
      return RunDifferentialT<8>(req, prog, cache, check);
    default:
      return RunDifferentialT<1>(req, prog, cache, check);
  }
}

}  // namespace

std::uint64_t StimulusDigest(const StimulusSpec& stimulus) {
  // Drive digest plus the observation schedule: unlike the golden-trace
  // keys, a checkpoint binds the *complete* stimulus contract — two
  // campaigns that drive identically but strobe or observe different nets
  // classify faults differently, so their journals must not interchange.
  const TestPlan& plan = stimulus.plan;
  logicsim::Fnv1a h;
  h.AddBytes("ckpt_stimulus", 13);  // consumer domain tag
  AddDriveDigest(h, stimulus);
  h.Add(plan.strobe_cycles.size());
  for (int c : plan.strobe_cycles) h.Add(static_cast<std::uint64_t>(c));
  h.Add(plan.observe.size());
  for (GateId g : plan.observe) h.Add(g);
  return h.hash();
}

FaultSimResult RunFaultSim(const FaultSimRequest& request) {
  CheckPlan(request.nl, request.stimulus.plan);
  PFD_CHECK_MSG(request.journal == nullptr || request.journal->bound(),
                "FaultSimRequest::journal must be bound before RunFaultSim "
                "(ckpt::Journal::Bind validates the design/stimulus/engine "
                "binding)");
  // Resolve the shared artefacts once, on the calling thread: shards only
  // ever read the compiled program, and a caller-provided program must
  // actually match the netlist it will simulate.
  std::shared_ptr<const logicsim::CompiledNetlist> prog = request.compiled;
  if (prog != nullptr) {
    PFD_CHECK_MSG(prog->structural_hash() == request.nl.StructuralHash(),
                  "compiled program does not match the netlist");
  } else {
    prog = logicsim::CompiledNetlist::Compile(request.nl);
  }
  logicsim::GoldenTraceCache& cache =
      request.golden_cache != nullptr ? *request.golden_cache
                                      : logicsim::GoldenTraceCache::Global();
  guard::Checker local(request.limits);
  guard::Checker& check =
      request.checker != nullptr ? *request.checker : local;
  // Lane-width resolution (see FaultSimRequest::lanes). A bound journal
  // pins the 64-lane framing so recorded spans stay width-independent.
  int words;
  if (request.journal != nullptr) {
    PFD_CHECK_MSG(request.lanes == 0 || request.lanes == 64,
                  "checkpointed fault-sim campaigns run the 64-lane framing; "
                  "drop the journal or the explicit wider lane request");
    words = 1;
  } else if (request.engine == FaultSimEngine::kSerial) {
    // The serial engine reads only lane 0; auto stays narrow on purpose.
    words = request.lanes == 0 ? 1 : simd::ResolveLaneWords(request.lanes);
  } else if (request.engine == FaultSimEngine::kDifferential) {
    // Auto stays at 64 lanes: a differential shard settles the *union*
    // dirty cone of its faults, which grows superlinearly with faults per
    // shard — wider shards lose throughput on every design measured
    // (BENCH_engines.json, BM_EngineWidth ewf_differential_w*). Explicit
    // wide requests (--lanes or PFD_LANES) are honoured — bit-identical,
    // the equivalence suite runs them; only the default refuses to widen.
    words = request.lanes == 0 && !simd::LaneWidthPinnedByEnv()
                ? 1
                : simd::ResolveLaneWords(request.lanes);
  } else {
    words = simd::ResolveLaneWords(request.lanes);
  }
  switch (request.engine) {
    case FaultSimEngine::kParallel:
      return RunParallel(request, prog, words, check);
    case FaultSimEngine::kSerial:
      return RunSerial(request, prog, words, cache, check);
    case FaultSimEngine::kDifferential:
      return RunDifferential(request, prog, words, cache, check);
  }
  throw Error("unknown fault engine");
}

}  // namespace pfd::fault
