// The paper's Section-5 fault-classification pipeline.
//
// Given an integrated controller-datapath system, classifies every
// (collapsed) stuck-at fault inside the controller:
//
//   step 1  fault-simulate the whole system with TPGR patterns; detected
//           faults are SFI;
//   step 2  upgrade "potentially detected" faults (known golden response vs
//           X faulty response) to SFI — in real hardware the boot value
//           will mismatch for some pattern;
//   step 3  simulate the faulty controller alone; faults that never change
//           any control line are CFR;
//   step 4  decide the rest: symbolic RTL equivalence proves SFR; otherwise
//           an exhaustive (or sampled) gate-level dual run decides.
//
// Each CFI fault also carries its Section-3 control-line-effect analysis
// (for Table-1-style reporting and for cross-validation of the paper's
// analytic rules against the sound deciders).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/effects.hpp"
#include "analysis/trace.hpp"
#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "guard/guard.hpp"
#include "hls/hls.hpp"
#include "synth/system.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::core {

enum class FaultClass : std::uint8_t {
  kSfiSim,        // caught by the TPGR fault simulation (step 1)
  kSfiPotential,  // potentially detected, upgraded to SFI (step 2)
  kCfr,           // controller-functionally redundant (step 3)
  kSfr,           // system-functionally redundant (step 4)
  kSfiAnalysis,   // SFI established by the step-4 deciders
  kUndecided,     // run tripped a guard (or the unit failed) before a
                  // sound decision was reached — never a classification
};

const char* FaultClassName(FaultClass c);

struct FaultRecord {
  fault::StuckFault fault;
  std::string name;
  FaultClass cls = FaultClass::kSfiSim;

  // CFI faults only: classified effects from the steady-state window (or
  // the boot window when the steady window is clean).
  std::vector<analysis::ClassifiedEffect> effects;
  // Does any effect touch a register load line? (Figure 7 splits faults
  // into select-only vs load-line groups on this.)
  bool touches_load_line = false;

  // Step-4 provenance (SFR/kSfiAnalysis only).
  bool symbolically_proven = false;  // SFR proven by expression equality
  bool exhaustive = false;           // gate decider enumerated all inputs
  // Section-3 analytic verdict over the effects (cross-check only).
  analysis::LocalVerdict analytic_verdict =
      analysis::LocalVerdict::kNeedsValueAnalysis;
};

// When the tester strobes the datapath outputs during the integrated test.
// The paper's designs hold results in output registers, so kAtHold is the
// default; kEveryCycle models a tester that compares every clock, which
// additionally exposes faults whose only system-level effect is a transient
// on an output register mid-schedule.
enum class ObservationPolicy : std::uint8_t { kAtHold, kEveryCycle };

struct PipelineConfig {
  int tpgr_patterns = 1200;
  std::uint32_t tpgr_seed = tpg::kTestSetSeed1;
  int trace_patterns = 3;
  ObservationPolicy observation = ObservationPolicy::kAtHold;
  // Step-1 fault-simulation engine (pfdtool --fault-engine). The report is
  // bit-identical across engines; kDifferential is the fast production
  // engine, the others exist for validation and cross-checking.
  fault::FaultSimEngine fault_engine = fault::FaultSimEngine::kDifferential;
  // Step-1 simulation lane width (pfdtool --lanes): 64, 256, 512, or 0 for
  // auto (PFD_LANES, else the active SIMD backend's natural width). A
  // throughput knob only — the report is bit-identical at every width.
  int lanes = 0;
  analysis::GateCheckConfig gate_check;
  // Worker threads for the parallel stages (step-1 fault-sim shards, step-4
  // per-fault deciders). A performance knob only: the ClassificationReport
  // is bit-identical for every thread count.
  exec::Options exec;
  // Optional injected shared pool for those stages (a long-lived service
  // multiplexing many requests onto one worker set); nullptr builds private
  // pools from `exec`. Scheduling only — the report is bit-identical either
  // way. Not owned.
  exec::Pool* pool = nullptr;
  // Cooperative run limits, pooled across all four stages through one
  // guard::Checker: the deadline / cycle budget is for the whole
  // classification, not per stage. A trip never throws out of the pipeline —
  // the report comes back partial, undecided faults marked kUndecided and
  // run_status carrying the trip.
  guard::Limits limits;
  // Stage-progress callback (one line per stage boundary); pfdtool -v wires
  // this to stderr. Null = silent.
  std::function<void(const std::string&)> progress;
  // Optional checkpoint journal (pfdtool --checkpoint). The pipeline binds
  // it to {netlist structural hash, stimulus digest, engine} at the start of
  // step 1 (a resume against a mismatched journal throws pfd::Error) and
  // hands it to the step-1 fault simulation, which replays completed spans
  // and appends new ones. Not owned.
  ckpt::Journal* journal = nullptr;
};

// Where the cycles and simulations went during one ClassifyControllerFaults
// run. Wall times and pipeline-level counts are always collected (a handful
// of clock reads); the engine-substrate numbers (sim_cycles, gate_evals)
// are deltas of the obs::Registry counters and stay 0 unless the caller
// enabled the registry.
struct PipelineMetrics {
  double wall_ms_total = 0.0;
  double step1_ms = 0.0;  // integrated-system TPGR fault simulation
  double step2_ms = 0.0;  // potentially-detected upgrade
  double step3_ms = 0.0;  // controller-only trace diff + CFR decision
  double step4_ms = 0.0;  // symbolic / gate-level SFR decision

  // Fault counts by class (mirrors the ClassificationReport breakdown).
  std::size_t faults_total = 0;
  std::size_t sfi_sim = 0;
  std::size_t sfi_potential = 0;
  std::size_t sfi_analysis = 0;
  std::size_t cfr = 0;
  std::size_t sfr = 0;
  std::size_t undecided = 0;  // guard tripped / unit failed before a verdict

  // Engine invocations issued by the pipeline.
  int tpgr_patterns = 0;
  std::uint64_t sim_invocations = 0;  // fault sims + trace extractions +
                                      // gate-level dual runs
  std::uint64_t trace_extractions = 0;
  std::uint64_t symbolic_checks = 0;
  std::uint64_t gate_checks = 0;

  // obs::Registry deltas over the run (0 when the registry is disabled).
  std::uint64_t sim_cycles = 0;
  std::uint64_t gate_evals = 0;
};

struct ClassificationReport {
  std::vector<FaultRecord> records;
  std::size_t total = 0;
  std::size_t sfi_sim = 0;
  std::size_t sfi_potential = 0;
  std::size_t sfi_analysis = 0;
  std::size_t cfr = 0;
  std::size_t sfr = 0;
  std::size_t undecided = 0;

  // Partial-result contract: kOk for a clean run, otherwise the merged
  // stage statuses (trip code or kPartialFailure) with every quarantined
  // unit listed, stage-prefixed.
  guard::RunStatus run_status;

  // Per-stage timing and engine-invocation accounting for this run.
  PipelineMetrics metrics;

  double PercentSfr() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(sfr) /
                                  static_cast<double>(total);
  }
  std::vector<const FaultRecord*> SfrFaults() const;
  std::string Summary() const;
};

ClassificationReport ClassifyControllerFaults(const synth::System& sys,
                                              const hls::HlsResult& hls,
                                              const PipelineConfig& config);

// Shared front-end default: feedback designs (while-loop controllers) make
// the step-4 exhaustive gate decider intractable, so the exhaustive cap is
// lowered and the sampled fallback widened. Both pfdtool and the pfdd
// service resolve requests through this one function — that is what keeps
// a served classification byte-identical to the solo CLI run.
void ApplyFeedbackGateCheckDefaults(const synth::System& sys,
                                    PipelineConfig* config);

}  // namespace pfd::core
