// RunReport: a versioned, self-describing JSON artifact stamped onto every
// run that asks for one (pfdtool --report run.json). The report is the
// durable record the perf-trajectory work keys off: build provenance
// (compiler, build type, flags, git describe), host context, the full
// request, the guard RunStatus, pipeline metrics when the run produced
// them, golden-cache stats, and a complete obs snapshot (counters, gauges,
// histogram quantiles).
//
// Schema contract: the document carries `"schema": "pfd.run_report"` and an
// integer `"schema_version"`. Additive changes (new keys) do not bump the
// version; removing or renaming a key does. tools/check_run_report.py is
// the executable definition of the schema and must be updated in the same
// change as any version bump.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"

namespace pfd::core {

inline constexpr int kRunReportSchemaVersion = 1;

// Build type this binary was compiled as ("Release", "Debug", "unknown"),
// from the same per-file provenance injection the report's provenance
// section uses. Exposed for artifacts that stamp build context outside a
// RunReport (benchmark JSON).
const char* BuildType();

// Checkpoint-journal summary for runs started with --checkpoint (additive
// "checkpoint" key; absent — JSON null — otherwise). After a guard trip
// this is what tells the operator the journal is resumable and how much of
// the campaign it holds.
struct RunReportCheckpoint {
  std::string path;
  std::uint64_t records_written = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t torn_tail_truncations = 0;
};

// Everything the caller supplies; registry/cache/provenance/host sections
// are collected by RunReportJson itself.
struct RunReportInputs {
  std::string command;  // pfdtool subcommand ("classify", "xcheck", ...)
  // Request key/values; `second` is a pre-rendered JSON value (callers use
  // RequestStr/RequestInt below so quoting stays in one place).
  std::vector<std::pair<std::string, std::string>> request;
  int exit_code = 0;
  const guard::RunStatus* run_status = nullptr;   // optional
  const PipelineMetrics* metrics = nullptr;       // optional
  const RunReportCheckpoint* checkpoint = nullptr;  // optional
  // Optional per-request metric scope (a served request). When set, the
  // counters/gauges/histograms sections and the cache hit/miss counters
  // render this request's deltas instead of the process-global registry —
  // under concurrent requests the global snapshot would absorb every
  // neighbour's work. Cache `entries` stays global: the golden-trace cache
  // is a shared resource by design. Not owned.
  const obs::MetricScope* scope = nullptr;
};

// Renders a request field as key + JSON value.
std::pair<std::string, std::string> RequestStr(std::string key,
                                               const std::string& value);
std::pair<std::string, std::string> RequestInt(std::string key,
                                               std::int64_t value);
std::pair<std::string, std::string> RequestDouble(std::string key,
                                                  double value);
std::pair<std::string, std::string> RequestBool(std::string key, bool value);

std::string RunReportJson(const RunReportInputs& inputs);

// Writes RunReportJson(inputs) to `path`. Returns false on I/O failure.
bool WriteRunReportFile(const RunReportInputs& inputs,
                        const std::string& path);

}  // namespace pfd::core
