#include "core/grading.hpp"

#include <algorithm>

#include "base/stats.hpp"

namespace pfd::core {

std::size_t PowerGradeReport::DetectedCount() const {
  std::size_t n = 0;
  for (const GradedFault& f : faults) {
    if (f.outside_band) ++n;
  }
  return n;
}

std::vector<const GradedFault*> PowerGradeReport::Figure7Order() const {
  std::vector<const GradedFault*> select_only;
  std::vector<const GradedFault*> load_line;
  for (const GradedFault& f : faults) {
    (f.record->touches_load_line ? load_line : select_only).push_back(&f);
  }
  auto by_power = [](const GradedFault* a, const GradedFault* b) {
    return a->power_uw < b->power_uw;
  };
  std::sort(select_only.begin(), select_only.end(), by_power);
  std::sort(load_line.begin(), load_line.end(), by_power);
  select_only.insert(select_only.end(), load_line.begin(), load_line.end());
  return select_only;
}

power::PowerModel MakePowerModel(const synth::System& sys,
                                 const power::TechModel& tech) {
  power::PowerModel model(sys.nl, tech);
  for (const auto& [enable, dffs] : sys.clock_gates) {
    model.AddClockGate(enable, dffs);
  }
  return model;
}

PowerGradeReport GradeSfrFaults(const synth::System& sys,
                                const ClassificationReport& classification,
                                const GradeConfig& config) {
  const power::PowerModel model = MakePowerModel(sys, config.tech);
  const fault::TestPlan plan = sys.MakeTestPlan();

  PowerGradeReport report;
  report.threshold_percent = config.threshold_percent;
  report.fault_free_uw =
      power::EstimatePowerMonteCarlo(sys.nl, plan, model, config.mc)
          .breakdown.datapath_uw;

  for (const FaultRecord& rec : classification.records) {
    if (rec.cls != FaultClass::kSfr) continue;
    const fault::StuckFault f = rec.fault;
    const power::PowerResult pr = power::EstimatePowerMonteCarlo(
        sys.nl, plan, model, std::span<const fault::StuckFault>(&f, 1),
        config.mc);
    GradedFault gf;
    gf.record = &rec;
    gf.power_uw = pr.breakdown.datapath_uw;
    gf.percent_change = PercentChange(report.fault_free_uw, gf.power_uw);
    gf.outside_band =
        std::abs(gf.percent_change) > config.threshold_percent;
    report.faults.push_back(gf);
  }
  return report;
}

}  // namespace pfd::core
