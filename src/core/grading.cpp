#include "core/grading.hpp"

#include <algorithm>

#include "base/stats.hpp"

namespace pfd::core {

std::size_t PowerGradeReport::DetectedCount() const {
  std::size_t n = 0;
  for (const GradedFault& f : faults) {
    if (f.outside_band) ++n;
  }
  return n;
}

std::vector<const GradedFault*> PowerGradeReport::Figure7Order() const {
  std::vector<const GradedFault*> select_only;
  std::vector<const GradedFault*> load_line;
  for (const GradedFault& f : faults) {
    (f.record->touches_load_line ? load_line : select_only).push_back(&f);
  }
  auto by_power = [](const GradedFault* a, const GradedFault* b) {
    return a->power_uw < b->power_uw;
  };
  std::sort(select_only.begin(), select_only.end(), by_power);
  std::sort(load_line.begin(), load_line.end(), by_power);
  select_only.insert(select_only.end(), load_line.begin(), load_line.end());
  return select_only;
}

power::PowerModel MakePowerModel(const synth::System& sys,
                                 const power::TechModel& tech) {
  power::PowerModel model(sys.nl, tech);
  for (const auto& [enable, dffs] : sys.clock_gates) {
    model.AddClockGate(enable, dffs);
  }
  return model;
}

PowerGradeReport GradeSfrFaults(const synth::System& sys,
                                const ClassificationReport& classification,
                                const GradeConfig& config) {
  const power::PowerModel model = MakePowerModel(sys, config.tech);
  const fault::TestPlan plan = sys.MakeTestPlan();

  // One checker pools the deadline / cycle budget across the baseline and
  // every per-fault Monte Carlo run; a trip stops grading between faults
  // and the report covers whatever was graded so far.
  guard::Checker local_check(config.mc.limits);
  guard::Checker& check =
      config.mc.checker != nullptr ? *config.mc.checker : local_check;
  power::MonteCarloConfig mc = config.mc;
  mc.checker = &check;

  PowerGradeReport report;
  report.threshold_percent = config.threshold_percent;
  {
    const power::PowerResult base =
        power::EstimatePowerMonteCarlo(sys.nl, plan, model, mc);
    report.fault_free_uw = base.breakdown.datapath_uw;
    report.run_status.MergeFrom(base.run_status, "baseline");
    if (check.tripped() || base.run_status.tripped()) return report;
  }

  for (const FaultRecord& rec : classification.records) {
    if (rec.cls != FaultClass::kSfr) continue;
    ++report.run_status.total_units;
    if (check.tripped()) continue;
    const fault::StuckFault f = rec.fault;
    const power::PowerResult pr = power::EstimatePowerMonteCarlo(
        sys.nl, plan, model, std::span<const fault::StuckFault>(&f, 1), mc);
    if (pr.run_status.tripped()) {
      // Mid-run trip: this fault's estimate is over a truncated batch set,
      // so it is not graded; the trip code lands in the merged status.
      report.run_status.MergeFrom(pr.run_status, rec.name);
      continue;
    }
    report.run_status.MergeFrom(pr.run_status, rec.name);
    report.run_status.completed.push_back(report.run_status.total_units - 1);
    GradedFault gf;
    gf.record = &rec;
    gf.power_uw = pr.breakdown.datapath_uw;
    gf.percent_change = PercentChange(report.fault_free_uw, gf.power_uw);
    gf.outside_band =
        std::abs(gf.percent_change) > config.threshold_percent;
    report.faults.push_back(gf);
  }
  return report;
}

}  // namespace pfd::core
