#include "core/grading.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "base/error.hpp"
#include "base/stats.hpp"
#include "logicsim/golden_cache.hpp"

namespace pfd::core {

namespace {

// Digest of every knob that shapes a Monte Carlo power estimate — the MC
// sampling configuration, the timing model, the full test plan stimulus,
// the tech model constants, and the clock-gate groups. Thread count and
// guard limits are deliberately excluded: the engine is bit-identical
// across both. Shared by the baseline golden-cache key and the checkpoint
// journal's power-record digests (the per-fault digest folds the fault
// identity in on top).
std::uint64_t GradeMcDigest(const synth::System& sys,
                            const fault::TestPlan& plan,
                            const power::TechModel& tech,
                            const power::MonteCarloConfig& mc) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  logicsim::Fnv1a h;
  h.AddBytes("grade_baseline_mc", 17);  // consumer domain tag
  h.Add(mc.seed);
  h.Add(static_cast<std::uint64_t>(mc.min_batches));
  h.Add(static_cast<std::uint64_t>(mc.max_batches));
  h.Add(bits(mc.rel_tol));
  h.Add(mc.unit_delay ? 1 : 0);
  h.Add(static_cast<std::uint64_t>(plan.cycles_per_pattern));
  h.Add(static_cast<std::uint64_t>(plan.reset));
  h.Add(plan.operand_bits.size());
  for (const auto& op : plan.operand_bits) {
    h.Add(op.size());
    for (netlist::GateId g : op) h.Add(g);
  }
  h.Add(plan.pinned.size());
  for (const auto& [gate, value] : plan.pinned) {
    h.Add(gate);
    h.Add(static_cast<std::uint64_t>(value));
  }
  h.Add(bits(tech.vdd_v));
  h.Add(bits(tech.clock_hz));
  h.Add(bits(tech.input_cap_f));
  h.Add(bits(tech.drain_cap_f));
  h.Add(bits(tech.wire_cap_f));
  h.Add(bits(tech.dff_q_extra_cap_f));
  h.Add(bits(tech.dff_clock_energy_j));
  h.Add(sys.clock_gates.size());
  for (const auto& [enable, dffs] : sys.clock_gates) {
    h.Add(enable);
    h.Add(dffs.size());
    for (netlist::GateId d : dffs) h.Add(d);
  }
  return h.hash();
}

// Cache key for the fault-free Monte Carlo power baseline. Only the
// fault-free baseline is cached; per-fault runs get a distinct simulator
// configuration each and would just churn the cache.
logicsim::GoldenKey BaselinePowerKey(const synth::System& sys,
                                     const fault::TestPlan& plan,
                                     const power::TechModel& tech,
                                     const power::MonteCarloConfig& mc) {
  logicsim::GoldenKey key;
  key.netlist_hash = sys.nl.StructuralHash();
  key.stimulus_hash = GradeMcDigest(sys, plan, tech, mc);
  key.cycles = 64ULL * static_cast<std::uint64_t>(mc.max_batches) *
               static_cast<std::uint64_t>(plan.cycles_per_pattern);
  return key;
}

// Journal-record digest for one graded fault: the shared MC digest plus the
// fault's identity, so a resumed grade refuses records written for a
// different fault sequence (FindPower throws on digest mismatch).
std::uint64_t FaultPowerDigest(std::uint64_t mc_digest,
                               const fault::StuckFault& f) {
  logicsim::Fnv1a h;
  h.AddBytes("grade_fault_mc", 14);  // consumer domain tag
  h.Add(mc_digest);
  h.Add(f.gate);
  h.Add(static_cast<std::uint64_t>(f.pin));
  h.Add(static_cast<std::uint64_t>(f.value));
  return h.hash();
}

ckpt::PowerRecord MakePowerRecord(std::int64_t ordinal, std::uint64_t digest,
                                  const power::PowerResult& pr) {
  ckpt::PowerRecord rec;
  rec.ordinal = ordinal;
  rec.config_digest = digest;
  rec.datapath_uw = pr.breakdown.datapath_uw;
  rec.controller_uw = pr.breakdown.controller_uw;
  rec.interface_uw = pr.breakdown.interface_uw;
  rec.total_uw = pr.breakdown.total_uw;
  rec.ci95_rel = pr.ci95_rel;
  rec.batches = static_cast<std::uint32_t>(pr.batches);
  rec.patterns = pr.patterns;
  return rec;
}

}  // namespace

std::size_t PowerGradeReport::DetectedCount() const {
  std::size_t n = 0;
  for (const GradedFault& f : faults) {
    if (f.outside_band) ++n;
  }
  return n;
}

std::vector<const GradedFault*> PowerGradeReport::Figure7Order() const {
  std::vector<const GradedFault*> select_only;
  std::vector<const GradedFault*> load_line;
  for (const GradedFault& f : faults) {
    (f.record->touches_load_line ? load_line : select_only).push_back(&f);
  }
  auto by_power = [](const GradedFault* a, const GradedFault* b) {
    return a->power_uw < b->power_uw;
  };
  std::sort(select_only.begin(), select_only.end(), by_power);
  std::sort(load_line.begin(), load_line.end(), by_power);
  select_only.insert(select_only.end(), load_line.begin(), load_line.end());
  return select_only;
}

power::PowerModel MakePowerModel(const synth::System& sys,
                                 const power::TechModel& tech) {
  power::PowerModel model(sys.nl, tech);
  for (const auto& [enable, dffs] : sys.clock_gates) {
    model.AddClockGate(enable, dffs);
  }
  return model;
}

PowerGradeReport GradeSfrFaults(const synth::System& sys,
                                const ClassificationReport& classification,
                                const GradeConfig& config) {
  const power::PowerModel model = MakePowerModel(sys, config.tech);
  const fault::TestPlan plan = sys.MakeTestPlan();

  // One checker pools the deadline / cycle budget across the baseline and
  // every per-fault Monte Carlo run; a trip stops grading between faults
  // and the report covers whatever was graded so far.
  guard::Checker local_check(config.mc.limits);
  guard::Checker& check =
      config.mc.checker != nullptr ? *config.mc.checker : local_check;
  power::MonteCarloConfig mc = config.mc;
  mc.checker = &check;

  PFD_CHECK_MSG(config.journal == nullptr || config.journal->bound(),
                "GradeConfig::journal must be bound before GradeSfrFaults");
  // One MC digest covers every estimate this grade issues; per-fault
  // records fold the fault identity in on top. Baseline is ordinal -1,
  // SFR faults are numbered by grading sequence.
  const std::uint64_t mc_digest =
      config.journal != nullptr
          ? GradeMcDigest(sys, plan, config.tech, config.mc)
          : 0;
  // Replays a journal power record into a PowerResult (clean by
  // construction: only complete, failure-free estimates are journaled).
  const auto from_record = [](const ckpt::PowerRecord& rec) {
    power::PowerResult pr;
    pr.breakdown.datapath_uw = rec.datapath_uw;
    pr.breakdown.controller_uw = rec.controller_uw;
    pr.breakdown.interface_uw = rec.interface_uw;
    pr.breakdown.total_uw = rec.total_uw;
    pr.ci95_rel = rec.ci95_rel;
    pr.batches = static_cast<int>(rec.batches);
    pr.patterns = rec.patterns;
    return pr;
  };

  PowerGradeReport report;
  report.threshold_percent = config.threshold_percent;
  {
    power::PowerResult base;
    bool replayed = false;
    if (config.journal != nullptr) {
      if (const ckpt::PowerRecord* jr =
              config.journal->FindPower(-1, mc_digest)) {
        base = from_record(*jr);
        replayed = true;
      }
    }
    if (!replayed) {
      const logicsim::GoldenKey key =
          BaselinePowerKey(sys, plan, config.tech, config.mc);
      if (const auto entry = logicsim::GoldenTraceCache::Global().Find(key)) {
        base.breakdown.datapath_uw = entry->scalars[0];
        base.breakdown.controller_uw = entry->scalars[1];
        base.breakdown.interface_uw = entry->scalars[2];
        base.breakdown.total_uw = entry->scalars[3];
        base.ci95_rel = entry->scalars[4];
        base.batches = static_cast<int>(entry->counts[0]);
        base.patterns = entry->counts[1];
      } else {
        base = power::EstimatePowerMonteCarlo(sys.nl, plan, model, mc);
        if (base.run_status.ok() && base.run_status.failed_units.empty()) {
          auto fresh = std::make_shared<logicsim::GoldenEntry>();
          fresh->scalars = {base.breakdown.datapath_uw,
                            base.breakdown.controller_uw,
                            base.breakdown.interface_uw,
                            base.breakdown.total_uw, base.ci95_rel};
          fresh->counts = {static_cast<std::uint64_t>(base.batches),
                           base.patterns};
          logicsim::GoldenTraceCache::Global().Insert(key, std::move(fresh));
        }
      }
      // Only a complete, failure-free estimate is journal-worthy: a partial
      // estimate would replay as authoritative on resume.
      if (config.journal != nullptr && base.run_status.ok() &&
          base.run_status.failed_units.empty()) {
        config.journal->AppendPower(MakePowerRecord(-1, mc_digest, base));
      }
    }
    report.fault_free_uw = base.breakdown.datapath_uw;
    report.run_status.MergeFrom(base.run_status, "baseline");
    if (check.tripped() || base.run_status.tripped()) return report;
  }

  std::int64_t sfr_ordinal = -1;
  for (const FaultRecord& rec : classification.records) {
    if (rec.cls != FaultClass::kSfr) continue;
    ++sfr_ordinal;
    ++report.run_status.total_units;
    if (check.tripped()) continue;
    const fault::StuckFault f = rec.fault;
    const std::uint64_t digest =
        config.journal != nullptr ? FaultPowerDigest(mc_digest, f) : 0;
    power::PowerResult pr;
    bool replayed = false;
    if (config.journal != nullptr) {
      if (const ckpt::PowerRecord* jr =
              config.journal->FindPower(sfr_ordinal, digest)) {
        pr = from_record(*jr);
        replayed = true;
      }
    }
    if (!replayed) {
      pr = power::EstimatePowerMonteCarlo(
          sys.nl, plan, model, std::span<const fault::StuckFault>(&f, 1), mc);
      if (pr.run_status.tripped()) {
        // Mid-run trip: this fault's estimate is over a truncated batch
        // set, so it is not graded; the trip code lands in the merged
        // status.
        report.run_status.MergeFrom(pr.run_status, rec.name);
        continue;
      }
      if (config.journal != nullptr && pr.run_status.ok() &&
          pr.run_status.failed_units.empty()) {
        config.journal->AppendPower(
            MakePowerRecord(sfr_ordinal, digest, pr));
      }
    }
    report.run_status.MergeFrom(pr.run_status, rec.name);
    report.run_status.completed.push_back(report.run_status.total_units - 1);
    GradedFault gf;
    gf.record = &rec;
    gf.power_uw = pr.breakdown.datapath_uw;
    gf.percent_change = PercentChange(report.fault_free_uw, gf.power_uw);
    gf.outside_band =
        std::abs(gf.percent_change) > config.threshold_percent;
    report.faults.push_back(gf);
  }
  return report;
}

}  // namespace pfd::core
