#include "core/worstcase.hpp"

#include "analysis/effects.hpp"
#include "base/stats.hpp"
#include "rtl/expr.hpp"
#include "rtl/machine.hpp"

namespace pfd::core {

namespace {

bool HasInitLeaf(const rtl::ExprPool& pool, rtl::ExprRef root) {
  const rtl::ExprPool::Node& n = pool.node(root);
  switch (n.op) {
    case rtl::ExprPool::Op::kInit:
      return true;
    case rtl::ExprPool::Op::kVar:
    case rtl::ExprPool::Op::kConst:
      return false;
    default:
      return HasInitLeaf(pool, n.a) || HasInitLeaf(pool, n.b);
  }
}

// Symbolic proof that two resolved control schedules compute identical
// outputs on the shared datapath, for arbitrary inputs and boot state.
bool SpecsEquivalent(const synth::System& base, const synth::System& pert) {
  rtl::ExprPool pool;
  rtl::SymbolicMachine bm(base.datapath, rtl::SymbolicDomain{&pool});
  rtl::SymbolicMachine pm(base.datapath, rtl::SymbolicDomain{&pool});
  for (std::uint32_t i = 0; i < base.datapath.inputs().size(); ++i) {
    const rtl::ExprRef var = pool.Var(i, base.datapath.inputs()[i].width);
    bm.SetInput(i, var);
    pm.SetInput(i, var);
  }
  const int cpp = base.cycles_per_pattern;
  const int hold = base.control_spec.HoldState();
  for (int c = 0; c < cpp; ++c) {
    // Steady-state pattern: cycle 0 is the pattern-boundary cycle (still in
    // HOLD, reset asserted); from cycle 1 the schedule runs RESET..HOLD.
    const int state = c == 0 ? hold : std::min(c - 1, hold);
    bm.Step(base.ControlWordForState(state));
    pm.Step(pert.ControlWordForState(state));
    if (std::find(base.hold_cycles.begin(), base.hold_cycles.end(), c) ==
        base.hold_cycles.end()) {
      continue;
    }
    for (std::uint32_t o = 0; o < base.datapath.outputs().size(); ++o) {
      if (bm.Output(o) != pm.Output(o)) return false;
      // Boot-state independence: equality only transfers to the real
      // machines if the outputs reference no register's boot value.
      if (HasInitLeaf(pool, bm.Output(o))) return false;
    }
  }
  return true;
}

}  // namespace

WorstCaseResult ComposeWorstCase(const synth::System& sys,
                                 const hls::HlsResult& hls,
                                 const GradeConfig& config) {
  PFD_CHECK_MSG(!sys.has_feedback,
                "the worst-case composer requires a linear (loop-free) "
                "control schedule");
  const analysis::LifespanTable lifespans(hls);
  rtl::ControlSpec spec = sys.control_spec;
  WorstCaseResult result;

  for (int s = 0; s < spec.NumStates(); ++s) {
    // Extra loads on lines whose registers are all idle across this step.
    for (int l = 0; l < spec.num_load_lines; ++l) {
      if (spec.states[s].load[l] != 0) continue;
      bool all_idle = true;
      for (std::uint32_t r : sys.load_map.regs_of_line[l]) {
        if (lifespans.LiveAcross(r, s)) all_idle = false;
      }
      if (all_idle) {
        spec.states[s].load[l] = 1;
        ++result.extra_loads;
      }
    }
    // Re-specify don't-care selects so they change from state to state:
    // routing a different source through the mux every step maximises the
    // switching of the muxes and the functional units behind them.
    for (int m = 0; m < spec.num_muxes; ++m) {
      if (spec.states[s].select[m].has_value()) continue;
      const std::uint32_t mask = (1u << spec.mux_select_bits[m]) - 1u;
      spec.states[s].select[m] =
          (sys.resolved.selects[s][m] + 1u + static_cast<std::uint32_t>(s)) &
          mask;
      ++result.select_flips;
    }
  }

  const synth::System pert =
      synth::BuildSystem(sys.name + "_worstcase", sys.datapath, spec,
                         sys.load_map, sys.options);

  result.verified_equivalent = SpecsEquivalent(sys, pert);

  const power::PowerModel base_model = MakePowerModel(sys, config.tech);
  const power::PowerModel pert_model = MakePowerModel(pert, config.tech);
  result.base_uw = power::EstimatePowerMonteCarlo(
                       sys.nl, sys.MakeTestPlan(), base_model, config.mc)
                       .breakdown.datapath_uw;
  result.perturbed_uw = power::EstimatePowerMonteCarlo(
                            pert.nl, pert.MakeTestPlan(), pert_model,
                            config.mc)
                            .breakdown.datapath_uw;
  result.percent_change = PercentChange(result.base_uw, result.perturbed_uw);
  return result;
}

}  // namespace pfd::core
