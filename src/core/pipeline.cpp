#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "logicsim/compiled.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace pfd::core {

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kSfiSim: return "SFI(sim)";
    case FaultClass::kSfiPotential: return "SFI(potential)";
    case FaultClass::kCfr: return "CFR";
    case FaultClass::kSfr: return "SFR";
    case FaultClass::kSfiAnalysis: return "SFI(analysis)";
    case FaultClass::kUndecided: return "UNDECIDED";
  }
  return "?";
}

std::vector<const FaultRecord*> ClassificationReport::SfrFaults() const {
  std::vector<const FaultRecord*> out;
  for (const FaultRecord& r : records) {
    if (r.cls == FaultClass::kSfr) out.push_back(&r);
  }
  return out;
}

std::string ClassificationReport::Summary() const {
  std::ostringstream os;
  os << total << " controller faults: " << sfi_sim << " SFI(sim), "
     << sfi_potential << " SFI(potential), " << sfi_analysis
     << " SFI(analysis), " << cfr << " CFR, " << sfr << " SFR ("
     << PercentSfr() << "%)";
  // Only a tripped/partial run produces undecided faults, so a clean run's
  // summary is byte-identical to the pre-guard format.
  if (undecided > 0) {
    os << ", " << undecided << " UNDECIDED [" << run_status.Describe() << "]";
  }
  return os.str();
}

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

}  // namespace

// The four paper steps run as explicit stages (rather than one fused loop)
// so each gets a wall-time bucket, a trace span, and a progress line; the
// classification decisions are unchanged. Faults that survive a stage are
// carried to the next with their controller trace, which step 4 reuses for
// the symbolic prover.
ClassificationReport ClassifyControllerFaults(const synth::System& sys,
                                              const hls::HlsResult& hls,
                                              const PipelineConfig& config) {
  obs::Registry& reg = obs::Registry::Global();
  // Scoped reads: under a per-request obs::MetricScope (a served request)
  // the deltas see only this request's simulation work, not concurrent
  // requests hammering the same global counters. Unscoped (CLI) runs read
  // the global registry exactly as before.
  const std::uint64_t cycles_before = obs::ScopedCounterValue("logicsim.cycles");
  const std::uint64_t evals_before =
      obs::ScopedCounterValue("logicsim.gate_evals");
  const SteadyClock::time_point t_run = SteadyClock::now();
  obs::Span classify_span("pipeline.classify");
  const bool tracing = reg.trace() != nullptr;
  // Per-fault sub-span args are only rendered when a sink is installed.
  const auto fault_args = [tracing](const std::string& name) {
    return tracing ? "\"fault\":\"" + obs::JsonEscape(name) + "\""
                   : std::string();
  };
  const auto progress = [&config](const std::string& line) {
    if (config.progress) config.progress(line);
  };

  ClassificationReport report;
  PipelineMetrics& m = report.metrics;
  m.tpgr_patterns = config.tpgr_patterns;

  // One checker pools the deadline / cycle budget across all four stages;
  // each stage degrades to a partial result instead of throwing.
  guard::Checker check(config.limits);

  // Step 1: integrated-system fault simulation with TPGR patterns over the
  // collapsed stuck-at faults on controller gates.
  fault::CollapsedFaults collapsed;
  fault::TestPlan plan;
  fault::FaultSimResult sim;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step1.integrated_fault_sim");
    const std::vector<fault::StuckFault> all =
        fault::GenerateFaults(sys.nl, netlist::ModuleTag::kController);
    collapsed = fault::Collapse(sys.nl, all);
    plan = config.observation == ObservationPolicy::kAtHold
               ? sys.MakeTestPlan()
               : sys.MakeEveryCyclePlan();
    fault::FaultSimRequest request{
        sys.nl,
        {plan, config.tpgr_seed, config.tpgr_patterns},
        collapsed.representatives,
        config.fault_engine,
        config.exec};
    request.checker = &check;
    request.pool = config.pool;
    request.lanes = config.lanes;
    if (config.journal != nullptr) {
      // Bind (and on resume: validate) the journal against this campaign's
      // identity. A mismatched resume throws pfd::Error out of the pipeline
      // before any simulation runs.
      config.journal->Bind(ckpt::Binding{
          sys.nl.StructuralHash(),
          fault::StimulusDigest(
              {plan, config.tpgr_seed, config.tpgr_patterns}),
          static_cast<std::uint8_t>(config.fault_engine)});
      request.journal = config.journal;
    }
    // Compile the system once up front; later stages (step-3 traces, step-4
    // gate checks) construct their own simulators over the same netlist and
    // hit the same memoized program.
    request.compiled = logicsim::CompiledNetlist::Compile(sys.nl);
    sim = fault::RunFaultSim(request);
    report.run_status.MergeFrom(sim.run_status, "step1");
    ++m.sim_invocations;
    m.step1_ms = MsSince(t0);
  }
  const std::vector<fault::StuckFault>& faults = collapsed.representatives;
  report.records.resize(faults.size());
  report.total = faults.size();
  {
    std::ostringstream os;
    os << "step1: fault-simulated " << faults.size() << " collapsed faults x "
       << config.tpgr_patterns << " patterns (" << m.step1_ms << " ms)";
    progress(os.str());
  }

  // Step 2: "potentially detected" means the faulty machine exposed an X
  // where the golden response is known; in hardware the boot value will
  // eventually mismatch, so treat as SFI.
  std::vector<std::size_t> survivors;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step2.potential_upgrade");
    for (std::size_t i = 0; i < faults.size(); ++i) {
      FaultRecord& rec = report.records[i];
      rec.fault = faults[i];
      rec.name = fault::FaultName(sys.nl, faults[i]);
      if (sim.status[i] == fault::FaultStatus::kDetected) {
        rec.cls = FaultClass::kSfiSim;
        ++report.sfi_sim;
      } else if (sim.status[i] == fault::FaultStatus::kPotentiallyDetected) {
        rec.cls = FaultClass::kSfiPotential;
        ++report.sfi_potential;
      } else if (sim.status[i] == fault::FaultStatus::kNotRun) {
        // The fault's shard never completed (step-1 guard trip or a shard
        // that failed its retry): undecided, not undetected.
        rec.cls = FaultClass::kUndecided;
        ++report.undecided;
      } else {
        survivors.push_back(i);
      }
    }
    m.step2_ms = MsSince(t0);
  }
  {
    std::ostringstream os;
    os << "step2: " << report.sfi_sim << " SFI(sim), " << report.sfi_potential
       << " SFI(potential) upgraded, " << survivors.size() << " undetected";
    progress(os.str());
  }

  // Step 3: controller-only behaviour. Faults that never change a control
  // line are CFR; the rest carry their classified Section-3 effects (and
  // their controller trace) into step 4.
  struct PendingFault {
    std::size_t index;
    analysis::ControlTrace faulty;
  };
  std::vector<PendingFault> pending;
  analysis::ControlTrace golden;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step3.controller_analysis");
    guard::RunStatus stage;
    stage.total_units = survivors.size();
    golden = analysis::ExtractControlTrace(sys, nullptr, config.trace_patterns);
    ++m.trace_extractions;
    ++m.sim_invocations;
    const analysis::LifespanTable lifespans(hls);

    // Everything one fault produces, computed into locals and committed only
    // when the attempt finishes — so a quarantined attempt that is retried
    // never double-counts a metric or leaves a half-written record.
    struct Step3Outcome {
      bool is_cfr = false;
      std::vector<analysis::ControlLineEffect> effects;
      analysis::ControlTrace faulty;
      int trace_extractions = 0;
      int gate_checks = 0;
    };
    const auto attempt = [&](std::size_t i) {
      guard::MaybeFail("pipeline.step3.trace");
      Step3Outcome out;
      out.faulty =
          analysis::ExtractControlTrace(sys, &faults[i], config.trace_patterns);
      ++out.trace_extractions;
      // Prefer the steady-state window (pattern 1) for reporting; fall back
      // to the boot window, then later patterns, so CFI faults that only act
      // during boot still show their effects.
      out.effects = analysis::DiffPattern(sys, golden, out.faulty, 1);
      bool any_effect = !out.effects.empty();
      for (int p = 0; p < config.trace_patterns; ++p) {
        if (p == 1) continue;
        const auto diff = analysis::DiffPattern(sys, golden, out.faulty, p);
        if (!diff.empty()) {
          any_effect = true;
          if (out.effects.empty()) out.effects = diff;
        }
      }
      // For feedback (while-loop) systems the zero-data trace covers only
      // one control path, so a clean diff does not prove CFR; a dual run
      // observing the control lines over the full input space does.
      if (!any_effect) {
        out.is_cfr = !sys.has_feedback;
        if (sys.has_feedback) {
          analysis::GateCheckConfig cfr_cfg = config.gate_check;
          cfr_cfg.observe_control_lines = true;
          out.is_cfr = !analysis::GateLevelSfrCheck(sys, faults[i], cfr_cfg)
                            .difference_found;
          ++out.gate_checks;
        }
      }
      return out;
    };

    const bool obs_on = obs::Enabled();
    for (const std::size_t i : survivors) {
      FaultRecord& rec = report.records[i];
      // Checker sticky-trips, so once a limit fires the remaining survivors
      // fall through here immediately, each marked undecided.
      if (!check.Check().ok()) {
        rec.cls = FaultClass::kUndecided;
        ++report.undecided;
        continue;
      }
      obs::Span fspan("step3.fault", fault_args(rec.name));
      Step3Outcome out;
      bool done = false;
      bool tripped_mid_fault = false;
      try {
        out = attempt(i);
        done = true;
      } catch (const guard::Tripped&) {
        tripped_mid_fault = true;
      } catch (...) {
        guard::FailedUnit failed{i, guard::CurrentExceptionMessage()};
        if (obs_on) {
          obs::Registry& reg = obs::Registry::Global();
          reg.GetCounter("guard.quarantined_units").Add(1);
          reg.GetCounter("guard.retries").Add(1);
        }
        if (obs::FlightEnabled()) {
          obs::RecordFlight(obs::FlightKind::kQuarantine, "pipeline.step3",
                            "fault " + rec.name + ": " + failed.what);
        }
        try {
          out = attempt(i);
          done = true;
          if (obs_on) {
            obs::Registry::Global().GetCounter("guard.retry_successes").Add(1);
          }
          if (obs::FlightEnabled()) {
            obs::RecordFlight(obs::FlightKind::kRetryOutcome, "pipeline.step3",
                              "fault " + rec.name + ": success");
          }
        } catch (const guard::Tripped&) {
          tripped_mid_fault = true;
        } catch (...) {
          failed.what += "; retry: " + guard::CurrentExceptionMessage();
          if (obs::FlightEnabled()) {
            obs::RecordFlight(obs::FlightKind::kRetryOutcome, "pipeline.step3",
                              "fault " + rec.name + ": failed again");
          }
          stage.failed_units.push_back(std::move(failed));
        }
      }
      if (!done) {
        rec.cls = FaultClass::kUndecided;
        ++report.undecided;
        (void)tripped_mid_fault;  // the checker itself carries the trip
        continue;
      }
      stage.completed.push_back(i);
      m.trace_extractions += out.trace_extractions;
      m.sim_invocations += out.trace_extractions + out.gate_checks;
      m.gate_checks += out.gate_checks;
      if (out.is_cfr) {
        rec.cls = FaultClass::kCfr;
        ++report.cfr;
        continue;
      }

      rec.effects.clear();
      for (const analysis::ControlLineEffect& e : out.effects) {
        // The two HOLD strobes (and shared states) produce identical
        // effects; report each (line, state, transition) once, as the paper
        // does.
        const bool dup = std::any_of(
            rec.effects.begin(), rec.effects.end(),
            [&](const analysis::ClassifiedEffect& ce) {
              return ce.effect.line == e.line && ce.effect.state == e.state &&
                     ce.effect.golden == e.golden &&
                     ce.effect.faulty == e.faulty;
            });
        if (!dup) {
          rec.effects.push_back(analysis::ClassifyEffect(sys, lifespans, e));
        }
      }
      rec.analytic_verdict = analysis::CombineVerdicts(rec.effects);
      for (const analysis::ClassifiedEffect& ce : rec.effects) {
        if (sys.lines[ce.effect.line].kind ==
            synth::ControlLineInfo::Kind::kLoad) {
          rec.touches_load_line = true;
        }
      }
      pending.push_back(PendingFault{i, std::move(out.faulty)});
    }
    if (!stage.failed_units.empty()) {
      stage.code = guard::StatusCode::kPartialFailure;
      stage.message =
          std::to_string(stage.failed_units.size()) + " fault(s) failed";
    }
    report.run_status.MergeFrom(stage, "step3");
    m.step3_ms = MsSince(t0);
  }
  {
    std::ostringstream os;
    os << "step3: " << report.cfr << " CFR, " << pending.size()
       << " CFI faults to decide (" << m.step3_ms << " ms)";
    progress(os.str());
  }

  // Step 4: sound SFR/SFI decision, under the same observation policy as
  // the integrated test. Feedback systems skip the symbolic prover: their
  // control traces are data-dependent, so replaying one trace would not
  // cover all paths.
  std::size_t symbolic_sfr = 0;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step4.sfr_decision");
    std::vector<int> strobes;  // empty = HOLD strobes
    analysis::GateCheckConfig gate_cfg = config.gate_check;
    if (config.observation == ObservationPolicy::kEveryCycle) {
      strobes.assign(plan.strobe_cycles.begin(), plan.strobe_cycles.end());
      gate_cfg.every_cycle = true;
    }
    // Every task owns exactly one FaultRecord (disjoint writes), so the
    // fan-out needs no locking; the prover state (ExprPool) is local to
    // each SymbolicSfrCheck call. Counters are reduced from the records
    // afterwards, in pending order, keeping the metrics thread-invariant.
    // The guarded fan-out quarantines a throwing decider (one serial
    // retry); the record writes all happen after the last throwing call,
    // so a retried unit reproduces the same record bit-for-bit.
    exec::PoolLease pool(config.pool, config.exec);
    const guard::RunStatus stage = pool->ParallelForGuarded(
        pending.size(),
        [&](std::size_t k) {
          guard::MaybeFail("pipeline.step4.decider");
          PendingFault& pf = pending[k];
          FaultRecord& rec = report.records[pf.index];
          obs::Span fspan("step4.fault", fault_args(rec.name));
          if (!sys.has_feedback) {
            const analysis::SymbolicCheck sym =
                analysis::SymbolicSfrCheck(sys, golden, pf.faulty, strobes);
            if (sym.outcome == analysis::SymbolicCheck::Outcome::kEquivalent) {
              rec.cls = FaultClass::kSfr;
              rec.symbolically_proven = true;
              return;
            }
          }
          const analysis::GateCheck gate =
              analysis::GateLevelSfrCheck(sys, faults[pf.index], gate_cfg);
          rec.exhaustive = gate.exhaustive;
          rec.cls = gate.difference_found ? FaultClass::kSfiAnalysis
                                          : FaultClass::kSfr;
        },
        &check);
    std::vector<char> decided(pending.size(), 0);
    for (const std::size_t k : stage.completed) decided[k] = 1;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      FaultRecord& rec = report.records[pending[k].index];
      if (decided[k] == 0) {
        // Skipped after a trip, or failed even after its retry: no sound
        // verdict was reached, and the metrics count no phantom checks.
        rec.cls = FaultClass::kUndecided;
        ++report.undecided;
        continue;
      }
      if (!sys.has_feedback) ++m.symbolic_checks;
      if (rec.symbolically_proven) {
        ++report.sfr;
        ++symbolic_sfr;
        continue;
      }
      ++m.gate_checks;
      ++m.sim_invocations;
      if (rec.cls == FaultClass::kSfiAnalysis) {
        ++report.sfi_analysis;
      } else {
        ++report.sfr;
      }
    }
    // Map the stage's failed-unit indices (positions in `pending`) to fault
    // record indices before folding into the campaign status.
    guard::RunStatus stage_mapped;
    stage_mapped.code = stage.code;
    stage_mapped.message = stage.message;
    for (const guard::FailedUnit& f : stage.failed_units) {
      stage_mapped.failed_units.push_back(
          {pending[f.index].index, f.what});
    }
    report.run_status.MergeFrom(stage_mapped, "step4");
    m.step4_ms = MsSince(t0);
  }
  {
    std::ostringstream os;
    os << "step4: " << report.sfr << " SFR (" << symbolic_sfr
       << " symbolic), " << report.sfi_analysis << " SFI(analysis) ("
       << m.step4_ms << " ms)";
    progress(os.str());
  }

  // A limit trip observed anywhere wins over per-unit partial failures in
  // the campaign code (MergeFrom keeps the first trip if a stage already
  // reported one).
  if (check.tripped()) {
    const guard::Status s = check.status();
    guard::RunStatus trip;
    trip.code = s.code;
    trip.message = s.message;
    report.run_status.MergeFrom(trip, "guard");
  }
  report.run_status.total_units = report.total;
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    if (report.records[i].cls != FaultClass::kUndecided) {
      report.run_status.completed.push_back(i);
    }
  }

  m.faults_total = report.total;
  m.sfi_sim = report.sfi_sim;
  m.sfi_potential = report.sfi_potential;
  m.sfi_analysis = report.sfi_analysis;
  m.cfr = report.cfr;
  m.sfr = report.sfr;
  m.undecided = report.undecided;
  m.sim_cycles = obs::ScopedCounterValue("logicsim.cycles") - cycles_before;
  m.gate_evals =
      obs::ScopedCounterValue("logicsim.gate_evals") - evals_before;
  m.wall_ms_total = MsSince(t_run);
  progress("classify: " + report.Summary());
  return report;
}

void ApplyFeedbackGateCheckDefaults(const synth::System& sys,
                                    PipelineConfig* config) {
  if (sys.has_feedback) {
    config->gate_check.max_exhaustive_bits = 14;
    config->gate_check.sample_patterns = 4096;
  }
}

}  // namespace pfd::core
