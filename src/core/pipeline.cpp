#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/trace.hpp"

namespace pfd::core {

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kSfiSim: return "SFI(sim)";
    case FaultClass::kSfiPotential: return "SFI(potential)";
    case FaultClass::kCfr: return "CFR";
    case FaultClass::kSfr: return "SFR";
    case FaultClass::kSfiAnalysis: return "SFI(analysis)";
  }
  return "?";
}

std::vector<const FaultRecord*> ClassificationReport::SfrFaults() const {
  std::vector<const FaultRecord*> out;
  for (const FaultRecord& r : records) {
    if (r.cls == FaultClass::kSfr) out.push_back(&r);
  }
  return out;
}

std::string ClassificationReport::Summary() const {
  std::ostringstream os;
  os << total << " controller faults: " << sfi_sim << " SFI(sim), "
     << sfi_potential << " SFI(potential), " << sfi_analysis
     << " SFI(analysis), " << cfr << " CFR, " << sfr << " SFR ("
     << PercentSfr() << "%)";
  return os.str();
}

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

}  // namespace

// The four paper steps run as explicit stages (rather than one fused loop)
// so each gets a wall-time bucket, a trace span, and a progress line; the
// classification decisions are unchanged. Faults that survive a stage are
// carried to the next with their controller trace, which step 4 reuses for
// the symbolic prover.
ClassificationReport ClassifyControllerFaults(const synth::System& sys,
                                              const hls::HlsResult& hls,
                                              const PipelineConfig& config) {
  obs::Registry& reg = obs::Registry::Global();
  const std::uint64_t cycles_before = reg.CounterValue("logicsim.cycles");
  const std::uint64_t evals_before = reg.CounterValue("logicsim.gate_evals");
  const SteadyClock::time_point t_run = SteadyClock::now();
  obs::Span classify_span("pipeline.classify");
  const bool tracing = reg.trace() != nullptr;
  // Per-fault sub-span args are only rendered when a sink is installed.
  const auto fault_args = [tracing](const std::string& name) {
    return tracing ? "\"fault\":\"" + obs::JsonEscape(name) + "\""
                   : std::string();
  };
  const auto progress = [&config](const std::string& line) {
    if (config.progress) config.progress(line);
  };

  ClassificationReport report;
  PipelineMetrics& m = report.metrics;
  m.tpgr_patterns = config.tpgr_patterns;

  // Step 1: integrated-system fault simulation with TPGR patterns over the
  // collapsed stuck-at faults on controller gates.
  fault::CollapsedFaults collapsed;
  fault::TestPlan plan;
  fault::FaultSimResult sim;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step1.integrated_fault_sim");
    const std::vector<fault::StuckFault> all =
        fault::GenerateFaults(sys.nl, netlist::ModuleTag::kController);
    collapsed = fault::Collapse(sys.nl, all);
    plan = config.observation == ObservationPolicy::kAtHold
               ? sys.MakeTestPlan()
               : sys.MakeEveryCyclePlan();
    fault::FaultSimRequest request{sys.nl, plan, collapsed.representatives,
                                   config.tpgr_seed, config.tpgr_patterns,
                                   fault::FaultSimEngine::kParallel,
                                   config.exec};
    sim = fault::RunFaultSim(request);
    ++m.sim_invocations;
    m.step1_ms = MsSince(t0);
  }
  const std::vector<fault::StuckFault>& faults = collapsed.representatives;
  report.records.resize(faults.size());
  report.total = faults.size();
  {
    std::ostringstream os;
    os << "step1: fault-simulated " << faults.size() << " collapsed faults x "
       << config.tpgr_patterns << " patterns (" << m.step1_ms << " ms)";
    progress(os.str());
  }

  // Step 2: "potentially detected" means the faulty machine exposed an X
  // where the golden response is known; in hardware the boot value will
  // eventually mismatch, so treat as SFI.
  std::vector<std::size_t> survivors;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step2.potential_upgrade");
    for (std::size_t i = 0; i < faults.size(); ++i) {
      FaultRecord& rec = report.records[i];
      rec.fault = faults[i];
      rec.name = fault::FaultName(sys.nl, faults[i]);
      if (sim.status[i] == fault::FaultStatus::kDetected) {
        rec.cls = FaultClass::kSfiSim;
        ++report.sfi_sim;
      } else if (sim.status[i] == fault::FaultStatus::kPotentiallyDetected) {
        rec.cls = FaultClass::kSfiPotential;
        ++report.sfi_potential;
      } else {
        survivors.push_back(i);
      }
    }
    m.step2_ms = MsSince(t0);
  }
  {
    std::ostringstream os;
    os << "step2: " << report.sfi_sim << " SFI(sim), " << report.sfi_potential
       << " SFI(potential) upgraded, " << survivors.size() << " undetected";
    progress(os.str());
  }

  // Step 3: controller-only behaviour. Faults that never change a control
  // line are CFR; the rest carry their classified Section-3 effects (and
  // their controller trace) into step 4.
  struct PendingFault {
    std::size_t index;
    analysis::ControlTrace faulty;
  };
  std::vector<PendingFault> pending;
  analysis::ControlTrace golden;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step3.controller_analysis");
    golden = analysis::ExtractControlTrace(sys, nullptr, config.trace_patterns);
    ++m.trace_extractions;
    ++m.sim_invocations;
    const analysis::LifespanTable lifespans(hls);

    for (const std::size_t i : survivors) {
      FaultRecord& rec = report.records[i];
      obs::Span fspan("step3.fault", fault_args(rec.name));
      analysis::ControlTrace faulty =
          analysis::ExtractControlTrace(sys, &faults[i], config.trace_patterns);
      ++m.trace_extractions;
      ++m.sim_invocations;
      // Prefer the steady-state window (pattern 1) for reporting; fall back
      // to the boot window, then later patterns, so CFI faults that only act
      // during boot still show their effects.
      std::vector<analysis::ControlLineEffect> effects =
          analysis::DiffPattern(sys, golden, faulty, 1);
      bool any_effect = !effects.empty();
      for (int p = 0; p < config.trace_patterns; ++p) {
        if (p == 1) continue;
        const auto diff = analysis::DiffPattern(sys, golden, faulty, p);
        if (!diff.empty()) {
          any_effect = true;
          if (effects.empty()) effects = diff;
        }
      }
      // For feedback (while-loop) systems the zero-data trace covers only
      // one control path, so a clean diff does not prove CFR; a dual run
      // observing the control lines over the full input space does.
      if (!any_effect) {
        bool is_cfr = !sys.has_feedback;
        if (sys.has_feedback) {
          analysis::GateCheckConfig cfr_cfg = config.gate_check;
          cfr_cfg.observe_control_lines = true;
          is_cfr = !analysis::GateLevelSfrCheck(sys, faults[i], cfr_cfg)
                        .difference_found;
          ++m.gate_checks;
          ++m.sim_invocations;
        }
        if (is_cfr) {
          rec.cls = FaultClass::kCfr;
          ++report.cfr;
          continue;
        }
      }

      rec.effects.clear();
      for (const analysis::ControlLineEffect& e : effects) {
        // The two HOLD strobes (and shared states) produce identical
        // effects; report each (line, state, transition) once, as the paper
        // does.
        const bool dup = std::any_of(
            rec.effects.begin(), rec.effects.end(),
            [&](const analysis::ClassifiedEffect& ce) {
              return ce.effect.line == e.line && ce.effect.state == e.state &&
                     ce.effect.golden == e.golden &&
                     ce.effect.faulty == e.faulty;
            });
        if (!dup) {
          rec.effects.push_back(analysis::ClassifyEffect(sys, lifespans, e));
        }
      }
      rec.analytic_verdict = analysis::CombineVerdicts(rec.effects);
      for (const analysis::ClassifiedEffect& ce : rec.effects) {
        if (sys.lines[ce.effect.line].kind ==
            synth::ControlLineInfo::Kind::kLoad) {
          rec.touches_load_line = true;
        }
      }
      pending.push_back(PendingFault{i, std::move(faulty)});
    }
    m.step3_ms = MsSince(t0);
  }
  {
    std::ostringstream os;
    os << "step3: " << report.cfr << " CFR, " << pending.size()
       << " CFI faults to decide (" << m.step3_ms << " ms)";
    progress(os.str());
  }

  // Step 4: sound SFR/SFI decision, under the same observation policy as
  // the integrated test. Feedback systems skip the symbolic prover: their
  // control traces are data-dependent, so replaying one trace would not
  // cover all paths.
  std::size_t symbolic_sfr = 0;
  {
    SteadyClock::time_point t0 = SteadyClock::now();
    obs::Span span("step4.sfr_decision");
    std::vector<int> strobes;  // empty = HOLD strobes
    analysis::GateCheckConfig gate_cfg = config.gate_check;
    if (config.observation == ObservationPolicy::kEveryCycle) {
      strobes.assign(plan.strobe_cycles.begin(), plan.strobe_cycles.end());
      gate_cfg.every_cycle = true;
    }
    // Every task owns exactly one FaultRecord (disjoint writes), so the
    // fan-out needs no locking; the prover state (ExprPool) is local to
    // each SymbolicSfrCheck call. Counters are reduced from the records
    // afterwards, in pending order, keeping the metrics thread-invariant.
    exec::Pool pool(config.exec);
    pool.ParallelFor(pending.size(), [&](std::size_t k) {
      PendingFault& pf = pending[k];
      FaultRecord& rec = report.records[pf.index];
      obs::Span fspan("step4.fault", fault_args(rec.name));
      if (!sys.has_feedback) {
        const analysis::SymbolicCheck sym =
            analysis::SymbolicSfrCheck(sys, golden, pf.faulty, strobes);
        if (sym.outcome == analysis::SymbolicCheck::Outcome::kEquivalent) {
          rec.cls = FaultClass::kSfr;
          rec.symbolically_proven = true;
          return;
        }
      }
      const analysis::GateCheck gate =
          analysis::GateLevelSfrCheck(sys, faults[pf.index], gate_cfg);
      rec.exhaustive = gate.exhaustive;
      rec.cls = gate.difference_found ? FaultClass::kSfiAnalysis
                                      : FaultClass::kSfr;
    });
    for (const PendingFault& pf : pending) {
      const FaultRecord& rec = report.records[pf.index];
      if (!sys.has_feedback) ++m.symbolic_checks;
      if (rec.symbolically_proven) {
        ++report.sfr;
        ++symbolic_sfr;
        continue;
      }
      ++m.gate_checks;
      ++m.sim_invocations;
      if (rec.cls == FaultClass::kSfiAnalysis) {
        ++report.sfi_analysis;
      } else {
        ++report.sfr;
      }
    }
    m.step4_ms = MsSince(t0);
  }
  {
    std::ostringstream os;
    os << "step4: " << report.sfr << " SFR (" << symbolic_sfr
       << " symbolic), " << report.sfi_analysis << " SFI(analysis) ("
       << m.step4_ms << " ms)";
    progress(os.str());
  }

  m.faults_total = report.total;
  m.sfi_sim = report.sfi_sim;
  m.sfi_potential = report.sfi_potential;
  m.sfi_analysis = report.sfi_analysis;
  m.cfr = report.cfr;
  m.sfr = report.sfr;
  m.sim_cycles = reg.CounterValue("logicsim.cycles") - cycles_before;
  m.gate_evals = reg.CounterValue("logicsim.gate_evals") - evals_before;
  m.wall_ms_total = MsSince(t_run);
  progress("classify: " + report.Summary());
  return report;
}

}  // namespace pfd::core
