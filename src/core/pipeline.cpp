#include "core/pipeline.hpp"

#include <algorithm>
#include <sstream>

namespace pfd::core {

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kSfiSim: return "SFI(sim)";
    case FaultClass::kSfiPotential: return "SFI(potential)";
    case FaultClass::kCfr: return "CFR";
    case FaultClass::kSfr: return "SFR";
    case FaultClass::kSfiAnalysis: return "SFI(analysis)";
  }
  return "?";
}

std::vector<const FaultRecord*> ClassificationReport::SfrFaults() const {
  std::vector<const FaultRecord*> out;
  for (const FaultRecord& r : records) {
    if (r.cls == FaultClass::kSfr) out.push_back(&r);
  }
  return out;
}

std::string ClassificationReport::Summary() const {
  std::ostringstream os;
  os << total << " controller faults: " << sfi_sim << " SFI(sim), "
     << sfi_potential << " SFI(potential), " << sfi_analysis
     << " SFI(analysis), " << cfr << " CFR, " << sfr << " SFR ("
     << PercentSfr() << "%)";
  return os.str();
}

ClassificationReport ClassifyControllerFaults(const synth::System& sys,
                                              const hls::HlsResult& hls,
                                              const PipelineConfig& config) {
  // Fault universe: collapsed stuck-at faults on controller gates.
  const std::vector<fault::StuckFault> all =
      fault::GenerateFaults(sys.nl, netlist::ModuleTag::kController);
  const fault::CollapsedFaults collapsed = fault::Collapse(sys.nl, all);
  const std::vector<fault::StuckFault>& faults = collapsed.representatives;

  // Step 1: integrated-system fault simulation with TPGR patterns.
  const fault::TestPlan plan =
      config.observation == ObservationPolicy::kAtHold
          ? sys.MakeTestPlan()
          : sys.MakeEveryCyclePlan();
  const fault::FaultSimResult sim = fault::RunParallelFaultSim(
      sys.nl, plan, faults, config.tpgr_seed, config.tpgr_patterns);

  ClassificationReport report;
  report.records.resize(faults.size());
  report.total = faults.size();

  const analysis::ControlTrace golden =
      analysis::ExtractControlTrace(sys, nullptr, config.trace_patterns);
  const analysis::LifespanTable lifespans(hls);

  for (std::size_t i = 0; i < faults.size(); ++i) {
    FaultRecord& rec = report.records[i];
    rec.fault = faults[i];
    rec.name = fault::FaultName(sys.nl, faults[i]);

    if (sim.status[i] == fault::FaultStatus::kDetected) {
      rec.cls = FaultClass::kSfiSim;
      ++report.sfi_sim;
      continue;
    }
    // Step 2: "potentially detected" means the faulty machine exposed an X
    // where the golden response is known; in hardware the boot value will
    // eventually mismatch, so treat as SFI.
    if (sim.status[i] == fault::FaultStatus::kPotentiallyDetected) {
      rec.cls = FaultClass::kSfiPotential;
      ++report.sfi_potential;
      continue;
    }

    // Step 3: controller-only behaviour.
    const analysis::ControlTrace faulty =
        analysis::ExtractControlTrace(sys, &faults[i], config.trace_patterns);
    // Prefer the steady-state window (pattern 1) for reporting; fall back to
    // the boot window, then later patterns, so CFI faults that only act
    // during boot still show their effects.
    std::vector<analysis::ControlLineEffect> effects =
        analysis::DiffPattern(sys, golden, faulty, 1);
    bool any_effect = !effects.empty();
    for (int p = 0; p < config.trace_patterns; ++p) {
      if (p == 1) continue;
      const auto diff = analysis::DiffPattern(sys, golden, faulty, p);
      if (!diff.empty()) {
        any_effect = true;
        if (effects.empty()) effects = diff;
      }
    }
    // For feedback (while-loop) systems the zero-data trace covers only one
    // control path, so a clean diff does not prove CFR; a dual run
    // observing the control lines over the full input space does.
    analysis::GateCheckConfig gate_cfg_base = config.gate_check;
    if (!any_effect) {
      bool is_cfr = !sys.has_feedback;
      if (sys.has_feedback) {
        analysis::GateCheckConfig cfr_cfg = gate_cfg_base;
        cfr_cfg.observe_control_lines = true;
        is_cfr = !analysis::GateLevelSfrCheck(sys, faults[i], cfr_cfg)
                      .difference_found;
      }
      if (is_cfr) {
        rec.cls = FaultClass::kCfr;
        ++report.cfr;
        continue;
      }
    }

    rec.effects.clear();
    for (const analysis::ControlLineEffect& e : effects) {
      // The two HOLD strobes (and shared states) produce identical effects;
      // report each (line, state, transition) once, as the paper does.
      const bool dup = std::any_of(
          rec.effects.begin(), rec.effects.end(),
          [&](const analysis::ClassifiedEffect& ce) {
            return ce.effect.line == e.line && ce.effect.state == e.state &&
                   ce.effect.golden == e.golden && ce.effect.faulty == e.faulty;
          });
      if (!dup) {
        rec.effects.push_back(analysis::ClassifyEffect(sys, lifespans, e));
      }
    }
    rec.analytic_verdict = analysis::CombineVerdicts(rec.effects);
    for (const analysis::ClassifiedEffect& ce : rec.effects) {
      if (sys.lines[ce.effect.line].kind ==
          synth::ControlLineInfo::Kind::kLoad) {
        rec.touches_load_line = true;
      }
    }

    // Step 4: sound SFR/SFI decision, under the same observation policy as
    // the integrated test. Feedback systems skip the symbolic prover: their
    // control traces are data-dependent, so replaying one trace would not
    // cover all paths.
    std::vector<int> strobes;  // empty = HOLD strobes
    analysis::GateCheckConfig gate_cfg = gate_cfg_base;
    if (config.observation == ObservationPolicy::kEveryCycle) {
      strobes.assign(plan.strobe_cycles.begin(), plan.strobe_cycles.end());
      gate_cfg.every_cycle = true;
    }
    if (!sys.has_feedback) {
      const analysis::SymbolicCheck sym =
          analysis::SymbolicSfrCheck(sys, golden, faulty, strobes);
      if (sym.outcome == analysis::SymbolicCheck::Outcome::kEquivalent) {
        rec.cls = FaultClass::kSfr;
        rec.symbolically_proven = true;
        ++report.sfr;
        continue;
      }
    }
    const analysis::GateCheck gate =
        analysis::GateLevelSfrCheck(sys, faults[i], gate_cfg);
    rec.exhaustive = gate.exhaustive;
    if (gate.difference_found) {
      rec.cls = FaultClass::kSfiAnalysis;
      ++report.sfi_analysis;
    } else {
      rec.cls = FaultClass::kSfr;
      ++report.sfr;
    }
  }
  return report;
}

}  // namespace pfd::core
