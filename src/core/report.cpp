#include "core/report.hpp"

#include <sstream>

#include "base/text_table.hpp"

namespace pfd::core {

std::string EffectsSummary(const FaultRecord& record) {
  std::string out;
  int n = 0;
  for (const analysis::ClassifiedEffect& ce : record.effects) {
    if (!out.empty()) out += "; ";
    out += std::to_string(++n) + ". " + ce.description;
  }
  return out.empty() ? "-" : out;
}

namespace {

TextTable MakeClassificationTable(const ClassificationReport& report,
                                  bool sfr_only) {
  TextTable t({"fault", "class", "provenance", "effects"});
  for (const FaultRecord& r : report.records) {
    if (sfr_only && r.cls != FaultClass::kSfr) continue;
    std::string provenance = "-";
    if (r.cls == FaultClass::kSfr) {
      provenance = r.symbolically_proven ? "symbolic proof"
                   : r.exhaustive        ? "exhaustive sweep"
                                         : "sampled sweep";
    } else if (r.cls == FaultClass::kSfiAnalysis) {
      provenance = r.exhaustive ? "exhaustive sweep" : "sampled sweep";
    }
    t.AddRow({r.name, FaultClassName(r.cls), provenance, EffectsSummary(r)});
  }
  return t;
}

}  // namespace

std::string ClassificationCsv(const ClassificationReport& report) {
  return MakeClassificationTable(report, false).ToCsv();
}

std::string ClassificationTable(const ClassificationReport& report,
                                bool sfr_only) {
  return MakeClassificationTable(report, sfr_only).ToString();
}

namespace {

TextTable MakeGradingTable(const PowerGradeReport& report) {
  TextTable t({"#", "group", "fault", "power uW", "change", "detected"});
  int idx = 0;
  for (const GradedFault* gf : report.Figure7Order()) {
    t.AddRow({std::to_string(++idx),
              gf->record->touches_load_line ? "load" : "select",
              gf->record->name, TextTable::FormatDouble(gf->power_uw, 2),
              TextTable::FormatPercent(gf->percent_change),
              gf->outside_band ? "yes" : "no"});
  }
  return t;
}

}  // namespace

std::string GradingCsv(const PowerGradeReport& report) {
  return MakeGradingTable(report).ToCsv();
}

std::string GradingTable(const PowerGradeReport& report) {
  return MakeGradingTable(report).ToString();
}

std::string SummaryLine(const std::string& design,
                        const ClassificationReport& report) {
  std::ostringstream os;
  os << design << ": " << report.Summary();
  return os.str();
}

}  // namespace pfd::core
