#include "core/report.hpp"

#include <cstdio>
#include <sstream>

#include "base/text_table.hpp"
#include "obs/trace.hpp"

namespace pfd::core {

std::string EffectsSummary(const FaultRecord& record) {
  std::string out;
  int n = 0;
  for (const analysis::ClassifiedEffect& ce : record.effects) {
    if (!out.empty()) out += "; ";
    out += std::to_string(++n) + ". " + ce.description;
  }
  return out.empty() ? "-" : out;
}

namespace {

TextTable MakeClassificationTable(const ClassificationReport& report,
                                  bool sfr_only) {
  TextTable t({"fault", "class", "provenance", "effects"});
  for (const FaultRecord& r : report.records) {
    if (sfr_only && r.cls != FaultClass::kSfr) continue;
    std::string provenance = "-";
    if (r.cls == FaultClass::kSfr) {
      provenance = r.symbolically_proven ? "symbolic proof"
                   : r.exhaustive        ? "exhaustive sweep"
                                         : "sampled sweep";
    } else if (r.cls == FaultClass::kSfiAnalysis) {
      provenance = r.exhaustive ? "exhaustive sweep" : "sampled sweep";
    }
    t.AddRow({r.name, FaultClassName(r.cls), provenance, EffectsSummary(r)});
  }
  return t;
}

}  // namespace

std::string ClassificationCsv(const ClassificationReport& report) {
  return MakeClassificationTable(report, false).ToCsv();
}

std::string ClassificationTable(const ClassificationReport& report,
                                bool sfr_only) {
  return MakeClassificationTable(report, sfr_only).ToString();
}

namespace {

TextTable MakeGradingTable(const PowerGradeReport& report) {
  TextTable t({"#", "group", "fault", "power uW", "change", "detected"});
  int idx = 0;
  for (const GradedFault* gf : report.Figure7Order()) {
    t.AddRow({std::to_string(++idx),
              gf->record->touches_load_line ? "load" : "select",
              gf->record->name, TextTable::FormatDouble(gf->power_uw, 2),
              TextTable::FormatPercent(gf->percent_change),
              gf->outside_band ? "yes" : "no"});
  }
  return t;
}

}  // namespace

std::string GradingCsv(const PowerGradeReport& report) {
  return MakeGradingTable(report).ToCsv();
}

std::string GradingTable(const PowerGradeReport& report) {
  return MakeGradingTable(report).ToString();
}

std::string SummaryLine(const std::string& design,
                        const ClassificationReport& report) {
  std::ostringstream os;
  os << design << ": " << report.Summary();
  return os.str();
}

std::string MetricsTable(const PipelineMetrics& m) {
  TextTable t({"stage", "wall ms", "notes"});
  const auto ms = [](double v) { return TextTable::FormatDouble(v, 2); };
  t.AddRow({"step1 integrated fault sim", ms(m.step1_ms),
            std::to_string(m.faults_total) + " faults x " +
                std::to_string(m.tpgr_patterns) + " patterns"});
  t.AddRow({"step2 potential upgrade", ms(m.step2_ms),
            std::to_string(m.sfi_sim) + " SFI(sim), " +
                std::to_string(m.sfi_potential) + " SFI(potential)"});
  t.AddRow({"step3 controller analysis", ms(m.step3_ms),
            std::to_string(m.cfr) + " CFR, " +
                std::to_string(m.trace_extractions) + " trace extractions"});
  t.AddRow({"step4 SFR decision", ms(m.step4_ms),
            std::to_string(m.sfr) + " SFR, " +
                std::to_string(m.symbolic_checks) + " symbolic + " +
                std::to_string(m.gate_checks) + " gate checks"});
  t.AddRow({"total", ms(m.wall_ms_total),
            std::to_string(m.sim_invocations) + " sim invocations"});
  return t.ToString();
}

namespace {

void AppendJsonKv(std::string& out, const char* key, std::uint64_t v,
                  bool comma = true) {
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ",";
}

std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string HistogramTable() {
  const std::vector<obs::HistogramSnapshot> hists =
      obs::Registry::Global().HistogramSnapshots();
  bool any = false;
  TextTable t({"histogram", "count", "p50", "p90", "p99", "max", "mean"});
  for (const obs::HistogramSnapshot& h : hists) {
    if (h.count == 0) continue;
    any = true;
    t.AddRow({h.name, std::to_string(h.count), std::to_string(h.Quantile(0.5)),
              std::to_string(h.Quantile(0.9)), std::to_string(h.Quantile(0.99)),
              std::to_string(h.max), TextTable::FormatDouble(h.Mean(), 1)});
  }
  return any ? t.ToString() : std::string();
}

std::string MetricsJson(const ClassificationReport& report) {
  return MetricsJson(report.metrics);
}

std::string MetricsJson(const PipelineMetrics& m) {
  std::string out = "{\n";
  AppendJsonKv(out, "total_faults", m.faults_total, false);
  out += ",\n\"classes\":{";
  AppendJsonKv(out, "SFI(sim)", m.sfi_sim);
  AppendJsonKv(out, "SFI(potential)", m.sfi_potential);
  AppendJsonKv(out, "SFI(analysis)", m.sfi_analysis);
  AppendJsonKv(out, "CFR", m.cfr);
  AppendJsonKv(out, "SFR", m.sfr, false);
  out += "},\n\"wall_ms\":{";
  out += "\"step1\":" + JsonDouble(m.step1_ms) + ",";
  out += "\"step2\":" + JsonDouble(m.step2_ms) + ",";
  out += "\"step3\":" + JsonDouble(m.step3_ms) + ",";
  out += "\"step4\":" + JsonDouble(m.step4_ms) + ",";
  out += "\"total\":" + JsonDouble(m.wall_ms_total);
  out += "},\n\"engine\":{";
  AppendJsonKv(out, "tpgr_patterns",
               static_cast<std::uint64_t>(m.tpgr_patterns));
  AppendJsonKv(out, "sim_invocations", m.sim_invocations);
  AppendJsonKv(out, "trace_extractions", m.trace_extractions);
  AppendJsonKv(out, "symbolic_checks", m.symbolic_checks);
  AppendJsonKv(out, "gate_checks", m.gate_checks);
  AppendJsonKv(out, "sim_cycles", m.sim_cycles);
  AppendJsonKv(out, "gate_evals", m.gate_evals, false);
  // Registry state as seen by the rendering thread: under a per-request
  // MetricScope (pfdd service) the embedded snapshot covers only this
  // request's deltas — a served report must not leak the totals of
  // concurrent or prior requests. Unscoped CLI runs keep the process-global
  // view.
  if (const obs::MetricScope* scope = obs::CurrentScope()) {
    out += "},\n\"counters\":" +
           obs::CountersJsonObject(scope->CounterSnapshot());
    out += ",\n\"gauges\":" + obs::GaugesJsonObject(scope->GaugeSnapshot());
    out += ",\n\"histograms\":" +
           obs::HistogramsJsonObject(scope->HistogramSnapshots());
  } else {
    out += "},\n\"counters\":" + obs::CountersJsonObject();
    out += ",\n\"gauges\":" + obs::GaugesJsonObject();
    out += ",\n\"histograms\":" + obs::HistogramsJsonObject();
  }
  out += "\n}\n";
  return out;
}

}  // namespace pfd::core
