// Detection under process/environmental power variation.
//
// Section 5 of the paper names this as the second practical difficulty:
// "the threshold must be chosen large enough to accommodate normal
// variations in a core's power consumption, due to process variations when
// the chip was fabricated, environmental variations, et cetera. The smaller
// the threshold can be made in practice, the greater is the percentage of
// SFR faults that can be detected."
//
// This module quantifies that trade-off with a multiplicative Gaussian die
// model: the measured power of a die is P_measured = P_true * (1 + eps),
// eps ~ N(0, sigma). A fault whose true relative change is delta is flagged
// when |(1 + delta)(1 + eps) - 1| exceeds the threshold, giving closed-form
// per-fault detection and false-alarm probabilities.
#pragma once

#include <vector>

#include "core/grading.hpp"

namespace pfd::core {

struct VariationConfig {
  double sigma = 0.01;             // relative std-dev of die-to-die power
  double threshold_percent = 5.0;  // detection band half-width
};

struct VariationOutcome {
  const GradedFault* fault = nullptr;
  double detection_probability = 0.0;
};

struct VariationReport {
  VariationConfig config;
  // Probability that a *fault-free* die trips the band (yield loss).
  double false_alarm_probability = 0.0;
  std::vector<VariationOutcome> faults;

  // Mean detection probability over the SFR fault population.
  double ExpectedCoverage() const;
};

// Probability that a die with true relative power change `delta` (e.g.
// 0.09 for +9%) falls outside the +/-threshold band under the Gaussian die
// model.
double DetectionProbability(double delta, const VariationConfig& config);

VariationReport AnalyzeUnderVariation(const PowerGradeReport& graded,
                                      const VariationConfig& config);

// Smallest threshold (percent) keeping the false-alarm probability below
// `max_false_alarm`, by bisection on the closed form.
double MinimalThresholdForFalseAlarm(double sigma, double max_false_alarm);

}  // namespace pfd::core
