#include "core/diagnosis.hpp"

#include <algorithm>
#include <cmath>

#include "base/rng.hpp"

namespace pfd::core {

DiagnosisResult DiagnoseFromPower(const PowerGradeReport& dictionary,
                                  double measured_uw,
                                  const DiagnosisConfig& config) {
  PFD_CHECK_MSG(config.sigma > 0.0, "diagnosis needs a positive sigma");
  DiagnosisResult result;
  result.measured_uw = measured_uw;

  auto likelihood = [&](double signature_uw) {
    const double sd = config.sigma * signature_uw;
    const double z = (measured_uw - signature_uw) / sd;
    return std::exp(-0.5 * z * z) / sd;
  };

  result.ranked.push_back(
      {nullptr, dictionary.fault_free_uw,
       likelihood(dictionary.fault_free_uw)});
  for (const GradedFault& gf : dictionary.faults) {
    result.ranked.push_back({&gf, gf.power_uw, likelihood(gf.power_uw)});
  }
  double total = 0.0;
  for (const DiagnosisCandidate& c : result.ranked) total += c.probability;
  if (total > 0.0) {
    for (DiagnosisCandidate& c : result.ranked) c.probability /= total;
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
              return a.probability > b.probability;
            });
  return result;
}

ResolutionReport EvaluateDiagnosisResolution(
    const PowerGradeReport& dictionary, const DiagnosisConfig& config,
    int trials_per_fault, int k, std::uint64_t seed) {
  ResolutionReport report;
  report.trials_per_fault = trials_per_fault;
  report.k = k;
  Rng rng(seed);
  // Box-Muller for the measurement noise.
  auto gaussian = [&rng] {
    const double u1 =
        (static_cast<double>(rng.Next() >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  };

  std::size_t top1 = 0, topk = 0, total = 0;
  for (const GradedFault& truth : dictionary.faults) {
    for (int t = 0; t < trials_per_fault; ++t) {
      const double measured =
          truth.power_uw * (1.0 + config.sigma * gaussian());
      const DiagnosisResult dx =
          DiagnoseFromPower(dictionary, measured, config);
      ++total;
      for (std::size_t rank = 0;
           rank < std::min<std::size_t>(k, dx.ranked.size()); ++rank) {
        if (dx.ranked[rank].fault == &truth) {
          ++topk;
          if (rank == 0) ++top1;
          break;
        }
      }
    }
  }
  if (total > 0) {
    report.top1_accuracy = static_cast<double>(top1) / total;
    report.topk_accuracy = static_cast<double>(topk) / total;
  }
  return report;
}

}  // namespace pfd::core
