// The Section-4 "worst case" experiment: perturb the controller with as many
// control-line effects as possible while keeping the datapath computation
// intact, and measure the resulting power increase (the paper reports over
// 200% for Diffeq).
//
// The composer (a) raises every load line in every state where all of its
// registers are idle — garbage lands only in registers holding no live
// variable — and (b) flips every don't-care mux select. The perturbed
// control spec is synthesized into a second gate-level system; symbolic RTL
// equivalence of the two resolved control schedules proves the perturbation
// is functionally invisible before power is compared.
#pragma once

#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "hls/hls.hpp"
#include "synth/system.hpp"

namespace pfd::core {

struct WorstCaseResult {
  int extra_loads = 0;    // (line, state) pairs raised
  int select_flips = 0;   // (mux, state) don't-cares flipped
  bool verified_equivalent = false;
  double base_uw = 0.0;
  double perturbed_uw = 0.0;
  double percent_change = 0.0;
};

WorstCaseResult ComposeWorstCase(const synth::System& sys,
                                 const hls::HlsResult& hls,
                                 const GradeConfig& config);

}  // namespace pfd::core
