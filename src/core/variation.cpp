#include "core/variation.hpp"

#include <cmath>

namespace pfd::core {

namespace {
// Standard normal CDF.
double Phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

double DetectionProbability(double delta, const VariationConfig& config) {
  PFD_CHECK_MSG(config.sigma >= 0.0, "negative sigma");
  const double t = config.threshold_percent / 100.0;
  const double scale = 1.0 + delta;
  PFD_CHECK_MSG(scale > 0.0, "relative power change below -100%");
  // Outside the band iff (1+delta)(1+eps) > 1+t or < 1-t.
  const double hi = (1.0 + t) / scale - 1.0;
  const double lo = (1.0 - t) / scale - 1.0;
  if (config.sigma == 0.0) {
    return (0.0 > hi || 0.0 < lo) ? 1.0 : 0.0;
  }
  return (1.0 - Phi(hi / config.sigma)) + Phi(lo / config.sigma);
}

double VariationReport::ExpectedCoverage() const {
  if (faults.empty()) return 0.0;
  double sum = 0.0;
  for (const VariationOutcome& o : faults) sum += o.detection_probability;
  return sum / static_cast<double>(faults.size());
}

VariationReport AnalyzeUnderVariation(const PowerGradeReport& graded,
                                      const VariationConfig& config) {
  VariationReport report;
  report.config = config;
  report.false_alarm_probability = DetectionProbability(0.0, config);
  for (const GradedFault& gf : graded.faults) {
    report.faults.push_back(
        {&gf, DetectionProbability(gf.percent_change / 100.0, config)});
  }
  return report;
}

double MinimalThresholdForFalseAlarm(double sigma, double max_false_alarm) {
  PFD_CHECK_MSG(max_false_alarm > 0.0 && max_false_alarm < 1.0,
                "false alarm bound must be in (0,1)");
  double lo = 0.0, hi = 100.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    VariationConfig cfg{sigma, mid};
    if (DetectionProbability(0.0, cfg) > max_false_alarm) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace pfd::core
