// Power grading of SFR faults (Sections 4-6).
//
// For every SFR fault, Monte Carlo simulation estimates the average datapath
// power with the fault present; the fault is "important" — detectable by the
// proposed power-analysis test — when its percentage change from the
// fault-free baseline falls outside the tolerance band (the paper uses
// +/- 5%).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "guard/guard.hpp"
#include "power/power_model.hpp"
#include "power/power_sim.hpp"

namespace pfd::core {

struct GradeConfig {
  double threshold_percent = 5.0;
  power::TechModel tech = power::TechModel::Vsc450();
  power::MonteCarloConfig mc;
  // Optional bound checkpoint journal (pfdtool --checkpoint): the baseline
  // and every graded SFR fault append one power record, in grading order;
  // on resume the recorded estimates replay instead of re-running Monte
  // Carlo. Each record's digest covers the MC configuration, tech model,
  // plan, clock gates, and (per fault) the fault identity — but NOT the
  // threshold: percent_change/outside_band are recomputed from the stored
  // raw power, so a resume may re-grade under a different threshold.
  // Not owned; must already be bound (the classification pipeline binds it
  // before grading runs).
  ckpt::Journal* journal = nullptr;
};

struct GradedFault {
  const FaultRecord* record = nullptr;
  double power_uw = 0.0;
  double percent_change = 0.0;
  bool outside_band = false;  // |change| > threshold => power-detectable
};

struct PowerGradeReport {
  double fault_free_uw = 0.0;
  double threshold_percent = 5.0;
  std::vector<GradedFault> faults;  // graded SFR faults, input order

  // Partial-result contract. GradeSfrFaults pools one guard::Checker
  // (from GradeConfig::mc.limits) across the baseline and every per-fault
  // Monte Carlo run; on a trip the report covers the faults graded so far
  // and run_status says why the rest are missing.
  guard::RunStatus run_status;

  std::size_t DetectedCount() const;
  // Figure-7 presentation order: select-only faults first, then faults that
  // touch load lines; each group sorted by increasing power.
  std::vector<const GradedFault*> Figure7Order() const;
};

// Builds the PowerModel for a system, including its gated-clock groups.
power::PowerModel MakePowerModel(const synth::System& sys,
                                 const power::TechModel& tech);

PowerGradeReport GradeSfrFaults(const synth::System& sys,
                                const ClassificationReport& classification,
                                const GradeConfig& config);

}  // namespace pfd::core
