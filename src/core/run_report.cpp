#include "core/run_report.hpp"

#include <cstdio>
#include <ctime>
#include <thread>

#include "core/report.hpp"
#include "logicsim/golden_cache.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#if defined(__has_include)
#if __has_include(<sys/utsname.h>)
#include <sys/utsname.h>
#define PFD_HAVE_UTSNAME 1
#endif
#endif

// Build provenance is injected per-source-file from CMake
// (src/core/CMakeLists.txt) so only this translation unit recompiles when
// the git head moves; everything falls back to "unknown" for build systems
// that do not define it.
#ifndef PFD_GIT_DESCRIBE
#define PFD_GIT_DESCRIBE "unknown"
#endif
#ifndef PFD_BUILD_TYPE
#define PFD_BUILD_TYPE "unknown"
#endif
#ifndef PFD_CXX_FLAGS
#define PFD_CXX_FLAGS ""
#endif

namespace pfd::core {

namespace {

std::string Quoted(const std::string& s) {
  return "\"" + obs::JsonEscape(s) + "\"";
}

const char* CompilerId() {
#if defined(__clang__)
  return "clang";
#elif defined(__GNUC__)
  return "gcc";
#else
  return "unknown";
#endif
}

std::string CompilerVersion() {
#if defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

std::string ProvenanceJson() {
  std::string out = "{";
  out += "\"compiler\":" + Quoted(CompilerId());
  out += ",\"compiler_version\":" + Quoted(CompilerVersion());
  out += ",\"build_type\":" + Quoted(PFD_BUILD_TYPE);
  out += ",\"cxx_flags\":" + Quoted(PFD_CXX_FLAGS);
  out += ",\"git_describe\":" + Quoted(PFD_GIT_DESCRIBE);
#if defined(NDEBUG)
  out += ",\"assertions_disabled\":true";
#else
  out += ",\"assertions_disabled\":false";
#endif
  out += "}";
  return out;
}

std::string HostJson() {
  std::string os = "unknown", os_release = "unknown", arch = "unknown",
              hostname = "unknown";
#if defined(PFD_HAVE_UTSNAME)
  utsname u{};
  if (uname(&u) == 0) {
    os = u.sysname;
    os_release = u.release;
    arch = u.machine;
    hostname = u.nodename;
  }
#endif
  std::string out = "{";
  out += "\"os\":" + Quoted(os);
  out += ",\"os_release\":" + Quoted(os_release);
  out += ",\"arch\":" + Quoted(arch);
  out += ",\"hostname\":" + Quoted(hostname);
  out += ",\"hardware_concurrency\":" +
         std::to_string(std::thread::hardware_concurrency());
  out += "}";
  return out;
}

std::string RunStatusJson(const guard::RunStatus* status, int exit_code) {
  std::string out = "{";
  if (status == nullptr) {
    out += "\"code\":\"ok\",\"message\":\"\"";
    out += ",\"total_units\":0,\"completed_units\":0";
    out += ",\"failed_units\":[],\"failed_units_truncated\":false";
  } else {
    out += "\"code\":" + Quoted(guard::StatusCodeName(status->code));
    out += ",\"message\":" + Quoted(status->message);
    out += ",\"total_units\":" + std::to_string(status->total_units);
    out += ",\"completed_units\":" + std::to_string(status->completed.size());
    // Cap the listing: a pathological run could quarantine thousands of
    // units, and the report should stay a small artifact.
    constexpr std::size_t kMaxListed = 100;
    out += ",\"failed_units\":[";
    std::size_t listed = 0;
    for (const guard::FailedUnit& f : status->failed_units) {
      if (listed == kMaxListed) break;
      if (listed != 0) out += ",";
      out += "{\"index\":" + std::to_string(f.index) +
             ",\"what\":" + Quoted(f.what) + "}";
      ++listed;
    }
    out += "],\"failed_units_truncated\":";
    out += status->failed_units.size() > kMaxListed ? "true" : "false";
  }
  out += ",\"exit_code\":" + std::to_string(exit_code);
  out += "}";
  return out;
}

std::string CacheJson(const obs::MetricScope* scope) {
  // Counter reads go through the request's scope when one is attached, so
  // a served report counts its own hits/misses, not its neighbours'. The
  // entry count is the shared cache's actual size either way — the cache
  // itself is process-wide by design.
  const auto counter = [scope](std::string_view name) {
    return scope != nullptr ? scope->CounterValue(name)
                            : obs::Registry::Global().CounterValue(name);
  };
  std::string out = "{\"golden_trace\":{";
  out += "\"entries\":" +
         std::to_string(logicsim::GoldenTraceCache::Global().size());
  out += ",\"hits\":" +
         std::to_string(counter("logicsim.golden_cache.hits"));
  out += ",\"misses\":" +
         std::to_string(counter("logicsim.golden_cache.misses"));
  out += ",\"insertions\":" +
         std::to_string(counter("logicsim.golden_cache.insertions"));
  out += ",\"dropped_inserts\":" +
         std::to_string(counter("logicsim.golden_cache.dropped_inserts"));
  out += "}}";
  return out;
}

}  // namespace

const char* BuildType() { return PFD_BUILD_TYPE; }

std::pair<std::string, std::string> RequestStr(std::string key,
                                               const std::string& value) {
  return {std::move(key), Quoted(value)};
}

std::pair<std::string, std::string> RequestInt(std::string key,
                                               std::int64_t value) {
  return {std::move(key), std::to_string(value)};
}

std::pair<std::string, std::string> RequestDouble(std::string key,
                                                  double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return {std::move(key), buf};
}

std::pair<std::string, std::string> RequestBool(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false"};
}

std::string RunReportJson(const RunReportInputs& inputs) {
  std::string out = "{\n";
  out += "\"schema\":\"pfd.run_report\",\n";
  out += "\"schema_version\":" + std::to_string(kRunReportSchemaVersion) +
         ",\n";
  out += "\"generated_unix_time\":" +
         std::to_string(static_cast<long long>(std::time(nullptr))) + ",\n";
  out += "\"provenance\":" + ProvenanceJson() + ",\n";
  out += "\"host\":" + HostJson() + ",\n";
  out += "\"request\":{\"command\":" + Quoted(inputs.command);
  for (const auto& [key, value] : inputs.request) {
    out += ",\"" + obs::JsonEscape(key) + "\":" + value;
  }
  out += "},\n";
  out += "\"run_status\":" + RunStatusJson(inputs.run_status,
                                           inputs.exit_code) + ",\n";
  if (inputs.metrics != nullptr) {
    std::string metrics = MetricsJson(*inputs.metrics);
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    out += "\"metrics\":" + metrics + ",\n";
  } else {
    out += "\"metrics\":null,\n";
  }
  if (inputs.checkpoint != nullptr) {
    out += "\"checkpoint\":{\"path\":" + Quoted(inputs.checkpoint->path);
    out += ",\"records_written\":" +
           std::to_string(inputs.checkpoint->records_written);
    out += ",\"records_replayed\":" +
           std::to_string(inputs.checkpoint->records_replayed);
    out += ",\"torn_tail_truncations\":" +
           std::to_string(inputs.checkpoint->torn_tail_truncations);
    out += "},\n";
  } else {
    out += "\"checkpoint\":null,\n";
  }
  out += "\"cache\":" + CacheJson(inputs.scope) + ",\n";
  if (inputs.scope != nullptr) {
    out += "\"counters\":" +
           obs::CountersJsonObject(inputs.scope->CounterSnapshot()) + ",\n";
    out += "\"gauges\":" +
           obs::GaugesJsonObject(inputs.scope->GaugeSnapshot()) + ",\n";
    out += "\"histograms\":" +
           obs::HistogramsJsonObject(inputs.scope->HistogramSnapshots()) +
           ",\n";
  } else {
    out += "\"counters\":" + obs::CountersJsonObject() + ",\n";
    out += "\"gauges\":" + obs::GaugesJsonObject() + ",\n";
    out += "\"histograms\":" + obs::HistogramsJsonObject() + ",\n";
  }
  const obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  out += "\"flight_recorder\":{\"enabled\":";
  out += flight.enabled() ? "true" : "false";
  out += ",\"total_recorded\":" + std::to_string(flight.total_recorded());
  out += "}\n}\n";
  return out;
}

bool WriteRunReportFile(const RunReportInputs& inputs,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = RunReportJson(inputs);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  if (written != body.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

}  // namespace pfd::core
