// Power-signature fault diagnosis.
//
// The paper ends at detection ("the fault is important if it causes a
// percentage change bigger than the threshold"); the natural next step a
// production flow wants is *diagnosis*: given the measured power of a
// failing die, which SFR fault is the likely culprit? Every graded fault
// already has a Monte Carlo power signature, so a dictionary lookup under a
// Gaussian measurement-noise model ranks the candidates.
#pragma once

#include <vector>

#include "core/grading.hpp"

namespace pfd::core {

struct DiagnosisConfig {
  // Relative std-dev of a power measurement (die variation + tester noise).
  double sigma = 0.01;
};

struct DiagnosisCandidate {
  // nullptr represents the fault-free hypothesis.
  const GradedFault* fault = nullptr;
  double signature_uw = 0.0;
  // Posterior probability under a uniform prior over the dictionary.
  double probability = 0.0;
};

struct DiagnosisResult {
  double measured_uw = 0.0;
  // Sorted by decreasing probability; includes the fault-free hypothesis.
  std::vector<DiagnosisCandidate> ranked;

  const DiagnosisCandidate& best() const { return ranked.front(); }
};

// Ranks the dictionary entries (fault-free + every graded SFR fault) by the
// Gaussian likelihood of the measurement.
DiagnosisResult DiagnoseFromPower(const PowerGradeReport& dictionary,
                                  double measured_uw,
                                  const DiagnosisConfig& config);

// Resolution study: for each dictionary entry, simulate noisy measurements
// and record how often the entry is ranked first / in the top k.
struct ResolutionReport {
  int trials_per_fault = 0;
  double top1_accuracy = 0.0;
  double topk_accuracy = 0.0;
  int k = 3;
};

ResolutionReport EvaluateDiagnosisResolution(
    const PowerGradeReport& dictionary, const DiagnosisConfig& config,
    int trials_per_fault, int k, std::uint64_t seed);

}  // namespace pfd::core
