// Report rendering: classification and power-grading results as aligned
// text tables, CSV (for plotting), and Markdown (for docs). Benches and
// examples share these so every artefact prints consistently.
#pragma once

#include <string>

#include "core/grading.hpp"
#include "core/pipeline.hpp"

namespace pfd::core {

// One row per fault: name, class, effects, provenance flags.
std::string ClassificationCsv(const ClassificationReport& report);
std::string ClassificationTable(const ClassificationReport& report,
                                bool sfr_only = false);

// One row per SFR fault: power, percentage change, detection verdict.
std::string GradingCsv(const PowerGradeReport& report);
// Figure-7-ordered table (select-only group first).
std::string GradingTable(const PowerGradeReport& report);

// Per-design one-line summary row used by Table-2-style outputs.
std::string SummaryLine(const std::string& design,
                        const ClassificationReport& report);

// Per-stage wall times and engine counts of one pipeline run, as an aligned
// text table (pfdtool -v) ...
std::string MetricsTable(const PipelineMetrics& metrics);
// ... plus the registry's non-empty histograms (p50/p90/p99/max/mean) as a
// second table; empty string when nothing was recorded.
std::string HistogramTable();
// ... and as a JSON object (pfdtool --metrics-json): per-class fault
// counts, stage wall times, engine invocation counts, plus a snapshot of
// the obs::Registry counters, gauges, and histograms (empty when the
// registry is disabled).
std::string MetricsJson(const ClassificationReport& report);
std::string MetricsJson(const PipelineMetrics& metrics);

// Joins a record's effect descriptions ("1. ...; 2. ...").
std::string EffectsSummary(const FaultRecord& record);

}  // namespace pfd::core
