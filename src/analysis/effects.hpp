// Section-3 analytic classification of control-line effects.
//
// Implements the paper's rules over variable lifespans (Figure 5):
//   * select-line change while the mux is inactive (a don't-care step)  -> SFR
//   * select-line change while the mux is active (a care step)          -> SFI
//   * extra register load while the register is idle                    -> SFR
//   * extra register load within a variable's lifespan -> potentially
//     disruptive: whether it actually disrupts depends on the value routed
//     to the register (Section 3.2's "two possibilities"), which the
//     symbolic/exhaustive deciders in classify.hpp resolve;
//   * skipped load -> SFI (a crucial result is never written).
//
// The analytic verdict is used for reporting (Table 1's "control line
// effects" column) and as a cross-check: effects classified locally-SFR must
// agree with the sound deciders (tests/analysis enforces this).
#pragma once

#include <string>
#include <vector>

#include "analysis/trace.hpp"
#include "hls/hls.hpp"
#include "synth/system.hpp"

namespace pfd::analysis {

// Variable-lifespan queries against the HLS binding.
class LifespanTable {
 public:
  explicit LifespanTable(const hls::HlsResult& hls);

  // Would an extra load of register `reg` at the end of control step
  // `state` overwrite a variable that is still needed? (RESET == state 0,
  // CS_s == state s; HOLD and later count as after the last step.)
  bool LiveAcross(std::uint32_t reg, int state) const;

  // The variable occupying the register across that boundary, if any.
  const hls::Variable* OccupantAcross(std::uint32_t reg, int state) const;

 private:
  const hls::HlsResult* hls_;
  int hold_state_;
};

enum class EffectCategory : std::uint8_t {
  kSelectDontCare,      // locally redundant -> SFR
  kSelectCare,          // SFI (barring datapath redundancy)
  kExtraLoadIdle,       // locally redundant -> SFR
  kExtraLoadInLifespan, // potentially disruptive -> needs value analysis
  kSkippedLoad,         // SFI
  kLineUnknown,         // X on a control line -> escalate
};

const char* EffectCategoryName(EffectCategory c);

// Local (first-order) verdict implied by a category.
enum class LocalVerdict : std::uint8_t { kSfr, kSfi, kNeedsValueAnalysis };
LocalVerdict VerdictOf(EffectCategory c);

struct ClassifiedEffect {
  ControlLineEffect effect;
  EffectCategory category;
  std::string description;  // DescribeEffect output
};

ClassifiedEffect ClassifyEffect(const synth::System& sys,
                                const LifespanTable& lifespans,
                                const ControlLineEffect& effect);

std::vector<ClassifiedEffect> ClassifyEffects(
    const synth::System& sys, const hls::HlsResult& hls,
    const std::vector<ControlLineEffect>& effects);

// Combines the local verdicts of all of a fault's effects (Section 3.3):
// any SFI effect makes the fault SFI; all-SFR effects make it SFR; anything
// else needs value analysis.
LocalVerdict CombineVerdicts(const std::vector<ClassifiedEffect>& effects);

}  // namespace pfd::analysis
