#include "analysis/classify.hpp"

#include <optional>

#include "base/rng.hpp"
#include "logicsim/simulator.hpp"
#include "rtl/expr.hpp"
#include "rtl/machine.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::analysis {

namespace {

// Builds the per-register control word a trace row implies; nullopt if any
// needed line is X.
std::optional<rtl::ControlWord> WordFromRow(const synth::System& sys,
                                            const std::vector<Trit>& row) {
  rtl::ControlWord cw;
  std::vector<std::uint8_t> line_loads(sys.load_map.NumLines(), 0);
  cw.select.assign(sys.datapath.muxes().size(), 0);
  for (std::size_t li = 0; li < sys.lines.size(); ++li) {
    const Trit t = row[li];
    if (t == Trit::kX) return std::nullopt;
    const synth::ControlLineInfo& info = sys.lines[li];
    if (info.kind == synth::ControlLineInfo::Kind::kLoad) {
      line_loads[info.index] = t == Trit::kOne ? 1 : 0;
    } else if (t == Trit::kOne) {
      cw.select[info.index] |= 1u << info.bit;
    }
  }
  cw.load = sys.load_map.ExpandLoads(line_loads, sys.datapath.regs().size());
  return cw;
}

bool ContainsInit(const rtl::ExprPool& pool, rtl::ExprRef root,
                  std::vector<std::uint8_t>& memo) {
  if (memo[root] != 0) return memo[root] == 2;
  const rtl::ExprPool::Node& n = pool.node(root);
  bool has = n.op == rtl::ExprPool::Op::kInit;
  if (!has && n.op != rtl::ExprPool::Op::kVar &&
      n.op != rtl::ExprPool::Op::kConst) {
    has = ContainsInit(pool, n.a, memo) || ContainsInit(pool, n.b, memo);
  }
  memo[root] = has ? 2 : 1;
  return has;
}

enum class WindowOutcome { kEqual, kDifferent, kInconclusive };

WindowOutcome CheckWindow(const synth::System& sys,
                          const ControlTrace& golden,
                          const ControlTrace& faulty, int pattern,
                          bool skip_boot_cycle,
                          const std::vector<int>& strobes,
                          std::string* detail) {
  rtl::ExprPool pool;
  rtl::SymbolicMachine gm(sys.datapath, rtl::SymbolicDomain{&pool});
  rtl::SymbolicMachine fm(sys.datapath, rtl::SymbolicDomain{&pool});
  for (std::uint32_t i = 0; i < sys.datapath.inputs().size(); ++i) {
    const rtl::ExprRef var = pool.Var(i, sys.datapath.inputs()[i].width);
    gm.SetInput(i, var);
    fm.SetInput(i, var);
  }
  const int cpp = sys.cycles_per_pattern;
  for (int c = skip_boot_cycle ? 1 : 0; c < cpp; ++c) {
    const auto wg =
        WordFromRow(sys, golden.lines[pattern * cpp + c]);
    const auto wf =
        WordFromRow(sys, faulty.lines[pattern * cpp + c]);
    if (!wg || !wf) {
      if (detail) *detail = "X control line in cycle " + std::to_string(c);
      return WindowOutcome::kInconclusive;
    }
    gm.Step(*wg);
    fm.Step(*wf);
    if (std::find(strobes.begin(), strobes.end(), c) == strobes.end()) {
      continue;
    }
    for (std::uint32_t o = 0; o < sys.datapath.outputs().size(); ++o) {
      const rtl::ExprRef eg = gm.Output(o);
      const rtl::ExprRef ef = fm.Output(o);
      std::vector<std::uint8_t> memo(pool.size(), 0);
      if (ContainsInit(pool, eg, memo)) {
        if (detail) {
          *detail = "golden output depends on a boot value: " +
                    pool.ToString(eg);
        }
        return WindowOutcome::kInconclusive;
      }
      if (eg != ef) {
        if (detail) {
          *detail = sys.datapath.outputs()[o].name + " @cycle " +
                    std::to_string(c) + ": " + pool.ToString(eg) +
                    " vs " + pool.ToString(ef);
        }
        return WindowOutcome::kDifferent;
      }
    }
  }
  return WindowOutcome::kEqual;
}

}  // namespace

SymbolicCheck SymbolicSfrCheck(const synth::System& sys,
                               const ControlTrace& golden,
                               const ControlTrace& faulty,
                               const std::vector<int>& strobe_cycles) {
  PFD_CHECK_MSG(golden.num_patterns >= 3 && faulty.num_patterns >= 3,
                "symbolic check needs >= 3 trace patterns");
  PFD_CHECK_MSG(!sys.has_feedback,
                "symbolic trace replay is unsound for feedback systems");
  const std::vector<int>& strobes =
      strobe_cycles.empty() ? sys.hold_cycles : strobe_cycles;
  SymbolicCheck result;
  // Steady-state periodicity: pattern 1 must equal pattern 2, otherwise one
  // window does not represent the infinite run.
  if (!PatternsEqual(faulty, 1, 2)) {
    result.outcome = SymbolicCheck::Outcome::kInconclusive;
    result.detail = "faulty control trace not periodic";
    return result;
  }
  // Window A: first pattern (boot regime, boot cycle skipped).
  // Window B: steady-state pattern.
  for (const auto& [pattern, skip_boot] :
       std::initializer_list<std::pair<int, bool>>{{0, true}, {1, false}}) {
    std::string detail;
    switch (
        CheckWindow(sys, golden, faulty, pattern, skip_boot, strobes,
                    &detail)) {
      case WindowOutcome::kEqual:
        break;
      case WindowOutcome::kDifferent:
        result.outcome = SymbolicCheck::Outcome::kDifferent;
        result.detail = detail;
        return result;
      case WindowOutcome::kInconclusive:
        result.outcome = SymbolicCheck::Outcome::kInconclusive;
        result.detail = detail;
        return result;
    }
  }
  result.outcome = SymbolicCheck::Outcome::kEquivalent;
  return result;
}

GateCheck GateLevelSfrCheck(const synth::System& sys,
                            const fault::StuckFault& f,
                            const GateCheckConfig& config) {
  int total_bits = 0;
  for (const synth::Bus& bus : sys.operand_bits) {
    total_bits += static_cast<int>(bus.size());
  }
  GateCheck out;
  out.exhaustive = total_bits <= config.max_exhaustive_bits;
  const std::uint64_t total = out.exhaustive
                                  ? (1ULL << total_bits)
                                  : static_cast<std::uint64_t>(
                                        config.sample_patterns);

  logicsim::Simulator golden(sys.nl);
  logicsim::Simulator faulty(sys.nl);
  fault::InjectFault(faulty, f);
  Rng rng(config.seed);

  std::vector<netlist::GateId> observed_nets;
  if (config.observe_control_lines) {
    observed_nets = sys.line_nets;
  } else {
    for (const synth::Bus& bus : sys.output_nets) {
      observed_nets.insert(observed_nets.end(), bus.begin(), bus.end());
    }
  }

  const std::size_t n_ops = sys.operand_bits.size();
  std::vector<std::vector<std::uint32_t>> lane_values(
      n_ops, std::vector<std::uint32_t>(64));

  for (std::uint64_t base = 0; base < total; base += 64) {
    for (int lane = 0; lane < 64; ++lane) {
      std::uint64_t combo;
      if (out.exhaustive) {
        combo = std::min<std::uint64_t>(base + lane, total - 1);
      } else {
        combo = rng.Next();
      }
      int offset = 0;
      for (std::size_t op = 0; op < n_ops; ++op) {
        const int w = static_cast<int>(sys.operand_bits[op].size());
        lane_values[op][lane] =
            static_cast<std::uint32_t>((combo >> offset) & ((1ULL << w) - 1));
        offset += w;
      }
    }
    for (std::size_t op = 0; op < n_ops; ++op) {
      for (std::size_t b = 0; b < sys.operand_bits[op].size(); ++b) {
        const Word3 w = tpg::PackBit(lane_values[op], static_cast<int>(b));
        golden.SetInput(sys.operand_bits[op][b], w);
        faulty.SetInput(sys.operand_bits[op][b], w);
      }
    }
    for (int c = 0; c < sys.cycles_per_pattern; ++c) {
      const Trit r = c == 0 ? Trit::kOne : Trit::kZero;
      golden.SetInputAllLanes(sys.reset, r);
      faulty.SetInputAllLanes(sys.reset, r);
      golden.Step();
      faulty.Step();
      const bool strobed =
          config.every_cycle || config.observe_control_lines
              ? c > 0
              : std::find(sys.hold_cycles.begin(), sys.hold_cycles.end(),
                          c) != sys.hold_cycles.end();
      if (!strobed) continue;
      for (netlist::GateId g : observed_nets) {
        const Word3 wg = golden.Value(g);
        const Word3 wf = faulty.Value(g);
        // Hard mismatch, or known-golden vs X-faulty ("potentially
        // detected" upgraded, per the paper's step 2).
        const std::uint64_t diff =
            (wg.known & wf.known & (wg.val ^ wf.val)) |
            (wg.known & ~wf.known);
        if (diff != 0) {
          out.difference_found = true;
          out.patterns = base + 64;
          return out;
        }
      }
    }
    out.patterns = base + 64;
  }
  return out;
}

}  // namespace pfd::analysis
