// Control-line trace extraction and comparison.
//
// A CFI fault "affects one or more control lines in one or more time steps"
// (Section 3). We obtain those control-line effects by simulating the
// gate-level system with and without the fault and recording the controller
// output lines every cycle.
//
// Traces span multiple consecutive test patterns because the first pattern
// starts from the all-X boot state while later patterns start from the HOLD
// state; a fault can behave differently in the two regimes. The steady-state
// window (pattern 2) is what the analytic and symbolic passes consume;
// periodicity of windows 2 and 3 is checked so that one window provably
// represents all later patterns.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/logic.hpp"
#include "fault/fault.hpp"
#include "synth/system.hpp"

namespace pfd::analysis {

struct ControlTrace {
  int cycles_per_pattern = 0;
  int num_patterns = 0;
  // [cycle][line]; cycle indexes the concatenated patterns.
  std::vector<std::vector<Trit>> lines;

  int TotalCycles() const { return cycles_per_pattern * num_patterns; }
  Trit At(int pattern, int cycle_in_pattern, std::size_t line) const {
    return lines[pattern * cycles_per_pattern + cycle_in_pattern][line];
  }
};

// Simulates `num_patterns` schedules (data inputs held at zero — the
// controller has no datapath feedback in this architecture) and records the
// control lines. `fault` may be null for the golden trace.
ControlTrace ExtractControlTrace(const synth::System& sys,
                                 const fault::StuckFault* fault,
                                 int num_patterns);

// True if patterns `p` and `q` of the trace are identical.
bool PatternsEqual(const ControlTrace& trace, int p, int q);

// True if any control line is X in the given pattern, ignoring the boot
// cycle of pattern 0 (where X is expected).
bool PatternHasUnknown(const ControlTrace& trace, int pattern);

// One control-line effect: a cycle+line where the faulty controller's output
// differs from the golden one (Section 3's unit of analysis).
struct ControlLineEffect {
  int cycle_in_pattern = 0;
  int state = -1;  // golden control state occupied during that cycle
  std::uint32_t line = 0;
  Trit golden = Trit::kX;
  Trit faulty = Trit::kX;
};

// Effects within one pattern window (golden-X cycles are skipped; a faulty X
// against a known golden value is reported as an effect with faulty == kX).
std::vector<ControlLineEffect> DiffPattern(const synth::System& sys,
                                           const ControlTrace& golden,
                                           const ControlTrace& faulty,
                                           int pattern);

// Paper-style description, e.g. "REG3: extra load in CS5" or
// "MS3 changes in HOLD".
std::string DescribeEffect(const synth::System& sys,
                           const ControlLineEffect& e);

}  // namespace pfd::analysis
