// Sound SFR/SFI deciders.
//
// 1. SymbolicSfrCheck — replays the golden and faulty control traces on the
//    symbolic RTL machine (hash-consed expressions, commutative
//    normalisation, constant folding). If the datapath output expressions
//    match at every observation strobe, the fault provably cannot change the
//    system's I/O behaviour for any data: it is SFR. Structural inequality
//    is NOT proof of SFI, so that outcome is "inconclusive-different".
//
//    Soundness with respect to boot effects: both machines start each
//    analysis window from opaque per-register boot values; if the golden
//    outputs depend on no boot value (true for any correctly synthesized
//    design) and the expressions match, whatever garbage the boot cycle or
//    the previous pattern left in the registers cannot make the real
//    machines differ.
//
// 2. GateLevelSfrCheck — lock-step gate-level simulation of the golden and
//    faulty machines over the full input space (exhaustive for small widths:
//    4-bit datapaths have <= ~2^20 input combinations) or a random sample.
//    This is the ground truth the tests validate everything against, and the
//    pipeline's fallback when the symbolic check is inconclusive.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/trace.hpp"
#include "fault/fault.hpp"
#include "synth/system.hpp"

namespace pfd::analysis {

struct SymbolicCheck {
  enum class Outcome : std::uint8_t {
    kEquivalent,    // proven SFR
    kDifferent,     // expressions differ -> decide at gate level
    kInconclusive,  // X control lines / boot dependence -> gate level
  };
  Outcome outcome = Outcome::kInconclusive;
  std::string detail;
};

// `golden` and `faulty` must hold >= 3 patterns (pattern 0 covers the boot
// regime; patterns 1 and 2 establish steady-state periodicity).
// `strobe_cycles` selects the observation points within a pattern; empty
// means the system's HOLD strobes. Strobing cycles where an output is not
// yet written makes the check inconclusive (the output still reflects a
// boot value), which conservatively falls through to the gate-level
// decider.
SymbolicCheck SymbolicSfrCheck(const synth::System& sys,
                               const ControlTrace& golden,
                               const ControlTrace& faulty,
                               const std::vector<int>& strobe_cycles = {});

struct GateCheck {
  bool difference_found = false;
  bool exhaustive = false;    // full input space enumerated
  std::uint64_t patterns = 0;
};

struct GateCheckConfig {
  int max_exhaustive_bits = 20;  // enumerate if total input bits <= this
  int sample_patterns = 16384;   // otherwise random patterns
  std::uint64_t seed = 0xBADC0DEULL;
  // Compare every post-boot cycle instead of only the HOLD strobes
  // (kEveryCycle observation policy).
  bool every_cycle = false;
  // Observe the controller output lines instead of the datapath outputs
  // (every cycle): a dual-run CFR check that stays sound even when the
  // controller's behaviour depends on datapath feedback.
  bool observe_control_lines = false;
};

GateCheck GateLevelSfrCheck(const synth::System& sys,
                            const fault::StuckFault& f,
                            const GateCheckConfig& config);

}  // namespace pfd::analysis
