#include "analysis/trace.hpp"

#include <memory>
#include <sstream>

#include "fault/fault_sim.hpp"
#include "logicsim/golden_cache.hpp"
#include "logicsim/simulator.hpp"

namespace pfd::analysis {

namespace {

// Cache key for the fault-free ("golden") control trace: the netlist hash
// plus a digest of everything else that shapes the run — the reset
// protocol, the zero-held operand inputs, the observed nets, and the
// pattern count. Faulty traces are not cached (one fresh key per fault
// would only churn the cache).
logicsim::GoldenKey GoldenControlTraceKey(const synth::System& sys,
                                          int num_patterns) {
  logicsim::Fnv1a h;
  h.AddBytes("ctrl_trace", 10);  // consumer domain tag
  h.Add(static_cast<std::uint64_t>(sys.reset));
  h.Add(static_cast<std::uint64_t>(sys.cycles_per_pattern));
  for (const synth::Bus& bus : sys.operand_bits) {
    h.Add(bus.size());
    for (netlist::GateId g : bus) h.Add(g);
  }
  h.Add(sys.line_nets.size());
  for (netlist::GateId g : sys.line_nets) h.Add(g);
  logicsim::GoldenKey key;
  key.netlist_hash = sys.nl.StructuralHash();
  key.stimulus_hash = h.hash();
  key.cycles = static_cast<std::uint64_t>(num_patterns) *
               static_cast<std::uint64_t>(sys.cycles_per_pattern);
  return key;
}

ControlTrace TraceFromEntry(const synth::System& sys, int num_patterns,
                            const logicsim::GoldenEntry& entry) {
  ControlTrace trace;
  trace.cycles_per_pattern = sys.cycles_per_pattern;
  trace.num_patterns = num_patterns;
  const std::size_t width = sys.line_nets.size();
  trace.lines.reserve(entry.trits.size() / (width == 0 ? 1 : width));
  for (std::size_t at = 0; at + width <= entry.trits.size(); at += width) {
    trace.lines.emplace_back(entry.trits.begin() + at,
                             entry.trits.begin() + at + width);
  }
  return trace;
}

}  // namespace

ControlTrace ExtractControlTrace(const synth::System& sys,
                                 const fault::StuckFault* fault,
                                 int num_patterns) {
  logicsim::GoldenKey key;
  if (fault == nullptr) {
    key = GoldenControlTraceKey(sys, num_patterns);
    if (const auto entry = logicsim::GoldenTraceCache::Global().Find(key)) {
      return TraceFromEntry(sys, num_patterns, *entry);
    }
  }

  logicsim::Simulator sim(sys.nl);
  if (fault != nullptr) {
    fault::InjectFault(sim, *fault);
  }
  // Hold all data inputs at zero; the controller is feedback-free, so its
  // trace does not depend on them.
  for (const synth::Bus& bus : sys.operand_bits) {
    for (netlist::GateId g : bus) {
      sim.SetInputAllLanes(g, Trit::kZero);
    }
  }

  ControlTrace trace;
  trace.cycles_per_pattern = sys.cycles_per_pattern;
  trace.num_patterns = num_patterns;
  for (int p = 0; p < num_patterns; ++p) {
    for (int c = 0; c < sys.cycles_per_pattern; ++c) {
      sim.SetInputAllLanes(sys.reset, c == 0 ? Trit::kOne : Trit::kZero);
      sim.Step();
      std::vector<Trit> row;
      row.reserve(sys.line_nets.size());
      for (netlist::GateId g : sys.line_nets) {
        row.push_back(sim.ValueLane(g, 0));
      }
      trace.lines.push_back(std::move(row));
    }
  }

  if (fault == nullptr) {
    auto entry = std::make_shared<logicsim::GoldenEntry>();
    entry->trits.reserve(trace.lines.size() * sys.line_nets.size());
    for (const std::vector<Trit>& row : trace.lines) {
      entry->trits.insert(entry->trits.end(), row.begin(), row.end());
    }
    logicsim::GoldenTraceCache::Global().Insert(key, std::move(entry));
  }
  return trace;
}

bool PatternsEqual(const ControlTrace& trace, int p, int q) {
  for (int c = 0; c < trace.cycles_per_pattern; ++c) {
    if (trace.lines[p * trace.cycles_per_pattern + c] !=
        trace.lines[q * trace.cycles_per_pattern + c]) {
      return false;
    }
  }
  return true;
}

bool PatternHasUnknown(const ControlTrace& trace, int pattern) {
  for (int c = 0; c < trace.cycles_per_pattern; ++c) {
    if (pattern == 0 && c == 0) continue;  // boot cycle is expectedly X
    for (Trit t : trace.lines[pattern * trace.cycles_per_pattern + c]) {
      if (t == Trit::kX) return true;
    }
  }
  return false;
}

std::vector<ControlLineEffect> DiffPattern(const synth::System& sys,
                                           const ControlTrace& golden,
                                           const ControlTrace& faulty,
                                           int pattern) {
  PFD_CHECK_MSG(golden.cycles_per_pattern == faulty.cycles_per_pattern,
                "trace shape mismatch");
  std::vector<ControlLineEffect> effects;
  for (int c = 0; c < golden.cycles_per_pattern; ++c) {
    for (std::uint32_t line = 0; line < sys.line_nets.size(); ++line) {
      const Trit g = golden.At(pattern, c, line);
      const Trit f = faulty.At(pattern, c, line);
      if (g == Trit::kX) continue;  // nothing to compare against
      if (g != f) {
        // Cycle 0 of a steady pattern is the pattern-boundary cycle, still
        // spent in HOLD; only the very first cycle after power-up is BOOT.
        int state = sys.StateAtCycle(c);
        if (c == 0 && pattern > 0) state = sys.control_spec.HoldState();
        effects.push_back({c, state, line, g, f});
      }
    }
  }
  return effects;
}

std::string DescribeEffect(const synth::System& sys,
                           const ControlLineEffect& e) {
  const synth::ControlLineInfo& info = sys.lines[e.line];
  const std::string state_name =
      e.state < 0 ? "BOOT" : sys.control_spec.state_names[e.state];
  std::ostringstream os;
  if (info.kind == synth::ControlLineInfo::Kind::kLoad) {
    // Name the registers this line drives, paper-style.
    os << "";
    const auto& regs = sys.load_map.regs_of_line[info.index];
    for (std::size_t i = 0; i < regs.size(); ++i) {
      if (i != 0) os << ",";
      os << sys.datapath.regs()[regs[i]].name;
    }
    if (e.faulty == Trit::kX) {
      os << ": load line X in " << state_name;
    } else if (e.golden == Trit::kZero) {
      os << ": extra load in " << state_name;
    } else {
      os << ": skipped load in " << state_name;
    }
  } else {
    os << info.name << " changes in " << state_name;
    if (e.faulty == Trit::kX) os << " (to X)";
  }
  return os.str();
}

}  // namespace pfd::analysis
