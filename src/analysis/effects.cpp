#include "analysis/effects.hpp"

namespace pfd::analysis {

LifespanTable::LifespanTable(const hls::HlsResult& hls)
    : hls_(&hls), hold_state_(hls.num_steps + 1) {}

bool LifespanTable::LiveAcross(std::uint32_t reg, int state) const {
  return OccupantAcross(reg, state) != nullptr;
}

const hls::Variable* LifespanTable::OccupantAcross(std::uint32_t reg,
                                                   int state) const {
  // A variable is present in its register from the end of its defining step
  // to the beginning of its last-reading step (paper, Section 3.2). An
  // overwrite at the end of `state` disrupts it iff def <= state < last_use.
  for (std::uint32_t vi : hls_->reg_variables[reg]) {
    const hls::Variable& v = hls_->variables[vi];
    const int last =
        v.last_use == hls::Variable::kPersist ? hold_state_ + 1 : v.last_use;
    if (v.def_step <= state && state < last) return &v;
  }
  return nullptr;
}

const char* EffectCategoryName(EffectCategory c) {
  switch (c) {
    case EffectCategory::kSelectDontCare: return "select-dont-care";
    case EffectCategory::kSelectCare: return "select-care";
    case EffectCategory::kExtraLoadIdle: return "extra-load-idle";
    case EffectCategory::kExtraLoadInLifespan: return "extra-load-in-lifespan";
    case EffectCategory::kSkippedLoad: return "skipped-load";
    case EffectCategory::kLineUnknown: return "line-unknown";
  }
  return "?";
}

LocalVerdict VerdictOf(EffectCategory c) {
  switch (c) {
    case EffectCategory::kSelectDontCare:
    case EffectCategory::kExtraLoadIdle:
      return LocalVerdict::kSfr;
    case EffectCategory::kSelectCare:
    case EffectCategory::kSkippedLoad:
      return LocalVerdict::kSfi;
    default:
      return LocalVerdict::kNeedsValueAnalysis;
  }
}

ClassifiedEffect ClassifyEffect(const synth::System& sys,
                                const LifespanTable& lifespans,
                                const ControlLineEffect& effect) {
  ClassifiedEffect out;
  out.effect = effect;
  out.description = DescribeEffect(sys, effect);

  if (effect.faulty == Trit::kX || effect.state < 0) {
    out.category = EffectCategory::kLineUnknown;
    return out;
  }

  const synth::ControlLineInfo& info = sys.lines[effect.line];
  if (info.kind == synth::ControlLineInfo::Kind::kSelectBit) {
    // The mux is active in this state iff its select is specified (a care)
    // in the behavioural control spec.
    const bool active =
        sys.control_spec.states[effect.state].select[info.index].has_value();
    out.category = active ? EffectCategory::kSelectCare
                          : EffectCategory::kSelectDontCare;
    return out;
  }

  if (effect.golden == Trit::kOne) {
    out.category = EffectCategory::kSkippedLoad;
    return out;
  }
  // Extra load: disruptive only if some register on this line holds a live
  // variable across this step boundary.
  bool in_lifespan = false;
  for (std::uint32_t r : sys.load_map.regs_of_line[info.index]) {
    if (lifespans.LiveAcross(r, effect.state)) in_lifespan = true;
  }
  out.category = in_lifespan ? EffectCategory::kExtraLoadInLifespan
                             : EffectCategory::kExtraLoadIdle;
  return out;
}

std::vector<ClassifiedEffect> ClassifyEffects(
    const synth::System& sys, const hls::HlsResult& hls,
    const std::vector<ControlLineEffect>& effects) {
  const LifespanTable lifespans(hls);
  std::vector<ClassifiedEffect> out;
  out.reserve(effects.size());
  for (const ControlLineEffect& e : effects) {
    out.push_back(ClassifyEffect(sys, lifespans, e));
  }
  return out;
}

LocalVerdict CombineVerdicts(const std::vector<ClassifiedEffect>& effects) {
  bool needs_value = false;
  for (const ClassifiedEffect& ce : effects) {
    switch (VerdictOf(ce.category)) {
      case LocalVerdict::kSfi:
        return LocalVerdict::kSfi;
      case LocalVerdict::kNeedsValueAnalysis:
        needs_value = true;
        break;
      case LocalVerdict::kSfr:
        break;
    }
  }
  return needs_value ? LocalVerdict::kNeedsValueAnalysis : LocalVerdict::kSfr;
}

}  // namespace pfd::analysis
