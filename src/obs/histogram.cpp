#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/obs.hpp"

namespace pfd::obs {

namespace {

// Shard selection: a process-wide thread enumeration hashed onto the shard
// array. Stable per thread, no syscalls on the hot path.
std::size_t ThisThreadShard() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<std::size_t>(id) & (Histogram::kNumShards - 1);
}

}  // namespace

int Histogram::BucketIndex(std::uint64_t value) {
  if (value < (std::uint64_t{1} << kSubBits)) {
    return static_cast<int>(value);  // exact unit buckets
  }
  const int exp = std::bit_width(value) - 1;  // >= kSubBits
  const int sub = static_cast<int>((value >> (exp - kSubBits)) &
                                   ((std::uint64_t{1} << kSubBits) - 1));
  return ((exp - kSubBits + 1) << kSubBits) + sub;
}

std::uint64_t Histogram::BucketLowerBound(int index) {
  const std::uint64_t sub_count = std::uint64_t{1} << kSubBits;
  if (index < static_cast<int>(sub_count)) return static_cast<std::uint64_t>(index);
  const int block = index >> kSubBits;  // >= 1
  const int sub = index & static_cast<int>(sub_count - 1);
  const int exp = block + kSubBits - 1;
  return (sub_count + static_cast<std::uint64_t>(sub)) << (exp - kSubBits);
}

void Histogram::Record(std::uint64_t value) {
  Shard& s = shards_[ThisThreadShard()];
  s.buckets[static_cast<std::size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (value < cur && !s.min.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (value > cur && !s.max.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
  if (detail::tls_scope != nullptr) {
    detail::ScopeRecordHistogram(*this, value);
  }
}

void Histogram::RecordDouble(double value) {
  if (!(value > 0.0)) {  // also catches NaN
    Record(0);
    return;
  }
  Record(static_cast<std::uint64_t>(std::llround(value)));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.name = name_;
  out.buckets.assign(kNumBuckets, 0);
  std::uint64_t min = ~std::uint64_t{0};
  for (const Shard& s : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  out.min = out.count == 0 ? 0 : min;
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based: ceil(q * count), at least 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t n = buckets[b];
    if (n == 0) continue;
    if (cum + n >= rank) {
      const std::uint64_t lo = Histogram::BucketLowerBound(static_cast<int>(b));
      const std::uint64_t hi =
          b + 1 < buckets.size()
              ? Histogram::BucketLowerBound(static_cast<int>(b) + 1)
              : ~std::uint64_t{0};
      // Position of the target inside this bucket, midpoint-of-slot rule.
      const double frac =
          (static_cast<double>(rank - cum) - 0.5) / static_cast<double>(n);
      const double width = static_cast<double>(hi - lo);
      std::uint64_t v = lo + static_cast<std::uint64_t>(width * frac);
      return std::clamp(v, min, max);
    }
    cum += n;
  }
  return max;  // unreachable when bucket totals match count
}

}  // namespace pfd::obs
