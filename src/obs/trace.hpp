// Hierarchical scoped spans and a Chrome trace_event-format exporter.
//
// A Span is an RAII timer: construction stamps the start, destruction
// records one complete ("ph":"X") event into the Trace sink installed in
// the obs::Registry. When no sink is installed the constructor is a single
// acquire load and the destructor a branch — per-fault sub-spans in the
// classification loop cost nothing in production runs.
//
// The exported JSON is a top-level array of trace_event objects
// ({"name","cat","ph","ts","dur","pid","tid","args"}) that chrome://tracing
// and ui.perfetto.dev open directly. Nesting is implied by ts/dur
// containment per tid, exactly how those viewers render it; the span's
// nesting depth at record time is additionally written to args.depth so
// programmatic consumers (and our tests) need not re-derive containment.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace pfd::obs {

// Microseconds since the first call in this process (steady clock).
double NowMicros();

// Escapes a string for embedding between double quotes in JSON.
std::string JsonEscape(std::string_view s);

class Trace {
 public:
  struct Event {
    std::string name;
    char ph = 'X';       // 'X' complete, 'i' instant
    double ts_us = 0.0;  // start, microseconds
    double dur_us = 0.0; // 'X' only
    std::uint64_t tid = 0;
    int depth = 0;       // span nesting depth at record time
    std::string args_json;  // pre-rendered `"key":value` pairs, or empty
  };

  void RecordComplete(std::string name, double ts_us, double dur_us,
                      int depth, std::string args_json = {});
  void RecordInstant(std::string name, std::string args_json = {});
  // Bulk append under one lock; the ThreadTraceBuffer flush path.
  void Append(std::vector<Event>&& events);

  // Note: events a live ThreadTraceBuffer is still holding are not visible
  // here until that buffer flushes (worker exit / overflow); exec::Pool
  // flushes all worker buffers by the time its destructor returns.
  std::size_t size() const;
  std::vector<Event> Events() const;  // copy, for inspection
  void Clear();

  // Top-level JSON array of trace_event objects.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// Writes trace->ToJson() to `path`. Returns false on I/O failure.
bool WriteTraceFile(const Trace& trace, const std::string& path);

// Thread-local span-event buffer. While one is alive on a thread, every
// event that thread records (Span destructors, RecordInstant) appends to
// the buffer — no lock — instead of taking the destination trace's mutex;
// the buffer flushes on overflow and on destruction. exec::Pool workers
// install one for their lifetime, so engine loop bodies trace
// contention-free and every event lands in the sink by pool shutdown. The
// destination Trace must outlive the buffer (pfdtool keeps pools scoped
// inside the run and exports the trace afterwards).
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer();
  ~ThreadTraceBuffer();  // flushes, restores any outer buffer
  ThreadTraceBuffer(const ThreadTraceBuffer&) = delete;
  ThreadTraceBuffer& operator=(const ThreadTraceBuffer&) = delete;

  // Appends everything buffered so far to the destination trace(s).
  void Flush();

  // The buffer active on the calling thread, or nullptr.
  static ThreadTraceBuffer* Current();

 private:
  friend class Trace;
  void Add(Trace* sink, Trace::Event event);

  std::vector<std::pair<Trace*, Trace::Event>> pending_;
  ThreadTraceBuffer* outer_ = nullptr;
};

class Span {
 public:
  explicit Span(std::string_view name) : Span(name, std::string()) {}
  // `args_json` is a pre-rendered `"key":value[,...]` fragment, e.g. from
  // Span::Args({{"faults", 292}}).
  Span(std::string_view name, std::string args_json);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  // True when a sink was installed at construction (events will be emitted).
  bool active() const { return trace_ != nullptr; }

  // Renders integer key/values as an args fragment for the Span ctor.
  static std::string Args(
      std::initializer_list<std::pair<const char*, std::int64_t>> kv);

 private:
  Trace* trace_ = nullptr;
  std::string name_;
  std::string args_json_;
  double start_us_ = 0.0;
  int depth_ = 0;
};

}  // namespace pfd::obs
