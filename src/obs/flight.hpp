// Flight recorder: a fixed-size ring of structured runtime events kept
// cheap enough to leave on for every production run, dumped after the fact
// to explain *why* a run degraded — which guard tripped, which failpoint
// fired, which units were quarantined and whether their retries succeeded,
// when the simulator fell off the two-valued fast path, what the golden
// cache inserted or evicted.
//
// This is the offline half of the detect-then-explain split: the guard
// layer detects (trips, partial results, exit code 3) online; the recorder
// preserves the timeline so a post-mortem does not have to reproduce the
// failure. pfdtool dumps it automatically on partial-result exits and
// SIGINT, or to a JSONL file via --flight-recorder.
//
// Cost model: recording sites guard on `obs::FlightEnabled()` (one relaxed
// load), and every recorded event is on a cold path already (a trip, an
// exception, a cache eviction) — so a mutex-protected ring is fine; there
// is no lock-free requirement here, unlike Counter/Histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pfd::obs {

enum class FlightKind : std::uint8_t {
  kGuardTrip,       // guard::Checker recorded its first trip
  kFailpointFire,   // an armed failpoint threw
  kQuarantine,      // a unit failed its first attempt and was set aside
  kRetryOutcome,    // serial retry of a quarantined unit finished
  kFallback3V,      // simulator left the two-valued fast path
  kCacheInsert,     // golden-trace cache accepted an entry
  kCacheDrop,       // golden-trace cache refused a duplicate insert
  kCacheEvict,      // golden-trace cache evicted FIFO-oldest
  kCancel,          // cooperative cancellation first observed
  kCheckpoint,      // ckpt journal lifecycle (open, bind, torn tail, broken)
  kNote,            // free-form marker (tests, tooling)
};

// Stable wire name ("guard_trip", "failpoint_fire", ...), used in JSONL.
const char* FlightKindName(FlightKind kind);

struct FlightEvent {
  std::uint64_t seq = 0;  // monotonic since process start / Clear()
  double ts_us = 0.0;     // obs::NowMicros() timebase, same as traces
  FlightKind kind = FlightKind::kNote;
  std::string name;    // site, "<subsystem>.<what>" (e.g. "fault_sim.shard")
  std::string detail;  // free text, e.g. "unit 17: boom (retry ok)"
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  static FlightRecorder& Global();

  // Independent of Registry::enabled(): counters can stay off while the
  // recorder runs (it only costs on already-cold paths), and vice versa.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(FlightKind kind, std::string name, std::string detail = {});

  // Events still in the ring, oldest first. total_recorded() counts every
  // Record() since the last Clear(), including overwritten ones.
  std::vector<FlightEvent> Events() const;
  std::uint64_t total_recorded() const;
  std::size_t capacity() const;

  // Drops buffered events and resets seq. SetCapacity also clears.
  void Clear();
  void SetCapacity(std::size_t capacity);

  // One JSON object per line: {"seq":..,"ts_us":..,"kind":"..","name":"..",
  // "detail":".."}; a leading meta line carries total/dropped counts.
  std::string ToJsonl() const;

 private:
  FlightRecorder() = default;

  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;  // ring_[seq % capacity_]
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t next_seq_ = 0;
  std::atomic<bool> enabled_{false};
};

// The guard every recording site checks first (one relaxed load).
bool FlightEnabled();

// Shorthand used by instrumentation sites after the FlightEnabled() check.
void RecordFlight(FlightKind kind, std::string name, std::string detail = {});

// Writes recorder.ToJsonl() to `path`. Returns false on I/O failure.
bool WriteFlightFile(const FlightRecorder& recorder, const std::string& path);

}  // namespace pfd::obs
