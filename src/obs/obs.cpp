#include "obs/obs.hpp"

#include <algorithm>

namespace pfd::obs {

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) {
    if (c.name() == name) return c;
  }
  return counters_.emplace_back(std::string(name));
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Gauge& g : gauges_) {
    if (g.name() == name) return g;
  }
  return gauges_.emplace_back(std::string(name));
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Counter& c : counters_) {
    if (c.name() == name) return c.value();
  }
  return 0;
}

double Registry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Gauge& g : gauges_) {
    if (g.name() == name) return g.value();
  }
  return 0.0;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size());
    for (const Counter& c : counters_) out.emplace_back(c.name(), c.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeSnapshot() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(gauges_.size());
    for (const Gauge& g : gauges_) out.emplace_back(g.name(), g.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) c.Reset();
  for (Gauge& g : gauges_) g.Reset();
}

}  // namespace pfd::obs
