#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"

namespace pfd::obs {

namespace detail {

thread_local MetricScope* tls_scope = nullptr;

void ScopeAddCounter(const Counter& c, std::uint64_t n) {
  tls_scope->AddCounter(c, n);
}

void ScopeSetGauge(const Gauge& g, double v) { tls_scope->SetGauge(g, v); }

void ScopeRecordHistogram(const Histogram& h, std::uint64_t value) {
  tls_scope->RecordHistogram(h, value);
}

}  // namespace detail

void MetricScope::AddCounter(const Counter& c, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[&c] += n;
}

void MetricScope::SetGauge(const Gauge& g, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[&g] = v;
}

void MetricScope::RecordHistogram(const Histogram& h, std::uint64_t value) {
  Histogram* clone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Histogram>& slot = histograms_[&h];
    if (slot == nullptr) slot = std::make_unique<Histogram>(h.name());
    clone = slot.get();
  }
  // Record into the clone with the tee suppressed: the clone's Record()
  // would otherwise tee right back into this scope and recurse.
  ScopedMetricScope suppress(nullptr);
  clone->Record(value);
}

std::uint64_t MetricScope::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [counter, value] : counters_) {
    if (counter->name() == name) return value;
  }
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricScope::CounterSnapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size());
    for (const auto& [counter, value] : counters_) {
      out.emplace_back(counter->name(), value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> MetricScope::GaugeSnapshot()
    const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(gauges_.size());
    for (const auto& [gauge, value] : gauges_) {
      out.emplace_back(gauge->name(), value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<HistogramSnapshot> MetricScope::HistogramSnapshots() const {
  std::vector<HistogramSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(histograms_.size());
    for (const auto& [source, clone] : histograms_) {
      out.push_back(clone->Snapshot());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::uint64_t ScopedCounterValue(std::string_view name) {
  if (const MetricScope* scope = CurrentScope()) {
    return scope->CounterValue(name);
  }
  return Registry::Global().CounterValue(name);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) {
    if (c.name() == name) return c;
  }
  return counters_.emplace_back(std::string(name));
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Gauge& g : gauges_) {
    if (g.name() == name) return g;
  }
  return gauges_.emplace_back(std::string(name));
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Histogram& h : histograms_) {
    if (h.name() == name) return h;
  }
  return histograms_.emplace_back(std::string(name));
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Counter& c : counters_) {
    if (c.name() == name) return c.value();
  }
  return 0;
}

double Registry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Gauge& g : gauges_) {
    if (g.name() == name) return g.value();
  }
  return 0.0;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size());
    for (const Counter& c : counters_) out.emplace_back(c.name(), c.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeSnapshot() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(gauges_.size());
    for (const Gauge& g : gauges_) out.emplace_back(g.name(), g.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<HistogramSnapshot> Registry::HistogramSnapshots() const {
  std::vector<HistogramSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(histograms_.size());
    for (const Histogram& h : histograms_) out.push_back(h.Snapshot());
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) c.Reset();
  for (Gauge& g : gauges_) g.Reset();
  for (Histogram& h : histograms_) h.Reset();
}

namespace {

std::string JsonDoubleCompact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string CountersJsonObject(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "}";
  return out;
}

std::string GaugesJsonObject(
    const std::vector<std::pair<std::string, double>>& gauges) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonDoubleCompact(value);
  }
  out += "}";
  return out;
}

std::string HistogramsJsonObject(
    const std::vector<HistogramSnapshot>& hists) {
  std::string out = "{";
  bool first = true;
  for (const HistogramSnapshot& h : hists) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(h.name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"mean\":" + JsonDoubleCompact(h.Mean());
    out += ",\"p50\":" + std::to_string(h.Quantile(0.50));
    out += ",\"p90\":" + std::to_string(h.Quantile(0.90));
    out += ",\"p99\":" + std::to_string(h.Quantile(0.99));
    out += "}";
  }
  out += "}";
  return out;
}

std::string CountersJsonObject() {
  return CountersJsonObject(Registry::Global().CounterSnapshot());
}

std::string GaugesJsonObject() {
  return GaugesJsonObject(Registry::Global().GaugeSnapshot());
}

std::string HistogramsJsonObject() {
  return HistogramsJsonObject(Registry::Global().HistogramSnapshots());
}

std::string SnapshotJson() {
  std::string out = "{\n";
  out += "  \"counters\": " + CountersJsonObject() + ",\n";
  out += "  \"gauges\": " + GaugesJsonObject() + ",\n";
  out += "  \"histograms\": " + HistogramsJsonObject() + "\n";
  out += "}\n";
  return out;
}

}  // namespace pfd::obs
