// Lock-free log-bucketed histograms for latency / size distributions.
//
// Same discipline as Counter (obs/obs.hpp): near-zero cost when disabled —
// every recording site guards on `obs::Enabled()` — and a lock-free hot
// path when enabled. Record() touches only relaxed atomics in one of a
// small fixed set of cache-line-aligned shards selected by thread id, so
// exec::Pool workers hammering the same histogram never contend on a lock
// or (usually) a cache line. Snapshot() merges the shards; it is taken
// once per run, not on the hot path.
//
// Bucketing is log-linear: values below 2^kSubBits get exact unit buckets,
// above that each power-of-two range is split into 2^kSubBits linear
// sub-buckets, so the relative error of a bucket midpoint is bounded by
// ~2^-(kSubBits+1) (12.5% for kSubBits=2) at every scale up to 2^64-1.
// Quantiles are interpolated inside the containing bucket and clamped to
// the exact observed [min, max].
//
// Unit convention: histograms carry their unit in the name suffix
// ("fault_sim.shard_us", "logicsim.settle_substeps") — the registry does
// not interpret values.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pfd::obs {

// Merged view of one histogram at snapshot time. Totals are exact once
// writers quiesce (relaxed atomics, same contract as Counter).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // size Histogram::kNumBuckets

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  // Quantile estimate for q in [0, 1]: linear interpolation inside the
  // bucket holding the ceil(q * count)-th sample, clamped to [min, max].
  std::uint64_t Quantile(double q) const;
};

class Histogram {
 public:
  // Sub-bucket resolution: each power-of-two range splits into
  // 2^kSubBits linear buckets. 2 → 4 sub-buckets, ≤12.5% midpoint error.
  static constexpr int kSubBits = 2;
  // Enough for the full uint64 range: 2^kSubBits exact unit buckets plus
  // (64 - kSubBits) * 2^kSubBits log-linear ones, rounded up.
  static constexpr int kNumBuckets = 256;
  // Power of two; threads map onto shards by thread-id hash.
  static constexpr std::size_t kNumShards = 8;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Lock-free: one fetch_add into the calling thread's shard bucket, one
  // into its sum, and (rarely looping) relaxed CAS min/max updates.
  void Record(std::uint64_t value);
  // Convenience for duration-style doubles (obs::NowMicros() deltas);
  // clamps negatives to 0 and rounds to nearest.
  void RecordDouble(double value);

  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

  // Exposed for tests: the bucket a value lands in, and the smallest
  // value mapping to bucket `index` (buckets partition [0, 2^64)).
  static int BucketIndex(std::uint64_t value);
  static std::uint64_t BucketLowerBound(int index);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  std::string name_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace pfd::obs
