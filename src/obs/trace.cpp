#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

namespace pfd::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::uint64_t ThisThreadId() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int& ThreadSpanDepth() {
  thread_local int depth = 0;
  return depth;
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

ThreadTraceBuffer*& CurrentBufferSlot() {
  thread_local ThreadTraceBuffer* buffer = nullptr;
  return buffer;
}

// Flushing every few hundred events bounds worker memory on long jobs while
// keeping the global-mutex acquisitions rare.
constexpr std::size_t kBufferFlushThreshold = 512;

}  // namespace

double NowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   ProcessEpoch())
      .count();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void Trace::RecordComplete(std::string name, double ts_us, double dur_us,
                           int depth, std::string args_json) {
  Event e;
  e.name = std::move(name);
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = ThisThreadId();
  e.depth = depth;
  e.args_json = std::move(args_json);
  if (ThreadTraceBuffer* buf = ThreadTraceBuffer::Current()) {
    buf->Add(this, std::move(e));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Trace::RecordInstant(std::string name, std::string args_json) {
  Event e;
  e.name = std::move(name);
  e.ph = 'i';
  e.ts_us = NowMicros();
  e.tid = ThisThreadId();
  e.depth = ThreadSpanDepth();
  e.args_json = std::move(args_json);
  if (ThreadTraceBuffer* buf = ThreadTraceBuffer::Current()) {
    buf->Add(this, std::move(e));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Trace::Append(std::vector<Event>&& events) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Event& e : events) events_.push_back(std::move(e));
}

ThreadTraceBuffer::ThreadTraceBuffer() {
  outer_ = CurrentBufferSlot();
  CurrentBufferSlot() = this;
}

ThreadTraceBuffer::~ThreadTraceBuffer() {
  Flush();
  CurrentBufferSlot() = outer_;
}

ThreadTraceBuffer* ThreadTraceBuffer::Current() {
  return CurrentBufferSlot();
}

void ThreadTraceBuffer::Add(Trace* sink, Trace::Event event) {
  pending_.emplace_back(sink, std::move(event));
  if (pending_.size() >= kBufferFlushThreshold) Flush();
}

void ThreadTraceBuffer::Flush() {
  // Nearly always a single sink; batch consecutive same-sink runs into one
  // locked append each.
  std::size_t i = 0;
  while (i < pending_.size()) {
    Trace* sink = pending_[i].first;
    std::vector<Trace::Event> run;
    while (i < pending_.size() && pending_[i].first == sink) {
      run.push_back(std::move(pending_[i].second));
      ++i;
    }
    sink->Append(std::move(run));
  }
  pending_.clear();
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<Trace::Event> Trace::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Trace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Trace::ToJson() const {
  const std::vector<Event> events = Events();
  std::string out = "[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += JsonEscape(e.name);
    out += "\",\"cat\":\"pfd\",\"ph\":\"";
    out += e.ph;
    out += "\",\"ts\":";
    AppendDouble(out, e.ts_us);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      AppendDouble(out, e.dur_us);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    if (!e.args_json.empty()) {
      out += ",";
      out += e.args_json;
    }
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

bool WriteTraceFile(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = trace.ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

Span::Span(std::string_view name, std::string args_json) {
  trace_ = Registry::Global().trace();
  if (trace_ == nullptr) return;
  name_ = name;
  args_json_ = std::move(args_json);
  depth_ = ThreadSpanDepth()++;
  start_us_ = NowMicros();
}

Span::~Span() {
  if (trace_ == nullptr) return;
  const double end_us = NowMicros();
  --ThreadSpanDepth();
  trace_->RecordComplete(std::move(name_), start_us_, end_us - start_us_,
                         depth_, std::move(args_json_));
}

std::string Span::Args(
    std::initializer_list<std::pair<const char*, std::int64_t>> kv) {
  std::string out;
  for (const auto& [key, value] : kv) {
    if (!out.empty()) out += ",";
    out += "\"";
    out += JsonEscape(key);
    out += "\":";
    out += std::to_string(value);
  }
  return out;
}

}  // namespace pfd::obs
