// Observability substrate: a process-global registry of named counters and
// gauges, plus the hook where a trace sink (obs/trace.hpp) is installed.
//
// Design constraints, in order:
//   1. Near-zero cost when disabled. The registry starts disabled; every
//      instrumentation site guards on `obs::Enabled()` (one relaxed atomic
//      load) and accumulates at batch granularity (per Step / per batch /
//      per call), never inside the innermost gate loop.
//   2. Lock-free-friendly hot path. Counter::Add is a relaxed fetch_add on
//      a stable address; Gauge::Set is a relaxed store. The registry mutex
//      is taken only on registration and snapshotting, never on update, so
//      future sharded/threaded engines can hammer the same counters.
//   3. Stable handles. GetCounter/GetGauge return references that stay
//      valid for the process lifetime (deque storage); engines cache them
//      in constructors and skip the name lookup on the hot path.
//
// Naming convention: "<subsystem>.<what>", e.g. "logicsim.gate_evals",
// "fault_sim.lanes", "power.mc_batches", "qm.cover_iterations".
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace pfd::obs {

class Trace;
class Counter;
class Gauge;
class MetricScope;

namespace detail {
// Per-request metric scope installed on this thread (null = none). While a
// scope is installed, Counter::Add / Gauge::Set / Histogram::Record tee
// their updates into the scope in addition to the global registry, so a
// served request's deltas can be reported in isolation from concurrent
// requests sharing the process-global registry. One TLS null-check when no
// scope is active; updates are batch-granularity, so the tee never sits in
// an innermost loop.
extern thread_local MetricScope* tls_scope;
void ScopeAddCounter(const Counter& c, std::uint64_t n);
void ScopeSetGauge(const Gauge& g, double v);
void ScopeRecordHistogram(const Histogram& h, std::uint64_t value);
}  // namespace detail

// Monotonic event count. Updates are relaxed atomics: totals are exact once
// writers quiesce, which is all a metrics snapshot needs.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
    if (detail::tls_scope != nullptr) detail::ScopeAddCounter(*this, n);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

// Last-written value (convergence state, current tolerance, ...).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    value_.store(v, std::memory_order_relaxed);
    if (detail::tls_scope != nullptr) detail::ScopeSetGauge(*this, v);
  }
  // Relaxed CAS accumulation for level-style gauges (queue depth, in-flight
  // requests): concurrent +delta/-delta from many threads compose instead
  // of clobbering each other the way last-writer-wins Set() does. The
  // accumulated level is a property of the whole process, so Add is not
  // teed into metric scopes.
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

class Registry {
 public:
  static Registry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Create-or-get; the returned reference is valid forever.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Value of a counter/gauge by name; 0 when it was never registered.
  std::uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;

  // Name-sorted snapshots of everything ever registered.
  std::vector<std::pair<std::string, std::uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;
  std::vector<HistogramSnapshot> HistogramSnapshots() const;

  // Zeroes every counter, gauge, and histogram (handles stay valid).
  void ResetAll();

  // Trace sink. The registry does not own the sink; the installer must
  // uninstall (InstallTrace(nullptr)) before destroying it.
  void InstallTrace(Trace* trace) {
    trace_.store(trace, std::memory_order_release);
  }
  Trace* trace() const { return trace_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;  // deque: stable addresses
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::atomic<bool> enabled_{false};
  std::atomic<Trace*> trace_{nullptr};
};

// The single guard every instrumentation site checks before counting.
inline bool Enabled() { return Registry::Global().enabled(); }

// Per-request delta accumulator. Install on a thread with
// ScopedMetricScope; every Counter::Add / Gauge::Set / Histogram::Record
// issued while installed is teed into the scope (histograms into private
// per-scope clones). exec::Pool propagates the submitting thread's scope to
// its workers for the duration of a job, so a request's parallel work is
// attributed to the request that submitted it. Thread-safe: many threads
// may tee into one scope concurrently. This is what lets a long-lived
// service hand every request a RunReport that reflects only its own work
// while the global registry keeps aggregating across all requests.
class MetricScope {
 public:
  MetricScope() = default;
  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

  // Tee entry points (called via the detail:: hooks; rarely useful
  // directly).
  void AddCounter(const Counter& c, std::uint64_t n);
  void SetGauge(const Gauge& g, double v);
  void RecordHistogram(const Histogram& h, std::uint64_t value);

  // Value of a teed counter by name; 0 when this scope never saw it.
  std::uint64_t CounterValue(std::string_view name) const;

  // Name-sorted snapshots of everything teed into this scope; same shapes
  // as the Registry snapshots so the JSON renderers below accept both.
  std::vector<std::pair<std::string, std::uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;
  std::vector<HistogramSnapshot> HistogramSnapshots() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<const Counter*, std::uint64_t> counters_;
  std::unordered_map<const Gauge*, double> gauges_;
  std::unordered_map<const Histogram*, std::unique_ptr<Histogram>>
      histograms_;
};

// RAII installation of a scope on the current thread; restores the
// previous scope on destruction (scopes nest, only the innermost tees).
// Passing nullptr suppresses teeing for the guarded region.
class ScopedMetricScope {
 public:
  explicit ScopedMetricScope(MetricScope* scope) : prev_(detail::tls_scope) {
    detail::tls_scope = scope;
  }
  ~ScopedMetricScope() { detail::tls_scope = prev_; }
  ScopedMetricScope(const ScopedMetricScope&) = delete;
  ScopedMetricScope& operator=(const ScopedMetricScope&) = delete;

 private:
  MetricScope* prev_;
};

// The scope installed on the current thread, null when none.
inline MetricScope* CurrentScope() { return detail::tls_scope; }

// Counter value as seen by the current thread's scope when one is
// installed, else the global registry. Begin/end metric deltas computed
// through this isolate per request under concurrency while staying
// byte-identical for unscoped CLI runs.
std::uint64_t ScopedCounterValue(std::string_view name);

// Pre-rendered JSON objects over the global registry, shared by the
// metrics renderers (core/report) and the RunReport artifact. Histogram
// entries carry count/sum/min/max/mean plus interpolated p50/p90/p99.
std::string CountersJsonObject();
std::string GaugesJsonObject();
std::string HistogramsJsonObject();
// Snapshot-shaped overloads, used to render a MetricScope's view with the
// exact same JSON shape as the global one.
std::string CountersJsonObject(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);
std::string GaugesJsonObject(
    const std::vector<std::pair<std::string, double>>& gauges);
std::string HistogramsJsonObject(const std::vector<HistogramSnapshot>& hists);
// {"counters":{...},"gauges":{...},"histograms":{...}} — the generic
// metrics document for commands with no PipelineMetrics of their own.
std::string SnapshotJson();

}  // namespace pfd::obs
