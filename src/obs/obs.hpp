// Observability substrate: a process-global registry of named counters and
// gauges, plus the hook where a trace sink (obs/trace.hpp) is installed.
//
// Design constraints, in order:
//   1. Near-zero cost when disabled. The registry starts disabled; every
//      instrumentation site guards on `obs::Enabled()` (one relaxed atomic
//      load) and accumulates at batch granularity (per Step / per batch /
//      per call), never inside the innermost gate loop.
//   2. Lock-free-friendly hot path. Counter::Add is a relaxed fetch_add on
//      a stable address; Gauge::Set is a relaxed store. The registry mutex
//      is taken only on registration and snapshotting, never on update, so
//      future sharded/threaded engines can hammer the same counters.
//   3. Stable handles. GetCounter/GetGauge return references that stay
//      valid for the process lifetime (deque storage); engines cache them
//      in constructors and skip the name lookup on the hot path.
//
// Naming convention: "<subsystem>.<what>", e.g. "logicsim.gate_evals",
// "fault_sim.lanes", "power.mc_batches", "qm.cover_iterations".
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace pfd::obs {

class Trace;

// Monotonic event count. Updates are relaxed atomics: totals are exact once
// writers quiesce, which is all a metrics snapshot needs.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

// Last-written value (convergence state, current tolerance, ...).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

class Registry {
 public:
  static Registry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Create-or-get; the returned reference is valid forever.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Value of a counter/gauge by name; 0 when it was never registered.
  std::uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;

  // Name-sorted snapshots of everything ever registered.
  std::vector<std::pair<std::string, std::uint64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;
  std::vector<HistogramSnapshot> HistogramSnapshots() const;

  // Zeroes every counter, gauge, and histogram (handles stay valid).
  void ResetAll();

  // Trace sink. The registry does not own the sink; the installer must
  // uninstall (InstallTrace(nullptr)) before destroying it.
  void InstallTrace(Trace* trace) {
    trace_.store(trace, std::memory_order_release);
  }
  Trace* trace() const { return trace_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;  // deque: stable addresses
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::atomic<bool> enabled_{false};
  std::atomic<Trace*> trace_{nullptr};
};

// The single guard every instrumentation site checks before counting.
inline bool Enabled() { return Registry::Global().enabled(); }

// Pre-rendered JSON objects over the global registry, shared by the
// metrics renderers (core/report) and the RunReport artifact. Histogram
// entries carry count/sum/min/max/mean plus interpolated p50/p90/p99.
std::string CountersJsonObject();
std::string GaugesJsonObject();
std::string HistogramsJsonObject();
// {"counters":{...},"gauges":{...},"histograms":{...}} — the generic
// metrics document for commands with no PipelineMetrics of their own.
std::string SnapshotJson();

}  // namespace pfd::obs
