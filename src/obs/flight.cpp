#include "obs/flight.hpp"

#include <cstdio>

#include "obs/trace.hpp"

namespace pfd::obs {

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kGuardTrip: return "guard_trip";
    case FlightKind::kFailpointFire: return "failpoint_fire";
    case FlightKind::kQuarantine: return "quarantine";
    case FlightKind::kRetryOutcome: return "retry_outcome";
    case FlightKind::kFallback3V: return "3v_fallback";
    case FlightKind::kCacheInsert: return "cache_insert";
    case FlightKind::kCacheDrop: return "cache_drop";
    case FlightKind::kCacheEvict: return "cache_evict";
    case FlightKind::kCancel: return "cancel";
    case FlightKind::kCheckpoint: return "checkpoint";
    case FlightKind::kNote: return "note";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder =
      new FlightRecorder();  // never destroyed, like Registry::Global()
  return *recorder;
}

void FlightRecorder::Record(FlightKind kind, std::string name,
                            std::string detail) {
  // Sites guard on FlightEnabled() before paying for the strings, but the
  // recorder itself is also gated so a missed guard cannot pollute a ring
  // that was explicitly turned off.
  if (!enabled()) return;
  const double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) ring_.resize(ring_.size() + 1);
  FlightEvent& e = ring_[static_cast<std::size_t>(next_seq_ % capacity_)];
  e.seq = next_seq_++;
  e.ts_us = now;
  e.kind = kind;
  e.name = std::move(name);
  e.detail = std::move(detail);
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  const std::uint64_t held = ring_.size();
  for (std::uint64_t i = 0; i < held; ++i) {
    const std::uint64_t seq = next_seq_ - held + i;
    out.push_back(ring_[static_cast<std::size_t>(seq % capacity_)]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
}

void FlightRecorder::SetCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_seq_ = 0;
}

std::string FlightRecorder::ToJsonl() const {
  const std::uint64_t total = total_recorded();
  const std::vector<FlightEvent> events = Events();
  std::string out;
  out += "{\"flight_recorder\":{\"total_recorded\":" + std::to_string(total) +
         ",\"held\":" + std::to_string(events.size()) +
         ",\"dropped\":" + std::to_string(total - events.size()) + "}}\n";
  char ts[32];
  for (const FlightEvent& e : events) {
    std::snprintf(ts, sizeof ts, "%.3f", e.ts_us);
    out += "{\"seq\":" + std::to_string(e.seq) + ",\"ts_us\":" + ts +
           ",\"kind\":\"" + FlightKindName(e.kind) + "\",\"name\":\"" +
           JsonEscape(e.name) + "\",\"detail\":\"" + JsonEscape(e.detail) +
           "\"}\n";
  }
  return out;
}

bool FlightEnabled() { return FlightRecorder::Global().enabled(); }

void RecordFlight(FlightKind kind, std::string name, std::string detail) {
  FlightRecorder::Global().Record(kind, std::move(name), std::move(detail));
}

bool WriteFlightFile(const FlightRecorder& recorder, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = recorder.ToJsonl();
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (written != body.size()) std::fclose(f);
  return ok;
}

}  // namespace pfd::obs
