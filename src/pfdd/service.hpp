// pfdd request execution: one parsed Request in, one Response out.
//
// ExecuteJob is the seam between the wire and the engines. Every job runs
// with:
//
//   * a per-request obs::MetricScope installed on the executing thread and
//     propagated by exec::Pool to the workers of every job the request
//     submits — so the RunReport attached to the response reflects only
//     this request's counters/histograms even while neighbours hammer the
//     same process-global registry;
//   * a per-request guard::Checker built from the request's deadline_ms /
//     max_cycles (falling back to the service defaults) — a tripped guard
//     degrades THIS response to `partial` and leaves every other in-flight
//     request untouched;
//   * the one shared exec::Pool, injected through the engine config `pool`
//     fields — scheduling only, results bit-identical to a private pool;
//   * the process-wide GoldenTraceCache, shared deliberately (same design,
//     width and stimulus across requests hit the same golden traces).
//
// Supported commands (mirroring the pfdtool vocabulary):
//
//   classify design=NAME [width=N] [patterns=N] [fault_engine=E]
//            [deadline_ms=X] [max_cycles=N]
//   grade    ... classify's params ... [threshold=PCT]
//   xcheck   [seed=N] [iters=N]
//   ping     [sleep_ms=N]                 (liveness / admission testing)
//   metrics  (text exposition of the process-global registry)
//
// classify/grade responses carry the exact CSV the solo CLI invocation
// (`pfdtool classify NAME --csv ...`) prints — byte-identical, enforced by
// tests — plus a RunReport JSON in `report`.
#pragma once

#include <cstdint>

#include "exec/exec.hpp"
#include "pfdd/protocol.hpp"

namespace pfd::pfdd {

struct ServiceConfig {
  // The shared worker pool every request's engine stages run on. Not owned.
  // Build it with max_chunk_units = 1 (the differential engine's preferred
  // shard grain) — see MakeServicePoolOptions.
  exec::Pool* pool = nullptr;
  // Applied when a request carries no deadline_ms / max_cycles of its own;
  // 0 = unlimited. A service default is the operator's backstop against one
  // runaway request starving the pool.
  double default_deadline_ms = 0.0;
  std::uint64_t default_max_cycles = 0;
};

// exec options for the service's shared pool: `threads` workers (0 = auto)
// with the chunk grain the injected-pool engine paths expect.
exec::Options MakeServicePoolOptions(int threads);

// Executes one request synchronously on the calling thread (engine
// parallelism goes through config.pool). Never throws; malformed or failed
// requests come back as Status::kError with the message explaining.
Response ExecuteJob(const Request& request, const ServiceConfig& config);

}  // namespace pfd::pfdd
