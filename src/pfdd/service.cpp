#include "pfdd/service.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "base/parse.hpp"
#include "core/grading.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/run_report.hpp"
#include "designs/designs.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"
#include "xcheck/xcheck.hpp"

namespace pfd::pfdd {

namespace {

// Exit code for a guard-tripped run, same value pfdtool maps partials to.
constexpr int kExitPartial = 3;

constexpr std::uint64_t kUnset = ~std::uint64_t{0};

struct JobParams {
  std::string design;
  int width = 4;
  int patterns = 1200;
  std::string fault_engine = "differential";
  double threshold = 5.0;
  double deadline_ms = -1.0;          // < 0 = fall back to service default
  std::uint64_t max_cycles = kUnset;  // kUnset = fall back
  std::uint64_t seed = 1;             // xcheck
  std::uint64_t iters = 1000;         // xcheck
  std::uint64_t sleep_ms = 0;         // ping
};

bool KeyAllowed(const std::string& command, const std::string& key) {
  const auto in = [&key](std::initializer_list<const char*> keys) {
    for (const char* k : keys) {
      if (key == k) return true;
    }
    return false;
  };
  if (command == "classify") {
    return in({"design", "width", "patterns", "fault_engine", "deadline_ms",
               "max_cycles"});
  }
  if (command == "grade") {
    return in({"design", "width", "patterns", "fault_engine", "deadline_ms",
               "max_cycles", "threshold"});
  }
  if (command == "xcheck") return in({"seed", "iters", "deadline_ms"});
  if (command == "ping") return in({"sleep_ms"});
  return false;  // metrics takes no parameters
}

// Strict parse, pfdtool-style: garbage values are runtime errors, never
// silent zeros. Throws pfd::Error (mapped to a kError response).
JobParams ParseParams(const Request& request) {
  JobParams p;
  for (const auto& [key, value] : request.params) {
    if (!KeyAllowed(request.command, key)) {
      throw Error("unknown parameter '" + key + "' for command '" +
                  request.command + "'");
    }
    if (key == "design") {
      p.design = value;
    } else if (key == "width") {
      p.width = static_cast<int>(ParseUint64FlagInRange("width", value, 64));
    } else if (key == "patterns") {
      p.patterns = static_cast<int>(
          ParseUint64FlagInRange("patterns", value, 10000000));
    } else if (key == "fault_engine") {
      p.fault_engine = std::string(ParseChoiceFlag(
          "fault_engine", value, {"parallel", "serial", "differential"}));
    } else if (key == "threshold") {
      p.threshold = ParseNonNegativeDoubleFlag("threshold", value);
    } else if (key == "deadline_ms") {
      p.deadline_ms = ParseNonNegativeDoubleFlag("deadline_ms", value);
    } else if (key == "max_cycles") {
      p.max_cycles = ParseUint64Flag("max_cycles", value);
    } else if (key == "seed") {
      p.seed = ParseUint64Flag("seed", value);
    } else if (key == "iters") {
      p.iters = ParseUint64FlagInRange("iters", value, 100000000);
    } else if (key == "sleep_ms") {
      p.sleep_ms = ParseUint64FlagInRange("sleep_ms", value, 60000);
    }
  }
  return p;
}

guard::Limits MakeLimits(const JobParams& p, const ServiceConfig& config) {
  guard::Limits limits;
  limits.max_wall_ms =
      p.deadline_ms >= 0.0 ? p.deadline_ms : config.default_deadline_ms;
  limits.max_sim_cycles =
      p.max_cycles != kUnset ? p.max_cycles : config.default_max_cycles;
  return limits;
}

// The request kvs pfdtool stamps into its RunReport, mirrored so a served
// report and a solo-CLI report of the same request line up field for field.
std::vector<std::pair<std::string, std::string>> EngineRequestKvs(
    const JobParams& p, const guard::Limits& limits, int pool_threads) {
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.push_back(core::RequestStr("design", p.design));
  kvs.push_back(core::RequestInt("width", p.width));
  kvs.push_back(core::RequestInt("patterns", p.patterns));
  kvs.push_back(core::RequestStr("fault_engine", p.fault_engine));
  kvs.push_back(core::RequestInt("threads", pool_threads));
  kvs.push_back(core::RequestDouble("deadline_ms", limits.max_wall_ms));
  kvs.push_back(core::RequestInt(
      "max_cycles", static_cast<std::int64_t>(limits.max_sim_cycles)));
  return kvs;
}

std::string RenderReport(core::RunReportInputs inputs,
                         const obs::MetricScope& scope) {
  inputs.scope = &scope;
  return core::RunReportJson(inputs);
}

Response FinishEngineJob(const guard::RunStatus& status, std::string csv,
                         core::RunReportInputs inputs,
                         const obs::MetricScope& scope) {
  Response resp;
  resp.csv = std::move(csv);
  if (status.ok()) {
    resp.status = Status::kOk;
    resp.exit_code = 0;
  } else {
    resp.status = Status::kPartial;
    resp.exit_code = kExitPartial;
    resp.message = "partial result: " + status.Describe() + "\n";
  }
  inputs.exit_code = resp.exit_code;
  inputs.run_status = &status;
  resp.report = RenderReport(std::move(inputs), scope);
  return resp;
}

Response RunClassify(const JobParams& p, const ServiceConfig& config,
                     bool grade) {
  // The scope is installed for the whole job: design build, engines, and
  // the report render all tee into it; exec::Pool hands it to the workers
  // of every job this thread submits.
  obs::MetricScope scope;
  obs::ScopedMetricScope install(&scope);

  const designs::BenchmarkDesign d =
      designs::BuildDesignByName(p.design, p.width);
  const guard::Limits limits = MakeLimits(p, config);

  core::PipelineConfig cfg;
  cfg.tpgr_patterns = p.patterns;
  cfg.fault_engine = fault::ParseFaultSimEngine(p.fault_engine);
  cfg.pool = config.pool;
  cfg.limits = limits;
  core::ApplyFeedbackGateCheckDefaults(d.system, &cfg);
  core::ClassificationReport report =
      core::ClassifyControllerFaults(d.system, d.hls, cfg);

  const int pool_threads =
      config.pool != nullptr ? config.pool->threads() : 0;
  core::RunReportInputs inputs;
  inputs.command = grade ? "grade" : "classify";
  inputs.request = EngineRequestKvs(p, limits, pool_threads);
  inputs.metrics = &report.metrics;

  if (!grade) {
    return FinishEngineJob(report.run_status,
                           core::ClassificationCsv(report),
                           std::move(inputs), scope);
  }

  core::GradeConfig gcfg;
  gcfg.threshold_percent = p.threshold;
  gcfg.mc.pool = config.pool;
  gcfg.mc.limits = limits;
  const core::PowerGradeReport graded =
      core::GradeSfrFaults(d.system, report, gcfg);
  guard::RunStatus merged = report.run_status;
  merged.MergeFrom(graded.run_status, "grade");
  inputs.request.push_back(core::RequestDouble("threshold", p.threshold));
  return FinishEngineJob(merged, core::GradingCsv(graded), std::move(inputs),
                         scope);
}

Response RunXcheckJob(const JobParams& p) {
  obs::MetricScope scope;
  obs::ScopedMetricScope install(&scope);

  xcheck::XcheckConfig cfg;
  cfg.seed = p.seed;
  cfg.iters = static_cast<std::uint32_t>(p.iters);
  cfg.shrink = true;
  const xcheck::XcheckResult r = xcheck::RunXcheck(cfg);

  core::RunReportInputs inputs;
  inputs.command = "xcheck";
  inputs.request.push_back(
      core::RequestInt("seed", static_cast<std::int64_t>(p.seed)));
  inputs.request.push_back(
      core::RequestInt("iters", static_cast<std::int64_t>(p.iters)));
  inputs.request.push_back(core::RequestBool("shrink", true));
  inputs.request.push_back(core::RequestBool("mutations", false));
  inputs.request.push_back(core::RequestBool("engines", false));

  Response resp;
  if (r.miscompares == 0) {
    char line[128];
    std::snprintf(line, sizeof line,
                  "xcheck: %llu/%llu cases clean (seed %llu)\n",
                  static_cast<unsigned long long>(r.cases_run),
                  static_cast<unsigned long long>(p.iters),
                  static_cast<unsigned long long>(p.seed));
    resp.status = Status::kOk;
    resp.exit_code = 0;
    resp.csv = line;
  } else {
    resp.status = Status::kError;
    resp.exit_code = 1;
    resp.message = "xcheck: MISCOMPARE at case " +
                   std::to_string(r.failing_case_index) + " (case seed " +
                   std::to_string(r.failing_case_seed) + "):\n  " +
                   r.failure_detail + "\nshrunk repro (" +
                   std::to_string(r.shrink_steps) + " shrink steps):\n" +
                   r.repro_cpp;
  }
  inputs.exit_code = resp.exit_code;
  resp.report = RenderReport(std::move(inputs), scope);
  return resp;
}

// `name value` lines for every counter and gauge plus count/mean/p50/p99
// lines per histogram — the /metrics-style exposition of the process-global
// registry (unit suffixes live in the metric names).
std::string RenderMetricsText() {
  const obs::Registry& reg = obs::Registry::Global();
  std::string out;
  char buf[160];
  for (const auto& [name, value] : reg.CounterSnapshot()) {
    std::snprintf(buf, sizeof buf, "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : reg.GaugeSnapshot()) {
    std::snprintf(buf, sizeof buf, "%s %g\n", name.c_str(), value);
    out += buf;
  }
  for (const obs::HistogramSnapshot& h : reg.HistogramSnapshots()) {
    std::snprintf(buf, sizeof buf,
                  "%s.count %llu\n%s.mean %g\n%s.p50 %llu\n%s.p99 %llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.name.c_str(), h.Mean(), h.name.c_str(),
                  static_cast<unsigned long long>(h.Quantile(0.50)),
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.Quantile(0.99)));
    out += buf;
  }
  return out;
}

}  // namespace

exec::Options MakeServicePoolOptions(int threads) {
  exec::Options options;
  options.threads = threads;
  // Unit-grain chunks: the differential fault-sim engine builds its pools
  // this way (one incremental-state shard per unit), and a shared pool must
  // serve the strictest client.
  options.max_chunk_units = 1;
  return options;
}

Response ExecuteJob(const Request& request, const ServiceConfig& config) {
  try {
    const JobParams p = ParseParams(request);
    if (request.command == "ping") {
      if (p.sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(p.sleep_ms));
      }
      Response resp;
      resp.message = "pong\n";
      return resp;
    }
    if (request.command == "metrics") {
      Response resp;
      resp.message = RenderMetricsText();
      return resp;
    }
    if (request.command == "classify" || request.command == "grade") {
      if (p.design.empty()) {
        throw Error("command '" + request.command +
                    "' requires design=NAME");
      }
      return RunClassify(p, config, request.command == "grade");
    }
    if (request.command == "xcheck") return RunXcheckJob(p);
    throw Error("unknown command '" + request.command +
                "' (commands: classify grade xcheck ping metrics)");
  } catch (const Error& e) {
    Response resp;
    resp.status = Status::kError;
    resp.exit_code = 1;
    resp.message = std::string("error: ") + e.what() + "\n";
    return resp;
  } catch (const std::exception& e) {
    Response resp;
    resp.status = Status::kError;
    resp.exit_code = 1;
    resp.message = std::string("error: internal: ") + e.what() + "\n";
    return resp;
  }
}

}  // namespace pfd::pfdd
