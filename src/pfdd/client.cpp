#include "pfdd/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pfd::pfdd {

Connection::~Connection() { Close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Connection Connection::ConnectUnix(const std::string& path,
                                   std::string* error) {
  Connection conn;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    *error = "unix socket path too long: " + path;
    return conn;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return conn;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return conn;
  }
  conn.fd_ = fd;
  return conn;
}

Connection Connection::ConnectTcp(int port, std::string* error) {
  Connection conn;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return conn;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = "connect port " + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return conn;
  }
  conn.fd_ = fd;
  return conn;
}

bool Connection::Call(const Request& request, Response* response,
                      std::string* error) {
  if (!ok()) {
    *error = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, EncodeRequest(request))) {
    *error = "request write failed (server gone?)";
    return false;
  }
  std::string payload;
  const ReadResult rr = ReadFrame(fd_, &payload);
  if (rr != ReadResult::kOk) {
    *error = std::string("response read failed: ") + ReadResultName(rr);
    return false;
  }
  return DecodeResponse(payload, response, error);
}

}  // namespace pfd::pfdd
