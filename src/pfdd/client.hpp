// pfdd client: connect to a serving pfdd and exchange request/response
// frames. Used by `pfdtool call`, `pfdtool loadgen`, and the tests; the
// protocol itself lives in pfdd/protocol.hpp.
#pragma once

#include <string>

#include "pfdd/protocol.hpp"

namespace pfd::pfdd {

// One connection to a pfdd server. Move-only RAII over the socket fd;
// a default-constructed / failed connection has ok() == false.
class Connection {
 public:
  Connection() = default;
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Connect to a Unix-socket / loopback-TCP server. On failure the
  // returned connection is !ok() and *error explains.
  static Connection ConnectUnix(const std::string& path, std::string* error);
  static Connection ConnectTcp(int port, std::string* error);

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // One request/response round trip. False (with *error) on any transport
  // or protocol failure; server-side failures come back as a decoded
  // Response with a non-ok status instead.
  bool Call(const Request& request, Response* response, std::string* error);

  void Close();

 private:
  int fd_ = -1;
};

}  // namespace pfd::pfdd
