// pfdd wire protocol: length-prefixed frames over a byte stream (Unix
// domain socket or loopback TCP), with a text request line and a sectioned
// response.
//
// Frame layout (both directions):
//
//   magic   4 bytes  "PFD1"
//   length  4 bytes  little-endian payload size, <= kMaxFrameBytes
//   payload N bytes
//
// The magic makes a stray HTTP client (or a frame written mid-stream by a
// crashed peer) fail loudly at the first read instead of blocking on a
// garbage length. Oversized lengths are rejected before any allocation.
//
// Request payload: one text line, `<command> key=value key=value ...`.
// Commands mirror the pfdtool vocabulary (classify, grade, xcheck) plus
// the service-only ping and metrics. Keys may not repeat; values carry no
// spaces (design names and numbers — nothing else travels request-ward).
//
// Response payload: a header line
//
//   pfdd/1 <status> exit_code=<n> csv=<a> report=<b> message=<c>\n
//
// followed by exactly a+b+c bytes: the CSV body (byte-identical to the
// solo CLI run of the same request), the RunReport JSON artifact, and a
// human-readable message (errors, pong, metrics text). Status words map
// the CLI exit-code contract onto the wire: ok(0), partial(3),
// error(1), rejected (admission control), draining (server shutting
// down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pfd::pfdd {

inline constexpr char kFrameMagic[4] = {'P', 'F', 'D', '1'};
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

// Blocking frame write to `fd`; false on any I/O failure (EPIPE when the
// peer vanished). Short writes are retried; EINTR is transparent.
bool WriteFrame(int fd, std::string_view payload);

enum class ReadResult : std::uint8_t {
  kOk,
  kEof,       // clean close before any byte of a frame
  kError,     // I/O error or mid-frame EOF
  kBadMagic,  // peer is not speaking pfdd
  kTooLarge,  // declared length exceeds `max_bytes`
};
const char* ReadResultName(ReadResult r);

// Blocking frame read from `fd` into `*payload`.
ReadResult ReadFrame(int fd, std::string* payload,
                     std::size_t max_bytes = kMaxFrameBytes);

// A parsed request line. Params preserve wire order; Lookup is linear
// (requests carry a handful of keys).
struct Request {
  std::string command;
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* Find(std::string_view key) const;
};

std::string EncodeRequest(const Request& request);
// False on a malformed line (empty, repeated key, token without '=');
// *error explains.
bool DecodeRequest(std::string_view payload, Request* request,
                   std::string* error);

enum class Status : std::uint8_t {
  kOk,        // exit_code 0
  kPartial,   // guard-tripped / quarantined: exit_code 3, results present
  kError,     // bad request or engine failure: exit_code 1
  kRejected,  // admission control: queue full, retry later
  kDraining,  // server shutting down, no longer accepting work
};
const char* StatusName(Status s);

struct Response {
  Status status = Status::kOk;
  int exit_code = 0;
  std::string csv;      // command output (classify/grade CSV, xcheck line)
  std::string report;   // RunReport JSON ("" when the job never ran)
  std::string message;  // human-readable detail (errors, pong, metrics)
};

std::string EncodeResponse(const Response& response);
bool DecodeResponse(std::string_view payload, Response* response,
                    std::string* error);

}  // namespace pfd::pfdd
