// pfdd server: a long-lived daemon multiplexing classify/grade/xcheck
// requests from many connections onto ONE shared exec::Pool.
//
// Thread structure:
//
//   acceptor ──> bounded connection queue ──> N service workers
//                                                  │
//                                                  └──> ExecuteJob on the
//                                                       shared exec::Pool
//
// The acceptor polls with a short timeout so it can observe the drain flag
// without a wakeup channel; RequestDrain is a plain atomic store and
// therefore safe to call from a SIGTERM handler. Admission control is the
// queue bound: when `queue_capacity` accepted connections are already
// waiting for a worker, the acceptor answers `rejected` and closes instead
// of letting latency grow without bound (the client retries or sheds).
//
// Drain contract (SIGTERM): stop accepting (`draining` to late arrivals),
// let every in-flight request finish and its response flush, answer
// `draining` to connections still queued, then exit 0. A second SIGTERM
// kills the process the usual way (pfdtool serve restores the default
// disposition after the first).
//
// Connections are persistent: a client may issue many requests on one
// socket; each is served synchronously in arrival order on that
// connection. Counters/gauges/histograms (pfdd.accepted, pfdd.served,
// pfdd.rejected, pfdd.inflight, pfdd.queue_depth, pfdd.request_us) land in
// the process-global registry and are scraped via the `metrics` command.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "pfdd/service.hpp"

namespace pfd::pfdd {

struct ServerOptions {
  // Exactly one listener: the Unix socket when `unix_path` is non-empty
  // (bound fresh; a stale file from a dead server is unlinked first),
  // else loopback TCP on `tcp_port` (0 = ephemeral, read back via port()).
  std::string unix_path;
  int tcp_port = 0;
  // Concurrent request executors. Each serves one connection at a time;
  // engine-level parallelism inside a request goes through the shared pool.
  int service_threads = 2;
  // Accepted connections waiting for a worker before `rejected` answers.
  int queue_capacity = 16;
  // Shared exec::Pool workers (0 = auto: $PFD_THREADS, then hardware).
  int pool_threads = 0;
  // Service-level guard defaults for requests that carry none; 0 = none.
  double default_deadline_ms = 0.0;
  std::uint64_t default_max_cycles = 0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns acceptor + workers. False (with *error) on any
  // socket failure; the server is then inert and safe to destroy.
  bool Start(std::string* error);

  // Begins the drain. Async-signal-safe: one atomic store, no locks.
  void RequestDrain();

  // Blocks until the drain completes and every thread is joined. Returns
  // the number of requests served. Safe to call once, after Start.
  std::uint64_t Wait();

  // RequestDrain + Wait, for non-signal shutdown paths (tests).
  std::uint64_t Stop();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  // The bound TCP port (after Start, TCP mode only; -1 otherwise).
  int port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }
  exec::Pool* pool() { return pool_.get(); }

 private:
  void AcceptorMain();
  void WorkerMain();
  void ServeConnection(int fd);
  // Pop a queued connection; blocks (with periodic drain checks) until one
  // arrives or the queue is empty *and* the acceptor has stopped.
  std::optional<int> PopConnection();

  ServerOptions options_;
  std::unique_ptr<exec::Pool> pool_;
  ServiceConfig service_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> accept_done_{false};
  std::atomic<std::uint64_t> served_{0};

  std::mutex mu_;
  // Notified by the acceptor (never from a signal handler — RequestDrain
  // stays lock-free); workers additionally poll the drain flags on a short
  // wait_for timeout.
  std::condition_variable cv_;
  std::deque<int> queue_;  // accepted fds awaiting a worker

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace pfd::pfdd
