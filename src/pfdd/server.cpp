#include "pfdd/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/obs.hpp"
#include "pfdd/protocol.hpp"

namespace pfd::pfdd {

namespace {

// Cached handles for the server's own telemetry; levels (inflight, queue
// depth) use Gauge::Add so concurrent workers compose instead of
// clobbering.
struct ServerObs {
  obs::Counter& accepted = obs::Registry::Global().GetCounter("pfdd.accepted");
  obs::Counter& served = obs::Registry::Global().GetCounter("pfdd.served");
  obs::Counter& rejected = obs::Registry::Global().GetCounter("pfdd.rejected");
  obs::Counter& protocol_errors =
      obs::Registry::Global().GetCounter("pfdd.protocol_errors");
  obs::Gauge& inflight = obs::Registry::Global().GetGauge("pfdd.inflight");
  obs::Gauge& queue_depth =
      obs::Registry::Global().GetGauge("pfdd.queue_depth");
  obs::Histogram& request_us =
      obs::Registry::Global().GetHistogram("pfdd.request_us");
};

ServerObs& Obs() {
  static ServerObs obs;
  return obs;
}

// One-frame administrative answer (rejected / draining) for a connection
// that will never reach a worker.
void AnswerAndClose(int fd, Status status, const char* message) {
  Response resp;
  resp.status = status;
  resp.exit_code = 1;
  resp.message = message;
  WriteFrame(fd, EncodeResponse(resp));
  ::close(fd);
}

}  // namespace

Server::Server(const ServerOptions& options) : options_(options) {}

Server::~Server() {
  if (started_ && !joined_) Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::Start(std::string* error) {
  // Served requests always render RunReports, so the registry is on for
  // the daemon's lifetime (the CLI enables it per-sink instead).
  obs::Registry::Global().set_enabled(true);

  pool_ = std::make_unique<exec::Pool>(
      MakeServicePoolOptions(options_.pool_threads));
  service_.pool = pool_.get();
  service_.default_deadline_ms = options_.default_deadline_ms;
  service_.default_max_cycles = options_.default_max_cycles;

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      *error = "unix socket path too long: " + options_.unix_path;
      return false;
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(options_.unix_path.c_str());  // stale file from a dead server
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      *error = "bind " + options_.unix_path + ": " + std::strerror(errno);
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      *error = "bind port " + std::to_string(options_.tcp_port) + ": " +
               std::strerror(errno);
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }

  acceptor_ = std::thread(&Server::AcceptorMain, this);
  const int n = options_.service_threads > 0 ? options_.service_threads : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&Server::WorkerMain, this);
  }
  started_ = true;
  return true;
}

void Server::RequestDrain() {
  draining_.store(true, std::memory_order_release);
}

std::uint64_t Server::Wait() {
  if (!started_ || joined_) return served_.load(std::memory_order_relaxed);
  acceptor_.join();
  for (std::thread& w : workers_) w.join();
  joined_ = true;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  return served_.load(std::memory_order_relaxed);
}

std::uint64_t Server::Stop() {
  RequestDrain();
  return Wait();
}

void Server::AcceptorMain() {
  pollfd pfd{listen_fd_, POLLIN, 0};
  while (!draining()) {
    // The timeout bounds how long a signal-requested drain waits to be
    // noticed; no wakeup channel is needed, keeping RequestDrain
    // async-signal-safe.
    const int r = ::poll(&pfd, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    Obs().accepted.Add();
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(queue_.size()) < options_.queue_capacity) {
        queue_.push_back(fd);
        Obs().queue_depth.Add(1.0);  // under mu_, paired with PopConnection
        admitted = true;
      }
    }
    if (admitted) {
      cv_.notify_one();
    } else {
      Obs().rejected.Add();
      AnswerAndClose(fd, Status::kRejected,
                     "rejected: server queue full, retry later\n");
    }
  }
  // Drain: answer `draining` to connections already pending on the listen
  // socket, then stop listening. Queued fds are answered by the workers.
  while (true) {
    const int r = ::poll(&pfd, 1, 0);
    if (r <= 0) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    AnswerAndClose(fd, Status::kDraining, "draining: server shutting down\n");
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  accept_done_.store(true, std::memory_order_release);
  cv_.notify_all();
}

std::optional<int> Server::PopConnection() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!queue_.empty()) {
      const int fd = queue_.front();
      queue_.pop_front();
      Obs().queue_depth.Add(-1.0);
      return fd;
    }
    if (accept_done_.load(std::memory_order_acquire)) return std::nullopt;
    cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void Server::WorkerMain() {
  while (const std::optional<int> fd = PopConnection()) {
    if (draining()) {
      // Still queued when the drain started: never admitted to a worker,
      // so no partial work to finish.
      AnswerAndClose(*fd, Status::kDraining,
                     "draining: server shutting down\n");
      continue;
    }
    ServeConnection(*fd);
  }
}

void Server::ServeConnection(int fd) {
  std::string payload;
  while (true) {
    // Idle wait is polled so a drain is noticed between requests; only a
    // peer that stalls mid-frame can hold a worker past the drain.
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) {
      if (draining()) break;
      continue;
    }
    const ReadResult rr = ReadFrame(fd, &payload);
    if (rr != ReadResult::kOk) {
      if (rr != ReadResult::kEof) {
        Obs().protocol_errors.Add();
        Response resp;
        resp.status = Status::kError;
        resp.exit_code = 1;
        resp.message =
            std::string("error: bad frame (") + ReadResultName(rr) + ")\n";
        WriteFrame(fd, EncodeResponse(resp));
      }
      break;
    }
    Request request;
    std::string parse_error;
    Response resp;
    if (!DecodeRequest(payload, &request, &parse_error)) {
      Obs().protocol_errors.Add();
      resp.status = Status::kError;
      resp.exit_code = 1;
      resp.message = "error: " + parse_error + "\n";
    } else {
      Obs().inflight.Add(1.0);
      const auto t0 = std::chrono::steady_clock::now();
      resp = ExecuteJob(request, service_);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      Obs().inflight.Add(-1.0);
      Obs().request_us.RecordDouble(us);
      Obs().served.Add();
      served_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!WriteFrame(fd, EncodeResponse(resp))) break;
    if (draining()) break;  // response flushed; close before the next read
  }
  ::close(fd);
}

}  // namespace pfd::pfdd
