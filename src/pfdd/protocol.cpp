#include "pfdd/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pfd::pfdd {

namespace {

// Full-buffer write with EINTR/short-write handling. Sockets are written
// with MSG_NOSIGNAL so a vanished peer surfaces as EPIPE (frame write
// returns false) instead of a process-killing SIGPIPE; non-socket fds
// (tests over pipes) fall back to write().
bool WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// Full-buffer read; returns the byte count read, which is short only at
// EOF (or -1 on error).
ssize_t ReadAll(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

bool ParseSize(std::string_view text, std::size_t* out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::size_t>(c - '0');
    if (value > (~std::size_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

const char* ReadResultName(ReadResult r) {
  switch (r) {
    case ReadResult::kOk:
      return "ok";
    case ReadResult::kEof:
      return "eof";
    case ReadResult::kError:
      return "io-error";
    case ReadResult::kBadMagic:
      return "bad-magic";
    case ReadResult::kTooLarge:
      return "frame-too-large";
  }
  return "unknown";
}

bool WriteFrame(int fd, std::string_view payload) {
  char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[4] = static_cast<char>(len & 0xff);
  header[5] = static_cast<char>((len >> 8) & 0xff);
  header[6] = static_cast<char>((len >> 16) & 0xff);
  header[7] = static_cast<char>((len >> 24) & 0xff);
  if (payload.size() > kMaxFrameBytes) return false;
  return WriteAll(fd, header, sizeof header) &&
         WriteAll(fd, payload.data(), payload.size());
}

ReadResult ReadFrame(int fd, std::string* payload, std::size_t max_bytes) {
  char header[8];
  const ssize_t got = ReadAll(fd, header, sizeof header);
  if (got < 0) return ReadResult::kError;
  if (got == 0) return ReadResult::kEof;
  if (static_cast<std::size_t>(got) != sizeof header) {
    return ReadResult::kError;  // torn header
  }
  if (std::memcmp(header, kFrameMagic, 4) != 0) {
    return ReadResult::kBadMagic;
  }
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[4])) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[5])) << 8 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[6]))
          << 16 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[7]))
          << 24;
  if (len > max_bytes) return ReadResult::kTooLarge;
  payload->assign(len, '\0');
  if (len != 0) {
    const ssize_t body = ReadAll(fd, payload->data(), len);
    if (body < 0 || static_cast<std::uint32_t>(body) != len) {
      return ReadResult::kError;  // mid-frame EOF
    }
  }
  return ReadResult::kOk;
}

const std::string* Request::Find(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string EncodeRequest(const Request& request) {
  std::string out = request.command;
  for (const auto& [k, v] : request.params) {
    out += " " + k + "=" + v;
  }
  return out;
}

bool DecodeRequest(std::string_view payload, Request* request,
                   std::string* error) {
  request->command.clear();
  request->params.clear();
  std::size_t pos = 0;
  const auto next_token = [&]() -> std::string_view {
    while (pos < payload.size() && payload[pos] == ' ') ++pos;
    const std::size_t begin = pos;
    while (pos < payload.size() && payload[pos] != ' ' &&
           payload[pos] != '\n') {
      ++pos;
    }
    return payload.substr(begin, pos - begin);
  };
  const std::string_view cmd = next_token();
  if (cmd.empty()) {
    *error = "empty request";
    return false;
  }
  request->command = std::string(cmd);
  while (true) {
    const std::string_view tok = next_token();
    if (tok.empty()) break;
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      *error = "malformed parameter '" + std::string(tok) +
               "' (expected key=value)";
      return false;
    }
    const std::string_view key = tok.substr(0, eq);
    if (request->Find(key) != nullptr) {
      *error = "repeated parameter '" + std::string(key) + "'";
      return false;
    }
    request->params.emplace_back(std::string(key),
                                 std::string(tok.substr(eq + 1)));
  }
  return true;
}

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kPartial:
      return "partial";
    case Status::kError:
      return "error";
    case Status::kRejected:
      return "rejected";
    case Status::kDraining:
      return "draining";
  }
  return "unknown";
}

namespace {

bool ParseStatus(std::string_view word, Status* out) {
  for (const Status s :
       {Status::kOk, Status::kPartial, Status::kError, Status::kRejected,
        Status::kDraining}) {
    if (word == StatusName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string EncodeResponse(const Response& response) {
  std::string out = "pfdd/1 ";
  out += StatusName(response.status);
  out += " exit_code=" + std::to_string(response.exit_code);
  out += " csv=" + std::to_string(response.csv.size());
  out += " report=" + std::to_string(response.report.size());
  out += " message=" + std::to_string(response.message.size());
  out += "\n";
  out += response.csv;
  out += response.report;
  out += response.message;
  return out;
}

bool DecodeResponse(std::string_view payload, Response* response,
                    std::string* error) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    *error = "response header line missing";
    return false;
  }
  // Header shape: "pfdd/1 <status> key=value ...". The version and the
  // bare status word are split off by hand; the key=value tail reuses the
  // request-line parser (with a dummy command token).
  const std::string_view header = payload.substr(0, nl);
  const std::size_t sp = header.find(' ');
  if (sp == std::string_view::npos) {
    *error = "response header truncated";
    return false;
  }
  if (header.substr(0, sp) != "pfdd/1") {
    *error = "unexpected protocol version '" +
             std::string(header.substr(0, sp)) + "'";
    return false;
  }
  std::size_t sp2 = header.find(' ', sp + 1);
  if (sp2 == std::string_view::npos) sp2 = header.size();
  if (!ParseStatus(header.substr(sp + 1, sp2 - sp - 1), &response->status)) {
    *error = "unknown status word";
    return false;
  }
  Request kv;
  if (!DecodeRequest("h " + std::string(header.substr(sp2)), &kv, error)) {
    return false;
  }
  const std::string* ec = kv.Find("exit_code");
  const std::string* c = kv.Find("csv");
  const std::string* r = kv.Find("report");
  const std::string* m = kv.Find("message");
  if (ec == nullptr || c == nullptr || r == nullptr || m == nullptr) {
    *error = "response header missing a section size";
    return false;
  }
  std::size_t csv_bytes = 0, report_bytes = 0, message_bytes = 0;
  std::size_t ec_abs = 0;
  std::string_view ec_text = *ec;
  bool neg = false;
  if (!ec_text.empty() && ec_text.front() == '-') {
    neg = true;
    ec_text.remove_prefix(1);
  }
  if (!ParseSize(ec_text, &ec_abs) || !ParseSize(*c, &csv_bytes) ||
      !ParseSize(*r, &report_bytes) || !ParseSize(*m, &message_bytes)) {
    *error = "response header sizes malformed";
    return false;
  }
  const std::string_view body = payload.substr(nl + 1);
  if (body.size() != csv_bytes + report_bytes + message_bytes) {
    *error = "response body size mismatch";
    return false;
  }
  response->exit_code = neg ? -static_cast<int>(ec_abs)
                            : static_cast<int>(ec_abs);
  response->csv = std::string(body.substr(0, csv_bytes));
  response->report = std::string(body.substr(csv_bytes, report_bytes));
  response->message = std::string(body.substr(csv_bytes + report_bytes));
  return true;
}

}  // namespace pfd::pfdd
