#include "designs/designs.hpp"

#include "base/error.hpp"

namespace pfd::designs {

using hls::Dfg;
using hls::HlsConfig;
using hls::ValueRef;
using rtl::FuKind;

Dfg MakeDiffeqDfg(int width) {
  Dfg dfg(width);
  const ValueRef x = dfg.AddInput("x");
  const ValueRef y = dfg.AddInput("y");
  const ValueRef u = dfg.AddInput("u");
  const ValueRef dx = dfg.AddInput("dx");
  const ValueRef a = dfg.AddInput("a");
  const ValueRef three = dfg.AddConstant(3);

  const ValueRef m1 = dfg.AddOp("3x", FuKind::kMul, three, x);
  const ValueRef m2 = dfg.AddOp("u_dx", FuKind::kMul, u, dx);
  const ValueRef m3 = dfg.AddOp("3x_u_dx", FuKind::kMul, m1, m2);
  const ValueRef m4 = dfg.AddOp("3y", FuKind::kMul, three, y);
  const ValueRef m5 = dfg.AddOp("3y_dx", FuKind::kMul, m4, dx);
  const ValueRef s1 = dfg.AddOp("u_minus", FuKind::kSub, u, m3);
  const ValueRef u1 = dfg.AddOp("u1", FuKind::kSub, s1, m5);
  const ValueRef y1 = dfg.AddOp("y1", FuKind::kAdd, y, m2);
  const ValueRef x1 = dfg.AddOp("x1", FuKind::kAdd, x, dx);
  const ValueRef c = dfg.AddOp("c", FuKind::kLess, x1, a);

  dfg.AddOutput("x1", x1);
  dfg.AddOutput("y1", y1);
  dfg.AddOutput("u1", u1);
  dfg.AddOutput("c", c);
  return dfg;
}

HlsConfig DiffeqConfig() {
  HlsConfig cfg;
  cfg.resources = {{FuKind::kMul, 2},
                   {FuKind::kAdd, 1},
                   {FuKind::kSub, 2},
                   {FuKind::kLess, 1}};
  // Two multipliers/subtractors with round-robin binding leave each FU's
  // operand muxes don't-care in most states — the paper's Diffeq had 19 of
  // 37 SFR faults on mux select lines.
  cfg.spread_fu_binding = true;
  // Left-edge register sharing with one load line per register ("eleven
  // register load lines, for REG1 through REG11" in the paper), and one op
  // per step, giving the paper's CS1..CS8-style long schedule (10
  // computation steps here) and a 4-bit state register whose unused codes
  // enrich the controller's don't-care space.
  cfg.merge_load_lines = false;
  cfg.max_ops_per_step = 2;
  return cfg;
}

Dfg MakeFacetDfg(int width) {
  Dfg dfg(width);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  const ValueRef c = dfg.AddInput("c");
  const ValueRef d = dfg.AddInput("d");
  const ValueRef e = dfg.AddInput("e");
  const ValueRef f = dfg.AddInput("f");

  // Three chains that start in parallel; with two adders and two multipliers
  // several registers load in the same step and end up sharing load lines.
  const ValueRef t1 = dfg.AddOp("t1", FuKind::kAdd, a, b);
  const ValueRef t2 = dfg.AddOp("t2", FuKind::kMul, c, d);
  const ValueRef t3 = dfg.AddOp("t3", FuKind::kSub, e, f);
  const ValueRef t4 = dfg.AddOp("t4", FuKind::kMul, t1, t2);
  const ValueRef t5 = dfg.AddOp("t5", FuKind::kAdd, t2, t3);
  const ValueRef t7 = dfg.AddOp("t7", FuKind::kOr, t1, t3);
  const ValueRef t6 = dfg.AddOp("t6", FuKind::kAnd, t4, t5);
  const ValueRef t8 = dfg.AddOp("t8", FuKind::kAdd, t7, t5);
  const ValueRef t9 = dfg.AddOp("t9", FuKind::kMul, t4, t3);
  const ValueRef t10 = dfg.AddOp("t10", FuKind::kSub, t9, t8);

  dfg.AddOutput("p", t6);
  dfg.AddOutput("q", t10);
  return dfg;
}

HlsConfig FacetConfig() {
  HlsConfig cfg;
  cfg.resources = {{FuKind::kMul, 2},
                   {FuKind::kAdd, 2},
                   {FuKind::kSub, 1},
                   {FuKind::kAnd, 1},
                   {FuKind::kOr, 1}};
  // Two ops per step keeps registers loading in parallel (the shared-load-
  // line property the paper highlights) while stretching the schedule enough
  // for a 3-bit-plus state register.
  cfg.max_ops_per_step = 2;
  return cfg;
}

Dfg MakePolyDfg(int width) {
  Dfg dfg(width);
  const ValueRef a = dfg.AddInput("a");
  const ValueRef b = dfg.AddInput("b");
  const ValueRef c = dfg.AddInput("c");
  const ValueRef d = dfg.AddInput("d");
  const ValueRef x = dfg.AddInput("x");

  // Power-form evaluation of a*x^3 + b*x^2 + c*x + d. The explicit powers
  // give many long-lived variables (x, x^2, x^3, b, c, d), reproducing the
  // paper's observation that Poly's long lifespans leave SFR faults little
  // idle time to exploit.
  const ValueRef x2 = dfg.AddOp("x2", FuKind::kMul, x, x);
  const ValueRef x3 = dfg.AddOp("x3", FuKind::kMul, x2, x);
  const ValueRef t1 = dfg.AddOp("ax3", FuKind::kMul, a, x3);
  const ValueRef t2 = dfg.AddOp("bx2", FuKind::kMul, b, x2);
  const ValueRef t3 = dfg.AddOp("cx", FuKind::kMul, c, x);
  const ValueRef s1 = dfg.AddOp("s1", FuKind::kAdd, t1, t2);
  const ValueRef s2 = dfg.AddOp("s2", FuKind::kAdd, s1, t3);
  const ValueRef y = dfg.AddOp("y", FuKind::kAdd, s2, d);

  dfg.AddOutput("y", y);
  return dfg;
}

HlsConfig PolyConfig() {
  HlsConfig cfg;
  cfg.resources = {{FuKind::kMul, 2}, {FuKind::kAdd, 2}};
  cfg.spread_fu_binding = true;
  cfg.merge_load_lines = false;
  cfg.max_ops_per_step = 2;
  return cfg;
}

Dfg MakeEwfDfg(int width) {
  Dfg dfg(width);
  // An elliptic-wave-filter-like section: two state-feedback lattice arms
  // built from long adder chains with scaling multiplies, 34 ops total —
  // the op mix (26 add / 8 mul) of the classic EWF benchmark.
  const ValueRef in = dfg.AddInput("in");
  const ValueRef s1 = dfg.AddInput("s1");
  const ValueRef s2 = dfg.AddInput("s2");
  const ValueRef s3 = dfg.AddInput("s3");
  const ValueRef s4 = dfg.AddInput("s4");
  const ValueRef c1 = dfg.AddConstant(3);
  const ValueRef c2 = dfg.AddConstant(5);

  auto add = [&](const char* n, ValueRef a, ValueRef b) {
    return dfg.AddOp(n, FuKind::kAdd, a, b);
  };
  auto mul = [&](const char* n, ValueRef a, ValueRef b) {
    return dfg.AddOp(n, FuKind::kMul, a, b);
  };

  // Input conditioning arm.
  const ValueRef a1 = add("a1", in, s1);
  const ValueRef a2 = add("a2", a1, s2);
  const ValueRef m1 = mul("m1", a2, c1);
  const ValueRef a3 = add("a3", m1, s3);
  const ValueRef a4 = add("a4", a3, a1);
  const ValueRef m2 = mul("m2", a4, c2);
  const ValueRef a5 = add("a5", m2, a2);
  // First lattice arm.
  const ValueRef a6 = add("a6", a5, s4);
  const ValueRef m3 = mul("m3", a6, c1);
  const ValueRef a7 = add("a7", m3, a4);
  const ValueRef a8 = add("a8", a7, a5);
  const ValueRef a9 = add("a9", a8, s1);
  const ValueRef m4 = mul("m4", a9, c2);
  const ValueRef a10 = add("a10", m4, a7);
  // Second lattice arm.
  const ValueRef a11 = add("a11", a10, s2);
  const ValueRef a12 = add("a12", a11, a8);
  const ValueRef m5 = mul("m5", a12, c1);
  const ValueRef a13 = add("a13", m5, a10);
  const ValueRef a14 = add("a14", a13, a11);
  const ValueRef a15 = add("a15", a14, s3);
  const ValueRef m6 = mul("m6", a15, c2);
  const ValueRef a16 = add("a16", m6, a13);
  // Output combination and next-state values.
  const ValueRef a17 = add("a17", a16, a14);
  const ValueRef a18 = add("a18", a17, a12);
  const ValueRef m7 = mul("m7", a18, c1);
  const ValueRef a19 = add("a19", m7, a16);
  const ValueRef a20 = add("a20", a19, a17);
  const ValueRef a21 = add("a21", a20, in);
  const ValueRef m8 = mul("m8", a21, c2);
  const ValueRef a22 = add("a22", m8, a19);
  const ValueRef a23 = add("a23", a22, a20);
  const ValueRef a24 = add("a24", a23, a21);
  const ValueRef a25 = add("a25", a24, a22);
  const ValueRef a26 = add("a26", a25, a23);

  dfg.AddOutput("out", a26);
  dfg.AddOutput("ns1", a24);
  dfg.AddOutput("ns2", a25);
  return dfg;
}

HlsConfig EwfConfig() {
  HlsConfig cfg;
  cfg.resources = {{FuKind::kMul, 2}, {FuKind::kAdd, 2}};
  cfg.max_ops_per_step = 3;
  return cfg;
}

Dfg MakeDiffeqLoopDfg(int width) {
  Dfg dfg = MakeDiffeqDfg(width);
  // Ops by construction order: m1..m5 = 0..4, s1 = 5, u1 = 6, y1 = 7,
  // x1 = 8, c = 9. Repeat while x1 < a, carrying x <- x1, y <- y1, u <- u1.
  dfg.SetLoop(hls::ValueRef::Op(9), {{0 /*x*/, 8 /*x1*/},
                                     {1 /*y*/, 7 /*y1*/},
                                     {2 /*u*/, 6 /*u1*/}});
  return dfg;
}

namespace {
BenchmarkDesign Build(const std::string& name, const Dfg& dfg,
                      const HlsConfig& cfg,
                      const synth::SynthOptions& options = {}) {
  BenchmarkDesign d;
  d.name = name;
  d.hls = hls::RunHls(dfg, cfg);
  std::optional<synth::SystemLoop> loop;
  if (d.hls.loop.enabled) {
    loop = synth::SystemLoop{d.hls.loop.cond_fu, 2};
  }
  d.system = synth::BuildSystem(name, d.hls.datapath, d.hls.control,
                                d.hls.load_map, options, loop);
  return d;
}
}  // namespace

BenchmarkDesign BuildDiffeq(int width) {
  return Build("diffeq", MakeDiffeqDfg(width), DiffeqConfig());
}

BenchmarkDesign BuildDiffeqLoop(int width) {
  return Build("diffeq-loop", MakeDiffeqLoopDfg(width), DiffeqConfig());
}

BenchmarkDesign BuildEwf(int width) {
  return Build("ewf", MakeEwfDfg(width), EwfConfig());
}

BenchmarkDesign BuildFacet(int width) {
  return Build("facet", MakeFacetDfg(width), FacetConfig());
}

BenchmarkDesign BuildPoly(int width) {
  return Build("poly", MakePolyDfg(width), PolyConfig());
}

std::vector<BenchmarkDesign> BuildAll(int width) {
  return {BuildDiffeq(width), BuildFacet(width), BuildPoly(width)};
}

const char kDesignNameList[] = "diffeq facet poly diffeq-loop ewf";

BenchmarkDesign BuildDesignByName(const std::string& name, int width) {
  if (name == "diffeq") return BuildDiffeq(width);
  if (name == "facet") return BuildFacet(width);
  if (name == "poly") return BuildPoly(width);
  if (name == "diffeq-loop") return BuildDiffeqLoop(width);
  if (name == "ewf") return BuildEwf(width);
  throw pfd::Error("unknown design: " + name +
                   " (designs: " + kDesignNameList + ")");
}

}  // namespace pfd::designs
