// The paper's three example circuits, as DFGs plus canned builds through the
// full HLS + synthesis flow.
//
//   * Diffeq — the HAL differential-equation-solver benchmark [Gajski et
//     al.]: one Euler step of y'' + 3xy' + 3y = 0 (x1 = x + dx;
//     u1 = u - 3*x*u*dx - 3*y*dx; y1 = y + u*dx; c = x1 < a).
//   * Facet — a FACET-like block (the paper's exact FACET netlist is not
//     given): three parallel-start chains with ADD/SUB/MUL/AND/OR ops whose
//     binding yields registers that load in parallel on shared load lines —
//     the property the paper highlights for this example.
//   * Poly — Horner evaluation of a*x^3 + b*x^2 + c*x + d, a serial chain
//     with long variable lifespans (the paper's explanation for Poly's small
//     SFR power effects).
//
// All default to the paper's 4-bit datapath width; width is a parameter for
// the ablation benches.
#pragma once

#include <string>

#include "hls/dfg.hpp"
#include "hls/hls.hpp"
#include "synth/system.hpp"

namespace pfd::designs {

hls::Dfg MakeDiffeqDfg(int width);
hls::Dfg MakeFacetDfg(int width);
hls::Dfg MakePolyDfg(int width);

// HLS resource sets used for the canned builds.
hls::HlsConfig DiffeqConfig();
hls::HlsConfig FacetConfig();
hls::HlsConfig PolyConfig();

struct BenchmarkDesign {
  std::string name;
  hls::HlsResult hls;
  synth::System system;
};

BenchmarkDesign BuildDiffeq(int width = 4);
BenchmarkDesign BuildFacet(int width = 4);
BenchmarkDesign BuildPoly(int width = 4);

// A fifth-order elliptic-wave-filter-like benchmark (the classic "large"
// high-level-synthesis workload: 34 operations, long add chains, a handful
// of scaling multiplies). Used by the scale-study bench to show how the
// methodology behaves one size class above the paper's examples.
hls::Dfg MakeEwfDfg(int width);
hls::HlsConfig EwfConfig();
BenchmarkDesign BuildEwf(int width = 4);

// The *iterating* differential-equation solver: the same Euler body, but
// with while-loop semantics (repeat while x1 < a, with x/y/u carried) and a
// branching controller fed back from the datapath comparator — the full
// controller-datapath interaction the paper's introduction motivates.
hls::Dfg MakeDiffeqLoopDfg(int width);
BenchmarkDesign BuildDiffeqLoop(int width = 4);

// All three, in the paper's Table 2 order.
std::vector<BenchmarkDesign> BuildAll(int width = 4);

// Name -> canned-build dispatch over every design above ("diffeq",
// "facet", "poly", "diffeq-loop", "ewf" — the names `pfdtool list`
// prints). Throws pfd::Error for an unknown name; shared by the CLI and
// the pfdd service so both resolve requests identically.
BenchmarkDesign BuildDesignByName(const std::string& name, int width = 4);

// The names BuildDesignByName accepts, space-separated (usage strings).
extern const char kDesignNameList[];

}  // namespace pfd::designs
