#include "tpg/lfsr.hpp"

#include "base/error.hpp"

namespace pfd::tpg {

Word3 PackBit(std::span<const std::uint32_t> values, int bit) {
  PFD_CHECK_MSG(!values.empty(), "PackBit needs at least one value");
  Word3 w{0, ~0ULL};
  for (int lane = 0; lane < 64; ++lane) {
    const std::uint32_t v =
        values[static_cast<std::size_t>(lane) < values.size() ? lane
                                                              : values.size() - 1];
    if (((v >> bit) & 1u) != 0) w.val |= 1ULL << lane;
  }
  return w;
}

}  // namespace pfd::tpg
