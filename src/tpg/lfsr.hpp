// Test pattern generation (TPGR).
//
// The paper's Section 5 detection pre-pass drives the datapath data inputs
// from a pseudorandom TPGR, and Table 3 evaluates power consistency across
// three TPGR seeds (the third deliberately "almost all 0s"). This module
// implements the TPGR as a 32-bit maximal-length Galois LFSR.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/bitvec.hpp"
#include "base/logic.hpp"

namespace pfd::tpg {

// 32-bit Galois LFSR, taps x^32 + x^22 + x^2 + x + 1 (maximal length).
class Lfsr {
 public:
  explicit Lfsr(std::uint32_t seed) : state_(seed == 0 ? 1u : seed) {}

  std::uint32_t state() const { return state_; }

  // Advances one step and returns the emitted bit.
  std::uint32_t NextBit() {
    const std::uint32_t out = state_ & 1u;
    state_ >>= 1;
    if (out != 0) state_ ^= kTaps;
    return out;
  }

  // Emits n bits, LSB first.
  std::uint32_t NextBits(int n) {
    std::uint32_t v = 0;
    for (int i = 0; i < n; ++i) v |= NextBit() << i;
    return v;
  }

 private:
  static constexpr std::uint32_t kTaps = 0x80200003u;
  std::uint32_t state_;
};

// TPGR facade: a seeded LFSR that deals out fixed-width operands for the
// datapath data inputs, pattern by pattern.
class Tpgr {
 public:
  explicit Tpgr(std::uint32_t seed) : lfsr_(seed) {}

  BitVec NextOperand(int width) { return {width, lfsr_.NextBits(width)}; }

  // One test pattern = one operand per data input (widths given). Patterns
  // are dealt in input order, matching how a serial-scan TPGR would fill
  // the inputs.
  std::vector<BitVec> NextPattern(std::span<const int> widths) {
    std::vector<BitVec> p;
    p.reserve(widths.size());
    for (int w : widths) p.push_back(NextOperand(w));
    return p;
  }

 private:
  Lfsr lfsr_;
};

// The three seeds used throughout the experiments; seed 3 reproduces the
// paper's "almost all 0s" test set.
inline constexpr std::uint32_t kTestSetSeed1 = 0xACE1ACE1u;
inline constexpr std::uint32_t kTestSetSeed2 = 0x5EED5EEDu;
inline constexpr std::uint32_t kTestSetSeed3 = 0x00000001u;

// Packs bit `bit` of values[lane] into lane `lane` of a fully-known Word3.
// Lanes beyond values.size() replicate values.back() so that a short batch
// still drives every lane with defined data.
Word3 PackBit(std::span<const std::uint32_t> values, int bit);

}  // namespace pfd::tpg
