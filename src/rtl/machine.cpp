#include "rtl/machine.hpp"

#include "rtl/expr.hpp"

namespace pfd::rtl {

SymbolicDomain::Value SymbolicDomain::Op(FuKind kind, Value a, Value b) const {
  return pool->Apply(kind, a, b);
}

SymbolicDomain::Value SymbolicDomain::FromConst(const BitVec& v) const {
  return pool->Const(v);
}

SymbolicDomain::Value SymbolicDomain::RegInit(std::uint32_t reg,
                                              int width) const {
  return pool->Init(reg, width);
}

}  // namespace pfd::rtl
