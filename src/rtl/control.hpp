// Control words and the controller's behavioural specification.
//
// A ControlWord is what the controller presents to the datapath during one
// clock cycle: one load bit per register load line and one binary select
// value per mux. A ControlSpec is the *specification* the FSM is synthesized
// from: for every control state it gives the required load bits and the mux
// selects, where selects may be don't-care in states where the mux is
// inactive (Section 3.1 of the paper — these don't-cares are exactly where
// SFR faults live).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace pfd::rtl {

struct ControlWord {
  std::vector<std::uint8_t> load;       // per load line, 0/1
  std::vector<std::uint32_t> select;    // per mux, binary select value

  friend bool operator==(const ControlWord&, const ControlWord&) = default;
};

// Per-state control requirements, with optional (don't-care) selects.
struct StateControl {
  std::vector<std::uint8_t> load;                     // fully specified
  std::vector<std::optional<std::uint32_t>> select;   // nullopt = don't care
};

// The controller's control-flow specification: a linear schedule
// RESET -> CS1 -> ... -> CSn -> HOLD (the HOLD state loops on itself and
// holds the outputs, like the paper's "HOLD OUTPUT" state). An asserted
// reset input returns the machine to RESET from any state.
struct ControlSpec {
  int num_load_lines = 0;
  int num_muxes = 0;
  std::vector<int> mux_select_bits;  // per mux
  std::vector<StateControl> states;  // index 0 = RESET, last = HOLD
  std::vector<std::string> state_names;

  int NumStates() const { return static_cast<int>(states.size()); }
  int ResetState() const { return 0; }
  int HoldState() const { return NumStates() - 1; }

  void Validate() const {
    PFD_CHECK_MSG(states.size() >= 2, "need at least RESET and HOLD states");
    PFD_CHECK_MSG(state_names.size() == states.size(), "state name arity");
    PFD_CHECK_MSG(static_cast<int>(mux_select_bits.size()) == num_muxes,
                  "mux select arity");
    for (const StateControl& sc : states) {
      PFD_CHECK_MSG(static_cast<int>(sc.load.size()) == num_load_lines,
                    "load arity");
      PFD_CHECK_MSG(static_cast<int>(sc.select.size()) == num_muxes,
                    "select arity");
      for (int m = 0; m < num_muxes; ++m) {
        if (sc.select[m]) {
          PFD_CHECK_MSG(*sc.select[m] < (1u << mux_select_bits[m]),
                        "select value exceeds select width");
        }
      }
    }
  }
};

// Maps controller load lines to datapath registers. The paper's Facet
// example has register groups sharing a single load line; the HLS pass
// merges identical load columns, so the mapping is one line -> many regs.
struct LoadLineMap {
  // regs_of_line[line] = registers driven by that load line.
  std::vector<std::vector<std::uint32_t>> regs_of_line;

  int NumLines() const { return static_cast<int>(regs_of_line.size()); }

  // Expands a per-line load vector into a per-register load vector.
  std::vector<std::uint8_t> ExpandLoads(
      const std::vector<std::uint8_t>& line_loads, std::size_t num_regs) const {
    PFD_CHECK_MSG(line_loads.size() == regs_of_line.size(),
                  "load line arity mismatch");
    std::vector<std::uint8_t> reg_loads(num_regs, 0);
    for (std::size_t l = 0; l < regs_of_line.size(); ++l) {
      for (std::uint32_t r : regs_of_line[l]) reg_loads[r] = line_loads[l];
    }
    return reg_loads;
  }
};

}  // namespace pfd::rtl
