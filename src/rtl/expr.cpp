#include "rtl/expr.hpp"

#include <sstream>

namespace pfd::rtl {

namespace {
bool IsCommutative(FuKind kind) {
  switch (kind) {
    case FuKind::kAdd:
    case FuKind::kMul:
    case FuKind::kAnd:
    case FuKind::kOr:
    case FuKind::kXor:
      return true;
    default:
      return false;
  }
}

ExprPool::Op OpOf(FuKind kind) {
  switch (kind) {
    case FuKind::kAdd: return ExprPool::Op::kAdd;
    case FuKind::kSub: return ExprPool::Op::kSub;
    case FuKind::kMul: return ExprPool::Op::kMul;
    case FuKind::kLess: return ExprPool::Op::kLess;
    case FuKind::kAnd: return ExprPool::Op::kAnd;
    case FuKind::kOr: return ExprPool::Op::kOr;
    case FuKind::kXor: return ExprPool::Op::kXor;
  }
  PFD_CHECK(false);
  return ExprPool::Op::kAdd;
}

}  // namespace

ExprRef ExprPool::Apply(FuKind kind, ExprRef a, ExprRef b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  PFD_CHECK_MSG(na.width == nb.width, "expr operand width mismatch");
  if (na.op == Op::kConst && nb.op == Op::kConst) {
    return Const(EvalFuConcrete(kind, BitVec(na.width, na.aux),
                                BitVec(nb.width, nb.aux)));
  }
  if (IsCommutative(kind) && b < a) {
    std::swap(a, b);
  }
  const int out_width = FuResultWidth(kind, na.width);
  return Intern({OpOf(kind), static_cast<std::uint8_t>(out_width), a, b, 0});
}

std::string ExprPool::ToString(ExprRef r) const {
  const Node& n = nodes_[r];
  std::ostringstream os;
  switch (n.op) {
    case Op::kVar: os << "v" << n.aux; break;
    case Op::kInit: os << "init(r" << n.aux << ")"; break;
    case Op::kConst: os << n.aux; break;
    case Op::kAdd: os << '(' << ToString(n.a) << " + " << ToString(n.b) << ')'; break;
    case Op::kSub: os << '(' << ToString(n.a) << " - " << ToString(n.b) << ')'; break;
    case Op::kMul: os << '(' << ToString(n.a) << " * " << ToString(n.b) << ')'; break;
    case Op::kLess: os << '(' << ToString(n.a) << " < " << ToString(n.b) << ')'; break;
    case Op::kAnd: os << '(' << ToString(n.a) << " & " << ToString(n.b) << ')'; break;
    case Op::kOr: os << '(' << ToString(n.a) << " | " << ToString(n.b) << ')'; break;
    case Op::kXor: os << '(' << ToString(n.a) << " ^ " << ToString(n.b) << ')'; break;
  }
  return os.str();
}

}  // namespace pfd::rtl
