// RTL simulator, templated over a value domain.
//
// The same interpreter runs:
//   * ConcreteDomain  — BitVec values; golden functional model, cross-checked
//     against the gate-level elaboration in tests;
//   * SymbolicDomain  — hash-consed expression ids; drives the sound SFR
//     equality check in the analysis module.
//
// The machine itself is controller-agnostic: each Step takes an explicit
// ControlWord (per-REGISTER loads + per-mux selects). Feeding it the control
// trace recorded from a faulty gate-level controller simulates exactly the
// paper's scenario of a faulty-but-functional system.
#pragma once

#include <algorithm>
#include <vector>

#include "rtl/control.hpp"
#include "rtl/datapath.hpp"

namespace pfd::rtl {

struct ConcreteDomain {
  using Value = BitVec;
  // Boot-up register contents; 0 by default (the gate level powers up at X,
  // so cross-checks only compare values after the first load).
  std::uint32_t boot_value = 0;

  Value Op(FuKind kind, const Value& a, const Value& b) const {
    return EvalFuConcrete(kind, a, b);
  }
  Value FromConst(const BitVec& v) const { return v; }
  Value RegInit(std::uint32_t /*reg*/, int width) const {
    return {width, boot_value};
  }
};

class ExprPool;  // fwd; full type in rtl/expr.hpp

struct SymbolicDomain {
  using Value = std::uint32_t;  // ExprRef
  ExprPool* pool;

  Value Op(FuKind kind, Value a, Value b) const;
  Value FromConst(const BitVec& v) const;
  Value RegInit(std::uint32_t reg, int width) const;
};

template <typename Domain>
class Machine {
 public:
  using Value = typename Domain::Value;

  Machine(const Datapath& dp, Domain dom) : dp_(&dp), dom_(dom) {
    PFD_CHECK_MSG(dp.finalized(), "datapath not finalized");
    regs_.reserve(dp.regs().size());
    for (std::uint32_t r = 0; r < dp.regs().size(); ++r) {
      regs_.push_back(dom_.RegInit(r, dp.regs()[r].width));
    }
    inputs_.resize(dp.inputs().size());
    mux_val_.resize(dp.muxes().size());
    fu_val_.resize(dp.fus().size());
    consts_.reserve(dp.constants().size());
    for (const Constant& c : dp.constants()) {
      consts_.push_back(dom_.FromConst(c.value));
    }
  }

  Domain& domain() { return dom_; }

  void SetInput(std::uint32_t port, Value v) {
    PFD_CHECK_MSG(port < inputs_.size(), "bad input port");
    inputs_[port] = v;
  }

  const Value& RegValue(std::uint32_t r) const { return regs_[r]; }
  void SetRegValue(std::uint32_t r, Value v) { regs_[r] = v; }

  // One clock cycle under the given control word (loads are per register;
  // use LoadLineMap::ExpandLoads when driving from controller lines).
  void Step(const ControlWord& cw) {
    PFD_CHECK_MSG(cw.load.size() == regs_.size(), "control word load arity");
    PFD_CHECK_MSG(cw.select.size() == mux_val_.size(),
                  "control word select arity");
    for (const EvalNode& n : dp_->EvalOrder()) {
      if (n.kind == EvalNode::Kind::kMux) {
        const Mux& m = dp_->muxes()[n.index];
        const std::uint32_t mask = (1u << m.SelectBits()) - 1u;
        const std::uint32_t sel = cw.select[n.index] & mask;
        const std::uint32_t idx = std::min<std::uint32_t>(
            sel, static_cast<std::uint32_t>(m.inputs.size()) - 1u);
        mux_val_[n.index] = Eval(m.inputs[idx]);
      } else {
        const Fu& f = dp_->fus()[n.index];
        fu_val_[n.index] = dom_.Op(f.kind, Eval(f.lhs), Eval(f.rhs));
      }
    }
    for (std::uint32_t r = 0; r < regs_.size(); ++r) {
      if (cw.load[r] != 0) {
        regs_[r] = Eval(dp_->regs()[r].input);
      }
    }
  }

  Value Output(std::uint32_t i) const {
    PFD_CHECK_MSG(i < dp_->outputs().size(), "bad output port");
    return EvalSettled(dp_->outputs()[i].source);
  }

  std::vector<Value> Outputs() const {
    std::vector<Value> out;
    out.reserve(dp_->outputs().size());
    for (std::uint32_t i = 0; i < dp_->outputs().size(); ++i) {
      out.push_back(Output(i));
    }
    return out;
  }

 private:
  // Value of a source using the mux/fu values settled by the last Step.
  Value EvalSettled(const Source& s) const {
    switch (s.kind) {
      case Source::Kind::kReg: return regs_[s.index];
      case Source::Kind::kMux: return mux_val_[s.index];
      case Source::Kind::kFu: return fu_val_[s.index];
      case Source::Kind::kInput: return inputs_[s.index];
      case Source::Kind::kConst: return consts_[s.index];
    }
    PFD_CHECK(false);
    return Value{};
  }
  Value Eval(const Source& s) const { return EvalSettled(s); }

  const Datapath* dp_;
  Domain dom_;
  std::vector<Value> regs_;
  std::vector<Value> inputs_;
  std::vector<Value> mux_val_;
  std::vector<Value> fu_val_;
  std::vector<Value> consts_;
};

using ConcreteMachine = Machine<ConcreteDomain>;
using SymbolicMachine = Machine<SymbolicDomain>;

}  // namespace pfd::rtl
