#include "rtl/datapath.hpp"

#include <sstream>

namespace pfd::rtl {

const char* FuKindName(FuKind kind) {
  switch (kind) {
    case FuKind::kAdd: return "ADD";
    case FuKind::kSub: return "SUB";
    case FuKind::kMul: return "MUL";
    case FuKind::kLess: return "LT";
    case FuKind::kAnd: return "AND";
    case FuKind::kOr: return "OR";
    case FuKind::kXor: return "XOR";
  }
  return "?";
}

int FuResultWidth(FuKind kind, int operand_width) {
  return kind == FuKind::kLess ? 1 : operand_width;
}

BitVec EvalFuConcrete(FuKind kind, const BitVec& a, const BitVec& b) {
  switch (kind) {
    case FuKind::kAdd: return Add(a, b);
    case FuKind::kSub: return Sub(a, b);
    case FuKind::kMul: return Mul(a, b);
    case FuKind::kLess: return LessThan(a, b);
    case FuKind::kAnd: return And(a, b);
    case FuKind::kOr: return Or(a, b);
    case FuKind::kXor: return Xor(a, b);
  }
  PFD_CHECK(false);
  return a;
}

int Mux::SelectBits() const {
  int bits = 0;
  while ((1u << bits) < inputs.size()) ++bits;
  return bits == 0 ? 1 : bits;  // even a 1-bit select for degenerate muxes
}

std::uint32_t Datapath::AddInput(std::string name, int width) {
  inputs_.push_back({std::move(name), width});
  finalized_ = false;
  return static_cast<std::uint32_t>(inputs_.size() - 1);
}

std::uint32_t Datapath::AddConstant(std::string name, BitVec value) {
  constants_.push_back({std::move(name), value});
  finalized_ = false;
  return static_cast<std::uint32_t>(constants_.size() - 1);
}

std::uint32_t Datapath::AddRegister(std::string name, int width) {
  regs_.push_back({std::move(name), width, Source{}});
  finalized_ = false;
  return static_cast<std::uint32_t>(regs_.size() - 1);
}

std::uint32_t Datapath::AddMux(std::string name, int width,
                               std::vector<Source> inputs) {
  PFD_CHECK_MSG(inputs.size() >= 2, "mux needs >= 2 inputs");
  muxes_.push_back({std::move(name), width, std::move(inputs)});
  finalized_ = false;
  return static_cast<std::uint32_t>(muxes_.size() - 1);
}

std::uint32_t Datapath::AddFu(std::string name, FuKind kind, int width,
                              Source lhs, Source rhs) {
  fus_.push_back({std::move(name), kind, width, lhs, rhs});
  finalized_ = false;
  return static_cast<std::uint32_t>(fus_.size() - 1);
}

void Datapath::SetRegisterInput(std::uint32_t reg, Source src) {
  PFD_CHECK_MSG(reg < regs_.size(), "bad register id");
  regs_[reg].input = src;
  finalized_ = false;
}

void Datapath::AddOutput(std::string name, Source src) {
  outputs_.push_back({std::move(name), src});
  finalized_ = false;
}

int Datapath::SourceWidth(const Source& s) const {
  switch (s.kind) {
    case Source::Kind::kReg:
      PFD_CHECK_MSG(s.index < regs_.size(), "dangling reg source");
      return regs_[s.index].width;
    case Source::Kind::kMux:
      PFD_CHECK_MSG(s.index < muxes_.size(), "dangling mux source");
      return muxes_[s.index].width;
    case Source::Kind::kFu:
      PFD_CHECK_MSG(s.index < fus_.size(), "dangling fu source");
      return FuResultWidth(fus_[s.index].kind, fus_[s.index].width);
    case Source::Kind::kInput:
      PFD_CHECK_MSG(s.index < inputs_.size(), "dangling input source");
      return inputs_[s.index].width;
    case Source::Kind::kConst:
      PFD_CHECK_MSG(s.index < constants_.size(), "dangling const source");
      return constants_[s.index].value.width();
  }
  return 0;
}

void Datapath::Finalize() {
  // Width checks.
  for (const Register& r : regs_) {
    PFD_CHECK_MSG(SourceWidth(r.input) == r.width,
                  "register input width mismatch: " + r.name);
  }
  for (const Mux& m : muxes_) {
    for (const Source& s : m.inputs) {
      PFD_CHECK_MSG(SourceWidth(s) == m.width,
                    "mux input width mismatch: " + m.name);
    }
  }
  for (const Fu& f : fus_) {
    PFD_CHECK_MSG(SourceWidth(f.lhs) == f.width && SourceWidth(f.rhs) == f.width,
                  "fu operand width mismatch: " + f.name);
  }
  for (const OutputPort& o : outputs_) {
    SourceWidth(o.source);  // checks dangling
  }

  // Topological order over the combinational nodes (muxes and FUs).
  // Node numbering: mux i -> i, fu j -> muxes_.size() + j.
  const std::size_t n = muxes_.size() + fus_.size();
  std::vector<std::vector<std::uint32_t>> succ(n);
  std::vector<std::uint32_t> indeg(n, 0);
  auto comb_node = [&](const Source& s) -> std::optional<std::uint32_t> {
    if (s.kind == Source::Kind::kMux) return s.index;
    if (s.kind == Source::Kind::kFu) {
      return static_cast<std::uint32_t>(muxes_.size()) + s.index;
    }
    return std::nullopt;
  };
  auto add_edge = [&](const Source& from, std::uint32_t to) {
    if (auto node = comb_node(from)) {
      succ[*node].push_back(to);
      ++indeg[to];
    }
  };
  for (std::uint32_t i = 0; i < muxes_.size(); ++i) {
    for (const Source& s : muxes_[i].inputs) add_edge(s, i);
  }
  for (std::uint32_t j = 0; j < fus_.size(); ++j) {
    const auto to = static_cast<std::uint32_t>(muxes_.size()) + j;
    add_edge(fus_[j].lhs, to);
    add_edge(fus_[j].rhs, to);
  }
  std::vector<std::uint32_t> ready;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  eval_order_.clear();
  while (!ready.empty()) {
    const std::uint32_t v = ready.back();
    ready.pop_back();
    if (v < muxes_.size()) {
      eval_order_.push_back({EvalNode::Kind::kMux, v});
    } else {
      eval_order_.push_back(
          {EvalNode::Kind::kFu,
           v - static_cast<std::uint32_t>(muxes_.size())});
    }
    for (std::uint32_t s : succ[v]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  PFD_CHECK_MSG(eval_order_.size() == n,
                "combinational cycle in datapath network");
  finalized_ = true;
}

std::string Datapath::Summary() const {
  std::ostringstream os;
  os << regs_.size() << " registers, " << muxes_.size() << " muxes, "
     << fus_.size() << " FUs, " << inputs_.size() << " inputs, "
     << constants_.size() << " constants, " << outputs_.size() << " outputs";
  return os.str();
}

}  // namespace pfd::rtl
