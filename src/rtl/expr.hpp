// Hash-consed symbolic expression DAG — the symbolic value domain of the
// RTL machine.
//
// The SFR/SFI decision (Section 3 of the paper) ultimately asks: does the
// computation the datapath performs under the *faulty* control trace produce
// the same outputs as under the fault-free trace, for every input? Symbolic
// simulation answers the common cases soundly and instantly: every register
// holds a structurally-normalized expression over the input variables and
// the registers' initial (boot-up) values; if the output expressions of the
// faulty and golden runs have the same node ids, the fault is SFR.
//
// Normalisations applied (sound, no approximation):
//   * hash-consing — structurally identical expressions share one id, so the
//     paper's "extra load serves simply to rewrite a variable unchanged"
//     case compares equal;
//   * commutative operand ordering for ADD/MUL/AND/OR/XOR;
//   * full constant folding via BitVec arithmetic.
//
// Structural *inequality* does not prove functional inequality, so the
// classification pipeline confirms non-equal cases with exhaustive (4-bit)
// or sampled gate-level simulation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/bitvec.hpp"
#include "base/error.hpp"
#include "rtl/datapath.hpp"

namespace pfd::rtl {

using ExprRef = std::uint32_t;

class ExprPool {
 public:
  enum class Op : std::uint8_t {
    kVar,    // aux = input variable id
    kInit,   // aux = register id (the register's unknown boot-up value)
    kConst,  // aux = constant value; width in width field
    kAdd, kSub, kMul, kLess, kAnd, kOr, kXor,
  };

  struct Node {
    Op op;
    std::uint8_t width;
    std::uint32_t a = 0;    // lhs (for binary ops)
    std::uint32_t b = 0;    // rhs
    std::uint32_t aux = 0;  // leaf payload

    friend bool operator==(const Node&, const Node&) = default;
  };

  ExprRef Var(std::uint32_t var_id, int width) {
    return Intern({Op::kVar, static_cast<std::uint8_t>(width), 0, 0, var_id});
  }
  ExprRef Init(std::uint32_t reg_id, int width) {
    return Intern({Op::kInit, static_cast<std::uint8_t>(width), 0, 0, reg_id});
  }
  ExprRef Const(const BitVec& v) {
    return Intern({Op::kConst, static_cast<std::uint8_t>(v.width()), 0, 0,
                   v.value()});
  }

  ExprRef Apply(FuKind kind, ExprRef a, ExprRef b);

  const Node& node(ExprRef r) const { return nodes_[r]; }
  std::size_t size() const { return nodes_.size(); }

  // Pretty-printer for diagnostics ("(a + (b * x))").
  std::string ToString(ExprRef r) const;

 private:
  struct NodeHash {
    std::size_t operator()(const Node& n) const {
      std::uint64_t h = static_cast<std::uint64_t>(n.op) * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<std::uint64_t>(n.a) << 1) + 0x517cc1b727220a95ULL * n.b;
      h ^= static_cast<std::uint64_t>(n.aux) * 0x2545f4914f6cdd1dULL;
      h ^= n.width;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  ExprRef Intern(const Node& n) {
    auto it = map_.find(n);
    if (it != map_.end()) return it->second;
    const auto id = static_cast<ExprRef>(nodes_.size());
    nodes_.push_back(n);
    map_.emplace(n, id);
    return id;
  }

  std::vector<Node> nodes_;
  std::unordered_map<Node, ExprRef, NodeHash> map_;
};

}  // namespace pfd::rtl
