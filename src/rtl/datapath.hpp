// Register-transfer-level datapath IR.
//
// This is the architecture style of Figure 4 of the paper (and of the
// SYNTEST synthesis system that produced its examples): load-enabled
// registers, n-way multiplexers feeding fixed-function units, and a
// controller that supplies one load line per register (possibly shared, see
// hls load-line merging) and binary-encoded select lines per mux.
//
// The datapath is purely structural here; behaviour comes from rtl::Machine
// (simulation over a value domain) and synth::ElaborateDatapath (gate-level
// implementation). All three must agree; tests/rtl cross-checks them.
//
// Faulty controllers can emit select values that exceed a mux's input count.
// To keep RTL and gate level in exact agreement, an n-input mux is defined
// as input[sel] for sel < n and input[n-1] otherwise (the gate-level tree
// pads to a power of two by replicating the last input).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "base/error.hpp"

namespace pfd::rtl {

enum class FuKind : std::uint8_t { kAdd, kSub, kMul, kLess, kAnd, kOr, kXor };
const char* FuKindName(FuKind kind);
// Result width for operands of width w (kLess compares to a single bit).
int FuResultWidth(FuKind kind, int operand_width);
// Concrete BitVec evaluation of a functional unit.
BitVec EvalFuConcrete(FuKind kind, const BitVec& a, const BitVec& b);

// Anything that can drive a data value.
struct Source {
  enum class Kind : std::uint8_t { kReg, kMux, kFu, kInput, kConst };
  Kind kind = Kind::kReg;
  std::uint32_t index = 0;

  static Source Reg(std::uint32_t i) { return {Kind::kReg, i}; }
  static Source Mux(std::uint32_t i) { return {Kind::kMux, i}; }
  static Source Fu(std::uint32_t i) { return {Kind::kFu, i}; }
  static Source Input(std::uint32_t i) { return {Kind::kInput, i}; }
  static Source Const(std::uint32_t i) { return {Kind::kConst, i}; }

  friend bool operator==(const Source&, const Source&) = default;
};

struct Register {
  std::string name;
  int width = 4;
  Source input;  // value loaded when the load line is 1
};

struct Mux {
  std::string name;
  int width = 4;
  std::vector<Source> inputs;  // >= 2
  int SelectBits() const;
};

struct Fu {
  std::string name;
  FuKind kind = FuKind::kAdd;
  int width = 4;  // operand width
  Source lhs;
  Source rhs;
};

struct InputPort {
  std::string name;
  int width = 4;
};

struct Constant {
  std::string name;
  BitVec value;
};

struct OutputPort {
  std::string name;
  Source source;  // typically a register
};

// One evaluation step of the combinational network (muxes + FUs) in
// dependency order.
struct EvalNode {
  enum class Kind : std::uint8_t { kMux, kFu };
  Kind kind;
  std::uint32_t index;
};

class Datapath {
 public:
  std::uint32_t AddInput(std::string name, int width);
  std::uint32_t AddConstant(std::string name, BitVec value);
  std::uint32_t AddRegister(std::string name, int width);
  std::uint32_t AddMux(std::string name, int width,
                       std::vector<Source> inputs);
  std::uint32_t AddFu(std::string name, FuKind kind, int width, Source lhs,
                      Source rhs);
  void SetRegisterInput(std::uint32_t reg, Source src);
  void AddOutput(std::string name, Source src);

  const std::vector<Register>& regs() const { return regs_; }
  const std::vector<Mux>& muxes() const { return muxes_; }
  const std::vector<Fu>& fus() const { return fus_; }
  const std::vector<InputPort>& inputs() const { return inputs_; }
  const std::vector<Constant>& constants() const { return constants_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  // Width of the value a source produces.
  int SourceWidth(const Source& s) const;

  // Checks structure (no dangling refs, width agreement, acyclic
  // combinational network) and computes the evaluation order. Must be
  // called after construction and before simulation/elaboration.
  void Finalize();
  bool finalized() const { return finalized_; }
  const std::vector<EvalNode>& EvalOrder() const {
    PFD_CHECK_MSG(finalized_, "Datapath::Finalize not called");
    return eval_order_;
  }

  std::string Summary() const;

 private:
  std::vector<Register> regs_;
  std::vector<Mux> muxes_;
  std::vector<Fu> fus_;
  std::vector<InputPort> inputs_;
  std::vector<Constant> constants_;
  std::vector<OutputPort> outputs_;
  std::vector<EvalNode> eval_order_;
  bool finalized_ = false;
};

}  // namespace pfd::rtl
