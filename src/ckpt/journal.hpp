// Durable campaign checkpointing: an append-only, crash-tolerant journal of
// completed fault-sim shards and Monte-Carlo power measurements, plus the
// resume engine that replays them.
//
// Format (all integers little-endian, fixed width):
//
//   header (40 bytes, written by Bind on a fresh journal):
//     [0..7]   magic "pfdckpt1"
//     [8..11]  u32 format version (kFormatVersion)
//     [12]     u8 engine kind (fault::FaultSimEngine)
//     [13..15] zero padding
//     [16..23] u64 Netlist::StructuralHash of the design under test
//     [24..31] u64 fault::StimulusDigest of the stimulus spec
//     [32..39] u64 FNV-1a checksum of bytes [0..31]
//
//   records, back to back until EOF:
//     [u32 kind][u32 payload_len][payload][u64 FNV-1a over kind+len+payload]
//
//   kind 1 (fault span): u64 first fault index, u32 fault count, then per
//     fault a u8 FaultStatus and an i32 first-detect pattern.
//   kind 2 (power measure): i64 ordinal (-1 = fault-free baseline, else the
//     index in the SFR grading sequence), u64 MC-config digest, five f64s
//     (datapath/controller/interface/total uW, ci95_rel), u32 batches,
//     u64 patterns.
//
// Durability contract: every append is fflush()ed, so a SIGKILL'd process
// leaves at most one torn record at the tail (the bytes an interrupted
// fwrite managed to push). Resume validates records front to back and
// truncates the file at the first bad checksum / short frame — the torn
// tail rule. fsync durability across power loss is explicitly out of
// scope: the journal protects against process death, not kernel death.
//
// Determinism contract: engines append records in unit-index order (via the
// exec::ParallelForGuarded ordered-completion hook), so journal contents
// are independent of thread count, and a resumed campaign produces output
// byte-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace pfd::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr char kMagic[8] = {'p', 'f', 'd', 'c', 'k', 'p', 't', '1'};
inline constexpr std::size_t kHeaderBytes = 40;

// What a journal is bound to. A resume refuses (pfd::Error) when any field
// disagrees with the header on disk; a fresh journal writes these into the
// header. `engine` is the numeric fault::FaultSimEngine value (kept as a
// raw byte here so ckpt does not depend on the fault library).
struct Binding {
  std::uint64_t netlist_hash = 0;
  std::uint64_t stimulus_hash = 0;
  std::uint8_t engine = 0;
};

// A replayed kind-1 record: per-fault statuses for a contiguous span.
struct FaultSpan {
  std::uint64_t begin = 0;
  std::vector<std::uint8_t> status;        // fault::FaultStatus values
  std::vector<std::int32_t> first_detect;  // parallel to `status`
};

// A replayed (or appended) kind-2 record.
struct PowerRecord {
  std::int64_t ordinal = -1;  // -1 = baseline, else SFR sequence index
  std::uint64_t config_digest = 0;
  double datapath_uw = 0.0;
  double controller_uw = 0.0;
  double interface_uw = 0.0;
  double total_uw = 0.0;
  double ci95_rel = 0.0;
  std::uint32_t batches = 0;
  std::uint64_t patterns = 0;
};

class Journal {
 public:
  // Opens `path`. Fresh mode (resume = false) truncates any existing file
  // and starts an empty journal. Resume mode scans an existing journal:
  // throws pfd::Error when the file is missing or its header is not a
  // valid pfd checkpoint journal (bad magic, bad header checksum,
  // unsupported format version); a corrupt or incomplete record tail is
  // truncated to the last valid record (counted in
  // ckpt.torn_tail_truncations) and the surviving records are held for
  // replay until Bind() validates them.
  static std::unique_ptr<Journal> Open(const std::string& path, bool resume);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Fresh journal: writes the provenance header. Resume: validates the
  // on-disk header against `binding`, throwing pfd::Error naming the first
  // mismatching field (design, stimulus, or engine). Appends and replay
  // accessors require a successful Bind.
  void Bind(const Binding& binding);
  bool bound() const { return bound_; }

  // Appends never throw: an I/O failure marks the journal broken (flight
  // event + ckpt.append_failures counter) and the campaign carries on
  // without checkpoints. Both appends are idempotent per key (span begin /
  // power ordinal), so engines may call them uniformly for replayed and
  // freshly computed units.
  void AppendFaultSpan(std::uint64_t begin,
                       const std::uint8_t* status,
                       const std::int32_t* first_detect,
                       std::size_t count) noexcept;
  void AppendPower(const PowerRecord& rec) noexcept;

  // Replayed records, valid after a successful resume Bind. fault_spans()
  // is in journal (= unit index) order. FindPower returns nullptr when the
  // ordinal has no record; it throws pfd::Error when a record exists but
  // its MC-config digest disagrees — replaying power numbers measured
  // under a different configuration would silently corrupt the report.
  const std::vector<FaultSpan>& fault_spans() const { return spans_; }
  const PowerRecord* FindPower(std::int64_t ordinal,
                               std::uint64_t config_digest) const;

  const std::string& path() const { return path_; }
  std::uint64_t records_written() const;
  std::uint64_t records_replayed() const { return records_replayed_; }
  std::uint64_t torn_tail_truncations() const { return torn_truncations_; }
  bool broken() const;

  // Flushes and closes the underlying file early (the destructor also
  // does). Safe to call twice.
  void Close();

 private:
  Journal() = default;

  void AppendRecord(std::uint32_t kind, const std::vector<std::uint8_t>& payload);
  void MarkBroken(const char* what);

  std::string path_;
  std::FILE* file_ = nullptr;  // append position; null once closed/broken
  bool resume_ = false;
  bool bound_ = false;
  bool broken_ = false;
  Binding header_;  // resume: parsed from disk; fresh: set by Bind

  // Replayed state (resume only; exposed after Bind).
  std::vector<FaultSpan> spans_;
  std::map<std::int64_t, PowerRecord> power_;
  std::uint64_t records_replayed_ = 0;
  std::uint64_t torn_truncations_ = 0;

  // Idempotency keys for appends (seeded from the replayed records).
  std::set<std::uint64_t> span_begins_seen_;
  std::set<std::int64_t> power_ordinals_seen_;
  std::uint64_t records_written_ = 0;

  mutable std::mutex mu_;
};

}  // namespace pfd::ckpt
