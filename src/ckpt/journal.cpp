#include "ckpt/journal.hpp"

#include <cstring>

#include "base/error.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace pfd::ckpt {

namespace {

constexpr std::uint32_t kKindFaultSpan = 1;
constexpr std::uint32_t kKindPower = 2;
// Frame overhead: u32 kind + u32 payload_len + u64 checksum.
constexpr std::size_t kFrameBytes = 16;
// Per-fault payload: u8 status + i32 first_detect.
constexpr std::size_t kPerFaultBytes = 5;
constexpr std::size_t kFaultSpanFixedBytes = 12;  // u64 begin + u32 count
constexpr std::size_t kPowerPayloadBytes = 68;

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double GetF64(const std::uint8_t* p) {
  const std::uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void BumpCounter(const char* name, std::uint64_t by = 1) {
  if (obs::Enabled()) obs::Registry::Global().GetCounter(name).Add(by);
}

void Flight(const std::string& name, std::string detail) {
  if (obs::FlightEnabled()) {
    obs::RecordFlight(obs::FlightKind::kCheckpoint, name, std::move(detail));
  }
}

std::string Hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::vector<std::uint8_t> SerializeHeader(const Binding& b) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  out.insert(out.end(), kMagic, kMagic + 8);
  PutU32(out, kFormatVersion);
  out.push_back(b.engine);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  PutU64(out, b.netlist_hash);
  PutU64(out, b.stimulus_hash);
  PutU64(out, Fnv1a(out.data(), out.size()));
  return out;
}

std::vector<std::uint8_t> ReadAll(const std::string& path, std::FILE* f) {
  std::vector<std::uint8_t> bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  if (std::ferror(f)) {
    throw Error("error reading checkpoint journal '" + path + "'");
  }
  return bytes;
}

}  // namespace

std::unique_ptr<Journal> Journal::Open(const std::string& path, bool resume) {
  std::unique_ptr<Journal> j(new Journal());
  j->path_ = path;
  j->resume_ = resume;

  if (!resume) {
    j->file_ = std::fopen(path.c_str(), "wb");
    if (j->file_ == nullptr) {
      throw Error("cannot open checkpoint journal '" + path +
                  "' for writing");
    }
    Flight("ckpt.open", "fresh path=" + path);
    return j;
  }

  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    throw Error("cannot resume: checkpoint journal '" + path +
                "' does not exist or is unreadable");
  }
  std::vector<std::uint8_t> bytes;
  try {
    bytes = ReadAll(path, in);
  } catch (...) {
    std::fclose(in);
    throw;
  }
  std::fclose(in);

  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, 8) != 0) {
    throw Error("'" + path + "' is not a pfd checkpoint journal");
  }
  if (GetU64(bytes.data() + 32) != Fnv1a(bytes.data(), 32)) {
    throw Error("checkpoint journal '" + path +
                "' has a corrupt header (checksum mismatch)");
  }
  const std::uint32_t version = GetU32(bytes.data() + 8);
  if (version != kFormatVersion) {
    throw Error("checkpoint journal '" + path + "' has format version " +
                std::to_string(version) + "; this build reads version " +
                std::to_string(kFormatVersion));
  }
  j->header_.engine = bytes[12];
  j->header_.netlist_hash = GetU64(bytes.data() + 16);
  j->header_.stimulus_hash = GetU64(bytes.data() + 24);

  // Walk the record stream front to back. The first bad frame — short,
  // oversized length field, or checksum mismatch — marks the torn tail;
  // everything before it replays. A frame whose checksum verifies but
  // whose payload does not parse is writer corruption, not a torn tail:
  // refuse rather than guess (never silently mis-replay).
  std::size_t off = kHeaderBytes;
  std::size_t valid_end = kHeaderBytes;
  bool torn = false;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameBytes) {
      torn = true;
      break;
    }
    const std::uint32_t kind = GetU32(bytes.data() + off);
    const std::uint64_t len = GetU32(bytes.data() + off + 4);
    if (len > bytes.size() - off - kFrameBytes) {
      torn = true;
      break;
    }
    const std::uint8_t* payload = bytes.data() + off + 8;
    if (GetU64(payload + len) != Fnv1a(bytes.data() + off, 8 + len)) {
      torn = true;
      break;
    }
    const auto corrupt = [&](const std::string& what) {
      return Error("checkpoint journal '" + path + "': " + what +
                   " (record at byte " + std::to_string(off) + ")");
    };
    if (kind == kKindFaultSpan) {
      if (len < kFaultSpanFixedBytes) throw corrupt("short fault-span record");
      FaultSpan span;
      span.begin = GetU64(payload);
      const std::uint32_t count = GetU32(payload + 8);
      if (len != kFaultSpanFixedBytes +
                     static_cast<std::uint64_t>(count) * kPerFaultBytes) {
        throw corrupt("fault-span length disagrees with its fault count");
      }
      span.status.resize(count);
      span.first_detect.resize(count);
      const std::uint8_t* per = payload + kFaultSpanFixedBytes;
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t s = per[i * kPerFaultBytes];
        // 0..2 = kUndetected/kDetected/kPotentiallyDetected; kNotRun is
        // never journaled, so anything else is corruption.
        if (s > 2) throw corrupt("invalid fault status value");
        span.status[i] = s;
        span.first_detect[i] = static_cast<std::int32_t>(
            GetU32(per + i * kPerFaultBytes + 1));
      }
      if (!j->span_begins_seen_.insert(span.begin).second) {
        throw corrupt("duplicate fault-span record");
      }
      j->spans_.push_back(std::move(span));
    } else if (kind == kKindPower) {
      if (len != kPowerPayloadBytes) throw corrupt("bad power-record length");
      PowerRecord rec;
      rec.ordinal = static_cast<std::int64_t>(GetU64(payload));
      rec.config_digest = GetU64(payload + 8);
      rec.datapath_uw = GetF64(payload + 16);
      rec.controller_uw = GetF64(payload + 24);
      rec.interface_uw = GetF64(payload + 32);
      rec.total_uw = GetF64(payload + 40);
      rec.ci95_rel = GetF64(payload + 48);
      rec.batches = GetU32(payload + 56);
      rec.patterns = GetU64(payload + 60);
      if (!j->power_ordinals_seen_.insert(rec.ordinal).second) {
        throw corrupt("duplicate power record");
      }
      j->power_[rec.ordinal] = rec;
    } else {
      throw corrupt("unknown record kind " + std::to_string(kind));
    }
    ++j->records_replayed_;
    valid_end = off + kFrameBytes + len;
    off = valid_end;
  }

  if (torn) {
    ++j->torn_truncations_;
    BumpCounter("ckpt.torn_tail_truncations");
    Flight("ckpt.torn_tail",
           "truncated '" + path + "' from " + std::to_string(bytes.size()) +
               " to " + std::to_string(valid_end) + " bytes");
    // Truncate by rewriting the valid prefix; a crash mid-rewrite just
    // recreates a torn tail for the next resume to cut again.
    j->file_ = std::fopen(path.c_str(), "wb");
    if (j->file_ == nullptr ||
        std::fwrite(bytes.data(), 1, valid_end, j->file_) != valid_end ||
        std::fflush(j->file_) != 0) {
      if (j->file_ != nullptr) std::fclose(j->file_);
      j->file_ = nullptr;
      throw Error("cannot truncate torn tail of checkpoint journal '" +
                  path + "'");
    }
  } else {
    j->file_ = std::fopen(path.c_str(), "ab");
    if (j->file_ == nullptr) {
      throw Error("cannot open checkpoint journal '" + path +
                  "' for appending");
    }
  }

  BumpCounter("ckpt.records_replayed", j->records_replayed_);
  Flight("ckpt.open", "resume path=" + path + " replayed=" +
                          std::to_string(j->records_replayed_) +
                          (torn ? " torn_tail=1" : ""));
  return j;
}

Journal::~Journal() { Close(); }

void Journal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void Journal::Bind(const Binding& binding) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bound_) return;
  if (resume_) {
    const auto refuse = [&](const std::string& field, std::uint64_t have,
                            std::uint64_t want) {
      throw Error("cannot resume from '" + path_ +
                  "': the journal was recorded for a different " + field +
                  " (journal " + Hex(have) + ", this run " + Hex(want) + ")");
    };
    if (header_.netlist_hash != binding.netlist_hash) {
      refuse("design (netlist structural hash)", header_.netlist_hash,
             binding.netlist_hash);
    }
    if (header_.stimulus_hash != binding.stimulus_hash) {
      refuse("stimulus (test-set digest)", header_.stimulus_hash,
             binding.stimulus_hash);
    }
    if (header_.engine != binding.engine) {
      throw Error("cannot resume from '" + path_ +
                  "': the journal was recorded with fault engine " +
                  std::to_string(header_.engine) + ", this run uses engine " +
                  std::to_string(binding.engine));
    }
  } else {
    header_ = binding;
    const std::vector<std::uint8_t> header = SerializeHeader(binding);
    if (file_ == nullptr ||
        std::fwrite(header.data(), 1, header.size(), file_) !=
            header.size() ||
        std::fflush(file_) != 0) {
      throw Error("cannot write checkpoint journal header to '" + path_ +
                  "'");
    }
  }
  bound_ = true;
  Flight("ckpt.bind", std::string(resume_ ? "resume" : "fresh") +
                          " nl=" + Hex(header_.netlist_hash) +
                          " stim=" + Hex(header_.stimulus_hash) +
                          " engine=" + std::to_string(header_.engine));
}

void Journal::AppendRecord(std::uint32_t kind,
                           const std::vector<std::uint8_t>& payload) {
  // Caller holds mu_ and has checked bound_/broken_/file_.
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameBytes + payload.size());
  PutU32(frame, kind);
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutU64(frame, Fnv1a(frame.data(), frame.size()));

  const bool obs_on = obs::Enabled();
  const double t0 = obs_on ? obs::NowMicros() : 0.0;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    MarkBroken("append failed");
    return;
  }
  ++records_written_;
  if (obs_on) {
    obs::Registry::Global().GetCounter("ckpt.records_written").Add(1);
    obs::Registry::Global()
        .GetHistogram("ckpt.flush_us")
        .RecordDouble(obs::NowMicros() - t0);
  }
}

void Journal::MarkBroken(const char* what) {
  // Caller holds mu_. A broken journal must never fail the campaign: the
  // run carries on without checkpoints, the flight recorder keeps the why.
  broken_ = true;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  BumpCounter("ckpt.append_failures");
  Flight("ckpt.broken", std::string(what) + " path=" + path_);
}

void Journal::AppendFaultSpan(std::uint64_t begin, const std::uint8_t* status,
                              const std::int32_t* first_detect,
                              std::size_t count) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bound_ || broken_ || file_ == nullptr || count == 0) return;
  if (!span_begins_seen_.insert(begin).second) return;  // replayed already
  std::vector<std::uint8_t> payload;
  payload.reserve(kFaultSpanFixedBytes + count * kPerFaultBytes);
  PutU64(payload, begin);
  PutU32(payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    payload.push_back(status[i]);
    PutU32(payload, static_cast<std::uint32_t>(first_detect[i]));
  }
  AppendRecord(kKindFaultSpan, payload);
}

void Journal::AppendPower(const PowerRecord& rec) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bound_ || broken_ || file_ == nullptr) return;
  if (!power_ordinals_seen_.insert(rec.ordinal).second) return;
  std::vector<std::uint8_t> payload;
  payload.reserve(kPowerPayloadBytes);
  PutU64(payload, static_cast<std::uint64_t>(rec.ordinal));
  PutU64(payload, rec.config_digest);
  PutF64(payload, rec.datapath_uw);
  PutF64(payload, rec.controller_uw);
  PutF64(payload, rec.interface_uw);
  PutF64(payload, rec.total_uw);
  PutF64(payload, rec.ci95_rel);
  PutU32(payload, rec.batches);
  PutU64(payload, rec.patterns);
  AppendRecord(kKindPower, payload);
}

const PowerRecord* Journal::FindPower(std::int64_t ordinal,
                                      std::uint64_t config_digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = power_.find(ordinal);
  if (it == power_.end()) return nullptr;
  if (it->second.config_digest != config_digest) {
    throw Error("checkpoint journal '" + path_ + "' holds a power record " +
                "for ordinal " + std::to_string(ordinal) +
                " measured under a different Monte-Carlo configuration (" +
                Hex(it->second.config_digest) + " vs " + Hex(config_digest) +
                ")");
  }
  return &it->second;
}

std::uint64_t Journal::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_written_;
}

bool Journal::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

}  // namespace pfd::ckpt
