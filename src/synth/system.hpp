// Full-system assembly: synthesized FSM controller + elaborated datapath,
// stitched at the control-line interface, in one netlist.
//
// This is the unit under test of the whole reproduction: an integrated,
// inseparable controller-datapath pair (Figure 1 of the paper). The System
// also carries everything downstream passes need: the behavioural control
// spec (for don't-care and lifespan analysis), the resolved control words of
// the synthesized controller, the test-plan geometry (schedule length,
// strobe cycles), and the clock-gating groups for power accounting.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_sim.hpp"
#include "netlist/netlist.hpp"
#include "rtl/control.hpp"
#include "rtl/datapath.hpp"
#include "synth/elaborate.hpp"
#include "synth/fsm.hpp"

namespace pfd::synth {

struct SynthOptions {
  DontCareFill fill = DontCareFill::kZero;
  OutputLogicStyle style = OutputLogicStyle::kSharedSop;
  StateEncoding encoding = StateEncoding::kBinary;
};

struct System {
  std::string name;
  netlist::Netlist nl;
  netlist::GateId reset = netlist::kNoGate;
  SynthOptions options;  // how the controller was synthesized

  // RTL view (owned copies; analysis passes replay traces on these).
  rtl::Datapath datapath;
  rtl::ControlSpec control_spec;
  rtl::LoadLineMap load_map;

  // Interface: controller output lines in MakeControlLines order.
  std::vector<ControlLineInfo> lines;
  std::vector<netlist::GateId> line_nets;
  std::vector<netlist::GateId> state_bits;
  ResolvedControl resolved;  // don't-cares filled by the synthesizer

  // Gate-level port map.
  std::vector<Bus> operand_bits;  // per rtl input port
  std::vector<Bus> output_nets;   // per rtl output port

  // Gated-clock groups: (load line net, DFFs it gates).
  std::vector<std::pair<netlist::GateId, std::vector<netlist::GateId>>>
      clock_gates;

  // While-loop systems: the controller branches from HOLD back to CS1 on a
  // datapath status line. Their control traces are data-dependent, so the
  // classification pipeline must not replay a single trace symbolically.
  bool has_feedback = false;
  netlist::GateId cond_sync = netlist::kNoGate;  // status synchronizer DFF
  // Extra pattern cycles granted so the integrated test exercises repeated
  // iterations (0 for linear systems).
  int loop_extra_cycles = 0;

  // Schedule geometry: cycle 0 boots (reset asserted), cycle 1 is the RESET
  // state, states advance linearly, and the machine sits in HOLD for the
  // last two cycles.
  int cycles_per_pattern = 0;
  std::vector<int> hold_cycles;  // within-pattern cycles spent in HOLD

  // The control state occupied during a given within-pattern cycle, or -1
  // for the boot cycle.
  int StateAtCycle(int cycle) const;

  // Integrated-test plan: observe the datapath outputs during HOLD (the
  // default observation policy; see DESIGN.md).
  fault::TestPlan MakeTestPlan() const;
  // Same but strobing every post-boot cycle (kEveryCycle policy).
  fault::TestPlan MakeEveryCyclePlan() const;
  // Controller-observation plan for the CFR check: strobe the control lines
  // on every cycle.
  fault::TestPlan MakeControllerPlan() const;

  // Expands per-line loads into the per-register ControlWord for a state.
  rtl::ControlWord ControlWordForState(int state) const;
};

// How a while-loop system's controller branches: from HOLD back to the
// first computation state while the datapath FU `cond_fu`'s LSB is 1.
struct SystemLoop {
  std::uint32_t cond_fu = 0;
  // Iterations the test schedule leaves room for beyond the first pass.
  int test_iterations = 2;
};

// Builds the complete system. The ControlSpec's load lines must match
// `load_map` (one spec load line per merged line).
System BuildSystem(std::string name, const rtl::Datapath& dp,
                   const rtl::ControlSpec& spec,
                   const rtl::LoadLineMap& load_map,
                   const SynthOptions& options = {},
                   const std::optional<SystemLoop>& loop = std::nullopt);

}  // namespace pfd::synth
