// FSM controller synthesis.
//
// The controller is a Moore machine with a synchronous reset input and a
// binary state encoding, implemented as two-level (SOP) next-state and
// output logic over the state register — the classic "finite state machine
// implementation" style the paper's COMPASS flow produced.
//
// Construction guarantees the paper's observation that "the synthesis method
// used for the finite state machine controllers did not allow redundancy"
// to be *checkable*: the pipeline verifies CFR-freedom by simulation rather
// than assuming it.
//
// Reset recovery: with reset asserted, every SOP next-state bit is either
// forced through a reset literal or killed by a NOT(reset) literal, so the
// machine reaches the RESET state even from the all-X boot state — this is
// what makes the first cycle of every test pattern well-defined.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/logic.hpp"
#include "netlist/netlist.hpp"
#include "rtl/control.hpp"
#include "synth/qm.hpp"

namespace pfd::synth {

// A conditional transition: in `state`, the machine goes to `taken_target`
// when the (synchronized) status input is 1, and to next_state[state]
// otherwise. Used for while-loop controllers (HOLD -> CS1 while the
// datapath's comparison holds).
struct FsmBranch {
  int state = 0;
  int taken_target = 0;
};

// Moore FSM with a linear-plus-reset structure (sufficient for the paper's
// RESET -> CS1..CSn -> HOLD schedules), optionally with one conditional
// transition driven by a datapath status line.
struct FsmSpec {
  int num_states = 0;
  int reset_state = 0;
  std::vector<int> next_state;             // applied when reset == 0
  std::optional<FsmBranch> branch;
  std::vector<std::vector<Trit>> outputs;  // [state][line]; kX = don't care
  std::vector<std::string> line_names;

  int StateBits() const {
    int bits = 1;
    while ((1 << bits) < num_states) ++bits;
    return bits;
  }
  void Validate() const;
};

// Gate-level implementation style of the Moore output logic.
//   kMinimizedSop — per-line Quine-McCluskey SOP with dedicated product
//     terms (two-level PLA columns, no term sharing);
//   kSharedSop   — per-line QM SOP with identical product terms shared
//     across lines (PLA with a shared AND plane);
//   kStateDecoder — a shared state decoder (one minterm cell per reachable
//     state) with per-line OR trees, the ROM-style controller many 1990s
//     flows emitted.
// All see the same (possibly don't-care-filled) state table; they differ in
// how faults map onto control-line behaviour.
enum class OutputLogicStyle : std::uint8_t {
  kMinimizedSop,
  kSharedSop,
  kStateDecoder,
};

// State-register encoding.
//   kBinary — minimal-width binary counter codes;
//   kGray   — binary-reflected Gray codes (one state bit flips per linear
//             transition; a low-power assignment in the spirit of the
//             Benini/DeMicheli work the paper cites);
//   kOneHot — one flip-flop per state with directly wired shift-style
//             next-state logic (QM-free; the common 1990s FPGA/ASIC
//             controller style).
enum class StateEncoding : std::uint8_t { kBinary, kGray, kOneHot };

struct SynthesizedFsm {
  std::vector<netlist::GateId> state_bits;  // DFF outputs, LSB first
  std::vector<netlist::GateId> line_nets;   // one net per output line
  // Branching controllers only: the synchronizer DFF for the datapath
  // status line. Its D pin is left for the system assembler to connect
  // (netlist::Netlist::ConnectDff) once the datapath exists.
  netlist::GateId cond_sync = netlist::kNoGate;
  // Moore outputs of the *synthesized* machine: don't-cares filled by the
  // minimiser. resolved_outputs[state][line] in {0,1}.
  std::vector<std::vector<std::uint8_t>> resolved_outputs;
  // SOP covers, for reporting/inspection.
  std::vector<std::vector<Cube>> output_sops;      // per line
  std::vector<std::vector<Cube>> next_state_sops;  // per state bit
  std::size_t gates_created = 0;
};

// Synthesizes the FSM into `nl` (all gates tagged kController), driven by
// the given reset primary input.
SynthesizedFsm SynthesizeFsm(
    netlist::Netlist& nl, const FsmSpec& spec, netlist::GateId reset_input,
    OutputLogicStyle style = OutputLogicStyle::kMinimizedSop,
    StateEncoding encoding = StateEncoding::kBinary);

// --- control-line bookkeeping ---------------------------------------------

// What each controller output line drives in the datapath.
struct ControlLineInfo {
  enum class Kind : std::uint8_t { kLoad, kSelectBit };
  Kind kind = Kind::kLoad;
  std::uint32_t index = 0;  // load line index, or mux index
  int bit = 0;              // select bit (kSelectBit only)
  std::string name;         // "LD3", "MS2.1", ...
};

// Line order: all load lines (paper's REGx lines), then every mux's select
// bits (paper's MSx lines), LSB first.
std::vector<ControlLineInfo> MakeControlLines(const rtl::ControlSpec& spec);

// How the controller's don't-care select outputs are filled before logic
// synthesis. The paper's controllers output concrete values in don't-care
// steps ("depending on how the controller was synthesized, the select lines
// will be either 0s or 1s") — kZero models that: unspecified selects become
// hard 0s in the state table and only unused state codes remain don't-care
// for the minimiser. kMinimizer hands the full don't-care set to QM instead
// (maximal logic sharing, but control lines lose the per-state structure
// that SFR select faults flip).
enum class DontCareFill : std::uint8_t { kZero, kMinimizer };

// Maps the behavioural ControlSpec onto an FsmSpec over those lines
// (RESET = state 0 ... HOLD = last state, HOLD self-loops).
FsmSpec BuildFsmSpec(const rtl::ControlSpec& spec,
                     DontCareFill fill = DontCareFill::kZero);

// Resolved per-state control words (per load *line*, not per register) of a
// synthesized controller, ready to drive rtl::Machine via
// LoadLineMap::ExpandLoads.
struct ResolvedControl {
  // [state] -> (line loads, mux selects)
  std::vector<std::vector<std::uint8_t>> line_loads;
  std::vector<std::vector<std::uint32_t>> selects;
};

ResolvedControl ResolveControl(const rtl::ControlSpec& spec,
                               const std::vector<ControlLineInfo>& lines,
                               const SynthesizedFsm& fsm);

}  // namespace pfd::synth
