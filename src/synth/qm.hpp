// Two-level logic minimisation (Quine–McCluskey with a greedy/essential
// prime cover).
//
// The FSM controller's next-state and output logic is specified as truth
// tables with don't-cares: unused state codes, and mux select lines in
// states where the mux is inactive (Section 3.1). The minimiser fills those
// don't-cares however it likes for minimum literal count — deliberately NOT
// power-aware, reproducing the paper's setup ("we purposely did not" fill
// don't-cares to optimise power).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/logic.hpp"

namespace pfd::synth {

// A product term over `num_inputs` variables. For each bit i set in `mask`,
// the input must equal bit i of `value` (value is a subset of mask); bits
// outside the mask are free.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;

  friend bool operator==(const Cube&, const Cube&) = default;
  bool Covers(std::uint32_t minterm) const {
    return (minterm & mask) == value;
  }
};

// Completely-specified-with-DC single-output function.
struct TwoLevelSpec {
  int num_inputs = 0;
  std::vector<Trit> table;  // size 1 << num_inputs; kX = don't care

  void Validate() const;
};

// Minimum-ish SOP cover of the ON-set (primes may use the DC-set).
// Deterministic: same spec -> same cover. An empty result means constant 0;
// a single all-free cube means constant 1.
std::vector<Cube> MinimizeSop(const TwoLevelSpec& spec);

// Evaluates an SOP (OR of cubes) on one input assignment.
bool EvalSop(std::span<const Cube> cubes, std::uint32_t input);

// Total literal count (cost metric used in tests/benches).
std::size_t LiteralCount(std::span<const Cube> cubes);

}  // namespace pfd::synth
