#include "synth/fsm.hpp"

#include <unordered_map>

namespace pfd::synth {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

void FsmSpec::Validate() const {
  PFD_CHECK_MSG(num_states >= 2, "FSM needs >= 2 states");
  PFD_CHECK_MSG(reset_state >= 0 && reset_state < num_states, "bad reset state");
  PFD_CHECK_MSG(static_cast<int>(next_state.size()) == num_states,
                "next_state arity");
  for (int s : next_state) {
    PFD_CHECK_MSG(s >= 0 && s < num_states, "next state out of range");
  }
  if (branch) {
    PFD_CHECK_MSG(branch->state >= 0 && branch->state < num_states,
                  "branch state out of range");
    PFD_CHECK_MSG(
        branch->taken_target >= 0 && branch->taken_target < num_states,
        "branch target out of range");
  }
  PFD_CHECK_MSG(static_cast<int>(outputs.size()) == num_states,
                "outputs arity");
  for (const auto& row : outputs) {
    PFD_CHECK_MSG(row.size() == line_names.size(), "output row arity");
  }
}

namespace {

// Builds SOP gate networks in the style of a standard-cell FSM synthesis:
// shared inverters for literals, product terms shared across all outputs
// (PLA-style term sharing), and wide AND/OR functions decomposed into
// balanced trees of 2-input cells.
class LogicBuilder {
 public:
  LogicBuilder(Netlist& nl, ModuleTag tag) : nl_(&nl), tag_(tag) {}

  GateId NotOf(GateId g) {
    auto it = nots_.find(g);
    if (it != nots_.end()) return it->second;
    const GateId n = nl_->AddGate(GateKind::kNot, tag_, {{g}},
                                  "n_" + nl_->Name(g));
    nots_.emplace(g, n);
    return n;
  }

  GateId Const0() {
    if (const0_ == netlist::kNoGate) {
      const0_ = nl_->AddGate(GateKind::kConst0, tag_, {}, "zero");
    }
    return const0_;
  }
  GateId Const1() {
    if (const1_ == netlist::kNoGate) {
      const1_ = nl_->AddGate(GateKind::kConst1, tag_, {}, "one");
    }
    return const1_;
  }

  // SOP over literal nets: vars[i] is the net for input variable i. With
  // share_cubes, identical product terms are pulled from (and added to) a
  // cross-output cube cache — used for the internal next-state logic.
  // Output control lines are built with share_cubes=false so that every
  // line owns its product-term gates (and with them its own fault sites),
  // as a PLA with per-line output columns would.
  GateId BuildSop(std::span<const Cube> cubes, std::span<const GateId> vars,
                  const std::string& name, bool share_cubes) {
    if (cubes.empty()) return Const0();
    std::vector<GateId> terms;
    terms.reserve(cubes.size());
    for (std::size_t c = 0; c < cubes.size(); ++c) {
      terms.push_back(BuildCube(cubes[c], vars,
                                name + "_p" + std::to_string(c), share_cubes));
    }
    return Tree(GateKind::kOr, terms, name);
  }

  // A dedicated, single-driver net for one output line. A multi-cube SOP
  // ends in a freshly built OR tree, which is inherently private; anything
  // else (a literal, a constant cell, or a single cube — which may be, or
  // later become, shared across lines) gets a buffer so the line has its own
  // stem and its own fault sites.
  GateId DedicatedLine(std::span<const Cube> cubes,
                       std::span<const GateId> vars, const std::string& name,
                       bool share_cubes) {
    const GateId net = BuildSop(cubes, vars, name, share_cubes);
    if (cubes.size() >= 2) return net;
    return nl_->AddGate(GateKind::kBuf, tag_, {{net}}, name);
  }

 private:
  // Balanced tree of 2-input gates over the operands.
  GateId Tree(GateKind kind, std::vector<GateId> ops,
              const std::string& name) {
    PFD_CHECK(!ops.empty());
    int level = 0;
    while (ops.size() > 1) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < ops.size(); i += 2) {
        next.push_back(nl_->AddGate(
            kind, tag_, {{ops[i], ops[i + 1]}},
            name + "_t" + std::to_string(level) + "_" + std::to_string(i / 2)));
      }
      if (ops.size() % 2 != 0) next.push_back(ops.back());
      ops = std::move(next);
      ++level;
    }
    return ops[0];
  }

  GateId BuildCube(const Cube& cube, std::span<const GateId> vars,
                   const std::string& name, bool share) {
    if (cube.mask == 0) return Const1();
    // A cube's function is fully determined by (mask, value) — the variable
    // set is the same for every SOP in one controller.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(cube.mask) << 32) | cube.value;
    if (share) {
      auto it = cube_cache_.find(key);
      if (it != cube_cache_.end()) return it->second;
    }
    std::vector<GateId> lits;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if ((cube.mask >> i) & 1u) {
        lits.push_back(((cube.value >> i) & 1u) ? vars[i] : NotOf(vars[i]));
      }
    }
    const GateId g = Tree(GateKind::kAnd, lits, name);
    if (share) cube_cache_.emplace(key, g);
    return g;
  }

  Netlist* nl_;
  ModuleTag tag_;
  std::unordered_map<GateId, GateId> nots_;
  std::unordered_map<std::uint64_t, GateId> cube_cache_;
  GateId const0_ = netlist::kNoGate;
  GateId const1_ = netlist::kNoGate;
};

}  // namespace

namespace {

// State codes for the encoded (binary / Gray) styles.
std::vector<std::uint32_t> StateCodes(const FsmSpec& spec,
                                      StateEncoding encoding) {
  std::vector<std::uint32_t> codes(spec.num_states);
  for (int s = 0; s < spec.num_states; ++s) {
    const auto u = static_cast<std::uint32_t>(s);
    codes[s] = encoding == StateEncoding::kGray ? (u ^ (u >> 1)) : u;
  }
  return codes;
}

// One-hot controller: one DFF per state, shift-style next-state logic, OR
// trees over state bits for the output lines. No two-level minimisation is
// involved, so next_state_sops/output_sops stay empty.
SynthesizedFsm SynthesizeOneHot(Netlist& nl, const FsmSpec& spec,
                                GateId reset_input) {
  const std::size_t before = nl.size();
  SynthesizedFsm out;
  for (int s = 0; s < spec.num_states; ++s) {
    out.state_bits.push_back(
        nl.AddDff(ModuleTag::kController, "st" + std::to_string(s)));
  }
  const GateId nreset = nl.AddGate(GateKind::kNot, ModuleTag::kController,
                                   {{reset_input}}, "n_reset");
  auto or_tree = [&](std::vector<GateId> ops, const std::string& name) {
    PFD_CHECK(!ops.empty());
    int level = 0;
    while (ops.size() > 1) {
      std::vector<GateId> next;
      for (std::size_t i = 0; i + 1 < ops.size(); i += 2) {
        next.push_back(nl.AddGate(GateKind::kOr, ModuleTag::kController,
                                  {{ops[i], ops[i + 1]}},
                                  name + "_t" + std::to_string(level) + "_" +
                                      std::to_string(i / 2)));
      }
      if (ops.size() % 2 != 0) next.push_back(ops.back());
      ops = std::move(next);
      ++level;
    }
    return ops[0];
  };

  // Status synchronizer for branching controllers.
  GateId cond = netlist::kNoGate;
  GateId ncond = netlist::kNoGate;
  if (spec.branch) {
    out.cond_sync = nl.AddDff(ModuleTag::kController, "cond_sync");
    cond = out.cond_sync;
    ncond = nl.AddGate(GateKind::kNot, ModuleTag::kController, {{cond}},
                       "n_cond");
  }

  // Next state: bit s fires when some predecessor state was active (and
  // reset is low); the reset state additionally fires whenever reset is
  // high, from any boot state. A branch adds a condition-qualified edge and
  // qualifies the fall-through edge with the negated condition.
  for (int s = 0; s < spec.num_states; ++s) {
    std::vector<GateId> preds;
    for (int t = 0; t < spec.num_states; ++t) {
      if (spec.next_state[t] != s) continue;
      GateId edge = out.state_bits[t];
      if (spec.branch && spec.branch->state == t &&
          spec.branch->taken_target != s) {
        edge = nl.AddGate(GateKind::kAnd, ModuleTag::kController,
                          {{edge, ncond}},
                          "ns" + std::to_string(s) + "_fall");
      }
      preds.push_back(edge);
    }
    if (spec.branch && spec.branch->taken_target == s &&
        spec.next_state[spec.branch->state] != s) {
      preds.push_back(nl.AddGate(
          GateKind::kAnd, ModuleTag::kController,
          {{out.state_bits[spec.branch->state], cond}},
          "ns" + std::to_string(s) + "_taken"));
    }
    const std::string name = "ns" + std::to_string(s);
    GateId d;
    if (preds.empty()) {
      d = nl.AddGate(GateKind::kConst0, ModuleTag::kController, {},
                     name + "_none");
    } else {
      const GateId fire = or_tree(preds, name + "_pred");
      d = nl.AddGate(GateKind::kAnd, ModuleTag::kController,
                     {{nreset, fire}}, name + "_run");
    }
    if (s == spec.reset_state) {
      d = nl.AddGate(GateKind::kOr, ModuleTag::kController,
                     {{reset_input, d}}, name + "_rst");
    }
    nl.ConnectDff(out.state_bits[s], d);
  }

  // Output lines: OR of the state bits whose specified value is 1 (a
  // don't-care that survived the fill behaves as 0 here). Every line gets a
  // dedicated stem.
  const std::size_t n_lines = spec.line_names.size();
  out.resolved_outputs.assign(spec.num_states,
                              std::vector<std::uint8_t>(n_lines, 0));
  for (std::size_t line = 0; line < n_lines; ++line) {
    std::vector<GateId> terms;
    for (int s = 0; s < spec.num_states; ++s) {
      if (spec.outputs[s][line] == Trit::kOne) {
        terms.push_back(out.state_bits[s]);
        out.resolved_outputs[s][line] = 1;
      }
    }
    GateId net;
    if (terms.empty()) {
      const GateId zero = nl.AddGate(GateKind::kConst0,
                                     ModuleTag::kController, {},
                                     spec.line_names[line] + "_zero");
      net = nl.AddGate(GateKind::kBuf, ModuleTag::kController, {{zero}},
                       spec.line_names[line]);
    } else if (terms.size() == 1) {
      net = nl.AddGate(GateKind::kBuf, ModuleTag::kController, {{terms[0]}},
                       spec.line_names[line]);
    } else {
      net = or_tree(terms, spec.line_names[line]);
    }
    out.line_nets.push_back(net);
  }
  out.gates_created = nl.size() - before;
  return out;
}

}  // namespace

SynthesizedFsm SynthesizeFsm(Netlist& nl, const FsmSpec& spec,
                             GateId reset_input, OutputLogicStyle style,
                             StateEncoding encoding) {
  spec.Validate();
  if (encoding == StateEncoding::kOneHot) {
    return SynthesizeOneHot(nl, spec, reset_input);
  }
  const int k = spec.StateBits();
  const std::vector<std::uint32_t> codes = StateCodes(spec, encoding);
  const std::size_t before = nl.size();

  SynthesizedFsm out;
  for (int b = 0; b < k; ++b) {
    out.state_bits.push_back(
        nl.AddDff(ModuleTag::kController, "st" + std::to_string(b)));
  }
  LogicBuilder lb(nl, ModuleTag::kController);

  // Status synchronizer for branching controllers (its D pin is connected
  // by the system assembler once the datapath exists).
  if (spec.branch) {
    out.cond_sync = nl.AddDff(ModuleTag::kController, "cond_sync");
  }

  // Base next-state logic over (state bits, reset): input index =
  // code | reset<<k. A branch, when present, is layered on top as an
  // explicit take-detect + mux structure, so that the status line can only
  // influence the machine while the branch state is actually occupied —
  // with an X status during boot, every other transition stays fully
  // defined.
  std::vector<GateId> ns_vars(out.state_bits);
  ns_vars.push_back(reset_input);

  GateId take = netlist::kNoGate;
  if (spec.branch) {
    // take = (state == branch.state) & !reset & cond.
    std::vector<GateId> lits;
    for (int b = 0; b < k; ++b) {
      lits.push_back(((codes[spec.branch->state] >> b) & 1)
                         ? out.state_bits[b]
                         : lb.NotOf(out.state_bits[b]));
    }
    lits.push_back(lb.NotOf(reset_input));
    lits.push_back(out.cond_sync);
    take = nl.AddGate(GateKind::kAnd, ModuleTag::kController, lits,
                      "branch_take");
  }

  for (int b = 0; b < k; ++b) {
    TwoLevelSpec tl;
    tl.num_inputs = k + 1;
    tl.table.assign(1ULL << (k + 1), Trit::kX);
    for (std::uint32_t code = 0; code < (1u << k); ++code) {
      // reset == 1: go to the reset state from *any* code (X-boot recovery).
      tl.table[code | (1u << k)] =
          ((codes[spec.reset_state] >> b) & 1) ? Trit::kOne : Trit::kZero;
    }
    for (int s = 0; s < spec.num_states; ++s) {
      tl.table[codes[s]] =
          ((codes[spec.next_state[s]] >> b) & 1) ? Trit::kOne : Trit::kZero;
    }
    std::vector<Cube> sop = MinimizeSop(tl);
    GateId d = lb.BuildSop(sop, ns_vars, "ns" + std::to_string(b),
                           /*share_cubes=*/true);
    if (spec.branch) {
      const GateId taken_bit =
          ((codes[spec.branch->taken_target] >> b) & 1) ? lb.Const1()
                                                        : lb.Const0();
      d = nl.AddGate(GateKind::kMux2, ModuleTag::kController,
                     {{take, d, taken_bit}},
                     "ns" + std::to_string(b) + "_br");
    }
    nl.ConnectDff(out.state_bits[b], d);
    out.next_state_sops.push_back(std::move(sop));
  }

  // Moore output logic over the state bits only.
  const std::size_t n_lines = spec.line_names.size();
  out.resolved_outputs.assign(spec.num_states,
                              std::vector<std::uint8_t>(n_lines, 0));
  for (std::size_t line = 0; line < n_lines; ++line) {
    TwoLevelSpec tl;
    tl.num_inputs = k;
    tl.table.assign(1ULL << k, Trit::kX);
    for (int s = 0; s < spec.num_states; ++s) {
      tl.table[codes[s]] = spec.outputs[s][line];
    }
    std::vector<Cube> sop;
    bool share_cubes = style != OutputLogicStyle::kMinimizedSop;
    if (style != OutputLogicStyle::kStateDecoder) {
      sop = MinimizeSop(tl);
    } else {
      // State-decoder style: one (shared) minterm per ON state, OR-ed by a
      // per-line tree; don't-cares behave as 0.
      const std::uint32_t full = (1u << k) - 1u;
      for (int s = 0; s < spec.num_states; ++s) {
        if (spec.outputs[s][line] == Trit::kOne) {
          sop.push_back({full, codes[s]});
        }
      }
    }
    // Every control line gets its own driver net (own fault sites), even
    // when its function degenerates to a constant or a single literal.
    const GateId net = lb.DedicatedLine(sop, out.state_bits,
                                        spec.line_names[line], share_cubes);
    out.line_nets.push_back(net);
    for (int s = 0; s < spec.num_states; ++s) {
      out.resolved_outputs[s][line] = EvalSop(sop, codes[s]) ? 1 : 0;
    }
    out.output_sops.push_back(std::move(sop));
  }

  out.gates_created = nl.size() - before;
  return out;
}

std::vector<ControlLineInfo> MakeControlLines(const rtl::ControlSpec& spec) {
  std::vector<ControlLineInfo> lines;
  for (int l = 0; l < spec.num_load_lines; ++l) {
    lines.push_back({ControlLineInfo::Kind::kLoad,
                     static_cast<std::uint32_t>(l), 0,
                     "LD" + std::to_string(l)});
  }
  for (int m = 0; m < spec.num_muxes; ++m) {
    for (int b = 0; b < spec.mux_select_bits[m]; ++b) {
      std::string name = "MS" + std::to_string(m);
      if (spec.mux_select_bits[m] > 1) {
        name += '.';
        name += std::to_string(b);
      }
      lines.push_back({ControlLineInfo::Kind::kSelectBit,
                       static_cast<std::uint32_t>(m), b, std::move(name)});
    }
  }
  return lines;
}

FsmSpec BuildFsmSpec(const rtl::ControlSpec& spec, DontCareFill fill) {
  spec.Validate();
  const std::vector<ControlLineInfo> lines = MakeControlLines(spec);

  FsmSpec fsm;
  fsm.num_states = spec.NumStates();
  fsm.reset_state = spec.ResetState();
  fsm.next_state.resize(fsm.num_states);
  for (int s = 0; s < fsm.num_states; ++s) {
    fsm.next_state[s] = s == spec.HoldState() ? s : s + 1;
  }
  for (const ControlLineInfo& li : lines) fsm.line_names.push_back(li.name);

  fsm.outputs.assign(fsm.num_states,
                     std::vector<Trit>(lines.size(), Trit::kX));
  for (int s = 0; s < fsm.num_states; ++s) {
    const rtl::StateControl& sc = spec.states[s];
    for (std::size_t li = 0; li < lines.size(); ++li) {
      const ControlLineInfo& info = lines[li];
      if (info.kind == ControlLineInfo::Kind::kLoad) {
        fsm.outputs[s][li] =
            sc.load[info.index] ? Trit::kOne : Trit::kZero;
      } else if (sc.select[info.index].has_value()) {
        fsm.outputs[s][li] =
            ((*sc.select[info.index] >> info.bit) & 1u) ? Trit::kOne
                                                        : Trit::kZero;
      } else if (fill == DontCareFill::kZero) {
        fsm.outputs[s][li] = Trit::kZero;
      }  // else: don't care, stays kX for the minimiser
    }
  }
  return fsm;
}

ResolvedControl ResolveControl(const rtl::ControlSpec& spec,
                               const std::vector<ControlLineInfo>& lines,
                               const SynthesizedFsm& fsm) {
  ResolvedControl rc;
  const int n_states = spec.NumStates();
  rc.line_loads.assign(n_states,
                       std::vector<std::uint8_t>(spec.num_load_lines, 0));
  rc.selects.assign(n_states, std::vector<std::uint32_t>(spec.num_muxes, 0));
  for (int s = 0; s < n_states; ++s) {
    for (std::size_t li = 0; li < lines.size(); ++li) {
      const ControlLineInfo& info = lines[li];
      const std::uint8_t v = fsm.resolved_outputs[s][li];
      if (info.kind == ControlLineInfo::Kind::kLoad) {
        rc.line_loads[s][info.index] = v;
      } else if (v != 0) {
        rc.selects[s][info.index] |= 1u << info.bit;
      }
    }
  }
  return rc;
}

}  // namespace pfd::synth
